// Quickstart: build the paper's fault-tolerant nonblocking network,
// break 0.2% of its switches, repair it by the paper's discard rule, and
// route circuits through what survives.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ftcsn"
)

func main() {
	// Network 𝒩 with n = 4² = 16 inputs and outputs at laptop scale
	// (the paper's structure, scaled-down constants).
	nw, err := ftcsn.Build(ftcsn.DefaultParams(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built Network 𝒩: %d terminals, %d switches, depth %d\n",
		len(nw.Inputs()), nw.G.NumEdges(), ftcsn.Accounting(nw.P).Depth)

	// Every switch independently fails open or closed with ε = 0.002.
	inst := ftcsn.Inject(nw.G, ftcsn.Symmetric(0.002), 42)
	fmt.Printf("injected faults: %d open, %d closed\n", inst.NumOpen(), inst.NumClosed())

	// The paper's repair: discard both endpoints of every failed switch
	// (§4: "merely by discarding faulty components and their immediate
	// neighbors"), then route greedily — no clever algorithms needed.
	rt := ftcsn.NewRepairedRouter(inst)
	established := 0
	for i, in := range nw.Inputs() {
		out := nw.Outputs()[(i*7+3)%len(nw.Outputs())]
		path, err := rt.Connect(in, out)
		if err != nil {
			fmt.Printf("  request %2d: BLOCKED (%v)\n", i, err)
			continue
		}
		established++
		fmt.Printf("  request %2d: routed over %d switches\n", i, len(path)-1)
	}
	fmt.Printf("%d/%d circuits established on the repaired network\n",
		established, len(nw.Inputs()))

	// The full Theorem-2 pipeline in one call: inject → repair →
	// majority-access certificate → churn.
	outcome := nw.Evaluate(ftcsn.Symmetric(0.002), 43, 200)
	fmt.Printf("Theorem-2 pipeline: success=%v (majority access=%v, churn blocked=%d)\n",
		outcome.Success, outcome.MajorityAccess, outcome.ChurnFailures)
}
