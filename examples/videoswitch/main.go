// Videoswitch simulates the paper's motivating application: a video
// switching center built from metallic-contact switches, which exhibit
// exactly the two failure modes of the model — contacts that never close
// (open failure) and contacts welded shut (closed failure).
//
// A day of operation is simulated as a session workload: video feeds
// (input terminals) are patched to monitors (output terminals) for random
// holding times. We compare three plants of the same terminal count:
// a Beneš fabric (cheap, Θ(n log n) switches), a multibutterfly, and the
// paper's Network 𝒩 (Θ(n log²n)), all at the same per-switch failure
// rate, and report the blocked-call rate of each.
//
//	go run ./examples/videoswitch
package main

import (
	"fmt"
	"log"

	"ftcsn"
	"ftcsn/internal/core"
	"ftcsn/internal/graph"
	"ftcsn/internal/multibutterfly"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

// plant is one candidate switching fabric.
type plant struct {
	name string
	g    *graph.Graph
}

func main() {
	const eps = 0.004 // per-contact failure rate of an aging plant
	const sessions = 400

	bn, err := ftcsn.NewBenes(4) // n = 16
	if err != nil {
		log.Fatal(err)
	}
	mb, err := multibutterfly.New(4, 2, 9)
	if err != nil {
		log.Fatal(err)
	}
	nn, err := ftcsn.Build(core.Params{Nu: 2, Gamma: 0, M: 16, DQ: 3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	plants := []plant{
		{"benes (Θ(n log n))", bn.G},
		{"multibutterfly d=2 (Θ(n log n))", mb.G},
		{"network-𝒩 (Θ(n log²n))", nn.G},
	}

	fmt.Printf("video switching center: 16 feeds × 16 monitors, ε=%v per contact\n\n", eps)
	fmt.Printf("%-34s %9s %9s %9s %8s\n", "fabric", "switches", "attempts", "blocked", "rate")
	for _, pl := range plants {
		attempts, blocked := simulateDay(pl.g, eps, sessions)
		fmt.Printf("%-34s %9d %9d %9d %7.1f%%\n",
			pl.name, pl.g.NumEdges(), attempts, blocked, 100*float64(blocked)/float64(attempts))
	}
	fmt.Println("\nthe Θ(n log²n) plant buys its reliability with log-degree terminal")
	fmt.Println("wiring: no single welded or dead contact can strand a feed (Theorem 2);")
	fmt.Println("the cheaper plants lose whole feeds to single contacts (Theorem 1).")
}

// simulateDay drives a session workload over the faulted, repaired fabric:
// random patch requests between idle feeds and idle monitors, with random
// teardowns, counting blocked patch attempts.
func simulateDay(g *graph.Graph, eps float64, sessions int) (attempts, blocked int) {
	r := rng.New(2026)
	inst := ftcsn.Inject(g, ftcsn.Symmetric(eps), 77)
	rt := route.NewRepairedRouter(inst)

	type patch struct{ in, out int32 }
	var live []patch
	idleIn := append([]int32(nil), g.Inputs()...)
	idleOut := append([]int32(nil), g.Outputs()...)
	for s := 0; s < sessions; s++ {
		if len(live) == 0 || (len(idleIn) > 0 && r.Bernoulli(0.55)) {
			if len(idleIn) == 0 || len(idleOut) == 0 {
				continue
			}
			i := r.Intn(len(idleIn))
			o := r.Intn(len(idleOut))
			attempts++
			if _, err := rt.Connect(idleIn[i], idleOut[o]); err != nil {
				blocked++
				continue
			}
			live = append(live, patch{idleIn[i], idleOut[o]})
			idleIn[i] = idleIn[len(idleIn)-1]
			idleIn = idleIn[:len(idleIn)-1]
			idleOut[o] = idleOut[len(idleOut)-1]
			idleOut = idleOut[:len(idleOut)-1]
		} else {
			pi := r.Intn(len(live))
			p := live[pi]
			if err := rt.Disconnect(p.in, p.out); err == nil {
				idleIn = append(idleIn, p.in)
				idleOut = append(idleOut, p.out)
			}
			live[pi] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return attempts, blocked
}
