// Taskqueue demonstrates superconcentrators as the substrate of the task
// queue scheme in parallel computing (the paper's §2 citing Cole [Co]):
// at every scheduling round, some r processors hold ready tasks and some
// r other processors are idle; a superconcentrator connects ANY r sources
// to ANY r sinks by vertex-disjoint paths — regardless of which r — with
// only O(n) switches.
//
//	go run ./examples/taskqueue
package main

import (
	"fmt"
	"log"

	"ftcsn"
	"ftcsn/internal/maxflow"
	"ftcsn/internal/rng"
)

func main() {
	const n = 64
	sc, err := ftcsn.NewSuperconcentrator(n, 4, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("superconcentrator for %d processors: %d switches (%.1f per processor — linear!)\n\n",
		n, sc.G.NumEdges(), float64(sc.G.NumEdges())/n)

	r := rng.New(5)
	// Ten scheduling rounds with random load imbalance.
	for round := 1; round <= 10; round++ {
		k := 1 + r.Intn(n) // number of overloaded/idle processor pairs
		overloaded := r.Sample(n, k)
		idle := r.Sample(n, k)
		srcs := make([]int32, k)
		dsts := make([]int32, k)
		for i := 0; i < k; i++ {
			srcs[i] = sc.G.Inputs()[overloaded[i]]
			dsts[i] = sc.G.Outputs()[idle[i]]
		}
		// Vertex-disjoint path packing via max-flow (Menger).
		flow := maxflow.VertexDisjointPaths(sc.G, srcs, dsts)
		status := "OK"
		if flow < k {
			status = "FAILED"
		}
		fmt.Printf("  round %2d: %2d ready tasks → %2d idle workers: %2d disjoint circuits [%s]\n",
			round, k, k, flow, status)
		if flow < k {
			log.Fatal("superconcentrator property violated — file a bug")
		}
	}

	fmt.Println("\nevery round saturated: the defining property \"for every r, every r")
	fmt.Println("inputs reach every r outputs disjointly\" [AHU] — with linear size [V].")
	fmt.Println("Under switch failures this property needs Θ(n log²n) switches (Theorem 1);")
	fmt.Println("see cmd/ftsim and experiment E8 for that crossover.")
}
