// Parallelperm shows rearrangeable networks as the interconnect of a
// parallel machine (the paper's §2: "rearrangeable networks are useful
// architectures for parallel machines"): n processors exchange data
// according to compile-time-known permutations — matrix transpose,
// perfect shuffle, bit reversal — realized as n vertex-disjoint circuits.
//
// On the fault-free Beneš network the looping algorithm routes every
// permutation with Θ(n log n) switches. Under switch failures, however,
// rearrangement is powerless (Theorem 1): the same machine built on the
// paper's Network 𝒩 keeps routing.
//
//	go run ./examples/parallelperm
package main

import (
	"fmt"
	"log"

	"ftcsn"
)

const k = 4 // 16 processors

// The permutation workloads a parallel compiler schedules.
var workloads = []struct {
	name string
	perm func(i, n int) int
}{
	{"identity", func(i, n int) int { return i }},
	{"transpose (4x4)", func(i, n int) int { return (i%4)*4 + i/4 }},
	{"perfect shuffle", func(i, n int) int { return (i*2)%n + (i*2)/n }},
	{"bit reversal", func(i, n int) int {
		r := 0
		for b := 0; b < k; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (k - 1 - b)
			}
		}
		return r
	}},
	{"cyclic shift", func(i, n int) int { return (i + 5) % n }},
}

func main() {
	bn, err := ftcsn.NewBenes(k)
	if err != nil {
		log.Fatal(err)
	}
	n := bn.N
	fmt.Printf("Beneš interconnect for %d processors: %d switches, %d columns\n\n",
		n, bn.G.NumEdges(), bn.Columns)

	// Phase 1: fault-free machine — the looping algorithm routes every
	// workload permutation as wire-disjoint circuits.
	for _, w := range workloads {
		perm := make([]int, n)
		for i := range perm {
			perm[i] = w.perm(i, n)
		}
		paths, err := bn.RoutePermutation(perm)
		if err != nil {
			log.Fatalf("%s: %v", w.name, err)
		}
		if err := bn.VerifyRouting(perm, paths); err != nil {
			log.Fatalf("%s: routing invalid: %v", w.name, err)
		}
		fmt.Printf("  looping routed %-17s as %d disjoint circuits of %d hops\n",
			w.name, n, bn.Columns-1)
	}

	// Phase 2: the machine ages — switches fail at rate ε. The Beneš
	// fabric loses processors outright; Network 𝒩 keeps every workload
	// routable through greedy repair-and-route.
	const eps = 0.01
	fmt.Printf("\nafter aging at ε=%v per switch:\n", eps)

	inst := ftcsn.Inject(bn.G, ftcsn.Symmetric(eps), 3)
	if in, out := inst.IsolatedPair(); in >= 0 {
		fmt.Printf("  beneš: processor link %d can no longer reach %d — machine degraded\n", in, out)
	} else {
		fmt.Println("  beneš: survived this draw (rerun with another seed; survival → 0 as n grows)")
	}

	nn, err := ftcsn.Build(ftcsn.Params{Nu: 2, Gamma: 0, M: 16, DQ: 3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	inst2 := ftcsn.Inject(nn.G, ftcsn.Symmetric(eps), 3)
	rt := ftcsn.NewRepairedRouter(inst2)
	for _, w := range workloads {
		routed := 0
		for i := 0; i < 16; i++ {
			if _, err := rt.Connect(nn.Inputs()[i], nn.Outputs()[w.perm(i, 16)]); err == nil {
				routed++
			}
		}
		fmt.Printf("  network-𝒩: %-17s %2d/16 circuits (with %d faulty switches discarded)\n",
			w.name, routed, inst2.NumFailed())
		rt.Reset()
	}
}
