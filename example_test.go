package ftcsn_test

import (
	"fmt"

	"ftcsn"
)

// ExampleBuild constructs the paper's Network 𝒩 and reports its paper
// complexity measures (size = switches, depth = switches on the longest
// path).
func ExampleBuild() {
	nw, err := ftcsn.Build(ftcsn.DefaultParams(2))
	if err != nil {
		panic(err)
	}
	acct := ftcsn.Accounting(nw.P)
	fmt.Printf("n=%d size=%d depth=%d\n", len(nw.Inputs()), acct.Edges, acct.Depth)
	// Output: n=16 size=6912 depth=8
}

// ExampleNetwork_Evaluate runs the full Theorem-2 pipeline: inject faults,
// repair by discarding, certify majority access, and exercise greedy
// routing churn.
func ExampleNetwork_Evaluate() {
	nw, err := ftcsn.Build(ftcsn.DefaultParams(2))
	if err != nil {
		panic(err)
	}
	out := nw.Evaluate(ftcsn.Symmetric(0), 1, 100)
	fmt.Printf("fault-free success=%v blocked=%d\n", out.Success, out.ChurnFailures)
	// Output: fault-free success=true blocked=0
}

// ExampleNewBenes routes a permutation through the Beneš baseline with
// the classic looping algorithm.
func ExampleNewBenes() {
	bn, err := ftcsn.NewBenes(2) // n = 4
	if err != nil {
		panic(err)
	}
	perm := []int{2, 3, 0, 1}
	paths, err := bn.RoutePermutation(perm)
	if err != nil {
		panic(err)
	}
	fmt.Printf("circuits=%d valid=%v\n", len(paths), bn.VerifyRouting(perm, paths) == nil)
	// Output: circuits=4 valid=true
}

// ExampleInject draws a deterministic fault instance and applies the
// paper's failure witnesses.
func ExampleInject() {
	nw, err := ftcsn.Build(ftcsn.DefaultParams(1))
	if err != nil {
		panic(err)
	}
	inst := ftcsn.Inject(nw.G, ftcsn.Symmetric(0.01), 7)
	shortedA, _ := inst.ShortedTerminals()
	isolatedA, _ := inst.IsolatedPair()
	fmt.Printf("failed=%d shorted=%v isolated=%v\n",
		inst.NumFailed(), shortedA >= 0, isolatedA >= 0)
	// Output: failed=15 shorted=false isolated=false
}

// ExampleLowerBoundSize evaluates Theorem 1's size bound.
func ExampleLowerBoundSize() {
	fmt.Printf("%.0f\n", ftcsn.LowerBoundSize(1<<20))
	// Output: 156038
}
