package ftcsn

// Benchmark harness: one benchmark per experiment (E1–E13, the paper's
// tables/figures — see DESIGN.md §4 for the index) plus micro-benchmarks
// of the hot paths (construction, fault injection, repair, access
// certification, routing, and the zero-allocation Evaluator trial engine).
//
// Run everything:  go test -bench=. -benchmem
// One experiment:  go test -bench=BenchmarkE8 -benchmem

import (
	"fmt"
	"testing"

	"ftcsn/internal/arena"
	"ftcsn/internal/core"
	"ftcsn/internal/experiments"
	"ftcsn/internal/fault"
	"ftcsn/internal/montecarlo"
	"ftcsn/internal/multibutterfly"
	"ftcsn/internal/netsim"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
	"ftcsn/internal/stats"
)

func benchExperiment(b *testing.B, run func(experiments.Mode) experiments.Result) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := run(experiments.Quick)
		if len(res.Tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

// BenchmarkE1_MooreShannonAmplifier regenerates Proposition 1's
// size/depth/failure table.
func BenchmarkE1_MooreShannonAmplifier(b *testing.B) {
	benchExperiment(b, experiments.E1MooreShannon)
}

// BenchmarkE2_TreePathExtraction regenerates the Lemma 1 table (Figs 1–3).
func BenchmarkE2_TreePathExtraction(b *testing.B) {
	benchExperiment(b, experiments.E2TreePaths)
}

// BenchmarkE3_DirectedGridAccess regenerates the Lemma 3 table (Fig 4).
func BenchmarkE3_DirectedGridAccess(b *testing.B) {
	benchExperiment(b, experiments.E3GridAccess)
}

// BenchmarkE4_ExpanderFaultTails regenerates the Lemmas 4–5 table.
func BenchmarkE4_ExpanderFaultTails(b *testing.B) {
	benchExperiment(b, experiments.E4ExpanderFaultTails)
}

// BenchmarkE5_MajorityAccess regenerates the Lemma 6 table.
func BenchmarkE5_MajorityAccess(b *testing.B) {
	benchExperiment(b, experiments.E5MajorityAccess)
}

// BenchmarkE6_TerminalShorting regenerates the Lemma 7 table.
func BenchmarkE6_TerminalShorting(b *testing.B) {
	benchExperiment(b, experiments.E6TerminalShorting)
}

// BenchmarkE7_Theorem2Pipeline regenerates the Theorem 2 accounting and
// end-to-end pipeline tables.
func BenchmarkE7_Theorem2Pipeline(b *testing.B) {
	benchExperiment(b, experiments.E7Theorem2)
}

// BenchmarkE8_LowerBoundCrossover regenerates the Theorem 1 crossover
// table (the headline comparison).
func BenchmarkE8_LowerBoundCrossover(b *testing.B) {
	benchExperiment(b, experiments.E8LowerBoundCrossover)
}

// BenchmarkE9_RoutingThroughput regenerates the §4 routing tables.
func BenchmarkE9_RoutingThroughput(b *testing.B) {
	benchExperiment(b, experiments.E9Routing)
}

// BenchmarkE10_Ablations regenerates the design-ablation tables.
func BenchmarkE10_Ablations(b *testing.B) {
	benchExperiment(b, experiments.E10Ablations)
}

// BenchmarkE11_Substitution regenerates the §3 edge-substitution table.
func BenchmarkE11_Substitution(b *testing.B) {
	benchExperiment(b, experiments.E11Substitution)
}

// BenchmarkE12_Hierarchy regenerates the §2 class-containment table.
func BenchmarkE12_Hierarchy(b *testing.B) {
	benchExperiment(b, experiments.E12Hierarchy)
}

// BenchmarkE13_DepthSizeFrontier regenerates the §2 depth-vs-size survey.
func BenchmarkE13_DepthSizeFrontier(b *testing.B) {
	benchExperiment(b, experiments.E13DepthSizeFrontier)
}

// --- micro-benchmarks ---

func benchNetwork(b *testing.B, nu int) *Network {
	b.Helper()
	nw, err := Build(DefaultParams(nu))
	if err != nil {
		b.Fatal(err)
	}
	return nw
}

// BenchmarkBuildNetwork measures constructing Network 𝒩 (n=64).
func BenchmarkBuildNetwork(b *testing.B) {
	p := DefaultParams(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultInjection measures drawing switch states at ε=10⁻³ with
// geometric skipping (n=64 network, ~56k switches).
func BenchmarkFaultInjection(b *testing.B) {
	nw := benchNetwork(b, 3)
	inst := fault.NewInstance(nw.G)
	r := rng.New(1)
	m := fault.Symmetric(1e-3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.Reinject(m, r)
	}
}

// BenchmarkRepair measures the discard-rule repair mask computation.
func BenchmarkRepair(b *testing.B) {
	nw := benchNetwork(b, 3)
	inst := fault.Inject(nw.G, fault.Symmetric(1e-3), rng.New(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = inst.Repair()
	}
}

// BenchmarkMajorityAccess measures the Lemma-6 certificate (BFS from every
// terminal) on the fault-free n=64 network.
func BenchmarkMajorityAccess(b *testing.B) {
	nw := benchNetwork(b, 3)
	ac := core.NewAccessChecker(nw)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := nw.MajorityAccess(ac, core.Masks{})
		if !rep.OK {
			b.Fatal("fault-free network lost majority access")
		}
	}
}

// BenchmarkGreedyConnect measures one connect+disconnect on n=64. Path
// pooling is on and a warm-up round primes the pool: without it every
// Connect allocates its result slice (the historical allocs_op: 1 in
// BENCH.json), which the gate now keeps at zero.
func BenchmarkGreedyConnect(b *testing.B) {
	nw := benchNetwork(b, 3)
	rt := NewRouter(nw.G)
	rt.EnablePathReuse()
	r := rng.New(3)
	n := len(nw.Inputs())
	if _, err := rt.Connect(nw.Inputs()[0], nw.Outputs()[0]); err != nil {
		b.Fatal(err)
	}
	if err := rt.Disconnect(nw.Inputs()[0], nw.Outputs()[0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := nw.Inputs()[r.Intn(n)]
		out := nw.Outputs()[r.Intn(n)]
		if _, err := rt.Connect(in, out); err == nil {
			_ = rt.Disconnect(in, out)
		}
	}
}

// BenchmarkConcurrentBatch8 measures routing a full permutation with 8
// worker goroutines on n=64.
func BenchmarkConcurrentBatch8(b *testing.B) {
	nw := benchNetwork(b, 3)
	n := len(nw.Inputs())
	perm := rng.New(4).Perm(n)
	reqs := make([]route.Request, n)
	for i := range reqs {
		reqs[i] = route.Request{In: nw.Inputs()[i], Out: nw.Outputs()[perm[i]]}
	}
	cr := route.NewConcurrentRouter(nw.G)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := cr.ServeBatch(reqs, 8, uint64(i))
		for _, res := range results {
			if res.Path != nil {
				cr.Release(res.Path)
			}
		}
	}
}

// benchChurn drives any route.Engine with the operational connect/release
// churn stream (netsim.Workload) at 50% circuit occupancy and reports
// operational requests served per second — connect requests plus release
// requests, the two request kinds of the circuit-switching protocol
// (netsim's PROBE and RELEASE) — alongside connects/s alone. Every engine
// makes bit-identical decisions on this stream (route's differential
// harness), so the rows compare pure serving throughput.
func benchChurn(b *testing.B, nw *Network, eng route.Engine, batch int) {
	wl := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 0x5AD)
	n := len(nw.Inputs())
	var res []route.Result
	for wl.Live() < n/2 {
		reqs := wl.NextConnects(n/2 - wl.Live())
		res = eng.ConnectBatch(reqs, res)
		wl.Commit(res[:len(reqs)])
	}
	served := 0
	connects := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqs := wl.NextConnects(batch)
		res = eng.ConnectBatch(reqs, res)
		connects += len(reqs)
		wl.Commit(res[:len(reqs)])
		k := len(reqs)
		for _, rel := range wl.NextReleases(k) {
			if err := eng.Disconnect(rel.In, rel.Out); err != nil {
				b.Fatal(err)
			}
			served++
		}
		served += k
	}
	b.StopTimer()
	el := b.Elapsed().Seconds()
	b.ReportMetric(float64(served)/el, "req/s")
	b.ReportMetric(float64(connects)/el, "connect/s")
}

func benchShardedChurn(b *testing.B, nw *Network, shards, batch int) {
	benchChurn(b, nw, route.NewShardedEngine(nw.G, shards), batch)
}

// BenchmarkOpenLoopServe measures the open-loop serving path end to end —
// traffic generation, the virtual-clock event loop with its departure
// heap, batched ConnectBatch serving, and per-event SLO accounting — on
// the n=16 network at ~1.5× overload (rejections exercised). Reported as
// events/s (arrivals + departures); the CI-gated number (BENCH.json)
// pins both throughput and the loop's zero steady-state allocations.
func BenchmarkOpenLoopServe(b *testing.B) {
	nw := benchNetwork(b, 2)
	se := route.NewShardedEngine(nw.G, 4)
	const seed = 0x0551
	src := netsim.NewTrafficSource(seed,
		netsim.NewPoisson(6.0),
		netsim.NewExpHolding(4.0),
		netsim.NewUniformPattern(nw.Inputs(), nw.Outputs()))
	var l netsim.Loop
	var slo stats.SLO
	cfg := netsim.ServeConfig{MaxArrivals: 4096}
	run := func() {
		src.Reset(seed)
		se.Reset()
		slo.Reset()
		if err := l.Serve(se, src, cfg, &slo); err != nil {
			b.Fatal(err)
		}
	}
	run() // warm the loop scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	sn := slo.Snapshot()
	events := sn.Offered + sn.Departed
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkShardedChurn sweeps shard counts on the n=16 operational
// network — the E9 routing workload scale. The req/s metric is the
// CI-gated throughput number (see BENCH.json).
func BenchmarkShardedChurn(b *testing.B) {
	nw := benchNetwork(b, 2)
	n := len(nw.Inputs())
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchShardedChurn(b, nw, shards, n/2)
		})
	}
}

// BenchmarkShardedChurnN64 is the same sweep on the n=64 network, where
// batches are large enough (32 connects at 50% occupancy) for phase-A
// speculation to fan out across shard goroutines on multicore hardware,
// and where the word-parallel output-reachability guide carries the probe
// cost (blind depth-first hunting costs ~2.9µs/connect here; guided,
// ~0.6µs).
func BenchmarkShardedChurnN64(b *testing.B) {
	nw := benchNetwork(b, 3)
	n := len(nw.Inputs())
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchShardedChurn(b, nw, shards, n/2)
		})
	}
}

// BenchmarkShardedChurnParallel is the multi-core scale-out measurement:
// n=256 churn at 50% occupancy with 128-connect batches — large enough
// that every shard count ≤8 clears the persistent-worker fan-out
// threshold, so phase A speculates and the conflict-free commit prefix
// lands on real cores (run with -cpu=4,8; at -cpu=1 the same rows measure
// the handoff overhead). The "router" row is the sequential Router driven
// through the same Engine seam — the denominator of the tentpole's ≥3×
// req/s target at shards=8 on 8 cores.
func BenchmarkShardedChurnParallel(b *testing.B) {
	nw := benchNetwork(b, 4)
	n := len(nw.Inputs())
	b.Run("router", func(b *testing.B) {
		rt := route.NewRouter(nw.G)
		rt.EnablePathReuse()
		benchChurn(b, nw, rt, n/2)
	})
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchShardedChurn(b, nw, shards, n/2)
		})
	}
}

// BenchmarkEvaluatorTrial measures one full Theorem-2 trial (inject →
// discard repair → majority-access certificate → 120-op churn) on the
// zero-allocation Evaluator fast path, n=64. Compare with
// BenchmarkEvaluateLegacy: same work on the one-shot allocating pipeline.
func BenchmarkEvaluatorTrial(b *testing.B) {
	nw := benchNetwork(b, 3)
	ev := NewEvaluator(nw)
	m := fault.Symmetric(1e-3)
	var out core.TrialOutcome
	r := rng.New(7)
	ev.EvaluateInto(&out, m, r, 120) // warm the evaluator scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.EvaluateInto(&out, m, r, 120)
	}
}

// BenchmarkEvaluatorBatchTrial is BenchmarkEvaluatorTrial on the batched
// block engine: failure positions for 64-trial blocks drawn in one sweep,
// per-trial diff application, incremental repair-mask maintenance.
// Outcomes are bit-identical to BenchmarkEvaluatorTrial's engine (see the
// core differential harness); the delta is pure per-trial overhead.
func BenchmarkEvaluatorBatchTrial(b *testing.B) {
	nw := benchNetwork(b, 3)
	ev := NewEvaluator(nw)
	m := fault.Symmetric(1e-3)
	var out core.TrialOutcome
	const block = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%block == 0 {
			ev.StartBlock(m, 7, uint64(i), block)
		}
		ev.EvaluateNextInto(&out, 120)
	}
}

// BenchmarkEvaluatorShardedChurnTrial is BenchmarkEvaluatorBatchTrial with
// the churn phase driven through route.ShardedEngine via the Engine seam
// (core.Evaluator.SetChurnEngine): the batch-shaped op stream is
// bit-identical to the sequential-router churn (netsim.ChurnDriver, the
// core differential harness), so the delta is pure serving speed — chiefly
// the engine's per-epoch output-reachability guide pruning the n=64 probe
// cost. The acceptance gate for the engine-under-Evaluator seam is ≥1.5×
// over BenchmarkEvaluatorBatchTrial on the reference box.
func BenchmarkEvaluatorShardedChurnTrial(b *testing.B) {
	nw := benchNetwork(b, 3)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			ev := NewEvaluator(nw)
			ev.SetChurnEngine(route.NewShardedEngine(nw.G, shards))
			m := fault.Symmetric(1e-3)
			var out core.TrialOutcome
			const block = 64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%block == 0 {
					ev.StartBlock(m, 7, uint64(i), block)
				}
				ev.EvaluateNextInto(&out, 120)
			}
		})
	}
}

// BenchmarkEvaluatorCertTrial measures one certificate-only trial (inject
// → discard repair → majority-access certificate, no witnesses or churn)
// on the per-trial engine: repair masks are rebuilt from scratch and the
// certificate runs 2n per-terminal BFS sweeps. This is the BFS baseline
// for BenchmarkEvaluatorBatchCertTrial.
func BenchmarkEvaluatorCertTrial(b *testing.B) {
	nw := benchNetwork(b, 3)
	ev := NewEvaluator(nw)
	m := fault.Symmetric(1e-3)
	var out core.TrialOutcome
	r := rng.New(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.EvaluateCertificateInto(&out, m, r)
	}
}

// BenchmarkEvaluatorBatchCertTrial is BenchmarkEvaluatorCertTrial on the
// batched block engine: incremental repair masks carry the CSR-slot
// traversal bytes, so the majority-access certificate runs word-parallel
// (core.BatchAccessChecker — all terminals in O(E·n/64) word operations
// instead of 2n BFS sweeps). Outcomes are bit-identical to the BFS path
// (see TestDifferentialWordParallelCertifier); the delta is the whole
// point of the batched certificate.
func BenchmarkEvaluatorBatchCertTrial(b *testing.B) {
	nw := benchNetwork(b, 3)
	ev := NewEvaluator(nw)
	m := fault.Symmetric(1e-3)
	var out core.TrialOutcome
	const block = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%block == 0 {
			ev.StartBlock(m, 7, uint64(i), block)
		}
		ev.EvaluateNextCertInto(&out)
	}
}

// benchZooNetwork builds the permuted-sweep benchmark family: a
// DAG-unrolled HyperX (8×8 routers, 4 hops) behind WrapGraph. Its vertex
// IDs are deliberately not level-sorted, so every sweep below runs
// through the cached graph.Levels order rather than the historical
// plain-ID loops — the same code path every non-staged topology takes.
func benchZooNetwork(b *testing.B) *Network {
	b.Helper()
	hx, err := NewHyperX([]int{8, 8}, 4)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := WrapGraph(hx.G)
	if err != nil {
		b.Fatal(err)
	}
	return nw
}

// BenchmarkZooBatchCertTrial is BenchmarkEvaluatorBatchCertTrial on the
// permuted-sweep HyperX family (64 inputs — one full word-parallel lane
// strip): it gates the level-ordered traversal of the word certifier,
// which before the Levels contract fell back to 2n per-terminal BFS
// sweeps on any non-staged graph.
func BenchmarkZooBatchCertTrial(b *testing.B) {
	nw := benchZooNetwork(b)
	ev := NewEvaluator(nw)
	m := fault.Symmetric(1e-3)
	var out core.TrialOutcome
	const block = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%block == 0 {
			ev.StartBlock(m, 7, uint64(i), block)
		}
		ev.EvaluateNextCertInto(&out)
	}
}

// BenchmarkZooShardedChurnTrial is BenchmarkEvaluatorShardedChurnTrial on
// the permuted-sweep HyperX family: the sharded engine's output-set
// prefilter and reachability guide now key off topological levels, so the
// batch-shaped churn fast path serves non-staged topologies too.
func BenchmarkZooShardedChurnTrial(b *testing.B) {
	nw := benchZooNetwork(b)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			ev := NewEvaluator(nw)
			ev.SetChurnEngine(route.NewShardedEngine(nw.G, shards))
			m := fault.Symmetric(1e-3)
			var out core.TrialOutcome
			const block = 64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%block == 0 {
					ev.StartBlock(m, 7, uint64(i), block)
				}
				ev.EvaluateNextInto(&out, 120)
			}
		})
	}
}

// BenchmarkMonteCarloCertificateEngine is the certificate-mode variant of
// BenchmarkMonteCarloTheorem2Engine: an experiment-scale (256-trial,
// all-core) Lemma-6 estimate — the E5 workload — on the batched engine
// with the word-parallel certifier. n=64: one full 64-lane strip per
// sweep, the scale where certification dominates the trial.
func BenchmarkMonteCarloCertificateEngine(b *testing.B) {
	nw := benchNetwork(b, 3)
	m := fault.Symmetric(0.002)
	cfg := montecarlo.Config{Trials: 256, Seed: 0xBE}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := montecarlo.RunBoolWith(cfg,
			func() *theorem2Scratch { return &theorem2Scratch{ev: NewEvaluator(nw), m: m} },
			func(r *rng.RNG, s *theorem2Scratch) bool {
				s.ev.EvaluateNextCertInto(&s.out)
				return s.out.MajorityAccess
			})
		if p.Trials != cfg.Trials {
			b.Fatal("wrong trial count")
		}
	}
}

// pooledWitnessScratch is the E8-style worker scratch (fault instance +
// witness checks + batch injector) on pooled arenas, for the multi-network
// sweep benchmarks below.
type pooledWitnessScratch struct {
	inst  *fault.Instance
	sc    *fault.Scratch
	bi    *fault.BatchInjector
	model fault.Model
	a     *arena.Arena
}

func (s *pooledWitnessScratch) StartBlock(seed, first uint64, n int) {
	s.bi.FillStream(s.model, seed, first, n)
}

// BenchmarkPooledE8WitnessSweep is the E8 crossover workload shape — a
// survival estimate per network over a family of networks — with every
// worker's witness scratch drawn from one core.EvaluatorPool, so the
// sweep's O(V)/O(E) buffers are allocated once and recycled row to row.
// The allocs/op column is the point: it gates the pool staying
// load-bearing.
func BenchmarkPooledE8WitnessSweep(b *testing.B) {
	var graphs []*Graph
	for _, nu := range []int{1, 2} {
		graphs = append(graphs, benchNetwork(b, nu).G)
	}
	pool := core.NewEvaluatorPool()
	m := fault.Symmetric(0.01)
	cfg := montecarlo.Config{Trials: 64, Seed: 0xE8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			_, scs := montecarlo.RunBoolWithScratches(cfg,
				func() *pooledWitnessScratch {
					a := pool.Get()
					return &pooledWitnessScratch{
						inst:  fault.NewInstance(g),
						sc:    fault.NewScratchIn(g, a),
						bi:    fault.NewBatchInjectorIn(g, a),
						model: m,
						a:     a,
					}
				},
				func(_ *rng.RNG, s *pooledWitnessScratch) bool {
					s.bi.ApplyNext(s.inst)
					pos, st := s.bi.AppliedFailures()
					if a, _ := s.inst.ShortedTerminalsFromList(pos, st, s.sc); a >= 0 {
						return false
					}
					a, _ := s.inst.IsolatedPairWith(s.sc)
					return a < 0
				})
			for _, s := range scs {
				if s != nil {
					pool.Put(s.a)
				}
			}
		}
	}
}

// BenchmarkPooledE10CertSweep is the E10 ablation workload shape — a
// certificate-mode Monte-Carlo estimate per network over an ablation
// family — with per-worker Evaluators drawn from one core.EvaluatorPool
// and released between networks.
func BenchmarkPooledE10CertSweep(b *testing.B) {
	var nets []*Network
	for _, d := range []int{1, 2, 3} {
		nw, err := Build(core.Params{Nu: 2, Gamma: 0, M: 8, DQ: d, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		nets = append(nets, nw)
	}
	pool := core.NewEvaluatorPool()
	m := fault.Symmetric(0.005)
	cfg := montecarlo.Config{Trials: 64, Seed: 0xEA}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, nw := range nets {
			_, scs := montecarlo.RunBoolWithScratches(cfg,
				func() *theorem2Scratch { return &theorem2Scratch{ev: pool.NewEvaluator(nw), m: m} },
				func(_ *rng.RNG, s *theorem2Scratch) bool {
					s.ev.EvaluateNextCertInto(&s.out)
					return s.out.MajorityAccess
				})
			for _, s := range scs {
				if s != nil {
					s.ev.Release()
				}
			}
		}
	}
}

// BenchmarkEvaluateLegacy is the pre-Evaluator pipeline (fresh buffers
// every trial), kept as the before/after baseline for the Evaluator.
func BenchmarkEvaluateLegacy(b *testing.B) {
	nw := benchNetwork(b, 3)
	m := fault.Symmetric(1e-3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nw.Evaluate(m, uint64(i), 120)
	}
}

// theorem2Scratch is the worker scratch of the batched Monte-Carlo
// benchmarks: its StartBlock hook fills the evaluator's fault-injection
// block, and trials consume it diff-by-diff.
type theorem2Scratch struct {
	ev  *Evaluator
	m   fault.Model
	out TrialOutcome
}

func (s *theorem2Scratch) StartBlock(seed, first uint64, n int) {
	s.ev.StartBlock(s.m, seed, first, n)
}

// BenchmarkMonteCarloTheorem2Engine runs an experiment-scale (256-trial,
// all-core) Theorem-2 Monte-Carlo estimate on the batched block engine:
// per-worker Evaluators, block-filled fault injection, incremental repair
// masks, zero steady-state allocation. Compare with
// BenchmarkMonteCarloTheorem2Legacy, which rebuilds every per-trial buffer
// the way the harness did before the Evaluator existed.
func BenchmarkMonteCarloTheorem2Engine(b *testing.B) {
	nw := benchNetwork(b, 2)
	m := fault.Symmetric(0.002)
	cfg := montecarlo.Config{Trials: 256, Seed: 0xBE}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := montecarlo.RunBoolWith(cfg,
			func() *theorem2Scratch { return &theorem2Scratch{ev: NewEvaluator(nw), m: m} },
			func(r *rng.RNG, s *theorem2Scratch) bool {
				s.ev.EvaluateNextInto(&s.out, 120)
				return s.out.Success
			})
		if p.Trials != cfg.Trials {
			b.Fatal("wrong trial count")
		}
	}
}

// BenchmarkMonteCarloTheorem2Legacy is the same estimate with fresh
// per-trial state (instance, masks, checker, router) — the pre-Evaluator
// code path, kept for the before/after comparison.
func BenchmarkMonteCarloTheorem2Legacy(b *testing.B) {
	nw := benchNetwork(b, 2)
	m := fault.Symmetric(0.002)
	cfg := montecarlo.Config{Trials: 256, Seed: 0xBE}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := montecarlo.RunBool(cfg, func(r *rng.RNG) bool {
			inst := fault.Inject(nw.G, m, r)
			return nw.EvaluateInstance(inst, 120, r).Success
		})
		if p.Trials != cfg.Trials {
			b.Fatal("wrong trial count")
		}
	}
}

// BenchmarkWitnessChecks measures the Lemma-7 + isolation witness pair on
// the reusable fault.Scratch (the E8 survival hot path), n=16.
func BenchmarkWitnessChecks(b *testing.B) {
	nw := benchNetwork(b, 2)
	inst := fault.NewInstance(nw.G)
	sc := fault.NewScratch(nw.G)
	r := rng.New(8)
	m := fault.Symmetric(0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.Reinject(m, r)
		_ = inst.SurvivesBasicChecksWith(sc)
	}
}

// BenchmarkShortedTerminals measures the Lemma-7 union-find check.
func BenchmarkShortedTerminals(b *testing.B) {
	nw := benchNetwork(b, 3)
	inst := fault.Inject(nw.G, fault.Symmetric(0.01), rng.New(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = inst.ShortedTerminals()
	}
}

// BenchmarkIsolatedPair measures the all-pairs conductive reach check.
func BenchmarkIsolatedPair(b *testing.B) {
	nw := benchNetwork(b, 2)
	inst := fault.Inject(nw.G, fault.Symmetric(0.01), rng.New(6))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = inst.IsolatedPair()
	}
}

// BenchmarkIncrementalGuideEpoch is the big-n tier for the incrementally
// maintained output-reachability guide: a multibutterfly on n=4096
// terminals (13 columns, ~53k vertices, ~190k switches, 64 guide words per
// vertex under SetGuideLimit). Each diff=k iteration applies a fixed
// k-switch fault diff and reverts it — two guide epochs through
// MasksChangedDiff's seeded reverse-cone worklist — so per-epoch cost
// scales with the diff size and the cone it actually dirties, not with E.
// The rebuild row is the identical apply+revert driven through the
// MasksChanged full sweep: the O(E·groups) denominator of the tentpole's
// ≥10× single-fault target. Steady state must not allocate (cpu=1 gate).
func BenchmarkIncrementalGuideEpoch(b *testing.B) {
	mb, err := multibutterfly.New(12, 2, 0xB16B00)
	if err != nil {
		b.Fatal(err)
	}
	g := mb.G
	se := route.NewShardedEngine(g, 1)
	inst := fault.NewInstance(g)
	mu := core.NewMaskUpdater(g)
	var m core.Masks
	mu.Init(inst, &m)
	se.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
	se.SetGuideLimit(64)
	if w, groups := se.GuideWords(); w == nil || groups != 64 {
		b.Fatalf("guide not built at full width: %d groups", groups)
	}

	// Fixed diffs: k switches spread evenly across the stages, so the
	// reverse cones start at different levels of the same instance.
	makeDiff := func(k int) []fault.DiffEntry {
		diff := make([]fault.DiffEntry, k)
		stride := g.NumEdges() / k
		for i := range diff {
			diff[i] = fault.DiffEntry{Edge: int32(i*stride + i), Old: fault.Normal, New: fault.Open}
		}
		return diff
	}
	epoch := func(diff []fault.DiffEntry, notify func(edges []int32)) {
		fault.ApplyDiff(inst, diff)
		notify(mu.Apply(inst, &m, diff))
		fault.RevertDiff(inst, diff)
		notify(mu.Apply(inst, &m, diff))
	}

	for _, k := range []int{1, 16} {
		b.Run(fmt.Sprintf("diff=%d", k), func(b *testing.B) {
			diff := makeDiff(k)
			incremental := func(edges []int32) { se.MasksChangedDiff(mu.ChangedVertices(), edges) }
			epoch(diff, incremental) // warm the worklist and updater scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				epoch(diff, incremental)
			}
		})
	}
	b.Run("rebuild", func(b *testing.B) {
		diff := makeDiff(1)
		rebuild := func([]int32) { se.MasksChanged() }
		epoch(diff, rebuild)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			epoch(diff, rebuild)
		}
	})
}
