// Package benes implements the Beneš rearrangeable network [B] and its
// classic looping routing algorithm.
//
// The Beneš network on n = 2^k terminals is the Θ(n log n)-size,
// Θ(log n)-depth rearrangeable network whose size Shannon [S] proved
// optimal in the fault-free world. Under the random switch failure model
// it is the principal baseline of experiment E8: because its terminals
// have constant degree, a single input's two switches both fail with
// probability ≥ ε², so some terminal is isolated with probability → 1 as
// n → ∞, and no amount of rearrangement can help. Theorem 1 of Pippenger
// & Lin turns this observation into the Ω(n (log n)²) lower bound that
// separates fault-tolerant networks from Beneš.
//
// In the paper's graph model a 2×2 crossbar is four switches (edges)
// between link vertices (wires). The network has 2k columns of n wires and
// 2k−1 transitions; transition t pairs wires differing in bit k−1−t for
// t < k and bit t−k+1 for t ≥ k (a butterfly followed by its mirror,
// sharing the middle transition).
package benes

import (
	"fmt"

	"ftcsn/internal/graph"
)

// Network is a materialized Beneš network on n = 2^k terminals.
type Network struct {
	K       int // log₂ n
	N       int
	Columns int // 2k
	G       *graph.Graph
}

// TransitionBit returns the wire bit paired by transition t (0 ≤ t ≤ 2k−2).
func TransitionBit(k, t int) int {
	if t < k {
		return k - 1 - t
	}
	return t - k + 1
}

// New builds the Beneš network for n = 2^k, k ≥ 1.
func New(k int) (*Network, error) {
	if k < 1 || k > 20 {
		return nil, fmt.Errorf("benes: k=%d out of range [1,20]", k)
	}
	n := 1 << uint(k)
	columns := 2 * k
	b := graph.NewBuilder(columns*n, (columns-1)*2*n)
	for c := 0; c < columns; c++ {
		b.AddVertices(int32(c), n)
	}
	at := func(c, w int) int32 { return int32(c*n + w) }
	for t := 0; t < columns-1; t++ {
		bit := TransitionBit(k, t)
		for w := 0; w < n; w++ {
			b.AddEdge(at(t, w), at(t+1, w))
			b.AddEdge(at(t, w), at(t+1, w^(1<<uint(bit))))
		}
	}
	for w := 0; w < n; w++ {
		b.MarkInput(at(0, w))
		b.MarkOutput(at(columns-1, w))
	}
	return &Network{K: k, N: n, Columns: columns, G: b.Freeze()}, nil
}

// Wire returns the vertex of wire w at column c.
func (nw *Network) Wire(c, w int) int32 {
	if c < 0 || c >= nw.Columns || w < 0 || w >= nw.N {
		panic(fmt.Sprintf("benes: Wire(%d,%d) out of range", c, w))
	}
	return int32(c*nw.N + w)
}

// circuit is one request inside the looping recursion, with wire indices
// local to the current subnetwork.
type circuit struct {
	id      int // global input index
	in, out int // local wire indices at the subnetwork's boundary columns
}

// RoutePermutation runs the looping algorithm and returns, for each input
// i, the sequence of wire indices its circuit follows through all 2k
// columns: paths[i][c] is the wire at column c, with paths[i][0] = i and
// paths[i][2k−1] = perm[i]. The paths are pairwise wire-disjoint in every
// column — the rearrangeability witness.
func (nw *Network) RoutePermutation(perm []int) ([][]int, error) {
	if len(perm) != nw.N {
		return nil, fmt.Errorf("benes: permutation length %d, want %d", len(perm), nw.N)
	}
	seen := make([]bool, nw.N)
	for _, p := range perm {
		if p < 0 || p >= nw.N || seen[p] {
			return nil, fmt.Errorf("benes: not a permutation")
		}
		seen[p] = true
	}
	paths := make([][]int, nw.N)
	circuits := make([]circuit, nw.N)
	for i := range paths {
		paths[i] = make([]int, nw.Columns)
		paths[i][0] = i
		paths[i][nw.Columns-1] = perm[i]
		circuits[i] = circuit{id: i, in: i, out: perm[i]}
	}
	nw.loop(paths, nw.K, 0, circuits)
	return paths, nil
}

// loop routes the level-j subnetwork with wire prefix `prefix` (the high
// K−j bits shared by all its wires). It writes columns K−j+1 and
// 2K−2−(K−j) of each circuit and recurses on the two halves.
func (nw *Network) loop(paths [][]int, j, prefix int, circuits []circuit) {
	if j <= 1 {
		// 2×2 middle switch: boundary columns are adjacent; nothing to set.
		return
	}
	m := 1 << uint(j)
	c := nw.K - j            // left boundary column of this subnetwork
	cR := nw.Columns - 1 - c // right boundary column
	top := 1 << uint(j-1)    // local top bit: partner mask at both boundaries
	low := top - 1           // low-bit mask: the sub-subnetwork index
	inIdx := make([]int, m)  // circuit index occupying local in-wire u
	outIdx := make([]int, m) // circuit index occupying local out-wire v
	for x := range circuits {
		inIdx[circuits[x].in] = x
		outIdx[circuits[x].out] = x
	}
	// 2-color by walking the alternating cycles of the two partner
	// matchings: partners at a switch must take different halves.
	color := make([]int8, len(circuits))
	for i := range color {
		color[i] = -1
	}
	for start := range circuits {
		if color[start] >= 0 {
			continue
		}
		x, col := start, int8(0)
		for color[x] < 0 {
			color[x] = col
			// Output partner must take the other color.
			y := outIdx[circuits[x].out^top]
			if color[y] < 0 {
				color[y] = 1 - col
			}
			// Input partner of y must differ from y, i.e. equal col ...
			// continue the cycle from y's input partner.
			x = inIdx[circuits[y].in^top]
			col = 1 - color[y]
		}
	}
	var sub [2][]circuit
	for x := range circuits {
		cc := circuits[x]
		b := int(color[x])
		nextIn := cc.in&low | b<<uint(j-1)
		prevOut := cc.out&low | b<<uint(j-1)
		paths[cc.id][c+1] = prefix<<uint(j) | nextIn
		paths[cc.id][cR-1] = prefix<<uint(j) | prevOut
		sub[b] = append(sub[b], circuit{id: cc.id, in: cc.in & low, out: cc.out & low})
	}
	nw.loop(paths, j-1, prefix<<1|0, sub[0])
	nw.loop(paths, j-1, prefix<<1|1, sub[1])
}

// VerifyRouting checks that paths is a valid disjoint routing of perm:
// every column's occupied wires are distinct, consecutive wires are joined
// by a switch of the network, and endpoints match the permutation.
func (nw *Network) VerifyRouting(perm []int, paths [][]int) error {
	if len(paths) != nw.N {
		return fmt.Errorf("benes: %d paths for %d inputs", len(paths), nw.N)
	}
	for c := 0; c < nw.Columns; c++ {
		used := make([]bool, nw.N)
		for i := range paths {
			w := paths[i][c]
			if w < 0 || w >= nw.N {
				return fmt.Errorf("benes: path %d column %d wire %d out of range", i, c, w)
			}
			if used[w] {
				return fmt.Errorf("benes: column %d wire %d used twice", c, w)
			}
			used[w] = true
		}
	}
	for i := range paths {
		if paths[i][0] != i || paths[i][nw.Columns-1] != perm[i] {
			return fmt.Errorf("benes: path %d endpoints wrong", i)
		}
		for t := 0; t < nw.Columns-1; t++ {
			from, to := paths[i][t], paths[i][t+1]
			bit := 1 << uint(TransitionBit(nw.K, t))
			if to != from && to != from^bit {
				return fmt.Errorf("benes: path %d transition %d: %d->%d not a switch", i, t, from, to)
			}
		}
	}
	return nil
}

// PathVertices converts a wire path to graph vertex IDs.
func (nw *Network) PathVertices(path []int) []int32 {
	vs := make([]int32, len(path))
	for c, w := range path {
		vs[c] = nw.Wire(c, w)
	}
	return vs
}
