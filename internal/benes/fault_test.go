package benes

// Fault-interaction tests: the Beneš baseline under the paper's failure
// model and repair, quantifying WHY Theorem 1 excludes it.

import (
	"testing"

	"ftcsn/internal/fault"
	"ftcsn/internal/maxflow"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

func TestRepairedRoutingDegradesGracefully(t *testing.T) {
	// With few faults, most circuits still route greedily on the repaired
	// network — Beneš has path diversity away from the terminals.
	nw, err := New(4) // n=16
	if err != nil {
		t.Fatal(err)
	}
	inst := fault.Inject(nw.G, fault.Symmetric(0.005), rng.New(5))
	rt := route.NewRepairedRouter(inst)
	ok := 0
	for i := 0; i < nw.N; i++ {
		if _, err := rt.Connect(nw.G.Inputs()[i], nw.G.Outputs()[(i+3)%nw.N]); err == nil {
			ok++
		}
	}
	if ok < nw.N/2 {
		t.Fatalf("only %d/%d circuits at ε=0.005", ok, nw.N)
	}
}

func TestTerminalEdgeFaultIsolatesInput(t *testing.T) {
	// The Achilles heel: open BOTH switches of one input — no repair can
	// help, the input is gone. This is the heart of Lemma 2/Theorem 1.
	nw, _ := New(3)
	inst := fault.NewInstance(nw.G)
	in := nw.G.Inputs()[3]
	for _, e := range nw.G.OutEdges(in) {
		inst.SetState(e, fault.Open)
	}
	if a, _ := inst.IsolatedPair(); a != in {
		t.Fatalf("isolated pair reports %d, want input %d", a, in)
	}
	// The discard repair makes it WORSE: both of input 3's first-column
	// wires are discarded, and its butterfly partner (input 3^(n/2) = 7)
	// has those same two wires as its only targets — so the repair cuts
	// off TWO inputs. Constant terminal degree means faults amplify under
	// repair; yet another face of Theorem 1's exclusion.
	usable := inst.Repair()
	flow := maxflow.VertexDisjointPathsAvoiding(nw.G, nw.G.Inputs(), nw.G.Outputs(),
		func(v int32) bool { return usable[v] },
		func(e int32) bool { return inst.RepairedEdgeUsable(usable, e) })
	if flow != nw.N-2 {
		t.Fatalf("flow = %d, want %d (faulted input + its repair-starved partner)", flow, nw.N-2)
	}
}

func TestInternalFaultsRarelyFatal(t *testing.T) {
	// Faults away from terminals usually leave full saturation intact —
	// the contrast with terminal faults above. Place a single fault on a
	// middle-column switch and verify saturation survives.
	nw, _ := New(4)
	midEdges := []int32{}
	for e := int32(0); e < int32(nw.G.NumEdges()); e++ {
		if s := nw.G.Stage(nw.G.EdgeFrom(e)); s == int32(nw.K) { // middle transition
			midEdges = append(midEdges, e)
		}
	}
	r := rng.New(17)
	for trial := 0; trial < 10; trial++ {
		inst := fault.NewInstance(nw.G)
		inst.SetState(midEdges[r.Intn(len(midEdges))], fault.Open)
		usable := inst.Repair()
		flow := maxflow.VertexDisjointPathsAvoiding(nw.G, nw.G.Inputs(), nw.G.Outputs(),
			func(v int32) bool { return usable[v] },
			func(e int32) bool { return inst.RepairedEdgeUsable(usable, e) })
		if flow < nw.N-2 {
			t.Fatalf("single middle fault dropped saturation to %d", flow)
		}
	}
}

func TestLoopingVsRepairedGreedy(t *testing.T) {
	// On the fault-free network, greedy routing of a permutation can block
	// (Beneš is not strictly nonblocking), but looping always succeeds:
	// cross-validate on permutations where greedy fails.
	nw, _ := New(3)
	r := rng.New(23)
	greedyFails := 0
	for trial := 0; trial < 50; trial++ {
		perm := r.Perm(nw.N)
		rt := route.NewRouter(nw.G)
		blocked := false
		for i, p := range perm {
			if _, err := rt.Connect(nw.G.Inputs()[i], nw.G.Outputs()[p]); err != nil {
				blocked = true
				break
			}
		}
		if blocked {
			greedyFails++
			// Looping must still route it.
			paths, err := nw.RoutePermutation(perm)
			if err != nil {
				t.Fatalf("looping failed where greedy blocked: %v", err)
			}
			if err := nw.VerifyRouting(perm, paths); err != nil {
				t.Fatal(err)
			}
		}
	}
	t.Logf("greedy blocked on %d/50 permutations (looping routed them all)", greedyFails)
}

func TestSurvivalMonotoneInEps(t *testing.T) {
	nw, _ := New(5)
	rate := func(eps float64) float64 {
		inst := fault.NewInstance(nw.G)
		ok := 0
		const trials = 200
		for i := 0; i < trials; i++ {
			inst.Reinject(fault.Symmetric(eps), rng.Stream(71, uint64(i)))
			if inst.SurvivesBasicChecks() {
				ok++
			}
		}
		return float64(ok) / trials
	}
	r1, r2, r3 := rate(0.002), rate(0.02), rate(0.1)
	if !(r1 >= r2 && r2 >= r3) {
		t.Fatalf("survival not monotone: %v %v %v", r1, r2, r3)
	}
}
