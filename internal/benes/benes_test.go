package benes

import (
	"testing"

	"ftcsn/internal/fault"
	"ftcsn/internal/rng"
)

func TestNewStructure(t *testing.T) {
	nw, err := New(3) // n=8
	if err != nil {
		t.Fatal(err)
	}
	if nw.N != 8 || nw.Columns != 6 {
		t.Fatalf("N=%d Columns=%d", nw.N, nw.Columns)
	}
	// Size: (2k−1) transitions × 2n edges = 5*16 = 80.
	if nw.G.NumEdges() != 80 {
		t.Fatalf("edges = %d, want 80", nw.G.NumEdges())
	}
	if err := nw.G.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := nw.G.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 5 { // 2k−1
		t.Fatalf("depth = %d, want 5", d)
	}
}

func TestNewRejectsBadK(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := New(21); err == nil {
		t.Fatal("accepted k=21")
	}
}

func TestTransitionBits(t *testing.T) {
	// k=3: bits must be 2,1,0,1,2 (butterfly then mirror).
	want := []int{2, 1, 0, 1, 2}
	for tr, w := range want {
		if got := TransitionBit(3, tr); got != w {
			t.Fatalf("TransitionBit(3,%d) = %d, want %d", tr, got, w)
		}
	}
}

func TestRouteIdentity(t *testing.T) {
	nw, _ := New(2)
	perm := []int{0, 1, 2, 3}
	paths, err := nw.RoutePermutation(perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.VerifyRouting(perm, paths); err != nil {
		t.Fatal(err)
	}
}

func TestRouteAllPermutationsK2(t *testing.T) {
	nw, _ := New(2) // n=4: all 24 permutations
	perm := []int{0, 1, 2, 3}
	var rec func(k int)
	count := 0
	rec = func(k int) {
		if k == len(perm) {
			p := append([]int(nil), perm...)
			paths, err := nw.RoutePermutation(p)
			if err != nil {
				t.Fatalf("perm %v: %v", p, err)
			}
			if err := nw.VerifyRouting(p, paths); err != nil {
				t.Fatalf("perm %v: %v", p, err)
			}
			count++
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	if count != 24 {
		t.Fatalf("routed %d permutations", count)
	}
}

func TestRouteAllPermutationsK3(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	nw, _ := New(3) // n=8: all 40320 permutations
	perm := []int{0, 1, 2, 3, 4, 5, 6, 7}
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			p := append([]int(nil), perm...)
			paths, err := nw.RoutePermutation(p)
			if err != nil {
				t.Fatalf("perm %v: %v", p, err)
			}
			if err := nw.VerifyRouting(p, paths); err != nil {
				t.Fatalf("perm %v: %v", p, err)
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
}

func TestRouteRandomLarge(t *testing.T) {
	r := rng.New(77)
	for _, k := range []int{4, 6, 8, 10} {
		nw, err := New(k)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			perm := r.Perm(nw.N)
			paths, err := nw.RoutePermutation(perm)
			if err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			if err := nw.VerifyRouting(perm, paths); err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
		}
	}
}

func TestRouteRejectsNonPermutation(t *testing.T) {
	nw, _ := New(2)
	if _, err := nw.RoutePermutation([]int{0, 0, 1, 2}); err == nil {
		t.Fatal("accepted duplicate")
	}
	if _, err := nw.RoutePermutation([]int{0, 1}); err == nil {
		t.Fatal("accepted short permutation")
	}
	if _, err := nw.RoutePermutation([]int{0, 1, 2, 9}); err == nil {
		t.Fatal("accepted out-of-range value")
	}
}

func TestPathVertices(t *testing.T) {
	nw, _ := New(2)
	perm := []int{1, 0, 3, 2}
	paths, _ := nw.RoutePermutation(perm)
	vs := nw.PathVertices(paths[0])
	if len(vs) != nw.Columns {
		t.Fatalf("vertices = %d", len(vs))
	}
	if vs[0] != nw.G.Inputs()[0] || vs[len(vs)-1] != nw.G.Outputs()[1] {
		t.Fatal("endpoints wrong")
	}
}

func TestConstantTerminalDegree(t *testing.T) {
	// The fragility root cause: every Beneš terminal has degree exactly 2,
	// independent of n.
	for _, k := range []int{2, 4, 6} {
		nw, _ := New(k)
		for _, in := range nw.G.Inputs() {
			if nw.G.OutDegree(in) != 2 {
				t.Fatalf("k=%d: input degree %d", k, nw.G.OutDegree(in))
			}
		}
	}
}

func TestFaultFragilityGrowsWithN(t *testing.T) {
	// P[some terminal isolated or shorted] must grow with n at fixed ε —
	// the qualitative content of Theorem 1 for this baseline. Exact per-
	// trial check via the necessary conditions.
	eps := 0.05
	failRate := func(k int, trials int) float64 {
		nw, _ := New(k)
		inst := fault.NewInstance(nw.G)
		fails := 0
		for i := 0; i < trials; i++ {
			inst.Reinject(fault.Symmetric(eps), rng.Stream(42, uint64(i)))
			if !inst.SurvivesBasicChecks() {
				fails++
			}
		}
		return float64(fails) / float64(trials)
	}
	small := failRate(2, 300)
	large := failRate(7, 300)
	if large <= small {
		t.Fatalf("failure rate did not grow: n=4: %v, n=128: %v", small, large)
	}
	if large < 0.5 {
		t.Fatalf("n=128 Beneš at ε=0.05 failed only %v of trials; expected gross fragility", large)
	}
}

func TestWirePanics(t *testing.T) {
	nw, _ := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Wire out of range did not panic")
		}
	}()
	nw.Wire(0, 99)
}
