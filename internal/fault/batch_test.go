package fault

import (
	"math"
	"testing"

	"ftcsn/internal/graph"
	"ftcsn/internal/rng"
)

// bigEdgeGraph returns a 2-vertex multigraph with m parallel switches —
// the marginal-rate test bed (mirrors TestInjectRateMatchesEps).
func bigEdgeGraph(m int) *graph.Graph {
	b := graph.NewBuilder(2, m)
	u := b.AddVertex(graph.NoStage)
	v := b.AddVertex(graph.NoStage)
	for i := 0; i < m; i++ {
		b.AddEdge(u, v)
	}
	return b.Freeze()
}

// TestBatchRateMatchesEps checks the per-trial marginal failure rate of
// block-filled trials against ε with binomial tolerance, in both the
// geometric-skip and dense draw regimes.
func TestBatchRateMatchesEps(t *testing.T) {
	const mEdges = 20000
	g := bigEdgeGraph(mEdges)
	inst := NewInstance(g)
	bi := NewBatchInjector(g)
	for _, eps := range []float64{0.01, 0.3} {
		const trials = 16
		bi.FillStream(Symmetric(eps), 7, 0, trials)
		wantEach := eps * mEdges
		tol := 5 * math.Sqrt(wantEach)
		for j := 0; j < trials; j++ {
			bi.ApplyNext(inst)
			if math.Abs(float64(inst.NumOpen())-wantEach) > tol {
				t.Errorf("ε=%v trial %d: opens = %d, want ~%.0f", eps, j, inst.NumOpen(), wantEach)
			}
			if math.Abs(float64(inst.NumClosed())-wantEach) > tol {
				t.Errorf("ε=%v trial %d: closes = %d, want ~%.0f", eps, j, inst.NumClosed(), wantEach)
			}
		}
		bi.Rebase(inst)
	}
}

// batchTestGraph is the layered witness-check graph shared with the
// scratch tests.
func batchTestGraph(t testing.TB) *graph.Graph { return testGraph(t) }

// requireSameInstance asserts two instances have identical edge states and
// failure counters.
func requireSameInstance(t *testing.T, label string, got, want *Instance) {
	t.Helper()
	if got.NumOpen() != want.NumOpen() || got.NumClosed() != want.NumClosed() {
		t.Fatalf("%s: counters (%d,%d) != (%d,%d)", label,
			got.NumOpen(), got.NumClosed(), want.NumOpen(), want.NumClosed())
	}
	for e := range want.Edge {
		if got.Edge[e] != want.Edge[e] {
			t.Fatalf("%s: edge %d state %v != %v", label, e, got.Edge[e], want.Edge[e])
		}
	}
}

// TestBatchDiffApplyMatchesFresh is the core batching property: after
// ApplyNext for trial k, the instance — reached by diffs through all prior
// trials — must be bit-identical to a fresh InjectInto with trial k's
// stream, in both seeding modes and both draw regimes, including across
// block boundaries. The post-injection RNG state must match too.
func TestBatchDiffApplyMatchesFresh(t *testing.T) {
	g := batchTestGraph(t)
	for _, eps := range []float64{0.02, 0.15, 0.4} {
		m := Symmetric(eps)
		for _, seq := range []bool{false, true} {
			inst := NewInstance(g)
			fresh := NewInstance(g)
			bi := NewBatchInjector(g)
			const seed, blocks, blockLen = uint64(41), 3, 5
			var r rng.RNG
			trial := uint64(0)
			for b := 0; b < blocks; b++ {
				if seq {
					bi.FillSeq(m, seed, trial, blockLen)
				} else {
					bi.FillStream(m, seed, trial, blockLen)
				}
				for j := 0; j < blockLen; j, trial = j+1, trial+1 {
					bi.ApplyNext(inst)
					if seq {
						r.Reseed(seed + trial)
					} else {
						r.ReseedStream(seed, trial)
					}
					InjectInto(fresh, m, &r)
					requireSameInstance(t, "eps/seq mode", inst, fresh)
					if bi.RNGState(j) != r.State() {
						t.Fatalf("eps=%v seq=%v trial %d: post-injection RNG state mismatch", eps, seq, trial)
					}
				}
			}
		}
	}
}

// TestBatchDiffRoundTrip: an applied-then-reverted diff restores the prior
// trial's state exactly, and re-applying restores the new one.
func TestBatchDiffRoundTrip(t *testing.T) {
	g := batchTestGraph(t)
	inst := NewInstance(g)
	bi := NewBatchInjector(g)
	const trials = 12
	bi.FillStream(Symmetric(0.2), 99, 0, trials)

	prev := NewInstance(g) // snapshot of the state before each ApplyNext
	snap := func(dst, src *Instance) {
		copy(dst.Edge, src.Edge)
		dst.opens, dst.closes = src.opens, src.closes
	}
	for j := 0; j < trials; j++ {
		snap(prev, inst)
		diff := bi.ApplyNext(inst)
		cur := NewInstance(g)
		snap(cur, inst)

		RevertDiff(inst, diff)
		requireSameInstance(t, "revert", inst, prev)
		ApplyDiff(inst, diff)
		requireSameInstance(t, "re-apply", inst, cur)
	}
}

// TestBatchDiffEntriesAreChangesOnly: every diff entry reports a real
// state change (Old != New, Old matching the prior state), with no edge
// repeated.
func TestBatchDiffEntriesAreChangesOnly(t *testing.T) {
	g := batchTestGraph(t)
	inst := NewInstance(g)
	bi := NewBatchInjector(g)
	const trials = 20
	bi.FillStream(Symmetric(0.3), 3, 0, trials)
	prev := make([]State, g.NumEdges())
	for j := 0; j < trials; j++ {
		copy(prev, inst.Edge)
		diff := bi.ApplyNext(inst)
		seen := make(map[int32]bool, len(diff))
		changed := 0
		for _, d := range diff {
			if seen[d.Edge] {
				t.Fatalf("trial %d: edge %d appears twice in diff", j, d.Edge)
			}
			seen[d.Edge] = true
			if d.Old == d.New {
				t.Fatalf("trial %d: no-op diff entry %+v", j, d)
			}
			if prev[d.Edge] != d.Old {
				t.Fatalf("trial %d: diff entry %+v but prior state %v", j, d, prev[d.Edge])
			}
			if inst.Edge[d.Edge] != d.New {
				t.Fatalf("trial %d: diff entry %+v but new state %v", j, d, inst.Edge[d.Edge])
			}
		}
		for e := range prev {
			if prev[e] != inst.Edge[e] {
				changed++
			}
		}
		if changed != len(diff) {
			t.Fatalf("trial %d: %d edges changed but diff has %d entries", j, changed, len(diff))
		}
	}
}

// TestShortedTerminalsFromListMatches cross-checks the failure-list
// shorting witness against the full-scan original over many trials.
func TestShortedTerminalsFromListMatches(t *testing.T) {
	g := batchTestGraph(t)
	inst := NewInstance(g)
	bi := NewBatchInjector(g)
	sc := NewScratch(g)
	const trials = 300
	bi.FillStream(Symmetric(0.15), 42, 0, trials)
	for j := 0; j < trials; j++ {
		bi.ApplyNext(inst)
		a1, b1 := inst.ShortedTerminalsWith(sc)
		pos, st := bi.AppliedFailures()
		a2, b2 := inst.ShortedTerminalsFromList(pos, st, sc)
		if a1 != a2 || b1 != b2 {
			t.Fatalf("trial %d: full-scan (%d,%d) != from-list (%d,%d)", j, a1, b1, a2, b2)
		}
	}
}

// TestBatchRebase: after external mutation of the instance, Rebase resumes
// exact batched semantics.
func TestBatchRebase(t *testing.T) {
	g := batchTestGraph(t)
	inst := NewInstance(g)
	fresh := NewInstance(g)
	bi := NewBatchInjector(g)
	m := Symmetric(0.2)
	bi.FillStream(m, 5, 0, 2)
	bi.ApplyNext(inst)
	bi.ApplyNext(inst)

	// Mutate behind the injector's back, then rebase and run a new block.
	var r rng.RNG
	r.Reseed(1234)
	InjectInto(inst, m, &r)
	bi.Rebase(inst)
	if inst.NumFailed() != 0 {
		t.Fatal("Rebase left failures on the instance")
	}
	bi.FillStream(m, 5, 2, 3)
	for j := 2; j < 5; j++ {
		bi.ApplyNext(inst)
		r.ReseedStream(5, uint64(j))
		InjectInto(fresh, m, &r)
		requireSameInstance(t, "post-rebase", inst, fresh)
	}
}

// TestBatchApplyAllocFree pins the steady-state ApplyNext path at zero
// allocations per trial.
func TestBatchApplyAllocFree(t *testing.T) {
	g := batchTestGraph(t)
	inst := NewInstance(g)
	bi := NewBatchInjector(g)
	m := Symmetric(0.1)
	const block = 8
	trial := uint64(0)
	// Warm up list/diff capacity.
	for b := 0; b < 4; b++ {
		bi.FillStream(m, 11, trial, block)
		for j := 0; j < block; j++ {
			bi.ApplyNext(inst)
		}
		trial += block
	}
	avg := testing.AllocsPerRun(50, func() {
		bi.FillStream(m, 11, trial, block)
		for j := 0; j < block; j++ {
			bi.ApplyNext(inst)
		}
		trial += block
	})
	if avg > 0 {
		t.Fatalf("batched injection allocates %.2f allocs/block in steady state, want 0", avg)
	}
}
