// Package fault implements the random switch failure model of
// Pippenger & Lin.
//
// Every switch (edge) of a network is independently in one of three states:
//
//   - open failure (probability ε₁): the switch is permanently off — the
//     edge ceases to exist;
//   - closed failure (probability ε₂): the switch is permanently on — the
//     two endpoint links contract into a single electrical node;
//   - normal (probability 1−ε₁−ε₂): the switch works.
//
// The package provides fault injection (with geometric skipping so that the
// common small-ε regime costs O(#failures), not O(#switches)), the paper's
// failure witnesses — terminal shorting through chains of closed switches
// (Lemma 7) and input/output isolation through open switches (Lemma 2,
// Theorem 1) — and the paper's repair rule: discard every faulty non-terminal
// vertex, i.e. both endpoints of every failed switch (§4: "we can find a
// nonblocking network contained in the fault-tolerant network merely by
// discarding faulty components and their immediate neighbors").
package fault

import (
	"fmt"

	"ftcsn/internal/arena"
	"ftcsn/internal/graph"
	"ftcsn/internal/rng"
	"ftcsn/internal/unionfind"
)

// State is the condition of a single switch.
type State uint8

// Switch states. Normal is the zero value so a freshly allocated state
// vector describes a fault-free network.
const (
	Normal State = iota
	Open
	Closed
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Normal:
		return "normal"
	case Open:
		return "open"
	case Closed:
		return "closed"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Model holds the two failure probabilities. The paper assumes ε₁ = ε₂ = ε
// "for simplicity of notation"; we keep them separate and provide Symmetric
// for the paper's case.
type Model struct {
	OpenProb   float64 // ε₁, probability of open failure per switch
	ClosedProb float64 // ε₂, probability of closed failure per switch
}

// Symmetric returns the paper's symmetric model with ε₁ = ε₂ = ε.
func Symmetric(eps float64) Model { return Model{OpenProb: eps, ClosedProb: eps} }

// Validate checks 0 ≤ ε₁, ε₂ and ε₁+ε₂ ≤ 1.
func (m Model) Validate() error {
	if m.OpenProb < 0 || m.ClosedProb < 0 || m.OpenProb+m.ClosedProb > 1 {
		return fmt.Errorf("fault: invalid model ε₁=%v ε₂=%v", m.OpenProb, m.ClosedProb)
	}
	return nil
}

// Instance is one random realization of switch states for a graph.
// The graph itself is immutable and shared; the Instance owns only the
// per-edge state vector, so instances are cheap to reuse across Monte-Carlo
// trials via Reinject.
type Instance struct {
	G      *graph.Graph
	Edge   []State // indexed by edge ID
	opens  int
	closes int
}

// NewInstance returns a fault-free instance for g.
func NewInstance(g *graph.Graph) *Instance {
	return NewInstanceIn(g, nil)
}

// NewInstanceIn is NewInstance drawing the per-edge state vector — the
// instance's one O(E) buffer — from a (nil a allocates normally).
func NewInstanceIn(g *graph.Graph, a *arena.Arena) *Instance {
	return &Instance{G: g, Edge: arena.Typed[State](a, g.NumEdges())}
}

// Inject draws a fresh instance for g under model m using r.
func Inject(g *graph.Graph, m Model, r *rng.RNG) *Instance {
	inst := NewInstance(g)
	inst.Reinject(m, r)
	return inst
}

// InjectInto redraws inst's switch states in place under model m — the
// allocation-free counterpart of Inject for Monte-Carlo loops that own a
// reusable instance.
func InjectInto(inst *Instance, m Model, r *rng.RNG) {
	inst.Reinject(m, r)
}

// Reset returns the instance to the fault-free state, reusing its storage.
func (inst *Instance) Reset() {
	for i := range inst.Edge {
		inst.Edge[i] = Normal
	}
	inst.opens, inst.closes = 0, 0
}

// Reinject redraws all switch states in place. When ε₁+ε₂ is small it skips
// healthy runs geometrically, visiting only failed switches.
func (inst *Instance) Reinject(m Model, r *rng.RNG) {
	inst.Reset()
	p := m.OpenProb + m.ClosedProb
	if p <= 0 {
		return
	}
	mEdges := len(inst.Edge)
	if p >= 0.5 {
		// Dense regime: draw per edge directly.
		for i := range inst.Edge {
			u := r.Float64()
			switch {
			case u < m.OpenProb:
				inst.Edge[i] = Open
				inst.opens++
			case u < p:
				inst.Edge[i] = Closed
				inst.closes++
			}
		}
		return
	}
	pos := r.Geometric(p)
	for pos < mEdges {
		if r.Float64()*p < m.OpenProb {
			inst.Edge[pos] = Open
			inst.opens++
		} else {
			inst.Edge[pos] = Closed
			inst.closes++
		}
		pos += 1 + r.Geometric(p)
	}
}

// NumOpen returns the number of open-failed switches.
func (inst *Instance) NumOpen() int { return inst.opens }

// NumClosed returns the number of closed-failed switches.
func (inst *Instance) NumClosed() int { return inst.closes }

// NumFailed returns the total number of failed switches.
func (inst *Instance) NumFailed() int { return inst.opens + inst.closes }

// SetState overrides the state of edge e (for deterministic tests and
// adversarial fault placement).
func (inst *Instance) SetState(e int32, s State) {
	old := inst.Edge[e]
	if old == s {
		return
	}
	switch old {
	case Open:
		inst.opens--
	case Closed:
		inst.closes--
	}
	switch s {
	case Open:
		inst.opens++
	case Closed:
		inst.closes++
	}
	inst.Edge[e] = s
}

// FaultyVertices returns the mask of vertices incident to at least one
// failed switch. Terminals are included in the mask if they qualify; the
// repair rule (see Repair) is what exempts terminals from being discarded.
func (inst *Instance) FaultyVertices() []bool {
	return inst.FaultyVerticesInto(nil)
}

// FaultyVerticesInto is FaultyVertices writing into faulty, which is grown
// if needed and returned; passing the previous trial's slice makes the call
// allocation-free.
func (inst *Instance) FaultyVerticesInto(faulty []bool) []bool {
	faulty = growBools(faulty, inst.G.NumVertices())
	for i := range faulty {
		faulty[i] = false
	}
	for e, s := range inst.Edge {
		if s != Normal {
			faulty[inst.G.EdgeFrom(int32(e))] = true
			faulty[inst.G.EdgeTo(int32(e))] = true
		}
	}
	return faulty
}

// Repair applies the paper's discard rule and returns the usable-vertex
// mask: every non-terminal vertex incident to a failed switch is discarded
// (treated as permanently busy); terminals are never discarded. Routing on
// the repaired network must additionally traverse only Normal switches —
// RepairedEdgeUsable captures both conditions.
func (inst *Instance) Repair() []bool {
	return inst.RepairInto(nil)
}

// RepairInto is Repair writing into usable, which is grown if needed and
// returned; passing the previous trial's slice makes the call
// allocation-free.
func (inst *Instance) RepairInto(usable []bool) []bool {
	usable = growBools(usable, inst.G.NumVertices())
	for i := range usable {
		usable[i] = true
	}
	for e, s := range inst.Edge {
		if s == Normal {
			continue
		}
		u := inst.G.EdgeFrom(int32(e))
		v := inst.G.EdgeTo(int32(e))
		if !inst.G.IsTerminal(u) {
			usable[u] = false
		}
		if !inst.G.IsTerminal(v) {
			usable[v] = false
		}
	}
	return usable
}

// RepairedEdgeUsable reports whether edge e is traversable on the repaired
// network given the usable mask returned by Repair: the switch must be
// normal and both endpoints usable.
func (inst *Instance) RepairedEdgeUsable(usable []bool, e int32) bool {
	return inst.Edge[e] == Normal && usable[inst.G.EdgeFrom(e)] && usable[inst.G.EdgeTo(e)]
}

// growBools resizes s to n elements, reusing capacity when possible; the
// contents are unspecified and must be overwritten by the caller.
func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// Scratch holds every reusable buffer the failure-witness checks need:
// a disjoint-set forest for closed-switch contraction, an epoch-stamped
// terminal-owner table (replacing a per-call map), and epoch-stamped BFS
// state for conductive reachability. One Scratch serves one goroutine's
// trials; give each Monte-Carlo worker its own via montecarlo.RunBoolWith.
type Scratch struct {
	dsu *unionfind.DSU
	// sdsu is the O(1)-reset forest used by the failure-list variant of the
	// shorting check, where unioning only the trial's closed switches makes
	// the check O(#closed + #terminals) instead of O(E + V).
	sdsu *unionfind.Sparse

	// owner[root] is the terminal that first claimed component root during
	// the current ShortedTerminalsWith call; valid iff ownerEpoch[root]
	// equals ownerCur. The epoch bump replaces clearing (the reachScratch
	// idiom), so the check is O(#terminals α(n)) with zero allocation.
	owner      []int32
	ownerEpoch []uint32
	ownerCur   uint32

	reach reachScratch
}

// NewScratch returns witness-check scratch sized for g.
func NewScratch(g *graph.Graph) *Scratch { return NewScratchIn(g, nil) }

// NewScratchIn is NewScratch drawing every buffer from a (nil a allocates
// normally) — the pooled form core.EvaluatorPool uses to recycle witness
// scratch across networks.
func NewScratchIn(g *graph.Graph, a *arena.Arena) *Scratch {
	n := g.NumVertices()
	return &Scratch{
		dsu:        unionfind.NewIn(n, a),
		sdsu:       unionfind.NewSparseIn(n, a),
		owner:      a.I32(n),
		ownerEpoch: a.U32(n),
		reach:      newReachScratchIn(n, a),
	}
}

// ShortedTerminals detects Lemma 7's failure event: it returns a pair of
// distinct terminals that are contracted into a single electrical node by a
// chain of closed switches, or (-1, -1) if no such pair exists.
func (inst *Instance) ShortedTerminals() (a, b int32) {
	return inst.ShortedTerminalsWith(NewScratch(inst.G))
}

// ShortedTerminalsWith is ShortedTerminals using caller-owned scratch; it
// allocates nothing.
func (inst *Instance) ShortedTerminalsWith(sc *Scratch) (a, b int32) {
	sc.dsu.Reset()
	for e, s := range inst.Edge {
		if s == Closed {
			sc.dsu.Union(int(inst.G.EdgeFrom(int32(e))), int(inst.G.EdgeTo(int32(e))))
		}
	}
	sc.bumpOwnerEpoch()
	if x, y := sc.claimTerminals(inst.G.Inputs(), sc.dsu); x >= 0 {
		return x, y
	}
	return sc.claimTerminals(inst.G.Outputs(), sc.dsu)
}

// ShortedTerminalsFromList is ShortedTerminalsWith given the trial's
// failure list (edge IDs ascending, as produced by BatchInjector) instead
// of a full edge-state scan: only the closed entries are unioned, so the
// check costs O(#closed α(n) + #terminals) rather than O(E + V). The
// result is identical to ShortedTerminalsWith on the same instance —
// the returned pair depends only on the contracted component partition
// and the terminal scan order, not on the union-find internals.
func (inst *Instance) ShortedTerminalsFromList(edges []int32, states []State, sc *Scratch) (a, b int32) {
	sc.sdsu.Reset()
	for i, e := range edges {
		if states[i] == Closed {
			sc.sdsu.Union(int(inst.G.EdgeFrom(e)), int(inst.G.EdgeTo(e)))
		}
	}
	sc.bumpOwnerEpoch()
	if x, y := sc.claimTerminals(inst.G.Inputs(), sc.sdsu); x >= 0 {
		return x, y
	}
	return sc.claimTerminals(inst.G.Outputs(), sc.sdsu)
}

// bumpOwnerEpoch starts a fresh owner table in O(1) (O(n) only on the
// ~4-billion-call wraparound).
func (sc *Scratch) bumpOwnerEpoch() {
	sc.ownerCur++
	if sc.ownerCur == 0 {
		for i := range sc.ownerEpoch {
			sc.ownerEpoch[i] = 0
		}
		sc.ownerCur = 1
	}
}

// finder abstracts the two disjoint-set forests claimTerminals runs over.
type finder interface{ Find(int) int }

// claimTerminals assigns each terminal's component root to it, returning
// the first pair of terminals found sharing a root.
func (sc *Scratch) claimTerminals(terms []int32, dsu finder) (int32, int32) {
	for _, t := range terms {
		root := dsu.Find(int(t))
		if sc.ownerEpoch[root] == sc.ownerCur {
			return sc.owner[root], t
		}
		sc.ownerEpoch[root] = sc.ownerCur
		sc.owner[root] = t
	}
	return -1, -1
}

// reachScratch holds reusable, epoch-stamped BFS buffers for connectivity
// checks: seen[v] == epoch marks v visited in the current search, so resets
// are O(1) instead of O(n).
type reachScratch struct {
	seen  []uint32
	epoch uint32
	queue []int32
}

func newReachScratch(n int) reachScratch { return newReachScratchIn(n, nil) }

func newReachScratchIn(n int, a *arena.Arena) reachScratch {
	return reachScratch{seen: a.U32(n), queue: a.I32(256)[:0]}
}

func (sc *reachScratch) reset() {
	sc.epoch++
	if sc.epoch == 0 {
		for i := range sc.seen {
			sc.seen[i] = 0
		}
		sc.epoch = 1
	}
	sc.queue = sc.queue[:0]
}

func (sc *reachScratch) saw(v int32) bool { return sc.seen[v] == sc.epoch }

func (sc *reachScratch) mark(v int32) { sc.seen[v] = sc.epoch }

// conductiveReach marks in sc.seen every vertex reachable from src in the
// contracted graph: normal switches are traversed in their direction and
// closed switches in both directions (a closed switch merges its endpoints
// into one node, so it conducts both ways). Open switches are gone.
func (inst *Instance) conductiveReach(src int32, sc *reachScratch) {
	sc.reset()
	sc.mark(src)
	sc.queue = append(sc.queue, src)
	g := inst.G
	for len(sc.queue) > 0 {
		v := sc.queue[len(sc.queue)-1]
		sc.queue = sc.queue[:len(sc.queue)-1]
		for _, e := range g.OutEdges(v) {
			if inst.Edge[e] == Open {
				continue
			}
			if w := g.EdgeTo(e); !sc.saw(w) {
				sc.mark(w)
				sc.queue = append(sc.queue, w)
			}
		}
		for _, e := range g.InEdges(v) {
			if inst.Edge[e] != Closed {
				continue
			}
			if w := g.EdgeFrom(e); !sc.saw(w) {
				sc.mark(w)
				sc.queue = append(sc.queue, w)
			}
		}
	}
}

// IsolatedPair detects the open-failure witness used throughout Section 5:
// it returns an (input, output) pair such that no path of conducting
// switches joins them, or (-1, -1) if every input reaches every output.
// Reaching every output from every input is the r=1 requirement of an
// n-superconcentrator, hence a necessary condition for all three network
// classes of the paper.
func (inst *Instance) IsolatedPair() (in, out int32) {
	return inst.IsolatedPairWith(NewScratch(inst.G))
}

// IsolatedPairWith is IsolatedPair using caller-owned scratch; it allocates
// nothing in steady state.
func (inst *Instance) IsolatedPairWith(sc *Scratch) (in, out int32) {
	for _, src := range inst.G.Inputs() {
		inst.conductiveReach(src, &sc.reach)
		for _, dst := range inst.G.Outputs() {
			if !sc.reach.saw(dst) {
				return src, dst
			}
		}
	}
	return -1, -1
}

// SurvivesBasicChecks reports whether the instance passes both necessary
// conditions for containing a working network: no two terminals shorted and
// no input/output pair isolated. This is the cheap necessary test used for
// baseline networks in experiment E8; the full sufficient verification for
// Network 𝒩 lives in package core.
func (inst *Instance) SurvivesBasicChecks() bool {
	return inst.SurvivesBasicChecksWith(NewScratch(inst.G))
}

// SurvivesBasicChecksWith is SurvivesBasicChecks using caller-owned scratch.
func (inst *Instance) SurvivesBasicChecksWith(sc *Scratch) bool {
	if a, _ := inst.ShortedTerminalsWith(sc); a >= 0 {
		return false
	}
	if a, _ := inst.IsolatedPairWith(sc); a >= 0 {
		return false
	}
	return true
}
