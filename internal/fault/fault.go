// Package fault implements the random switch failure model of
// Pippenger & Lin.
//
// Every switch (edge) of a network is independently in one of three states:
//
//   - open failure (probability ε₁): the switch is permanently off — the
//     edge ceases to exist;
//   - closed failure (probability ε₂): the switch is permanently on — the
//     two endpoint links contract into a single electrical node;
//   - normal (probability 1−ε₁−ε₂): the switch works.
//
// The package provides fault injection (with geometric skipping so that the
// common small-ε regime costs O(#failures), not O(#switches)), the paper's
// failure witnesses — terminal shorting through chains of closed switches
// (Lemma 7) and input/output isolation through open switches (Lemma 2,
// Theorem 1) — and the paper's repair rule: discard every faulty non-terminal
// vertex, i.e. both endpoints of every failed switch (§4: "we can find a
// nonblocking network contained in the fault-tolerant network merely by
// discarding faulty components and their immediate neighbors").
package fault

import (
	"fmt"

	"ftcsn/internal/graph"
	"ftcsn/internal/rng"
	"ftcsn/internal/unionfind"
)

// State is the condition of a single switch.
type State uint8

// Switch states. Normal is the zero value so a freshly allocated state
// vector describes a fault-free network.
const (
	Normal State = iota
	Open
	Closed
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Normal:
		return "normal"
	case Open:
		return "open"
	case Closed:
		return "closed"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Model holds the two failure probabilities. The paper assumes ε₁ = ε₂ = ε
// "for simplicity of notation"; we keep them separate and provide Symmetric
// for the paper's case.
type Model struct {
	OpenProb   float64 // ε₁, probability of open failure per switch
	ClosedProb float64 // ε₂, probability of closed failure per switch
}

// Symmetric returns the paper's symmetric model with ε₁ = ε₂ = ε.
func Symmetric(eps float64) Model { return Model{OpenProb: eps, ClosedProb: eps} }

// Validate checks 0 ≤ ε₁, ε₂ and ε₁+ε₂ ≤ 1.
func (m Model) Validate() error {
	if m.OpenProb < 0 || m.ClosedProb < 0 || m.OpenProb+m.ClosedProb > 1 {
		return fmt.Errorf("fault: invalid model ε₁=%v ε₂=%v", m.OpenProb, m.ClosedProb)
	}
	return nil
}

// Instance is one random realization of switch states for a graph.
// The graph itself is immutable and shared; the Instance owns only the
// per-edge state vector, so instances are cheap to reuse across Monte-Carlo
// trials via Reinject.
type Instance struct {
	G      *graph.Graph
	Edge   []State // indexed by edge ID
	opens  int
	closes int
}

// NewInstance returns a fault-free instance for g.
func NewInstance(g *graph.Graph) *Instance {
	return &Instance{G: g, Edge: make([]State, g.NumEdges())}
}

// Inject draws a fresh instance for g under model m using r.
func Inject(g *graph.Graph, m Model, r *rng.RNG) *Instance {
	inst := NewInstance(g)
	inst.Reinject(m, r)
	return inst
}

// Reinject redraws all switch states in place. When ε₁+ε₂ is small it skips
// healthy runs geometrically, visiting only failed switches.
func (inst *Instance) Reinject(m Model, r *rng.RNG) {
	for i := range inst.Edge {
		inst.Edge[i] = Normal
	}
	inst.opens, inst.closes = 0, 0
	p := m.OpenProb + m.ClosedProb
	if p <= 0 {
		return
	}
	mEdges := len(inst.Edge)
	if p >= 0.5 {
		// Dense regime: draw per edge directly.
		for i := range inst.Edge {
			u := r.Float64()
			switch {
			case u < m.OpenProb:
				inst.Edge[i] = Open
				inst.opens++
			case u < p:
				inst.Edge[i] = Closed
				inst.closes++
			}
		}
		return
	}
	pos := r.Geometric(p)
	for pos < mEdges {
		if r.Float64()*p < m.OpenProb {
			inst.Edge[pos] = Open
			inst.opens++
		} else {
			inst.Edge[pos] = Closed
			inst.closes++
		}
		pos += 1 + r.Geometric(p)
	}
}

// NumOpen returns the number of open-failed switches.
func (inst *Instance) NumOpen() int { return inst.opens }

// NumClosed returns the number of closed-failed switches.
func (inst *Instance) NumClosed() int { return inst.closes }

// NumFailed returns the total number of failed switches.
func (inst *Instance) NumFailed() int { return inst.opens + inst.closes }

// SetState overrides the state of edge e (for deterministic tests and
// adversarial fault placement).
func (inst *Instance) SetState(e int32, s State) {
	old := inst.Edge[e]
	if old == s {
		return
	}
	switch old {
	case Open:
		inst.opens--
	case Closed:
		inst.closes--
	}
	switch s {
	case Open:
		inst.opens++
	case Closed:
		inst.closes++
	}
	inst.Edge[e] = s
}

// FaultyVertices returns the mask of vertices incident to at least one
// failed switch. Terminals are included in the mask if they qualify; the
// repair rule (see Repair) is what exempts terminals from being discarded.
func (inst *Instance) FaultyVertices() []bool {
	faulty := make([]bool, inst.G.NumVertices())
	for e, s := range inst.Edge {
		if s != Normal {
			faulty[inst.G.EdgeFrom(int32(e))] = true
			faulty[inst.G.EdgeTo(int32(e))] = true
		}
	}
	return faulty
}

// Repair applies the paper's discard rule and returns the usable-vertex
// mask: every non-terminal vertex incident to a failed switch is discarded
// (treated as permanently busy); terminals are never discarded. Routing on
// the repaired network must additionally traverse only Normal switches —
// RepairedEdgeUsable captures both conditions.
func (inst *Instance) Repair() []bool {
	usable := make([]bool, inst.G.NumVertices())
	for i := range usable {
		usable[i] = true
	}
	for e, s := range inst.Edge {
		if s == Normal {
			continue
		}
		u := inst.G.EdgeFrom(int32(e))
		v := inst.G.EdgeTo(int32(e))
		if !inst.G.IsTerminal(u) {
			usable[u] = false
		}
		if !inst.G.IsTerminal(v) {
			usable[v] = false
		}
	}
	return usable
}

// RepairedEdgeUsable reports whether edge e is traversable on the repaired
// network given the usable mask returned by Repair: the switch must be
// normal and both endpoints usable.
func (inst *Instance) RepairedEdgeUsable(usable []bool, e int32) bool {
	return inst.Edge[e] == Normal && usable[inst.G.EdgeFrom(e)] && usable[inst.G.EdgeTo(e)]
}

// ShortedTerminals detects Lemma 7's failure event: it returns a pair of
// distinct terminals that are contracted into a single electrical node by a
// chain of closed switches, or (-1, -1) if no such pair exists.
func (inst *Instance) ShortedTerminals() (a, b int32) {
	d := unionfind.New(inst.G.NumVertices())
	for e, s := range inst.Edge {
		if s == Closed {
			d.Union(int(inst.G.EdgeFrom(int32(e))), int(inst.G.EdgeTo(int32(e))))
		}
	}
	owner := make(map[int]int32)
	check := func(terms []int32) (int32, int32) {
		for _, t := range terms {
			root := d.Find(int(t))
			if prev, ok := owner[root]; ok {
				return prev, t
			}
			owner[root] = t
		}
		return -1, -1
	}
	if x, y := check(inst.G.Inputs()); x >= 0 {
		return x, y
	}
	if x, y := check(inst.G.Outputs()); x >= 0 {
		return x, y
	}
	return -1, -1
}

// reachScratch holds reusable BFS buffers for connectivity checks.
type reachScratch struct {
	seen  []bool
	queue []int32
}

func newScratch(n int) *reachScratch {
	return &reachScratch{seen: make([]bool, n), queue: make([]int32, 0, 256)}
}

func (sc *reachScratch) reset() {
	for i := range sc.seen {
		sc.seen[i] = false
	}
	sc.queue = sc.queue[:0]
}

// conductiveReach marks in sc.seen every vertex reachable from src in the
// contracted graph: normal switches are traversed in their direction and
// closed switches in both directions (a closed switch merges its endpoints
// into one node, so it conducts both ways). Open switches are gone.
func (inst *Instance) conductiveReach(src int32, sc *reachScratch) {
	sc.reset()
	sc.seen[src] = true
	sc.queue = append(sc.queue, src)
	g := inst.G
	for len(sc.queue) > 0 {
		v := sc.queue[len(sc.queue)-1]
		sc.queue = sc.queue[:len(sc.queue)-1]
		for _, e := range g.OutEdges(v) {
			if inst.Edge[e] == Open {
				continue
			}
			if w := g.EdgeTo(e); !sc.seen[w] {
				sc.seen[w] = true
				sc.queue = append(sc.queue, w)
			}
		}
		for _, e := range g.InEdges(v) {
			if inst.Edge[e] != Closed {
				continue
			}
			if w := g.EdgeFrom(e); !sc.seen[w] {
				sc.seen[w] = true
				sc.queue = append(sc.queue, w)
			}
		}
	}
}

// IsolatedPair detects the open-failure witness used throughout Section 5:
// it returns an (input, output) pair such that no path of conducting
// switches joins them, or (-1, -1) if every input reaches every output.
// Reaching every output from every input is the r=1 requirement of an
// n-superconcentrator, hence a necessary condition for all three network
// classes of the paper.
func (inst *Instance) IsolatedPair() (in, out int32) {
	sc := newScratch(inst.G.NumVertices())
	for _, src := range inst.G.Inputs() {
		inst.conductiveReach(src, sc)
		for _, dst := range inst.G.Outputs() {
			if !sc.seen[dst] {
				return src, dst
			}
		}
	}
	return -1, -1
}

// SurvivesBasicChecks reports whether the instance passes both necessary
// conditions for containing a working network: no two terminals shorted and
// no input/output pair isolated. This is the cheap necessary test used for
// baseline networks in experiment E8; the full sufficient verification for
// Network 𝒩 lives in package core.
func (inst *Instance) SurvivesBasicChecks() bool {
	if a, _ := inst.ShortedTerminals(); a >= 0 {
		return false
	}
	if a, _ := inst.IsolatedPair(); a >= 0 {
		return false
	}
	return true
}
