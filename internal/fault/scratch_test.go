package fault

import (
	"testing"

	"ftcsn/internal/graph"
	"ftcsn/internal/rng"
)

// testGraph builds a small layered network with enough structure for the
// witness checks to be non-trivial: 4 inputs, two middle stages, 4 outputs.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	const n = 4
	b := graph.NewBuilder(4*n, 3*n*n)
	for s := int32(0); s < 4; s++ {
		for i := 0; i < n; i++ {
			v := b.AddVertex(s)
			if s == 0 {
				b.MarkInput(v)
			}
			if s == 3 {
				b.MarkOutput(v)
			}
		}
	}
	at := func(s, i int) int32 { return int32(s*n + i) }
	for s := 0; s < 3; s++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b.AddEdge(at(s, i), at(s+1, j))
			}
		}
	}
	return b.Freeze()
}

// TestScratchWitnessesMatchAllocating cross-checks the With variants
// against the allocating originals over many random instances.
func TestScratchWitnessesMatchAllocating(t *testing.T) {
	g := testGraph(t)
	inst := NewInstance(g)
	sc := NewScratch(g)
	var r rng.RNG
	for i := 0; i < 300; i++ {
		r.ReseedStream(42, uint64(i))
		inst.Reinject(Symmetric(0.15), &r)

		a1, b1 := inst.ShortedTerminals()
		a2, b2 := inst.ShortedTerminalsWith(sc)
		if a1 != a2 || b1 != b2 {
			t.Fatalf("trial %d: ShortedTerminals (%d,%d) != With (%d,%d)", i, a1, b1, a2, b2)
		}
		i1, o1 := inst.IsolatedPair()
		i2, o2 := inst.IsolatedPairWith(sc)
		if i1 != i2 || o1 != o2 {
			t.Fatalf("trial %d: IsolatedPair (%d,%d) != With (%d,%d)", i, i1, o1, i2, o2)
		}
		if inst.SurvivesBasicChecks() != inst.SurvivesBasicChecksWith(sc) {
			t.Fatalf("trial %d: SurvivesBasicChecks mismatch", i)
		}
	}
}

// TestIntoVariantsMatch checks the Into mask builders against the
// allocating originals and that slice reuse round-trips.
func TestIntoVariantsMatch(t *testing.T) {
	g := testGraph(t)
	inst := NewInstance(g)
	var r rng.RNG
	var faulty, usable []bool
	for i := 0; i < 100; i++ {
		r.ReseedStream(7, uint64(i))
		InjectInto(inst, Symmetric(0.2), &r)
		faulty = inst.FaultyVerticesInto(faulty)
		usable = inst.RepairInto(usable)
		wantF := inst.FaultyVertices()
		wantU := inst.Repair()
		for v := range wantF {
			if faulty[v] != wantF[v] {
				t.Fatalf("trial %d: FaultyVerticesInto[%d] = %v, want %v", i, v, faulty[v], wantF[v])
			}
			if usable[v] != wantU[v] {
				t.Fatalf("trial %d: RepairInto[%d] = %v, want %v", i, v, usable[v], wantU[v])
			}
		}
	}
}

// TestReset returns an injected instance to the fault-free state.
func TestReset(t *testing.T) {
	g := testGraph(t)
	inst := Inject(g, Symmetric(0.5), rng.New(1))
	if inst.NumFailed() == 0 {
		t.Fatal("expected failures at eps=0.5")
	}
	inst.Reset()
	if inst.NumFailed() != 0 || inst.NumOpen() != 0 || inst.NumClosed() != 0 {
		t.Fatalf("Reset left %d failures", inst.NumFailed())
	}
	for e, s := range inst.Edge {
		if s != Normal {
			t.Fatalf("Reset left edge %d in state %v", e, s)
		}
	}
}

// TestWitnessChecksAllocFree asserts the steady-state scratch path
// allocates nothing per trial.
func TestWitnessChecksAllocFree(t *testing.T) {
	g := testGraph(t)
	inst := NewInstance(g)
	sc := NewScratch(g)
	faulty := make([]bool, g.NumVertices())
	usable := make([]bool, g.NumVertices())
	var r rng.RNG
	trial := func() {
		inst.Reinject(Symmetric(0.1), &r)
		faulty = inst.FaultyVerticesInto(faulty)
		usable = inst.RepairInto(usable)
		inst.ShortedTerminalsWith(sc)
		inst.IsolatedPairWith(sc)
	}
	i := uint64(0)
	// Warm up queue growth, then measure.
	for ; i < 20; i++ {
		r.ReseedStream(9, i)
		trial()
	}
	avg := testing.AllocsPerRun(100, func() {
		i++
		r.ReseedStream(9, i)
		trial()
	})
	if avg > 0 {
		t.Fatalf("witness checks allocate %.2f allocs/trial in steady state, want 0", avg)
	}
}
