package fault

import (
	"math"
	"testing"

	"ftcsn/internal/graph"
	"ftcsn/internal/rng"
)

// line builds in -> a -> b -> out (3 switches in series).
func line() *graph.Graph {
	b := graph.NewBuilder(4, 3)
	in := b.AddVertex(0)
	va := b.AddVertex(1)
	vb := b.AddVertex(2)
	out := b.AddVertex(3)
	b.AddEdge(in, va)
	b.AddEdge(va, vb)
	b.AddEdge(vb, out)
	b.MarkInput(in)
	b.MarkOutput(out)
	return b.Freeze()
}

// twoInputs builds in0 -> m <- in1 plus m -> out: two inputs sharing a link.
func twoInputs() *graph.Graph {
	b := graph.NewBuilder(4, 3)
	in0 := b.AddVertex(0)
	in1 := b.AddVertex(0)
	m := b.AddVertex(1)
	out := b.AddVertex(2)
	b.AddEdge(in0, m)
	b.AddEdge(in1, m)
	b.AddEdge(m, out)
	b.MarkInput(in0)
	b.MarkInput(in1)
	b.MarkOutput(out)
	return b.Freeze()
}

func TestModelValidate(t *testing.T) {
	if err := Symmetric(0.1).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Model{OpenProb: 0.7, ClosedProb: 0.7}).Validate(); err == nil {
		t.Fatal("accepted ε₁+ε₂ > 1")
	}
	if err := (Model{OpenProb: -0.1}).Validate(); err == nil {
		t.Fatal("accepted negative ε")
	}
}

func TestInjectZeroEps(t *testing.T) {
	g := line()
	inst := Inject(g, Symmetric(0), rng.New(1))
	if inst.NumFailed() != 0 {
		t.Fatalf("failures with ε=0: %d", inst.NumFailed())
	}
	if !inst.SurvivesBasicChecks() {
		t.Fatal("fault-free network failed basic checks")
	}
}

func TestInjectAllOpen(t *testing.T) {
	g := line()
	inst := Inject(g, Model{OpenProb: 1}, rng.New(1))
	if inst.NumOpen() != 3 || inst.NumClosed() != 0 {
		t.Fatalf("open=%d closed=%d", inst.NumOpen(), inst.NumClosed())
	}
	if in, out := inst.IsolatedPair(); in < 0 || out < 0 {
		t.Fatal("fully open network not isolated")
	}
}

func TestInjectRateMatchesEps(t *testing.T) {
	// Big graph, check empirical failure rates for both regimes of Reinject.
	b := graph.NewBuilder(2, 20000)
	u := b.AddVertex(graph.NoStage)
	v := b.AddVertex(graph.NoStage)
	for i := 0; i < 20000; i++ {
		b.AddEdge(u, v)
	}
	g := b.Freeze()
	for _, eps := range []float64{0.01, 0.3} {
		inst := Inject(g, Symmetric(eps), rng.New(7))
		wantEach := eps * 20000
		tol := 5 * math.Sqrt(wantEach)
		if math.Abs(float64(inst.NumOpen())-wantEach) > tol {
			t.Errorf("ε=%v: opens = %d, want ~%.0f", eps, inst.NumOpen(), wantEach)
		}
		if math.Abs(float64(inst.NumClosed())-wantEach) > tol {
			t.Errorf("ε=%v: closes = %d, want ~%.0f", eps, inst.NumClosed(), wantEach)
		}
	}
}

func TestInjectDeterministic(t *testing.T) {
	g := line()
	a := Inject(g, Symmetric(0.3), rng.New(99))
	b := Inject(g, Symmetric(0.3), rng.New(99))
	for e := range a.Edge {
		if a.Edge[e] != b.Edge[e] {
			t.Fatal("same seed produced different instances")
		}
	}
}

func TestSetState(t *testing.T) {
	inst := NewInstance(line())
	inst.SetState(0, Open)
	inst.SetState(1, Closed)
	if inst.NumOpen() != 1 || inst.NumClosed() != 1 {
		t.Fatalf("counts open=%d closed=%d", inst.NumOpen(), inst.NumClosed())
	}
	inst.SetState(0, Closed)
	if inst.NumOpen() != 0 || inst.NumClosed() != 2 {
		t.Fatalf("after flip: open=%d closed=%d", inst.NumOpen(), inst.NumClosed())
	}
	inst.SetState(0, Normal)
	inst.SetState(1, Normal)
	if inst.NumFailed() != 0 {
		t.Fatal("counts not restored")
	}
}

func TestFaultyVertices(t *testing.T) {
	g := line()
	inst := NewInstance(g)
	inst.SetState(1, Open) // a -> b fails
	f := inst.FaultyVertices()
	want := []bool{false, true, true, false}
	for i, w := range want {
		if f[i] != w {
			t.Fatalf("faulty[%d] = %v, want %v", i, f[i], w)
		}
	}
}

func TestRepairSparesTerminals(t *testing.T) {
	g := line()
	inst := NewInstance(g)
	inst.SetState(0, Open) // in -> a fails: a discarded, in spared
	usable := inst.Repair()
	if !usable[0] {
		t.Fatal("terminal discarded by repair")
	}
	if usable[1] {
		t.Fatal("faulty internal vertex not discarded")
	}
	if !usable[2] || !usable[3] {
		t.Fatal("healthy vertices discarded")
	}
	if inst.RepairedEdgeUsable(usable, 0) {
		t.Fatal("failed switch usable after repair")
	}
	if !inst.RepairedEdgeUsable(usable, 2) {
		t.Fatal("healthy switch b->out not usable")
	}
	// Edge 1 (a->b) is normal but endpoint a is discarded.
	if inst.RepairedEdgeUsable(usable, 1) {
		t.Fatal("switch with discarded endpoint usable")
	}
}

func TestShortedTerminals(t *testing.T) {
	g := twoInputs()
	inst := NewInstance(g)
	// Close both input switches: in0 and in1 contract through m.
	inst.SetState(0, Closed)
	inst.SetState(1, Closed)
	a, b := inst.ShortedTerminals()
	if a < 0 || b < 0 {
		t.Fatal("shorted inputs not detected")
	}
	if !inst.G.IsTerminal(a) || !inst.G.IsTerminal(b) {
		t.Fatal("non-terminals reported")
	}
}

func TestShortedTerminalsNegative(t *testing.T) {
	g := twoInputs()
	inst := NewInstance(g)
	inst.SetState(0, Closed) // only one closed switch: in0~m, no terminal pair
	if a, _ := inst.ShortedTerminals(); a >= 0 {
		t.Fatal("false positive shorting")
	}
}

func TestIsolatedPair(t *testing.T) {
	g := line()
	inst := NewInstance(g)
	inst.SetState(1, Open)
	in, out := inst.IsolatedPair()
	if in != 0 || out != 3 {
		t.Fatalf("isolated pair = (%d,%d), want (0,3)", in, out)
	}
}

func TestClosedEdgesConduct(t *testing.T) {
	// A closed switch still conducts: closing (not opening) edges on the
	// line must keep input and output connected.
	g := line()
	inst := NewInstance(g)
	inst.SetState(0, Closed)
	inst.SetState(1, Closed)
	if in, _ := inst.IsolatedPair(); in >= 0 {
		t.Fatal("closed switches broke connectivity")
	}
}

func TestClosedEdgesConductBackwards(t *testing.T) {
	// Contraction is undirected: with b<-a closed, a path in0 -> m ... can
	// route through the merged node even against edge direction.
	b := graph.NewBuilder(5, 4)
	in := b.AddVertex(0)
	x := b.AddVertex(1)
	y := b.AddVertex(1)
	out := b.AddVertex(2)
	b.AddEdge(in, x)
	b.AddEdge(y, x) // directed y->x; closing it merges x,y
	b.AddEdge(y, out)
	b.MarkInput(in)
	b.MarkOutput(out)
	g := b.Freeze()
	inst := NewInstance(g)
	// Without the closure, out is unreachable from in (y->x wrong way).
	if i, _ := inst.IsolatedPair(); i < 0 {
		t.Fatal("test graph should be disconnected when healthy")
	}
	inst.SetState(1, Closed)
	if i, _ := inst.IsolatedPair(); i >= 0 {
		t.Fatal("closed switch did not merge endpoints bidirectionally")
	}
}

func TestSurvivesBasicChecks(t *testing.T) {
	g := twoInputs()
	inst := NewInstance(g)
	if !inst.SurvivesBasicChecks() {
		t.Fatal("healthy network fails")
	}
	inst.SetState(0, Open)
	if inst.SurvivesBasicChecks() {
		t.Fatal("isolated input not caught")
	}
	inst.SetState(0, Closed)
	inst.SetState(1, Closed)
	if inst.SurvivesBasicChecks() {
		t.Fatal("shorted inputs not caught")
	}
}

func TestReinjectReuse(t *testing.T) {
	g := line()
	inst := Inject(g, Model{OpenProb: 1}, rng.New(3))
	if inst.NumOpen() != 3 {
		t.Fatal("setup failed")
	}
	inst.Reinject(Symmetric(0), rng.New(4))
	if inst.NumFailed() != 0 {
		t.Fatal("Reinject did not clear previous states")
	}
	for _, s := range inst.Edge {
		if s != Normal {
			t.Fatal("stale edge state after Reinject")
		}
	}
}

func TestAsymmetricModelOpenOnly(t *testing.T) {
	// Open-only failures can isolate but never short.
	g := twoInputs()
	inst := Inject(g, Model{OpenProb: 0.9}, rng.New(21))
	if inst.NumClosed() != 0 {
		t.Fatal("closed failures under open-only model")
	}
	if a, _ := inst.ShortedTerminals(); a >= 0 {
		t.Fatal("shorting without closed failures")
	}
}

func TestAsymmetricModelClosedOnly(t *testing.T) {
	// Closed-only failures can short but never isolate (closed switches
	// conduct).
	g := line()
	for seed := uint64(0); seed < 20; seed++ {
		inst := Inject(g, Model{ClosedProb: 0.5}, rng.New(seed))
		if inst.NumOpen() != 0 {
			t.Fatal("open failures under closed-only model")
		}
		if in, _ := inst.IsolatedPair(); in >= 0 {
			t.Fatal("isolation without open failures")
		}
	}
}

func TestAsymmetricRates(t *testing.T) {
	b := graph.NewBuilder(2, 10000)
	u := b.AddVertex(graph.NoStage)
	v := b.AddVertex(graph.NoStage)
	for i := 0; i < 10000; i++ {
		b.AddEdge(u, v)
	}
	g := b.Freeze()
	inst := Inject(g, Model{OpenProb: 0.02, ClosedProb: 0.08}, rng.New(33))
	openRate := float64(inst.NumOpen()) / 10000
	closedRate := float64(inst.NumClosed()) / 10000
	if math.Abs(openRate-0.02) > 0.01 || math.Abs(closedRate-0.08) > 0.015 {
		t.Fatalf("rates open=%v closed=%v", openRate, closedRate)
	}
}

func TestStateString(t *testing.T) {
	if Normal.String() != "normal" || Open.String() != "open" || Closed.String() != "closed" {
		t.Fatal("State.String wrong")
	}
	if State(9).String() == "" {
		t.Fatal("unknown state string empty")
	}
}
