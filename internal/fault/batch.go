package fault

import (
	"fmt"

	"ftcsn/internal/arena"
	"ftcsn/internal/graph"
	"ftcsn/internal/rng"
)

// DiffEntry records one edge-state transition between consecutive fault
// trials: edge Edge moved from Old to New. A slice of entries is a
// revertible delta — see ApplyDiff and RevertDiff.
type DiffEntry struct {
	Edge     int32
	Old, New State
}

// BatchInjector draws the failure positions for a whole block of
// Monte-Carlo trials in one sweep and replays them onto a reusable
// Instance trial by trial as diffs, so advancing from trial k to trial
// k+1 costs O(#failures of k + #failures of k+1) instead of the O(E)
// Reset+redraw of InjectInto.
//
// Determinism contract: trial j of a block filled with FillStream(m, seed,
// first, n) draws its failures from exactly the stream rng.Stream(seed,
// first+j), consuming exactly the randomness Instance.Reinject would — so
// the state after ApplyNext is bit-identical to a fresh InjectInto with
// that trial's stream, and RNGState(j) is the stream's post-injection
// state (resume it for churn randomness). Block size and scheduling
// therefore never change any trial's outcome.
//
// A BatchInjector tracks the failure list currently applied to "its"
// instance; the instance must not be mutated behind its back between
// ApplyNext calls (use Rebase after doing so). It is not safe for
// concurrent use: give each Monte-Carlo worker its own.
type BatchInjector struct {
	g *graph.Graph
	m Model

	// Per-trial failure lists for the current block, CSR-style.
	pos    []int32
	st     []State
	off    []int
	opens  []int32
	closes []int32
	states []rng.State

	// Failure list currently in force on the instance (survives across
	// blocks, so diffing continues seamlessly at block boundaries).
	applied   []int32
	appliedSt []State

	next int // index of the next unapplied trial in the block

	// Diff scratch: epoch-stamped per-edge "old state" table.
	touched    []int32
	oldState   []State
	touchEpoch []uint32
	touchCur   uint32
	diff       []DiffEntry

	r rng.RNG
}

// NewBatchInjector returns an injector for graphs over g. The paired
// Instance must start fault-free (as NewInstance returns it).
func NewBatchInjector(g *graph.Graph) *BatchInjector { return NewBatchInjectorIn(g, nil) }

// NewBatchInjectorIn is NewBatchInjector drawing the O(E) tables from a
// (nil a allocates normally). The per-block failure lists stay heap-grown:
// they are proportional to the block's failure count, not the graph.
func NewBatchInjectorIn(g *graph.Graph, a *arena.Arena) *BatchInjector {
	return &BatchInjector{
		g:          g,
		off:        []int{0},
		oldState:   arena.Typed[State](a, g.NumEdges()),
		touchEpoch: a.U32(g.NumEdges()),
	}
}

// Len returns the number of trials in the current block.
func (bi *BatchInjector) Len() int { return len(bi.off) - 1 }

// Remaining returns the number of unapplied trials left in the block.
func (bi *BatchInjector) Remaining() int { return bi.Len() - bi.next }

// Applied returns the block index of the trial currently applied to the
// instance, or -1 if no trial of this block has been applied yet.
func (bi *BatchInjector) Applied() int { return bi.next - 1 }

// RNGState returns the post-injection generator state of trial j of the
// block: the exact state of trial j's stream after its failure draws.
func (bi *BatchInjector) RNGState(j int) rng.State { return bi.states[j] }

// TrialFailures returns trial j's failure list (positions ascending) as
// shared slices; do not mutate.
func (bi *BatchInjector) TrialFailures(j int) ([]int32, []State) {
	return bi.pos[bi.off[j]:bi.off[j+1]], bi.st[bi.off[j]:bi.off[j+1]]
}

// AppliedFailures returns the failure list of the currently applied trial
// (positions ascending) as shared slices; do not mutate.
func (bi *BatchInjector) AppliedFailures() ([]int32, []State) {
	return bi.applied, bi.appliedSt
}

// FillStream draws the failure lists for trials first..first+n-1, trial
// first+j from the pure per-index stream rng.Stream(seed, first+j) — the
// seeding used by the montecarlo harness.
func (bi *BatchInjector) FillStream(m Model, seed, first uint64, n int) {
	bi.beginFill(m, n)
	for j := 0; j < n; j++ {
		bi.r.ReseedStream(seed, first+uint64(j))
		bi.fillTrial(j)
	}
}

// FillSeq is FillStream for experiments that seed trial i with a plain
// rng.New(seedBase+i) (the historical E7/E9 convention): trial first+j
// draws from a generator reseeded to seedBase+first+j.
func (bi *BatchInjector) FillSeq(m Model, seedBase, first uint64, n int) {
	bi.beginFill(m, n)
	for j := 0; j < n; j++ {
		bi.r.Reseed(seedBase + first + uint64(j))
		bi.fillTrial(j)
	}
}

func (bi *BatchInjector) beginFill(m Model, n int) {
	if bi.next != bi.Len() {
		panic(fmt.Sprintf("fault: BatchInjector refilled with %d unapplied trials", bi.Remaining()))
	}
	bi.m = m
	bi.pos = bi.pos[:0]
	bi.st = bi.st[:0]
	bi.off = append(bi.off[:0], 0)
	bi.opens = growInt32s(bi.opens, n)[:0]
	bi.closes = growInt32s(bi.closes, n)[:0]
	if cap(bi.states) < n {
		bi.states = make([]rng.State, n)
	}
	bi.states = bi.states[:0]
	bi.next = 0
}

// fillTrial appends one trial's failure list, consuming exactly the draw
// sequence of Instance.Reinject (locked by TestBatchDiffApplyMatchesFresh).
func (bi *BatchInjector) fillTrial(j int) {
	var opens, closes int32
	p := bi.m.OpenProb + bi.m.ClosedProb
	mEdges := bi.g.NumEdges()
	switch {
	case p <= 0:
	case p >= 0.5:
		// Dense regime: draw per edge directly.
		for e := 0; e < mEdges; e++ {
			u := bi.r.Float64()
			switch {
			case u < bi.m.OpenProb:
				bi.pos = append(bi.pos, int32(e))
				bi.st = append(bi.st, Open)
				opens++
			case u < p:
				bi.pos = append(bi.pos, int32(e))
				bi.st = append(bi.st, Closed)
				closes++
			}
		}
	default:
		// Sparse regime: geometric skipping over healthy runs.
		pos := bi.r.Geometric(p)
		for pos < mEdges {
			if bi.r.Float64()*p < bi.m.OpenProb {
				bi.pos = append(bi.pos, int32(pos))
				bi.st = append(bi.st, Open)
				opens++
			} else {
				bi.pos = append(bi.pos, int32(pos))
				bi.st = append(bi.st, Closed)
				closes++
			}
			pos += 1 + bi.r.Geometric(p)
		}
	}
	bi.off = append(bi.off, len(bi.pos))
	bi.opens = append(bi.opens, opens)
	bi.closes = append(bi.closes, closes)
	bi.states = append(bi.states, bi.r.State())
}

// ApplyNext advances inst from the previously applied trial's switch
// states to the next trial's, and returns the diff: exactly the edges
// whose state changed, each once, with old and new states. The returned
// slice is reused by the next call. After ApplyNext, inst is bit-identical
// to a fresh InjectInto with the trial's generator.
//
//ftcsn:hotpath per-trial fault advance; the O(#changes) diff is why trials beat O(E) re-injection
func (bi *BatchInjector) ApplyNext(inst *Instance) []DiffEntry {
	j := bi.next
	if j >= bi.Len() {
		panic("fault: BatchInjector block exhausted")
	}
	newPos, newSt := bi.TrialFailures(j)

	// Record the pre-apply state of every edge either list touches.
	bi.bumpTouch()
	bi.touched = bi.touched[:0]
	for i, e := range bi.applied {
		bi.mark(e, bi.appliedSt[i])
	}
	for _, e := range newPos {
		bi.mark(e, inst.Edge[e]) // Normal unless also in applied
	}

	// Clear the old failures, then set the new ones.
	for _, e := range bi.applied {
		inst.Edge[e] = Normal
	}
	for i, e := range newPos {
		inst.Edge[e] = newSt[i]
	}
	inst.opens = int(bi.opens[j])
	inst.closes = int(bi.closes[j])

	bi.diff = bi.diff[:0]
	for _, e := range bi.touched {
		if s := inst.Edge[e]; s != bi.oldState[e] {
			bi.diff = append(bi.diff, DiffEntry{Edge: e, Old: bi.oldState[e], New: s})
		}
	}

	bi.applied = append(bi.applied[:0], newPos...)
	bi.appliedSt = append(bi.appliedSt[:0], newSt...)
	bi.next = j + 1
	return bi.diff
}

// Rebase resets inst to the fault-free state and forgets the applied
// list. Call it when the instance was mutated outside the injector (e.g.
// by a direct InjectInto) before the next ApplyNext.
func (bi *BatchInjector) Rebase(inst *Instance) {
	inst.Reset()
	bi.applied = bi.applied[:0]
	bi.appliedSt = bi.appliedSt[:0]
}

func (bi *BatchInjector) bumpTouch() {
	bi.touchCur++
	if bi.touchCur == 0 {
		for i := range bi.touchEpoch {
			bi.touchEpoch[i] = 0
		}
		bi.touchCur = 1
	}
}

func (bi *BatchInjector) mark(e int32, old State) {
	if bi.touchEpoch[e] != bi.touchCur {
		bi.touchEpoch[e] = bi.touchCur
		bi.oldState[e] = old
		bi.touched = append(bi.touched, e)
	}
}

// ApplyDiff applies a diff to inst (sets every entry's New state),
// maintaining the failure counters.
func ApplyDiff(inst *Instance, diff []DiffEntry) {
	for _, d := range diff {
		inst.SetState(d.Edge, d.New)
	}
}

// RevertDiff undoes a diff on inst (restores every entry's Old state),
// maintaining the failure counters. ApplyDiff followed by RevertDiff
// round-trips the instance exactly. Note that neither function updates a
// BatchInjector's applied-list tracking: after reverting, re-apply the
// diff (or Rebase) before the injector's next ApplyNext.
func RevertDiff(inst *Instance, diff []DiffEntry) {
	for i := len(diff) - 1; i >= 0; i-- {
		inst.SetState(diff[i].Edge, diff[i].Old)
	}
}

// growInt32s resizes s to n elements, reusing capacity when possible.
func growInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
