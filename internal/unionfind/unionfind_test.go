package unionfind

import (
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	d := New(5)
	if d.Components() != 5 {
		t.Fatalf("Components = %d", d.Components())
	}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if d.Same(i, j) {
				t.Fatalf("fresh DSU: %d and %d joined", i, j)
			}
		}
	}
}

func TestUnionChain(t *testing.T) {
	d := New(10)
	for i := 0; i < 9; i++ {
		if !d.Union(i, i+1) {
			t.Fatalf("Union(%d,%d) reported no-op", i, i+1)
		}
	}
	if d.Components() != 1 {
		t.Fatalf("Components = %d after chain", d.Components())
	}
	if !d.Same(0, 9) {
		t.Fatal("0 and 9 not joined")
	}
	if d.Union(3, 7) {
		t.Fatal("Union inside one component reported a merge")
	}
}

func TestReset(t *testing.T) {
	d := New(4)
	d.Union(0, 1)
	d.Union(2, 3)
	d.Reset()
	if d.Components() != 4 || d.Same(0, 1) {
		t.Fatal("Reset did not restore singletons")
	}
}

// Property: Same is an equivalence relation consistent with the union
// history (checked against a naive quadratic implementation).
func TestQuickAgainstNaive(t *testing.T) {
	type op struct{ A, B uint8 }
	f := func(ops []op) bool {
		const n = 32
		d := New(n)
		naive := make([]int, n)
		for i := range naive {
			naive[i] = i
		}
		relabel := func(from, to int) {
			for i := range naive {
				if naive[i] == from {
					naive[i] = to
				}
			}
		}
		for _, o := range ops {
			a, b := int(o.A)%n, int(o.B)%n
			d.Union(a, b)
			if naive[a] != naive[b] {
				relabel(naive[a], naive[b])
			}
		}
		comp := map[int]bool{}
		for i := 0; i < n; i++ {
			comp[naive[i]] = true
			for j := 0; j < n; j++ {
				if d.Same(i, j) != (naive[i] == naive[j]) {
					return false
				}
			}
		}
		return d.Components() == len(comp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
