package unionfind

import "ftcsn/internal/arena"

// Sparse is a disjoint-set forest whose Reset is O(1): elements are
// lazily re-initialized on first touch after a reset, via epoch stamps.
// It serves workloads that union only a handful of the n elements per
// round — e.g. the closed switches of one Monte-Carlo fault trial, where
// a full DSU Reset would be O(n) against O(#closed) useful work.
//
// The component partition produced by a sequence of Unions is identical to
// DSU's for the same sequence; only the representative choice may differ,
// which no caller in this repository depends on.
type Sparse struct {
	parent []int32
	rank   []int8
	epoch  []uint32
	cur    uint32
}

// NewSparse returns a Sparse DSU over elements [0, n), all singletons.
func NewSparse(n int) *Sparse { return NewSparseIn(n, nil) }

// NewSparseIn is NewSparse drawing its buffers from a (nil a allocates
// normally).
func NewSparseIn(n int, a *arena.Arena) *Sparse {
	return &Sparse{
		parent: a.I32(n),
		rank:   a.I8(n),
		epoch:  a.U32(n),
		cur:    1,
	}
}

// Len returns the number of elements.
func (d *Sparse) Len() int { return len(d.parent) }

// Reset returns every element to a singleton component in O(1) (O(n) only
// on the ~4-billion-reset epoch wraparound).
func (d *Sparse) Reset() {
	d.cur++
	if d.cur == 0 {
		for i := range d.epoch {
			d.epoch[i] = 0
		}
		d.cur = 1
	}
}

// touch lazily initializes x for the current epoch.
func (d *Sparse) touch(x int) {
	if d.epoch[x] != d.cur {
		d.epoch[x] = d.cur
		d.parent[x] = int32(x)
		d.rank[x] = 0
	}
}

// Find returns the representative of x's component, with path halving.
func (d *Sparse) Find(x int) int {
	d.touch(x)
	for d.parent[x] != int32(x) {
		d.parent[x] = d.parent[d.parent[x]]
		x = int(d.parent[x])
	}
	return x
}

// Union merges the components of x and y and reports whether they were
// previously distinct.
func (d *Sparse) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.rank[rx] < d.rank[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = int32(rx)
	if d.rank[rx] == d.rank[ry] {
		d.rank[rx]++
	}
	return true
}

// Same reports whether x and y are in one component.
func (d *Sparse) Same(x, y int) bool { return d.Find(x) == d.Find(y) }
