// Package unionfind implements disjoint-set forests with union by rank and
// path halving.
//
// In the random switch failure model of Pippenger & Lin, a closed failure
// contracts the two endpoints of a switch into a single electrical node.
// A set of closed failures therefore partitions the links of a network into
// contracted components; two terminals are "shorted" (Lemma 7 of the paper)
// exactly when they land in the same component. Union-find is the natural
// data structure for that contraction.
package unionfind

import "ftcsn/internal/arena"

// DSU is a disjoint-set union structure over elements [0, n).
type DSU struct {
	parent []int32
	rank   []int8
	count  int // number of live components
}

// New returns a DSU with n singleton components.
func New(n int) *DSU { return NewIn(n, nil) }

// NewIn is New drawing its buffers from a (nil a allocates normally).
func NewIn(n int, a *arena.Arena) *DSU {
	d := &DSU{parent: a.I32(n), rank: a.I8(n), count: n}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

// Len returns the number of elements.
func (d *DSU) Len() int { return len(d.parent) }

// Components returns the current number of disjoint components.
func (d *DSU) Components() int { return d.count }

// Find returns the representative of x's component, with path halving.
func (d *DSU) Find(x int) int {
	for d.parent[x] != int32(x) {
		d.parent[x] = d.parent[d.parent[x]]
		x = int(d.parent[x])
	}
	return x
}

// Union merges the components of x and y and reports whether they were
// previously distinct.
func (d *DSU) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.rank[rx] < d.rank[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = int32(rx)
	if d.rank[rx] == d.rank[ry] {
		d.rank[rx]++
	}
	d.count--
	return true
}

// Same reports whether x and y are in one component.
func (d *DSU) Same(x, y int) bool { return d.Find(x) == d.Find(y) }

// Reset returns every element to its own singleton component, reusing the
// allocation.
func (d *DSU) Reset() {
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.rank[i] = 0
	}
	d.count = len(d.parent)
}
