package circulant

import "testing"

func TestNewValidates(t *testing.T) {
	for _, bad := range []struct {
		n       int
		strides []int
		depth   int
	}{
		{1, []int{1}, 2},
		{5, nil, 2},
		{5, []int{0}, 2},
		{5, []int{5}, 2},
		{5, []int{2, 2}, 2},
		{5, []int{1}, 0},
	} {
		if _, err := New(bad.n, bad.strides, bad.depth); err == nil {
			t.Errorf("New(%d, %v, %d) accepted invalid parameters",
				bad.n, bad.strides, bad.depth)
		}
	}
}

func TestShape(t *testing.T) {
	nw, err := New(6, []int{1, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.G.Validate(); err != nil {
		t.Fatal(err)
	}
	wantEdges := 2*6 + 4*6*3 // terminals + depth·n·(hold+2 strides)
	if nw.G.NumEdges() != wantEdges {
		t.Fatalf("NumEdges = %d, want %d", nw.G.NumEdges(), wantEdges)
	}
}

// TestLevels pins the family's role in the Levels contract: unstaged,
// levelable, and not level-sorted (terminals first), so it exercises the
// permutation sweep path.
func TestLevels(t *testing.T) {
	nw, err := New(5, []int{1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := nw.G.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if lv.Sorted() {
		t.Fatal("circulant IDs unexpectedly level-sorted; permutation path not exercised")
	}
	if got, want := lv.NumLevels(), nw.Depth+3; got != want {
		t.Fatalf("NumLevels = %d, want %d", got, want)
	}
	for tcol := 0; tcol <= nw.Depth; tcol++ {
		for i := 0; i < nw.N; i++ {
			if got := lv.Of(nw.Relay(tcol, i)); got != int32(tcol+1) {
				t.Fatalf("relay (%d,%d) at level %d, want %d", tcol, i, got, tcol+1)
			}
		}
	}
}

// TestFullAccess checks that with stride 1 and depth ≥ n−1 every input
// reaches every output fault-free (walks can realize any ring offset).
func TestFullAccess(t *testing.T) {
	nw, err := New(5, []int{1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	all := func(int32) bool { return true }
	for _, in := range nw.G.Inputs() {
		seen := nw.G.ReachableFrom(in, all)
		for _, out := range nw.G.Outputs() {
			if !seen[out] {
				t.Fatalf("input %d cannot reach output %d in fault-free network", in, out)
			}
		}
	}
}

// FuzzBuild drives New over small rings and checks structural invariants:
// a valid graph whose leveling steps by exactly one along every edge.
func FuzzBuild(f *testing.F) {
	f.Add(uint8(5), uint8(1), uint8(2), uint8(3))
	f.Add(uint8(8), uint8(3), uint8(5), uint8(2))
	f.Add(uint8(2), uint8(1), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, n8, s1, s2, depth uint8) {
		n := 2 + int(n8%9)
		strides := []int{1 + int(s1)%(n-1)}
		if s2 != 0 {
			s := 1 + int(s2)%(n-1)
			if s != strides[0] {
				strides = append(strides, s)
			}
		}
		nw, err := New(n, strides, 1+int(depth%5))
		if err != nil {
			t.Fatalf("New(%d, %v): %v", n, strides, err)
		}
		if err := nw.G.Validate(); err != nil {
			t.Fatal(err)
		}
		lv, err := nw.G.Levels()
		if err != nil {
			t.Fatal(err)
		}
		for e := int32(0); e < int32(nw.G.NumEdges()); e++ {
			u, v := nw.G.EdgeFrom(e), nw.G.EdgeTo(e)
			if lv.Of(v) != lv.Of(u)+1 {
				t.Fatalf("edge %d→%d spans levels %d→%d", u, v, lv.Of(u), lv.Of(v))
			}
		}
	})
}
