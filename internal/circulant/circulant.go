// Package circulant builds DAG-unrolled circulant networks for circuit
// switching.
//
// A circulant graph C(n; s₁,…,s_k) places n relays on a ring and joins
// relay i to relays i+s₁, …, i+s_k (mod n). Circulants are the classic
// vertex-transitive fault-tolerant interconnects [cf. "Fault-Tolerant
// Shared-Relay Communication in Circulant Interconnection Networks"]:
// every relay sees the same stride set, so no single relay is special and
// k independent strides give k edge-disjoint ways forward.
//
// As with hyperx, the (cyclic, undirected) interconnect is unrolled into
// the acyclic layered form circuit switching needs: columns 0..Depth each
// hold one copy of the ring, relay (i, t) is joined to its hold successor
// (i, t+1) and to ((i+s) mod n, t+1) for every stride s, ring position i
// gets an input terminal feeding (i, 0) and an output terminal fed by
// (i, Depth). A circuit is a walk that advances by one stride (or holds)
// per time step; reachability of output j from input i is governed by
// which sums of at most Depth strides hit j−i (mod n).
//
// Terminals are allocated before the columns, so — like hyperx and unlike
// the stage-layered MINs — vertex IDs are not level-sorted and the family
// exercises the permutation path of the graph.Levels contract.
package circulant

import (
	"fmt"

	"ftcsn/internal/graph"
)

// MaxEdges caps accidental huge instances.
const MaxEdges = 1 << 24

// Network is a materialized DAG-unrolled circulant.
type Network struct {
	N       int   // relays per column = terminals per side
	Strides []int // distinct strides, each in (0, n)
	Depth   int   // number of column transitions (columns 0..Depth)
	G       *graph.Graph

	colBase []int32 // colBase[t] is the first vertex ID of column t
}

// New builds the unrolled circulant C(n; strides) with the given number of
// time steps. Strides must be distinct and in (0, n); depth ≥ 1.
func New(n int, strides []int, depth int) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("circulant: ring size %d < 2", n)
	}
	if len(strides) == 0 {
		return nil, fmt.Errorf("circulant: empty stride set")
	}
	seen := make(map[int]bool, len(strides))
	for _, s := range strides {
		if s <= 0 || s >= n {
			return nil, fmt.Errorf("circulant: stride %d outside (0, %d)", s, n)
		}
		if seen[s] {
			return nil, fmt.Errorf("circulant: duplicate stride %d", s)
		}
		seen[s] = true
	}
	if depth < 1 {
		return nil, fmt.Errorf("circulant: depth %d < 1", depth)
	}
	edges := 2*n + depth*n*(1+len(strides))
	if edges > MaxEdges {
		return nil, fmt.Errorf("circulant: %d switches exceeds MaxEdges=%d", edges, MaxEdges)
	}

	b := graph.NewBuilder(2*n+(depth+1)*n, edges)
	ins := b.AddVertices(graph.NoStage, n)
	outs := b.AddVertices(graph.NoStage, n)
	nw := &Network{
		N:       n,
		Strides: append([]int(nil), strides...),
		Depth:   depth,
		colBase: make([]int32, depth+1),
	}
	for t := 0; t <= depth; t++ {
		nw.colBase[t] = b.AddVertices(graph.NoStage, n)
	}
	for i := 0; i < n; i++ {
		b.MarkInput(ins + int32(i))
		b.MarkOutput(outs + int32(i))
		b.AddEdge(ins+int32(i), nw.colBase[0]+int32(i))
		b.AddEdge(nw.colBase[depth]+int32(i), outs+int32(i))
	}
	for t := 0; t < depth; t++ {
		from, to := nw.colBase[t], nw.colBase[t+1]
		for i := 0; i < n; i++ {
			b.AddEdge(from+int32(i), to+int32(i)) // hold
			for _, s := range nw.Strides {
				b.AddEdge(from+int32(i), to+int32((i+s)%n))
			}
		}
	}
	nw.G = b.Freeze()
	return nw, nil
}

// Relay returns the vertex ID of ring position i in column t.
func (nw *Network) Relay(t, i int) int32 {
	if t < 0 || t > nw.Depth || i < 0 || i >= nw.N {
		panic(fmt.Sprintf("circulant: Relay(%d,%d) out of range", t, i))
	}
	return nw.colBase[t] + int32(i)
}

// Size returns the switch (edge) count — the paper's size measure.
func (nw *Network) Size() int { return nw.G.NumEdges() }
