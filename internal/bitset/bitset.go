// Package bitset implements a dense, fixed-capacity bitset.
//
// Reachability sweeps over staged networks (majority-access checks, greedy
// routing frontiers, fault masks) are the innermost loops of every
// experiment in this repository; a flat []uint64 with explicit word
// operations keeps them allocation-free and cache-friendly. The
// word-parallel majority-access certifier (core.BatchAccessChecker) uses a
// Set as its lane-row storage through Words.
//
// Every mutator maintains the invariant that the unused high bits of the
// last word (the padding bits, present whenever Len() is not a multiple of
// 64) are zero; Count, Any, Equal and CountRange rely on it. Set, Clear
// and Test therefore panic on out-of-range indices rather than silently
// touching the padding.
package bitset

import (
	"fmt"
	"math/bits"

	"ftcsn/internal/arena"
)

// Set is a bitset over [0, Len()). The zero value is an empty set of
// capacity zero; use New for a set of a given capacity.
type Set struct {
	words []uint64
	n     int
}

// New returns a set of capacity n with all bits clear.
func New(n int) *Set { return NewIn(n, nil) }

// NewIn is New drawing the backing words from a (nil a allocates
// normally).
func NewIn(n int, a *arena.Arena) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: a.U64((n + 63) / 64), n: n}
}

// Len returns the capacity of the set.
func (s *Set) Len() int { return s.n }

// panicRange reports an out-of-range index. It is kept out of line so the
// bounds check in Set/Clear/Test stays within the inliner budget.
func (s *Set) panicRange(i int) {
	panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
}

// Set sets bit i. It panics when i is outside [0, Len()): indices within
// the last word's slack would otherwise corrupt the padding bits and make
// Count, Any and Equal lie.
func (s *Set) Set(i int) {
	if uint(i) >= uint(s.n) {
		s.panicRange(i)
	}
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i. It panics when i is outside [0, Len()).
func (s *Set) Clear(i int) {
	if uint(i) >= uint(s.n) {
		s.panicRange(i)
	}
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Test reports whether bit i is set. It panics when i is outside
// [0, Len()).
func (s *Set) Test(i int) bool {
	if uint(i) >= uint(s.n) {
		s.panicRange(i)
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Words exposes the backing words for hot loops that operate on 64 bits at
// a time (bit i lives at Words()[i/64] bit i%64). Callers that write
// through the slice must preserve the invariant that the padding bits —
// the high bits of the last word beyond Len() — stay zero.
func (s *Set) Words() []uint64 { return s.words }

// SetAll sets every bit in [0, Len()).
func (s *Set) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// trim clears the unused high bits of the last word so Count and Equal are
// exact.
func (s *Set) trim() {
	if r := uint(s.n) & 63; r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << r) - 1
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, n: s.n}
}

// CopyFrom overwrites s with the contents of t. Both must have equal
// capacity.
func (s *Set) CopyFrom(t *Set) {
	if s.n != t.n {
		panic("bitset: CopyFrom capacity mismatch")
	}
	copy(s.words, t.words)
}

// Union sets s = s ∪ t. Capacities must match.
func (s *Set) Union(t *Set) {
	if s.n != t.n {
		panic("bitset: Union capacity mismatch")
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// Intersect sets s = s ∩ t. Capacities must match.
func (s *Set) Intersect(t *Set) {
	if s.n != t.n {
		panic("bitset: Intersect capacity mismatch")
	}
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// AndNot sets s = s \ t. Capacities must match.
func (s *Set) AndNot(t *Set) {
	if s.n != t.n {
		panic("bitset: AndNot capacity mismatch")
	}
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Equal reports whether s and t contain exactly the same bits.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none. Iterate a set with:
//
//	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) { ... }
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	w := i >> 6
	if word := s.words[w] >> (uint(i) & 63); word != 0 {
		r := i + bits.TrailingZeros64(word)
		if r < s.n {
			return r
		}
		return -1
	}
	for w++; w < len(s.words); w++ {
		if s.words[w] != 0 {
			r := w<<6 + bits.TrailingZeros64(s.words[w])
			if r < s.n {
				return r
			}
			return -1
		}
	}
	return -1
}

// Members appends the indices of all set bits to dst and returns it.
func (s *Set) Members(dst []int) []int {
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		dst = append(dst, i)
	}
	return dst
}

// CountRange returns the number of set bits in [lo, hi). Out-of-range
// bounds are clamped to [0, Len()). It popcounts whole words, masking only
// the partial first and last ones, so the cost is O((hi−lo)/64) words
// rather than one scan per set bit.
func (s *Set) CountRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if lo >= hi {
		return 0
	}
	wlo, whi := lo>>6, (hi-1)>>6
	first := ^uint64(0) << (uint(lo) & 63)
	last := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if wlo == whi {
		return bits.OnesCount64(s.words[wlo] & first & last)
	}
	c := bits.OnesCount64(s.words[wlo] & first)
	for w := wlo + 1; w < whi; w++ {
		c += bits.OnesCount64(s.words[w])
	}
	return c + bits.OnesCount64(s.words[whi]&last)
}
