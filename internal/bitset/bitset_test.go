package bitset

import (
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		s.Clear(i)
		if s.Test(i) {
			t.Fatalf("bit %d set after Clear", i)
		}
	}
}

func TestCount(t *testing.T) {
	s := New(200)
	for i := 0; i < 200; i += 3 {
		s.Set(i)
	}
	want := 0
	for i := 0; i < 200; i += 3 {
		want++
	}
	if got := s.Count(); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

func TestSetAllRespectsCapacity(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.SetAll()
		if got := s.Count(); got != n {
			t.Fatalf("SetAll(%d).Count = %d", n, got)
		}
	}
}

func TestNextSet(t *testing.T) {
	s := New(300)
	marks := []int{5, 64, 65, 192, 299}
	for _, i := range marks {
		s.Set(i)
	}
	var got []int
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(marks) {
		t.Fatalf("NextSet iteration found %v, want %v", got, marks)
	}
	for i := range marks {
		if got[i] != marks[i] {
			t.Fatalf("NextSet iteration found %v, want %v", got, marks)
		}
	}
	if s.NextSet(300) != -1 {
		t.Fatal("NextSet past capacity should be -1")
	}
}

func TestNextSetEmpty(t *testing.T) {
	s := New(100)
	if s.NextSet(0) != -1 {
		t.Fatal("NextSet on empty set should be -1")
	}
}

func TestUnionIntersectAndNot(t *testing.T) {
	a, b := New(128), New(128)
	for i := 0; i < 128; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 128; i += 3 {
		b.Set(i)
	}
	u := a.Clone()
	u.Union(b)
	x := a.Clone()
	x.Intersect(b)
	d := a.Clone()
	d.AndNot(b)
	for i := 0; i < 128; i++ {
		inA, inB := i%2 == 0, i%3 == 0
		if u.Test(i) != (inA || inB) {
			t.Fatalf("Union wrong at %d", i)
		}
		if x.Test(i) != (inA && inB) {
			t.Fatalf("Intersect wrong at %d", i)
		}
		if d.Test(i) != (inA && !inB) {
			t.Fatalf("AndNot wrong at %d", i)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(64)
	a.Set(10)
	b := a.Clone()
	b.Set(20)
	if a.Test(20) {
		t.Fatal("Clone shares storage")
	}
	if !b.Test(10) {
		t.Fatal("Clone lost bits")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(70), New(70)
	if !a.Equal(b) {
		t.Fatal("empty sets not equal")
	}
	a.Set(69)
	if a.Equal(b) {
		t.Fatal("different sets reported equal")
	}
	b.Set(69)
	if !a.Equal(b) {
		t.Fatal("same sets not equal")
	}
	if a.Equal(New(71)) {
		t.Fatal("sets of different capacity reported equal")
	}
}

func TestMembers(t *testing.T) {
	s := New(50)
	s.Set(3)
	s.Set(17)
	s.Set(49)
	got := s.Members(nil)
	want := []int{3, 17, 49}
	if len(got) != len(want) {
		t.Fatalf("Members = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
}

func TestCountRange(t *testing.T) {
	s := New(100)
	for i := 10; i < 20; i++ {
		s.Set(i)
	}
	if got := s.CountRange(0, 100); got != 10 {
		t.Fatalf("CountRange full = %d", got)
	}
	if got := s.CountRange(15, 18); got != 3 {
		t.Fatalf("CountRange(15,18) = %d", got)
	}
	if got := s.CountRange(20, 100); got != 0 {
		t.Fatalf("CountRange(20,100) = %d", got)
	}
}

// Property: for any list of indices, Count equals the number of distinct
// indices set.
func TestQuickCountMatchesDistinct(t *testing.T) {
	f := func(idx []uint16) bool {
		s := New(1 << 16)
		distinct := map[int]bool{}
		for _, i := range idx {
			s.Set(int(i))
			distinct[int(i)] = true
		}
		return s.Count() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// mustPanic asserts that f panics.
func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

// TestOutOfRangePanics: Set/Clear/Test on any index outside [0, Len())
// must panic — including indices within the last word's slack, which used
// to be silently accepted and corrupted the padding bits.
func TestOutOfRangePanics(t *testing.T) {
	for _, n := range []int{1, 10, 63, 64, 65, 130} {
		s := New(n)
		bad := []int{n, n + 1, -1}
		if last := ((n+63)/64)*64 - 1; last >= n {
			bad = append(bad, last) // top of the final word's slack, e.g. New(10).Set(63)
		}
		for _, i := range bad {
			mustPanic(t, "Set", func() { s.Set(i) })
			mustPanic(t, "Clear", func() { s.Clear(i) })
			mustPanic(t, "Test", func() { _ = s.Test(i) })
		}
	}
}

// TestCountExactAfterSlackAdjacentWrites locks the padding invariant:
// writes at the last in-range indices (adjacent to the slack of the final
// word) must leave Count, Any and Equal exact. Before the bounds checks,
// New(10).Set(63) succeeded and made Count report a phantom bit.
func TestCountExactAfterSlackAdjacentWrites(t *testing.T) {
	for _, n := range []int{1, 10, 65, 127, 130} {
		s := New(n)
		s.Set(n - 1)
		if got := s.Count(); got != 1 {
			t.Fatalf("n=%d: Count = %d after one write, want 1", n, got)
		}
		mustPanic(t, "slack Set", func() { s.Set(n) })
		if got := s.Count(); got != 1 {
			t.Fatalf("n=%d: Count = %d after rejected slack write, want 1", n, got)
		}
		other := New(n)
		other.Set(n - 1)
		if !s.Equal(other) {
			t.Fatalf("n=%d: Equal lies after rejected slack write", n)
		}
		s.Clear(n - 1)
		if s.Any() {
			t.Fatalf("n=%d: Any lies after clearing the only bit", n)
		}
	}
}

// countRangeNaive is the reference implementation CountRange is
// property-tested against.
func countRangeNaive(s *Set, lo, hi int) int {
	c := 0
	for i := s.NextSet(lo); i >= 0 && i < hi; i = s.NextSet(i + 1) {
		c++
	}
	return c
}

// TestQuickCountRangeMatchesNaive: for random contents and random (even
// inverted or out-of-range) bounds, the word-masked CountRange agrees with
// the bit-at-a-time scan.
func TestQuickCountRangeMatchesNaive(t *testing.T) {
	f := func(idx []uint16, rawLo, rawHi uint16, n uint16) bool {
		size := int(n)%520 + 1 // covers sub-word, word-aligned and multi-word capacities
		s := New(size)
		for _, i := range idx {
			s.Set(int(i) % size)
		}
		lo := int(rawLo)%(size+4) - 2 // deliberately out of range sometimes
		hi := int(rawHi)%(size+4) - 2
		return s.CountRange(lo, hi) == countRangeNaive(s, max(lo, 0), min(hi, size))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCountRangeEdges pins the word-boundary cases explicitly.
func TestCountRangeEdges(t *testing.T) {
	s := New(200)
	s.SetAll()
	cases := []struct{ lo, hi, want int }{
		{0, 200, 200},
		{0, 64, 64},
		{64, 128, 64},
		{63, 65, 2},
		{100, 100, 0},
		{150, 100, 0},
		{-5, 7, 7},
		{190, 400, 10},
		{199, 200, 1},
	}
	for _, c := range cases {
		if got := s.CountRange(c.lo, c.hi); got != c.want {
			t.Fatalf("CountRange(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

// TestWordsSharedStorage: Words exposes live backing storage usable for
// word-at-a-time writes, and bit-level reads observe them.
func TestWordsSharedStorage(t *testing.T) {
	s := New(128)
	w := s.Words()
	if len(w) != 2 {
		t.Fatalf("Words len = %d, want 2", len(w))
	}
	w[1] = 1 << 5
	if !s.Test(64 + 5) {
		t.Fatal("bit write through Words not visible to Test")
	}
	if got := s.Count(); got != 1 {
		t.Fatalf("Count = %d after Words write, want 1", got)
	}
}

func TestCopyFromAndReset(t *testing.T) {
	a, b := New(64), New(64)
	a.Set(5)
	b.CopyFrom(a)
	if !b.Test(5) {
		t.Fatal("CopyFrom lost bit")
	}
	b.Reset()
	if b.Any() {
		t.Fatal("Reset left bits")
	}
	if !a.Any() {
		t.Fatal("Reset affected source")
	}
}
