// Package multibutterfly implements the multibutterfly network of
// Upfal [U] and Leighton & Maggs [LM] — "expanders might be practical" —
// the strongest Θ(n log n) baseline in the experiments.
//
// A multibutterfly replaces each butterfly splitter with an expander-based
// splitter of multiplicity d: at stage s the wires are partitioned into
// blocks of size n/2^s, and each wire has d switches into the upper half
// and d into the lower half of its block's two sub-blocks at stage s+1.
// Routing toward output j follows any idle switch into the sub-block
// matching j's next address bit; expansion guarantees many alternatives,
// which is what lets Leighton–Maggs route around faults.
//
// The crucial limitation that experiment E8 demonstrates: terminal degree
// is the constant 2d, so at any fixed switch-failure rate ε the
// probability that some input loses all its switches is ≈ n·(2ε)^(2d) → 1
// as n grows. Multibutterflies tolerate *worst-case bounded* fault sets,
// not the paper's random-failure model; only Θ(log n) terminal degree —
// hence Θ(n log²n) size, Network 𝒩 — survives random failures.
package multibutterfly

import (
	"fmt"

	"ftcsn/internal/graph"
	"ftcsn/internal/rng"
)

// Network is a materialized multibutterfly on n = 2^k terminals.
type Network struct {
	K       int
	N       int
	D       int // splitter multiplicity: 2d switches per wire per stage
	Columns int // k+1
	G       *graph.Graph
}

// New builds a multibutterfly with multiplicity d for n = 2^k.
// The final stage (block size 2) is a plain butterfly exchange when the
// sub-block size drops below d (multiplicity is capped by block size).
func New(k, d int, seed uint64) (*Network, error) {
	if k < 1 || k > 20 {
		return nil, fmt.Errorf("multibutterfly: k=%d out of range [1,20]", k)
	}
	if d < 1 {
		return nil, fmt.Errorf("multibutterfly: d=%d out of range", d)
	}
	n := 1 << uint(k)
	cols := k + 1
	r := rng.New(seed)
	b := graph.NewBuilder(cols*n, cols*2*d*n)
	for c := 0; c < cols; c++ {
		b.AddVertices(int32(c), n)
	}
	at := func(c, w int) int32 { return int32(c*n + w) }
	for t := 0; t < k; t++ {
		blockSize := n >> uint(t)
		half := blockSize / 2
		dd := d
		if dd > half {
			dd = half
		}
		for block := 0; block < n/blockSize; block++ {
			base := block * blockSize
			// Upper sub-block: [base, base+half); lower: [base+half, ...).
			// d random matchings wire the block's wires into each half.
			for _, sub := range [2]int{0, 1} {
				subBase := base + sub*half
				for m := 0; m < dd; m++ {
					perm := r.Perm(blockSize)
					for w := 0; w < blockSize; w++ {
						b.AddEdge(at(t, base+w), at(t+1, subBase+perm[w]%half))
					}
				}
			}
		}
	}
	for w := 0; w < n; w++ {
		b.MarkInput(at(0, w))
		b.MarkOutput(at(cols-1, w))
	}
	return &Network{K: k, N: n, D: d, Columns: cols, G: b.Freeze()}, nil
}

// Wire returns the vertex of wire w at column c.
func (nw *Network) Wire(c, w int) int32 {
	if c < 0 || c >= nw.Columns || w < 0 || w >= nw.N {
		panic(fmt.Sprintf("multibutterfly: Wire(%d,%d) out of range", c, w))
	}
	return int32(c*nw.N + w)
}

// SubBlockOf returns the half-interval [lo,hi) of wires at column t+1 that
// a circuit heading for output `out` must enter from column t.
func (nw *Network) SubBlockOf(t, out int) (lo, hi int) {
	blockSize := nw.N >> uint(t)
	half := blockSize / 2
	block := (out >> uint(nw.K-t)) << uint(nw.K-t) // top t bits of out
	bit := out >> uint(nw.K-1-t) & 1
	lo = block + bit*half
	return lo, lo + half
}

// RouteGreedy routes a single request from input `in` to output `out`
// around faulty/busy vertices: at each stage it takes any allowed switch
// into the correct sub-block (the Leighton–Maggs greedy step). blocked may
// be nil. It returns the vertex path or nil if the request is stuck.
func (nw *Network) RouteGreedy(in, out int, blocked func(int32) bool) []int32 {
	path := make([]int32, 0, nw.Columns)
	v := nw.Wire(0, in)
	if blocked != nil && blocked(v) {
		return nil
	}
	path = append(path, v)
	w := in
	for t := 0; t < nw.K; t++ {
		lo, hi := nw.SubBlockOf(t, out)
		next := -1
		for _, e := range nw.G.OutEdges(nw.Wire(t, w)) {
			tv := nw.G.EdgeTo(e)
			tw := int(tv) % nw.N
			if tw < lo || tw >= hi {
				continue
			}
			if blocked != nil && blocked(tv) {
				continue
			}
			next = tw
			break
		}
		if next < 0 {
			return nil
		}
		w = next
		path = append(path, nw.Wire(t+1, w))
	}
	if w != out {
		return nil
	}
	return path
}
