package multibutterfly

import (
	"testing"

	"ftcsn/internal/fault"
	"ftcsn/internal/rng"
)

func TestStructure(t *testing.T) {
	nw, err := New(3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nw.N != 8 || nw.Columns != 4 {
		t.Fatalf("N=%d Columns=%d", nw.N, nw.Columns)
	}
	if err := nw.G.Validate(); err != nil {
		t.Fatal(err)
	}
	// Terminal degree 2d except where multiplicity is capped by sub-block
	// size; at k=3, stage-0 blocks have size 8, halves 4 ≥ d=2, so inputs
	// have degree 2·2 = 4.
	for _, in := range nw.G.Inputs() {
		if nw.G.OutDegree(in) != 4 {
			t.Fatalf("input degree = %d", nw.G.OutDegree(in))
		}
	}
}

func TestNewRejects(t *testing.T) {
	if _, err := New(0, 2, 1); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := New(3, 0, 1); err == nil {
		t.Fatal("accepted d=0")
	}
}

func TestSubBlockOf(t *testing.T) {
	nw, _ := New(3, 2, 1) // n=8
	// At t=0, out=5 (101): bit 2 of out = 1 → lower half [4,8).
	lo, hi := nw.SubBlockOf(0, 5)
	if lo != 4 || hi != 8 {
		t.Fatalf("SubBlockOf(0,5) = [%d,%d)", lo, hi)
	}
	// At t=1 the block of out=5 is [4,8), bit 1 of 5 = 0 → upper [4,6).
	lo, hi = nw.SubBlockOf(1, 5)
	if lo != 4 || hi != 6 {
		t.Fatalf("SubBlockOf(1,5) = [%d,%d)", lo, hi)
	}
	// At t=2, block [4,6), bit 0 of 5 = 1 → [5,6).
	lo, hi = nw.SubBlockOf(2, 5)
	if lo != 5 || hi != 6 {
		t.Fatalf("SubBlockOf(2,5) = [%d,%d)", lo, hi)
	}
}

func TestRouteGreedyHealthy(t *testing.T) {
	nw, _ := New(4, 2, 3)
	for in := 0; in < nw.N; in += 3 {
		for out := 0; out < nw.N; out += 5 {
			path := nw.RouteGreedy(in, out, nil)
			if path == nil {
				t.Fatalf("healthy route %d->%d failed", in, out)
			}
			if len(path) != nw.Columns {
				t.Fatalf("path length %d", len(path))
			}
			if path[0] != nw.Wire(0, in) || path[len(path)-1] != nw.Wire(nw.K, out) {
				t.Fatal("endpoints wrong")
			}
			// Consecutive vertices joined by switches.
			for i := 0; i+1 < len(path); i++ {
				found := false
				for _, e := range nw.G.OutEdges(path[i]) {
					if nw.G.EdgeTo(e) == path[i+1] {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("no switch %d->%d", path[i], path[i+1])
				}
			}
		}
	}
}

func TestRouteGreedyAroundFaults(t *testing.T) {
	// Block one intermediate vertex on the preferred route; the expander
	// multiplicity must offer an alternative (Leighton–Maggs's point).
	nw, _ := New(4, 3, 5)
	ref := nw.RouteGreedy(3, 12, nil)
	if ref == nil {
		t.Fatal("reference route failed")
	}
	blockedV := ref[1]
	path := nw.RouteGreedy(3, 12, func(v int32) bool { return v == blockedV })
	if path == nil {
		t.Fatal("no alternative route around one blocked vertex")
	}
	for _, v := range path {
		if v == blockedV {
			t.Fatal("route used blocked vertex")
		}
	}
}

func TestRouteGreedyBlockedInput(t *testing.T) {
	nw, _ := New(3, 2, 1)
	in := nw.Wire(0, 0)
	if nw.RouteGreedy(0, 3, func(v int32) bool { return v == in }) != nil {
		t.Fatal("routed from a blocked input")
	}
}

func TestConstantTerminalDegreeFragility(t *testing.T) {
	// The multibutterfly survives sparse worst-case faults but not the
	// random model: failure probability grows with n at fixed ε because
	// terminal degree is constant. Compare isolation rates at two sizes.
	eps := 0.12
	rate := func(k int) float64 {
		nw, _ := New(k, 2, 9)
		inst := fault.NewInstance(nw.G)
		fails := 0
		const trials = 200
		for i := 0; i < trials; i++ {
			inst.Reinject(fault.Symmetric(eps), rng.Stream(31, uint64(i)))
			if a, _ := inst.IsolatedPair(); a >= 0 {
				fails++
			}
		}
		return float64(fails) / trials
	}
	small, large := rate(3), rate(7)
	if large <= small {
		t.Fatalf("isolation rate did not grow with n: %v -> %v", small, large)
	}
}

func TestMultiplicityCapAtNarrowStages(t *testing.T) {
	// k=2, d=4: blocks at the last transition have size 2 and halves of
	// size 1, so multiplicity caps at 1 there; building must not panic and
	// degrees must stay consistent.
	nw, err := New(2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.G.Validate(); err != nil {
		t.Fatal(err)
	}
	d, _ := nw.G.Depth()
	if d != 2 {
		t.Fatalf("depth = %d", d)
	}
}

func TestWirePanics(t *testing.T) {
	nw, _ := New(2, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	nw.Wire(-1, 0)
}
