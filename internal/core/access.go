package core

import (
	"ftcsn/internal/arena"
	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
)

// Masks restricts traversal during access checks. Nil slices impose no
// restriction. VertexOK is the repair mask (discarded vertices are
// unusable); Busy marks vertices held by established circuits; EdgeOK
// marks switches that are normal with both endpoints usable.
//
// OutAllowed/InAllowed, when non-nil, are the CSR-slot-aligned traversal
// byte arrays for the same masks (graph.BuildOutAllowed/BuildInAllowed):
// slot i's AdjBlocked bit is set iff the edge in slot i is disallowed by
// EdgeOK or its far endpoint by VertexOK. They are maintained
// incrementally by MaskUpdater and let the access BFS test one
// sequentially-read byte per edge instead of two random mask lookups;
// they carry no Busy information, so the fast paths engage only when
// Busy is nil.
type Masks struct {
	VertexOK []bool
	EdgeOK   []bool
	Busy     []bool

	OutAllowed []uint8
	InAllowed  []uint8
}

func (m Masks) vertexAllowed(v int32) bool {
	//ftlint:ignore seamcontract audited: reference slow-path BFS accessor, kept to differentially test the traversal-byte fast path
	if m.VertexOK != nil && !m.VertexOK[v] {
		return false
	}
	if m.Busy != nil && m.Busy[v] {
		return false
	}
	return true
}

func (m Masks) edgeAllowed(e int32) bool {
	//ftlint:ignore seamcontract audited: reference slow-path BFS accessor, kept to differentially test the traversal-byte fast path
	return m.EdgeOK == nil || m.EdgeOK[e]
}

// RepairMasks derives the traversal masks of the repaired network from a
// fault instance, per the paper's discard rule.
func RepairMasks(inst *fault.Instance) Masks {
	var m Masks
	RepairMasksInto(inst, &m)
	return m
}

// RepairMasksInto is RepairMasks writing into m's existing slices (grown on
// first use), so per-trial mask derivation allocates nothing in steady
// state. m.Busy is left untouched. The combined traversal arrays are
// dropped (they no longer match the rebuilt masks); use MaskUpdater to
// keep them current across trials instead.
func RepairMasksInto(inst *fault.Instance, m *Masks) {
	m.VertexOK = inst.RepairInto(m.VertexOK)
	m.EdgeOK = growBools(m.EdgeOK, inst.G.NumEdges())
	for e := range m.EdgeOK {
		m.EdgeOK[e] = inst.RepairedEdgeUsable(m.VertexOK, int32(e))
	}
	m.OutAllowed, m.InAllowed = nil, nil
}

// AccessChecker performs the access computations of Lemmas 3 and 6:
// counting how many vertices of a target stage an idle terminal can reach
// through idle usable vertices. It owns epoch-stamped scratch so repeated
// checks over one network allocate nothing.
//
// "Stage" comparisons run on the graph's topological levels
// (graph.Levels): for 𝒩 and every staged MIN the level assignment IS the
// stage assignment, so nothing changes there, while wrapped networks
// (WrapGraph) get the same checks over their level structure.
type AccessChecker struct {
	nw    *Network
	level []int32 // per-vertex topological level (== stage for 𝒩)
	seen  []uint32
	epoch uint32
	queue []int32

	// batch is the word-parallel whole-network certifier, created lazily on
	// the first MajorityAccessInto call that can use it, so per-terminal
	// users (grid access counts, busy-aware checks) never pay for its rows.
	// a is the arena the checker was built in (nil = heap); the lazy batch
	// certifier draws its lane rows from the same place.
	batch *BatchAccessChecker
	a     *arena.Arena
}

// NewAccessChecker returns a checker for nw.
func NewAccessChecker(nw *Network) *AccessChecker { return NewAccessCheckerIn(nw, nil) }

// NewAccessCheckerIn is NewAccessChecker drawing its buffers from a (nil a
// allocates normally).
func NewAccessCheckerIn(nw *Network, a *arena.Arena) *AccessChecker {
	return &AccessChecker{
		nw:    nw,
		level: networkLevels(nw),
		seen:  a.U32(nw.G.NumVertices()),
		queue: a.I32(1024)[:0],
		a:     a,
	}
}

// networkLevels returns the per-vertex level array the access checks
// compare against. Every Network's graph is acyclic (𝒩 by construction,
// wrapped graphs by WrapGraph's check); the stage-array fallback only
// guards hand-built test networks with cyclic graphs, where the BFS then
// behaves as it historically did on stages.
func networkLevels(nw *Network) []int32 {
	if lv, err := nw.G.Levels(); err == nil {
		return lv.PerVertex()
	}
	return nw.G.Stages()
}

func (ac *AccessChecker) bump() {
	ac.epoch++
	if ac.epoch == 0 {
		for i := range ac.seen {
			ac.seen[i] = 0
		}
		ac.epoch = 1
	}
}

// CountForward returns the number of vertices on targetStage reachable
// from src along forward switches through vertices allowed by m. src
// itself must be allowed by the caller's convention (it is visited
// unconditionally).
func (ac *AccessChecker) CountForward(src int32, targetStage int, m Masks) int {
	if m.OutAllowed != nil && m.Busy == nil {
		return ac.countForwardFast(src, targetStage, m.OutAllowed)
	}
	g := ac.nw.G
	target := int32(targetStage)
	ac.bump()
	ac.seen[src] = ac.epoch
	ac.queue = ac.queue[:0]
	ac.queue = append(ac.queue, src)
	count := 0
	if ac.level[src] == target {
		count++
	}
	for head := 0; head < len(ac.queue); head++ {
		v := ac.queue[head]
		if ac.level[v] >= target {
			continue
		}
		for _, e := range g.OutEdges(v) {
			if !m.edgeAllowed(e) {
				continue
			}
			w := g.EdgeTo(e)
			if ac.seen[w] == ac.epoch || !m.vertexAllowed(w) {
				continue
			}
			ac.seen[w] = ac.epoch
			if ac.level[w] == target {
				count++
			}
			ac.queue = append(ac.queue, w)
		}
	}
	return count
}

// countForwardFast is CountForward reading the combined traversal bytes —
// one sequential byte per CSR slot in place of the edge- and vertex-mask
// lookups (the AdjTerminal bit is ignored: terminals are ordinary vertices
// to access counting). Visit order, and therefore the count, is identical
// to the generic loop.
func (ac *AccessChecker) countForwardFast(src int32, targetStage int, allowed []uint8) int {
	g := ac.nw.G
	start, _, heads := g.CSROut()
	level := ac.level
	target := int32(targetStage)
	ac.bump()
	seen, epoch := ac.seen, ac.epoch
	seen[src] = epoch
	ac.queue = ac.queue[:0]
	ac.queue = append(ac.queue, src)
	count := 0
	if level[src] == target {
		count++
	}
	for head := 0; head < len(ac.queue); head++ {
		v := ac.queue[head]
		if level[v] >= target {
			continue
		}
		for idx := start[v]; idx < start[v+1]; idx++ {
			if allowed[idx]&graph.AdjBlocked != 0 {
				continue
			}
			w := heads[idx]
			if seen[w] == epoch {
				continue
			}
			seen[w] = epoch
			if level[w] == target {
				count++
			}
			ac.queue = append(ac.queue, w)
		}
	}
	return count
}

// CountBackward is CountForward on reversed switches, used for the mirror
// half (Corollary 2): how many targetStage vertices can reach dst.
func (ac *AccessChecker) CountBackward(dst int32, targetStage int, m Masks) int {
	if m.InAllowed != nil && m.Busy == nil {
		return ac.countBackwardFast(dst, targetStage, m.InAllowed)
	}
	g := ac.nw.G
	target := int32(targetStage)
	ac.bump()
	ac.seen[dst] = ac.epoch
	ac.queue = ac.queue[:0]
	ac.queue = append(ac.queue, dst)
	count := 0
	if ac.level[dst] == target {
		count++
	}
	for head := 0; head < len(ac.queue); head++ {
		v := ac.queue[head]
		if ac.level[v] <= target {
			continue
		}
		for _, e := range g.InEdges(v) {
			if !m.edgeAllowed(e) {
				continue
			}
			w := g.EdgeFrom(e)
			if ac.seen[w] == ac.epoch || !m.vertexAllowed(w) {
				continue
			}
			ac.seen[w] = ac.epoch
			if ac.level[w] == target {
				count++
			}
			ac.queue = append(ac.queue, w)
		}
	}
	return count
}

// countBackwardFast is countForwardFast on the reverse CSR.
func (ac *AccessChecker) countBackwardFast(dst int32, targetStage int, allowed []uint8) int {
	g := ac.nw.G
	start, _, tails := g.CSRIn()
	level := ac.level
	target := int32(targetStage)
	ac.bump()
	seen, epoch := ac.seen, ac.epoch
	seen[dst] = epoch
	ac.queue = ac.queue[:0]
	ac.queue = append(ac.queue, dst)
	count := 0
	if level[dst] == target {
		count++
	}
	for head := 0; head < len(ac.queue); head++ {
		v := ac.queue[head]
		if level[v] <= target {
			continue
		}
		for idx := start[v]; idx < start[v+1]; idx++ {
			if allowed[idx]&graph.AdjBlocked != 0 {
				continue
			}
			w := tails[idx]
			if seen[w] == epoch {
				continue
			}
			seen[w] = epoch
			if level[w] == target {
				count++
			}
			ac.queue = append(ac.queue, w)
		}
	}
	return count
}

// GridAccessCount implements Lemma 3's measurement: the number of rows of
// the input's directed grid Φ_i, at the grid's last stage (stage ν), that
// the input can reach through allowed vertices. Since grids are disjoint
// before stage ν, a plain forward count to stage ν is exactly this.
func (ac *AccessChecker) GridAccessCount(inputIdx int, m Masks) int {
	in := ac.nw.Inputs()[inputIdx]
	return ac.CountForward(in, ac.nw.P.Nu, m)
}

// MajorityReport aggregates a Lemma-6 check over all terminals.
type MajorityReport struct {
	// MiddleSize is the number of vertices on stage 2ν; majority means
	// strictly more than MiddleSize/2.
	MiddleSize int
	// InputAccess[i] is the number of middle-stage vertices input i
	// reaches; OutputAccess[j] likewise backwards from output j. Busy
	// terminals are recorded as -1 (exempt).
	InputAccess  []int
	OutputAccess []int
	// OK reports whether every idle terminal has strict-majority access on
	// its side — the paper's majority-access property for 𝒩 and its
	// mirror, which together imply the repaired network contains a
	// strictly nonblocking n-network (§6, observation after Lemma 6).
	OK bool
}

// MajorityAccess runs the Lemma-6 / Corollary-2 check for every idle input
// and output under the given masks.
func (nw *Network) MajorityAccess(ac *AccessChecker, m Masks) MajorityReport {
	var rep MajorityReport
	nw.MajorityAccessInto(ac, m, &rep)
	return rep
}

// MajorityAccessInto is MajorityAccess writing into rep, reusing its access
// slices across calls so repeated certification allocates nothing.
//
// When the masks carry the CSR-slot traversal bytes and no Busy
// information — the batched-trial steady state, where MaskUpdater keeps
// OutAllowed/InAllowed current — the check runs on the word-parallel
// BatchAccessChecker: all terminals certified in O(E·n/64) word operations
// instead of 2n BFS sweeps, with bit-identical reports (see the
// differential harness). Busy-aware or byte-less masks fall back to the
// per-terminal BFS below.
func (nw *Network) MajorityAccessInto(ac *AccessChecker, m Masks, rep *MajorityReport) {
	if m.Busy == nil && m.OutAllowed != nil && m.InAllowed != nil {
		if ac.batch == nil {
			ac.batch = NewBatchAccessCheckerIn(nw, ac.a)
		}
		if ac.batch.MajorityAccessInto(m, rep) {
			return
		}
	}
	nw.majorityAccessBFS(ac, m, rep)
}

// majorityAccessBFS is the per-terminal reference path: one CountForward /
// CountBackward BFS per terminal, with busy terminals exempted as -1.
func (nw *Network) majorityAccessBFS(ac *AccessChecker, m Masks, rep *MajorityReport) {
	mid := nw.MiddleStage
	rep.MiddleSize = int(nw.StageSize[mid])
	rep.InputAccess = growInts(rep.InputAccess, len(nw.Inputs()))
	rep.OutputAccess = growInts(rep.OutputAccess, len(nw.Outputs()))
	rep.OK = true
	need := rep.MiddleSize/2 + 1
	for i, in := range nw.Inputs() {
		if m.Busy != nil && m.Busy[in] {
			rep.InputAccess[i] = -1
			continue
		}
		c := ac.CountForward(in, mid, m)
		rep.InputAccess[i] = c
		if c < need {
			rep.OK = false
		}
	}
	for j, out := range nw.Outputs() {
		if m.Busy != nil && m.Busy[out] {
			rep.OutputAccess[j] = -1
			continue
		}
		c := ac.CountBackward(out, mid, m)
		rep.OutputAccess[j] = c
		if c < need {
			rep.OK = false
		}
	}
}

// growInts resizes s to n elements, reusing capacity when possible.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		//ftlint:ignore hotpath growth fallback on first use; steady-state trials reuse the capacity
		return make([]int, n)
	}
	return s[:n]
}

// growBools is growInts for []bool; the contents are unspecified and must
// be overwritten by the caller.
func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
