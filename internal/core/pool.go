package core

import (
	"sync"

	"ftcsn/internal/arena"
)

// EvaluatorPool recycles per-worker scratch arenas across the networks of
// a multi-network experiment (E8's crossover sweep, E10's ablations). Each
// Monte-Carlo worker that needs an evaluator — or any other arena-backed
// scratch, via Get/Put — draws an arena from the pool; when the run over
// one network finishes, releasing the scratch returns its arena, Reset,
// for the next network's workers. The slabs converge to the sizes the
// largest graph needs, so a sweep over many networks allocates scratch
// roughly once instead of (networks × workers) times.
//
// Ownership rules (DESIGN.md §2.8):
//
//   - Get/NewEvaluator may be called concurrently (Monte-Carlo workers
//     construct their scratch inside worker goroutines); each arena handed
//     out is owned by exactly one scratch until returned.
//   - Put/Release reset the arena, invalidating every buffer of the
//     scratch built in it. Release the scratch only after the run is over
//     and its results have been folded out; using an Evaluator after
//     Release is a bug (its buffers now belong to someone else).
//   - Arena-backed constructors zero what they take, so a pooled
//     evaluator's trial outcomes are bit-identical to a fresh one's — the
//     determinism gate relies on this.
type EvaluatorPool struct {
	mu   sync.Mutex
	free []*arena.Arena

	created int
	reused  int
}

// NewEvaluatorPool returns an empty pool.
func NewEvaluatorPool() *EvaluatorPool { return &EvaluatorPool{} }

// Get hands out an owned arena (recycled when one is free).
func (p *EvaluatorPool) Get() *arena.Arena {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		a := p.free[n-1]
		p.free = p.free[:n-1]
		p.reused++
		return a
	}
	p.created++
	return arena.New()
}

// Put resets a and returns it to the pool. Every slice taken from a is
// invalidated; the caller must have dropped the scratch built in it.
func (p *EvaluatorPool) Put(a *arena.Arena) {
	if a == nil {
		return
	}
	a.Reset()
	p.mu.Lock()
	p.free = append(p.free, a)
	p.mu.Unlock()
}

// Arenas reports how many arenas the pool has created and how many Get
// calls were served by recycling — the observability hook the pool tests
// (and curious benchmarks) read.
func (p *EvaluatorPool) Arenas() (created, reused int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created, p.reused
}

// NewEvaluator returns an evaluator for nw whose buffers live in a pooled
// arena; hand it back with Evaluator.Release when the run is done.
func (p *EvaluatorPool) NewEvaluator(nw *Network) *Evaluator {
	a := p.Get()
	ev := NewEvaluatorIn(nw, a)
	ev.pool, ev.a = p, a
	return ev
}

// Release returns a pooled evaluator's arena to its pool (a no-op for
// unpooled evaluators). The evaluator must not be used afterwards: its
// buffers are recycled for the pool's next customer.
func (ev *Evaluator) Release() {
	if ev.pool == nil {
		return
	}
	pool, a := ev.pool, ev.a
	ev.pool, ev.a = nil, nil
	// Drop the buffer references so any use-after-release fails loudly
	// (nil deref) instead of corrupting a neighbor's arena. The churn
	// engine needs the same treatment: resync handed it the arena-backed
	// mask slices via SetMasksShared, and an externally installed engine
	// (SetChurnEngine) outlives the evaluator — detach them so a later
	// ConnectBatch panics instead of silently probing whoever owns the
	// recycled slabs next.
	if ev.eng != nil && ev.synced {
		ev.eng.SetMasksShared(nil, nil, nil)
	}
	ev.inst, ev.fsc, ev.ac, ev.rt, ev.batch, ev.mu = nil, nil, nil, nil, nil, nil
	ev.eng = nil
	ev.masks = Masks{}
	ev.synced = false
	pool.Put(a)
}
