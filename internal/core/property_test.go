package core

// Property-based tests of the Network-𝒩 construction and its fault
// pipeline, over randomly drawn parameters and fault instances.

import (
	"testing"
	"testing/quick"

	"ftcsn/internal/fault"
	"ftcsn/internal/netsim"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

// randomParams draws small but varied parameters.
func randomParams(r *rng.RNG) Params {
	return Params{
		Nu:    1 + r.Intn(2),
		Gamma: r.Intn(2),
		M:     []int{2, 4, 8}[r.Intn(3)],
		DQ:    1 + r.Intn(3),
		Seed:  r.Uint64(),
	}
}

// TestQuickConstructionInvariants: for any valid parameters the built
// network satisfies the structural invariants of §6.
func TestQuickConstructionInvariants(t *testing.T) {
	root := rng.New(0xC0DE)
	f := func(tick uint32) bool {
		r := root.Split(uint64(tick))
		p := randomParams(r)
		nw, err := Build(p)
		if err != nil {
			t.Logf("build error for %+v: %v", p, err)
			return false
		}
		g := nw.G
		// (1) Validate: terminals well-formed.
		if g.Validate() != nil {
			return false
		}
		// (2) Edge count matches the closed form.
		if g.NumEdges() != Accounting(p).Edges {
			return false
		}
		// (3) Depth is exactly 4ν.
		d, err := g.Depth()
		if err != nil || d != 4*p.Nu {
			return false
		}
		// (4) Stages are consecutive: every switch joins stage s to s+1.
		for e := int32(0); e < int32(g.NumEdges()); e++ {
			if g.Stage(g.EdgeTo(e))-g.Stage(g.EdgeFrom(e)) != 1 {
				return false
			}
		}
		// (5) Terminal degrees equal L.
		for _, in := range nw.Inputs() {
			if g.OutDegree(in) != p.L() {
				return false
			}
		}
		// (6) Mirror symmetry of per-transition edge counts.
		counts := make([]int, 4*p.Nu)
		for e := int32(0); e < int32(g.NumEdges()); e++ {
			counts[g.Stage(g.EdgeFrom(e))]++
		}
		for s := range counts {
			if counts[s] != counts[len(counts)-1-s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFaultPipelineSound: for any fault draw, the pipeline outcome is
// internally consistent — shorted instances never succeed, fault-free
// instances always do, and majority access implies churn never blocks.
func TestQuickFaultPipelineSound(t *testing.T) {
	nw, err := Build(Params{Nu: 2, Gamma: 0, M: 4, DQ: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(0xFA17)
	f := func(tick uint32) bool {
		r := root.Split(uint64(tick))
		eps := []float64{0, 0.001, 0.01, 0.05}[r.Intn(4)]
		inst := fault.Inject(nw.G, fault.Symmetric(eps), r)
		out := nw.EvaluateInstance(inst, 60, r.Split(1))
		if eps == 0 && !out.Success {
			return false
		}
		if out.Shorted && out.Success {
			return false
		}
		if out.Success && out.ChurnFailures > 0 {
			return false
		}
		// Majority access must imply zero churn failures: the certificate
		// is sufficient for strict nonblockingness.
		if out.MajorityAccess && out.ChurnFailures > 0 {
			return false
		}
		// Counters consistent.
		if out.FailedSwitches != out.OpenSwitches+out.ClosedSwitches {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRepairMasksConsistent: every usable switch under the repair has
// both endpoints usable and is normal; every discarded vertex is adjacent
// to a failed switch.
func TestQuickRepairMasksConsistent(t *testing.T) {
	nw, err := Build(Params{Nu: 1, Gamma: 1, M: 2, DQ: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(0x9A5)
	f := func(tick uint32) bool {
		r := root.Split(uint64(tick))
		inst := fault.Inject(nw.G, fault.Symmetric(0.02), r)
		masks := RepairMasks(inst)
		for e := int32(0); e < int32(nw.G.NumEdges()); e++ {
			if masks.EdgeOK[e] {
				if inst.Edge[e] != fault.Normal {
					return false
				}
				if !masks.VertexOK[nw.G.EdgeFrom(e)] || !masks.VertexOK[nw.G.EdgeTo(e)] {
					return false
				}
			}
		}
		faulty := inst.FaultyVertices()
		for v := int32(0); v < int32(nw.G.NumVertices()); v++ {
			if !masks.VertexOK[v] {
				if nw.G.IsTerminal(v) {
					return false // terminals never discarded
				}
				if !faulty[v] {
					return false // discarded but not faulty
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAccessMonotoneInMasks: restricting the masks can only reduce
// access counts.
func TestQuickAccessMonotoneInMasks(t *testing.T) {
	nw, err := Build(Params{Nu: 2, Gamma: 0, M: 4, DQ: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ac := NewAccessChecker(nw)
	root := rng.New(0xACCE)
	f := func(tick uint32) bool {
		r := root.Split(uint64(tick))
		// Random busy set.
		busy := make([]bool, nw.G.NumVertices())
		for i := 0; i < 30; i++ {
			busy[r.Intn(nw.G.NumVertices())] = true
		}
		in := nw.Inputs()[r.Intn(len(nw.Inputs()))]
		busy[in] = false
		free := ac.CountForward(in, nw.MiddleStage, Masks{})
		restricted := ac.CountForward(in, nw.MiddleStage, Masks{Busy: busy})
		return restricted <= free
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestChurnAgainstRouterInvariants: long random churn maintains router
// invariants at every 50th step.
func TestChurnAgainstRouterInvariants(t *testing.T) {
	nw, err := Build(Params{Nu: 2, Gamma: 0, M: 4, DQ: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	inst := fault.Inject(nw.G, fault.Symmetric(0.002), rng.New(12))
	rt := route.NewRepairedRouter(inst)
	r := rng.New(13)
	var cd netsim.ChurnDriver
	for round := 0; round < 10; round++ {
		cd.Run(rt, nw.Inputs(), nw.Outputs(), 50, r)
		if err := rt.VerifyInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		rt.Reset()
	}
}
