package core

import (
	"encoding/binary"
	"sync"
	"testing"

	"ftcsn/internal/fault"
)

var fuzzNetOnce = sync.OnceValues(func() (*Network, error) {
	return Build(DefaultParams(1))
})

// FuzzBatchedMajorityAccess drives the word-parallel certifier against the
// per-terminal BFS under fuzzed edge-state sequences. The network is
// DefaultParams(1) — n=4 terminals, NOT divisible by 64, so every run
// exercises a partial lane strip. Input encoding: byte 0 picks the strip
// width (1..64 lanes); the rest are records of 3 bytes (edgeLo, edgeHi,
// state mod 3). After each record the incrementally maintained masks are
// recertified both ways and the reports must be bit-identical.
func FuzzBatchedMajorityAccess(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})                                     // width 1
	f.Add([]byte{0x3F, 0x05, 0x00, 0x01})                   // width 64, one open edge
	f.Add([]byte{0x06, 0x00, 0x00, 0x02, 0x10, 0x00, 0x01}) // width 7, closed + open
	f.Add([]byte{
		0x02, // width 3: partial strips even for n=4
		0x40, 0x01, 0x02, 0x41, 0x01, 0x01, 0x42, 0x01, 0x02,
		0x40, 0x01, 0x00, 0xff, 0xff, 0x01,
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		nw, err := fuzzNetOnce()
		if err != nil {
			t.Skip(err)
		}
		g := nw.G
		nE := int32(g.NumEdges())

		width := 64
		if len(data) > 0 {
			width = int(data[0]&0x3F) + 1
			data = data[1:]
		}
		inst := fault.NewInstance(g)
		mu := NewMaskUpdater(g)
		ac := NewAccessChecker(nw)
		bc := NewBatchAccessChecker(nw)
		if !bc.Supported() {
			t.Fatal("Network 𝒩 must be stage-ordered")
		}
		bc.lanes = width
		var m Masks
		mu.Init(inst, &m)

		var word, bfs MajorityReport
		check := func(step int) {
			t.Helper()
			if !bc.MajorityAccessInto(m, &word) {
				t.Fatalf("step %d: word-parallel path declined applicable masks", step)
			}
			nw.majorityAccessBFS(ac, m, &bfs)
			if why, ok := reportsEqual(&word, &bfs); !ok {
				t.Fatalf("step %d (width %d): word-parallel vs BFS: %s", step, width, why)
			}
		}
		check(-1)
		var diff []fault.DiffEntry
		for i := 0; i+2 < len(data); i += 3 {
			e := int32(binary.LittleEndian.Uint16(data[i:])) % nE
			s := fault.State(data[i+2] % 3)
			if old := inst.Edge[e]; old != s {
				inst.SetState(e, s)
				diff = append(diff[:0], fault.DiffEntry{Edge: e, Old: old, New: s})
				mu.Apply(inst, &m, diff)
				check(i)
			}
		}
	})
}

// FuzzIncrementalRepairMasks drives MaskUpdater with random edge-state
// flip sequences — applied one flip at a time and in multi-entry batches,
// including edges flipped more than once per batch — and asserts the
// incrementally maintained masks (VertexOK, EdgeOK, and both CSR-aligned
// traversal byte arrays) always equal a from-scratch RepairMasksInto
// rebuild. Input encoding: records of 3 bytes (edgeLo, edgeHi, op); op
// bits 0-1 pick the new state (mod 3), bit 2 flushes the accumulated
// batch through Apply, bit 3 forces a full cross-check.
func FuzzIncrementalRepairMasks(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x05, 0x00, 0x00, 0x04})
	f.Add([]byte{
		0x10, 0x00, 0x01, 0x11, 0x00, 0x02, 0x12, 0x00, 0x04,
		0x10, 0x00, 0x00, 0x10, 0x00, 0x06,
	})
	f.Add([]byte{
		0x40, 0x01, 0x02, 0x40, 0x01, 0x01, 0x40, 0x01, 0x00, 0x40, 0x01, 0x0e,
		0xff, 0xff, 0x05, 0x00, 0x01, 0x09,
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		nw, err := fuzzNetOnce()
		if err != nil {
			t.Skip(err)
		}
		g := nw.G
		nE := int32(g.NumEdges())

		inst := fault.NewInstance(g)
		mu := NewMaskUpdater(g)
		var m Masks
		mu.Init(inst, &m)

		check := func(step int) {
			t.Helper()
			var want Masks
			RepairMasksInto(inst, &want)
			for v := range want.VertexOK {
				if m.VertexOK[v] != want.VertexOK[v] {
					t.Fatalf("step %d: VertexOK[%d] = %v, rebuild says %v", step, v, m.VertexOK[v], want.VertexOK[v])
				}
			}
			for e := range want.EdgeOK {
				if m.EdgeOK[e] != want.EdgeOK[e] {
					t.Fatalf("step %d: EdgeOK[%d] = %v, rebuild says %v", step, e, m.EdgeOK[e], want.EdgeOK[e])
				}
			}
			wantOut := g.BuildOutAllowed(want.EdgeOK, want.VertexOK, nil)
			wantIn := g.BuildInAllowed(want.EdgeOK, want.VertexOK, nil)
			for i := range wantOut {
				if m.OutAllowed[i] != wantOut[i] {
					t.Fatalf("step %d: OutAllowed[%d] = %#x, rebuild says %#x", step, i, m.OutAllowed[i], wantOut[i])
				}
				if m.InAllowed[i] != wantIn[i] {
					t.Fatalf("step %d: InAllowed[%d] = %#x, rebuild says %#x", step, i, m.InAllowed[i], wantIn[i])
				}
			}
		}

		var diff []fault.DiffEntry
		flush := func(step int) {
			if len(diff) == 0 {
				return
			}
			mu.Apply(inst, &m, diff)
			diff = diff[:0]
			_ = step
		}
		for i := 0; i+2 < len(data); i += 3 {
			e := int32(binary.LittleEndian.Uint16(data[i:])) % nE
			op := data[i+2]
			s := fault.State(op & 3 % 3)
			if old := inst.Edge[e]; old != s {
				inst.SetState(e, s)
				diff = append(diff, fault.DiffEntry{Edge: e, Old: old, New: s})
			}
			if op&4 != 0 {
				flush(i)
			}
			if op&8 != 0 {
				flush(i)
				check(i)
			}
		}
		flush(len(data))
		check(len(data))
	})
}
