package core

import (
	"testing"

	"ftcsn/internal/fault"
	"ftcsn/internal/netsim"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

func testParams(nu int) Params {
	return Params{Nu: nu, Gamma: 0, M: 4, DQ: 3, Seed: 7}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams(2).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Nu: 0, M: 4, DQ: 2},
		{Nu: 1, Gamma: -1, M: 4, DQ: 2},
		{Nu: 1, M: 0, DQ: 2},
		{Nu: 1, M: 4, DQ: 0},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("accepted %+v", p)
		}
	}
}

func TestPaperGamma(t *testing.T) {
	// γ = ⌈log₄(34ν)⌉: 34·1=34 → 4³=64 ≥ 34 → γ=3; 34·3=102 → 4⁴=256 → γ=4.
	if g := PaperGamma(1); g != 3 {
		t.Fatalf("PaperGamma(1) = %d, want 3", g)
	}
	if g := PaperGamma(3); g != 4 {
		t.Fatalf("PaperGamma(3) = %d, want 4", g)
	}
	for nu := 1; nu <= 8; nu++ {
		g := PaperGamma(nu)
		if pow4(g) < 34*nu {
			t.Fatalf("nu=%d: 4^γ=%d < 34ν", nu, pow4(g))
		}
		if g > 0 && pow4(g-1) >= 34*nu {
			t.Fatalf("nu=%d: γ=%d not minimal", nu, g)
		}
		// Paper: 136ν ≥ 4^γ ≥ 34ν.
		if pow4(g) > 136*nu {
			t.Fatalf("nu=%d: 4^γ=%d > 136ν", nu, pow4(g))
		}
	}
}

func TestBuildMatchesAccounting(t *testing.T) {
	for nu := 1; nu <= 3; nu++ {
		p := testParams(nu)
		nw, err := Build(p)
		if err != nil {
			t.Fatal(err)
		}
		acct := Accounting(p)
		if nw.G.NumEdges() != acct.Edges {
			t.Fatalf("nu=%d: edges %d != formula %d", nu, nw.G.NumEdges(), acct.Edges)
		}
		if nw.G.NumVertices() != acct.Vertices {
			t.Fatalf("nu=%d: vertices %d != formula %d", nu, nw.G.NumVertices(), acct.Vertices)
		}
		d, err := nw.G.Depth()
		if err != nil {
			t.Fatal(err)
		}
		if d != acct.Depth || d != 4*nu {
			t.Fatalf("nu=%d: depth %d, want %d", nu, d, 4*nu)
		}
		if err := nw.G.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBuildStageStructure(t *testing.T) {
	p := testParams(2)
	nw, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	n, L := p.N(), p.L()
	if nw.NumStages() != 9 {
		t.Fatalf("stages = %d", nw.NumStages())
	}
	if int(nw.StageSize[0]) != n || int(nw.StageSize[8]) != n {
		t.Fatal("terminal stage sizes wrong")
	}
	for s := 1; s < 8; s++ {
		if int(nw.StageSize[s]) != n*L {
			t.Fatalf("stage %d size = %d, want %d", s, nw.StageSize[s], n*L)
		}
	}
	// Every vertex carries its stage.
	for s := 0; s < nw.NumStages(); s++ {
		v := nw.VertexAt(s, 0)
		if int(nw.G.Stage(v)) != s {
			t.Fatalf("stage tag of first vertex of stage %d is %d", s, nw.G.Stage(v))
		}
	}
}

func TestBuildDegrees(t *testing.T) {
	p := testParams(2) // nu=2: stages 0..8, grids 1..2 and 6..7, core 2..6
	nw, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	g := nw.G
	L := p.L()
	// Inputs: out-degree L, in-degree 0.
	for _, in := range nw.Inputs() {
		if g.OutDegree(in) != L || g.InDegree(in) != 0 {
			t.Fatalf("input degrees: out=%d in=%d", g.OutDegree(in), g.InDegree(in))
		}
	}
	// Outputs: in-degree L.
	for _, out := range nw.Outputs() {
		if g.InDegree(out) != L || g.OutDegree(out) != 0 {
			t.Fatalf("output degrees: in=%d out=%d", g.InDegree(out), g.OutDegree(out))
		}
	}
	// Grid interior (stage 1): in-degree 1 (from input), out-degree 2.
	v := nw.VertexAt(1, 0)
	if g.InDegree(v) != 1 || g.OutDegree(v) != 2 {
		t.Fatalf("stage-1 vertex degrees: in=%d out=%d", g.InDegree(v), g.OutDegree(v))
	}
	// Stage ν (=2): in-degree 2 from grid (the paper's "vertices on stage ν
	// (in-degree 2)"), out-degree 4·DQ into the expanders.
	v = nw.VertexAt(2, 0)
	if g.InDegree(v) != 2 || g.OutDegree(v) != 4*p.DQ {
		t.Fatalf("stage-ν vertex degrees: in=%d out=%d", g.InDegree(v), g.OutDegree(v))
	}
	// Middle stage (2ν=4): in/out 4·DQ.
	v = nw.VertexAt(4, 0)
	if g.InDegree(v) != 4*p.DQ || g.OutDegree(v) != 4*p.DQ {
		t.Fatalf("middle vertex degrees: in=%d out=%d", g.InDegree(v), g.OutDegree(v))
	}
	// Stage 3ν (=6): in-degree 4·DQ, out-degree 2 into the output grid.
	v = nw.VertexAt(6, 0)
	if g.InDegree(v) != 4*p.DQ || g.OutDegree(v) != 2 {
		t.Fatalf("stage-3ν vertex degrees: in=%d out=%d", g.InDegree(v), g.OutDegree(v))
	}
}

func TestBuildNu1(t *testing.T) {
	nw, err := Build(testParams(1))
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumStages() != 5 {
		t.Fatalf("nu=1 stages = %d", nw.NumStages())
	}
	d, _ := nw.G.Depth()
	if d != 4 {
		t.Fatalf("nu=1 depth = %d", d)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(testParams(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(testParams(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("edge counts differ")
	}
	for e := int32(0); e < int32(a.G.NumEdges()); e++ {
		if a.G.EdgeFrom(e) != b.G.EdgeFrom(e) || a.G.EdgeTo(e) != b.G.EdgeTo(e) {
			t.Fatal("same seed built different networks")
		}
	}
}

func TestBuildRefusesHuge(t *testing.T) {
	if _, err := Build(PaperParams(4)); err == nil {
		t.Fatal("paper-scale nu=4 build should exceed MaxBuildEdges")
	}
}

func TestMirrorSymmetryOfEdgeCounts(t *testing.T) {
	// Per-transition edge counts must be symmetric around the middle stage.
	p := testParams(2)
	nw, _ := Build(p)
	g := nw.G
	counts := make([]int, nw.NumStages()-1)
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		counts[g.Stage(g.EdgeFrom(e))]++
	}
	for s := 0; s < len(counts); s++ {
		mirror := len(counts) - 1 - s
		if counts[s] != counts[mirror] {
			t.Fatalf("transition %d has %d edges but mirror %d has %d", s, counts[s], mirror, counts[mirror])
		}
	}
}

func TestHealthyMajorityAccess(t *testing.T) {
	nw, err := Build(testParams(2))
	if err != nil {
		t.Fatal(err)
	}
	ac := NewAccessChecker(nw)
	rep := nw.MajorityAccess(ac, Masks{})
	if !rep.OK {
		t.Fatalf("fault-free network lacks majority access: min in=%d out=%d of %d",
			minOf(rep.InputAccess), minOf(rep.OutputAccess), rep.MiddleSize)
	}
	// Fault-free, idle network: every input should reach the ENTIRE middle
	// stage (expanders cover every quarter).
	for i, c := range rep.InputAccess {
		if c != rep.MiddleSize {
			t.Fatalf("input %d reaches %d of %d middle vertices", i, c, rep.MiddleSize)
		}
	}
}

func TestGridAccessHealthy(t *testing.T) {
	nw, _ := Build(testParams(2))
	ac := NewAccessChecker(nw)
	c := ac.GridAccessCount(0, Masks{})
	if c != nw.P.L() {
		t.Fatalf("healthy grid access = %d, want %d", c, nw.P.L())
	}
}

func TestHealthyChurnNeverBlocks(t *testing.T) {
	nw, err := Build(testParams(2))
	if err != nil {
		t.Fatal(err)
	}
	rt := route.NewRouter(nw.G)
	r := rng.New(99)
	var cd netsim.ChurnDriver
	connects, failures, _ := cd.Run(rt, nw.Inputs(), nw.Outputs(), 600, r)
	if connects == 0 {
		t.Fatal("churn made no connects")
	}
	if failures != 0 {
		t.Fatalf("%d of %d connects blocked on the fault-free network", failures, connects)
	}
	if err := rt.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHealthyFullPermutationRoutes(t *testing.T) {
	// A strictly nonblocking network is rearrangeable: any permutation must
	// route greedily to saturation.
	nw, _ := Build(testParams(2))
	rt := route.NewRouter(nw.G)
	r := rng.New(5)
	perm := r.Perm(len(nw.Inputs()))
	for i, p := range perm {
		if _, err := rt.Connect(nw.Inputs()[i], nw.Outputs()[p]); err != nil {
			t.Fatalf("connect %d->%d failed: %v", i, p, err)
		}
	}
	if rt.ActiveCircuits() != len(nw.Inputs()) {
		t.Fatal("not all circuits established")
	}
	if err := rt.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateFaultFree(t *testing.T) {
	nw, _ := Build(testParams(2))
	out := nw.Evaluate(fault.Symmetric(0), 1, 200)
	if !out.Success || out.Shorted || !out.MajorityAccess || out.ChurnFailures != 0 {
		t.Fatalf("fault-free evaluation failed: %+v", out)
	}
	if out.FailedSwitches != 0 {
		t.Fatalf("phantom failures: %d", out.FailedSwitches)
	}
}

func TestEvaluateSmallEpsUsuallySurvives(t *testing.T) {
	nw, _ := Build(Params{Nu: 2, Gamma: 0, M: 8, DQ: 3, Seed: 3})
	succ := 0
	const trials = 10
	for s := uint64(0); s < trials; s++ {
		out := nw.Evaluate(fault.Symmetric(1e-4), 100+s, 100)
		if out.Success {
			succ++
		}
	}
	if succ < trials-2 {
		t.Fatalf("only %d/%d trials survived at ε=1e-4", succ, trials)
	}
}

func TestEvaluateHugeEpsFails(t *testing.T) {
	nw, _ := Build(testParams(2))
	out := nw.Evaluate(fault.Symmetric(0.25), 42, 0)
	if out.Success {
		t.Fatal("network survived ε=0.25")
	}
}

func TestAccountingComponentsSum(t *testing.T) {
	p := testParams(3)
	a := Accounting(p)
	if a.TerminalEdges+a.GridEdges+a.CoreEdges != a.Edges {
		t.Fatal("accounting components do not sum")
	}
	// Formula: nL(8·DQ·ν + 4ν − 2).
	n, L, nu := p.N(), p.L(), p.Nu
	want := n * L * (8*p.DQ*nu + 4*nu - 2)
	if a.Edges != want {
		t.Fatalf("edges = %d, closed form %d", a.Edges, want)
	}
}

func TestPaperAccounting(t *testing.T) {
	pa := PaperAccounting(3)
	if pa.Gamma != 4 || pa.N != 64 || pa.L != 64*256 {
		t.Fatalf("paper accounting basics wrong: %+v", pa)
	}
	// 𝓜 alone is 1280ν·4^(ν+γ); faithful total (1536ν−128)·4^(ν+γ).
	scale := pow4(3 + 4)
	if pa.EdgesFaithful != (1536*3-128)*scale {
		t.Fatalf("faithful edges = %d", pa.EdgesFaithful)
	}
	if pa.EdgesClaimed != 1408*3*scale {
		t.Fatalf("claimed edges = %d", pa.EdgesClaimed)
	}
	if pa.DepthFaithful != 12 || pa.Theorem2DepthBound != 15 {
		t.Fatalf("depths: %+v", pa)
	}
	// Depth: faithful 4ν is within the stated 5·log₄n bound.
	if pa.DepthFaithful > pa.Theorem2DepthBound {
		t.Fatal("faithful depth exceeds Theorem 2's bound")
	}
}

func TestLowerBoundFormulas(t *testing.T) {
	// Theorem 1 at n = 2^12: (1/2688)·n·144 and 12/6.
	n := 4096
	if got := LowerBoundSize(n); got < 218 || got > 220 {
		t.Fatalf("LowerBoundSize(%d) = %v", n, got)
	}
	if got := LowerBoundDepth(n); got != 2 {
		t.Fatalf("LowerBoundDepth(%d) = %v", n, got)
	}
	// The scaled construction should comfortably beat the lower bound.
	p := testParams(2)
	if float64(Accounting(p).Edges) < LowerBoundSize(p.N()) {
		t.Fatal("construction smaller than the lower bound?!")
	}
}

func TestVertexAtPanics(t *testing.T) {
	nw, _ := Build(testParams(1))
	defer func() {
		if recover() == nil {
			t.Fatal("VertexAt out of range did not panic")
		}
	}()
	nw.VertexAt(0, 1000)
}

func TestExplicitExpanderBuild(t *testing.T) {
	p := Params{Nu: 2, Gamma: 0, M: 4, Explicit: true, DQ: 1, Seed: 1}
	nw, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	// Per-quarter degree 5 → middle vertex degree 20 each way.
	v := nw.VertexAt(4, 0)
	if nw.G.OutDegree(v) != 20 || nw.G.InDegree(v) != 20 {
		t.Fatalf("explicit middle degrees: out=%d in=%d", nw.G.OutDegree(v), nw.G.InDegree(v))
	}
	if nw.G.NumEdges() != Accounting(p).Edges {
		t.Fatal("explicit accounting mismatch")
	}
	// Deterministic: two builds identical even with different seeds.
	p2 := p
	p2.Seed = 99
	nw2, err := Build(p2)
	if err != nil {
		t.Fatal(err)
	}
	for e := int32(0); e < int32(nw.G.NumEdges()); e++ {
		if nw.G.EdgeFrom(e) != nw2.G.EdgeFrom(e) || nw.G.EdgeTo(e) != nw2.G.EdgeTo(e) {
			t.Fatal("explicit construction depends on seed")
		}
	}
	// And it still certifies majority access when healthy.
	ac := NewAccessChecker(nw)
	if !nw.MajorityAccess(ac, Masks{}).OK {
		t.Fatal("explicit network lacks majority access")
	}
}

func TestExplicitRequiresSquareM(t *testing.T) {
	p := Params{Nu: 1, Gamma: 0, M: 8, Explicit: true, DQ: 1, Seed: 1}
	if err := p.Validate(); err == nil {
		t.Fatal("accepted non-square M with Explicit")
	}
	if _, err := Build(p); err == nil {
		t.Fatal("built with non-square M")
	}
}

func TestQuarterDegree(t *testing.T) {
	if (Params{DQ: 3}).QuarterDegree() != 3 {
		t.Fatal("random quarter degree wrong")
	}
	if (Params{DQ: 3, Explicit: true}).QuarterDegree() != GabberGalilDegree {
		t.Fatal("explicit quarter degree wrong")
	}
}

func TestChurnPathLengthsAreDepthBounded(t *testing.T) {
	nw, _ := Build(testParams(2))
	out := nw.Evaluate(fault.Symmetric(0), 9, 300)
	if got := out.AvgPathLen(); got != float64(4*nw.P.Nu) {
		// Every input→output path in the staged DAG has exactly 4ν switches.
		t.Fatalf("avg path length %v, want %d", got, 4*nw.P.Nu)
	}
}
