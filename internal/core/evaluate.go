package core

import (
	"ftcsn/internal/arena"
	"ftcsn/internal/fault"
	"ftcsn/internal/netsim"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

// TrialOutcome is the result of one end-to-end Theorem-2 trial on a
// materialized Network 𝒩: inject faults, apply the discard repair, check
// the paper's failure witnesses and the majority-access certificate, then
// exercise the repaired network with greedy routing churn.
type TrialOutcome struct {
	FailedSwitches int
	OpenSwitches   int
	ClosedSwitches int

	// Shorted: two terminals contracted through closed switches (Lemma 7's
	// event — if it occurs the instance cannot contain a nonblocking
	// n-network with n distinct terminals).
	Shorted bool
	// MajorityAccess: the Lemma-6 certificate on the repaired network; it
	// is sufficient for the repaired network to be strictly nonblocking.
	MajorityAccess bool
	// MinInputAccess / MinOutputAccess are the worst terminal access
	// counts toward the middle stage (diagnostic for Lemma 3/6 margins).
	MinInputAccess  int
	MinOutputAccess int

	// Churn statistics: every connect on a strictly nonblocking network
	// must succeed, so ChurnFailures > 0 falsifies nonblockingness
	// operationally.
	ChurnConnects  int
	ChurnFailures  int
	ChurnPathTotal int // summed path lengths (switch counts) of successes

	// Success is the overall Theorem-2 event: no terminals shorted, the
	// majority-access certificate holds, and churn never blocked.
	Success bool
}

// AvgPathLen returns the mean established-path length in switches.
func (t TrialOutcome) AvgPathLen() float64 {
	if t.ChurnConnects == 0 {
		return 0
	}
	ok := t.ChurnConnects - t.ChurnFailures
	if ok == 0 {
		return 0
	}
	return float64(t.ChurnPathTotal) / float64(ok)
}

// Evaluator owns every per-trial buffer of the Theorem-2 pipeline — fault
// instance, witness scratch, repair masks, access checker, majority report,
// pooled router, and churn scratch — so repeated trials on one network
// allocate nothing in steady state. It is the Monte-Carlo fast path: give
// each worker its own Evaluator (montecarlo.RunBoolWith / RunWith) and call
// EvaluateInto per trial. An Evaluator is not safe for concurrent use.
type Evaluator struct {
	nw    *Network
	inst  *fault.Instance
	fsc   *fault.Scratch
	masks Masks
	ac    *AccessChecker
	rep   MajorityReport
	rt    *route.Router
	r     rng.RNG

	// Churn engine seam: the batched pipeline (EvaluateNextInto) drives
	// its churn phase through eng — by default the evaluator's own
	// sequential router, swappable for any route.Engine with
	// sequential-batch semantics via SetChurnEngine (the sharded engine's
	// guided probes make n=64 trials markedly faster; decisions and paths
	// are bit-identical either way). cd generates the batch-shaped op
	// stream; engDirty tracks whether the shared traversal bytes were
	// edited in place since the engine last derived state from them.
	eng      route.Engine
	cd       netsim.ChurnDriver
	engDirty bool

	// Accumulated change lists for the engine's incremental refresh
	// (route.Engine.MasksChangedDiff): every mu.Apply between engine
	// notifications merges its flipped vertices and recomputed edges here,
	// epoch-deduplicated, so the diff handed to the engine covers every
	// byte edit since it last derived state — across as many trials as the
	// churn phase skips. The lists are arena-backed at full nV/nE capacity
	// (dedup bounds their length), so accumulation never allocates.
	// pendFull marks an edit recorded without its lists (the
	// certificate-only path, which never pays churn and so never tracks);
	// the next churn phase then falls back to the full MasksChanged.
	pendV, pendE     []int32
	pendVEp, pendEEp []uint32
	pendEpoch        uint32
	pendFull         bool

	// Batched-block engine: the injector advances inst between trials by
	// diffs, the mask updater keeps masks (and the engines' shared view of
	// them) current from those diffs, and synced tracks whether the
	// inst/masks/engine triple is in that incrementally-maintained state.
	batch  *fault.BatchInjector
	mu     *MaskUpdater
	synced bool

	// Pool bookkeeping (see EvaluatorPool): the arena backing this
	// evaluator's buffers, returned by Release.
	pool *EvaluatorPool
	a    *arena.Arena
}

// NewEvaluator returns a reusable trial evaluator for nw.
func NewEvaluator(nw *Network) *Evaluator { return NewEvaluatorIn(nw, nil) }

// NewEvaluatorIn is NewEvaluator drawing every O(V)/O(E) buffer from a
// (nil a allocates normally) — the pooled form behind EvaluatorPool. The
// repair masks and traversal bytes are pre-sized here so the lazy
// grow-on-first-use paths never allocate behind the arena's back.
func NewEvaluatorIn(nw *Network, a *arena.Arena) *Evaluator {
	rt := route.NewRouterIn(nw.G, a)
	rt.EnablePathReuse()
	ev := &Evaluator{
		nw:    nw,
		inst:  fault.NewInstanceIn(nw.G, a),
		fsc:   fault.NewScratchIn(nw.G, a),
		ac:    NewAccessCheckerIn(nw, a),
		rt:    rt,
		batch: fault.NewBatchInjectorIn(nw.G, a),
		mu:    NewMaskUpdaterIn(nw.G, a),
	}
	ev.eng = rt
	nV, nE := nw.G.NumVertices(), nw.G.NumEdges()
	ev.masks.VertexOK = a.Bools(nV)
	ev.masks.EdgeOK = a.Bools(nE)
	ev.masks.OutAllowed = a.Bytes(nE)
	ev.masks.InAllowed = a.Bytes(nE)
	ev.pendV = a.I32(nV)[:0]
	ev.pendE = a.I32(nE)[:0]
	ev.pendVEp = a.U32(nV)
	ev.pendEEp = a.U32(nE)
	ev.pendEpoch = 1
	return ev
}

// SetChurnEngine replaces the engine the batched pipeline's churn phase
// runs on (default: the evaluator's sequential router). The engine must
// be over the evaluator's graph and have sequential-batch semantics
// (route.Router, route.ShardedEngine) for outcomes to stay bit-identical;
// it is adopted lazily — the next StartBlock hands it the shared masks.
// On a pooled evaluator the engine borrows arena-backed mask slices, so
// Release detaches them (SetMasksShared(nil, nil, nil)): using the engine
// after the evaluator's Release fails loudly instead of reading recycled
// memory.
func (ev *Evaluator) SetChurnEngine(eng route.Engine) {
	ev.eng = eng
	ev.synced = false
}

// Evaluate runs one trial seeded like Network.Evaluate: switch states and
// churn randomness both come from rng.New(seed). Results are bit-for-bit
// identical to Network.Evaluate for the same arguments.
func (ev *Evaluator) Evaluate(m fault.Model, seed uint64, churnOps int) TrialOutcome {
	ev.r.Reseed(seed)
	var out TrialOutcome
	ev.EvaluateInto(&out, m, &ev.r, churnOps)
	return out
}

// EvaluateInto runs one trial with caller-supplied randomness, writing the
// outcome into out. It redraws the evaluator's fault instance in place,
// repairs, certifies, and (for churnOps > 0) drives greedy churn on the
// evaluator's pooled router — all without allocating.
func (ev *Evaluator) EvaluateInto(out *TrialOutcome, m fault.Model, r *rng.RNG, churnOps int) {
	ev.synced = false
	fault.InjectInto(ev.inst, m, r)
	ev.evaluateInst(ev.inst, churnOps, r, out)
}

// EvaluateCertificateInto runs inject → discard repair → majority-access
// certificate only, skipping the Lemma-7 shorting witness and churn — the
// fast path for experiments that read just the certificate fields (E5, the
// E10 ablations). Shorted is reported false and Success reflects only the
// certificate.
func (ev *Evaluator) EvaluateCertificateInto(out *TrialOutcome, m fault.Model, r *rng.RNG) {
	ev.synced = false
	fault.InjectInto(ev.inst, m, r)
	*out = TrialOutcome{
		FailedSwitches: ev.inst.NumFailed(),
		OpenSwitches:   ev.inst.NumOpen(),
		ClosedSwitches: ev.inst.NumClosed(),
	}
	RepairMasksInto(ev.inst, &ev.masks)
	ev.nw.MajorityAccessInto(ev.ac, ev.masks, &ev.rep)
	out.MajorityAccess = ev.rep.OK
	out.MinInputAccess = minOf(ev.rep.InputAccess)
	out.MinOutputAccess = minOf(ev.rep.OutputAccess)
	out.Success = out.MajorityAccess
}

// StartBlock readies the evaluator for a block of batched trials under
// model m: trial first+j draws its faults from rng.Stream(seed, first+j),
// exactly as EvaluateInto does under the montecarlo harness. Consume the
// block with EvaluateNextInto / EvaluateNextCertInto — each call advances
// the fault instance by a diff and repairs only the changed
// stage-neighborhoods, so per-trial overhead is O(#failure changes), not
// O(E). Outcomes are bit-identical to the per-trial engine at any block
// size (see the differential harness).
func (ev *Evaluator) StartBlock(m fault.Model, seed, first uint64, n int) {
	ev.resync()
	ev.batch.FillStream(m, seed, first, n)
}

// StartBlockSeq is StartBlock for the sequential seeding convention of
// Evaluate: trial first+j draws its faults from rng.New(seedBase+first+j),
// with churn continuing on the same generator.
func (ev *Evaluator) StartBlockSeq(m fault.Model, seedBase, first uint64, n int) {
	ev.resync()
	ev.batch.FillSeq(m, seedBase, first, n)
}

// requireSynced guards the batched entry points: a legacy Evaluate* call
// between StartBlock and block consumption would leave the injector's
// applied list out of step with the instance, so diffs would be computed
// against a wrong baseline — fail loudly instead of corrupting outcomes.
func (ev *Evaluator) requireSynced() {
	if !ev.synced {
		panic("core: EvaluateNext* after a per-trial Evaluate* call; call StartBlock to resynchronize")
	}
}

// resync puts the inst/masks/router triple into the incrementally
// maintained state, from scratch if a per-trial Evaluate* call mutated the
// instance behind the injector's back.
func (ev *Evaluator) resync() {
	if ev.synced {
		return
	}
	ev.batch.Rebase(ev.inst)
	ev.mu.Init(ev.inst, &ev.masks)
	ev.eng.SetMasksShared(ev.masks.VertexOK, ev.masks.EdgeOK, ev.masks.OutAllowed)
	ev.engDirty = false
	ev.clearPending()
	ev.synced = true
}

// noteMaskEdits merges the latest mu.Apply's change lists (edges: its
// return value; vertices: ChangedVertices) into the pending diff the
// engine receives at the next churn phase. Dedup is epoch-stamped, so the
// arena-backed lists never outgrow their nV/nE capacity.
//
//ftcsn:hotpath per-trial diff bookkeeping on the batched pipeline
func (ev *Evaluator) noteMaskEdits(edges []int32) {
	if len(edges) == 0 {
		return
	}
	ev.engDirty = true
	for _, v := range ev.mu.ChangedVertices() {
		if ev.pendVEp[v] != ev.pendEpoch {
			ev.pendVEp[v] = ev.pendEpoch
			ev.pendV = append(ev.pendV, v)
		}
	}
	for _, e := range edges {
		if ev.pendEEp[e] != ev.pendEpoch {
			ev.pendEEp[e] = ev.pendEpoch
			ev.pendE = append(ev.pendE, e)
		}
	}
}

// clearPending forgets the accumulated diff after the engine consumed it
// (or resync handed the engine a fresh full view). O(1): epoch bump; the
// stamp arrays are cleared only on the ~4-billion-epoch wraparound.
func (ev *Evaluator) clearPending() {
	ev.pendV = ev.pendV[:0]
	ev.pendE = ev.pendE[:0]
	ev.pendFull = false
	ev.pendEpoch++
	if ev.pendEpoch == 0 {
		clear(ev.pendVEp)
		clear(ev.pendEEp)
		ev.pendEpoch = 1
	}
}

// EvaluateNextInto runs the next trial of the current block — the batched
// counterpart of EvaluateInto, bit-identical to it for the same trial
// stream. Churn randomness resumes the trial's own stream from its
// post-injection state.
//
//ftcsn:hotpath per-trial pipeline core; 0 allocs/trial pinned by BenchmarkEvaluatorBatchTrial
func (ev *Evaluator) EvaluateNextInto(out *TrialOutcome, churnOps int) {
	ev.requireSynced()
	diff := ev.batch.ApplyNext(ev.inst)
	ev.noteMaskEdits(ev.mu.Apply(ev.inst, &ev.masks, diff))
	ev.r.SetState(ev.batch.RNGState(ev.batch.Applied()))
	*out = TrialOutcome{
		FailedSwitches: ev.inst.NumFailed(),
		OpenSwitches:   ev.inst.NumOpen(),
		ClosedSwitches: ev.inst.NumClosed(),
	}
	list, sts := ev.batch.AppliedFailures()
	if a, _ := ev.inst.ShortedTerminalsFromList(list, sts, ev.fsc); a >= 0 {
		out.Shorted = true
	}
	ev.nw.MajorityAccessInto(ev.ac, ev.masks, &ev.rep)
	out.MajorityAccess = ev.rep.OK
	out.MinInputAccess = minOf(ev.rep.InputAccess)
	out.MinOutputAccess = minOf(ev.rep.OutputAccess)

	if churnOps > 0 {
		// Masks are shared and already current: drop circuits, let the
		// engine refresh anything it derives from the edited bytes (the
		// sharded engine's routing guide), and drive the batch-shaped op
		// stream — bit-identical to per-op ChurnWith on the router (see
		// netsim.ChurnDriver and the differential harness). The refresh is
		// incremental — the accumulated change lists bound the engine's
		// work to the diff's reverse cone — unless an untracked edit (a
		// certificate-only trial in between) forces the full rebuild; the
		// two are bit-identical either way.
		ev.eng.Reset()
		if ev.engDirty {
			if ev.pendFull {
				ev.eng.MasksChanged()
			} else {
				ev.eng.MasksChangedDiff(ev.pendV, ev.pendE)
			}
			ev.clearPending()
			ev.engDirty = false
		}
		out.ChurnConnects, out.ChurnFailures, out.ChurnPathTotal =
			ev.cd.Run(ev.eng, ev.nw.Inputs(), ev.nw.Outputs(), churnOps, &ev.r)
	}
	out.Success = !out.Shorted && out.MajorityAccess && out.ChurnFailures == 0
}

// EvaluateNextCertInto is EvaluateNextInto restricted to the
// majority-access certificate — the batched counterpart of
// EvaluateCertificateInto, bit-identical to it for the same trial stream.
//
//ftcsn:hotpath per-trial certificate pipeline; 0 allocs/trial pinned by BenchmarkEvaluatorBatchCertTrial
func (ev *Evaluator) EvaluateNextCertInto(out *TrialOutcome) {
	ev.requireSynced()
	diff := ev.batch.ApplyNext(ev.inst)
	// Record the edit without its lists: the certificate path never pays
	// a churn phase itself, so it skips per-trial diff bookkeeping; a
	// later churn trial falls back to the full refresh.
	if len(ev.mu.Apply(ev.inst, &ev.masks, diff)) > 0 {
		ev.engDirty = true
		ev.pendFull = true
	}
	*out = TrialOutcome{
		FailedSwitches: ev.inst.NumFailed(),
		OpenSwitches:   ev.inst.NumOpen(),
		ClosedSwitches: ev.inst.NumClosed(),
	}
	ev.nw.MajorityAccessInto(ev.ac, ev.masks, &ev.rep)
	out.MajorityAccess = ev.rep.OK
	out.MinInputAccess = minOf(ev.rep.InputAccess)
	out.MinOutputAccess = minOf(ev.rep.OutputAccess)
	out.Success = out.MajorityAccess
}

// evaluateInst is the shared post-injection pipeline; inst must be over the
// evaluator's own graph (its buffers are sized for it).
func (ev *Evaluator) evaluateInst(inst *fault.Instance, churnOps int, r *rng.RNG, out *TrialOutcome) {
	*out = TrialOutcome{
		FailedSwitches: inst.NumFailed(),
		OpenSwitches:   inst.NumOpen(),
		ClosedSwitches: inst.NumClosed(),
	}
	if a, _ := inst.ShortedTerminalsWith(ev.fsc); a >= 0 {
		out.Shorted = true
	}
	RepairMasksInto(inst, &ev.masks)
	ev.nw.MajorityAccessInto(ev.ac, ev.masks, &ev.rep)
	out.MajorityAccess = ev.rep.OK
	out.MinInputAccess = minOf(ev.rep.InputAccess)
	out.MinOutputAccess = minOf(ev.rep.OutputAccess)

	if churnOps > 0 {
		// SetMasks resets the router (no live circuits), the precondition
		// of the batched driver. ChurnDriver is bit-identical to the
		// per-op ChurnWith reference here (sequential batch semantics),
		// so this legacy path and the batched EvaluateNextInto pipeline
		// share one production churn entry.
		ev.rt.SetMasks(ev.masks.VertexOK, ev.masks.EdgeOK)
		out.ChurnConnects, out.ChurnFailures, out.ChurnPathTotal =
			ev.cd.Run(ev.rt, ev.nw.Inputs(), ev.nw.Outputs(), churnOps, r)
	}
	out.Success = !out.Shorted && out.MajorityAccess && out.ChurnFailures == 0
}

// Evaluate runs one trial: draw switch states from model m with the given
// seed, repair, verify, and run churnOps random connect/disconnect
// operations. churnOps = 0 skips the routing phase. It is a convenience
// wrapper that builds a one-shot Evaluator; Monte-Carlo loops should hold
// an Evaluator per worker and call EvaluateInto instead.
func (nw *Network) Evaluate(m fault.Model, seed uint64, churnOps int) TrialOutcome {
	return NewEvaluator(nw).Evaluate(m, seed, churnOps)
}

// EvaluateInstance is Evaluate for a pre-drawn fault instance; churn
// randomness comes from r.
func (nw *Network) EvaluateInstance(inst *fault.Instance, churnOps int, r *rng.RNG) TrialOutcome {
	var out TrialOutcome
	NewEvaluator(nw).evaluateInst(inst, churnOps, r, &out)
	return out
}

func minOf(xs []int) int {
	m := -1
	for _, x := range xs {
		if x < 0 {
			continue // busy terminal, exempt
		}
		if m < 0 || x < m {
			m = x
		}
	}
	return m
}

type churnCircuit struct{ in, out int32 }

// ChurnScratch holds the request-generator state ChurnWith reuses across
// runs: the live-circuit list and the idle terminal pools.
type ChurnScratch struct {
	live    []churnCircuit
	idleIn  []int32
	idleOut []int32
}

// ChurnWith is the per-op churn REFERENCE — differential use only, not a
// production entry. It drives a router with ops random operations: with
// probability 1/2 (or always, when no circuit exists; never, when all
// terminals are busy) it connects a uniformly chosen idle input to a
// uniformly chosen idle output, otherwise it disconnects a uniformly
// chosen existing circuit, returning attempted connects, failed connects,
// and the summed path length of successes — the operational
// strictly-nonblocking test. Every production path (the trial pipeline,
// cmd/ftroute, the experiments) runs the batch-shaped
// netsim.ChurnDriver instead; TestChurnDriverMatchesPerOp pins the two
// bit-identical on every sequential-batch engine, which is the only
// reason this function stays: it is the oracle that differential
// harnesses and fuzzers replay op by op.
func ChurnWith(rt *route.Router, inputs, outputs []int32, ops int, r *rng.RNG, sc *ChurnScratch) (connects, failures, pathTotal int) {
	sc.live = sc.live[:0]
	sc.idleIn = append(sc.idleIn[:0], inputs...)
	sc.idleOut = append(sc.idleOut[:0], outputs...)
	for op := 0; op < ops; op++ {
		doConnect := len(sc.live) == 0 || (len(sc.idleIn) > 0 && r.Bernoulli(0.5))
		if doConnect && len(sc.idleIn) > 0 && len(sc.idleOut) > 0 {
			ii := r.Intn(len(sc.idleIn))
			oo := r.Intn(len(sc.idleOut))
			in, outT := sc.idleIn[ii], sc.idleOut[oo]
			connects++
			path, err := rt.Connect(in, outT)
			if err != nil {
				failures++
				continue
			}
			pathTotal += len(path) - 1
			sc.idleIn[ii] = sc.idleIn[len(sc.idleIn)-1]
			sc.idleIn = sc.idleIn[:len(sc.idleIn)-1]
			sc.idleOut[oo] = sc.idleOut[len(sc.idleOut)-1]
			sc.idleOut = sc.idleOut[:len(sc.idleOut)-1]
			sc.live = append(sc.live, churnCircuit{in, outT})
		} else if len(sc.live) > 0 {
			ci := r.Intn(len(sc.live))
			c := sc.live[ci]
			if err := rt.Disconnect(c.in, c.out); err == nil {
				sc.idleIn = append(sc.idleIn, c.in)
				sc.idleOut = append(sc.idleOut, c.out)
			}
			sc.live[ci] = sc.live[len(sc.live)-1]
			sc.live = sc.live[:len(sc.live)-1]
		}
	}
	return connects, failures, pathTotal
}
