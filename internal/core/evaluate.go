package core

import (
	"ftcsn/internal/fault"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

// TrialOutcome is the result of one end-to-end Theorem-2 trial on a
// materialized Network 𝒩: inject faults, apply the discard repair, check
// the paper's failure witnesses and the majority-access certificate, then
// exercise the repaired network with greedy routing churn.
type TrialOutcome struct {
	FailedSwitches int
	OpenSwitches   int
	ClosedSwitches int

	// Shorted: two terminals contracted through closed switches (Lemma 7's
	// event — if it occurs the instance cannot contain a nonblocking
	// n-network with n distinct terminals).
	Shorted bool
	// MajorityAccess: the Lemma-6 certificate on the repaired network; it
	// is sufficient for the repaired network to be strictly nonblocking.
	MajorityAccess bool
	// MinInputAccess / MinOutputAccess are the worst terminal access
	// counts toward the middle stage (diagnostic for Lemma 3/6 margins).
	MinInputAccess  int
	MinOutputAccess int

	// Churn statistics: every connect on a strictly nonblocking network
	// must succeed, so ChurnFailures > 0 falsifies nonblockingness
	// operationally.
	ChurnConnects  int
	ChurnFailures  int
	ChurnPathTotal int // summed path lengths (switch counts) of successes

	// Success is the overall Theorem-2 event: no terminals shorted, the
	// majority-access certificate holds, and churn never blocked.
	Success bool
}

// AvgPathLen returns the mean established-path length in switches.
func (t TrialOutcome) AvgPathLen() float64 {
	if t.ChurnConnects == 0 {
		return 0
	}
	ok := t.ChurnConnects - t.ChurnFailures
	if ok == 0 {
		return 0
	}
	return float64(t.ChurnPathTotal) / float64(ok)
}

// Evaluate runs one trial: draw switch states from model m with the given
// seed, repair, verify, and run churnOps random connect/disconnect
// operations. churnOps = 0 skips the routing phase.
func (nw *Network) Evaluate(m fault.Model, seed uint64, churnOps int) TrialOutcome {
	r := rng.New(seed)
	inst := fault.Inject(nw.G, m, r)
	return nw.EvaluateInstance(inst, churnOps, r)
}

// EvaluateInstance is Evaluate for a pre-drawn fault instance; churn
// randomness comes from r.
func (nw *Network) EvaluateInstance(inst *fault.Instance, churnOps int, r *rng.RNG) TrialOutcome {
	out := TrialOutcome{
		FailedSwitches: inst.NumFailed(),
		OpenSwitches:   inst.NumOpen(),
		ClosedSwitches: inst.NumClosed(),
	}
	if a, _ := inst.ShortedTerminals(); a >= 0 {
		out.Shorted = true
	}
	masks := RepairMasks(inst)
	ac := NewAccessChecker(nw)
	rep := nw.MajorityAccess(ac, masks)
	out.MajorityAccess = rep.OK
	out.MinInputAccess = minOf(rep.InputAccess)
	out.MinOutputAccess = minOf(rep.OutputAccess)

	if churnOps > 0 {
		rt := route.NewRepairedRouter(inst)
		out.ChurnConnects, out.ChurnFailures, out.ChurnPathTotal = Churn(rt, nw.Inputs(), nw.Outputs(), churnOps, r)
	}
	out.Success = !out.Shorted && out.MajorityAccess && out.ChurnFailures == 0
	return out
}

func minOf(xs []int) int {
	m := -1
	for _, x := range xs {
		if x < 0 {
			continue // busy terminal, exempt
		}
		if m < 0 || x < m {
			m = x
		}
	}
	return m
}

// Churn drives a router with ops random operations: with probability 1/2
// (or always, when no circuit exists; never, when all terminals are busy)
// it connects a uniformly chosen idle input to a uniformly chosen idle
// output, otherwise it disconnects a uniformly chosen existing circuit.
// It returns the number of attempted connects, failed connects, and the
// summed path length of successful connects. This is the operational
// strictly-nonblocking test: on a strictly nonblocking network failures
// must be zero regardless of the request sequence.
func Churn(rt *route.Router, inputs, outputs []int32, ops int, r *rng.RNG) (connects, failures, pathTotal int) {
	type circuit struct{ in, out int32 }
	var live []circuit
	idleIn := append([]int32(nil), inputs...)
	idleOut := append([]int32(nil), outputs...)
	for op := 0; op < ops; op++ {
		doConnect := len(live) == 0 || (len(idleIn) > 0 && r.Bernoulli(0.5))
		if doConnect && len(idleIn) > 0 && len(idleOut) > 0 {
			ii := r.Intn(len(idleIn))
			oo := r.Intn(len(idleOut))
			in, outT := idleIn[ii], idleOut[oo]
			connects++
			path, err := rt.Connect(in, outT)
			if err != nil {
				failures++
				continue
			}
			pathTotal += len(path) - 1
			idleIn[ii] = idleIn[len(idleIn)-1]
			idleIn = idleIn[:len(idleIn)-1]
			idleOut[oo] = idleOut[len(idleOut)-1]
			idleOut = idleOut[:len(idleOut)-1]
			live = append(live, circuit{in, outT})
		} else if len(live) > 0 {
			ci := r.Intn(len(live))
			c := live[ci]
			if err := rt.Disconnect(c.in, c.out); err == nil {
				idleIn = append(idleIn, c.in)
				idleOut = append(idleOut, c.out)
			}
			live[ci] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return connects, failures, pathTotal
}
