package core

import (
	"testing"

	"ftcsn/internal/fault"
	"ftcsn/internal/rng"
)

func buildSmall(t testing.TB) *Network {
	t.Helper()
	nw, err := Build(DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestEvaluatorMatchesNetworkEvaluate: the reusable evaluator must be
// bit-for-bit compatible with the legacy one-shot pipeline, including the
// churn phase, across many seeds on one shared evaluator.
func TestEvaluatorMatchesNetworkEvaluate(t *testing.T) {
	nw := buildSmall(t)
	ev := NewEvaluator(nw)
	m := fault.Symmetric(0.01)
	for seed := uint64(0); seed < 40; seed++ {
		want := nw.Evaluate(m, seed, 80)
		got := ev.Evaluate(m, seed, 80)
		if got != want {
			t.Fatalf("seed %d: evaluator %+v != legacy %+v", seed, got, want)
		}
	}
}

// TestEvaluatorAllocFree: steady-state trials on a warmed evaluator —
// injection, repair, certificate, and churn — must not allocate.
func TestEvaluatorAllocFree(t *testing.T) {
	nw := buildSmall(t)
	ev := NewEvaluator(nw)
	m := fault.Symmetric(0.005)
	var out TrialOutcome
	var r rng.RNG
	seed := uint64(0)
	trial := func() {
		r.Reseed(seed)
		ev.EvaluateInto(&out, m, &r, 60)
	}
	for ; seed < 30; seed++ {
		trial()
	}
	avg := testing.AllocsPerRun(100, func() {
		seed++
		trial()
	})
	if avg > 0 {
		t.Fatalf("Evaluator trial allocates %.2f allocs/op in steady state, want 0", avg)
	}
}

// TestEvaluatorCertifiesFaultFree: with ε=0 every certificate holds and
// churn never blocks.
func TestEvaluatorCertifiesFaultFree(t *testing.T) {
	nw := buildSmall(t)
	ev := NewEvaluator(nw)
	out := ev.Evaluate(fault.Symmetric(0), 1, 200)
	if !out.Success || !out.MajorityAccess || out.Shorted || out.ChurnFailures != 0 {
		t.Fatalf("fault-free trial failed: %+v", out)
	}
	if out.FailedSwitches != 0 {
		t.Fatalf("fault-free trial reported %d failures", out.FailedSwitches)
	}
}

// TestEvaluatorChurnDeterministic: two evaluators (each reusing its own
// churn driver and scratch across trials) produce identical outcomes for
// identical (model, seed) trials — state reuse leaks nothing between
// trials.
func TestEvaluatorChurnDeterministic(t *testing.T) {
	nw := buildSmall(t)
	ev1 := NewEvaluator(nw)
	ev2 := NewEvaluator(nw)
	// Drive both through identical fault draws, then compare churn stats.
	m := fault.Symmetric(0.002)
	for seed := uint64(0); seed < 10; seed++ {
		a := ev1.Evaluate(m, seed, 150)
		b := ev2.Evaluate(m, seed, 150)
		if a != b {
			t.Fatalf("seed %d: evaluator runs diverge: %+v vs %+v", seed, a, b)
		}
	}
}

// TestRepairMasksIntoMatches cross-checks the in-place mask builder.
func TestRepairMasksIntoMatches(t *testing.T) {
	nw := buildSmall(t)
	inst := fault.NewInstance(nw.G)
	var m Masks
	var r rng.RNG
	for i := 0; i < 30; i++ {
		r.ReseedStream(3, uint64(i))
		fault.InjectInto(inst, fault.Symmetric(0.02), &r)
		RepairMasksInto(inst, &m)
		want := RepairMasks(inst)
		for v := range want.VertexOK {
			if m.VertexOK[v] != want.VertexOK[v] {
				t.Fatalf("trial %d: VertexOK[%d] mismatch", i, v)
			}
		}
		for e := range want.EdgeOK {
			if m.EdgeOK[e] != want.EdgeOK[e] {
				t.Fatalf("trial %d: EdgeOK[%d] mismatch", i, e)
			}
		}
	}
}
