package core

import (
	"fmt"
	"runtime"
	"testing"

	"ftcsn/internal/fault"
	"ftcsn/internal/montecarlo"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

// This file is the correctness gate for the batch-shaped churn seam: the
// batched pipeline driving its churn through a route.Engine (including
// the sharded speculate-then-commit engine at several shard counts) must
// produce bit-identical per-trial outcomes to the legacy per-trial engine,
// whose churn is the per-op ChurnWith loop. Families × ε × shard counts,
// prefilter modes, and a fuzz harness over op streams.

// TestDifferentialShardedChurnVsPerOp runs the batched pipeline with
// SetChurnEngine(ShardedEngine) against per-trial EvaluateInto reference
// outcomes, across the structural families, fault rates spanning "no
// failures" to "frequent rejects", and shard counts.
func TestDifferentialShardedChurnVsPerOp(t *testing.T) {
	pinProcs(t, 4)
	const (
		trials   = 30
		churnOps = 80
		seed     = uint64(0xC4A2)
	)
	epss := []float64{0.0005, 0.02, 0.08}
	shardGrid := []int{1, 2, 3}

	for name, nw := range diffFamilies(t) {
		for _, eps := range epss {
			m := fault.Symmetric(eps)

			want := make([]TrialOutcome, trials)
			lev := NewEvaluator(nw)
			var r rng.RNG
			for i := 0; i < trials; i++ {
				r.ReseedStream(seed, uint64(i))
				lev.EvaluateInto(&want[i], m, &r, churnOps)
			}

			for _, shards := range shardGrid {
				for _, pf := range []route.PrefilterMode{route.PrefilterAuto, route.PrefilterOn, route.PrefilterOff} {
					label := fmt.Sprintf("%s/eps=%v/shards=%d/pf=%d", name, eps, shards, pf)
					ev := NewEvaluator(nw)
					se := route.NewShardedEngine(nw.G, shards)
					se.Prefilter = pf
					ev.SetChurnEngine(se)
					var out TrialOutcome
					for first := 0; first < trials; first += 8 {
						n := min(8, trials-first)
						ev.StartBlock(m, seed, uint64(first), n)
						for j := 0; j < n; j++ {
							ev.EvaluateNextInto(&out, churnOps)
							if out != want[first+j] {
								t.Fatalf("%s: trial %d diverged:\nsharded %+v\nlegacy  %+v",
									label, first+j, out, want[first+j])
							}
						}
					}
				}
			}
		}
	}
}

// TestDifferentialShardedChurnUnderHarness is the same parity through the
// montecarlo harness (workers × blocks), the way experiments consume it.
func TestDifferentialShardedChurnUnderHarness(t *testing.T) {
	nw := diffFamilies(t)["default-nu2"]
	const (
		trials   = 24
		churnOps = 60
		seed     = uint64(0x5EED)
	)
	m := fault.Symmetric(0.01)

	want := make([]TrialOutcome, trials)
	lev := NewEvaluator(nw)
	var r rng.RNG
	for i := 0; i < trials; i++ {
		r.ReseedStream(seed, uint64(i))
		lev.EvaluateInto(&want[i], m, &r, churnOps)
	}

	got := make([]TrialOutcome, trials)
	montecarlo.RunWith(
		montecarlo.Config{Trials: trials, Workers: 3, Seed: seed, Block: 5},
		func() *batchedDiffScratch {
			ev := NewEvaluator(nw)
			ev.SetChurnEngine(route.NewShardedEngine(nw.G, 4))
			return &batchedDiffScratch{ev: ev, m: m, outs: got}
		},
		func(_ *rng.RNG, s *batchedDiffScratch, i uint64) {
			s.ev.EvaluateNextInto(&s.outs[i], churnOps)
		})
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("trial %d diverged under harness:\nsharded %+v\nlegacy  %+v", i, got[i], want[i])
		}
	}
}

// TestEvaluatorShardedChurnAllocFree extends the 0 allocs/trial gate to
// the sharded churn engine (guide refresh included).
func TestEvaluatorShardedChurnAllocFree(t *testing.T) {
	nw := buildNetwork(t, DefaultParams(2))
	ev := NewEvaluator(nw)
	ev.SetChurnEngine(route.NewShardedEngine(nw.G, 2))
	m := fault.Symmetric(0.01)
	var out TrialOutcome
	const block = 16
	i := 0
	trial := func() {
		if i%block == 0 {
			ev.StartBlock(m, 99, uint64(i), block)
		}
		ev.EvaluateNextInto(&out, 60)
		i++
	}
	for j := 0; j < 2*block; j++ {
		trial() // warm up all scratch, cross a block boundary
	}
	if allocs := testing.AllocsPerRun(3*block, trial); allocs > 0 {
		t.Fatalf("sharded-churn trial allocated %.2f/run in steady state", allocs)
	}
}

// FuzzBatchChurnVsPerOp fuzzes the op-stream space: arbitrary (seed, ε,
// ops, shards, prefilter) tuples must keep the batch-shaped churn driver
// bit-identical to the per-op reference through the full trial pipeline.
func FuzzBatchChurnVsPerOp(f *testing.F) {
	pinProcs(f, 4)
	f.Add(uint64(1), uint16(0), uint8(40), uint8(1), uint8(0))
	f.Add(uint64(2), uint16(800), uint8(90), uint8(2), uint8(1))
	f.Add(uint64(99), uint16(2500), uint8(255), uint8(3), uint8(2))
	nw := buildNetwork(f, Params{Nu: 1, Gamma: 0, M: 4, DQ: 2, Seed: 2})
	f.Fuzz(func(t *testing.T, seed uint64, epsMil uint16, ops, shards, pf uint8) {
		eps := float64(epsMil%3000) / 10000.0 // 0 .. 0.3
		m := fault.Symmetric(eps)
		churnOps := int(ops)
		S := int(shards%4) + 1

		var want TrialOutcome
		lev := NewEvaluator(nw)
		var r rng.RNG
		r.ReseedStream(seed, 0)
		lev.EvaluateInto(&want, m, &r, churnOps)

		ev := NewEvaluator(nw)
		se := route.NewShardedEngine(nw.G, S)
		se.Prefilter = route.PrefilterMode(pf % 3)
		ev.SetChurnEngine(se)
		ev.StartBlock(m, seed, 0, 1)
		var got TrialOutcome
		ev.EvaluateNextInto(&got, churnOps)
		if got != want {
			t.Fatalf("diverged (eps=%v ops=%d shards=%d pf=%d):\nsharded %+v\nlegacy  %+v",
				eps, churnOps, S, pf%3, got, want)
		}
	})
}

// buildNetwork is a test helper for one-off builds.
func buildNetwork(tb testing.TB, p Params) *Network {
	tb.Helper()
	nw, err := Build(p)
	if err != nil {
		tb.Fatal(err)
	}
	return nw
}

// pinProcs forces GOMAXPROCS=n for the test, so the sharded engine's
// parallel phases genuinely interleave even when the package-default
// GOMAXPROCS is 1 (busy CI runner, constrained container).
func pinProcs(tb testing.TB, n int) {
	old := runtime.GOMAXPROCS(n)
	tb.Cleanup(func() { runtime.GOMAXPROCS(old) })
}
