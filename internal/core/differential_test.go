package core

import (
	"fmt"
	"testing"

	"ftcsn/internal/benes"
	"ftcsn/internal/circulant"
	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
	"ftcsn/internal/hammock"
	"ftcsn/internal/hyperx"
	"ftcsn/internal/montecarlo"
	"ftcsn/internal/rng"
	"ftcsn/internal/superconc"
)

// This file is the correctness gate for the batched fault-injection
// engine: for a seeded grid of (network family, ε, worker count, block
// size) it runs the batched block engine (StartBlock + EvaluateNextInto)
// against the legacy per-trial engine (EvaluateInto) and requires
// bit-identical per-trial outcomes and aggregate statistics. Both the
// harness-stream seeding (StartBlock) and the sequential Evaluate seeding
// (StartBlockSeq) are covered.

// diffFamilies returns the networks the differential grid runs over:
// distinct structural families of 𝒩 (paper-default rows, tall grids with
// low-degree expanders, explicit Gabber–Galil expanders, and a ν=2
// instance with a real recursive middle), plus the topology zoo served
// through the graph.Levels contract — a Mirror() image, an
// expander-based superconcentrator, a hammock-substituted Beneš, and the
// DAG-unrolled hyperx and circulant interconnects, each wrapped by
// WrapGraph. The wrapped families deliberately include permuted-sweep
// graphs (vertex IDs not level-sorted) so every differential grid
// exercises the level-order paths, not just the historical identity
// sweeps.
func diffFamilies(t testing.TB) map[string]*Network {
	t.Helper()
	fams := map[string]Params{
		"default-nu1":  DefaultParams(1),
		"tall-nu1":     {Nu: 1, Gamma: 0, M: 16, DQ: 2, Seed: 3},
		"explicit-nu1": {Nu: 1, Gamma: 0, M: 4, DQ: 1, Explicit: true, Seed: 1},
		"default-nu2":  DefaultParams(2),
	}
	nws := make(map[string]*Network, len(fams)+5)
	for name, p := range fams {
		nw, err := Build(p)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		nws[name] = nw
	}
	wrap := func(name string, g *graph.Graph) {
		nw, err := WrapGraph(g)
		if err != nil {
			t.Fatalf("wrap %s: %v", name, err)
		}
		nws[name] = nw
	}
	wrap("mirror-nu1", nws["default-nu1"].G.Mirror())
	sc, err := superconc.New(16, 3, 0xD1FF)
	if err != nil {
		t.Fatalf("build superconc-16: %v", err)
	}
	wrap("superconc-16", sc.G)
	bn, err := benes.New(2)
	if err != nil {
		t.Fatalf("build benes(2): %v", err)
	}
	wrap("benes-hammock", hammock.SubstituteEdges(bn.G, 2, 2, false))
	hx, err := hyperx.New([]int{2, 2}, 2)
	if err != nil {
		t.Fatalf("build hyperx-2x2: %v", err)
	}
	wrap("hyperx-2x2", hx.G)
	cc, err := circulant.New(6, []int{1, 2}, 3)
	if err != nil {
		t.Fatalf("build circulant-6: %v", err)
	}
	wrap("circulant-6", cc.G)
	return nws
}

// batchedDiffScratch adapts an Evaluator to the montecarlo BlockStarter
// hook for the differential runs, recording every per-trial outcome.
type batchedDiffScratch struct {
	ev   *Evaluator
	m    fault.Model
	seq  bool
	outs []TrialOutcome // shared, indexed by absolute trial; disjoint writes
}

func (s *batchedDiffScratch) StartBlock(seed, first uint64, n int) {
	if s.seq {
		s.ev.StartBlockSeq(s.m, seed, first, n)
	} else {
		s.ev.StartBlock(s.m, seed, first, n)
	}
}

func TestDifferentialBatchedVsLegacy(t *testing.T) {
	const (
		trials   = 40
		churnOps = 60
		seed     = uint64(0xD1FF)
	)
	epss := []float64{0.0005, 0.01, 0.06}
	workerGrid := []int{1, 3}
	blockGrid := []int{1, 7, 64}

	for name, nw := range diffFamilies(t) {
		for _, eps := range epss {
			m := fault.Symmetric(eps)

			// Legacy per-trial engine: the reference outcomes.
			want := make([]TrialOutcome, trials)
			lev := NewEvaluator(nw)
			var r rng.RNG
			for i := 0; i < trials; i++ {
				r.ReseedStream(seed, uint64(i))
				lev.EvaluateInto(&want[i], m, &r, churnOps)
			}

			for _, workers := range workerGrid {
				for _, block := range blockGrid {
					label := fmt.Sprintf("%s/eps=%v/w=%d/b=%d", name, eps, workers, block)
					got := make([]TrialOutcome, trials)
					var succ int
					scs := montecarlo.RunWith(
						montecarlo.Config{Trials: trials, Workers: workers, Seed: seed, Block: block},
						func() *batchedDiffScratch {
							return &batchedDiffScratch{ev: NewEvaluator(nw), m: m, outs: got}
						},
						func(_ *rng.RNG, s *batchedDiffScratch, i uint64) {
							s.ev.EvaluateNextInto(&s.outs[i], churnOps)
						})
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s: trial %d diverged:\nbatched %+v\nlegacy  %+v", label, i, got[i], want[i])
						}
					}
					for _, out := range got {
						if out.Success {
							succ++
						}
					}
					var wantSucc int
					for _, out := range want {
						if out.Success {
							wantSucc++
						}
					}
					if succ != wantSucc {
						t.Fatalf("%s: aggregate success %d != legacy %d", label, succ, wantSucc)
					}
					_ = scs
				}
			}
		}
	}
}

// TestDifferentialCertificatePath is the grid for the certificate-only
// fast path (EvaluateCertificateInto vs EvaluateNextCertInto).
func TestDifferentialCertificatePath(t *testing.T) {
	const (
		trials = 60
		seed   = uint64(0xCE47)
	)
	nw, err := Build(DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.001, 0.02} {
		m := fault.Symmetric(eps)
		want := make([]TrialOutcome, trials)
		lev := NewEvaluator(nw)
		var r rng.RNG
		for i := 0; i < trials; i++ {
			r.ReseedStream(seed, uint64(i))
			lev.EvaluateCertificateInto(&want[i], m, &r)
		}
		for _, block := range []int{5, 32} {
			got := make([]TrialOutcome, trials)
			montecarlo.RunWith(
				montecarlo.Config{Trials: trials, Workers: 2, Seed: seed, Block: block},
				func() *batchedDiffScratch {
					return &batchedDiffScratch{ev: NewEvaluator(nw), m: m, outs: got}
				},
				func(_ *rng.RNG, s *batchedDiffScratch, i uint64) {
					s.ev.EvaluateNextCertInto(&s.outs[i])
				})
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("eps=%v block=%d: certificate trial %d diverged:\nbatched %+v\nlegacy  %+v",
						eps, block, i, got[i], want[i])
				}
			}
		}
	}
}

// reportsEqual compares two majority reports field by field, returning a
// description of the first divergence.
func reportsEqual(a, b *MajorityReport) (string, bool) {
	if a.MiddleSize != b.MiddleSize {
		return fmt.Sprintf("MiddleSize %d != %d", a.MiddleSize, b.MiddleSize), false
	}
	if a.OK != b.OK {
		return fmt.Sprintf("OK %v != %v", a.OK, b.OK), false
	}
	if len(a.InputAccess) != len(b.InputAccess) || len(a.OutputAccess) != len(b.OutputAccess) {
		return "access slice lengths differ", false
	}
	for i := range a.InputAccess {
		if a.InputAccess[i] != b.InputAccess[i] {
			return fmt.Sprintf("InputAccess[%d] %d != %d", i, a.InputAccess[i], b.InputAccess[i]), false
		}
	}
	for j := range a.OutputAccess {
		if a.OutputAccess[j] != b.OutputAccess[j] {
			return fmt.Sprintf("OutputAccess[%d] %d != %d", j, a.OutputAccess[j], b.OutputAccess[j]), false
		}
	}
	return "", true
}

// TestDifferentialWordParallelCertifier is the batched-certificate leg of
// the differential harness: across network families × ε × strip widths,
// the word-parallel MajorityAccessInto must produce bit-identical reports
// (per-terminal counts and OK) to the per-terminal BFS — both the
// byte-reading fast BFS and the generic-mask BFS. Families include n=4 and
// n=16, so every strip width exercises a partial final strip (n not
// divisible by 64).
func TestDifferentialWordParallelCertifier(t *testing.T) {
	const trialsPerCell = 12
	epss := []float64{0.0005, 0.01, 0.06}
	widths := []int{1, 7, 64}
	for name, nw := range diffFamilies(t) {
		inst := fault.NewInstance(nw.G)
		mu := NewMaskUpdater(nw.G)
		ac := NewAccessChecker(nw)
		var m Masks
		var r rng.RNG
		var bfsFast, bfsGeneric, word MajorityReport
		checkers := make([]*BatchAccessChecker, len(widths))
		for wi, width := range widths {
			checkers[wi] = NewBatchAccessChecker(nw)
			if !checkers[wi].Supported() {
				t.Fatalf("%s: stage-ordered network not supported by batch certifier", name)
			}
			checkers[wi].lanes = width
		}
		for ei, eps := range epss {
			model := fault.Symmetric(eps)
			for trial := 0; trial < trialsPerCell; trial++ {
				r.ReseedStream(0xBA7C4, uint64(ei*trialsPerCell+trial))
				fault.InjectInto(inst, model, &r)
				mu.Init(inst, &m)

				nw.majorityAccessBFS(ac, m, &bfsFast)
				generic := Masks{VertexOK: m.VertexOK, EdgeOK: m.EdgeOK}
				nw.majorityAccessBFS(ac, generic, &bfsGeneric)
				if why, ok := reportsEqual(&bfsFast, &bfsGeneric); !ok {
					t.Fatalf("%s eps=%v trial %d: byte-BFS vs generic BFS: %s", name, eps, trial, why)
				}
				for wi, width := range widths {
					if !checkers[wi].MajorityAccessInto(m, &word) {
						t.Fatalf("%s eps=%v trial %d: word-parallel path declined applicable masks", name, eps, trial)
					}
					if why, ok := reportsEqual(&word, &bfsFast); !ok {
						t.Fatalf("%s eps=%v trial %d width=%d: word-parallel vs BFS: %s", name, eps, trial, width, why)
					}
				}
			}
		}
	}
}

// TestWordParallelBusyFallback: the fast path carries no busy information,
// so busy-aware masks must decline word-parallel certification and the
// Network entry point must still report -1 exemptions through the BFS.
func TestWordParallelBusyFallback(t *testing.T) {
	nw, err := Build(DefaultParams(1))
	if err != nil {
		t.Fatal(err)
	}
	inst := fault.NewInstance(nw.G)
	mu := NewMaskUpdater(nw.G)
	var m Masks
	mu.Init(inst, &m)

	busy := make([]bool, nw.G.NumVertices())
	busy[nw.Inputs()[1]] = true
	busy[nw.Outputs()[2]] = true
	m.Busy = busy

	bc := NewBatchAccessChecker(nw)
	var rep MajorityReport
	if bc.MajorityAccessInto(m, &rep) {
		t.Fatal("word-parallel certifier accepted busy-aware masks")
	}
	ac := NewAccessChecker(nw)
	nw.MajorityAccessInto(ac, m, &rep)
	if rep.InputAccess[1] != -1 || rep.OutputAccess[2] != -1 {
		t.Fatalf("busy terminals not exempted: in=%v out=%v", rep.InputAccess, rep.OutputAccess)
	}
	if rep.InputAccess[0] < 0 {
		t.Fatal("idle terminal wrongly exempted")
	}

	// Same masks without Busy: word-parallel engages and matches the BFS.
	m.Busy = nil
	var word, bfs MajorityReport
	if !bc.MajorityAccessInto(m, &word) {
		t.Fatal("word-parallel certifier declined busy-free masks")
	}
	nw.majorityAccessBFS(ac, m, &bfs)
	if why, ok := reportsEqual(&word, &bfs); !ok {
		t.Fatalf("busy-free reports diverge: %s", why)
	}
}

// TestEvaluatorCertAllocFree: steady-state batched certificate trials —
// diff application, incremental masks, word-parallel certification — must
// not allocate once the evaluator (including its lazily created batch
// certifier) is warm.
func TestEvaluatorCertAllocFree(t *testing.T) {
	nw, err := Build(DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(nw)
	m := fault.Symmetric(0.005)
	var out TrialOutcome
	ev.StartBlock(m, 0xA110C, 0, 400)
	for i := 0; i < 40; i++ {
		ev.EvaluateNextCertInto(&out)
	}
	avg := testing.AllocsPerRun(100, func() {
		ev.EvaluateNextCertInto(&out)
	})
	if avg > 0 {
		t.Fatalf("batched certificate trial allocates %.2f allocs/op in steady state, want 0", avg)
	}
}

// TestDifferentialSeqSeeding covers the StartBlockSeq convention used by
// E7/E9: trial i seeded rng.New(seedBase+i), churn continuing in-stream —
// against the legacy Evaluate(seedBase+i).
func TestDifferentialSeqSeeding(t *testing.T) {
	const (
		trials   = 30
		churnOps = 50
		seedBase = uint64(0xE7000)
	)
	nw, err := Build(DefaultParams(1))
	if err != nil {
		t.Fatal(err)
	}
	m := fault.Symmetric(0.01)
	want := make([]TrialOutcome, trials)
	lev := NewEvaluator(nw)
	for i := 0; i < trials; i++ {
		want[i] = lev.Evaluate(m, seedBase+uint64(i), churnOps)
	}
	for _, block := range []int{3, 16} {
		got := make([]TrialOutcome, trials)
		montecarlo.RunWith(
			montecarlo.Config{Trials: trials, Workers: 2, Seed: seedBase, Block: block},
			func() *batchedDiffScratch {
				return &batchedDiffScratch{ev: NewEvaluator(nw), m: m, seq: true, outs: got}
			},
			func(_ *rng.RNG, s *batchedDiffScratch, i uint64) {
				s.ev.EvaluateNextInto(&s.outs[i], churnOps)
			})
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("block=%d: seq-seeded trial %d diverged:\nbatched %+v\nlegacy  %+v", block, i, got[i], want[i])
			}
		}
	}
}

// TestEvaluatorModeMixing checks that an Evaluator recovers exact batched
// semantics after its instance was mutated by a legacy per-trial call
// between blocks (the resync path).
func TestEvaluatorModeMixing(t *testing.T) {
	nw, err := Build(DefaultParams(1))
	if err != nil {
		t.Fatal(err)
	}
	m := fault.Symmetric(0.02)
	const churnOps = 40
	ev := NewEvaluator(nw)
	ref := NewEvaluator(nw)
	var got, want TrialOutcome
	var r rng.RNG
	for round := 0; round < 3; round++ {
		// Legacy call dirties the instance…
		r.ReseedStream(77, uint64(1000+round))
		ev.EvaluateInto(&got, m, &r, churnOps)
		// …then a batched block must still match the reference evaluator.
		first := uint64(round * 4)
		ev.StartBlock(m, 99, first, 4)
		for j := 0; j < 4; j++ {
			ev.EvaluateNextInto(&got, churnOps)
			r.ReseedStream(99, first+uint64(j))
			ref.EvaluateInto(&want, m, &r, churnOps)
			if got != want {
				t.Fatalf("round %d trial %d: mixed-mode outcome diverged:\nbatched %+v\nlegacy  %+v", round, j, got, want)
			}
		}
	}
}
