// Package core implements the primary contribution of Pippenger & Lin:
// the explicit fault-tolerant strictly-nonblocking network 𝒩 of Section 6
// (Fig. 5), with Θ(n (log n)²) switches and Θ(log n) depth, that survives
// the random switch failure model (Theorem 2).
//
// # Construction
//
// With n = 4^ν inputs and outputs, Network 𝒩 has 4ν+1 stages:
//
//	stage 0            n inputs
//	stages 1..ν        n input directed grids Φ₁..Φₙ (cyclic, L rows each)
//	stages ν..3ν       the core 𝓜: the recursive expander-based
//	                   nonblocking network of Pippenger '82, scaled up by a
//	                   factor 4^γ and with its first and last γ stages cut
//	                   off; the right half is the exact mirror image of the
//	                   left half
//	stages 3ν..4ν-1    n output directed grids Ψ₁..Ψₙ
//	stage 4ν           n outputs
//
// Each input is joined by a switch to every row of the first stage of its
// grid; each grid's last stage is identified with one group of 𝓜's first
// stage; mirror-symmetrically on the output side.
//
// Within 𝓜's left half, stage ν+k holds 4^(ν−k) groups of t_k = L·4^k
// vertices. Each group (child) is joined to its parent group at stage
// ν+k+1 — which it shares with 3 siblings — by four expanding-graph
// instances, one per quarter of the parent, so that every half of the
// child's vertices reaches well over half of each quarter (the paper's
// (32·4^μ, 33.07·4^μ, 64·4^μ)-expanding graphs of degree 10). Instances
// are unions of DQ uniform matchings (Bassalygo–Pinsker); the total degree
// is therefore 4·DQ (the paper's 10 corresponds to DQ = 2.5).
//
// # Parameters
//
// The paper's constants (M=64 rows, degree 10, 4^γ ≈ 34ν, ε=10⁻⁶) make
// materialized instances enormous — 𝒩 has ≈ (1536ν−128)·4^(ν+γ) switches
// (the paper reports 1408ν·4^(ν+γ); see ACCOUNTING in DESIGN.md).
// Params therefore exposes M, DQ and γ so experiments can materialize
// faithful scaled instances, while the paper-constant sizes are available
// in closed form via PaperAccounting.
package core

import (
	"fmt"

	"ftcsn/internal/expander"
	"ftcsn/internal/graph"
	"ftcsn/internal/rng"
)

// Branching is the arity of the recursive construction; the paper's
// construction is 4-ary throughout.
const Branching = 4

// Params configures Network 𝒩.
type Params struct {
	// Nu is ν: the network has n = 4^ν inputs and outputs.
	Nu int
	// Gamma is γ, the scale-up exponent: every stage of 𝓜 is 4^γ times
	// larger than the terminal count. The paper sets γ = ⌈log₄(34ν)⌉.
	Gamma int
	// M is the row multiplier: terminal grids have L = M·4^γ rows.
	// The paper uses M = 64.
	M int
	// DQ is the number of uniform matchings per (child group, parent
	// quarter) expander instance; vertex degree inside 𝓜 is 4·DQ. The
	// paper's degree-10 graphs correspond to DQ = 2.5; the scaled default
	// is 3 (the smallest integer degree that clears the paper's expansion
	// ratio 33.07/64 adversarially — see expander tests).
	DQ int
	// Explicit selects the deterministic Gabber–Galil degree-5 expanders
	// instead of random matchings (the paper cites [GG] and [M] for the
	// explicit alternative to [BP]). It requires M to be a perfect square
	// so every group size t = M·4^(γ+k) is a square; DQ is ignored and
	// the per-quarter degree is 5 (vertex degree 20 inside 𝓜).
	Explicit bool
	// Seed drives the probabilistic expander instances.
	Seed uint64
}

// GabberGalilDegree is the fixed per-quarter degree of the explicit
// construction.
const GabberGalilDegree = 5

// QuarterDegree returns the per-quarter expander degree in effect.
func (p Params) QuarterDegree() int {
	if p.Explicit {
		return GabberGalilDegree
	}
	return p.DQ
}

// DefaultParams returns laptop-scale parameters for n = 4^nu terminals:
// γ=0, M=8, DQ=3. These preserve every structural property of the paper's
// construction (grids, four-quarter expanders, exact mirror) at a size
// suitable for Monte-Carlo experiments.
func DefaultParams(nu int) Params {
	return Params{Nu: nu, Gamma: 0, M: 8, DQ: 3, Seed: 1}
}

// PaperGamma returns the paper's scale-up exponent γ = ⌈log₄(34ν)⌉,
// i.e. the least γ with 4^γ ≥ 34ν.
func PaperGamma(nu int) int {
	g := 0
	for p := 1; p < 34*nu; p *= 4 {
		g++
	}
	return g
}

// PaperParams returns the paper-faithful constants for n = 4^nu. Note the
// DQ=3 (degree 12) stand-in for the paper's degree 10, which is not a
// multiple of four; accounting with exact paper constants is done
// analytically by PaperAccounting instead.
func PaperParams(nu int) Params {
	return Params{Nu: nu, Gamma: PaperGamma(nu), M: 64, DQ: 3, Seed: 1}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Nu < 1 {
		return fmt.Errorf("core: Nu must be >= 1, got %d", p.Nu)
	}
	if p.Gamma < 0 {
		return fmt.Errorf("core: Gamma must be >= 0, got %d", p.Gamma)
	}
	if p.M < 1 {
		return fmt.Errorf("core: M must be >= 1, got %d", p.M)
	}
	if p.DQ < 1 {
		return fmt.Errorf("core: DQ must be >= 1, got %d", p.DQ)
	}
	if p.Explicit {
		if r := isqrt(p.M); r*r != p.M {
			return fmt.Errorf("core: Explicit requires a perfect-square M, got %d", p.M)
		}
	}
	return nil
}

// isqrt returns ⌊√x⌋.
func isqrt(x int) int {
	if x < 0 {
		return -1
	}
	r := 0
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}

// N returns the number of inputs (= outputs), 4^Nu.
func (p Params) N() int { return pow4(p.Nu) }

// L returns the number of grid rows, M·4^Gamma.
func (p Params) L() int { return p.M * pow4(p.Gamma) }

func pow4(k int) int {
	v := 1
	for i := 0; i < k; i++ {
		v *= 4
	}
	return v
}

// MaxBuildEdges guards against accidentally materializing paper-constant
// instances that would exhaust memory.
const MaxBuildEdges = 1 << 27 // ~134M switches

// Network is a materialized instance of 𝒩.
type Network struct {
	P Params
	G *graph.Graph

	// StageBase[s] is the first vertex ID of stage s; stages run 0..4ν.
	StageBase []int32
	// StageSize[s] is the number of vertices on stage s.
	StageSize []int32
	// MiddleStage is 2ν, the central stage of 𝓜 whose majority
	// accessibility (Lemma 6) certifies nonblocking routing.
	MiddleStage int
}

// NumStages returns 4ν+1 for 𝒩, or the level count for a wrapped network
// (see WrapGraph).
func (nw *Network) NumStages() int { return len(nw.StageSize) }

// Inputs returns the input terminals (stage 0).
func (nw *Network) Inputs() []int32 { return nw.G.Inputs() }

// Outputs returns the output terminals (stage 4ν).
func (nw *Network) Outputs() []int32 { return nw.G.Outputs() }

// VertexAt returns the idx-th vertex of stage s.
func (nw *Network) VertexAt(s, idx int) int32 {
	if s < 0 || s >= len(nw.StageBase) || idx < 0 || idx >= int(nw.StageSize[s]) {
		panic(fmt.Sprintf("core: VertexAt(%d,%d) out of range", s, idx))
	}
	return nw.StageBase[s] + int32(idx)
}

// Build materializes Network 𝒩 for the given parameters.
func Build(p Params) (*Network, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	acct := Accounting(p)
	if acct.Edges > MaxBuildEdges {
		return nil, fmt.Errorf("core: %d switches exceeds MaxBuildEdges=%d; use Accounting for closed-form sizes", acct.Edges, MaxBuildEdges)
	}
	nu := p.Nu
	n := p.N()
	L := p.L()
	numStages := 4*nu + 1
	r := rng.New(p.Seed)

	b := graph.NewBuilder(acct.Vertices, acct.Edges)
	stageBase := make([]int32, numStages)
	stageSize := make([]int32, numStages)
	for s := 0; s < numStages; s++ {
		var size int
		switch {
		case s == 0 || s == 4*nu:
			size = n
		default:
			size = n * L
		}
		stageBase[s] = b.AddVertices(int32(s), size)
		stageSize[s] = int32(size)
	}
	for i := 0; i < n; i++ {
		b.MarkInput(stageBase[0] + int32(i))
		b.MarkOutput(stageBase[4*nu] + int32(i))
	}

	// Input terminal switches: input i to every row of Φ_i's first stage.
	for i := 0; i < n; i++ {
		in := stageBase[0] + int32(i)
		gridBase := stageBase[1] + int32(i*L)
		for row := 0; row < L; row++ {
			b.AddEdge(in, gridBase+int32(row))
		}
	}
	// Input grids Φ_i: cyclic transitions between stages 1..ν.
	for s := 1; s < nu; s++ {
		for i := 0; i < n; i++ {
			from := stageBase[s] + int32(i*L)
			to := stageBase[s+1] + int32(i*L)
			for row := 0; row < L; row++ {
				b.AddEdge(from+int32(row), to+int32(row))
				b.AddEdge(from+int32(row), to+int32((row+1)%L))
			}
		}
	}

	// Left half of 𝓜: stages ν+k → ν+k+1 for k = 0..ν−1. Keep every
	// expander instance so the right half can be built as the exact mirror.
	type instanceKey struct{ k, parent, child, quarter int }
	instances := make(map[instanceKey]*expander.Bipartite)
	makeInstance := func(tk int) *expander.Bipartite {
		if p.Explicit {
			return expander.GabberGalil(isqrt(tk))
		}
		return expander.RandomMatchings(tk, p.DQ, r)
	}
	for k := 0; k < nu; k++ {
		tk := L * pow4(k)
		parents := pow4(nu - k - 1)
		srcBase := stageBase[nu+k]
		dstBase := stageBase[nu+k+1]
		for pg := 0; pg < parents; pg++ {
			parentBase := dstBase + int32(pg*Branching*tk)
			for child := 0; child < Branching; child++ {
				childBase := srcBase + int32((pg*Branching+child)*tk)
				for q := 0; q < Branching; q++ {
					inst := makeInstance(tk)
					instances[instanceKey{k, pg, child, q}] = inst
					inst.AddToBuilder(b, childBase, parentBase+int32(q*tk))
				}
			}
		}
	}
	// Right half of 𝓜: stages 2ν+j → 2ν+j+1, the mirror image of left
	// transition k = ν−1−j: each instance is reused with reversed edges.
	for j := 0; j < nu; j++ {
		k := nu - 1 - j
		tk := L * pow4(k)
		parents := pow4(nu - k - 1) // groups on the larger (earlier) side
		srcBase := stageBase[2*nu+j]
		dstBase := stageBase[2*nu+j+1]
		for pg := 0; pg < parents; pg++ {
			parentBase := srcBase + int32(pg*Branching*tk)
			for child := 0; child < Branching; child++ {
				childBase := dstBase + int32((pg*Branching+child)*tk)
				inst4 := [Branching]*expander.Bipartite{}
				for q := 0; q < Branching; q++ {
					inst4[q] = instances[instanceKey{k, pg, child, q}]
				}
				for q := 0; q < Branching; q++ {
					// Mirror: left edge child[i] → quarter[o] becomes
					// right edge quarter[o] → child[i].
					inst4[q].AddToBuilderReversed(b, parentBase+int32(q*tk), childBase)
				}
			}
		}
	}

	// Output grids Ψ_j: cyclic transitions between stages 3ν..4ν−1.
	for s := 3 * nu; s < 4*nu-1; s++ {
		for i := 0; i < n; i++ {
			from := stageBase[s] + int32(i*L)
			to := stageBase[s+1] + int32(i*L)
			for row := 0; row < L; row++ {
				b.AddEdge(from+int32(row), to+int32(row))
				b.AddEdge(from+int32(row), to+int32((row+1)%L))
			}
		}
	}
	// Output terminal switches: every row of Ψ_j's last stage to output j.
	for i := 0; i < n; i++ {
		out := stageBase[4*nu] + int32(i)
		gridBase := stageBase[4*nu-1] + int32(i*L)
		for row := 0; row < L; row++ {
			b.AddEdge(gridBase+int32(row), out)
		}
	}

	g := b.Freeze()
	nw := &Network{
		P:           p,
		G:           g,
		StageBase:   stageBase,
		StageSize:   stageSize,
		MiddleStage: 2 * nu,
	}
	if g.NumEdges() != acct.Edges {
		return nil, fmt.Errorf("core: accounting mismatch: built %d switches, formula %d", g.NumEdges(), acct.Edges)
	}
	return nw, nil
}
