package core

import (
	"math/bits"

	"ftcsn/internal/arena"
	"ftcsn/internal/bitset"
	"ftcsn/internal/graph"
)

// BatchAccessChecker is the word-parallel majority-access certifier: it
// computes the Lemma-6 / Corollary-2 access counts of ALL terminals in one
// pair of sweeps over the stage-ordered CSR, instead of the 2n per-terminal
// BFS traversals of AccessChecker.
//
// The classic batched-reachability trick: every vertex is assigned one
// 64-bit lane word in which bit l means "source l of the current strip
// reaches this vertex". Sources are processed in strips of up to 64 lanes;
// a strip seeds input i's bit at its terminal, then one pass over vertices
// in stage order ORs each vertex's word into the heads of its
// OutAllowed-permitted CSR slots — propagating 64 single-source
// reachability frontiers per machine word operation. At the middle stage
// the per-lane column populations are the access counts. The output side
// is the mirror image on the reverse CSR under InAllowed. Total cost is
// O(E·n/64) word operations.
//
// The lane rows live in a bitset.Set of capacity 64·NumVertices (vertex
// v's word is Words()[v]); seeding goes through the bounds-checked Set so
// a bad terminal ID cannot silently corrupt a neighboring row.
//
// Correctness contract: the checker engages only when the masks carry the
// CSR-slot traversal bytes and no Busy information (the bytes encode
// EdgeOK and VertexOK but not Busy — same contract as the routing fast
// path), and only on graphs whose StageLayout holds, where the stage-order
// pass visits every edge after its tail's word is final. Under those
// conditions the set of middle-stage vertices a terminal reaches — and so
// every count and the OK verdict — is bit-identical to the BFS (locked by
// the differential harness and FuzzBatchedMajorityAccess).
type BatchAccessChecker struct {
	nw    *Network
	first []int32 // graph.StageLayout vertex ranges; nil when unsupported
	rows  *bitset.Set
	// lanes is the strip width in sources (≤ 64). It exists so tests can
	// exercise multi-strip scheduling and partial strips on small networks;
	// production use keeps the full word.
	lanes int
}

// NewBatchAccessChecker returns a word-parallel certifier for nw. Networks
// whose graph is not stage-ordered (see graph.StageLayout) yield a checker
// whose MajorityAccessInto always reports unsupported.
func NewBatchAccessChecker(nw *Network) *BatchAccessChecker {
	return NewBatchAccessCheckerIn(nw, nil)
}

// NewBatchAccessCheckerIn is NewBatchAccessChecker drawing the lane rows —
// the checker's one large buffer — from a (nil a allocates normally).
func NewBatchAccessCheckerIn(nw *Network, a *arena.Arena) *BatchAccessChecker {
	bc := &BatchAccessChecker{nw: nw, lanes: 64}
	if first, ok := nw.G.StageLayout(); ok {
		bc.first = first
		bc.rows = bitset.NewIn(64*nw.G.NumVertices(), a)
	}
	return bc
}

// Supported reports whether the checker can run on its network at all
// (stage-ordered graph). Mask applicability is still checked per call.
func (bc *BatchAccessChecker) Supported() bool { return bc.first != nil }

// MajorityAccessInto runs the whole-network majority-access check
// word-parallel, writing into rep exactly what the per-terminal BFS loop
// would. It returns false — leaving rep untouched — when the fast path
// does not apply: unsupported graph, missing traversal bytes, or non-nil
// Busy (lane words carry no busy information, so busy-exempt certification
// stays on the BFS path).
func (bc *BatchAccessChecker) MajorityAccessInto(m Masks, rep *MajorityReport) bool {
	if bc.first == nil || m.Busy != nil || m.OutAllowed == nil || m.InAllowed == nil {
		return false
	}
	nw := bc.nw
	mid := nw.MiddleStage
	rep.MiddleSize = int(nw.StageSize[mid])
	rep.InputAccess = growInts(rep.InputAccess, len(nw.Inputs()))
	rep.OutputAccess = growInts(rep.OutputAccess, len(nw.Outputs()))
	bc.countForward(nw.Inputs(), mid, m.OutAllowed, rep.InputAccess)
	bc.countBackward(nw.Outputs(), mid, m.InAllowed, rep.OutputAccess)
	need := rep.MiddleSize/2 + 1
	rep.OK = true
	for _, c := range rep.InputAccess {
		if c < need {
			rep.OK = false
			break
		}
	}
	if rep.OK {
		for _, c := range rep.OutputAccess {
			if c < need {
				rep.OK = false
				break
			}
		}
	}
	return true
}

// countForward fills counts[i] with the number of targetStage vertices
// source srcs[i] reaches along allowed forward slots, strip by strip.
func (bc *BatchAccessChecker) countForward(srcs []int32, targetStage int, allowed []uint8, counts []int) {
	start, _, heads := bc.nw.G.CSROut()
	words := bc.rows.Words()
	sweepEnd := bc.first[targetStage] // first vertex of the target stage
	midEnd := bc.first[targetStage+1]
	for base := 0; base < len(srcs); base += bc.lanes {
		k := min(bc.lanes, len(srcs)-base)
		bc.rows.Reset()
		for l := 0; l < k; l++ {
			bc.rows.Set(int(srcs[base+l])<<6 | l)
		}
		// Stage order == ID order (StageLayout), so by the time v is
		// expanded every allowed path into v has already deposited its
		// lanes: one pass suffices. Vertices at or past the target stage
		// receive lane bits but are never expanded — exactly the BFS's
		// "visit but do not traverse the target stage" rule.
		for v := int32(0); v < sweepEnd; v++ {
			w := words[v]
			if w == 0 {
				continue
			}
			for idx := start[v]; idx < start[v+1]; idx++ {
				if allowed[idx]&graph.AdjBlocked == 0 {
					words[heads[idx]] |= w
				}
			}
		}
		// Transpose the middle-stage block: each set bit is one (source,
		// middle-vertex) reachability pair.
		for l := 0; l < k; l++ {
			counts[base+l] = 0
		}
		for v := sweepEnd; v < midEnd; v++ {
			for w := words[v]; w != 0; w &= w - 1 {
				counts[base+bits.TrailingZeros64(w)]++
			}
		}
	}
}

// countBackward is countForward on the reverse CSR: sources are outputs,
// propagation walks stages downward, and InAllowed gates the slots.
func (bc *BatchAccessChecker) countBackward(srcs []int32, targetStage int, allowed []uint8, counts []int) {
	start, _, tails := bc.nw.G.CSRIn()
	words := bc.rows.Words()
	midFirst := bc.first[targetStage]
	sweepStart := bc.first[targetStage+1] // first vertex past the target stage
	nV := int32(bc.nw.G.NumVertices())
	for base := 0; base < len(srcs); base += bc.lanes {
		k := min(bc.lanes, len(srcs)-base)
		bc.rows.Reset()
		for l := 0; l < k; l++ {
			bc.rows.Set(int(srcs[base+l])<<6 | l)
		}
		for v := nV - 1; v >= sweepStart; v-- {
			w := words[v]
			if w == 0 {
				continue
			}
			for idx := start[v]; idx < start[v+1]; idx++ {
				if allowed[idx]&graph.AdjBlocked == 0 {
					words[tails[idx]] |= w
				}
			}
		}
		for l := 0; l < k; l++ {
			counts[base+l] = 0
		}
		for v := midFirst; v < sweepStart; v++ {
			for w := words[v]; w != 0; w &= w - 1 {
				counts[base+bits.TrailingZeros64(w)]++
			}
		}
	}
}
