package core

import (
	"math/bits"

	"ftcsn/internal/arena"
	"ftcsn/internal/bitset"
	"ftcsn/internal/graph"
)

// BatchAccessChecker is the word-parallel majority-access certifier: it
// computes the Lemma-6 / Corollary-2 access counts of ALL terminals in one
// pair of level-ordered sweeps over the CSR, instead of the 2n per-terminal
// BFS traversals of AccessChecker.
//
// The classic batched-reachability trick: every vertex is assigned one
// 64-bit lane word in which bit l means "source l of the current strip
// reaches this vertex". Sources are processed in strips of up to 64 lanes;
// a strip seeds input i's bit at its terminal, then one pass over vertices
// in topological-level order (graph.Levels) ORs each vertex's word into
// the heads of its OutAllowed-permitted CSR slots — propagating 64
// single-source reachability frontiers per machine word operation. At the
// middle stage the per-lane column populations are the access counts. The output side
// is the mirror image on the reverse CSR under InAllowed. Total cost is
// O(E·n/64) word operations.
//
// The lane rows live in a bitset.Set of capacity 64·NumVertices (vertex
// v's word is Words()[v]); seeding goes through the bounds-checked Set so
// a bad terminal ID cannot silently corrupt a neighboring row.
//
// Correctness contract: the checker engages only when the masks carry the
// CSR-slot traversal bytes and no Busy information (the bytes encode
// EdgeOK and VertexOK but not Busy — same contract as the routing fast
// path), and only on graphs with a topological leveling (graph.Levels),
// where the level-order pass visits every edge after its tail's word is
// final. On level-sorted graphs — every staged MIN — the pass is the
// historical plain-ID sweep; otherwise it walks the cached level-sorted
// permutation, which is how expander, hammock-substituted, mirror, hyperx
// and circulant networks get word-parallel certification. Under those
// conditions the set of middle-stage vertices a terminal reaches — and so
// every count and the OK verdict — is bit-identical to the BFS (locked by
// the differential harness and FuzzBatchedMajorityAccess).
type BatchAccessChecker struct {
	nw   *Network
	lv   *graph.Levels // topological leveling; nil when the graph is cyclic
	rows *bitset.Set
	// lanes is the strip width in sources (≤ 64). It exists so tests can
	// exercise multi-strip scheduling and partial strips on small networks;
	// production use keeps the full word.
	lanes int
}

// NewBatchAccessChecker returns a word-parallel certifier for nw. Networks
// whose graph has no leveling (cyclic; see graph.Levels) yield a checker
// whose MajorityAccessInto always reports unsupported.
func NewBatchAccessChecker(nw *Network) *BatchAccessChecker {
	return NewBatchAccessCheckerIn(nw, nil)
}

// NewBatchAccessCheckerIn is NewBatchAccessChecker drawing the lane rows —
// the checker's one large buffer — from a (nil a allocates normally).
func NewBatchAccessCheckerIn(nw *Network, a *arena.Arena) *BatchAccessChecker {
	//ftlint:ignore hotpath constructor: reached from the trial path only through MajorityAccessInto's one-time lazy init
	bc := &BatchAccessChecker{nw: nw, lanes: 64}
	if lv, err := nw.G.Levels(); err == nil && nw.MiddleStage+1 < len(lv.First()) {
		bc.lv = lv
		bc.rows = bitset.NewIn(64*nw.G.NumVertices(), a)
	}
	return bc
}

// Supported reports whether the checker can run on its network at all
// (leveled graph). Mask applicability is still checked per call.
func (bc *BatchAccessChecker) Supported() bool { return bc.lv != nil }

// MajorityAccessInto runs the whole-network majority-access check
// word-parallel, writing into rep exactly what the per-terminal BFS loop
// would. It returns false — leaving rep untouched — when the fast path
// does not apply: unsupported graph, missing traversal bytes, or non-nil
// Busy (lane words carry no busy information, so busy-exempt certification
// stays on the BFS path).
func (bc *BatchAccessChecker) MajorityAccessInto(m Masks, rep *MajorityReport) bool {
	if bc.lv == nil || m.Busy != nil || m.OutAllowed == nil || m.InAllowed == nil {
		return false
	}
	nw := bc.nw
	mid := nw.MiddleStage
	rep.MiddleSize = int(nw.StageSize[mid])
	rep.InputAccess = growInts(rep.InputAccess, len(nw.Inputs()))
	rep.OutputAccess = growInts(rep.OutputAccess, len(nw.Outputs()))
	bc.countForward(nw.Inputs(), mid, m.OutAllowed, rep.InputAccess)
	bc.countBackward(nw.Outputs(), mid, m.InAllowed, rep.OutputAccess)
	need := rep.MiddleSize/2 + 1
	rep.OK = true
	for _, c := range rep.InputAccess {
		if c < need {
			rep.OK = false
			break
		}
	}
	if rep.OK {
		for _, c := range rep.OutputAccess {
			if c < need {
				rep.OK = false
				break
			}
		}
	}
	return true
}

// countForward fills counts[i] with the number of targetStage vertices
// source srcs[i] reaches along allowed forward slots, strip by strip.
func (bc *BatchAccessChecker) countForward(srcs []int32, targetStage int, allowed []uint8, counts []int) {
	start, _, heads := bc.nw.G.CSROut()
	words := bc.rows.Words()
	first := bc.lv.First()
	sweepEnd := first[targetStage] // first position of the target level
	midEnd := first[targetStage+1]
	order := bc.lv.Order()
	for base := 0; base < len(srcs); base += bc.lanes {
		k := min(bc.lanes, len(srcs)-base)
		bc.rows.Reset()
		for l := 0; l < k; l++ {
			bc.rows.Set(int(srcs[base+l])<<6 | l)
		}
		// Level order, so by the time v is expanded every allowed path
		// into v has already deposited its lanes: one pass suffices.
		// Vertices at or past the target level receive lane bits but are
		// never expanded — exactly the BFS's "visit but do not traverse
		// the target stage" rule. On level-sorted graphs (order == nil)
		// positions ARE vertex IDs: the historical plain-ID sweep.
		if order == nil {
			for v := int32(0); v < sweepEnd; v++ {
				w := words[v]
				if w == 0 {
					continue
				}
				for idx := start[v]; idx < start[v+1]; idx++ {
					if allowed[idx]&graph.AdjBlocked == 0 {
						words[heads[idx]] |= w
					}
				}
			}
		} else {
			for p := int32(0); p < sweepEnd; p++ {
				v := order[p]
				w := words[v]
				if w == 0 {
					continue
				}
				for idx := start[v]; idx < start[v+1]; idx++ {
					if allowed[idx]&graph.AdjBlocked == 0 {
						words[heads[idx]] |= w
					}
				}
			}
		}
		// Transpose the middle-level block: each set bit is one (source,
		// middle-vertex) reachability pair.
		for l := 0; l < k; l++ {
			counts[base+l] = 0
		}
		for p := sweepEnd; p < midEnd; p++ {
			v := p
			if order != nil {
				v = order[p]
			}
			for w := words[v]; w != 0; w &= w - 1 {
				counts[base+bits.TrailingZeros64(w)]++
			}
		}
	}
}

// countBackward is countForward on the reverse CSR: sources are outputs,
// propagation walks levels downward, and InAllowed gates the slots.
func (bc *BatchAccessChecker) countBackward(srcs []int32, targetStage int, allowed []uint8, counts []int) {
	start, _, tails := bc.nw.G.CSRIn()
	words := bc.rows.Words()
	first := bc.lv.First()
	midFirst := first[targetStage]
	sweepStart := first[targetStage+1] // first position past the target level
	nPos := int32(bc.nw.G.NumVertices())
	order := bc.lv.Order()
	for base := 0; base < len(srcs); base += bc.lanes {
		k := min(bc.lanes, len(srcs)-base)
		bc.rows.Reset()
		for l := 0; l < k; l++ {
			bc.rows.Set(int(srcs[base+l])<<6 | l)
		}
		if order == nil {
			for v := nPos - 1; v >= sweepStart; v-- {
				w := words[v]
				if w == 0 {
					continue
				}
				for idx := start[v]; idx < start[v+1]; idx++ {
					if allowed[idx]&graph.AdjBlocked == 0 {
						words[tails[idx]] |= w
					}
				}
			}
		} else {
			for p := nPos - 1; p >= sweepStart; p-- {
				v := order[p]
				w := words[v]
				if w == 0 {
					continue
				}
				for idx := start[v]; idx < start[v+1]; idx++ {
					if allowed[idx]&graph.AdjBlocked == 0 {
						words[tails[idx]] |= w
					}
				}
			}
		}
		for l := 0; l < k; l++ {
			counts[base+l] = 0
		}
		for p := midFirst; p < sweepStart; p++ {
			v := p
			if order != nil {
				v = order[p]
			}
			for w := words[v]; w != 0; w &= w - 1 {
				counts[base+bits.TrailingZeros64(w)]++
			}
		}
	}
}
