package core

import (
	"ftcsn/internal/arena"
	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
)

// MaskUpdater maintains repair masks incrementally: given the diff of edge
// states between consecutive fault trials (fault.BatchInjector.ApplyNext),
// Apply recomputes only the stage-neighborhoods of the changed edges —
// each changed edge's endpoints, and the switches incident to any endpoint
// whose usability flipped — instead of the O(E) rescan of RepairMasksInto.
// It also keeps the masks' CSR-slot-aligned traversal byte arrays
// (Masks.OutAllowed/InAllowed) current, so the access-certificate BFS and
// the router see the update for free.
//
// Dirty sets are epoch-stamped, so per-trial bookkeeping allocates nothing
// and costs O(1) to reset. Equivalence with the from-scratch rescan is
// locked by FuzzIncrementalRepairMasks.
type MaskUpdater struct {
	g *graph.Graph

	vEpoch  []uint32
	eEpoch  []uint32
	vCur    uint32
	eCur    uint32
	dirtyV  []int32
	dirtyE  []int32
	flipped []int32 // vertices whose usability actually flipped in the last Apply
}

// NewMaskUpdater returns an updater for graphs over g.
func NewMaskUpdater(g *graph.Graph) *MaskUpdater { return NewMaskUpdaterIn(g, nil) }

// NewMaskUpdaterIn is NewMaskUpdater drawing the epoch tables from a (nil
// a allocates normally).
func NewMaskUpdaterIn(g *graph.Graph, a *arena.Arena) *MaskUpdater {
	return &MaskUpdater{
		g:      g,
		vEpoch: a.U32(g.NumVertices()),
		eEpoch: a.U32(g.NumEdges()),
	}
}

// Init fully recomputes m from inst — the paper's discard repair, exactly
// as RepairMasksInto — and builds the combined traversal arrays, reusing
// m's existing byte buffers (RepairMasksInto drops the stale references,
// but the backing capacity — possibly arena-owned — is kept and refilled).
// Call it once per (instance, masks) pairing; afterwards keep the pair
// current with Apply.
func (mu *MaskUpdater) Init(inst *fault.Instance, m *Masks) {
	outBuf, inBuf := m.OutAllowed, m.InAllowed
	RepairMasksInto(inst, m)
	m.OutAllowed = mu.g.BuildOutAllowed(m.EdgeOK, m.VertexOK, outBuf)
	m.InAllowed = mu.g.BuildInAllowed(m.EdgeOK, m.VertexOK, inBuf)
}

// Apply updates m for the given edge-state changes. m must be current for
// inst's state before the diff was applied (via Init or a previous Apply).
// It returns the IDs of the edges whose mask entries were recomputed — a
// superset of those that actually changed — valid until the next call.
func (mu *MaskUpdater) Apply(inst *fault.Instance, m *Masks, diff []fault.DiffEntry) []int32 {
	g := mu.g
	mu.bump()
	mu.dirtyV = mu.dirtyV[:0]
	mu.dirtyE = mu.dirtyE[:0]
	mu.flipped = mu.flipped[:0]
	for _, d := range diff {
		mu.markEdge(d.Edge)
		mu.markVertex(g.EdgeFrom(d.Edge))
		mu.markVertex(g.EdgeTo(d.Edge))
	}
	// Usability of a vertex depends only on its incident switches: it is
	// discarded iff it is a non-terminal touching a failed switch.
	for _, v := range mu.dirtyV {
		ok := g.IsTerminal(v) || !hasFailedIncident(inst, g, v)
		//ftlint:ignore seamcontract audited: the mask maintainer itself — it derives the masks and traversal bytes everyone else reads
		if ok == m.VertexOK[v] {
			continue
		}
		m.VertexOK[v] = ok
		mu.flipped = append(mu.flipped, v)
		// A flipped vertex invalidates every incident switch's entry.
		for _, e := range g.OutEdges(v) {
			mu.markEdge(e)
		}
		for _, e := range g.InEdges(v) {
			mu.markEdge(e)
		}
	}
	for _, e := range mu.dirtyE {
		u, w := g.EdgeFrom(e), g.EdgeTo(e)
		//ftlint:ignore seamcontract audited: the mask maintainer itself — it derives the masks and traversal bytes everyone else reads
		ok := inst.Edge[e] == fault.Normal && m.VertexOK[u] && m.VertexOK[w]
		m.EdgeOK[e] = ok
		setAllowedBit(m.OutAllowed, g.OutSlot(e), ok)
		setAllowedBit(m.InAllowed, g.InSlot(e), ok)
	}
	return mu.dirtyE
}

// ChangedVertices returns the vertices whose usability flipped in the
// last Apply (not the merely-touched endpoints) — together with Apply's
// returned edge list, the exact change set an engine needs to refresh
// derived state incrementally (route.Engine.MasksChangedDiff). Valid
// until the next Apply.
func (mu *MaskUpdater) ChangedVertices() []int32 { return mu.flipped }

// Revert undoes a previously applied diff on both the instance and the
// masks: it restores every entry's Old state (fault.RevertDiff) and then
// re-derives the affected mask neighborhood exactly as Apply does — legal
// because Apply reads only the diff's edge IDs against inst's current
// state. The returned edge list (and ChangedVertices) describe the revert
// itself, ready to hand to MasksChangedDiff. Note fault.RevertDiff's
// caveat: a BatchInjector's applied-list tracking is not updated — re-
// apply the diff (or Rebase) before the injector's next ApplyNext.
func (mu *MaskUpdater) Revert(inst *fault.Instance, m *Masks, diff []fault.DiffEntry) []int32 {
	fault.RevertDiff(inst, diff)
	return mu.Apply(inst, m, diff)
}

// setAllowedBit updates the AdjBlocked bit of one traversal byte, leaving
// the static AdjTerminal bit intact.
func setAllowedBit(allowed []uint8, slot int32, ok bool) {
	b := allowed[slot] &^ graph.AdjBlocked
	if !ok {
		b |= graph.AdjBlocked
	}
	allowed[slot] = b
}

// hasFailedIncident reports whether any switch incident to v failed.
func hasFailedIncident(inst *fault.Instance, g *graph.Graph, v int32) bool {
	for _, e := range g.OutEdges(v) {
		//ftlint:ignore seamcontract audited: mask-maintainer helper reading raw fault state to derive vertex usability
		if inst.Edge[e] != fault.Normal {
			return true
		}
	}
	for _, e := range g.InEdges(v) {
		//ftlint:ignore seamcontract audited: mask-maintainer helper reading raw fault state to derive vertex usability
		if inst.Edge[e] != fault.Normal {
			return true
		}
	}
	return false
}

func (mu *MaskUpdater) bump() {
	mu.vCur++
	if mu.vCur == 0 {
		for i := range mu.vEpoch {
			mu.vEpoch[i] = 0
		}
		mu.vCur = 1
	}
	mu.eCur++
	if mu.eCur == 0 {
		for i := range mu.eEpoch {
			mu.eEpoch[i] = 0
		}
		mu.eCur = 1
	}
}

func (mu *MaskUpdater) markVertex(v int32) {
	if mu.vEpoch[v] != mu.vCur {
		mu.vEpoch[v] = mu.vCur
		mu.dirtyV = append(mu.dirtyV, v)
	}
}

func (mu *MaskUpdater) markEdge(e int32) {
	if mu.eEpoch[e] != mu.eCur {
		mu.eEpoch[e] = mu.eCur
		mu.dirtyE = append(mu.dirtyE, e)
	}
}
