package core

import (
	"sync"
	"testing"

	"ftcsn/internal/fault"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

// TestPooledEvaluatorBitIdentical cycles one pool across networks of
// different sizes (so slabs are resized, reused, and re-zeroed) and
// requires every pooled trial outcome to match a fresh evaluator's — the
// property the determinism gate rests on.
func TestPooledEvaluatorBitIdentical(t *testing.T) {
	pool := NewEvaluatorPool()
	nets := []Params{
		DefaultParams(2),                         // larger first: slabs grow
		{Nu: 1, Gamma: 0, M: 4, DQ: 2, Seed: 2},  // smaller: partial reuse
		{Nu: 1, Gamma: 0, M: 16, DQ: 2, Seed: 3}, // taller again
		{Nu: 1, Gamma: 0, M: 4, DQ: 2, Seed: 2},  // repeat: exact reuse
	}
	const trials = 12
	m := fault.Symmetric(0.02)
	for round, p := range nets {
		nw := buildNetwork(t, p)
		ref := NewEvaluator(nw)
		ev := pool.NewEvaluator(nw)
		var want, got TrialOutcome
		ref.StartBlock(m, 7, 0, trials)
		ev.StartBlock(m, 7, 0, trials)
		for i := 0; i < trials; i++ {
			ref.EvaluateNextInto(&want, 50)
			ev.EvaluateNextInto(&got, 50)
			if got != want {
				t.Fatalf("round %d trial %d: pooled outcome diverged:\npooled %+v\nfresh  %+v", round, i, got, want)
			}
		}
		ev.Release()
	}
	if created, reused := pool.Arenas(); created != 1 || reused != len(nets)-1 {
		t.Errorf("arena accounting: created=%d reused=%d, want 1 and %d", created, reused, len(nets)-1)
	}
}

// TestPooledEvaluatorCertPath is the same bit-identity on the
// certificate-only pipeline (the E10 workload), which exercises the
// word-parallel certifier's arena-backed lane rows.
func TestPooledEvaluatorCertPath(t *testing.T) {
	pool := NewEvaluatorPool()
	for _, p := range []Params{DefaultParams(2), {Nu: 1, Gamma: 0, M: 8, DQ: 1, Seed: 1}} {
		nw := buildNetwork(t, p)
		ref := NewEvaluator(nw)
		ev := pool.NewEvaluator(nw)
		m := fault.Symmetric(0.01)
		var want, got TrialOutcome
		ref.StartBlock(m, 11, 0, 20)
		ev.StartBlock(m, 11, 0, 20)
		for i := 0; i < 20; i++ {
			ref.EvaluateNextCertInto(&want)
			ev.EvaluateNextCertInto(&got)
			if got != want {
				t.Fatalf("%+v: cert trial %d diverged", p, i)
			}
		}
		ev.Release()
	}
}

// TestPoolConcurrentGet mirrors how montecarlo workers construct pooled
// scratch: concurrent NewEvaluator calls must hand out disjoint arenas.
func TestPoolConcurrentGet(t *testing.T) {
	pool := NewEvaluatorPool()
	nw := buildNetwork(t, Params{Nu: 1, Gamma: 0, M: 4, DQ: 2, Seed: 2})
	const workers = 8
	evs := make([]*Evaluator, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			evs[w] = pool.NewEvaluator(nw)
			var out TrialOutcome
			var r rng.RNG
			for i := 0; i < 5; i++ {
				r.ReseedStream(uint64(w), uint64(i))
				evs[w].EvaluateInto(&out, fault.Symmetric(0.05), &r, 30)
			}
		}(w)
	}
	wg.Wait()
	seen := map[*Evaluator]bool{}
	for _, ev := range evs {
		if ev == nil || seen[ev] {
			t.Fatal("worker evaluators not distinct")
		}
		seen[ev] = true
		ev.Release()
	}
	if created, _ := pool.Arenas(); created != workers {
		t.Errorf("created %d arenas for %d concurrent workers", created, workers)
	}
	// After release, the next customers recycle instead of allocating.
	for i := 0; i < workers; i++ {
		pool.NewEvaluator(nw).Release()
	}
	if created, reused := pool.Arenas(); created != workers || reused != workers {
		t.Errorf("post-release accounting: created=%d reused=%d", created, reused)
	}
}

// TestReleaseUnpooledNoop: Release on a plain evaluator must leave it
// usable (it owns its buffers).
func TestReleaseUnpooledNoop(t *testing.T) {
	nw := buildNetwork(t, Params{Nu: 1, Gamma: 0, M: 4, DQ: 2, Seed: 2})
	ev := NewEvaluator(nw)
	ev.Release()
	var out TrialOutcome
	var r rng.RNG
	r.ReseedStream(3, 0)
	ev.EvaluateInto(&out, fault.Symmetric(0.01), &r, 20) // must not panic
}

// TestReleaseDetachesChurnEngine: an externally installed churn engine
// borrows the pooled evaluator's arena-backed mask slices; Release must
// detach them so later engine use fails loudly instead of silently
// probing whichever evaluator owns the recycled slabs next.
func TestReleaseDetachesChurnEngine(t *testing.T) {
	pool := NewEvaluatorPool()
	nw := buildNetwork(t, Params{Nu: 1, Gamma: 0, M: 4, DQ: 2, Seed: 2})
	ev := pool.NewEvaluator(nw)
	se := route.NewShardedEngine(nw.G, 2)
	ev.SetChurnEngine(se)
	var out TrialOutcome
	ev.StartBlock(fault.Symmetric(0.01), 5, 0, 4)
	for i := 0; i < 4; i++ {
		ev.EvaluateNextInto(&out, 40)
	}
	ev.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("engine use after Release did not fail loudly")
		}
	}()
	se.ServeBatch([]route.Request{{In: nw.Inputs()[0], Out: nw.Outputs()[0]}}, nil)
}
