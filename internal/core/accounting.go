package core

import "math"

// Acct holds closed-form size and depth accounting for Network 𝒩.
type Acct struct {
	Vertices int
	Edges    int // the paper's "size"
	Depth    int // the paper's "depth" (switches on the longest path)

	TerminalEdges int // input + output switches: 2·n·L
	GridEdges     int // Φ and Ψ combined: 4·n·L·(ν−1) (cyclic grids)
	CoreEdges     int // 𝓜: 2ν·4·DQ·n·L
}

// Accounting returns the exact switch counts Build will materialize, in
// closed form:
//
//	vertices = 2n + (4ν−1)·n·L
//	edges    = n·L·(2 + 4(ν−1) + 8·q·ν), q = QuarterDegree()
//	depth    = 4ν
//
// where n = 4^ν and L = M·4^γ.
func Accounting(p Params) Acct {
	n := p.N()
	L := p.L()
	nu := p.Nu
	nL := n * L
	a := Acct{
		TerminalEdges: 2 * nL,
		GridEdges:     4 * nL * (nu - 1),
		CoreEdges:     2 * nu * Branching * p.QuarterDegree() * nL,
		Vertices:      2*n + (4*nu-1)*nL,
		Depth:         4 * nu,
	}
	a.Edges = a.TerminalEdges + a.GridEdges + a.CoreEdges
	return a
}

// PaperAcct reports the size of the paper-constant construction
// analytically, without materializing it.
type PaperAcct struct {
	Nu    int
	N     int // 4^ν terminals
	Gamma int // ⌈log₄(34ν)⌉
	L     int // 64·4^γ grid rows

	// EdgesFaithful is the switch count of the construction as described
	// (M=64, degree 10, cyclic ν-stage grids): (1536ν−128)·4^(ν+γ).
	EdgesFaithful int
	// EdgesClaimed is the count the paper states: 1408ν·4^(ν+γ). The gap
	// is a factor-2 slip in the paper's grid-edge term (its figure implies
	// in/out degree 2 per grid vertex, i.e. 2L switches per transition,
	// but the total 1408ν charges only L per transition).
	EdgesClaimed int
	// Theorem2Bound is the bound stated in Theorem 2: 49·n·(log₄n)².
	// Note it does not dominate either count above — the theorem's
	// constant is inconsistent with the construction's own accounting
	// (1408·136 ≫ 49); we report all three and compare shapes, not
	// constants, in EXPERIMENTS.md.
	Theorem2Bound int
	// DepthFaithful is 4ν; Theorem2DepthBound is the stated 5·log₄n.
	DepthFaithful      int
	Theorem2DepthBound int
}

// PaperAccounting computes PaperAcct for n = 4^nu.
func PaperAccounting(nu int) PaperAcct {
	gamma := PaperGamma(nu)
	n := pow4(nu)
	scale := pow4(nu + gamma)
	return PaperAcct{
		Nu:                 nu,
		N:                  n,
		Gamma:              gamma,
		L:                  64 * pow4(gamma),
		EdgesFaithful:      (1536*nu - 128) * scale,
		EdgesClaimed:       1408 * nu * scale,
		Theorem2Bound:      49 * n * nu * nu,
		DepthFaithful:      4 * nu,
		Theorem2DepthBound: 5 * nu,
	}
}

// LowerBoundSize is Theorem 1's size lower bound for a (1/4,1/2)-n-
// superconcentrator: (1/2688)·n·(log₂ n)².
func LowerBoundSize(n int) float64 {
	lg := math.Log2(float64(n))
	return float64(n) * lg * lg / 2688
}

// LowerBoundDepth is Theorem 1's depth lower bound: (1/6)·log₂ n.
func LowerBoundDepth(n int) float64 {
	return math.Log2(float64(n)) / 6
}
