package core

import (
	"fmt"

	"ftcsn/internal/graph"
)

// WrapGraph adapts an arbitrary acyclic terminal network — an expander
// chain, a hammock substitution, a Mirror() image, a hyperx or circulant
// unrolling — to the certification machinery built for 𝒩: the graph's
// topological levels (graph.Levels) play the role of stages, StageSize
// holds the per-level vertex counts, and MiddleStage is the central level
// ⌊L/2⌋, so MajorityAccess measures every terminal's access to a majority
// of the middle level exactly as Lemma 6 does for 𝒩's middle stage. The
// word-parallel BatchAccessChecker, the evaluator pipeline, and the churn
// engines all run unmodified on the wrapped network.
//
// P is left zero: the wrapped network has no 𝒩 parameters, so
// 𝒩-specific measurements (GridAccessCount, Theorem-2 bounds) do not
// apply. StageBase is populated only when vertex IDs are level-sorted;
// VertexAt panics otherwise.
//
// Errors: cyclic graphs (no leveling) and graphs without terminals are
// rejected.
func WrapGraph(g *graph.Graph) (*Network, error) {
	lv, err := g.Levels()
	if err != nil {
		return nil, fmt.Errorf("core: WrapGraph: %w", err)
	}
	if len(g.Inputs()) == 0 || len(g.Outputs()) == 0 {
		return nil, fmt.Errorf("core: WrapGraph: graph has %d inputs, %d outputs", len(g.Inputs()), len(g.Outputs()))
	}
	L := lv.NumLevels()
	if L < 2 {
		return nil, fmt.Errorf("core: WrapGraph: %d levels; need at least an input and an output level", L)
	}
	first := lv.First()
	sizes := make([]int32, L)
	for l := 0; l < L; l++ {
		sizes[l] = first[l+1] - first[l]
	}
	nw := &Network{
		G:           g,
		StageSize:   sizes,
		MiddleStage: L / 2,
	}
	if lv.Sorted() {
		nw.StageBase = first[:L:L]
	}
	return nw, nil
}
