package arena

import "testing"

func TestTakeZeroedAndDisjoint(t *testing.T) {
	a := New()
	x := a.I32(100)
	y := a.I32(50)
	if len(x) != 100 || len(y) != 50 {
		t.Fatalf("lengths: %d, %d", len(x), len(y))
	}
	for i := range x {
		x[i] = int32(i + 1)
	}
	for _, v := range y {
		if v != 0 {
			t.Fatal("second take not zeroed")
		}
	}
	for i := range y {
		y[i] = -1
	}
	for i, v := range x {
		if v != int32(i+1) {
			t.Fatalf("takes overlap: x[%d] = %d", i, v)
		}
	}
	// Full-slice appends must not spill into the neighbor: takes are
	// capacity-clamped.
	x = append(x, 7)
	if y[0] != -1 {
		t.Fatal("append to x overwrote y")
	}
}

func TestResetReusesAndZeroes(t *testing.T) {
	a := New()
	x := a.U64(1 << 12)
	for i := range x {
		x[i] = ^uint64(0)
	}
	a.Reset()
	y := a.U64(1 << 12)
	if &x[0] != &y[0] {
		t.Error("reset did not reuse the slab")
	}
	for i, v := range y {
		if v != 0 {
			t.Fatalf("reused memory not zeroed at %d", i)
		}
	}
}

func TestGrowthKeepsOldSlicesValid(t *testing.T) {
	a := New()
	x := a.Bytes(10)
	for i := range x {
		x[i] = 0xAB
	}
	_ = a.Bytes(1 << 20) // force a slab replacement
	for i, v := range x {
		if v != 0xAB {
			t.Fatalf("pre-growth slice corrupted at %d", i)
		}
	}
}

func TestNilArenaFallsBackToMake(t *testing.T) {
	var a *Arena
	x := a.Bools(8)
	if len(x) != 8 {
		t.Fatal("nil arena Bools")
	}
	a.Reset() // must not panic
	if got := a.Ints(3); len(got) != 3 {
		t.Fatal("nil arena Ints")
	}
}

func TestAllTypesAndZeroLength(t *testing.T) {
	a := New()
	if len(a.Bools(0)) != 0 || len(a.Bytes(0)) != 0 || len(a.I8(0)) != 0 ||
		len(a.I32(0)) != 0 || len(a.U32(0)) != 0 || len(a.U64(0)) != 0 || len(a.Ints(0)) != 0 {
		t.Fatal("zero-length takes")
	}
	if len(a.I8(5)) != 5 || len(a.U32(5)) != 5 || len(a.Ints(5)) != 5 {
		t.Fatal("typed takes")
	}
}

func TestTypedZeroedAndPerTypeSlabs(t *testing.T) {
	type stateA uint8
	type stateB uint8
	a := New()
	xa := Typed[stateA](a, 16)
	xb := Typed[stateB](a, 16)
	if len(xa) != 16 || len(xb) != 16 {
		t.Fatal("typed takes wrong length")
	}
	for i := range xa {
		xa[i] = 0x5A
	}
	// Distinct element types must not share a slab: xb stays zero.
	for i, v := range xb {
		if v != 0 {
			t.Fatalf("cross-type slab sharing at %d: %v", i, v)
		}
	}
	// Same type bumps within one slab: a second take must not alias.
	ya := Typed[stateA](a, 16)
	for i, v := range ya {
		if v != 0 {
			t.Fatalf("second take not zeroed at %d: %v", i, v)
		}
	}
	ya[0] = 1
	if xa[0] != 0x5A {
		t.Fatal("takes alias")
	}
}

func TestTypedResetRecyclesAndZeroes(t *testing.T) {
	type state uint8
	a := New()
	x := Typed[state](a, 64)
	for i := range x {
		x[i] = 0xFF
	}
	a.Reset()
	y := Typed[state](a, 64)
	if &x[0] != &y[0] {
		t.Fatal("Reset did not recycle the typed slab")
	}
	for i, v := range y {
		if v != 0 {
			t.Fatalf("recycled typed memory not zeroed at %d", i)
		}
	}
}

func TestTypedNilArena(t *testing.T) {
	type state uint8
	x := Typed[state](nil, 8)
	if len(x) != 8 {
		t.Fatal("nil arena Typed")
	}
}
