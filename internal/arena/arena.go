// Package arena provides a typed bump allocator for the per-worker scratch
// of the trial pipeline.
//
// Multi-network experiments (E8's crossover sweep, E10's ablations) build a
// sequence of networks and, for each, a per-worker set of scratch buffers —
// fault instances, repair masks, access-checker rows, router state — whose
// sizes are O(V) or O(E) of that network. Allocating them fresh for every
// network churns the heap with short-lived multi-megabyte slices. An Arena
// instead owns one growable slab per element type; taking a slice bumps an
// offset, and Reset reclaims everything at once so the next network reuses
// the same memory (the slabs converge to the sizes the largest graph
// needs). core.EvaluatorPool hands one Arena to each Monte-Carlo worker and
// recycles it between networks.
//
// Every take returns zeroed memory, so an arena-backed constructor behaves
// bit-for-bit like its make-based counterpart — reuse must never leak one
// network's state into the next trial's buffers.
//
// Ownership rules (enforced by discipline, documented in DESIGN.md §2.8):
//
//   - An Arena is single-owner: exactly one goroutine uses it at a time.
//   - Reset invalidates every slice previously taken; the owner must drop
//     all of them (in practice: the whole scratch object) first.
//   - A nil *Arena is valid everywhere and falls back to plain make, so
//     "In"-suffixed constructors serve pooled and unpooled callers alike.
package arena

// slab is one element type's backing store. Growth allocates a fresh
// larger slab; slices taken earlier keep the old backing (still valid —
// the arena never moves memory it handed out), and Reset retains only the
// newest, largest slab.
type slab[T any] struct {
	buf []T
	off int
}

func (s *slab[T]) take(n int) []T {
	if n < 0 {
		panic("arena: negative length")
	}
	if s.off+n > len(s.buf) {
		c := 2 * len(s.buf)
		if c < s.off+n {
			c = s.off + n
		}
		if c < 1024 {
			c = 1024
		}
		s.buf = make([]T, c)
		s.off = 0
	}
	out := s.buf[s.off : s.off+n : s.off+n]
	s.off += n
	clear(out) // reused slab memory may hold a previous cycle's state
	return out
}

func (s *slab[T]) reset() { s.off = 0 }

// resetter lets Reset reclaim the dynamically-typed slabs of Typed
// without knowing their element types.
type resetter interface{ reset() }

// Arena is a set of typed bump slabs. The zero value is ready to use; a
// nil *Arena is also valid and allocates with make (see the package
// comment).
type Arena struct {
	bools slab[bool]
	bytes slab[uint8]
	i8s   slab[int8]
	i32s  slab[int32]
	u32s  slab[uint32]
	u64s  slab[uint64]
	ints  slab[int]

	// typed holds one slab per element type handed to Typed, keyed by a
	// zero-length array of that type — comparable, unique per type, and
	// free of reflection.
	typed map[any]resetter
}

// New returns an empty arena.
func New() *Arena { return &Arena{} }

// Reset reclaims every outstanding slice at once. All slices taken since
// the previous Reset become invalid; see the ownership rules above.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.bools.reset()
	a.bytes.reset()
	a.i8s.reset()
	a.i32s.reset()
	a.u32s.reset()
	a.u64s.reset()
	a.ints.reset()
	for _, s := range a.typed {
		s.reset()
	}
}

// Bools takes a zeroed []bool of length n.
func (a *Arena) Bools(n int) []bool {
	if a == nil {
		return make([]bool, n)
	}
	return a.bools.take(n)
}

// Bytes takes a zeroed []uint8 of length n.
func (a *Arena) Bytes(n int) []uint8 {
	if a == nil {
		return make([]uint8, n)
	}
	return a.bytes.take(n)
}

// I8 takes a zeroed []int8 of length n.
func (a *Arena) I8(n int) []int8 {
	if a == nil {
		return make([]int8, n)
	}
	return a.i8s.take(n)
}

// I32 takes a zeroed []int32 of length n.
func (a *Arena) I32(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	return a.i32s.take(n)
}

// U32 takes a zeroed []uint32 of length n.
func (a *Arena) U32(n int) []uint32 {
	if a == nil {
		return make([]uint32, n)
	}
	return a.u32s.take(n)
}

// U64 takes a zeroed []uint64 of length n.
func (a *Arena) U64(n int) []uint64 {
	if a == nil {
		return make([]uint64, n)
	}
	return a.u64s.take(n)
}

// Ints takes a zeroed []int of length n.
func (a *Arena) Ints(n int) []int {
	if a == nil {
		return make([]int, n)
	}
	return a.ints.take(n)
}

// Typed takes a zeroed []T of length n from a's slab for T, creating the
// slab on first use — the escape hatch for caller-defined element types
// (e.g. fault.State) that the fixed accessors above cannot name without
// an import cycle. T must be comparable-hashable as a zero-length array
// (any fixed-size value type is); like every take, the result is zeroed
// and invalidated by Reset. It is a package function, not a method,
// because Go methods cannot introduce type parameters.
func Typed[T any](a *Arena, n int) []T {
	if a == nil {
		return make([]T, n)
	}
	key := any([0]T{})
	s, _ := a.typed[key].(*slab[T])
	if s == nil {
		s = &slab[T]{}
		if a.typed == nil {
			a.typed = make(map[any]resetter)
		}
		a.typed[key] = s
	}
	return s.take(n)
}
