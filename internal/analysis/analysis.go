// Package analysis is ftlint's static-analysis framework: a minimal,
// dependency-free mirror of the golang.org/x/tools/go/analysis API
// (Analyzer / Pass / Diagnostic) plus a source loader and a suppression
// grammar, built entirely on the standard library's go/ast + go/types.
//
// Why mirror instead of depend: this module is deliberately
// dependency-free (go.mod lists nothing), and the build environments it
// must lint in are offline — so the contract checkers that guard the
// repository's invariants cannot themselves hinge on fetching x/tools.
// The API shape is kept intentionally identical to go/analysis so the
// three analyzers (determinism, hotpath, seamcontract) port verbatim if a
// pinned x/tools dependency ever becomes acceptable.
//
// The three shipped analyzers enforce, at build speed, the contracts the
// repository otherwise enforces only at runtime (see DESIGN.md §2.11):
//
//   - determinism: the committed probability tables are a pure function of
//     the code, so the packages that feed them must not iterate maps into
//     decisions, read wall clocks, use global math/rand, or select over
//     multiple ready channels.
//   - hotpath: functions annotated //ftcsn:hotpath — the 0-allocs/trial
//     paths pinned by AllocsPerRun gates — must not allocate, transitively
//     through their same-package callees.
//   - seamcontract: edge admission inside route/core goes through
//     graph.SlotAdmits or the shared traversal bytes, never by indexing
//     fault masks directly; the CAS claim array is written only by
//     functions annotated //ftcsn:claimowner.
//
// # Annotation grammar
//
//	//ftcsn:hotpath [prose]
//	    on a function's doc comment: the function (and its same-package
//	    static callees) must be allocation-free; checked by hotpath.
//
//	//ftcsn:claimowner [prose]
//	    on a function's doc comment: this function is an audited writer
//	    of the CAS claim array; checked by seamcontract.
//
//	//ftlint:ignore <analyzer> <reason>
//	    suppresses <analyzer>'s findings on the comment's line and the
//	    line immediately below. The reason is mandatory — a suppression
//	    is reviewable documentation of a known-safe exception, and an
//	    unused suppression is itself reported so stale exceptions rot
//	    loudly.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis: its name, its documentation, and its
// entry point. The shape mirrors golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass provides one analyzer run over one package — the analyzer's view
// of the loaded syntax and type information, and the Report sink for its
// diagnostics. It mirrors go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a resolved diagnostic: analyzer, file position, message.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzers returns the full ftlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Determinism, Hotpath, SeamContract}
}

// scopes maps each analyzer to the import paths it applies to; a nil entry
// means every package. This is the single source of the driver policy: the
// determinism contract covers the packages whose outputs reach committed
// tables or engine decisions, the seam contract covers the two packages
// that share the admission/claim seam, and hotpath is annotation-driven so
// it runs everywhere.
var scopes = map[string][]string{
	"determinism": {
		"ftcsn/internal/core",
		"ftcsn/internal/experiments",
		"ftcsn/internal/netsim",
		"ftcsn/internal/fault",
		"ftcsn/internal/route",
	},
	"seamcontract": {
		"ftcsn/internal/route",
		"ftcsn/internal/core",
	},
	"hotpath": nil,
}

// AnalyzersFor returns the analyzers whose scope covers importPath.
func AnalyzersFor(importPath string) []*Analyzer {
	var out []*Analyzer
	for _, a := range Analyzers() {
		paths, ok := scopes[a.Name]
		if !ok || paths == nil {
			out = append(out, a)
			continue
		}
		for _, p := range paths {
			if p == importPath {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// RunPackage runs the given analyzers over one loaded package, applies the
// //ftlint:ignore suppressions, and returns the surviving findings sorted
// by position. Malformed and unused suppressions are themselves findings
// (analyzer "ftlint").
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	type raw struct {
		analyzer string
		d        Diagnostic
	}
	var diags []raw
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report:    func(d Diagnostic) { diags = append(diags, raw{a.Name, d}) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}

	sup, findings := collectSuppressions(pkg, analyzers)
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, r := range diags {
		pos := pkg.Fset.Position(r.d.Pos)
		if s := sup.match(r.analyzer, pos); s != nil {
			s.used = true
			continue
		}
		findings = append(findings, Finding{Analyzer: r.analyzer, Pos: pos, Message: r.d.Message})
	}
	// Stale suppressions rot loudly: an ignore whose analyzer ran but that
	// silenced nothing must be deleted (or its finding has moved).
	for _, s := range sup.all {
		if !s.used && ran[s.analyzer] {
			findings = append(findings, Finding{
				Analyzer: "ftlint",
				Pos:      s.pos,
				Message: fmt.Sprintf(
					"unused //ftlint:ignore %s suppression: no %s finding on this or the next line",
					s.analyzer, s.analyzer),
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}

// ignorePrefix is the suppression directive; see the package comment for
// the grammar.
const ignorePrefix = "ftlint:ignore"

type suppression struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

type suppressionSet struct {
	all []*suppression
	// byKey indexes analyzer+file+line → suppression; one suppression
	// covers its own line and the next.
	byKey map[string]*suppression
}

func (ss *suppressionSet) match(analyzer string, pos token.Position) *suppression {
	if ss.byKey == nil {
		return nil
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if s, ok := ss.byKey[fmt.Sprintf("%s\x00%s\x00%d", analyzer, pos.Filename, line)]; ok {
			return s
		}
	}
	return nil
}

// collectSuppressions scans every comment of the package for
// //ftlint:ignore directives. Malformed directives (missing analyzer,
// unknown analyzer, or missing reason) are returned as findings: a
// suppression that silently fails to parse would un-suppress — or worse,
// appear to suppress — without review.
func collectSuppressions(pkg *Package, analyzers []*Analyzer) (*suppressionSet, []Finding) {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	ss := &suppressionSet{byKey: map[string]*suppression{}}
	var malformed []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				switch {
				case name == "":
					malformed = append(malformed, Finding{Analyzer: "ftlint", Pos: pos,
						Message: "malformed suppression: //ftlint:ignore needs an analyzer name and a reason"})
					continue
				case !known[name]:
					malformed = append(malformed, Finding{Analyzer: "ftlint", Pos: pos,
						Message: fmt.Sprintf("malformed suppression: unknown analyzer %q (have determinism, hotpath, seamcontract)", name)})
					continue
				case reason == "":
					malformed = append(malformed, Finding{Analyzer: "ftlint", Pos: pos,
						Message: fmt.Sprintf("suppression of %s without a reason: the reason is the audit trail", name)})
					continue
				}
				s := &suppression{analyzer: name, reason: reason, pos: pos}
				ss.all = append(ss.all, s)
				ss.byKey[fmt.Sprintf("%s\x00%s\x00%d", name, pos.Filename, pos.Line)] = s
			}
		}
	}
	return ss, malformed
}

// funcDirective reports whether fn's doc comment carries the //ftcsn:<name>
// directive (e.g. "hotpath", "claimowner").
func funcDirective(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == "ftcsn:"+name || strings.HasPrefix(text, "ftcsn:"+name+" ") {
			return true
		}
	}
	return false
}
