package analysis_test

import (
	"testing"

	"ftcsn/internal/analysis"
	"ftcsn/internal/analysis/analysistest"
)

func TestHotpathFixture(t *testing.T) {
	analysistest.Run(t, analysis.Hotpath, "hotpath")
}
