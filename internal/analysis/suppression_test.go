package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ftcsn/internal/analysis"
)

// TestSuppressionGrammar checks the failure modes of //ftlint:ignore
// itself: a reason-less suppression, an unknown analyzer, and a
// suppression that silences nothing are all findings — the grammar is
// only an audit trail if it cannot rot silently.
func TestSuppressionGrammar(t *testing.T) {
	dir := t.TempDir()
	src := `package p

//ftlint:ignore determinism
func NoReason() {}

//ftlint:ignore bogus some reason
func UnknownAnalyzer() {}

//ftlint:ignore determinism this function has no determinism finding to silence
func Unused() {}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	ld, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	ld.AddRoot("p", dir)
	pkg, err := ld.Load("p")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{analysis.Determinism})
	if err != nil {
		t.Fatal(err)
	}
	wantSubstrings := []string{
		"without a reason",
		`unknown analyzer "bogus"`,
		"unused //ftlint:ignore determinism",
	}
	if len(findings) != len(wantSubstrings) {
		t.Fatalf("got %d findings, want %d: %v", len(findings), len(wantSubstrings), findings)
	}
	for i, sub := range wantSubstrings {
		if !strings.Contains(findings[i].Message, sub) {
			t.Errorf("finding %d = %q, want substring %q", i, findings[i].Message, sub)
		}
		if findings[i].Analyzer != "ftlint" {
			t.Errorf("finding %d analyzer = %q, want ftlint", i, findings[i].Analyzer)
		}
	}
}

// TestAnalyzerScopes pins the driver policy: determinism and seamcontract
// run only on the packages whose contracts they enforce, hotpath runs
// everywhere (it is annotation-driven).
func TestAnalyzerScopes(t *testing.T) {
	names := func(as []*analysis.Analyzer) []string {
		var out []string
		for _, a := range as {
			out = append(out, a.Name)
		}
		return out
	}
	cases := []struct {
		path string
		want string
	}{
		{"ftcsn/internal/route", "determinism hotpath seamcontract"},
		{"ftcsn/internal/core", "determinism hotpath seamcontract"},
		{"ftcsn/internal/fault", "determinism hotpath"},
		{"ftcsn/internal/netsim", "determinism hotpath"},
		{"ftcsn/internal/experiments", "determinism hotpath"},
		{"ftcsn/internal/montecarlo", "hotpath"},
		{"ftcsn/cmd/ftsim", "hotpath"},
	}
	for _, c := range cases {
		got := strings.Join(names(analysis.AnalyzersFor(c.path)), " ")
		if got != c.want {
			t.Errorf("AnalyzersFor(%s) = %q, want %q", c.path, got, c.want)
		}
	}
}
