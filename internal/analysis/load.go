package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package: the unit RunPackage
// analyzes.
type Package struct {
	Path      string // import path ("ftcsn/internal/route")
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// A Loader parses and type-checks packages from source. Module-local
// import paths (under the module path from go.mod) resolve to directories
// beneath the module root; everything else goes to the compiler's source
// importer, which type-checks the standard library from GOROOT. Extra
// roots (AddRoot) let tests load fixture packages from testdata with
// synthetic import paths. Packages are cached; import cycles are errors.
type Loader struct {
	Fset       *token.FileSet
	ModRoot    string
	ModulePath string

	std     types.Importer
	extra   map[string]string
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a Loader rooted at the module containing dir (found by
// walking up to go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModRoot:    root,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		extra:      map[string]string{},
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// AddRoot registers dir as the source directory for importPath, overriding
// normal resolution. Used by analysistest to mount fixture packages.
func (l *Loader) AddRoot(importPath, dir string) {
	l.extra[importPath] = dir
}

// Load parses and type-checks the package at importPath (and, recursively,
// its module-local imports).
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	dir, err := l.dirFor(importPath)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable non-test Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: importerFunc(func(path string) (*types.Package, error) {
		if l.isLocal(path) {
			p, err := l.Load(path)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
		return l.std.Import(path)
	})}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	p := &Package{
		Path:      importPath,
		Dir:       dir,
		Fset:      l.Fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.pkgs[importPath] = p
	return p, nil
}

// isLocal reports whether path resolves inside this loader (module-local
// or a registered fixture root) rather than via the stdlib importer.
func (l *Loader) isLocal(path string) bool {
	if _, ok := l.extra[path]; ok {
		return true
	}
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

func (l *Loader) dirFor(importPath string) (string, error) {
	if dir, ok := l.extra[importPath]; ok {
		return dir, nil
	}
	if importPath == l.ModulePath {
		return l.ModRoot, nil
	}
	if rest, ok := strings.CutPrefix(importPath, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest)), nil
	}
	return "", fmt.Errorf("cannot resolve import %q (not under module %q)", importPath, l.ModulePath)
}

// parseDir parses the non-test .go files of dir, with comments (the
// directives live there).
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// ListPackages returns the import paths of every buildable non-test
// package in the module, sorted. testdata, vendor, hidden, and underscore
// directories are skipped, exactly as the go tool skips them.
func (l *Loader) ListPackages() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.ModRoot && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return err
		}
		ip := l.ModulePath
		if rel != "." {
			ip = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		out = append(out, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	// The walk appends once per .go file; dedupe to once per package.
	out = uniq(out)
	return out, nil
}

func uniq(s []string) []string {
	w := 0
	for i, v := range s {
		if i == 0 || v != s[w-1] {
			s[w] = v
			w++
		}
	}
	return s[:w]
}

func findModule(dir string) (root, modulePath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		gomod := filepath.Join(d, "go.mod")
		if data, err := os.ReadFile(gomod); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s: no module directive", gomod)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
