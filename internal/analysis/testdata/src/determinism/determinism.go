// Package determinism is the ftlint fixture for the determinism analyzer:
// each seeded violation carries a want annotation, and the legal idioms
// next to them must stay silent.
package determinism

import (
	"math/rand" // want "import of math/rand"
	"time"
)

func MapIter(m map[int]int) int {
	s := 0
	for k := range m { // want "map iteration order is randomized"
		s += k
	}
	return s
}

func MapIterSuppressed(m map[int]int) int {
	s := 0
	//ftlint:ignore determinism fixture: order-insensitive sum, proves suppression is honored
	for _, v := range m {
		s += v
	}
	return s
}

func MapIndexIsFine(m map[int]int) int {
	return m[3] // lookups are deterministic; only iteration is flagged
}

func Clock() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

func PureTime(sec int64) time.Time {
	return time.Unix(sec, 0) // pure constructor; not flagged
}

func GlobalRand() int {
	return rand.Int() // the import line above is the finding
}

func TwoReady(a, b chan int) int {
	select { // want "select with 2 channel cases"
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}

func TwoReadySuppressed(a, b chan int) int {
	//ftlint:ignore determinism fixture: both channels feed the same fold, proves suppression is honored
	select {
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}

func OneReadyWithDefault(a chan int) int {
	select { // a single comm case plus default is deterministic enough
	case x := <-a:
		return x
	default:
		return 0
	}
}
