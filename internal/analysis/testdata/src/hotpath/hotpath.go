// Package hotpath is the ftlint fixture for the hotpath analyzer: Hot is
// the annotated root, helper is reached transitively, Cold proves
// unannotated code is exempt, and the sanctioned arena-append idiom stays
// silent.
package hotpath

import "fmt"

type sink interface{ M() }

type val struct{ x int }

func (v val) M() {}

func take(s sink) {}

func pair(a, b int) int { return a + b }

func variadic(xs ...int) {}

//ftcsn:hotpath fixture root
func Hot(n int, s []int32, name, suffix string) {
	buf := make([]int32, n) // want "make allocates"
	sl := []int32{1, 2, 3}  // want "slice literal allocates"
	mp := map[int]int{}     // want "map literal allocates"
	p := &val{x: n}         // want "composite literal escapes"
	v := val{x: n}          // value struct literal: no allocation
	f := func() {}          // want "closure literal allocates"

	s = append(s, 1)     // sanctioned: x = append(x, ...)
	s = append(s[:0], 2) // sanctioned: arena rewind form
	t := append(s, 3)    // want "append outside"

	go helper(n) // want "go statement allocates"

	fmt.Println(n) // want "fmt.Println allocates"

	take(v)          // want "interface argument boxes"
	take(p)          // pointers fit the interface word: no finding
	iface := sink(v) // want "conversion to interface boxes"

	variadic(n, n) // want "variadic call allocates"
	_ = pair(n, n) // plain call: no finding

	full := name + suffix // want "string concatenation allocates"
	const prefix = "a" + "b"

	//ftlint:ignore hotpath fixture: proves the suppression is honored on the next line
	quiet := make([]int, n)

	_, _, _, _, _, _, _, _, _ = buf, sl, mp, f, t, iface, full, prefix, quiet
}

// helper has no annotation but is called from Hot, so the same-package
// transitive closure checks it too.
func helper(n int) {
	_ = new(int) // want "new allocates"
}

// Cold is not annotated and not reachable from a hotpath root: anything
// goes.
func Cold(n int) []int {
	return make([]int, n)
}
