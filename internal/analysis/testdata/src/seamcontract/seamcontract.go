// Package seamcontract is the ftlint fixture for the seamcontract
// analyzer: direct admission-mask reads and unsanctioned claim writes are
// seeded violations; the traversal-byte seam, mask writes, claim reads,
// and annotated owners must stay silent.
package seamcontract

import (
	"sync/atomic"

	"ftcsn/internal/fault"
)

type router struct {
	vertexOK []bool
	edgeOK   []bool
	visited  []bool
	claims   []atomic.Int32
	allowed  []uint8
}

func (r *router) BadVertexRead(v int32) bool {
	return r.vertexOK[v] // want "direct admission-mask read"
}

func (r *router) BadEdgeRead(e int32) bool {
	return r.edgeOK[e] // want "direct admission-mask read"
}

func BadStateRead(st []fault.State, e int32) bool {
	return st[e] == fault.Normal // want "fault.State read"
}

func (r *router) PlainBoolRead(i int32) bool {
	return r.visited[i] // not a mask name: no finding
}

func (r *router) TraversalBytes(slot int32) bool {
	return r.allowed[slot] == 0 // the sanctioned shared seam
}

func (r *router) MaskWrite(v int32) {
	r.vertexOK[v] = false // writes are the maintainers' job: exempt
}

func (r *router) AuditedRead(v int32) bool {
	//ftlint:ignore seamcontract fixture: audited reader, proves suppression is honored
	return r.vertexOK[v]
}

func (r *router) BadClaimWrite(v int32) {
	r.claims[v].Store(1) // want "outside a //ftcsn:claimowner"
}

func (r *router) BadClaimCAS(v int32) bool {
	return r.claims[v].CompareAndSwap(0, 1) // want "outside a //ftcsn:claimowner"
}

//ftcsn:claimowner fixture: the sanctioned claim helper
func (r *router) GoodClaim(v int32) bool {
	if !r.claims[v].CompareAndSwap(0, 1) {
		return false
	}
	r.claims[v].Store(1)
	return true
}

func (r *router) ClaimRead(v int32) int32 {
	return r.claims[v].Load() // reads are free: Load is not a mutator
}
