package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Hotpath is the static complement of the AllocsPerRun benchmark gates:
// functions annotated //ftcsn:hotpath must be allocation-free, and the
// check extends transitively through their same-package static callees
// (cross-package, interface, and function-value calls are out of reach by
// design — the callee package annotates its own hot entry points).
//
// Flagged constructs: go statements, closure literals, make/new, slice
// and map composite literals, &T{...} literals, fmt calls, non-constant
// string concatenation, interface boxing (conversions and call arguments
// that box a non-pointer-shaped value), variadic calls that materialize
// an argument slice, and append — except the arena idiom
// `x = append(x, ...)` / `x = append(x[:k], ...)`, where the result
// reassigns the same slice header it extends, so steady-state growth is
// amortized into pre-sized backing arrays.
//
// A finding is either a latent allocation (fix it) or a cold edge of the
// annotated function — pool-miss fallbacks, lazy one-time init, panic
// paths — which gets a //ftlint:ignore hotpath <reason> documenting why
// the AllocsPerRun gate never sees it.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "checks //ftcsn:hotpath functions (and same-package callees) for allocations",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) error {
	// Collect every function declaration and the //ftcsn:hotpath roots.
	declOf := map[types.Object]*ast.FuncDecl{}
	var roots []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
				declOf[obj] = fn
			}
			if funcDirective(fn, "hotpath") {
				roots = append(roots, fn)
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Breadth-first closure over same-package static calls, remembering
	// which root made each function hot (for the diagnostic message).
	rootName := map[*ast.FuncDecl]string{}
	var queue []*ast.FuncDecl
	for _, r := range roots {
		rootName[r] = funcDisplayName(r)
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(pass, call)
			if obj == nil || obj.Pkg() != pass.Pkg {
				return true
			}
			callee, ok := declOf[obj]
			if !ok {
				return true
			}
			if _, seen := rootName[callee]; !seen {
				rootName[callee] = rootName[fn]
				queue = append(queue, callee)
			}
			return true
		})
	}

	for fn, root := range rootName {
		checkHotFunc(pass, fn, root)
	}
	return nil
}

func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		return fmt.Sprintf("(%s).%s", types.ExprString(fn.Recv.List[0].Type), fn.Name.Name)
	}
	return fn.Name.Name
}

// checkHotFunc walks one hot function's body (closure bodies included —
// a closure created here runs here) and reports every allocating
// construct.
func checkHotFunc(pass *Pass, fn *ast.FuncDecl, root string) {
	// Appends of the sanctioned self-assignment form are collected first:
	// ast.Inspect is pre-order, so an AssignStmt is visited before the
	// append call on its right-hand side.
	sanctioned := map[*ast.CallExpr]bool{}
	report := func(n ast.Node, format string, args ...any) {
		pass.Reportf(n.Pos(), "%s (hot path via //ftcsn:hotpath %s)", fmt.Sprintf(format, args...), root)
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			markSanctionedAppends(pass, n, sanctioned)
		case *ast.GoStmt:
			report(n, "go statement allocates a goroutine")
		case *ast.FuncLit:
			report(n, "closure literal allocates")
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					report(n, "&composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if t := pass.TypesInfo.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(n, "slice literal allocates its backing array")
				case *types.Map:
					report(n, "map literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if tv, ok := pass.TypesInfo.Types[n]; ok && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n, "string concatenation allocates")
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, n, sanctioned, report)
		}
		return true
	})
}

// markSanctionedAppends records append calls of the arena idiom
// x = append(x, ...) / x = append(x[:k], ...), matching the assignment
// target against the append's first argument with slice expressions
// stripped.
func markSanctionedAppends(pass *Pass, as *ast.AssignStmt, sanctioned map[*ast.CallExpr]bool) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call, "append") || len(call.Args) == 0 {
			continue
		}
		base := unparen(call.Args[0])
		for {
			if se, ok := base.(*ast.SliceExpr); ok {
				base = unparen(se.X)
				continue
			}
			break
		}
		if types.ExprString(as.Lhs[i]) == types.ExprString(base) {
			sanctioned[call] = true
		}
	}
}

func isBuiltin(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func checkHotCall(pass *Pass, call *ast.CallExpr, sanctioned map[*ast.CallExpr]bool, report func(ast.Node, string, ...any)) {
	// Conversion, not a call: T(x) boxing when T is an interface.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type.Underlying()) && len(call.Args) == 1 {
			if boxes(pass, call.Args[0]) {
				report(call, "conversion to interface boxes %s", types.ExprString(call.Args[0]))
			}
		}
		return
	}

	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "make":
				report(call, "make allocates")
			case "new":
				report(call, "new allocates")
			case "append":
				if !sanctioned[call] {
					report(call, "append outside the x = append(x, ...) arena idiom may allocate a new backing array")
				}
			}
			return
		}
	}

	if obj := calleeObject(pass, call); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		report(call, "fmt.%s allocates (formatting, interface boxing)", obj.Name())
		return
	}

	// Interface boxing at call boundaries, and the slice a variadic call
	// materializes for its ... arguments.
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		// A type-parameter parameter is not an interface parameter: generic
		// calls pass the value directly (its underlying constraint interface
		// must not trip the check).
		if _, isTP := pt.(*types.TypeParam); isTP {
			continue
		}
		if types.IsInterface(pt.Underlying()) && boxes(pass, arg) {
			report(arg, "passing %s as interface argument boxes it", types.ExprString(arg))
		}
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= params.Len() {
		report(call, "variadic call allocates its argument slice")
	}
}

// boxes reports whether passing arg to an interface allocates: true for
// non-interface, non-pointer-shaped, non-constant values. Constants
// convert to static data; pointers, channels, maps, and funcs fit the
// interface word directly.
func boxes(pass *Pass, arg ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value != nil { // constants (incl. string literals) are static data
		return false
	}
	t := tv.Type
	if t == nil {
		return false
	}
	// A type parameter's underlying type is its constraint interface, which
	// would slip through the switch below; at the generic declaration site
	// the instantiation is unknown, so assume the worst (a value type boxes).
	if _, ok := t.(*types.TypeParam); ok {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Interface:
		return false
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil {
			return false
		}
	}
	return true
}
