package analysis_test

import (
	"testing"

	"ftcsn/internal/analysis"
	"ftcsn/internal/analysis/analysistest"
)

func TestSeamContractFixture(t *testing.T) {
	analysistest.Run(t, analysis.SeamContract, "seamcontract")
}
