package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeamContract machine-checks the admission/claim seam between the path
// hunters (internal/route) and the evaluation core (internal/core), the
// invariant PR 4 established by convention:
//
// Rule A — edge admission goes through graph.SlotAdmits or the shared
// traversal bytes. Reading a fault mask directly — indexing a []bool
// whose name marks it as a vertex/edge admission mask (vertexOK, edgeOK,
// usable) or indexing a []fault.State — re-derives admission locally and
// silently forks the rule the three hunters must share. Writes are the
// mask maintainers' job and are exempt; the handful of audited readers
// (the reference slow-path BFS, the incremental mask maintainer itself)
// carry //ftlint:ignore seamcontract suppressions that double as the
// reader registry.
//
// Rule B — the CAS claim array is written only by audited owners. Any
// Store/Swap/CompareAndSwap/Add on an element of a slice named "claims"
// (sync/atomic methods) inside a function not annotated
// //ftcsn:claimowner is an error: unsanctioned claim writes are exactly
// how speculate-then-commit engines corrupt disjointness.
var SeamContract = &Analyzer{
	Name: "seamcontract",
	Doc:  "forbids direct fault-mask admission reads and unsanctioned claim-array writes in route/core",
	Run:  runSeamContract,
}

// maskNames are the identifier names (lowercased) that mark a []bool as
// an admission mask.
var maskNames = map[string]bool{"vertexok": true, "edgeok": true, "usable": true}

// atomicWrites are the sync/atomic methods that mutate.
var atomicWrites = map[string]bool{"Store": true, "Swap": true, "CompareAndSwap": true, "Add": true}

func runSeamContract(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			claimOwner := funcDirective(fn, "claimowner")

			// Index expressions on the left of an assignment are writes,
			// not admission reads; pre-order traversal sees the
			// AssignStmt before its operands, so collect them as we go.
			writes := map[ast.Expr]bool{}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						writes[unparen(lhs)] = true
					}
				case *ast.IndexExpr:
					if !writes[n] {
						checkMaskRead(pass, n)
					}
				case *ast.CallExpr:
					if !claimOwner {
						checkClaimWrite(pass, n)
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkMaskRead flags ix when it reads an admission mask directly: a
// []bool named like a mask, or any []fault.State.
func checkMaskRead(pass *Pass, ix *ast.IndexExpr) {
	t := pass.TypesInfo.TypeOf(ix.X)
	if t == nil {
		return
	}
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return
	}
	if named, ok := slice.Elem().(*types.Named); ok {
		obj := named.Obj()
		if obj.Name() == "State" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/fault") {
			pass.Reportf(ix.Pos(),
				"direct []fault.State read re-derives admission; go through graph.SlotAdmits or the shared traversal bytes")
		}
		return
	}
	if b, ok := slice.Elem().Underlying().(*types.Basic); !ok || b.Kind() != types.Bool {
		return
	}
	if maskNames[strings.ToLower(baseName(ix.X))] {
		pass.Reportf(ix.Pos(),
			"direct admission-mask read (%s); go through graph.SlotAdmits or the shared traversal bytes",
			types.ExprString(ix.X))
	}
}

// checkClaimWrite flags mutating sync/atomic calls on elements of a slice
// named "claims" outside //ftcsn:claimowner functions.
func checkClaimWrite(pass *Pass, call *ast.CallExpr) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !atomicWrites[sel.Sel.Name] {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return
	}
	recv := unparen(sel.X)
	// The receiver is an element of the claim array either as claims[v]
	// or via a pointer derived from &claims[v].
	if u, ok := recv.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
		recv = unparen(u.X)
	}
	ix, ok := recv.(*ast.IndexExpr)
	if !ok {
		return
	}
	if strings.ToLower(baseName(ix.X)) == "claims" {
		pass.Reportf(call.Pos(),
			"%s on the claim array outside a //ftcsn:claimowner function: claim writes go through the CAS/commit helpers",
			sel.Sel.Name)
	}
}

// baseName returns the last identifier of an expression chain:
// cr.claims → "claims", vertexOK → "vertexOK".
func baseName(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}
