package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Determinism enforces the reproducibility contract of the deterministic
// packages (see scopes): every committed probability table and every
// engine decision must be a pure function of the code and the seed. Four
// constructs break that purity and are flagged:
//
//   - ranging over a map: Go randomizes iteration order per run, so any
//     map-ordered result drifts between otherwise identical runs;
//   - importing math/rand or math/rand/v2: the repo's randomness comes
//     from ftcsn/internal/rng pure per-trial streams, and the global
//     math/rand source is shared mutable state seeded per process;
//   - wall-clock reads (time.Now/Since/After/Tick/NewTimer/NewTicker):
//     timing must never reach an output a differential test pins;
//   - select with two or more ready channels: the runtime picks
//     uniformly at random among ready cases.
//
// Findings in code whose nondeterminism provably cannot reach committed
// output (order-insensitive map folds, wall-clock throughput columns that
// only print in non-committed full mode) are suppressed in place with
// //ftlint:ignore determinism <reason>.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flags map iteration, wall-clock reads, global math/rand, and multi-ready select in deterministic packages",
	Run:  runDeterminism,
}

// wallClockFuncs are the time package entry points that read or arm the
// wall clock. Pure constructors/formatters (time.Duration, time.Unix,
// t.Format) stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s: deterministic packages draw randomness from ftcsn/internal/rng per-trial streams", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.Reportf(n.Pos(),
							"map iteration order is randomized per run; sort keys first or use an order-insensitive fold")
					}
				}
			case *ast.SelectStmt:
				ready := 0
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						ready++
					}
				}
				if ready >= 2 {
					pass.Reportf(n.Pos(),
						"select with %d channel cases: the runtime picks uniformly at random among ready cases", ready)
				}
			case *ast.CallExpr:
				if obj := calleeObject(pass, n); obj != nil &&
					obj.Pkg() != nil && obj.Pkg().Path() == "time" && wallClockFuncs[obj.Name()] {
					pass.Reportf(n.Pos(),
						"time.%s reads the wall clock; deterministic outputs must not depend on timing", obj.Name())
				}
			}
			return true
		})
	}
	return nil
}

// unparen strips any enclosing parentheses. (ast.Unparen needs go1.22;
// the module's language version is 1.21.)
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeObject resolves the object a call expression statically invokes
// (function, method, or imported function), or nil for dynamic calls,
// builtins, and conversions.
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			return pass.TypesInfo.Uses[id]
		}
		if sel, ok := unparen(fun.X).(*ast.SelectorExpr); ok {
			return pass.TypesInfo.Uses[sel.Sel]
		}
	case *ast.IndexListExpr:
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			return pass.TypesInfo.Uses[id]
		}
		if sel, ok := unparen(fun.X).(*ast.SelectorExpr); ok {
			return pass.TypesInfo.Uses[sel.Sel]
		}
	}
	return nil
}
