// Package analysistest runs one ftlint analyzer over a fixture package and
// checks its findings against // want annotations, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract:
//
//	for k := range m { // want "map iteration"
//
// Each `// want "regex" ["regex" ...]` comment declares that the analyzer
// must report, on that source line, one finding per regex (matched against
// the finding message). Findings without a matching want, and wants
// without a matching finding, both fail the test — so a fixture proves an
// analyzer fires on a seeded violation AND stays silent on the sanctioned
// idiom next to it. Suppression comments are honored exactly as in
// production (RunPackage applies them), which is how fixtures prove
// //ftlint:ignore works.
//
// It lives in its own package so the ftlint binary does not link testing.
package analysistest

import (
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ftcsn/internal/analysis"
)

// Run loads testdata/src/<fixture> (relative to the calling test's
// directory), runs exactly one analyzer over it, and asserts the findings
// match the fixture's want annotations.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	ld, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatalf("fixture dir: %v", err)
	}
	ld.AddRoot(fixture, dir)
	pkg, err := ld.Load(fixture)
	if err != nil {
		t.Fatalf("loading fixture %q: %v", fixture, err)
	}
	findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %q: %v", a.Name, fixture, err)
	}

	wants := parseWants(t, pkg)
	for _, f := range findings {
		key := lineKey{f.Pos.Filename, f.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: [%s] %s", f.Pos, f.Analyzer, f.Message)
		}
	}
	var keys []lineKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s:%d: no %s finding matched want %q", k.file, k.line, a.Name, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// parseWants extracts the `// want "regex" ...` annotations of every
// fixture file, keyed by the line they annotate.
func parseWants(t *testing.T, pkg *analysis.Package) map[lineKey][]*want {
	t.Helper()
	wants := map[lineKey][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey{pos.Filename, pos.Line}
				for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want annotation %q: %v", pos, text, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %q: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: want pattern %q: %v", pos, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
					rest = rest[len(q):]
				}
			}
		}
	}
	return wants
}
