package analysis_test

import (
	"testing"

	"ftcsn/internal/analysis"
)

// TestTreeIsClean runs the full ftlint suite over every buildable package
// in the module and requires zero findings — the same sweep `make lint`
// runs, but wired into `go test` so the tier-1 gate catches a new
// violation even when the lint job is skipped.
func TestTreeIsClean(t *testing.T) {
	ld, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.ListPackages()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("ListPackages returned no packages")
	}
	for _, path := range pkgs {
		pkg, err := ld.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		findings, err := analysis.RunPackage(pkg, analysis.AnalyzersFor(path))
		if err != nil {
			t.Fatalf("linting %s: %v", path, err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}
