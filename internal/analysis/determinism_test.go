package analysis_test

import (
	"testing"

	"ftcsn/internal/analysis"
	"ftcsn/internal/analysis/analysistest"
)

func TestDeterminismFixture(t *testing.T) {
	analysistest.Run(t, analysis.Determinism, "determinism")
}
