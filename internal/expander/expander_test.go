package expander

import (
	"testing"

	"ftcsn/internal/graph"
	"ftcsn/internal/rng"
)

func TestRandomMatchingsRegular(t *testing.T) {
	r := rng.New(1)
	b := RandomMatchings(16, 4, r)
	if b.Degree() != 4 {
		t.Fatalf("out-degree = %d", b.Degree())
	}
	for i, adj := range b.To {
		if len(adj) != 4 {
			t.Fatalf("inlet %d degree %d", i, len(adj))
		}
	}
	for o, d := range b.InDegrees() {
		if d != 4 {
			t.Fatalf("outlet %d in-degree %d", o, d)
		}
	}
	if b.NumEdges() != 64 {
		t.Fatalf("edges = %d", b.NumEdges())
	}
}

func TestRandomMatchingsDeterministic(t *testing.T) {
	a := RandomMatchings(8, 3, rng.New(7))
	b := RandomMatchings(8, 3, rng.New(7))
	for i := range a.To {
		for j := range a.To[i] {
			if a.To[i][j] != b.To[i][j] {
				t.Fatal("same seed, different graphs")
			}
		}
	}
}

func TestGabberGalilRegular(t *testing.T) {
	b := GabberGalil(5)
	if b.T != 25 {
		t.Fatalf("T = %d", b.T)
	}
	if b.Degree() != 5 {
		t.Fatalf("degree = %d", b.Degree())
	}
	for o, d := range b.InDegrees() {
		if d != 5 {
			t.Fatalf("outlet %d in-degree %d (maps must be bijections)", o, d)
		}
	}
}

func TestGabberGalilM1(t *testing.T) {
	b := GabberGalil(1)
	if b.T != 1 || len(b.To[0]) != 5 {
		t.Fatal("degenerate m=1 graph wrong")
	}
}

func TestVerifyExhaustiveHalfSets(t *testing.T) {
	// A degree-4 random bipartite graph on t=12 should expand half-sets
	// beyond t/2 comfortably (expected coverage ≈ 10.5 of 12).
	r := rng.New(42)
	b := RandomMatchings(12, 4, r)
	bad, err := b.VerifyExhaustive(6, 7, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if bad != nil {
		t.Fatalf("degree-4 graph failed (6,7)-expansion on set %v", bad)
	}
}

func TestVerifyExhaustiveDetectsNonExpander(t *testing.T) {
	// The identity matching expands nothing: every c-set sees exactly c.
	b := &Bipartite{T: 6, To: make([][]int32, 6)}
	for i := range b.To {
		b.To[i] = []int32{int32(i)}
	}
	bad, err := b.VerifyExhaustive(3, 4, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if bad == nil {
		t.Fatal("identity matching passed (3,4)-expansion")
	}
	if len(bad) != 3 {
		t.Fatalf("violating set has size %d", len(bad))
	}
}

func TestVerifyExhaustiveLimit(t *testing.T) {
	b := RandomMatchings(30, 3, rng.New(3))
	if _, err := b.VerifyExhaustive(15, 16, 100); err == nil {
		t.Fatal("limit not enforced")
	}
}

func TestVerifySampled(t *testing.T) {
	r := rng.New(9)
	b := RandomMatchings(64, 4, r)
	min, viol := b.VerifySampled(32, 33, 500, r.Split(1))
	if viol != 0 {
		t.Fatalf("%d violations of (t/2, t/2+1) expansion at d=4", viol)
	}
	want := ExpectedCoverage(64, 32, 4) // ≈ 56.4
	if float64(min) < want-12 {
		t.Fatalf("min sampled neighborhood %d far below expectation %.1f", min, want)
	}
}

func TestAdversarialOnIdentity(t *testing.T) {
	b := &Bipartite{T: 8, To: make([][]int32, 8)}
	for i := range b.To {
		b.To[i] = []int32{int32(i)}
	}
	if got := b.AdversarialMinNeighbors(4); got != 4 {
		t.Fatalf("adversarial on identity = %d, want 4", got)
	}
}

func TestAdversarialUpperBoundsSampled(t *testing.T) {
	r := rng.New(17)
	b := RandomMatchings(32, 3, r)
	c := 16
	adv := b.AdversarialMinNeighbors(c)
	min, _ := b.VerifySampled(c, 0, 300, r.Split(2))
	if adv > min {
		t.Fatalf("adversarial bound %d exceeds sampled minimum %d", adv, min)
	}
}

func TestPaperExpansionRatioAtScaledDegree(t *testing.T) {
	// The paper needs every half-set of inlets to reach ≥ (33.07/64)·t ≈
	// 0.5167·t outlets. Degree 3 is the smallest scaled degree that clears
	// that bar adversarially at t=64 (degree 2 lands right at the
	// boundary: greedy adversarial sets reach only ≈0.51t). This motivates
	// the default DQ=3 per-quarter degree in package core.
	r := rng.New(23)
	tt := 64
	c := 32
	need := int(0.5167*float64(tt)) + 1 // 34
	b3 := RandomMatchings(tt, 3, r)
	if adv := b3.AdversarialMinNeighbors(c); adv < need {
		t.Fatalf("adversarial half-set expansion %d < %d at d=3", adv, need)
	}
	min, viol := b3.VerifySampled(c, need, 400, r.Split(5))
	if viol > 0 {
		t.Fatalf("sampled violations at d=3: %d (min=%d)", viol, min)
	}
	// And d=2 should be strictly weaker than d=3 adversarially.
	b2 := RandomMatchings(tt, 2, r.Split(9))
	if b2.AdversarialMinNeighbors(c) > b3.AdversarialMinNeighbors(c) {
		t.Fatal("d=2 expands better than d=3 adversarially; construction suspect")
	}
}

func TestAddToBuilder(t *testing.T) {
	r := rng.New(5)
	b := RandomMatchings(4, 2, r)
	gb := graph.NewBuilder(8, 8)
	gb.AddVertices(graph.NoStage, 8)
	added := b.AddToBuilder(gb, 0, 4)
	if added != 8 || gb.NumEdges() != 8 {
		t.Fatalf("added %d edges", added)
	}
	g := gb.Freeze()
	for v := int32(0); v < 4; v++ {
		if g.OutDegree(v) != 2 || g.InDegree(v) != 0 {
			t.Fatalf("inlet %d degrees wrong", v)
		}
	}
	for v := int32(4); v < 8; v++ {
		if g.InDegree(v) != 2 || g.OutDegree(v) != 0 {
			t.Fatalf("outlet %d degrees wrong", v)
		}
	}
}

func TestAddToBuilderReversed(t *testing.T) {
	r := rng.New(6)
	b := RandomMatchings(4, 2, r)
	gb := graph.NewBuilder(8, 8)
	gb.AddVertices(graph.NoStage, 8)
	b.AddToBuilderReversed(gb, 0, 4)
	g := gb.Freeze()
	for v := int32(0); v < 4; v++ {
		if g.OutDegree(v) != 2 {
			t.Fatalf("reversed: outlet-side vertex %d out-degree %d", v, g.OutDegree(v))
		}
	}
}

func TestSpectralGapRandomVsIdentity(t *testing.T) {
	r := rng.New(31)
	good := RandomMatchings(64, 4, r)
	gap := good.SpectralGap(4, 60, r.Split(3))
	if gap >= 0.99 {
		t.Fatalf("random 4-regular graph has no spectral gap: σ₂=%v", gap)
	}
	// Identity ×4 (four copies of the same matching) has σ₂ = 1.
	ident := &Bipartite{T: 64, To: make([][]int32, 64)}
	for i := range ident.To {
		ident.To[i] = []int32{int32(i), int32(i), int32(i), int32(i)}
	}
	flat := ident.SpectralGap(4, 60, r.Split(4))
	if flat < 0.95 {
		t.Fatalf("identity graph should have σ₂≈1, got %v", flat)
	}
	if gap >= flat {
		t.Fatalf("random graph (%v) not better than identity (%v)", gap, flat)
	}
}

func TestExpectedCoverage(t *testing.T) {
	// c·d edges into t outlets: coverage below both t and c·d.
	v := ExpectedCoverage(100, 50, 2)
	if v <= 50 || v >= 100 {
		t.Fatalf("ExpectedCoverage = %v, want in (50,100)", v)
	}
}

func TestGabberGalilIsExpanding(t *testing.T) {
	// Exhaustive check on t=9 (m=3): every 4-set of inlets sees ≥ 5 outlets.
	b := GabberGalil(3)
	bad, err := b.VerifyExhaustive(4, 5, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if bad != nil {
		t.Fatalf("GabberGalil(3) failed (4,5)-expansion on %v", bad)
	}
}
