// Package expander builds and certifies the (c,c′,t)-expanding graphs at
// the heart of the Pippenger–Lin construction.
//
// A (c,c′,t)-expanding graph is a bipartite directed graph with t inlets
// and t outlets such that every set of c inlets is joined by edges to at
// least c′ outlets. The paper's Network 𝒩 uses (32·4^μ, 33.07·4^μ,
// 64·4^μ)-expanding graphs — i.e. c = t/2 and c′ ≈ 0.5167·t — of in/out
// degree 10, citing Bassalygo & Pinsker for the probabilistic construction
// and Margulis / Gabber–Galil for explicit ones.
//
// We provide both:
//
//   - RandomMatchings: the union of d independent uniform perfect
//     matchings, the standard probabilistic construction (d-regular in
//     both directions, multi-edges possible and electrically meaningful);
//   - GabberGalil: the explicit degree-5 affine expander on Z_m × Z_m.
//
// Certification of the (c,c′) property is coNP-hard in general, so the
// package offers three verifiers with different exactness/cost trade-offs:
// exhaustive subset enumeration (exact, tiny t), random-subset sampling
// (statistical, any t), and a greedy adversarial lower bound that tries to
// construct a bad inlet set (one-sided: a found violation is real).
package expander

import (
	"fmt"
	"math"

	"ftcsn/internal/graph"
	"ftcsn/internal/rng"
)

// Bipartite is a bipartite directed multigraph with t inlets and t outlets.
// To[i] lists the outlets adjacent to inlet i (repeats = parallel switches).
type Bipartite struct {
	T  int
	To [][]int32
}

// RandomMatchings returns the union of d uniform random perfect matchings
// on t×t, giving a d-regular (both sides) bipartite multigraph.
func RandomMatchings(t, d int, r *rng.RNG) *Bipartite {
	if t < 1 || d < 1 {
		panic(fmt.Sprintf("expander: invalid t=%d d=%d", t, d))
	}
	b := &Bipartite{T: t, To: make([][]int32, t)}
	for i := range b.To {
		b.To[i] = make([]int32, 0, d)
	}
	for k := 0; k < d; k++ {
		perm := r.Perm(t)
		for i, o := range perm {
			b.To[i] = append(b.To[i], int32(o))
		}
	}
	return b
}

// GabberGalil returns the explicit degree-5 expander on t = m² vertices:
// inlet (x,y) is joined to outlets (x,y), (x,x+y), (x,x+y+1), (x+y,y) and
// (x+y+1,y), all mod m. Each of the five maps is a bijection of Z_m², so
// the graph is 5-regular in both directions.
func GabberGalil(m int) *Bipartite {
	if m < 1 {
		panic("expander: GabberGalil needs m >= 1")
	}
	t := m * m
	b := &Bipartite{T: t, To: make([][]int32, t)}
	id := func(x, y int) int32 { return int32(x*m + y) }
	for x := 0; x < m; x++ {
		for y := 0; y < m; y++ {
			i := id(x, y)
			b.To[i] = []int32{
				id(x, y),
				id(x, (x+y)%m),
				id(x, (x+y+1)%m),
				id((x+y)%m, y),
				id((x+y+1)%m, y),
			}
		}
	}
	return b
}

// Degree returns the (maximum) out-degree.
func (b *Bipartite) Degree() int {
	d := 0
	for _, adj := range b.To {
		if len(adj) > d {
			d = len(adj)
		}
	}
	return d
}

// NumEdges returns the total number of switches.
func (b *Bipartite) NumEdges() int {
	m := 0
	for _, adj := range b.To {
		m += len(adj)
	}
	return m
}

// InDegrees returns the in-degree of every outlet.
func (b *Bipartite) InDegrees() []int {
	in := make([]int, b.T)
	for _, adj := range b.To {
		for _, o := range adj {
			in[o]++
		}
	}
	return in
}

// AddToBuilder adds the bipartite edges to gb, mapping inlet i to vertex
// inletBase+i and outlet o to outletBase+o, and returns the number of
// switches added.
func (b *Bipartite) AddToBuilder(gb *graph.Builder, inletBase, outletBase int32) int {
	added := 0
	for i, adj := range b.To {
		for _, o := range adj {
			gb.AddEdge(inletBase+int32(i), outletBase+o)
			added++
		}
	}
	return added
}

// AddToBuilderReversed adds the edges with direction reversed (outlet →
// inlet), used for the mirror half of Network 𝒩.
func (b *Bipartite) AddToBuilderReversed(gb *graph.Builder, outletBase, inletBase int32) int {
	added := 0
	for i, adj := range b.To {
		for _, o := range adj {
			gb.AddEdge(outletBase+o, inletBase+int32(i))
			added++
		}
	}
	return added
}

// neighborCount returns |Γ(S)| for the inlet set S (given as indices).
func (b *Bipartite) neighborCount(set []int, mark []bool) int {
	for i := range mark {
		mark[i] = false
	}
	cnt := 0
	for _, i := range set {
		for _, o := range b.To[i] {
			if !mark[o] {
				mark[o] = true
				cnt++
			}
		}
	}
	return cnt
}

// VerifyExhaustive checks the (c,c′) expansion property over every inlet
// subset of size exactly c. It returns the first violating set, or nil if
// the property holds. The number of subsets C(t,c) must not exceed limit
// (guarding against accidental exponential blowups).
func (b *Bipartite) VerifyExhaustive(c, cPrime int, limit int64) ([]int, error) {
	if c < 1 || c > b.T {
		return nil, fmt.Errorf("expander: c=%d out of range", c)
	}
	if binom(b.T, c) > limit {
		return nil, fmt.Errorf("expander: C(%d,%d) exceeds limit %d", b.T, c, limit)
	}
	set := make([]int, c)
	for i := range set {
		set[i] = i
	}
	mark := make([]bool, b.T)
	for {
		if b.neighborCount(set, mark) < cPrime {
			bad := append([]int(nil), set...)
			return bad, nil
		}
		// Next combination in lexicographic order.
		i := c - 1
		for i >= 0 && set[i] == b.T-c+i {
			i--
		}
		if i < 0 {
			return nil, nil
		}
		set[i]++
		for j := i + 1; j < c; j++ {
			set[j] = set[j-1] + 1
		}
	}
}

func binom(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	v := int64(1)
	for i := 0; i < k; i++ {
		v = v * int64(n-i) / int64(i+1)
		if v < 0 || v > (1<<62) {
			return 1 << 62
		}
	}
	return v
}

// VerifySampled draws `samples` uniform inlet sets of size c and returns
// the smallest neighborhood seen and the number of violations of the c′
// requirement. A zero violation count is evidence, not proof.
func (b *Bipartite) VerifySampled(c, cPrime, samples int, r *rng.RNG) (minNeighbors, violations int) {
	mark := make([]bool, b.T)
	minNeighbors = b.T + 1
	for s := 0; s < samples; s++ {
		set := r.Sample(b.T, c)
		n := b.neighborCount(set, mark)
		if n < minNeighbors {
			minNeighbors = n
		}
		if n < cPrime {
			violations++
		}
	}
	return minNeighbors, violations
}

// AdversarialMinNeighbors greedily searches for a small-expansion inlet set
// of size c: starting from the inlet whose neighborhood is smallest, it
// repeatedly adds the inlet contributing the fewest new outlets. The
// returned count is an upper bound on the true minimum expansion (i.e. a
// one-sided certificate: if it is < c′, the graph is NOT (c,c′)-expanding).
func (b *Bipartite) AdversarialMinNeighbors(c int) int {
	if c < 1 || c > b.T {
		panic("expander: c out of range")
	}
	mark := make([]bool, b.T)
	inSet := make([]bool, b.T)
	covered := 0
	// Seed: inlet with the smallest distinct-neighbor count.
	best, bestN := 0, b.T+1
	scratch := make([]bool, b.T)
	for i := 0; i < b.T; i++ {
		n := 0
		for _, o := range b.To[i] {
			if !scratch[o] {
				scratch[o] = true
				n++
			}
		}
		for _, o := range b.To[i] {
			scratch[o] = false
		}
		if n < bestN {
			best, bestN = i, n
		}
	}
	add := func(i int) {
		inSet[i] = true
		for _, o := range b.To[i] {
			if !mark[o] {
				mark[o] = true
				covered++
			}
		}
	}
	add(best)
	for k := 1; k < c; k++ {
		bestI, bestNew := -1, b.T+1
		for i := 0; i < b.T; i++ {
			if inSet[i] {
				continue
			}
			nw := 0
			for _, o := range b.To[i] {
				if !mark[o] {
					nw++
				}
			}
			if nw < bestNew {
				bestI, bestNew = i, nw
				if nw == 0 {
					break
				}
			}
		}
		add(bestI)
	}
	return covered
}

// ExpectedCoverage returns the expected number of distinct outlets covered
// by a uniform set of c inlets in a random d-regular multigraph:
// t·(1 − (1 − 1/t)^(c·d)). Used to sanity-check the random construction.
func ExpectedCoverage(t, c, d int) float64 {
	return float64(t) * (1 - math.Pow(1-1/float64(t), float64(c*d)))
}

// SpectralGap estimates the second-largest eigenvalue of the symmetric
// random-walk operator P = (A Aᵀ)/d² on the inlet side (inlet → outlet →
// inlet), via power iteration on the subspace orthogonal to the uniform
// vector. Values well below 1 certify rapid mixing and hence good
// expansion (Alon–Chung); returns the estimate after iters rounds.
// The graph must be d-regular in both directions.
func (b *Bipartite) SpectralGap(d, iters int, r *rng.RNG) float64 {
	t := b.T
	in := b.InDegrees()
	for _, deg := range in {
		if deg != d {
			panic("expander: SpectralGap requires d-regularity")
		}
	}
	x := make([]float64, t)
	y := make([]float64, t)
	z := make([]float64, t)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	deflate := func(v []float64) {
		mean := 0.0
		for _, a := range v {
			mean += a
		}
		mean /= float64(t)
		for i := range v {
			v[i] -= mean
		}
	}
	norm := func(v []float64) float64 {
		s := 0.0
		for _, a := range v {
			s += a * a
		}
		return math.Sqrt(s)
	}
	deflate(x)
	if n := norm(x); n > 0 {
		for i := range x {
			x[i] /= n
		}
	}
	lambda := 0.0
	for it := 0; it < iters; it++ {
		// y = Aᵀ x (outlet accumulation), z = A y (back to inlets), /d².
		for i := range y {
			y[i] = 0
		}
		for i := 0; i < t; i++ {
			for _, o := range b.To[i] {
				y[o] += x[i]
			}
		}
		for i := range z {
			z[i] = 0
		}
		for i := 0; i < t; i++ {
			for _, o := range b.To[i] {
				z[i] += y[o]
			}
		}
		dd := float64(d * d)
		for i := range z {
			z[i] /= dd
		}
		deflate(z)
		n := norm(z)
		if n == 0 {
			return 0
		}
		lambda = n // since x was unit
		for i := range x {
			x[i] = z[i] / n
		}
	}
	// λ of P=(AAᵀ)/d² equals σ² where σ is the normalized second singular
	// value of A/d; report σ, the usual bipartite expansion measure.
	return math.Sqrt(lambda)
}
