package graph

// LevelWorklist is an epoch-stamped per-level worklist for reverse-cone
// propagation over a leveled DAG: seed it with the vertices whose derived
// state may have changed, then drain it in descending level order, letting
// the consumer push predecessors (which sit at strictly lower levels) as
// it discovers their inputs changed. Because every edge steps to a
// strictly higher level, descending order guarantees a vertex is visited
// only after every pending successor has been finalized — the property
// that makes unchanged-row early-outs sound (see route.ShardedEngine's
// incremental guide, the primary consumer, and DESIGN.md §2.13).
//
// Membership is deduplicated with an epoch-stamped mark array, so a full
// seed/drain round costs O(#pushed + #levels touched) with zero
// steady-state allocations once the per-level buckets have reached their
// high-water capacity. A LevelWorklist is single-goroutine state; it must
// not be shared without external synchronization.
type LevelWorklist struct {
	level   []int32 // per-vertex level (shared with the Levels)
	mark    []uint32
	epoch   uint32
	buckets [][]int32
	hi      int // highest level holding a pending vertex; -1 when empty
	cur     int // level currently draining; len(buckets) when not draining
	idx     int // next unread index within buckets[cur]
}

// NewLevelWorklist returns a worklist over the leveling lv covering n
// vertices (n = the graph's vertex count; lv.PerVertex must have length
// n). Each bucket is preallocated to its level's width — epoch dedup
// bounds a bucket's length by it — so Push provably never reallocates:
// the worklist's whole lifetime costs the constructor's O(n) and nothing
// after.
func NewLevelWorklist(lv *Levels, n int) *LevelWorklist {
	first := lv.First()
	buckets := make([][]int32, lv.NumLevels())
	for l := range buckets {
		buckets[l] = make([]int32, 0, first[l+1]-first[l])
	}
	return &LevelWorklist{
		level:   lv.PerVertex(),
		mark:    make([]uint32, n),
		buckets: buckets,
		hi:      -1,
		cur:     lv.NumLevels(),
	}
}

// Begin starts a new seed/drain round, forgetting any previous membership
// in O(levels touched) (epoch bump; the mark array is cleared only on the
// ~4-billion-round wraparound).
//
//ftcsn:hotpath per-epoch guide maintenance entry; runs once per fault diff
func (wl *LevelWorklist) Begin() {
	wl.epoch++
	if wl.epoch == 0 {
		clear(wl.mark)
		wl.epoch = 1
	}
	for l := wl.hi; l >= 0; l-- {
		wl.buckets[l] = wl.buckets[l][:0]
	}
	wl.hi = -1
	wl.cur = len(wl.buckets)
	wl.idx = 0
}

// Push adds v to the current round unless it is already pending or was
// already drained this round; it reports whether v was newly added. Once
// draining has started (Next returned a vertex), pushes must target
// strictly lower levels than the one being drained — the reverse-cone
// contract: a consumer may only wake predecessors. Violating it panics
// rather than silently mis-ordering the sweep.
//
//ftcsn:hotpath inner loop of per-epoch guide maintenance
func (wl *LevelWorklist) Push(v int32) bool {
	if wl.mark[v] == wl.epoch {
		return false
	}
	wl.mark[v] = wl.epoch
	l := int(wl.level[v])
	if l >= wl.cur {
		panic("graph: LevelWorklist.Push at or above the level being drained")
	}
	wl.buckets[l] = append(wl.buckets[l], v)
	if l > wl.hi {
		wl.hi = l
	}
	return true
}

// Next returns the next pending vertex in descending level order (push
// order within a level: the seed order, then the consumer's own push
// order — fully deterministic), or ok=false when the round is drained.
// After a false return the worklist is empty and ready for the next
// Begin.
//
//ftcsn:hotpath drains the reverse cone of each fault diff
func (wl *LevelWorklist) Next() (v int32, ok bool) {
	if wl.cur == len(wl.buckets) {
		// First pull of the round: start at the highest seeded level.
		if wl.hi < 0 {
			return 0, false
		}
		wl.cur = wl.hi
	}
	for wl.cur >= 0 {
		if b := wl.buckets[wl.cur]; wl.idx < len(b) {
			v = b[wl.idx]
			wl.idx++
			return v, true
		}
		wl.buckets[wl.cur] = wl.buckets[wl.cur][:0]
		wl.cur--
		wl.idx = 0
	}
	wl.hi = -1
	wl.cur = len(wl.buckets)
	return 0, false
}

// Descend drains the round through visit — Next as a callback loop, for
// consumers that prefer the inverted control flow (tests, one-shot
// sweeps). visit may Push vertices at strictly lower levels.
func (wl *LevelWorklist) Descend(visit func(v int32)) {
	for v, ok := wl.Next(); ok; v, ok = wl.Next() {
		visit(v)
	}
}
