package graph

// Stress and property tests of the CSR graph substrate over large random
// multigraphs — the foundation every other package trusts.

import (
	"testing"

	"ftcsn/internal/rng"
)

// buildRandomStagedGraph creates a staged DAG with `stages` stages of
// `width` vertices and random forward edges (multi-edges allowed).
func buildRandomStagedGraph(stages, width, edges int, r *rng.RNG) *Graph {
	b := NewBuilder(stages*width, edges)
	for s := 0; s < stages; s++ {
		b.AddVertices(int32(s), width)
	}
	at := func(s, i int) int32 { return int32(s*width + i) }
	for e := 0; e < edges; e++ {
		s := r.Intn(stages - 1)
		b.AddEdge(at(s, r.Intn(width)), at(s+1, r.Intn(width)))
	}
	for i := 0; i < width; i++ {
		b.MarkInput(at(0, i))
		b.MarkOutput(at(stages-1, i))
	}
	return b.Freeze()
}

func TestLargeCSRConsistency(t *testing.T) {
	r := rng.New(0x57)
	g := buildRandomStagedGraph(10, 100, 20000, r)
	// Per-vertex out/in edge lists partition the edge set exactly.
	outSeen := make([]bool, g.NumEdges())
	inSeen := make([]bool, g.NumEdges())
	totalOut, totalIn := 0, 0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for _, e := range g.OutEdges(v) {
			if outSeen[e] || g.EdgeFrom(e) != v {
				t.Fatalf("edge %d misfiled in OutEdges(%d)", e, v)
			}
			outSeen[e] = true
			totalOut++
		}
		for _, e := range g.InEdges(v) {
			if inSeen[e] || g.EdgeTo(e) != v {
				t.Fatalf("edge %d misfiled in InEdges(%d)", e, v)
			}
			inSeen[e] = true
			totalIn++
		}
	}
	if totalOut != g.NumEdges() || totalIn != g.NumEdges() {
		t.Fatalf("partition sizes: out=%d in=%d edges=%d", totalOut, totalIn, g.NumEdges())
	}
}

func TestLargeDegreeSums(t *testing.T) {
	r := rng.New(0x58)
	g := buildRandomStagedGraph(6, 50, 5000, r)
	sumOut, sumIn := 0, 0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		sumOut += g.OutDegree(v)
		sumIn += g.InDegree(v)
	}
	if sumOut != g.NumEdges() || sumIn != g.NumEdges() {
		t.Fatalf("degree sums %d/%d vs %d edges", sumOut, sumIn, g.NumEdges())
	}
}

func TestLargeTopoAndDepth(t *testing.T) {
	r := rng.New(0x59)
	g := buildRandomStagedGraph(8, 64, 10000, r)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != g.NumVertices() {
		t.Fatal("topo order incomplete")
	}
	d, err := g.Depth()
	if err != nil {
		t.Fatal(err)
	}
	// Depth of a staged graph is at most stages−1.
	if d > 7 {
		t.Fatalf("depth %d exceeds stage bound", d)
	}
}

func TestMirrorPreservesDegreesSwapped(t *testing.T) {
	r := rng.New(0x5A)
	g := buildRandomStagedGraph(5, 40, 3000, r)
	m := g.Mirror()
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if g.OutDegree(v) != m.InDegree(v) || g.InDegree(v) != m.OutDegree(v) {
			t.Fatalf("vertex %d degrees not swapped", v)
		}
	}
}

func TestUndirectedDistancesSymmetry(t *testing.T) {
	r := rng.New(0x5B)
	g := buildRandomStagedGraph(4, 20, 400, r)
	// dist(u,v) == dist(v,u) for sampled pairs.
	for trial := 0; trial < 20; trial++ {
		u := int32(r.Intn(g.NumVertices()))
		v := int32(r.Intn(g.NumVertices()))
		du := g.UndirectedDistances(u)
		dv := g.UndirectedDistances(v)
		if du[v] != dv[u] {
			t.Fatalf("asymmetric distance: %d vs %d", du[v], dv[u])
		}
	}
}

func TestReachableFromSubsetOfUndirected(t *testing.T) {
	r := rng.New(0x5C)
	g := buildRandomStagedGraph(5, 30, 900, r)
	src := g.Inputs()[0]
	directed := g.ReachableFrom(src, nil)
	undirected := g.UndirectedDistances(src)
	for v := range directed {
		if directed[v] && undirected[v] < 0 {
			t.Fatalf("vertex %d directed-reachable but not undirected-reachable", v)
		}
	}
}

func BenchmarkFreezeLarge(b *testing.B) {
	r := rng.New(0x5D)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buildRandomStagedGraph(10, 200, 100000, r)
	}
}

func BenchmarkBFSLarge(b *testing.B) {
	g := buildRandomStagedGraph(10, 200, 100000, rng.New(0x5E))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ReachableFrom(g.Inputs()[i%200], nil)
	}
}
