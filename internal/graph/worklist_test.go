package graph

import "testing"

// worklistGraph builds a staged diamond ladder: 4 levels of 3 vertices,
// each vertex wired to every vertex of the next level.
func worklistGraph(t *testing.T) (*Graph, *Levels) {
	t.Helper()
	b := NewBuilder(12, 27)
	for l := int32(0); l < 4; l++ {
		b.AddVertices(l, 3)
	}
	for l := int32(0); l < 3; l++ {
		for i := int32(0); i < 3; i++ {
			for j := int32(0); j < 3; j++ {
				b.AddEdge(l*3+i, (l+1)*3+j)
			}
		}
	}
	b.MarkInput(0)
	b.MarkOutput(9)
	g := b.Freeze()
	lv, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	return g, lv
}

func TestLevelWorklistDescendingOrder(t *testing.T) {
	g, lv := worklistGraph(t)
	wl := NewLevelWorklist(lv, g.NumVertices())

	wl.Begin()
	// Seed out of level order, with a duplicate.
	for _, v := range []int32{4, 10, 1, 10} {
		wl.Push(v)
	}
	if wl.Push(4) {
		t.Fatal("duplicate push reported as newly added")
	}

	var got []int32
	last := int32(1 << 30)
	wl.Descend(func(v int32) {
		if lv.Of(v) > last {
			t.Fatalf("visited %d (level %d) after level %d", v, lv.Of(v), last)
		}
		last = lv.Of(v)
		got = append(got, v)
		// Wake v's predecessors — all strictly lower level.
		for _, e := range g.InEdges(v) {
			wl.Push(g.EdgeFrom(e))
		}
	})
	// 10 (level 3) wakes level 2 (6,7,8); they wake level 1 (3,4,5 — 4
	// seeded); level 1 wakes level 0 (0,1,2 — 1 seeded). Every vertex but
	// the unreached 9 and 11 is visited exactly once.
	seen := map[int32]int{}
	for _, v := range got {
		seen[v]++
	}
	if len(got) != 10 {
		t.Fatalf("visited %d vertices (%v), want 10", len(got), got)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("vertex %d visited %d times", v, n)
		}
	}
	if seen[9] != 0 || seen[11] != 0 {
		t.Fatalf("visited a vertex outside the reverse cone: %v", got)
	}

	// A second round starts clean.
	wl.Begin()
	wl.Push(2)
	count := 0
	wl.Descend(func(int32) { count++ })
	if count != 1 {
		t.Fatalf("second round visited %d vertices, want 1", count)
	}
}

func TestLevelWorklistEpochWraparound(t *testing.T) {
	g, lv := worklistGraph(t)
	wl := NewLevelWorklist(lv, g.NumVertices())
	wl.Begin()
	wl.Push(3)
	wl.Descend(func(int32) {})

	// Force the wraparound: the next Begin must clear stale marks so old
	// membership can't leak into the new round.
	wl.epoch = ^uint32(0)
	wl.Begin()
	if wl.epoch != 1 {
		t.Fatalf("epoch after wraparound = %d, want 1", wl.epoch)
	}
	if !wl.Push(3) {
		t.Fatal("push after wraparound rejected as duplicate")
	}
}

func TestLevelWorklistPushAboveDrainPanics(t *testing.T) {
	g, lv := worklistGraph(t)
	wl := NewLevelWorklist(lv, g.NumVertices())
	wl.Begin()
	wl.Push(3) // level 1
	defer func() {
		if recover() == nil {
			t.Fatal("pushing at the drained level did not panic")
		}
	}()
	wl.Descend(func(int32) { wl.Push(5) }) // level 1 again: contract violation
}

// TestLevelWorklistPushAllocFree: with buckets preallocated to level
// widths and epoch-stamped dedup, a warm seed/drain round must not
// allocate.
func TestLevelWorklistPushAllocFree(t *testing.T) {
	g, lv := worklistGraph(t)
	wl := NewLevelWorklist(lv, g.NumVertices())
	round := func() {
		wl.Begin()
		wl.Push(11)
		wl.Descend(func(v int32) {
			for _, e := range g.InEdges(v) {
				wl.Push(g.EdgeFrom(e))
			}
		})
	}
	round()
	if avg := testing.AllocsPerRun(50, round); avg != 0 {
		t.Fatalf("worklist round allocates %.2f allocs/op, want 0", avg)
	}
}
