// Package graph provides the directed-graph substrate shared by every
// network in this repository.
//
// Following Pippenger & Lin, a circuit-switching network is an acyclic
// directed graph: distinguished vertices called inputs and outputs are the
// terminals, the remaining vertices are electrical links, and each edge is a
// single-pole single-throw switch joining two links. The graph is therefore
// the ground truth on which fault injection (per-edge open/closed states)
// and circuit routing (vertex-disjoint paths) operate.
//
// Graphs are built once through a Builder and then frozen into an immutable
// CSR (compressed sparse row) form. All mutable per-instance state — fault
// masks, busy flags, frontiers — lives in the consumer packages, indexed by
// the dense vertex and edge IDs handed out here, so a single frozen topology
// can back many concurrent Monte-Carlo trials.
package graph

import (
	"fmt"
	"strings"
	"sync"
)

// NoStage marks a vertex that does not belong to a staged construction.
const NoStage = int32(-1)

// Builder accumulates vertices and edges and freezes them into a Graph.
// The zero value is ready to use.
type Builder struct {
	stage    []int32
	edgeFrom []int32
	edgeTo   []int32
	inputs   []int32
	outputs  []int32
}

// NewBuilder returns a Builder with capacity hints for vertices and edges.
func NewBuilder(vertexHint, edgeHint int) *Builder {
	return &Builder{
		stage:    make([]int32, 0, vertexHint),
		edgeFrom: make([]int32, 0, edgeHint),
		edgeTo:   make([]int32, 0, edgeHint),
	}
}

// AddVertex creates a vertex on the given stage (use NoStage for unstaged
// graphs) and returns its ID.
func (b *Builder) AddVertex(stage int32) int32 {
	b.stage = append(b.stage, stage)
	return int32(len(b.stage) - 1)
}

// AddVertices creates k vertices on the given stage and returns the ID of
// the first; IDs are contiguous.
func (b *Builder) AddVertices(stage int32, k int) int32 {
	first := int32(len(b.stage))
	for i := 0; i < k; i++ {
		b.stage = append(b.stage, stage)
	}
	return first
}

// AddEdge creates a switch from u to v and returns its edge ID. Multi-edges
// are permitted (the probabilistic expander constructions produce them) and
// are electrically meaningful: parallel switches fail independently.
func (b *Builder) AddEdge(u, v int32) int32 {
	n := int32(len(b.stage))
	if u < 0 || u >= n || v < 0 || v >= n {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d) out of range n=%d", u, v, n))
	}
	b.edgeFrom = append(b.edgeFrom, u)
	b.edgeTo = append(b.edgeTo, v)
	return int32(len(b.edgeFrom) - 1)
}

// MarkInput declares v a network input terminal.
func (b *Builder) MarkInput(v int32) { b.inputs = append(b.inputs, v) }

// MarkOutput declares v a network output terminal.
func (b *Builder) MarkOutput(v int32) { b.outputs = append(b.outputs, v) }

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.stage) }

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edgeFrom) }

// Freeze converts the accumulated topology into an immutable Graph.
// The Builder must not be used afterwards.
func (b *Builder) Freeze() *Graph {
	n := len(b.stage)
	m := len(b.edgeFrom)
	g := &Graph{
		stage:    b.stage,
		edgeFrom: b.edgeFrom,
		edgeTo:   b.edgeTo,
		inputs:   b.inputs,
		outputs:  b.outputs,
		outStart: make([]int32, n+1),
		inStart:  make([]int32, n+1),
		outEdges: make([]int32, m),
		inEdges:  make([]int32, m),
	}
	// Counting sort of edges into CSR rows, forward and reverse.
	for _, u := range b.edgeFrom {
		g.outStart[u+1]++
	}
	for _, v := range b.edgeTo {
		g.inStart[v+1]++
	}
	for i := 0; i < n; i++ {
		g.outStart[i+1] += g.outStart[i]
		g.inStart[i+1] += g.inStart[i]
	}
	outNext := make([]int32, n)
	inNext := make([]int32, n)
	copy(outNext, g.outStart[:n])
	copy(inNext, g.inStart[:n])
	g.outHeads = make([]int32, m)
	g.inTails = make([]int32, m)
	g.outSlot = make([]int32, m)
	g.inSlot = make([]int32, m)
	for e := 0; e < m; e++ {
		u := b.edgeFrom[e]
		v := b.edgeTo[e]
		g.outEdges[outNext[u]] = int32(e)
		g.outHeads[outNext[u]] = v
		g.outSlot[e] = outNext[u]
		outNext[u]++
		g.inEdges[inNext[v]] = int32(e)
		g.inTails[inNext[v]] = u
		g.inSlot[e] = inNext[v]
		inNext[v]++
	}
	g.isTerminal = make([]bool, n)
	for _, v := range g.inputs {
		g.isTerminal[v] = true
	}
	for _, v := range g.outputs {
		g.isTerminal[v] = true
	}
	return g
}

// Graph is an immutable directed multigraph in CSR form. Vertex IDs are
// dense in [0, NumVertices()); edge IDs are dense in [0, NumEdges()).
type Graph struct {
	stage      []int32
	edgeFrom   []int32
	edgeTo     []int32
	inputs     []int32
	outputs    []int32
	outStart   []int32 // len n+1; outEdges[outStart[v]:outStart[v+1]] leave v
	outEdges   []int32
	inStart    []int32
	inEdges    []int32
	outHeads   []int32 // outHeads[i] = EdgeTo(outEdges[i]); CSR-slot aligned
	inTails    []int32 // inTails[i] = EdgeFrom(inEdges[i])
	outSlot    []int32 // outSlot[e] = position of e in outEdges
	inSlot     []int32 // inSlot[e] = position of e in inEdges
	isTerminal []bool

	// Lazily computed topological-level metadata (see Levels). Mirror
	// pre-seeds levels/levelsErr with the assignment derived from the
	// original; the Once then keeps whatever is already there.
	levelsOnce sync.Once
	levels     *Levels
	levelsErr  error
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.stage) }

// NumEdges returns the edge (switch) count — the paper's "size" measure.
func (g *Graph) NumEdges() int { return len(g.edgeFrom) }

// Inputs returns the input terminal IDs (shared slice; do not mutate).
func (g *Graph) Inputs() []int32 { return g.inputs }

// Outputs returns the output terminal IDs (shared slice; do not mutate).
func (g *Graph) Outputs() []int32 { return g.outputs }

// IsTerminal reports whether v is an input or output.
func (g *Graph) IsTerminal(v int32) bool { return g.isTerminal[v] }

// Stage returns the stage of v, or NoStage.
func (g *Graph) Stage(v int32) int32 { return g.stage[v] }

// EdgeFrom returns the tail of edge e.
func (g *Graph) EdgeFrom(e int32) int32 { return g.edgeFrom[e] }

// EdgeTo returns the head of edge e.
func (g *Graph) EdgeTo(e int32) int32 { return g.edgeTo[e] }

// OutEdges returns the IDs of edges leaving v (shared slice; do not mutate).
func (g *Graph) OutEdges(v int32) []int32 {
	return g.outEdges[g.outStart[v]:g.outStart[v+1]]
}

// InEdges returns the IDs of edges entering v (shared slice; do not mutate).
func (g *Graph) InEdges(v int32) []int32 {
	return g.inEdges[g.inStart[v]:g.inStart[v+1]]
}

// CSROut exposes the forward CSR arrays directly for hot traversal loops:
// edges leaving v occupy slots start[v]..start[v+1] of edges, and heads[i]
// is the head vertex of the edge in slot i. All three slices are shared and
// must not be mutated.
func (g *Graph) CSROut() (start, edges, heads []int32) {
	return g.outStart, g.outEdges, g.outHeads
}

// CSRIn is CSROut for the reverse adjacency: tails[i] is the tail vertex of
// the edge in slot i of the in-edge CSR.
func (g *Graph) CSRIn() (start, edges, tails []int32) {
	return g.inStart, g.inEdges, g.inTails
}

// OutSlot returns the position of edge e in the forward CSR edge array,
// i.e. the index i with CSROut() edges[i] == e.
func (g *Graph) OutSlot(e int32) int32 { return g.outSlot[e] }

// InSlot returns the position of edge e in the reverse CSR edge array.
func (g *Graph) InSlot(e int32) int32 { return g.inSlot[e] }

// Stages exposes the per-vertex stage array (shared; do not mutate).
func (g *Graph) Stages() []int32 { return g.stage }

// Traversal-mask bits for the CSR-slot-aligned "allowed" byte arrays built
// by BuildOutAllowed/BuildInAllowed and consumed by the routing and access
// BFS hot loops. A slot with AdjBlocked set is not traversable (the switch
// failed or an endpoint was discarded by repair); AdjTerminal marks slots
// whose far endpoint is a network terminal, which routing treats specially
// (a circuit may only enter a terminal if it is the requested output).
const (
	AdjBlocked  uint8 = 1 << 0
	AdjTerminal uint8 = 1 << 1
)

// SlotAdmits reports whether traversal byte c admits stepping through its
// CSR slot toward head while hunting a path to out: the slot must be fully
// allowed, or objectionable only because head is a terminal AND head is
// the requested output — circuits may not pass through foreign terminals.
// Every path hunt (route.Router.Connect, the concurrent prober, the
// sharded engine's probes) shares this single admission rule so the
// engines cannot drift apart; it inlines to two compares.
func SlotAdmits(c uint8, head, out int32) bool {
	return c == 0 || (c == AdjTerminal && head == out)
}

// BuildOutAllowed fills dst (grown to NumEdges) with the combined
// traversal byte for every forward CSR slot: AdjBlocked unless the edge is
// allowed by edgeOK AND its head vertex by vertexOK (nil masks allow
// everything), plus AdjTerminal when the head is a terminal.
func (g *Graph) BuildOutAllowed(edgeOK, vertexOK []bool, dst []uint8) []uint8 {
	dst = growBytes(dst, g.NumEdges())
	for i, e := range g.outEdges {
		w := g.outHeads[i]
		var b uint8
		if (edgeOK != nil && !edgeOK[e]) || (vertexOK != nil && !vertexOK[w]) {
			b = AdjBlocked
		}
		if g.isTerminal[w] {
			b |= AdjTerminal
		}
		dst[i] = b
	}
	return dst
}

// BuildInAllowed is BuildOutAllowed for the reverse CSR: the far endpoint
// of slot i is the tail of the edge.
func (g *Graph) BuildInAllowed(edgeOK, vertexOK []bool, dst []uint8) []uint8 {
	dst = growBytes(dst, g.NumEdges())
	for i, e := range g.inEdges {
		u := g.inTails[i]
		var b uint8
		if (edgeOK != nil && !edgeOK[e]) || (vertexOK != nil && !vertexOK[u]) {
			b = AdjBlocked
		}
		if g.isTerminal[u] {
			b |= AdjTerminal
		}
		dst[i] = b
	}
	return dst
}

// growBytes resizes s to n elements, reusing capacity when possible; the
// contents are unspecified and must be overwritten by the caller.
func growBytes(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}

// OutDegree returns the number of switches leaving v.
func (g *Graph) OutDegree(v int32) int { return int(g.outStart[v+1] - g.outStart[v]) }

// InDegree returns the number of switches entering v.
func (g *Graph) InDegree(v int32) int { return int(g.inStart[v+1] - g.inStart[v]) }

// Degree returns the total number of switches incident to v.
func (g *Graph) Degree(v int32) int { return g.OutDegree(v) + g.InDegree(v) }

// MaxDegree returns the maximum total degree over all vertices.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// Mirror returns the mirror image of g in the paper's sense: inputs and
// outputs are exchanged and every edge is reversed. Vertex and edge IDs are
// preserved, so fault states computed for g apply verbatim to the mirror.
//
// The mirror's topological levels are derived from the original rather
// than recomputed: reversing every edge reflects a valid leveling, so the
// mirror's level of v is maxLevel − level(v). Mirrors of acyclic graphs
// are therefore always levelable — including mirrors of unstaged graphs —
// and keep every level-gated fast path.
func (g *Graph) Mirror() *Graph {
	n := g.NumVertices()
	m := g.NumEdges()
	b := NewBuilder(n, m)
	maxStage := int32(-1)
	for _, s := range g.stage {
		if s > maxStage {
			maxStage = s
		}
	}
	for v := 0; v < n; v++ {
		s := g.stage[v]
		if s != NoStage && maxStage >= 0 {
			s = maxStage - s
		}
		b.AddVertex(s)
	}
	for e := int32(0); e < int32(m); e++ {
		b.AddEdge(g.edgeTo[e], g.edgeFrom[e])
	}
	for _, v := range g.outputs {
		b.MarkInput(v)
	}
	for _, v := range g.inputs {
		b.MarkOutput(v)
	}
	mg := b.Freeze()
	if lv, err := g.Levels(); err == nil {
		mg.levels = lv.mirrored()
	}
	return mg
}

// TopoOrder returns a topological order of the vertices, or an error if the
// graph has a directed cycle. Kahn's algorithm; ties resolved by vertex ID
// so the order is deterministic.
func (g *Graph) TopoOrder() ([]int32, error) {
	n := g.NumVertices()
	indeg := make([]int32, n)
	for _, v := range g.edgeTo {
		indeg[v]++
	}
	order := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	for v := int32(0); v < int32(n); v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, e := range g.OutEdges(v) {
			w := g.edgeTo[e]
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("graph: directed cycle detected (%d of %d vertices ordered)", len(order), n)
	}
	return order, nil
}

// Depth returns the largest number of switches on any directed path from an
// input to an output — the paper's "depth" measure. It returns an error if
// the graph is cyclic. Unreachable outputs contribute nothing.
func (g *Graph) Depth() (int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	const unset = int32(-1)
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = unset
	}
	for _, v := range g.inputs {
		dist[v] = 0
	}
	best := int32(0)
	for _, v := range order {
		if dist[v] == unset {
			continue
		}
		for _, e := range g.OutEdges(v) {
			w := g.edgeTo[e]
			if d := dist[v] + 1; d > dist[w] {
				dist[w] = d
			}
		}
	}
	for _, v := range g.outputs {
		if dist[v] > best {
			best = dist[v]
		}
	}
	return int(best), nil
}

// UndirectedDistances returns the BFS distance (in switches, ignoring edge
// direction) from src to every vertex; unreachable vertices get -1. This is
// the distance notion of the paper's Section 5 lower-bound argument.
func (g *Graph) UndirectedDistances(src int32) []int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, 64)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		d := dist[v] + 1
		for _, e := range g.OutEdges(v) {
			if w := g.edgeTo[e]; dist[w] < 0 {
				dist[w] = d
				queue = append(queue, w)
			}
		}
		for _, e := range g.InEdges(v) {
			if w := g.edgeFrom[e]; dist[w] < 0 {
				dist[w] = d
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// ReachableFrom returns, as a boolean slice, the set of vertices reachable
// from src along directed edges, restricted to vertices allowed by ok
// (ok==nil allows everything; src is always visited).
func (g *Graph) ReachableFrom(src int32, ok func(int32) bool) []bool {
	seen := make([]bool, g.NumVertices())
	seen[src] = true
	queue := []int32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.OutEdges(v) {
			w := g.edgeTo[e]
			if !seen[w] && (ok == nil || ok(w)) {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen
}

// Validate performs structural sanity checks: terminal sets are non-empty
// and disjoint, inputs have no incoming switches, outputs no outgoing ones.
// Constructions call this in tests rather than at build time, since some
// intermediate graphs (e.g. expander blocks) have no terminals.
func (g *Graph) Validate() error {
	if len(g.inputs) == 0 || len(g.outputs) == 0 {
		return fmt.Errorf("graph: missing terminals (%d inputs, %d outputs)", len(g.inputs), len(g.outputs))
	}
	seen := make(map[int32]bool, len(g.inputs))
	for _, v := range g.inputs {
		if seen[v] {
			return fmt.Errorf("graph: duplicate input %d", v)
		}
		seen[v] = true
		if g.InDegree(v) != 0 {
			return fmt.Errorf("graph: input %d has in-degree %d", v, g.InDegree(v))
		}
	}
	for _, v := range g.outputs {
		if seen[v] {
			return fmt.Errorf("graph: output %d is also an input or duplicated", v)
		}
		seen[v] = true
		if g.OutDegree(v) != 0 {
			return fmt.Errorf("graph: output %d has out-degree %d", v, g.OutDegree(v))
		}
	}
	return nil
}

// DOT renders the graph in Graphviz format (small graphs only; intended for
// documentation and debugging).
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n  rankdir=LR;\n", name)
	for _, v := range g.inputs {
		fmt.Fprintf(&b, "  v%d [shape=invtriangle,label=\"in%d\"];\n", v, v)
	}
	for _, v := range g.outputs {
		fmt.Fprintf(&b, "  v%d [shape=triangle,label=\"out%d\"];\n", v, v)
	}
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		fmt.Fprintf(&b, "  v%d -> v%d;\n", g.edgeFrom[e], g.edgeTo[e])
	}
	b.WriteString("}\n")
	return b.String()
}

// Stats summarizes a network for reporting: the complexity measures of the
// paper plus degree information.
type Stats struct {
	Vertices  int
	Edges     int // size in the paper's sense
	Inputs    int
	Outputs   int
	Depth     int // depth in the paper's sense
	MaxDegree int
}

// ComputeStats gathers Stats for g. Cyclic graphs report Depth -1.
func ComputeStats(g *Graph) Stats {
	depth, err := g.Depth()
	if err != nil {
		depth = -1
	}
	return Stats{
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges(),
		Inputs:    len(g.inputs),
		Outputs:   len(g.outputs),
		Depth:     depth,
		MaxDegree: g.MaxDegree(),
	}
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("V=%d E=%d in=%d out=%d depth=%d maxdeg=%d",
		s.Vertices, s.Edges, s.Inputs, s.Outputs, s.Depth, s.MaxDegree)
}
