package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"ftcsn/internal/rng"
)

// diamond builds the 4-vertex diamond: in -> a,b -> out.
func diamond() *Graph {
	b := NewBuilder(4, 4)
	in := b.AddVertex(0)
	a := b.AddVertex(1)
	c := b.AddVertex(1)
	out := b.AddVertex(2)
	b.AddEdge(in, a)
	b.AddEdge(in, c)
	b.AddEdge(a, out)
	b.AddEdge(c, out)
	b.MarkInput(in)
	b.MarkOutput(out)
	return b.Freeze()
}

func TestBuilderFreezeBasics(t *testing.T) {
	g := diamond()
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.OutDegree(0) != 2 || g.InDegree(3) != 2 {
		t.Fatalf("degrees wrong: out(0)=%d in(3)=%d", g.OutDegree(0), g.InDegree(3))
	}
	if !g.IsTerminal(0) || !g.IsTerminal(3) || g.IsTerminal(1) {
		t.Fatal("terminal marking wrong")
	}
}

func TestCSRConsistency(t *testing.T) {
	g := diamond()
	// Every edge e in OutEdges(v) must satisfy EdgeFrom(e) == v, and
	// symmetrically for InEdges.
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for _, e := range g.OutEdges(v) {
			if g.EdgeFrom(e) != v {
				t.Fatalf("edge %d in OutEdges(%d) but EdgeFrom=%d", e, v, g.EdgeFrom(e))
			}
		}
		for _, e := range g.InEdges(v) {
			if g.EdgeTo(e) != v {
				t.Fatalf("edge %d in InEdges(%d) but EdgeTo=%d", e, v, g.EdgeTo(e))
			}
		}
	}
}

func TestDepth(t *testing.T) {
	g := diamond()
	d, err := g.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Fatalf("depth = %d, want 2", d)
	}
}

func TestDepthLongestPath(t *testing.T) {
	// in -> a -> out and in -> out directly: depth must be 2, not 1.
	b := NewBuilder(3, 3)
	in := b.AddVertex(NoStage)
	a := b.AddVertex(NoStage)
	out := b.AddVertex(NoStage)
	b.AddEdge(in, a)
	b.AddEdge(a, out)
	b.AddEdge(in, out)
	b.MarkInput(in)
	b.MarkOutput(out)
	g := b.Freeze()
	d, err := g.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Fatalf("depth = %d, want 2", d)
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	b := NewBuilder(2, 2)
	u := b.AddVertex(NoStage)
	v := b.AddVertex(NoStage)
	b.AddEdge(u, v)
	b.AddEdge(v, u)
	g := b.Freeze()
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if _, err := g.Depth(); err == nil {
		t.Fatal("Depth on cyclic graph did not error")
	}
}

func TestMirror(t *testing.T) {
	g := diamond()
	m := g.Mirror()
	if m.NumEdges() != g.NumEdges() || m.NumVertices() != g.NumVertices() {
		t.Fatal("mirror changed counts")
	}
	// Edge IDs preserved with reversed endpoints.
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		if m.EdgeFrom(e) != g.EdgeTo(e) || m.EdgeTo(e) != g.EdgeFrom(e) {
			t.Fatalf("edge %d not reversed", e)
		}
	}
	// Terminals swapped.
	if m.Inputs()[0] != g.Outputs()[0] || m.Outputs()[0] != g.Inputs()[0] {
		t.Fatal("mirror did not swap terminals")
	}
	// Stages reversed: input (stage 0) becomes stage 2.
	if m.Stage(g.Inputs()[0]) != 2 {
		t.Fatalf("mirror stage = %d", m.Stage(g.Inputs()[0]))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMirrorInvolution(t *testing.T) {
	g := diamond()
	mm := g.Mirror().Mirror()
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		if mm.EdgeFrom(e) != g.EdgeFrom(e) || mm.EdgeTo(e) != g.EdgeTo(e) {
			t.Fatal("double mirror is not identity on edges")
		}
	}
}

func TestUndirectedDistances(t *testing.T) {
	g := diamond()
	d := g.UndirectedDistances(0)
	want := []int32{0, 1, 1, 2}
	for i, w := range want {
		if d[i] != w {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], w)
		}
	}
}

func TestUndirectedDistancesIgnoreDirection(t *testing.T) {
	// a -> b <- c: undirected distance a..c is 2 even though no directed path.
	b := NewBuilder(3, 2)
	va := b.AddVertex(NoStage)
	vb := b.AddVertex(NoStage)
	vc := b.AddVertex(NoStage)
	b.AddEdge(va, vb)
	b.AddEdge(vc, vb)
	g := b.Freeze()
	d := g.UndirectedDistances(va)
	if d[vc] != 2 {
		t.Fatalf("dist(a,c) = %d, want 2", d[vc])
	}
}

func TestReachableFromWithMask(t *testing.T) {
	g := diamond()
	// Block vertex 1 (a): out still reachable through 2 (b).
	seen := g.ReachableFrom(0, func(v int32) bool { return v != 1 })
	if !seen[3] {
		t.Fatal("out unreachable with one middle vertex blocked")
	}
	if seen[1] {
		t.Fatal("blocked vertex visited")
	}
	// Block both middles: out unreachable.
	seen = g.ReachableFrom(0, func(v int32) bool { return v != 1 && v != 2 })
	if seen[3] {
		t.Fatal("out reachable with both middles blocked")
	}
}

func TestValidateRejectsBadTerminals(t *testing.T) {
	b := NewBuilder(2, 1)
	u := b.AddVertex(NoStage)
	v := b.AddVertex(NoStage)
	b.AddEdge(u, v)
	b.MarkInput(v) // v has in-degree 1: invalid input
	b.MarkOutput(u)
	g := b.Freeze()
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted input with incoming edge")
	}
}

func TestValidateRejectsOverlap(t *testing.T) {
	b := NewBuilder(1, 0)
	v := b.AddVertex(NoStage)
	b.MarkInput(v)
	b.MarkOutput(v)
	g := b.Freeze()
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted input==output")
	}
}

func TestDOT(t *testing.T) {
	out := diamond().DOT("d")
	if !strings.Contains(out, "digraph d") || !strings.Contains(out, "v0 -> v1") {
		t.Fatalf("DOT output malformed: %q", out)
	}
}

func TestComputeStats(t *testing.T) {
	s := ComputeStats(diamond())
	if s.Edges != 4 || s.Depth != 2 || s.MaxDegree != 2 || s.Inputs != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if !strings.Contains(s.String(), "E=4") {
		t.Fatalf("stats string = %q", s.String())
	}
}

// Property test: on random DAGs (edges always from lower to higher ID),
// TopoOrder succeeds and respects all edges, and Depth is bounded by the
// vertex count.
func TestQuickRandomDAG(t *testing.T) {
	r := rng.New(1234)
	f := func(seed uint32) bool {
		rr := r.Split(uint64(seed))
		n := 2 + rr.Intn(40)
		b := NewBuilder(n, n*2)
		for i := 0; i < n; i++ {
			b.AddVertex(NoStage)
		}
		m := rr.Intn(3 * n)
		for i := 0; i < m; i++ {
			u := rr.Intn(n - 1)
			v := u + 1 + rr.Intn(n-u-1)
			b.AddEdge(int32(u), int32(v))
		}
		b.MarkInput(0)
		b.MarkOutput(int32(n - 1))
		g := b.Freeze()
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for e := int32(0); e < int32(g.NumEdges()); e++ {
			if pos[g.EdgeFrom(e)] >= pos[g.EdgeTo(e)] {
				return false
			}
		}
		d, err := g.Depth()
		return err == nil && d >= 0 && d < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	b := NewBuilder(1, 1)
	b.AddVertex(NoStage)
	b.AddEdge(0, 5)
}

func TestCSRAdjunctArrays(t *testing.T) {
	g := diamond()
	start, edges, heads := g.CSROut()
	if len(start) != g.NumVertices()+1 {
		t.Fatalf("CSROut start length %d", len(start))
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for idx := start[v]; idx < start[v+1]; idx++ {
			e := edges[idx]
			if g.EdgeFrom(e) != v {
				t.Fatalf("out slot %d: edge %d leaves %d, not %d", idx, e, g.EdgeFrom(e), v)
			}
			if heads[idx] != g.EdgeTo(e) {
				t.Fatalf("out slot %d: head %d != EdgeTo %d", idx, heads[idx], g.EdgeTo(e))
			}
			if g.OutSlot(e) != idx {
				t.Fatalf("OutSlot(%d) = %d, want %d", e, g.OutSlot(e), idx)
			}
		}
	}
	inStart, inEdges, tails := g.CSRIn()
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for idx := inStart[v]; idx < inStart[v+1]; idx++ {
			e := inEdges[idx]
			if g.EdgeTo(e) != v {
				t.Fatalf("in slot %d: edge %d enters %d, not %d", idx, e, g.EdgeTo(e), v)
			}
			if tails[idx] != g.EdgeFrom(e) {
				t.Fatalf("in slot %d: tail %d != EdgeFrom %d", idx, tails[idx], g.EdgeFrom(e))
			}
			if g.InSlot(e) != idx {
				t.Fatalf("InSlot(%d) = %d, want %d", e, g.InSlot(e), idx)
			}
		}
	}
}

func TestBuildAllowedBits(t *testing.T) {
	g := diamond()
	m := g.NumEdges()
	edgeOK := make([]bool, m)
	vertexOK := make([]bool, g.NumVertices())
	for e := range edgeOK {
		edgeOK[e] = e%2 == 0
	}
	for v := range vertexOK {
		vertexOK[v] = v%3 != 0
	}
	out := g.BuildOutAllowed(edgeOK, vertexOK, nil)
	in := g.BuildInAllowed(edgeOK, vertexOK, nil)
	for e := int32(0); e < int32(m); e++ {
		w, u := g.EdgeTo(e), g.EdgeFrom(e)
		wantOut := AdjBlocked * b2u(!edgeOK[e] || !vertexOK[w])
		wantOut |= AdjTerminal * b2u(g.IsTerminal(w))
		if got := out[g.OutSlot(e)]; got != wantOut {
			t.Fatalf("edge %d: OutAllowed %#x, want %#x", e, got, wantOut)
		}
		wantIn := AdjBlocked * b2u(!edgeOK[e] || !vertexOK[u])
		wantIn |= AdjTerminal * b2u(g.IsTerminal(u))
		if got := in[g.InSlot(e)]; got != wantIn {
			t.Fatalf("edge %d: InAllowed %#x, want %#x", e, got, wantIn)
		}
	}
	// Nil masks allow everything.
	for i, b := range g.BuildOutAllowed(nil, nil, nil) {
		if b&AdjBlocked != 0 {
			t.Fatalf("nil masks: slot %d blocked", i)
		}
	}
}

func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// checkLevels verifies the Levels contract on g: every edge strictly
// increases level, First() brackets the traversal order by level, and the
// order (identity when Sorted) is a permutation that is level-sorted and
// ID-stable within a level.
func checkLevels(t *testing.T, g *Graph, lv *Levels) {
	t.Helper()
	n := int32(g.NumVertices())
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		u, v := g.EdgeFrom(e), g.EdgeTo(e)
		if lv.Of(u) >= lv.Of(v) {
			t.Fatalf("edge %d: level %d -> %d not strictly increasing", e, lv.Of(u), lv.Of(v))
		}
	}
	first := lv.First()
	if len(first) != lv.NumLevels()+1 || first[0] != 0 || first[len(first)-1] != n {
		t.Fatalf("first = %v for n=%d levels=%d", first, n, lv.NumLevels())
	}
	seen := make([]bool, n)
	prevLevel := int32(-1)
	prevID := int32(-1)
	for pos := int32(0); pos < n; pos++ {
		v := lv.At(pos)
		if seen[v] {
			t.Fatalf("order repeats vertex %d", v)
		}
		seen[v] = true
		l := lv.Of(v)
		if pos < first[l] || pos >= first[l+1] {
			t.Fatalf("vertex %d (level %d) at position %d outside [%d,%d)", v, l, pos, first[l], first[l+1])
		}
		if l < prevLevel || (l == prevLevel && v < prevID) {
			t.Fatalf("order not level-sorted ID-stable at position %d", pos)
		}
		prevLevel, prevID = l, v
	}
	if lv.Sorted() != (lv.Order() == nil) {
		t.Fatal("Sorted/Order disagree")
	}
}

func TestLevelsStagedSorted(t *testing.T) {
	b := NewBuilder(8, 8)
	// Stage 0: v0,v1; stage 1: v2,v3,v4; stage 3: v5 (stage 2 empty).
	v0 := b.AddVertex(0)
	v1 := b.AddVertex(0)
	v2 := b.AddVertex(1)
	b.AddVertex(1)
	v4 := b.AddVertex(1)
	v5 := b.AddVertex(3)
	b.AddEdge(v0, v2)
	b.AddEdge(v1, v4)
	b.AddEdge(v2, v5) // stage 1 -> 3 skip is still strictly increasing
	g := b.Freeze()
	lv, err := g.Levels()
	if err != nil {
		t.Fatalf("Levels: %v", err)
	}
	// Stage-derived assignment, identity order: First() holds the old
	// stage-layout prefix sums over vertex IDs.
	if !lv.Sorted() {
		t.Fatal("stage-sorted graph should have identity order")
	}
	want := []int32{0, 2, 5, 5, 6}
	first := lv.First()
	if len(first) != len(want) {
		t.Fatalf("first = %v, want %v", first, want)
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("first = %v, want %v", first, want)
		}
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if lv.Of(v) != g.Stage(v) {
			t.Fatalf("vertex %d: level %d != stage %d", v, lv.Of(v), g.Stage(v))
		}
	}
	checkLevels(t, g, lv)
	// Idempotent (cached) and shared.
	again, err := g.Levels()
	if err != nil || again != lv {
		t.Fatal("Levels not cached")
	}
	_ = v5
}

func TestLevelsLongestPath(t *testing.T) {
	// Unstaged diamond with a long arm; IDs deliberately not level-sorted.
	b := NewBuilder(8, 8)
	sink := b.AddVertex(NoStage) // v0, level 3
	src := b.AddVertex(NoStage)  // v1, level 0
	a := b.AddVertex(NoStage)    // v2, level 1
	c := b.AddVertex(NoStage)    // v3, level 1
	d := b.AddVertex(NoStage)    // v4, level 2 (via a)
	b.AddEdge(src, a)
	b.AddEdge(src, c)
	b.AddEdge(a, d)
	b.AddEdge(d, sink)
	b.AddEdge(c, sink) // short arm: sink's level is the LONGEST path, 3
	g := b.Freeze()
	lv, err := g.Levels()
	if err != nil {
		t.Fatalf("Levels: %v", err)
	}
	wantLevel := []int32{3, 0, 1, 1, 2}
	for v, w := range wantLevel {
		if lv.Of(int32(v)) != w {
			t.Fatalf("vertex %d: level %d, want %d", v, lv.Of(int32(v)), w)
		}
	}
	if lv.Sorted() {
		t.Fatal("v0 has the top level but the lowest ID; order must permute")
	}
	checkLevels(t, g, lv)
}

func TestLevelsStagedUnsorted(t *testing.T) {
	// Staged and stage-monotone but IDs unsorted: the stage assignment is
	// kept and the traversal order permutes.
	b := NewBuilder(2, 1)
	hi := b.AddVertex(1)
	lo := b.AddVertex(0)
	b.AddEdge(lo, hi)
	g := b.Freeze()
	lv, err := g.Levels()
	if err != nil {
		t.Fatalf("Levels: %v", err)
	}
	if lv.Of(hi) != 1 || lv.Of(lo) != 0 || lv.Sorted() {
		t.Fatalf("levels = %v sorted=%v", lv.PerVertex(), lv.Sorted())
	}
	checkLevels(t, g, lv)
}

func TestLevelsNonMonotoneStagesFallBack(t *testing.T) {
	// A same-stage edge invalidates the stage assignment; the longest-path
	// leveling takes over (and still levels the graph).
	b := NewBuilder(2, 1)
	u := b.AddVertex(0)
	v := b.AddVertex(0)
	b.AddEdge(u, v)
	g := b.Freeze()
	lv, err := g.Levels()
	if err != nil {
		t.Fatalf("Levels: %v", err)
	}
	if lv.Of(u) != 0 || lv.Of(v) != 1 {
		t.Fatalf("levels = %v", lv.PerVertex())
	}
	checkLevels(t, g, lv)
}

func TestLevelsCycleError(t *testing.T) {
	b := NewBuilder(2, 2)
	u := b.AddVertex(NoStage)
	v := b.AddVertex(NoStage)
	b.AddEdge(u, v)
	b.AddEdge(v, u)
	g := b.Freeze()
	if _, err := g.Levels(); err == nil {
		t.Fatal("cyclic graph leveled")
	}
	// The error is cached too.
	if _, err := g.Levels(); err == nil {
		t.Fatal("cached result lost the error")
	}
}

func TestLevelsEmptyGraph(t *testing.T) {
	lv, err := NewBuilder(0, 0).Freeze().Levels()
	if err != nil {
		t.Fatalf("Levels: %v", err)
	}
	if lv.NumLevels() != 0 || !lv.Sorted() {
		t.Fatalf("empty graph: levels=%d sorted=%v", lv.NumLevels(), lv.Sorted())
	}
}

func TestLevelsMirrorDerived(t *testing.T) {
	// Staged chain: the mirror keeps vertex IDs, so its levels DEcrease in
	// ID order — levelable via the reflected assignment, with a permuted
	// traversal order.
	b := NewBuilder(4, 3)
	in := b.AddVertex(0)
	mid := b.AddVertex(1)
	out := b.AddVertex(2)
	b.AddEdge(in, mid)
	b.AddEdge(mid, out)
	b.MarkInput(in)
	b.MarkOutput(out)
	g := b.Freeze()
	m := g.Mirror()
	mlv, err := m.Levels()
	if err != nil {
		t.Fatalf("mirror Levels: %v", err)
	}
	lv, _ := g.Levels()
	maxLevel := int32(lv.NumLevels() - 1)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if mlv.Of(v) != maxLevel-lv.Of(v) {
			t.Fatalf("vertex %d: mirror level %d, want %d", v, mlv.Of(v), maxLevel-lv.Of(v))
		}
	}
	if mlv.Sorted() {
		t.Fatal("mirror of a forward chain should need a permutation")
	}
	checkLevels(t, m, mlv)

	// Mirror of an UNSTAGED graph is levelable too (derived, not staged).
	b = NewBuilder(3, 2)
	x := b.AddVertex(NoStage)
	y := b.AddVertex(NoStage)
	z := b.AddVertex(NoStage)
	b.AddEdge(x, y)
	b.AddEdge(y, z)
	b.MarkInput(x)
	b.MarkOutput(z)
	um := b.Freeze().Mirror()
	ulv, err := um.Levels()
	if err != nil {
		t.Fatalf("unstaged mirror Levels: %v", err)
	}
	checkLevels(t, um, ulv)
}
