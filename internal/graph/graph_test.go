package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"ftcsn/internal/rng"
)

// diamond builds the 4-vertex diamond: in -> a,b -> out.
func diamond() *Graph {
	b := NewBuilder(4, 4)
	in := b.AddVertex(0)
	a := b.AddVertex(1)
	c := b.AddVertex(1)
	out := b.AddVertex(2)
	b.AddEdge(in, a)
	b.AddEdge(in, c)
	b.AddEdge(a, out)
	b.AddEdge(c, out)
	b.MarkInput(in)
	b.MarkOutput(out)
	return b.Freeze()
}

func TestBuilderFreezeBasics(t *testing.T) {
	g := diamond()
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.OutDegree(0) != 2 || g.InDegree(3) != 2 {
		t.Fatalf("degrees wrong: out(0)=%d in(3)=%d", g.OutDegree(0), g.InDegree(3))
	}
	if !g.IsTerminal(0) || !g.IsTerminal(3) || g.IsTerminal(1) {
		t.Fatal("terminal marking wrong")
	}
}

func TestCSRConsistency(t *testing.T) {
	g := diamond()
	// Every edge e in OutEdges(v) must satisfy EdgeFrom(e) == v, and
	// symmetrically for InEdges.
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for _, e := range g.OutEdges(v) {
			if g.EdgeFrom(e) != v {
				t.Fatalf("edge %d in OutEdges(%d) but EdgeFrom=%d", e, v, g.EdgeFrom(e))
			}
		}
		for _, e := range g.InEdges(v) {
			if g.EdgeTo(e) != v {
				t.Fatalf("edge %d in InEdges(%d) but EdgeTo=%d", e, v, g.EdgeTo(e))
			}
		}
	}
}

func TestDepth(t *testing.T) {
	g := diamond()
	d, err := g.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Fatalf("depth = %d, want 2", d)
	}
}

func TestDepthLongestPath(t *testing.T) {
	// in -> a -> out and in -> out directly: depth must be 2, not 1.
	b := NewBuilder(3, 3)
	in := b.AddVertex(NoStage)
	a := b.AddVertex(NoStage)
	out := b.AddVertex(NoStage)
	b.AddEdge(in, a)
	b.AddEdge(a, out)
	b.AddEdge(in, out)
	b.MarkInput(in)
	b.MarkOutput(out)
	g := b.Freeze()
	d, err := g.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Fatalf("depth = %d, want 2", d)
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	b := NewBuilder(2, 2)
	u := b.AddVertex(NoStage)
	v := b.AddVertex(NoStage)
	b.AddEdge(u, v)
	b.AddEdge(v, u)
	g := b.Freeze()
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if _, err := g.Depth(); err == nil {
		t.Fatal("Depth on cyclic graph did not error")
	}
}

func TestMirror(t *testing.T) {
	g := diamond()
	m := g.Mirror()
	if m.NumEdges() != g.NumEdges() || m.NumVertices() != g.NumVertices() {
		t.Fatal("mirror changed counts")
	}
	// Edge IDs preserved with reversed endpoints.
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		if m.EdgeFrom(e) != g.EdgeTo(e) || m.EdgeTo(e) != g.EdgeFrom(e) {
			t.Fatalf("edge %d not reversed", e)
		}
	}
	// Terminals swapped.
	if m.Inputs()[0] != g.Outputs()[0] || m.Outputs()[0] != g.Inputs()[0] {
		t.Fatal("mirror did not swap terminals")
	}
	// Stages reversed: input (stage 0) becomes stage 2.
	if m.Stage(g.Inputs()[0]) != 2 {
		t.Fatalf("mirror stage = %d", m.Stage(g.Inputs()[0]))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMirrorInvolution(t *testing.T) {
	g := diamond()
	mm := g.Mirror().Mirror()
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		if mm.EdgeFrom(e) != g.EdgeFrom(e) || mm.EdgeTo(e) != g.EdgeTo(e) {
			t.Fatal("double mirror is not identity on edges")
		}
	}
}

func TestUndirectedDistances(t *testing.T) {
	g := diamond()
	d := g.UndirectedDistances(0)
	want := []int32{0, 1, 1, 2}
	for i, w := range want {
		if d[i] != w {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], w)
		}
	}
}

func TestUndirectedDistancesIgnoreDirection(t *testing.T) {
	// a -> b <- c: undirected distance a..c is 2 even though no directed path.
	b := NewBuilder(3, 2)
	va := b.AddVertex(NoStage)
	vb := b.AddVertex(NoStage)
	vc := b.AddVertex(NoStage)
	b.AddEdge(va, vb)
	b.AddEdge(vc, vb)
	g := b.Freeze()
	d := g.UndirectedDistances(va)
	if d[vc] != 2 {
		t.Fatalf("dist(a,c) = %d, want 2", d[vc])
	}
}

func TestReachableFromWithMask(t *testing.T) {
	g := diamond()
	// Block vertex 1 (a): out still reachable through 2 (b).
	seen := g.ReachableFrom(0, func(v int32) bool { return v != 1 })
	if !seen[3] {
		t.Fatal("out unreachable with one middle vertex blocked")
	}
	if seen[1] {
		t.Fatal("blocked vertex visited")
	}
	// Block both middles: out unreachable.
	seen = g.ReachableFrom(0, func(v int32) bool { return v != 1 && v != 2 })
	if seen[3] {
		t.Fatal("out reachable with both middles blocked")
	}
}

func TestValidateRejectsBadTerminals(t *testing.T) {
	b := NewBuilder(2, 1)
	u := b.AddVertex(NoStage)
	v := b.AddVertex(NoStage)
	b.AddEdge(u, v)
	b.MarkInput(v) // v has in-degree 1: invalid input
	b.MarkOutput(u)
	g := b.Freeze()
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted input with incoming edge")
	}
}

func TestValidateRejectsOverlap(t *testing.T) {
	b := NewBuilder(1, 0)
	v := b.AddVertex(NoStage)
	b.MarkInput(v)
	b.MarkOutput(v)
	g := b.Freeze()
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted input==output")
	}
}

func TestDOT(t *testing.T) {
	out := diamond().DOT("d")
	if !strings.Contains(out, "digraph d") || !strings.Contains(out, "v0 -> v1") {
		t.Fatalf("DOT output malformed: %q", out)
	}
}

func TestComputeStats(t *testing.T) {
	s := ComputeStats(diamond())
	if s.Edges != 4 || s.Depth != 2 || s.MaxDegree != 2 || s.Inputs != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if !strings.Contains(s.String(), "E=4") {
		t.Fatalf("stats string = %q", s.String())
	}
}

// Property test: on random DAGs (edges always from lower to higher ID),
// TopoOrder succeeds and respects all edges, and Depth is bounded by the
// vertex count.
func TestQuickRandomDAG(t *testing.T) {
	r := rng.New(1234)
	f := func(seed uint32) bool {
		rr := r.Split(uint64(seed))
		n := 2 + rr.Intn(40)
		b := NewBuilder(n, n*2)
		for i := 0; i < n; i++ {
			b.AddVertex(NoStage)
		}
		m := rr.Intn(3 * n)
		for i := 0; i < m; i++ {
			u := rr.Intn(n - 1)
			v := u + 1 + rr.Intn(n-u-1)
			b.AddEdge(int32(u), int32(v))
		}
		b.MarkInput(0)
		b.MarkOutput(int32(n - 1))
		g := b.Freeze()
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for e := int32(0); e < int32(g.NumEdges()); e++ {
			if pos[g.EdgeFrom(e)] >= pos[g.EdgeTo(e)] {
				return false
			}
		}
		d, err := g.Depth()
		return err == nil && d >= 0 && d < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	b := NewBuilder(1, 1)
	b.AddVertex(NoStage)
	b.AddEdge(0, 5)
}

func TestCSRAdjunctArrays(t *testing.T) {
	g := diamond()
	start, edges, heads := g.CSROut()
	if len(start) != g.NumVertices()+1 {
		t.Fatalf("CSROut start length %d", len(start))
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for idx := start[v]; idx < start[v+1]; idx++ {
			e := edges[idx]
			if g.EdgeFrom(e) != v {
				t.Fatalf("out slot %d: edge %d leaves %d, not %d", idx, e, g.EdgeFrom(e), v)
			}
			if heads[idx] != g.EdgeTo(e) {
				t.Fatalf("out slot %d: head %d != EdgeTo %d", idx, heads[idx], g.EdgeTo(e))
			}
			if g.OutSlot(e) != idx {
				t.Fatalf("OutSlot(%d) = %d, want %d", e, g.OutSlot(e), idx)
			}
		}
	}
	inStart, inEdges, tails := g.CSRIn()
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for idx := inStart[v]; idx < inStart[v+1]; idx++ {
			e := inEdges[idx]
			if g.EdgeTo(e) != v {
				t.Fatalf("in slot %d: edge %d enters %d, not %d", idx, e, g.EdgeTo(e), v)
			}
			if tails[idx] != g.EdgeFrom(e) {
				t.Fatalf("in slot %d: tail %d != EdgeFrom %d", idx, tails[idx], g.EdgeFrom(e))
			}
			if g.InSlot(e) != idx {
				t.Fatalf("InSlot(%d) = %d, want %d", e, g.InSlot(e), idx)
			}
		}
	}
}

func TestBuildAllowedBits(t *testing.T) {
	g := diamond()
	m := g.NumEdges()
	edgeOK := make([]bool, m)
	vertexOK := make([]bool, g.NumVertices())
	for e := range edgeOK {
		edgeOK[e] = e%2 == 0
	}
	for v := range vertexOK {
		vertexOK[v] = v%3 != 0
	}
	out := g.BuildOutAllowed(edgeOK, vertexOK, nil)
	in := g.BuildInAllowed(edgeOK, vertexOK, nil)
	for e := int32(0); e < int32(m); e++ {
		w, u := g.EdgeTo(e), g.EdgeFrom(e)
		wantOut := AdjBlocked * b2u(!edgeOK[e] || !vertexOK[w])
		wantOut |= AdjTerminal * b2u(g.IsTerminal(w))
		if got := out[g.OutSlot(e)]; got != wantOut {
			t.Fatalf("edge %d: OutAllowed %#x, want %#x", e, got, wantOut)
		}
		wantIn := AdjBlocked * b2u(!edgeOK[e] || !vertexOK[u])
		wantIn |= AdjTerminal * b2u(g.IsTerminal(u))
		if got := in[g.InSlot(e)]; got != wantIn {
			t.Fatalf("edge %d: InAllowed %#x, want %#x", e, got, wantIn)
		}
	}
	// Nil masks allow everything.
	for i, b := range g.BuildOutAllowed(nil, nil, nil) {
		if b&AdjBlocked != 0 {
			t.Fatalf("nil masks: slot %d blocked", i)
		}
	}
}

func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

func TestStageLayoutStaged(t *testing.T) {
	b := NewBuilder(8, 8)
	// Stage 0: v0,v1; stage 1: v2,v3,v4; stage 3: v5 (stage 2 empty).
	v0 := b.AddVertex(0)
	v1 := b.AddVertex(0)
	v2 := b.AddVertex(1)
	b.AddVertex(1)
	v4 := b.AddVertex(1)
	v5 := b.AddVertex(3)
	b.AddEdge(v0, v2)
	b.AddEdge(v1, v4)
	b.AddEdge(v2, v5) // stage 1 -> 3 skip is still strictly increasing
	g := b.Freeze()
	first, ok := g.StageLayout()
	if !ok {
		t.Fatal("staged sorted graph not recognized")
	}
	want := []int32{0, 2, 5, 5, 6}
	if len(first) != len(want) {
		t.Fatalf("first = %v, want %v", first, want)
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("first = %v, want %v", first, want)
		}
	}
	// Idempotent (cached) and shared.
	again, ok2 := g.StageLayout()
	if !ok2 || &again[0] != &first[0] {
		t.Fatal("StageLayout not cached")
	}
	_ = v5
}

func TestStageLayoutRejects(t *testing.T) {
	// Unstaged vertex.
	b := NewBuilder(2, 1)
	b.AddVertex(0)
	b.AddVertex(NoStage)
	if _, ok := b.Freeze().StageLayout(); ok {
		t.Fatal("unstaged graph accepted")
	}
	// IDs not sorted by stage.
	b = NewBuilder(2, 0)
	b.AddVertex(1)
	b.AddVertex(0)
	if _, ok := b.Freeze().StageLayout(); ok {
		t.Fatal("stage-unsorted graph accepted")
	}
	// Edge not strictly increasing in stage.
	b = NewBuilder(2, 1)
	u := b.AddVertex(0)
	v := b.AddVertex(0)
	b.AddEdge(u, v)
	if _, ok := b.Freeze().StageLayout(); ok {
		t.Fatal("same-stage edge accepted")
	}
	// Empty graph.
	if _, ok := NewBuilder(0, 0).Freeze().StageLayout(); ok {
		t.Fatal("empty graph accepted")
	}
}

func TestStageLayoutMirrorFallsBack(t *testing.T) {
	b := NewBuilder(4, 3)
	in := b.AddVertex(0)
	mid := b.AddVertex(1)
	out := b.AddVertex(2)
	b.AddEdge(in, mid)
	b.AddEdge(mid, out)
	b.MarkInput(in)
	b.MarkOutput(out)
	g := b.Freeze()
	if _, ok := g.StageLayout(); !ok {
		t.Fatal("forward chain should be stage-ordered")
	}
	// Mirror keeps vertex IDs but reverses stages, so IDs are stage-DEcreasing.
	if _, ok := g.Mirror().StageLayout(); ok {
		t.Fatal("mirror image should not be stage-ordered")
	}
}
