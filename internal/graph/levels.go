package graph

import "fmt"

// Levels is the cached topological-level assignment of a DAG: every vertex
// gets a level, every edge steps from a strictly lower level to a strictly
// higher one, and the vertices come with a level-sorted traversal order.
// It is the contract behind every one-pass sweep in the repository — the
// word-parallel access certifier (core.BatchAccessChecker), the routing
// feasibility prefilter and the reachability guide (route.ShardedEngine):
// visiting vertices in level order guarantees each vertex is expanded only
// after every edge into it has been seen.
//
// The assignment is chosen so that existing consumers keep their exact
// historical behavior:
//
//   - Fully staged, stage-monotone graphs (every vertex staged, every edge
//     strictly increasing in stage — all the MIN constructions) use the
//     stage assignment itself, which is a valid leveling. When vertex IDs
//     are already sorted by level the traversal order is the identity and
//     Order() returns nil, so sweeps iterate plain vertex IDs exactly as
//     the old stage-layout fast paths did — bit-identical tables fall out
//     by construction.
//   - Otherwise the level is the longest-path depth from the in-degree-0
//     sources (Kahn), and the order is the stable counting sort of
//     vertices by level.
//   - Mirror() images inherit the reflected assignment of their original
//     (see Graph.Mirror), so mirrors are levelable even when unstaged.
//
// Cyclic graphs have no leveling: Graph.Levels returns an error and every
// consumer falls back to its order-free path (per-source BFS, unguided
// probing). A Levels is immutable and shared; do not mutate the returned
// slices.
type Levels struct {
	level []int32 // per-vertex level
	first []int32 // len NumLevels()+1; order positions first[l]..first[l+1] hold level l
	order []int32 // level-sorted vertex permutation; nil when IDs are level-sorted
}

// NumLevels returns the number of levels (max level + 1; 0 for the empty
// graph). Intermediate levels may be empty under the stage- and
// mirror-derived assignments.
func (lv *Levels) NumLevels() int { return len(lv.first) - 1 }

// Of returns the level of v.
func (lv *Levels) Of(v int32) int32 { return lv.level[v] }

// PerVertex returns the per-vertex level array (shared; do not mutate).
func (lv *Levels) PerVertex() []int32 { return lv.level }

// First returns the per-level position ranges (shared; do not mutate):
// positions first[l]..first[l+1] of the traversal order hold the vertices
// of level l, with len(First()) = NumLevels()+1. When Sorted() holds,
// positions are vertex IDs — first[l] is the first vertex ID of level l,
// exactly the old stage-layout prefix sums.
func (lv *Levels) First() []int32 { return lv.first }

// Sorted reports whether vertex IDs are already level-sorted, i.e. the
// traversal order is the identity. Hot sweeps branch on this once and keep
// their historical plain-ID loops.
func (lv *Levels) Sorted() bool { return lv.order == nil }

// Order returns the level-sorted vertex permutation, or nil when the
// identity (see Sorted). Shared; do not mutate.
func (lv *Levels) Order() []int32 { return lv.order }

// At returns the vertex at traversal position pos.
func (lv *Levels) At(pos int32) int32 {
	if lv.order == nil {
		return pos
	}
	return lv.order[pos]
}

// Levels returns the graph's level assignment, computing it on first use
// (subsequent calls share the cached value), or an error if the graph has
// a directed cycle.
func (g *Graph) Levels() (*Levels, error) {
	g.levelsOnce.Do(func() {
		if g.levels == nil && g.levelsErr == nil {
			g.levels, g.levelsErr = computeLevels(g)
		}
	})
	return g.levels, g.levelsErr
}

func computeLevels(g *Graph) (*Levels, error) {
	n := len(g.stage)
	if lv := stageLeveling(g); lv != nil {
		return lv, nil
	}
	// Longest-path depth via Kahn's algorithm: a vertex's level is fixed
	// once all its in-edges have been relaxed, so levels strictly increase
	// along every edge.
	indeg := make([]int32, n)
	for _, v := range g.edgeTo {
		indeg[v]++
	}
	level := make([]int32, n)
	queue := make([]int32, 0, n)
	for v := int32(0); v < int32(n); v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	processed := 0
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		processed++
		d := level[v] + 1
		for _, e := range g.OutEdges(v) {
			w := g.edgeTo[e]
			if d > level[w] {
				level[w] = d
			}
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if processed != n {
		return nil, fmt.Errorf("graph: no leveling: directed cycle detected (%d of %d vertices leveled)", processed, n)
	}
	return levelsFromAssignment(level), nil
}

// stageLeveling returns the stage-derived leveling when every vertex is
// staged and every edge strictly increases stage, or nil otherwise.
func stageLeveling(g *Graph) *Levels {
	if len(g.stage) == 0 {
		return nil
	}
	for _, s := range g.stage {
		if s == NoStage {
			return nil
		}
	}
	for e := range g.edgeFrom {
		if g.stage[g.edgeFrom[e]] >= g.stage[g.edgeTo[e]] {
			return nil
		}
	}
	return levelsFromAssignment(g.stage)
}

// levelsFromAssignment builds the range and order metadata for a valid
// level assignment. The slice is retained (callers hand over ownership or
// an immutable array such as the stage table).
func levelsFromAssignment(level []int32) *Levels {
	n := len(level)
	maxLevel := int32(-1)
	sorted := true
	prev := int32(0)
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
		if l < prev {
			sorted = false
		}
		prev = l
	}
	first := make([]int32, maxLevel+2)
	for _, l := range level {
		first[l+1]++
	}
	for l := int32(0); l <= maxLevel; l++ {
		first[l+1] += first[l]
	}
	lv := &Levels{level: level, first: first}
	if sorted {
		return lv
	}
	// Stable counting sort by level: next[l] is the next free position of
	// level l, so equal-level vertices keep ascending-ID order.
	next := make([]int32, maxLevel+1)
	copy(next, first[:maxLevel+1])
	order := make([]int32, n)
	for v := int32(0); v < int32(n); v++ {
		l := level[v]
		order[next[l]] = v
		next[l]++
	}
	lv.order = order
	return lv
}

// mirrored returns the reflected assignment maxLevel−level for the mirror
// image: reversing every edge turns "strictly increasing" into "strictly
// decreasing", so the reflection is again a valid leveling.
func (lv *Levels) mirrored() *Levels {
	maxLevel := int32(lv.NumLevels() - 1)
	level := make([]int32, len(lv.level))
	for v, l := range lv.level {
		level[v] = maxLevel - l
	}
	return levelsFromAssignment(level)
}
