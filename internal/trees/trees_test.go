package trees

import (
	"testing"
	"testing/quick"

	"ftcsn/internal/rng"
)

// star builds a star with c leaves around one center.
func star(c int) *Tree {
	t := NewTree(0)
	center := t.AddVertex()
	for i := 0; i < c; i++ {
		leaf := t.AddVertex()
		t.AddEdge(center, leaf)
	}
	return t
}

func TestStarBasics(t *testing.T) {
	tr := star(5)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Leaves()) != 5 || tr.Degree(0) != 5 {
		t.Fatal("star malformed")
	}
}

func TestValidateRejectsDegree2(t *testing.T) {
	tr := NewTree(0)
	a := tr.AddVertex()
	b := tr.AddVertex()
	c := tr.AddVertex()
	tr.AddEdge(a, b)
	tr.AddEdge(b, c) // b has degree 2
	if err := tr.Validate(); err == nil {
		t.Fatal("accepted internal degree-2 vertex")
	}
}

func TestValidateRejectsForest(t *testing.T) {
	tr := NewTree(2) // two isolated vertices
	if err := tr.Validate(); err == nil {
		t.Fatal("accepted disconnected graph")
	}
}

func TestRandomLeafyValid(t *testing.T) {
	r := rng.New(8)
	for _, l := range []int{3, 10, 50, 200} {
		tr := RandomLeafy(l, r)
		if err := tr.Validate(); err != nil {
			t.Fatalf("l=%d: %v", l, err)
		}
		if got := len(tr.Leaves()); got < l {
			t.Fatalf("l=%d: only %d leaves", l, got)
		}
	}
}

func TestExtractOnStar(t *testing.T) {
	// Star with c leaves: paths of length 2 pair leaves; max matching of
	// edges = ⌊c/2⌋ paths.
	tr := star(6)
	paths := ExtractShortPaths(tr)
	if err := VerifyPaths(tr, paths); err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("star-6 extracted %d paths, want 3", len(paths))
	}
}

func TestExtractOnStarOdd(t *testing.T) {
	tr := star(7)
	paths := ExtractShortPaths(tr)
	if err := VerifyPaths(tr, paths); err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("star-7 extracted %d paths, want 3", len(paths))
	}
}

func TestExtractBinaryCaterpillar(t *testing.T) {
	// Two centers joined, each with 2 leaves: 4 leaves; leaf pairs at each
	// center give 2 paths of length 2.
	tr := NewTree(0)
	c1 := tr.AddVertex()
	c2 := tr.AddVertex()
	tr.AddEdge(c1, c2)
	for i := 0; i < 2; i++ {
		tr.AddEdge(c1, tr.AddVertex())
		tr.AddEdge(c2, tr.AddVertex())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	paths := ExtractShortPaths(tr)
	if err := VerifyPaths(tr, paths); err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("extracted %d paths, want ≥ 2", len(paths))
	}
}

func TestLemma1BoundOnRandomTrees(t *testing.T) {
	r := rng.New(21)
	for _, l := range []int{10, 50, 100, 500, 1000} {
		tr := RandomLeafy(l, r)
		leaves := len(tr.Leaves())
		paths := ExtractShortPaths(tr)
		if err := VerifyPaths(tr, paths); err != nil {
			t.Fatalf("l=%d: %v", l, err)
		}
		if len(paths) < Lemma1Bound(leaves) {
			t.Fatalf("l=%d: %d paths < guaranteed %d", leaves, len(paths), Lemma1Bound(leaves))
		}
	}
}

func TestRemarkBoundUsuallyMet(t *testing.T) {
	// The improved l/4 bound [L]: our greedy should reach it on most
	// random trees (measured, not guaranteed — this documents the margin).
	r := rng.New(33)
	met := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		tr := RandomLeafy(200, r)
		leaves := len(tr.Leaves())
		paths := ExtractShortPaths(tr)
		if len(paths) >= RemarkBound(leaves) {
			met++
		}
	}
	if met < trials/2 {
		t.Fatalf("l/4 bound met on only %d/%d random trees", met, trials)
	}
}

func TestBadLeavesBound(t *testing.T) {
	r := rng.New(44)
	for _, l := range []int{20, 100, 400} {
		tr := RandomLeafy(l, r)
		leaves := len(tr.Leaves())
		bad := len(BadLeaves(tr))
		if 7*bad > 6*leaves {
			t.Fatalf("l=%d: %d bad leaves exceeds 6l/7", leaves, bad)
		}
	}
}

func TestBadLeavesOnStar(t *testing.T) {
	// Star: every leaf is within distance 2 of another — no bad leaves.
	if len(BadLeaves(star(5))) != 0 {
		t.Fatal("star has bad leaves")
	}
}

func TestDeepTreeHasBadLeaves(t *testing.T) {
	// A "broom": long path of internal degree-3 vertices (each with one
	// pendant... pendant leaves would be close to each other; instead make
	// a binary tree of depth 4: sibling leaves are at distance 2 → good.
	// To manufacture bad leaves, build a spider with legs of length 4:
	// internal path vertices need degree ≥ 3 though. Use a tree where each
	// leg vertex carries a sub-star far away... Simplest bad-leaf witness:
	// complete binary tree of depth d has all leaves at pairwise distance
	// 2 at the bottom — still good. Bad leaves need isolation ≥ 4, which
	// requires degree-2 chains that Lemma 1's hypothesis forbids, OR a
	// leaf hanging off a high-degree hub whose other branches descend ≥ 3
	// more levels before leafing. Build exactly that.
	tr := NewTree(0)
	hub := tr.AddVertex()
	lonely := tr.AddVertex()
	tr.AddEdge(hub, lonely) // candidate bad leaf at the hub
	// Two branches of depth 3 whose leaves are all ≥ 4 away from lonely.
	for b := 0; b < 2; b++ {
		x := tr.AddVertex()
		tr.AddEdge(hub, x)
		// x gets two children, each with two leaf children: depth 3.
		for c := 0; c < 2; c++ {
			y := tr.AddVertex()
			tr.AddEdge(x, y)
			for d := 0; d < 2; d++ {
				tr.AddEdge(y, tr.AddVertex())
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := BadLeaves(tr)
	found := false
	for _, b := range bad {
		if b == lonely {
			found = true
		}
	}
	if !found {
		t.Fatalf("lonely leaf not detected as bad; bad = %v", bad)
	}
}

func TestReduceHandlesHighDegree(t *testing.T) {
	// High-degree star must still extract ⌊c/2⌋ paths after reduction.
	for _, c := range []int{10, 17, 64} {
		tr := star(c)
		paths := ExtractShortPaths(tr)
		if err := VerifyPaths(tr, paths); err != nil {
			t.Fatalf("star-%d: %v", c, err)
		}
		// After degree-3 reduction the star becomes a caterpillar chain;
		// adjacent-slot leaves pair up. Guarantee at least the Lemma bound
		// and at least c/6 in practice.
		if len(paths) < c/6 {
			t.Fatalf("star-%d: only %d paths", c, len(paths))
		}
	}
}

func TestQuickExtractNeverInvalid(t *testing.T) {
	r := rng.New(55)
	f := func(seed uint16) bool {
		tr := RandomLeafy(5+int(seed%300), r.Split(uint64(seed)))
		paths := ExtractShortPaths(tr)
		if VerifyPaths(tr, paths) != nil {
			return false
		}
		return len(paths) >= Lemma1Bound(len(tr.Leaves()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
