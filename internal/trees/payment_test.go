package trees

// Diagnostics of the payment arguments illustrated by the paper's
// Figs. 1–3: the structure around bad leaves and the accounting bounds
// used in the proof of Lemma 1.

import (
	"testing"

	"ftcsn/internal/rng"
)

// internalWithinDistance counts internal (degree ≥ 2) vertices within
// tree distance maxD of src.
func internalWithinDistance(t *Tree, src int32, maxD int) int {
	type qe struct {
		v int32
		d int
	}
	seen := map[int32]bool{src: true}
	queue := []qe{{src, 0}}
	count := 0
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		if cur.d >= maxD {
			continue
		}
		for _, h := range t.adj[cur.v] {
			if seen[h.to] {
				continue
			}
			seen[h.to] = true
			if t.Degree(h.to) > 1 {
				count++
			}
			queue = append(queue, qe{h.to, cur.d + 1})
		}
	}
	return count
}

func TestFig1BadLeafNeighborhood(t *testing.T) {
	// Fig. 1: a bad leaf in a DEGREE-3 tree pays one dollar to each of the
	// (at most) seven internal nodes within distance 3. Build the Fig. 1
	// witness exactly: a leaf on a hub whose branches descend 3 levels.
	tr := NewTree(0)
	hub := tr.AddVertex()
	lonely := tr.AddVertex()
	tr.AddEdge(hub, lonely)
	for b := 0; b < 2; b++ {
		x := tr.AddVertex()
		tr.AddEdge(hub, x)
		for c := 0; c < 2; c++ {
			y := tr.AddVertex()
			tr.AddEdge(x, y)
			for d := 0; d < 2; d++ {
				tr.AddEdge(y, tr.AddVertex())
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := BadLeaves(tr)
	if len(bad) != 1 || bad[0] != lonely {
		t.Fatalf("bad leaves = %v, want just the lonely leaf", bad)
	}
	// The lonely leaf sees exactly 7 internal nodes within distance 3:
	// hub, 2 children, 4 grandchildren.
	if got := internalWithinDistance(tr, lonely, 3); got != 7 {
		t.Fatalf("internal nodes within 3 = %d, want 7 (Fig. 1)", got)
	}
}

func TestFig1BoundOnRandomTrees(t *testing.T) {
	// In arbitrary-degree trees the count can differ, but for every bad
	// leaf it is at least 1 (its own neighbor) — and after the degree-3
	// reduction of the proof it is at most 7. Verify the raw-tree bound
	// that every bad leaf has ≥ 1 and that bad leaves have no leaf within
	// distance 3 (the defining property).
	r := rng.New(0xF16)
	for trial := 0; trial < 10; trial++ {
		tr := RandomLeafy(150, r)
		for _, b := range BadLeaves(tr) {
			if nearestLeafWithin(tr, b, 3) >= 0 {
				t.Fatal("bad leaf has a close leaf")
			}
			if internalWithinDistance(tr, b, 3) < 1 {
				t.Fatal("bad leaf sees no internal nodes")
			}
		}
	}
}

func TestGoodLeavesHaveCloseLeaf(t *testing.T) {
	r := rng.New(0xF17)
	tr := RandomLeafy(100, r)
	bad := map[int32]bool{}
	for _, b := range BadLeaves(tr) {
		bad[b] = true
	}
	for _, leaf := range tr.Leaves() {
		if bad[leaf] {
			continue
		}
		if nearestLeafWithin(tr, leaf, 3) < 0 {
			t.Fatalf("good leaf %d has no leaf within distance 3", leaf)
		}
	}
}

func TestExtractionCoversGoodLeafFraction(t *testing.T) {
	// The proof's chain: ≥ l/7 good leaves, a maximal path set touches at
	// least 1/6 of them as endpoints... operationally: extracted paths ≥
	// (good leaves)/6 / ... we check the concrete m/42-style consequence:
	// extracted ≥ good/42 (much weaker than observed).
	r := rng.New(0xF18)
	for trial := 0; trial < 10; trial++ {
		tr := RandomLeafy(300, r)
		leaves := len(tr.Leaves())
		good := leaves - len(BadLeaves(tr))
		paths := ExtractShortPaths(tr)
		if len(paths)*42 < good {
			t.Fatalf("paths %d below good/42 = %d", len(paths), good/42)
		}
	}
}

func TestPathEndpointsAreDistinctLeaves(t *testing.T) {
	// No leaf serves as endpoint of two extracted paths (each leaf has one
	// edge; edge-disjointness forces endpoint-disjointness).
	r := rng.New(0xF19)
	tr := RandomLeafy(200, r)
	paths := ExtractShortPaths(tr)
	seen := map[int32]bool{}
	for _, p := range paths {
		if seen[p.A] || seen[p.B] {
			t.Fatal("leaf reused as endpoint")
		}
		seen[p.A] = true
		seen[p.B] = true
	}
}
