// Package trees implements Lemma 1 / Corollary 1 of Pippenger & Lin and
// its payment-argument diagnostics (Figs. 1–3):
//
//	A tree with l leaves, in which every internal node has degree ≥ 3,
//	contains at least l/42 edge-disjoint paths, each joining two leaves
//	and each having length at most 3.
//
// The lemma is the combinatorial engine of the size lower bound (Lemma 2 /
// Theorem 1): BFS forests around network inputs are turned into many short
// edge-disjoint leaf-leaf paths, each of which closed failures can short
// independently. The remark after the lemma says the constant improves
// from 1/42 to 1/4 with a finer analysis [L]; the experiments measure the
// actual ratio on random trees (E2).
//
// The extraction algorithm follows the proof constructively: reduce
// internal nodes to degree exactly 3 by splitting high-degree nodes into
// chains of virtual nodes, greedily grow a maximal set of edge-disjoint
// leaf-leaf paths of length ≤ 3, and map back (virtual edges contract, so
// mapped paths only get shorter).
package trees

import (
	"fmt"

	"ftcsn/internal/rng"
)

// Tree is an undirected tree with explicit edge IDs.
type Tree struct {
	adj   [][]halfEdge
	edges [][2]int32
}

type halfEdge struct {
	to   int32
	edge int32
}

// NewTree returns a tree with n isolated vertices (edges added later must
// keep it a tree; Validate checks).
func NewTree(n int) *Tree {
	return &Tree{adj: make([][]halfEdge, n)}
}

// AddVertex appends a vertex and returns its ID.
func (t *Tree) AddVertex() int32 {
	t.adj = append(t.adj, nil)
	return int32(len(t.adj) - 1)
}

// AddEdge joins u and v and returns the edge ID.
func (t *Tree) AddEdge(u, v int32) int32 {
	id := int32(len(t.edges))
	t.edges = append(t.edges, [2]int32{u, v})
	t.adj[u] = append(t.adj[u], halfEdge{v, id})
	t.adj[v] = append(t.adj[v], halfEdge{u, id})
	return id
}

// NumVertices returns the vertex count.
func (t *Tree) NumVertices() int { return len(t.adj) }

// NumEdges returns the edge count.
func (t *Tree) NumEdges() int { return len(t.edges) }

// Degree returns the degree of v.
func (t *Tree) Degree(v int32) int { return len(t.adj[v]) }

// Leaves returns all degree-1 vertices.
func (t *Tree) Leaves() []int32 {
	var ls []int32
	for v := range t.adj {
		if len(t.adj[v]) == 1 {
			ls = append(ls, int32(v))
		}
	}
	return ls
}

// Validate checks that the structure is a single tree (connected, acyclic)
// and that every internal (non-leaf) vertex has degree ≥ 3, Lemma 1's
// hypothesis.
func (t *Tree) Validate() error {
	n := t.NumVertices()
	if n == 0 {
		return fmt.Errorf("trees: empty tree")
	}
	if t.NumEdges() != n-1 {
		return fmt.Errorf("trees: %d edges for %d vertices", t.NumEdges(), n)
	}
	seen := make([]bool, n)
	queue := []int32{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, h := range t.adj[v] {
			if !seen[h.to] {
				seen[h.to] = true
				count++
				queue = append(queue, h.to)
			}
		}
	}
	if count != n {
		return fmt.Errorf("trees: not connected (%d of %d reachable)", count, n)
	}
	for v := range t.adj {
		if d := len(t.adj[v]); d == 2 {
			return fmt.Errorf("trees: internal vertex %d has degree 2", v)
		}
	}
	return nil
}

// RandomLeafy generates a random tree with every internal vertex of degree
// ≥ 3 and at least targetLeaves leaves: starting from a 3-star it
// repeatedly either attaches a new leaf to a random internal vertex or
// expands a random leaf into an internal vertex with two fresh leaves.
func RandomLeafy(targetLeaves int, r *rng.RNG) *Tree {
	if targetLeaves < 3 {
		targetLeaves = 3
	}
	t := NewTree(0)
	center := t.AddVertex()
	var leaves []int32
	var internals []int32
	internals = append(internals, center)
	for i := 0; i < 3; i++ {
		leaf := t.AddVertex()
		t.AddEdge(center, leaf)
		leaves = append(leaves, leaf)
	}
	for len(leaves) < targetLeaves {
		if r.Bernoulli(0.5) {
			// Attach a new leaf to a random internal vertex.
			host := internals[r.Intn(len(internals))]
			leaf := t.AddVertex()
			t.AddEdge(host, leaf)
			leaves = append(leaves, leaf)
		} else {
			// Expand a random leaf into an internal vertex with two
			// children; its degree becomes 1+2 = 3.
			li := r.Intn(len(leaves))
			v := leaves[li]
			leaves[li] = leaves[len(leaves)-1]
			leaves = leaves[:len(leaves)-1]
			internals = append(internals, v)
			for i := 0; i < 2; i++ {
				leaf := t.AddVertex()
				t.AddEdge(v, leaf)
				leaves = append(leaves, leaf)
			}
		}
	}
	return t
}

// LeafPath is an extracted path joining two leaves.
type LeafPath struct {
	A, B  int32   // the two leaf endpoints
	Edges []int32 // original edge IDs, 1 ≤ len ≤ 3
}

// distanceUpTo3 finds leaves within distance 3 of leaf src in the reduced
// tree, returning candidate (otherLeaf, edgeList) pairs.
type candidate struct {
	a, b  int32
	edges []int32
}

// reduced is the degree-3 reduction of a tree: internal vertices of degree
// d > 3 become chains of d−2 degree-3 virtual vertices joined by virtual
// edges (edge ID −1 marks virtual; real edges keep their original IDs).
// orig maps reduced vertices back to original ones (−1 for chain nodes).
type reduced struct {
	adj    [][]halfEdge
	isLeaf []bool
	orig   []int32
}

func reduce(t *Tree) *reduced {
	rd := &reduced{}
	// Map original vertices to their first reduced vertex; high-degree
	// vertices expand into chains lazily.
	n := t.NumVertices()
	first := make([]int32, n)
	for v := 0; v < n; v++ {
		first[v] = int32(len(rd.adj))
		rd.adj = append(rd.adj, nil)
		rd.isLeaf = append(rd.isLeaf, t.Degree(int32(v)) == 1)
		rd.orig = append(rd.orig, int32(v))
		d := t.Degree(int32(v))
		if d > 3 {
			// Chain of d−2 nodes: node j handles attachment slots.
			for j := 1; j < d-2; j++ {
				rd.adj = append(rd.adj, nil)
				rd.isLeaf = append(rd.isLeaf, false)
				rd.orig = append(rd.orig, -1)
				// Virtual edge between consecutive chain nodes.
				a := first[v] + int32(j-1)
				b := first[v] + int32(j)
				rd.adj[a] = append(rd.adj[a], halfEdge{b, -1})
				rd.adj[b] = append(rd.adj[b], halfEdge{a, -1})
			}
		}
	}
	// Attach original edges: vertex v's i-th incident edge goes to chain
	// slot: first node takes 2 slots, middle nodes 1, last node 2.
	slotNode := func(v int32, i int) int32 {
		d := t.Degree(v)
		if d <= 3 {
			return first[v]
		}
		// d > 3: chain of c = d−2 nodes; slots: node 0 → edges 0,1;
		// node j (1..c−2) → edge j+1; node c−1 → edges d−2, d−1.
		c := d - 2
		switch {
		case i <= 1:
			return first[v]
		case i >= d-2:
			return first[v] + int32(c-1)
		default:
			return first[v] + int32(i-1)
		}
	}
	slotIdx := make([]int, n) // next unassigned incidence per vertex
	for id, e := range t.edges {
		u, v := e[0], e[1]
		ru := slotNode(u, slotIdx[u])
		rv := slotNode(v, slotIdx[v])
		slotIdx[u]++
		slotIdx[v]++
		rd.adj[ru] = append(rd.adj[ru], halfEdge{rv, int32(id)})
		rd.adj[rv] = append(rd.adj[rv], halfEdge{ru, int32(id)})
	}
	return rd
}

// ExtractShortPaths returns a maximal set of edge-disjoint leaf-leaf paths
// of length ≤ 3 (measured in original edges), following the proof of
// Lemma 1. The returned set has at least ⌈l/42⌉ paths for every valid
// tree with l ≥ 42... for every valid tree (Lemma 1's guarantee; the
// observed ratio is far better, see experiment E2).
func ExtractShortPaths(t *Tree) []LeafPath {
	rd := reduce(t)
	usedEdge := make([]bool, t.NumEdges())
	usedVirtual := make(map[[2]int32]bool) // virtual edges keyed by endpoints
	var out []LeafPath

	canUse := func(from int32, h halfEdge) bool {
		if h.edge >= 0 {
			return !usedEdge[h.edge]
		}
		a, b := from, h.to
		if a > b {
			a, b = b, a
		}
		return !usedVirtual[[2]int32{a, b}]
	}
	take := func(from int32, h halfEdge) {
		if h.edge >= 0 {
			usedEdge[h.edge] = true
			return
		}
		a, b := from, h.to
		if a > b {
			a, b = b, a
		}
		usedVirtual[[2]int32{a, b}] = true
	}

	// DFS from each leaf over unused reduced edges; on reaching another
	// leaf within the depth budget, claim the path. Two passes — depth 2
	// first, then depth 3 — so sibling leaves pair up before longer paths
	// consume shared edges (this markedly improves the extracted count on
	// caterpillar-like trees while remaining maximal). After both passes
	// the set is maximal: any remaining short leaf pair shares a used edge.
	extract := func(v int32, maxDepth int) bool {
		var walk func(u int32, depth int, hops []halfEdge, froms []int32) bool
		walk = func(u int32, depth int, hops []halfEdge, froms []int32) bool {
			if depth > 0 && rd.isLeaf[u] && u != v {
				// Count only ORIGINAL edges toward the length bound.
				var orig []int32
				for _, h := range hops {
					if h.edge >= 0 {
						orig = append(orig, h.edge)
					}
				}
				if len(orig) == 0 || len(orig) > 3 {
					return false
				}
				for i, h := range hops {
					take(froms[i], h)
				}
				out = append(out, LeafPath{A: rd.orig[v], B: rd.orig[u], Edges: orig})
				return true
			}
			if depth == maxDepth {
				return false
			}
			for _, h := range rd.adj[u] {
				if !canUse(u, h) {
					continue
				}
				// Do not walk back along the edge we arrived on.
				if len(hops) > 0 && h.to == froms[len(froms)-1] {
					continue
				}
				if walk(h.to, depth+1, append(hops, h), append(froms, u)) {
					return true
				}
			}
			return false
		}
		return walk(v, 0, nil, nil)
	}
	claimed := make([]bool, len(rd.adj))
	for _, maxDepth := range []int{2, 3} {
		for v := int32(0); v < int32(len(rd.adj)); v++ {
			if !rd.isLeaf[v] || claimed[v] {
				continue
			}
			if extract(v, maxDepth) {
				claimed[v] = true
			}
		}
	}
	return out
}

// VerifyPaths checks that the extracted set is valid: each path joins two
// distinct leaves, uses 1–3 edges forming a simple path in the tree, and
// no edge appears in two paths.
func VerifyPaths(t *Tree, paths []LeafPath) error {
	used := make(map[int32]bool)
	for pi, p := range paths {
		if p.A == p.B {
			return fmt.Errorf("trees: path %d joins a leaf to itself", pi)
		}
		if t.Degree(p.A) != 1 || t.Degree(p.B) != 1 {
			return fmt.Errorf("trees: path %d endpoint is not a leaf", pi)
		}
		if len(p.Edges) < 1 || len(p.Edges) > 3 {
			return fmt.Errorf("trees: path %d has %d edges", pi, len(p.Edges))
		}
		for _, e := range p.Edges {
			if used[e] {
				return fmt.Errorf("trees: edge %d reused by path %d", e, pi)
			}
			used[e] = true
		}
		// The edge set must form a connected path joining A and B: walk it.
		deg := map[int32]int{}
		for _, e := range p.Edges {
			deg[t.edges[e][0]]++
			deg[t.edges[e][1]]++
		}
		if deg[p.A] != 1 || deg[p.B] != 1 {
			return fmt.Errorf("trees: path %d edges do not terminate at its leaves", pi)
		}
		for v, d := range deg {
			if d > 2 {
				return fmt.Errorf("trees: path %d branches at %d", pi, v)
			}
		}
	}
	return nil
}

// BadLeaves returns the leaves with no other leaf within tree distance 3
// — the "bad" leaves of Fig. 1. The proof shows there are at most 6l/7 of
// them.
func BadLeaves(t *Tree) []int32 {
	var bad []int32
	for _, leaf := range t.Leaves() {
		if nearestLeafWithin(t, leaf, 3) < 0 {
			bad = append(bad, leaf)
		}
	}
	return bad
}

// nearestLeafWithin returns another leaf at distance ≤ maxD from src, or
// −1. BFS bounded by maxD.
func nearestLeafWithin(t *Tree, src int32, maxD int) int32 {
	type qe struct {
		v int32
		d int
	}
	seen := map[int32]bool{src: true}
	queue := []qe{{src, 0}}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		if cur.d >= maxD {
			continue
		}
		for _, h := range t.adj[cur.v] {
			if seen[h.to] {
				continue
			}
			seen[h.to] = true
			if t.Degree(h.to) == 1 {
				return h.to
			}
			queue = append(queue, qe{h.to, cur.d + 1})
		}
	}
	return -1
}

// Lemma1Bound returns the guaranteed minimum number of extracted paths for
// a tree with l leaves: ⌊l/42⌋ (the paper's statement is ≥ l/42).
func Lemma1Bound(l int) int { return l / 42 }

// RemarkBound returns the improved l/4 bound the paper attributes to Lin
// [L]; experiment E2 measures which bound random trees actually meet.
func RemarkBound(l int) int { return l / 4 }
