package trees

import (
	"fmt"

	"ftcsn/internal/graph"
)

// Network is the doubled-tree connector on n = 2^k terminals: a complete
// binary up-tree from the n leaf inputs to the root, mirrored by a
// complete binary down-tree from the root to n leaf outputs. It is the
// minimal-size connector (Θ(n) switches) and the degenerate extreme of the
// fault-tolerance spectrum the experiments chart: every input–output pair
// has exactly ONE path, all 2^k·2^k of them through the root, so a single
// switch failure near the root disconnects everything and at most one
// circuit can be live at a time. Lemma 1 works with exactly such trees —
// here the tree is doubled into a routable staged DAG so the zoo can run
// the identical certifier and churn machinery on it.
type Network struct {
	K       int
	N       int
	Columns int // 2k+1 stages: leaves up to the root and back down
	G       *graph.Graph
}

// Doubled builds the doubled-tree connector for n = 2^k.
func Doubled(k int) (*Network, error) {
	if k < 1 || k > 20 {
		return nil, fmt.Errorf("trees: doubled k=%d out of range [1,20]", k)
	}
	n := 1 << uint(k)
	b := graph.NewBuilder(4*n-2, 4*n-4)
	// Up-tree: stage s holds 2^(k−s) vertices; vertex (s,i) is the parent
	// of (s−1,2i) and (s−1,2i+1). Stage k is the root.
	up := make([]int32, k+1)
	for s := 0; s <= k; s++ {
		up[s] = b.AddVertices(int32(s), n>>uint(s))
	}
	for s := 1; s <= k; s++ {
		for i := int32(0); i < int32(n>>uint(s)); i++ {
			b.AddEdge(up[s-1]+2*i, up[s]+i)
			b.AddEdge(up[s-1]+2*i+1, up[s]+i)
		}
	}
	// Down-tree: stage k+s holds 2^s vertices; vertex (s−1,i) feeds
	// (s,2i) and (s,2i+1). Stage 2k holds the n leaf outputs.
	down := make([]int32, k+1)
	down[0] = up[k] // the root is shared
	for s := 1; s <= k; s++ {
		down[s] = b.AddVertices(int32(k+s), 1<<uint(s))
	}
	for s := 1; s <= k; s++ {
		for i := int32(0); i < int32(1<<uint(s-1)); i++ {
			b.AddEdge(down[s-1]+i, down[s]+2*i)
			b.AddEdge(down[s-1]+i, down[s]+2*i+1)
		}
	}
	for i := int32(0); i < int32(n); i++ {
		b.MarkInput(up[0] + i)
		b.MarkOutput(down[k] + i)
	}
	return &Network{K: k, N: n, Columns: 2*k + 1, G: b.Freeze()}, nil
}
