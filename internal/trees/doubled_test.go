package trees_test

import (
	"testing"

	"ftcsn/internal/core"
	"ftcsn/internal/route"
	"ftcsn/internal/trees"
)

func TestDoubledStructure(t *testing.T) {
	for k := 1; k <= 5; k++ {
		nw, err := trees.Doubled(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		n := 1 << uint(k)
		if nw.G.NumVertices() != 4*n-3 {
			t.Fatalf("k=%d: %d vertices, want %d", k, nw.G.NumVertices(), 4*n-3)
		}
		if nw.G.NumEdges() != 4*n-4 {
			t.Fatalf("k=%d: %d edges, want %d", k, nw.G.NumEdges(), 4*n-4)
		}
		lv, err := nw.G.Levels()
		if err != nil {
			t.Fatalf("k=%d: levels: %v", k, err)
		}
		if lv.NumLevels() != nw.Columns {
			t.Fatalf("k=%d: %d levels, want %d", k, lv.NumLevels(), nw.Columns)
		}
		if !lv.Sorted() {
			t.Fatalf("k=%d: vertex IDs not level-sorted", k)
		}
		if _, err := core.WrapGraph(nw.G); err != nil {
			t.Fatalf("k=%d: WrapGraph: %v", k, err)
		}
	}
}

// TestDoubledUniquePath pins the connector's defining property: every
// input–output pair is routable on an idle fault-free network, the path
// has exactly 2k+1 hops through the root, and — since all paths share the
// root — no second circuit can coexist with a live one.
func TestDoubledUniquePath(t *testing.T) {
	nw, err := trees.Doubled(3)
	if err != nil {
		t.Fatal(err)
	}
	rt := route.NewRouter(nw.G)
	ins, outs := nw.G.Inputs(), nw.G.Outputs()
	for _, in := range ins {
		for _, out := range outs {
			path, err := rt.Connect(in, out)
			if err != nil {
				t.Fatalf("connect (%d,%d): %v", in, out, err)
			}
			if len(path) != nw.Columns {
				t.Fatalf("connect (%d,%d): path length %d, want %d", in, out, len(path), nw.Columns)
			}
			// A second circuit must be blocked while this one holds the root.
			in2, out2 := ins[(1+indexOf(ins, in))%len(ins)], outs[(1+indexOf(outs, out))%len(outs)]
			if _, err := rt.Connect(in2, out2); err == nil {
				t.Fatalf("second circuit (%d,%d) unexpectedly routed around the root", in2, out2)
			}
			if err := rt.Disconnect(in, out); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func indexOf(s []int32, v int32) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}
