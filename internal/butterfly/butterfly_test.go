package butterfly

import (
	"testing"

	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
	"ftcsn/internal/rng"
)

func TestStructure(t *testing.T) {
	nw, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if nw.N != 8 || nw.Columns != 4 {
		t.Fatalf("N=%d Columns=%d", nw.N, nw.Columns)
	}
	if nw.G.NumEdges() != 3*16 {
		t.Fatalf("edges = %d", nw.G.NumEdges())
	}
	if err := nw.G.Validate(); err != nil {
		t.Fatal(err)
	}
	d, _ := nw.G.Depth()
	if d != 3 {
		t.Fatalf("depth = %d", d)
	}
}

func TestNewRejects(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("accepted k=0")
	}
}

func TestUniquePathValid(t *testing.T) {
	nw, _ := New(4)
	for in := 0; in < nw.N; in += 3 {
		for out := 0; out < nw.N; out += 5 {
			path := nw.UniquePath(in, out)
			if path[0] != in || path[len(path)-1] != out {
				t.Fatalf("endpoints wrong for %d->%d: %v", in, out, path)
			}
			for tr := 0; tr < nw.K; tr++ {
				bit := 1 << uint(nw.K-1-tr)
				from, to := path[tr], path[tr+1]
				if to != from && to != from^bit {
					t.Fatalf("illegal transition %d->%d at %d", from, to, tr)
				}
			}
		}
	}
}

func TestUniquePathIsUnique(t *testing.T) {
	// Count directed paths between a terminal pair by flow:
	// the butterfly must have exactly one (it's a connector, not more).
	nw, _ := New(3)
	in := nw.G.Inputs()[2]
	out := nw.G.Outputs()[5]
	paths := countPaths(nw.G, in, out)
	if paths != 1 {
		t.Fatalf("found %d paths between a butterfly pair, want 1", paths)
	}
}

// countPaths counts directed in→out paths by DP over the DAG.
func countPaths(g *graph.Graph, src, dst int32) int {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	cnt := make([]int, g.NumVertices())
	cnt[src] = 1
	for _, v := range order {
		if cnt[v] == 0 {
			continue
		}
		for _, e := range g.OutEdges(v) {
			cnt[g.EdgeTo(e)] += cnt[v]
		}
	}
	return cnt[dst]
}

func TestSingleFaultDisconnectsPair(t *testing.T) {
	// Opening any switch on the unique path must isolate the pair — the
	// defining fragility of the butterfly.
	nw, _ := New(3)
	path := nw.UniquePath(2, 6)
	vs := nw.PathVertices(path)
	inst := fault.NewInstance(nw.G)
	// Find the switch between the first two path vertices and open it.
	var target int32 = -1
	for _, e := range nw.G.OutEdges(vs[0]) {
		if nw.G.EdgeTo(e) == vs[1] {
			target = e
		}
	}
	if target < 0 {
		t.Fatal("path edge missing")
	}
	inst.SetState(target, fault.Open)
	// Opening the first switch of input 2's unique path disconnects it from
	// every output behind that subtree; IsolatedPair must report input 2.
	in, out := inst.IsolatedPair()
	if in != vs[0] {
		t.Fatalf("expected isolation at input %d, got pair (%d,%d)", vs[0], in, out)
	}
	if out < 0 {
		t.Fatal("no isolated output reported")
	}
}

func TestButterflyFrailerThanBenes(t *testing.T) {
	// At equal n and ε the butterfly (unique paths) must fail at least as
	// often as networks with path diversity. Here: failure rate is high at
	// modest ε.
	nw, _ := New(5)
	inst := fault.NewInstance(nw.G)
	fails := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		inst.Reinject(fault.Symmetric(0.03), rng.Stream(7, uint64(i)))
		if !inst.SurvivesBasicChecks() {
			fails++
		}
	}
	if fails < trials/4 {
		t.Fatalf("butterfly n=32 at ε=0.03 failed only %d/%d", fails, trials)
	}
}

func TestWirePanics(t *testing.T) {
	nw, _ := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	nw.Wire(5, 0)
}

func TestUniquePathPanics(t *testing.T) {
	nw, _ := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	nw.UniquePath(0, 99)
}
