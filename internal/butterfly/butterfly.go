// Package butterfly implements the k-dimensional butterfly network — the
// unique-path baseline of the experiments.
//
// The butterfly on n = 2^k terminals has k+1 columns of n wires; transition
// t pairs wires differing in bit k−1−t. Between any input and output there
// is exactly ONE directed path, so the network is merely a connector (it
// can route any single request but is neither rearrangeable nor
// nonblocking), and a single switch failure on that path disconnects the
// pair: under the random failure model its survival probability decays
// fastest of all baselines. Leighton & Maggs's multibutterfly [LM]
// (package multibutterfly) exists precisely to fix this with expander
// splitters.
package butterfly

import (
	"fmt"

	"ftcsn/internal/graph"
)

// Network is a materialized butterfly on n = 2^k terminals.
type Network struct {
	K       int
	N       int
	Columns int // k+1
	G       *graph.Graph
}

// New builds the butterfly for n = 2^k.
func New(k int) (*Network, error) {
	if k < 1 || k > 20 {
		return nil, fmt.Errorf("butterfly: k=%d out of range [1,20]", k)
	}
	n := 1 << uint(k)
	cols := k + 1
	b := graph.NewBuilder(cols*n, k*2*n)
	for c := 0; c < cols; c++ {
		b.AddVertices(int32(c), n)
	}
	at := func(c, w int) int32 { return int32(c*n + w) }
	for t := 0; t < k; t++ {
		bit := k - 1 - t
		for w := 0; w < n; w++ {
			b.AddEdge(at(t, w), at(t+1, w))
			b.AddEdge(at(t, w), at(t+1, w^(1<<uint(bit))))
		}
	}
	for w := 0; w < n; w++ {
		b.MarkInput(at(0, w))
		b.MarkOutput(at(cols-1, w))
	}
	return &Network{K: k, N: n, Columns: cols, G: b.Freeze()}, nil
}

// Wire returns the vertex of wire w at column c.
func (nw *Network) Wire(c, w int) int32 {
	if c < 0 || c >= nw.Columns || w < 0 || w >= nw.N {
		panic(fmt.Sprintf("butterfly: Wire(%d,%d) out of range", c, w))
	}
	return int32(c*nw.N + w)
}

// UniquePath returns the single wire path from input `in` to output `out`:
// at transition t the path adopts bit k−1−t of the destination.
func (nw *Network) UniquePath(in, out int) []int {
	if in < 0 || in >= nw.N || out < 0 || out >= nw.N {
		panic("butterfly: terminal out of range")
	}
	path := make([]int, nw.Columns)
	path[0] = in
	w := in
	for t := 0; t < nw.K; t++ {
		bit := uint(nw.K - 1 - t)
		w = w&^(1<<bit) | out&(1<<bit)
		path[t+1] = w
	}
	return path
}

// PathVertices converts a wire path to graph vertex IDs.
func (nw *Network) PathVertices(path []int) []int32 {
	vs := make([]int32, len(path))
	for c, w := range path {
		vs[c] = nw.Wire(c, w)
	}
	return vs
}
