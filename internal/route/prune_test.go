package route

// Pins the levels-aware DFS pruning in Router.Connect: against an
// independent replica of the UNPRUNED hunt, decisions and paths must be
// bit-identical on graphs whose outputs sit below the maximum level —
// exactly where the prune actually cuts (on last-level-output networks it
// is vacuous, and the existing differential grids already pin those).

import (
	"testing"

	"ftcsn/internal/graph"
	"ftcsn/internal/rng"
	"ftcsn/internal/superconc"
)

// unprunedConnectRef replays the pre-prune Connect search byte for byte
// (same traversal bytes, same stack discipline, same stamp order) without
// mutating the router — the oracle the pruned hunt must match exactly.
func unprunedConnectRef(rt *Router, in, out int32) []int32 {
	if rt.busy[in] || rt.busy[out] || !rt.usableVertex(in) || !rt.usableVertex(out) {
		return nil
	}
	if _, dup := rt.circuits[circuitKey(in, out)]; dup {
		return nil
	}
	n := rt.g.NumVertices()
	seen := make([]bool, n)
	prev := make([]int32, n)
	start, edges, heads := rt.g.CSROut()
	//ftlint:ignore seamcontract test-only oracle replaying the router's own adopted traversal bytes
	allowed := rt.allowed
	queue := []int32{in}
	seen[in] = true
	found := false
	for len(queue) > 0 && !found {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for idx := start[v]; idx < start[v+1]; idx++ {
			w := heads[idx]
			if !graph.SlotAdmits(allowed[idx], w, out) {
				continue
			}
			if seen[w] || rt.busy[w] {
				continue
			}
			seen[w] = true
			prev[w] = edges[idx]
			if w == out {
				found = true
				break
			}
			queue = append(queue, w)
		}
	}
	if !found {
		return nil
	}
	var rev []int32
	for v := out; ; {
		rev = append(rev, v)
		if v == in {
			break
		}
		v = rt.g.EdgeFrom(prev[v])
	}
	path := make([]int32, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path
}

// shallowOutputGraph builds a staged network with outputs at DIFFERENT
// levels — one at level 2, one at level 4 — so a hunt for the shallow
// output has a deep decoy cone the prune must cut without changing any
// decision: inputs fan into a first rank, which feeds both the shallow
// output and a second rank continuing to a third rank and the deep output.
func shallowOutputGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(16, 40)
	ins := b.AddVertices(0, 3)
	r1 := b.AddVertices(1, 4)
	outA := b.AddVertex(2)
	r2 := b.AddVertices(2, 4)
	r3 := b.AddVertices(3, 4)
	outB := b.AddVertex(4)
	for i := int32(0); i < 3; i++ {
		for j := int32(0); j < 4; j++ {
			b.AddEdge(ins+i, r1+j)
		}
	}
	for j := int32(0); j < 4; j++ {
		b.AddEdge(r1+j, outA)
		for k := int32(0); k < 4; k++ {
			b.AddEdge(r1+j, r2+k)
		}
	}
	for j := int32(0); j < 4; j++ {
		for k := int32(0); k < 4; k++ {
			b.AddEdge(r2+j, r3+k)
		}
		b.AddEdge(r3+j, outB)
	}
	for i := int32(0); i < 3; i++ {
		b.MarkInput(ins + i)
	}
	b.MarkOutput(outA)
	b.MarkOutput(outB)
	return b.Freeze()
}

func TestLevelPruneMatchesUnprunedHunt(t *testing.T) {
	graphs := map[string]*graph.Graph{"shallow-output": shallowOutputGraph(t)}
	if sc, err := superconc.New(24, 3, 0x9A7E); err == nil {
		graphs["superconcentrator"] = sc.G
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			rt := NewRouter(g)
			if rt.levels == nil {
				t.Fatal("graph unexpectedly unleveled; prune disabled")
			}
			r := rng.New(0x9A7E1)
			ins, outs := g.Inputs(), g.Outputs()
			type circ struct{ in, out int32 }
			var live []circ
			for op := 0; op < 600; op++ {
				// Occasionally refresh masks with random switch outages.
				if op%120 == 0 {
					edgeOK := make([]bool, g.NumEdges())
					for e := range edgeOK {
						edgeOK[e] = r.Float64() > 0.08
					}
					rt.SetMasks(nil, edgeOK)
					live = live[:0]
				}
				if len(live) > 0 && r.Bernoulli(0.4) {
					ci := r.Intn(len(live))
					c := live[ci]
					if err := rt.Disconnect(c.in, c.out); err != nil {
						t.Fatalf("op %d: disconnect (%d,%d): %v", op, c.in, c.out, err)
					}
					live[ci] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
				in := ins[r.Intn(len(ins))]
				out := outs[r.Intn(len(outs))]
				want := unprunedConnectRef(rt, in, out)
				got, err := rt.Connect(in, out)
				if (err == nil) != (want != nil) {
					t.Fatalf("op %d: connect (%d,%d): pruned err=%v, unpruned found=%v",
						op, in, out, err, want != nil)
				}
				if err != nil {
					continue
				}
				if len(got) != len(want) {
					t.Fatalf("op %d: path lengths diverge: pruned %v, unpruned %v", op, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("op %d: paths diverge at hop %d: pruned %v, unpruned %v", op, i, got, want)
					}
				}
				live = append(live, circ{in, out})
			}
		})
	}
}
