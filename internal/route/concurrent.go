package route

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
	"ftcsn/internal/rng"
)

// ConcurrentRouter serves many connection requests in parallel. Each
// request runs in its own goroutine: it computes a candidate path with a
// racy (lock-free, read-only) BFS over the current claim state, then tries
// to claim every path vertex with compare-and-swap. If another request
// stole a vertex first, the claims are rolled back and the request retries
// with a reshuffled search, up to MaxAttempts. Correctness (established
// circuits are vertex-disjoint) rests only on the CAS claims; the racy BFS
// is merely a heuristic that is almost always right under light contention.
type ConcurrentRouter struct {
	g        *graph.Graph
	vertexOK []bool         // endpoint admission checks in serveOne only
	claims   []atomic.Int32 // 0 = free, 1 = claimed

	// allowed is the CSR-slot-aligned traversal byte array the racy BFS
	// reads — one sequentially-read byte per slot in place of the
	// usable-switch, usable-head and terminal-head lookups, exactly as the
	// sequential Router does. It is either built here from the masks
	// (graph.BuildOutAllowed, the single source of truth for the discard
	// rule's traversal semantics) or adopted from a caller that maintains
	// it incrementally (SetMasksShared).
	allowed []uint8

	// MaxAttempts bounds retries per request (default 8).
	MaxAttempts int

	// Workers is the goroutine count ConnectBatch (the Engine seam) uses;
	// 0 means 1. ServeBatch takes its worker count explicitly and ignores
	// this.
	Workers int

	// Sequential switches ConnectBatch to deterministic in-order serving on
	// the caller's goroutine: requests run one at a time through the same
	// CAS claim protocol, but the probe's edge rotation is the attempt
	// number alone — no search RNG, no batch seed, no scheduler. Any result
	// prefix is then a function of the claim state and the request prefix,
	// which is the sequential-batch semantics netsim.ChurnDriver's
	// speculation requires (batches of any size agree with per-op serving
	// on the same router). The mode guarantees determinism and
	// prefix-stability, not decision parity with Workers=1 (whose rotation
	// is seeded) or with route.Router's hunt order.
	Sequential bool

	// Engine-seam state: ConnectBatch derives each batch's per-worker
	// search RNGs from batchSeq (so batch k reproduces ServeBatch(reqs,
	// workers, k) exactly), reuses the cached worker scratches, and
	// registers accepted circuits so Disconnect/PathOf work uniformly
	// across engines. All nil/empty until first use.
	batchSeq  uint64
	scratches []*scratch
	root      rng.RNG
	circ      circuits
	stats     EngineStats
}

// NewConcurrentRouter returns a concurrent router over the fault-free g.
func NewConcurrentRouter(g *graph.Graph) *ConcurrentRouter {
	return &ConcurrentRouter{
		g:           g,
		allowed:     g.BuildOutAllowed(nil, nil, nil),
		claims:      make([]atomic.Int32, g.NumVertices()),
		MaxAttempts: 8,
	}
}

// NewConcurrentRepairedRouter returns a concurrent router over the network
// repaired from inst by the paper's discard rule.
func NewConcurrentRepairedRouter(inst *fault.Instance) *ConcurrentRouter {
	usable := inst.Repair()
	edgeOK := make([]bool, inst.G.NumEdges())
	for e := range edgeOK {
		edgeOK[e] = inst.RepairedEdgeUsable(usable, int32(e))
	}
	return &ConcurrentRouter{
		g:           inst.G,
		vertexOK:    usable,
		allowed:     inst.G.BuildOutAllowed(edgeOK, usable, nil),
		claims:      make([]atomic.Int32, inst.G.NumVertices()),
		MaxAttempts: 8,
	}
}

// SetMasksShared replaces the usable-vertex mask and adopts the
// caller-maintained CSR-slot traversal byte array — the slices
// core.MaskUpdater keeps current between trials — so the concurrent
// prober reads exactly the repair semantics the rest of the pipeline
// certifies against, with no second copy to drift. The signature matches
// Router.SetMasksShared so the engines are drop-in interchangeable;
// per-switch usability is consumed only through the traversal bytes here
// (vertexOK gates endpoint admission). Slices are adopted without
// copying; the caller must not update them while a ServeBatch is in
// flight. Every outstanding claim is released, since a mask change
// invalidates established circuits.
//
//ftcsn:claimowner a mask swap invalidates every outstanding claim; the bulk reset is this owner's job
func (cr *ConcurrentRouter) SetMasksShared(vertexOK, edgeOK []bool, outAllowed []uint8) {
	_ = edgeOK
	cr.vertexOK = vertexOK
	cr.allowed = outAllowed
	for i := range cr.claims {
		cr.claims[i].Store(0)
	}
	// Registered circuits died with their claims; forget them.
	cr.circ.drain(func(int32, []int32) {})
}

// Request asks for a circuit from In to Out.
type Request struct {
	In, Out int32
}

// Result reports the outcome of one request.
type Result struct {
	Request
	Path     []int32 // nil when the request failed
	Attempts int
}

func (cr *ConcurrentRouter) usableVertex(v int32) bool {
	//ftlint:ignore seamcontract audited endpoint-admission accessor: vertexOK gates terminals only; per-edge admission stays in the traversal bytes
	return cr.vertexOK == nil || cr.vertexOK[v]
}

// scratch is per-worker BFS state.
type scratch struct {
	seenEpoch []uint32
	epoch     uint32
	prevEdge  []int32
	queue     []int32
	perm      []int32
	r         *rng.RNG
}

func (cr *ConcurrentRouter) newScratch(r *rng.RNG) *scratch {
	n := cr.g.NumVertices()
	return &scratch{
		seenEpoch: make([]uint32, n),
		prevEdge:  make([]int32, n),
		queue:     make([]int32, 0, 256),
		r:         r,
	}
}

// probe runs the racy BFS from in to out, skipping vertices currently
// claimed, and returns a candidate path or nil. Out-edges are scanned in
// the caller's rotated order (rot) so retries explore different routes. The hot
// loop reads one traversal byte per CSR slot (graph.AdjBlocked /
// AdjTerminal) instead of the usable-switch, usable-head and terminal-head
// lookups, with heads read sequentially.
func (cr *ConcurrentRouter) probe(sc *scratch, in, out int32, rot int32) []int32 {
	sc.epoch++
	if sc.epoch == 0 {
		for i := range sc.seenEpoch {
			sc.seenEpoch[i] = 0
		}
		sc.epoch = 1
	}
	sc.seenEpoch[in] = sc.epoch
	sc.queue = sc.queue[:0]
	sc.queue = append(sc.queue, in)
	start, edges, heads := cr.g.CSROut()
	allowed := cr.allowed
	for head := 0; head < len(sc.queue); head++ {
		v := sc.queue[head]
		lo := start[v]
		ne := start[v+1] - lo
		for k := int32(0); k < ne; k++ {
			idx := lo + (k+rot)%ne
			w := heads[idx]
			if !graph.SlotAdmits(allowed[idx], w, out) {
				continue
			}
			if sc.seenEpoch[w] == sc.epoch {
				continue
			}
			if cr.claims[w].Load() != 0 {
				continue
			}
			sc.seenEpoch[w] = sc.epoch
			sc.prevEdge[w] = edges[idx]
			if w == out {
				var rev []int32
				for x := out; ; {
					rev = append(rev, x)
					if x == in {
						break
					}
					x = cr.g.EdgeFrom(sc.prevEdge[x])
				}
				path := make([]int32, len(rev))
				for i, x := range rev {
					path[len(rev)-1-i] = x
				}
				return path
			}
			sc.queue = append(sc.queue, w)
		}
	}
	return nil
}

// tryClaim atomically claims every vertex of path; on conflict it rolls
// back and returns false.
//
//ftcsn:claimowner the CAS claim helper: claim-then-rollback is the only lock-free acquisition protocol
func (cr *ConcurrentRouter) tryClaim(path []int32) bool {
	for i, v := range path {
		if !cr.claims[v].CompareAndSwap(0, 1) {
			for j := 0; j < i; j++ {
				cr.claims[path[j]].Store(0)
			}
			return false
		}
	}
	return true
}

// Release frees the vertices of an established path.
//
//ftcsn:claimowner the release half of the claim protocol
func (cr *ConcurrentRouter) Release(path []int32) {
	for _, v := range path {
		cr.claims[v].Store(0)
	}
}

// Claimed reports whether v is currently claimed.
func (cr *ConcurrentRouter) Claimed(v int32) bool { return cr.claims[v].Load() != 0 }

// serveOne processes a single request synchronously using sc. det selects
// the deterministic rotation (Sequential mode); otherwise each attempt
// rotates by the scratch RNG exactly as the CAS schedule always has.
func (cr *ConcurrentRouter) serveOne(sc *scratch, req Request, det bool) Result {
	res := Result{Request: req}
	if !cr.usableVertex(req.In) || !cr.usableVertex(req.Out) {
		return res
	}
	for attempt := 0; attempt < cr.MaxAttempts; attempt++ {
		res.Attempts = attempt + 1
		rot := int32(attempt)
		if !det {
			rot += int32(sc.r.Intn(4))
		}
		path := cr.probe(sc, req.In, req.Out, rot)
		if path == nil {
			// No idle path right now; under contention another circuit may
			// release later, but in batch mode we just fail fast.
			return res
		}
		if cr.tryClaim(path) {
			res.Path = path
			return res
		}
	}
	return res
}

// ServeBatch processes the requests with `workers` goroutines and returns
// per-request results in input order. Established circuits remain claimed;
// release them with Release. seed derives the per-worker search RNGs.
// Calls must be serialized: the router reuses per-worker scratch across
// batches.
func (cr *ConcurrentRouter) ServeBatch(reqs []Request, workers int, seed uint64) []Result {
	results := make([]Result, len(reqs))
	cr.serveBatchInto(results, reqs, workers, seed)
	return results
}

// serveBatchInto is ServeBatch writing into results. Worker w's search RNG
// is reseeded to exactly rng.New(seed).Split(w), so cached scratch reuse is
// invisible: every batch's outcomes match a fresh-scratch run bit for bit.
func (cr *ConcurrentRouter) serveBatchInto(results []Result, reqs []Request, workers int, seed uint64) {
	if workers < 1 {
		workers = 1
	}
	for len(cr.scratches) < workers {
		cr.scratches = append(cr.scratches, cr.newScratch(new(rng.RNG)))
	}
	cr.root.Reseed(seed)
	for w := 0; w < workers; w++ {
		cr.scratches[w].r.ReseedSplit(&cr.root, uint64(w))
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(sc *scratch) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(reqs)) {
					return
				}
				results[i] = cr.serveOne(sc, reqs[i], false)
			}
		}(cr.scratches[w])
	}
	wg.Wait()
}

// serveSequentialInto serves reqs in input order on the caller's
// goroutine with the deterministic rotation (Sequential mode). Claims
// still go through the CAS protocol, so circuits interoperate with
// Release/Reset and concurrent readers see consistent state; the schedule
// itself consumes no randomness and spawns no goroutines.
func (cr *ConcurrentRouter) serveSequentialInto(results []Result, reqs []Request) {
	if len(cr.scratches) == 0 {
		cr.scratches = append(cr.scratches, cr.newScratch(new(rng.RNG)))
	}
	sc := cr.scratches[0]
	for i := range reqs {
		results[i] = cr.serveOne(sc, reqs[i], true)
	}
}

// ensureCircuits lazily sizes the per-input circuit registry the Engine
// seam needs (plain ServeBatch users never pay for it).
func (cr *ConcurrentRouter) ensureCircuits() {
	if !cr.circ.ready() {
		cr.circ.init(cr.g.NumVertices())
	}
}

// ConnectBatch serves the requests with cr.Workers goroutines through the
// CAS claim protocol and registers the accepted circuits, reusing res
// (grown as needed) — the Engine seam over ServeBatch. Batch k of a
// router's lifetime uses search seed k, so runs are reproducible for a
// fixed Workers count (and fully deterministic when Workers == 1).
func (cr *ConcurrentRouter) ConnectBatch(reqs []Request, res []Result) []Result {
	res = growResults(res, len(reqs))
	cr.ensureCircuits()
	if cr.Sequential {
		cr.serveSequentialInto(res, reqs)
	} else {
		cr.serveBatchInto(res, reqs, cr.Workers, cr.batchSeq)
		cr.batchSeq++
	}
	cr.stats.Batches++
	cr.stats.Requests += int64(len(reqs))
	for i := range res {
		path := res[i].Path
		if path == nil {
			cr.stats.Rejected++
			continue
		}
		if cr.circ.live(res[i].In) {
			// Unreachable: a live input's vertex stays claimed, so a second
			// path from it cannot survive tryClaim.
			panic("route: concurrent engine accepted a second circuit on a live input")
		}
		cr.circ.install(res[i].In, res[i].Out, path)
		cr.stats.Accepted++
	}
	return res
}

// Disconnect releases the circuit between in and out established by
// ConnectBatch. Circuits claimed through plain ServeBatch are not
// registered here; release those with Release.
func (cr *ConcurrentRouter) Disconnect(in, out int32) error {
	path, ok := cr.circ.remove(in, out)
	if !ok {
		return fmt.Errorf("route: no circuit (%d,%d)", in, out)
	}
	cr.Release(path)
	return nil
}

// PathOf returns the ConnectBatch-established path for (in, out), or nil.
func (cr *ConcurrentRouter) PathOf(in, out int32) []int32 {
	return cr.circ.lookup(in, out)
}

// Reset releases every ConnectBatch-established circuit, keeping buffers.
func (cr *ConcurrentRouter) Reset() {
	cr.circ.drain(func(_ int32, path []int32) { cr.Release(path) })
}

// Stats returns the cumulative ConnectBatch serving counters.
func (cr *ConcurrentRouter) Stats() EngineStats { return cr.stats }

// MasksChanged is a no-op: the concurrent router reads the shared
// traversal bytes live.
func (cr *ConcurrentRouter) MasksChanged() {}

// MasksChangedDiff is a no-op like MasksChanged: no derived per-epoch
// state to maintain.
func (cr *ConcurrentRouter) MasksChangedDiff(vertices, edges []int32) {}

// VerifyDisjoint checks that the successful results' paths are pairwise
// vertex-disjoint (the safety property the CAS claims must enforce).
func VerifyDisjoint(results []Result) bool {
	seen := make(map[int32]bool)
	for _, res := range results {
		for _, v := range res.Path {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
	}
	return true
}
