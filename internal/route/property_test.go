package route

// Property-based tests of both routing engines over random staged
// networks, random request sequences, and random faults.

import (
	"testing"
	"testing/quick"

	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
	"ftcsn/internal/rng"
)

// randomStaged builds a random 3-stage network: nIn inputs, mid middle
// links, nOut outputs, with each input wired to a random subset of middles
// and each middle to a random subset of outputs (at least one each).
func randomStaged(r *rng.RNG) *graph.Graph {
	nIn := 2 + r.Intn(4)
	mid := 2 + r.Intn(6)
	nOut := 2 + r.Intn(4)
	b := graph.NewBuilder(nIn+mid+nOut, nIn*mid+mid*nOut)
	ins := make([]int32, nIn)
	mids := make([]int32, mid)
	outs := make([]int32, nOut)
	for i := range ins {
		ins[i] = b.AddVertex(0)
		b.MarkInput(ins[i])
	}
	for i := range mids {
		mids[i] = b.AddVertex(1)
	}
	for i := range outs {
		outs[i] = b.AddVertex(2)
		b.MarkOutput(outs[i])
	}
	for _, in := range ins {
		deg := 1 + r.Intn(mid)
		for _, m := range r.Sample(mid, deg) {
			b.AddEdge(in, mids[m])
		}
	}
	for _, m := range mids {
		deg := 1 + r.Intn(nOut)
		for _, o := range r.Sample(nOut, deg) {
			b.AddEdge(m, outs[o])
		}
	}
	return b.Freeze()
}

// TestQuickRouterInvariantsUnderRandomOps: any interleaving of connects
// and disconnects keeps the router's invariants and never produces a path
// through a busy or foreign-terminal vertex.
func TestQuickRouterInvariantsUnderRandomOps(t *testing.T) {
	root := rng.New(0x40)
	f := func(tick uint16) bool {
		r := root.Split(uint64(tick))
		g := randomStaged(r)
		rt := NewRouter(g)
		type cir struct{ in, out int32 }
		var live []cir
		for op := 0; op < 60; op++ {
			if len(live) == 0 || r.Bernoulli(0.6) {
				in := g.Inputs()[r.Intn(len(g.Inputs()))]
				out := g.Outputs()[r.Intn(len(g.Outputs()))]
				path, err := rt.Connect(in, out)
				if err == nil {
					// Path must start/end correctly and use only middle
					// vertices internally.
					if path[0] != in || path[len(path)-1] != out {
						return false
					}
					for _, v := range path[1 : len(path)-1] {
						if g.IsTerminal(v) {
							return false
						}
					}
					live = append(live, cir{in, out})
				}
			} else {
				i := r.Intn(len(live))
				if rt.Disconnect(live[i].in, live[i].out) != nil {
					return false
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if rt.VerifyInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConnectNeverUsesFailedSwitch: on repaired networks, established
// paths never traverse failed switches or discarded vertices.
func TestQuickConnectNeverUsesFailedSwitch(t *testing.T) {
	root := rng.New(0x41)
	f := func(tick uint16) bool {
		r := root.Split(uint64(tick))
		g := randomStaged(r)
		inst := fault.Inject(g, fault.Symmetric(0.15), r)
		usable := inst.Repair()
		rt := NewRepairedRouter(inst)
		for trial := 0; trial < 10; trial++ {
			in := g.Inputs()[r.Intn(len(g.Inputs()))]
			out := g.Outputs()[r.Intn(len(g.Outputs()))]
			path, err := rt.Connect(in, out)
			if err != nil {
				continue
			}
			for i, v := range path {
				if !usable[v] {
					return false
				}
				if i == 0 {
					continue
				}
				// The switch used must be normal.
				ok := false
				for _, e := range g.OutEdges(path[i-1]) {
					if g.EdgeTo(e) == v && inst.Edge[e] == fault.Normal {
						ok = true
					}
				}
				if !ok {
					return false
				}
			}
			_ = rt.Disconnect(in, out)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConcurrentDisjointness: under arbitrary request batches and
// worker counts, established concurrent paths are vertex-disjoint.
func TestQuickConcurrentDisjointness(t *testing.T) {
	root := rng.New(0x42)
	f := func(tick uint16) bool {
		r := root.Split(uint64(tick))
		g := randomStaged(r)
		cr := NewConcurrentRouter(g)
		var reqs []Request
		for i := 0; i < 12; i++ {
			reqs = append(reqs, Request{
				In:  g.Inputs()[r.Intn(len(g.Inputs()))],
				Out: g.Outputs()[r.Intn(len(g.Outputs()))],
			})
		}
		results := cr.ServeBatch(reqs, 1+r.Intn(6), r.Uint64())
		return VerifyDisjoint(results)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestSequentialAndConcurrentAgreeOnCapacity: when requests are disjoint
// by construction (a partial matching), both engines establish them all on
// a crossbar-complete network.
func TestSequentialAndConcurrentAgreeOnCapacity(t *testing.T) {
	// Dense network: every input sees every middle, every middle every
	// output, middles ≥ terminals: all matchings route.
	b := graph.NewBuilder(12, 32)
	var ins, mids, outs []int32
	for i := 0; i < 4; i++ {
		v := b.AddVertex(0)
		b.MarkInput(v)
		ins = append(ins, v)
	}
	for i := 0; i < 4; i++ {
		mids = append(mids, b.AddVertex(1))
	}
	for i := 0; i < 4; i++ {
		v := b.AddVertex(2)
		b.MarkOutput(v)
		outs = append(outs, v)
	}
	for _, in := range ins {
		for _, m := range mids {
			b.AddEdge(in, m)
		}
	}
	for _, m := range mids {
		for _, o := range outs {
			b.AddEdge(m, o)
		}
	}
	g := b.Freeze()

	r := rng.New(0x43)
	for trial := 0; trial < 20; trial++ {
		perm := r.Perm(4)
		// Sequential.
		rt := NewRouter(g)
		seqOK := 0
		for i, p := range perm {
			if _, err := rt.Connect(ins[i], outs[p]); err == nil {
				seqOK++
			}
		}
		// Concurrent.
		cr := NewConcurrentRouter(g)
		reqs := make([]Request, 4)
		for i, p := range perm {
			reqs[i] = Request{In: ins[i], Out: outs[p]}
		}
		results := cr.ServeBatch(reqs, 4, uint64(trial))
		concOK := 0
		for _, res := range results {
			if res.Path != nil {
				concOK++
			}
		}
		if seqOK != 4 || concOK != 4 {
			t.Fatalf("trial %d: sequential %d/4, concurrent %d/4", trial, seqOK, concOK)
		}
	}
}
