package route_test

// Conformance tests for the route.Engine seam: all three engines must
// serve the same workload through ConnectBatch / Disconnect / PathOf /
// Reset / Stats coherently, the sequential-semantics engines must agree
// bit for bit, and the concurrent engine's ConnectBatch must reproduce
// its legacy ServeBatch exactly.

import (
	"testing"

	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

func permReqs(t *testing.T, nu int) ([]route.Request, *route.Router, []route.Engine) {
	t.Helper()
	nw := buildNet(t, nu)
	n := len(nw.Inputs())
	perm := rng.New(11).Perm(n)
	reqs := make([]route.Request, n)
	for i := range reqs {
		reqs[i] = route.Request{In: nw.Inputs()[i], Out: nw.Outputs()[perm[i]]}
	}
	rt := route.NewRouter(nw.G)
	rt.EnablePathReuse()
	cr := route.NewConcurrentRouter(nw.G)
	cr.Workers = 1
	return reqs, rt, []route.Engine{rt, cr, route.NewShardedEngine(nw.G, 3)}
}

// TestEngineSeamConformance runs a connect/disconnect/reconnect workload
// through every engine and checks the seam's bookkeeping: PathOf mirrors
// live circuits, Disconnect frees exactly what reconnects, Reset empties,
// and Stats add up.
func TestEngineSeamConformance(t *testing.T) {
	reqs, _, engines := permReqs(t, 2)
	for ei, eng := range engines {
		var res []route.Result
		res = eng.ConnectBatch(reqs, res)
		accepted := 0
		for i := range res {
			if res[i].Path == nil {
				continue
			}
			accepted++
			p := eng.PathOf(reqs[i].In, reqs[i].Out)
			if len(p) == 0 || p[0] != reqs[i].In || p[len(p)-1] != reqs[i].Out {
				t.Fatalf("engine %d: PathOf(%d,%d) = %v", ei, reqs[i].In, reqs[i].Out, p)
			}
		}
		if accepted == 0 {
			t.Fatalf("engine %d accepted nothing", ei)
		}
		st := eng.Stats()
		if st.Batches != 1 || st.Requests != int64(len(reqs)) ||
			st.Accepted != int64(accepted) || st.Rejected != int64(len(reqs)-accepted) {
			t.Fatalf("engine %d stats %+v after one batch of %d (%d accepted)", ei, st, len(reqs), accepted)
		}

		// Disconnect half, reconnect the same circuits: must succeed again.
		for i := 0; i < len(res); i += 2 {
			if res[i].Path == nil {
				continue
			}
			if err := eng.Disconnect(reqs[i].In, reqs[i].Out); err != nil {
				t.Fatalf("engine %d: disconnect: %v", ei, err)
			}
			if eng.PathOf(reqs[i].In, reqs[i].Out) != nil {
				t.Fatalf("engine %d: path survives disconnect", ei)
			}
			if err := eng.Disconnect(reqs[i].In, reqs[i].Out); err == nil {
				t.Fatalf("engine %d: double disconnect succeeded", ei)
			}
			single := eng.ConnectBatch(reqs[i:i+1], nil)
			if single[0].Path == nil {
				t.Fatalf("engine %d: reconnect of freed circuit rejected", ei)
			}
		}
		eng.Reset()
		for i := range reqs {
			if eng.PathOf(reqs[i].In, reqs[i].Out) != nil {
				t.Fatalf("engine %d: circuit survives Reset", ei)
			}
		}
		// After Reset the whole permutation must route again.
		res = eng.ConnectBatch(reqs, res)
		got := 0
		for i := range res {
			if res[i].Path != nil {
				got++
			}
		}
		if got == 0 {
			t.Fatalf("engine %d: nothing reconnects after Reset", ei)
		}
	}
}

// TestSequentialEnginesAgree: Router and ShardedEngine ConnectBatch give
// bit-identical decisions and paths (the Engine-seam restatement of the
// sharded differential).
func TestSequentialEnginesAgree(t *testing.T) {
	reqs, _, _ := permReqs(t, 2)
	nw := buildNet(t, 2)
	engA := route.NewRouter(nw.G)
	engA.EnablePathReuse()
	engB := route.NewShardedEngine(nw.G, 4)
	var resA, resB []route.Result
	for round := 0; round < 5; round++ {
		resA = engA.ConnectBatch(reqs, resA)
		resB = engB.ConnectBatch(reqs, resB)
		for i := range reqs {
			pa, pb := resA[i].Path, resB[i].Path
			if (pa == nil) != (pb == nil) {
				t.Fatalf("round %d req %d: decisions differ", round, i)
			}
			for j := range pa {
				if pa[j] != pb[j] {
					t.Fatalf("round %d req %d: paths differ: %v vs %v", round, i, pa, pb)
				}
			}
		}
		engA.Reset()
		engB.Reset()
	}
}

// TestConcurrentConnectBatchMatchesServeBatch: engine-seam batches must
// reproduce the legacy ServeBatch results for the same derived seeds, so
// wrapping the CAS router in the seam changed nothing about its behavior.
func TestConcurrentConnectBatchMatchesServeBatch(t *testing.T) {
	nw := buildNet(t, 2)
	n := len(nw.Inputs())
	perm := rng.New(11).Perm(n)
	reqs := make([]route.Request, n)
	for i := range reqs {
		reqs[i] = route.Request{In: nw.Inputs()[i], Out: nw.Outputs()[perm[i]]}
	}
	for _, workers := range []int{1, 4} {
		engine := route.NewConcurrentRouter(nw.G)
		engine.Workers = workers
		legacy := route.NewConcurrentRouter(nw.G)
		var res []route.Result
		for rep := 0; rep < 4; rep++ {
			res = engine.ConnectBatch(reqs, res)
			want := legacy.ServeBatch(reqs, workers, uint64(rep))
			for i := range reqs {
				ga, gb := res[i].Path, want[i].Path
				if (ga == nil) != (gb == nil) || len(ga) != len(gb) {
					if workers == 1 {
						t.Fatalf("rep %d req %d: engine/legacy diverged with 1 worker", rep, i)
					}
					continue // multi-worker accept sets are scheduler-dependent
				}
				if workers == 1 {
					for j := range ga {
						if ga[j] != gb[j] {
							t.Fatalf("rep %d req %d: paths differ", rep, i)
						}
					}
				}
			}
			engine.Reset()
			for _, r := range want {
				if r.Path != nil {
					legacy.Release(r.Path)
				}
			}
		}
	}
}
