package route_test

// Differential, fuzz, and allocation coverage for the incrementally
// maintained output-reachability guide (ShardedEngine.MasksChangedDiff):
// after every fault diff, revert, and interleaved churn step, the guide
// words must be bit-identical to a full rebuild's, and the engine's
// decisions and paths bit-identical to the sequential Router's, across
// the topology zoo and shard counts. External test package: the realistic
// diff source is core.MaskUpdater, and core depends on route.

import (
	"fmt"
	"testing"

	"ftcsn/internal/benes"
	"ftcsn/internal/circulant"
	"ftcsn/internal/core"
	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
	"ftcsn/internal/hammock"
	"ftcsn/internal/hyperx"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
	"ftcsn/internal/superconc"
)

type guideFamily struct {
	name string
	g    *graph.Graph
}

// guideZoo builds the same topology spread E14 measures — the paper's 𝒩,
// its mirror image, a hammock-substituted Beneš, a superconcentrator, and
// the DAG-unrolled hyperx and circulant — every leveled shape the guide
// has to survive (identity and permuted sweeps alike).
func guideZoo(t testing.TB) []guideFamily {
	t.Helper()
	var fams []guideFamily
	nw, err := core.Build(core.DefaultParams(1))
	if err != nil {
		t.Fatal(err)
	}
	fams = append(fams, guideFamily{"network-N", nw.G})
	fams = append(fams, guideFamily{"mirror-N", nw.G.Mirror()})
	bn, err := benes.New(3)
	if err != nil {
		t.Fatal(err)
	}
	fams = append(fams, guideFamily{"benes-hammock", hammock.SubstituteEdges(bn.G, 2, 2, false)})
	sc, err := superconc.New(24, 3, 0xE14)
	if err != nil {
		t.Fatal(err)
	}
	fams = append(fams, guideFamily{"superconcentrator", sc.G})
	hx, err := hyperx.New([]int{3, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	fams = append(fams, guideFamily{"hyperx", hx.G})
	cc, err := circulant.New(8, []int{1, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	fams = append(fams, guideFamily{"circulant", cc.G})
	return fams
}

// compareGuideWords requires word-for-word equality of the two engines'
// reachability guides.
func compareGuideWords(t *testing.T, step string, inc, ref *route.ShardedEngine) {
	t.Helper()
	iw, ig := inc.GuideWords()
	rw, rg := ref.GuideWords()
	if ig != rg {
		t.Fatalf("%s: guide groups diverge: incremental %d, rebuild %d", step, ig, rg)
	}
	if (iw == nil) != (rw == nil) {
		t.Fatalf("%s: guide presence diverges: incremental %v, rebuild %v", step, iw != nil, rw != nil)
	}
	for i := range iw {
		if iw[i] != rw[i] {
			t.Fatalf("%s: guide word %d diverges: incremental %#x, rebuild %#x (vertex %d, group %d)",
				step, i, iw[i], rw[i], i/ig, i%ig)
		}
	}
}

// lockstepBatch drives one request batch through the incrementally
// maintained engine, the full-rebuild reference, and the sequential
// router, requiring bit-identical decisions and paths.
func lockstepBatch(t *testing.T, step string, inc, ref *route.ShardedEngine, seq *route.Router,
	ins, outs []int32, r *rng.RNG, k int) []route.Request {
	t.Helper()
	reqs := make([]route.Request, k)
	for i := range reqs {
		reqs[i] = route.Request{In: ins[r.Intn(len(ins))], Out: outs[r.Intn(len(outs))]}
	}
	ri := inc.ConnectBatch(reqs, nil)
	rr := ref.ConnectBatch(reqs, nil)
	rs := seq.ConnectBatch(reqs, nil)
	accepted := reqs[:0:0]
	for i := range reqs {
		ok := ri[i].Path != nil
		if ok != (rr[i].Path != nil) || ok != (rs[i].Path != nil) {
			t.Fatalf("%s: request %d (%d->%d): decisions diverge: inc=%v rebuild=%v sequential=%v",
				step, i, reqs[i].In, reqs[i].Out, ok, rr[i].Path != nil, rs[i].Path != nil)
		}
		if !ok {
			continue
		}
		accepted = append(accepted, reqs[i])
		if len(ri[i].Path) != len(rr[i].Path) || len(ri[i].Path) != len(rs[i].Path) {
			t.Fatalf("%s: request %d: path lengths diverge: %d/%d/%d",
				step, i, len(ri[i].Path), len(rr[i].Path), len(rs[i].Path))
		}
		for j := range ri[i].Path {
			if ri[i].Path[j] != rr[i].Path[j] || ri[i].Path[j] != rs[i].Path[j] {
				t.Fatalf("%s: request %d: paths diverge at hop %d: %v / %v / %v",
					step, i, j, ri[i].Path, rr[i].Path, rs[i].Path)
			}
		}
	}
	return accepted
}

// TestIncrementalGuideMatchesRebuild: randomized fault/churn/revert
// sequences on every zoo family × shard count. At every step the
// incremental guide must equal a full rebuild word for word, and the
// engine must stay decision- and path-identical to the sequential Router
// — including mid-sequence reverts and diffs applied while circuits are
// live.
func TestIncrementalGuideMatchesRebuild(t *testing.T) {
	const (
		trials = 12
		eps    = 0.03
	)
	for _, fam := range guideZoo(t) {
		for _, shards := range []int{1, 2, 3} {
			t.Run(fmt.Sprintf("%s/shards=%d", fam.name, shards), func(t *testing.T) {
				g := fam.g
				inc := route.NewShardedEngine(g, shards)
				ref := route.NewShardedEngine(g, shards)
				seq := route.NewRouter(g)

				inst := fault.NewInstance(g)
				mu := core.NewMaskUpdater(g)
				var m core.Masks
				mu.Init(inst, &m)
				inc.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
				ref.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
				seq.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
				if w, _ := inc.GuideWords(); w == nil {
					t.Fatalf("guide unexpectedly off for %s", fam.name)
				}
				compareGuideWords(t, "init", inc, ref)

				bi := fault.NewBatchInjector(g)
				seed := uint64(0x641DE) + uint64(len(fam.name))*uint64(shards)
				bi.FillStream(fault.Symmetric(eps), seed, 0, trials)
				r := rng.New(seed ^ 0xC0FFEE)
				ins, outs := g.Inputs(), g.Outputs()
				batch := len(ins)/2 + 1

				for trial := 0; trial < trials; trial++ {
					diff := bi.ApplyNext(inst)
					edges := mu.Apply(inst, &m, diff)
					inc.MasksChangedDiff(mu.ChangedVertices(), edges)
					ref.MasksChanged()
					compareGuideWords(t, fmt.Sprintf("trial %d apply", trial), inc, ref)

					acc := lockstepBatch(t, fmt.Sprintf("trial %d churn A", trial),
						inc, ref, seq, ins, outs, r, batch)

					// Revert the trial's faults while circuits are live — the
					// interleaved-churn case the epoch-stamped worklist must
					// survive — then connect more and re-apply.
					edges = mu.Revert(inst, &m, diff)
					inc.MasksChangedDiff(mu.ChangedVertices(), edges)
					ref.MasksChanged()
					compareGuideWords(t, fmt.Sprintf("trial %d revert", trial), inc, ref)

					lockstepBatch(t, fmt.Sprintf("trial %d churn B", trial),
						inc, ref, seq, ins, outs, r, batch)

					for _, rq := range acc {
						ei := inc.Disconnect(rq.In, rq.Out)
						er := ref.Disconnect(rq.In, rq.Out)
						es := seq.Disconnect(rq.In, rq.Out)
						if (ei == nil) != (er == nil) || (ei == nil) != (es == nil) {
							t.Fatalf("trial %d: disconnect (%d,%d) diverges: %v/%v/%v",
								trial, rq.In, rq.Out, ei, er, es)
						}
					}

					fault.ApplyDiff(inst, diff)
					edges = mu.Apply(inst, &m, diff)
					inc.MasksChangedDiff(mu.ChangedVertices(), edges)
					ref.MasksChanged()
					compareGuideWords(t, fmt.Sprintf("trial %d reapply", trial), inc, ref)

					inc.Reset()
					ref.Reset()
					seq.Reset()
					compareGuideWords(t, fmt.Sprintf("trial %d post-reset", trial), inc, ref)
				}
			})
		}
	}
}

// FuzzIncrementalGuide drives randomized diff/revert sequences over three
// topology shapes and checks the incremental guide against a full rebuild
// word for word at every step (part of the Makefile fuzz-smoke set).
func FuzzIncrementalGuide(f *testing.F) {
	f.Add(uint64(1), uint16(20), uint8(6), uint8(2))
	f.Add(uint64(42), uint16(80), uint8(10), uint8(1))
	f.Add(uint64(7), uint16(5), uint8(3), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, epsMil uint16, trials, shards uint8) {
		var g *graph.Graph
		switch seed % 3 {
		case 0:
			nw, err := core.Build(core.DefaultParams(1))
			if err != nil {
				t.Skip()
			}
			g = nw.G
		case 1:
			hx, err := hyperx.New([]int{3, 2}, 3)
			if err != nil {
				t.Skip()
			}
			g = hx.G
		default:
			cc, err := circulant.New(8, []int{1, 3}, 4)
			if err != nil {
				t.Skip()
			}
			g = cc.G
		}
		nTrials := int(trials%16) + 1
		eps := float64(epsMil%200) / 1000
		sh := int(shards%4) + 1

		inc := route.NewShardedEngine(g, sh)
		ref := route.NewShardedEngine(g, sh)
		inst := fault.NewInstance(g)
		mu := core.NewMaskUpdater(g)
		var m core.Masks
		mu.Init(inst, &m)
		inc.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
		ref.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)

		bi := fault.NewBatchInjector(g)
		bi.FillStream(fault.Symmetric(eps), seed, 0, nTrials)
		check := func(step string) {
			t.Helper()
			iw, ig := inc.GuideWords()
			rw, rg := ref.GuideWords()
			if ig != rg || len(iw) != len(rw) {
				t.Fatalf("%s: guide shapes diverge: %d×%d vs %d×%d", step, len(iw), ig, len(rw), rg)
			}
			for i := range iw {
				if iw[i] != rw[i] {
					t.Fatalf("%s: guide word %d diverges: %#x vs %#x", step, i, iw[i], rw[i])
				}
			}
		}
		for trial := 0; trial < nTrials; trial++ {
			diff := bi.ApplyNext(inst)
			edges := mu.Apply(inst, &m, diff)
			inc.MasksChangedDiff(mu.ChangedVertices(), edges)
			ref.MasksChanged()
			check(fmt.Sprintf("trial %d apply", trial))
			if seed>>uint(trial%48)&1 == 1 {
				edges = mu.Revert(inst, &m, diff)
				inc.MasksChangedDiff(mu.ChangedVertices(), edges)
				ref.MasksChanged()
				check(fmt.Sprintf("trial %d revert", trial))
				fault.ApplyDiff(inst, diff)
				edges = mu.Apply(inst, &m, diff)
				inc.MasksChangedDiff(mu.ChangedVertices(), edges)
				ref.MasksChanged()
				check(fmt.Sprintf("trial %d reapply", trial))
			}
		}
	})
}

// TestIncrementalGuideAllocFree: a steady-state guide update — fault diff,
// incremental masks, reverse-cone propagation — must not allocate once the
// engine and updater are warm (the per-epoch analogue of the engine's
// churn alloc gates; the worklist's buckets are preallocated to level
// widths, so this holds by construction).
func TestIncrementalGuideAllocFree(t *testing.T) {
	nw, err := core.Build(core.DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	g := nw.G
	se := route.NewShardedEngine(g, 2)
	inst := fault.NewInstance(g)
	mu := core.NewMaskUpdater(g)
	var m core.Masks
	mu.Init(inst, &m)
	se.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)

	const total = 120
	bi := fault.NewBatchInjector(g)
	bi.FillStream(fault.Symmetric(0.01), 0xA110C2, 0, total)
	step := func() {
		diff := bi.ApplyNext(inst)
		edges := mu.Apply(inst, &m, diff)
		se.MasksChangedDiff(mu.ChangedVertices(), edges)
	}
	for i := 0; i < 40; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(60, step); avg != 0 {
		t.Fatalf("incremental guide epoch allocates %.2f allocs/op in steady state, want 0", avg)
	}
}
