package route_test

// External test package: route cannot import core (core depends on
// route), but the shared-traversal-byte contract is between
// core.MaskUpdater and ConcurrentRouter, so it is exercised here.

import (
	"testing"

	"ftcsn/internal/core"
	"ftcsn/internal/fault"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

// TestConcurrentRouterSharedMasksMatchRepaired: a concurrent router that
// adopts core.MaskUpdater's incrementally maintained masks and traversal
// bytes must serve exactly like one that derived the repaired network
// itself from the fault instance.
func TestConcurrentRouterSharedMasksMatchRepaired(t *testing.T) {
	nw, err := core.Build(core.DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	inst := fault.NewInstance(nw.G)
	r := rng.New(11)
	fault.InjectInto(inst, fault.Symmetric(0.01), r)

	mu := core.NewMaskUpdater(nw.G)
	var m core.Masks
	mu.Init(inst, &m)

	shared := route.NewConcurrentRouter(nw.G)
	shared.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
	owned := route.NewConcurrentRepairedRouter(inst)

	n := len(nw.Inputs())
	perm := rng.New(12).Perm(n)
	reqs := make([]route.Request, n)
	for i := range reqs {
		reqs[i] = route.Request{In: nw.Inputs()[i], Out: nw.Outputs()[perm[i]]}
	}
	// One worker: the racy BFS degenerates to a deterministic sequential
	// search, so both routers must produce identical paths.
	resShared := shared.ServeBatch(reqs, 1, 42)
	resOwned := owned.ServeBatch(reqs, 1, 42)
	if !route.VerifyDisjoint(resShared) {
		t.Fatal("shared-mask router produced overlapping paths")
	}
	for i := range reqs {
		a, b := resShared[i], resOwned[i]
		if len(a.Path) != len(b.Path) {
			t.Fatalf("request %d: shared path len %d != owned %d", i, len(a.Path), len(b.Path))
		}
		for j := range a.Path {
			if a.Path[j] != b.Path[j] {
				t.Fatalf("request %d: paths diverge at %d: %v vs %v", i, j, a.Path, b.Path)
			}
		}
	}
}

// TestConcurrentRouterSharedMasksTrackUpdates: the adopted slices are
// shared, so a MaskUpdater.Apply between batches is visible to the prober
// without any rebuild — and SetMasksShared releases stale claims.
func TestConcurrentRouterSharedMasksTrackUpdates(t *testing.T) {
	nw, err := core.Build(core.DefaultParams(1))
	if err != nil {
		t.Fatal(err)
	}
	inst := fault.NewInstance(nw.G)
	mu := core.NewMaskUpdater(nw.G)
	var m core.Masks
	mu.Init(inst, &m)

	cr := route.NewConcurrentRouter(nw.G)
	cr.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)

	in, out := nw.Inputs()[0], nw.Outputs()[0]
	res := cr.ServeBatch([]route.Request{{In: in, Out: out}}, 1, 1)
	if res[0].Path == nil {
		t.Fatal("fault-free connect failed")
	}

	// Fail every switch incident to the old path's second vertex: the
	// updater recomputes the masks and traversal bytes in place.
	victim := res[0].Path[1]
	var diff []fault.DiffEntry
	for _, e := range nw.G.OutEdges(victim) {
		diff = append(diff, fault.DiffEntry{Edge: e, Old: inst.Edge[e], New: fault.Open})
		inst.SetState(e, fault.Open)
	}
	mu.Apply(inst, &m, diff)
	cr.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed) // re-arm claims

	res = cr.ServeBatch([]route.Request{{In: in, Out: out}}, 1, 2)
	if res[0].Path != nil {
		for _, v := range res[0].Path {
			if v == victim {
				t.Fatalf("path %v passes through discarded vertex %d", res[0].Path, victim)
			}
		}
	}
}
