package route

// Engine is the uniform seam over this package's three path-hunting
// engines — the sequential Router, the CAS-claiming ConcurrentRouter, and
// the speculate-then-commit ShardedEngine — so the layers above (core's
// Theorem-2 churn pipeline, netsim's workload drivers, experiment E9) can
// swap engines without hand-rolled per-engine call paths.
//
// The shared contract:
//
//   - ConnectBatch serves a batch of connection requests and reports
//     per-request results in input order. Router and ShardedEngine give
//     sequential semantics: request i's decision and path are exactly what
//     a sequential Router would produce processing the stream in order, so
//     any prefix of the results depends only on the corresponding prefix
//     of the requests. ConcurrentRouter is the deliberate exception: with
//     Workers > 1 its accept set is scheduler-DEPENDENT (the seed fixes
//     only the per-worker search RNGs, not the request-to-worker
//     assignment or claim-retry timing), which is exactly what E9
//     measures — and why multi-worker CAS rows never enter committed
//     deterministic tables.
//   - Disconnect releases a circuit previously established by
//     ConnectBatch; PathOf returns its path (pooled slices: valid only
//     while the circuit is live). Reset releases every live circuit.
//   - SetMasksShared adopts the caller-maintained repair masks and
//     CSR-slot traversal bytes (core.MaskUpdater's slices); MasksChanged
//     tells the engine those adopted bytes were edited in place between
//     batches, so engines that derive per-epoch state from them (the
//     sharded engine's routing guide) can refresh. MasksChangedDiff is
//     the same notification carrying the exact change lists the maintainer
//     already computed (core.MaskUpdater.Apply's recomputed edges and
//     ChangedVertices' usability flips): engines with derived state
//     refresh incrementally in O(#changes) instead of O(E), with results
//     bit-identical to a full MasksChanged. The lists may safely
//     over-approximate but must cover every edit since the last
//     notification; when the caller cannot bound the edits, MasksChanged
//     remains the full-rebuild fallback. Engines that read the bytes live
//     treat both as no-ops.
//   - Stats reports cumulative serving counters in engine-neutral form.
//
// Engines are not safe for concurrent use; ConnectBatch may parallelize
// internally but calls must be serialized by the caller.
type Engine interface {
	ConnectBatch(reqs []Request, res []Result) []Result
	Disconnect(in, out int32) error
	PathOf(in, out int32) []int32
	Reset()
	Stats() EngineStats
	SetMasksShared(vertexOK, edgeOK []bool, outAllowed []uint8)
	MasksChanged()
	MasksChangedDiff(vertices, edges []int32)
}

// EngineStats is the engine-neutral cumulative serving record of an
// Engine's ConnectBatch history.
type EngineStats struct {
	Batches  int64 // ConnectBatch calls
	Requests int64 // requests served across all batches
	Accepted int64 // circuits established
	Rejected int64 // requests denied (no idle path, busy/unusable endpoint)
}

// Compile-time checks: all three engines implement the seam.
var (
	_ Engine = (*Router)(nil)
	_ Engine = (*ConcurrentRouter)(nil)
	_ Engine = (*ShardedEngine)(nil)
)

// circuits is the per-input live-circuit registry shared by the batch
// engines (ShardedEngine, ConcurrentRouter's Engine seam): at most one
// live circuit per input terminal — an input stays claimed/busy while
// connected, so a second circuit cannot coexist — with O(1) install,
// lookup, and swap-removal. Fields are parallel arrays indexed by vertex:
// out[in] is the live circuit's output (-1 = none), path[in] its path, and
// ins/pos a mutual index for O(1) removal from the live list.
type circuits struct {
	out  []int32
	path [][]int32
	ins  []int32
	pos  []int32
}

func (c *circuits) ready() bool { return c.out != nil }

func (c *circuits) init(n int) {
	c.out = make([]int32, n)
	c.path = make([][]int32, n)
	c.pos = make([]int32, n)
	for v := range c.out {
		c.out[v] = -1
		c.pos[v] = -1
	}
}

// live reports whether input in has a live circuit.
func (c *circuits) live(in int32) bool { return c.out[in] != -1 }

// lookup returns the live path for (in, out), or nil.
func (c *circuits) lookup(in, out int32) []int32 {
	if in < 0 || int(in) >= len(c.out) || c.out[in] != out {
		return nil
	}
	return c.path[in]
}

// install registers a freshly established circuit.
func (c *circuits) install(in, out int32, p []int32) {
	c.out[in] = out
	c.path[in] = p
	c.pos[in] = int32(len(c.ins))
	c.ins = append(c.ins, in)
}

// remove unregisters the circuit (in, out), returning its path.
func (c *circuits) remove(in, out int32) ([]int32, bool) {
	if in < 0 || int(in) >= len(c.out) || c.out[in] != out {
		return nil, false
	}
	p := c.path[in]
	c.path[in] = nil
	c.out[in] = -1
	pos := c.pos[in]
	last := int32(len(c.ins) - 1)
	moved := c.ins[last]
	c.ins[pos] = moved
	c.pos[moved] = pos
	c.ins = c.ins[:last]
	c.pos[in] = -1
	return p, true
}

// drain unregisters every live circuit, handing each (input, path) to f
// (which releases claims, retires pooled paths, or simply forgets).
func (c *circuits) drain(f func(in int32, path []int32)) {
	for _, in := range c.ins {
		f(in, c.path[in])
		c.path[in] = nil
		c.out[in] = -1
		c.pos[in] = -1
	}
	c.ins = c.ins[:0]
}

// growResults resizes res to n entries, reusing capacity when possible.
func growResults(res []Result, n int) []Result {
	if cap(res) < n {
		return make([]Result, n)
	}
	return res[:n]
}

// ConnectBatch serves the requests strictly in order through Connect,
// reusing res (grown as needed) — the sequential reference implementation
// of the Engine seam. Attempts is 1 for every request; Path is nil on
// rejection (busy or unusable endpoint, duplicate circuit, or no idle
// path — the same outcomes Connect reports as errors).
func (rt *Router) ConnectBatch(reqs []Request, res []Result) []Result {
	res = growResults(res, len(reqs))
	rt.stats.Batches++
	rt.stats.Requests += int64(len(reqs))
	for i, rq := range reqs {
		res[i] = Result{Request: rq, Attempts: 1}
		if path, err := rt.Connect(rq.In, rq.Out); err == nil {
			res[i].Path = path
			rt.stats.Accepted++
		} else {
			rt.stats.Rejected++
		}
	}
	return res
}

// Stats returns the cumulative ConnectBatch serving counters.
func (rt *Router) Stats() EngineStats { return rt.stats }

// MasksChanged is a no-op: the router reads the shared traversal bytes
// live, so in-place edits between batches need no refresh.
func (rt *Router) MasksChanged() {}

// MasksChangedDiff is a no-op for the same reason as MasksChanged: no
// derived per-epoch state exists, so the change lists carry nothing to
// maintain.
func (rt *Router) MasksChangedDiff(vertices, edges []int32) {}
