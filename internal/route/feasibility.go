package route

// Word-parallel batch feasibility: one lane sweep answering "which of
// these ≤64 pending requests have any idle path right now" before any
// router runs. This is the routing-side instance of the batched
// reachability trick behind core.BatchAccessChecker (route cannot import
// core, so the sweep is restated here over the same graph.Levels
// contract): every vertex owns one 64-bit lane word, bit l meaning
// "request l's input reaches this vertex through idle usable vertices",
// and a single pass over vertices in topological-level order — plain ID
// order on level-sorted graphs, the cached permutation otherwise —
// propagates all 64 frontiers per machine-word OR.
//
// Busy state enters exactly as in the routers' hunts: a claimed vertex is
// never expanded, so no frontier passes through it (endpoints are screened
// before the sweep). Terminal slots (AdjTerminal) deposit only the lanes
// that requested that terminal as their output, mirroring the "a circuit
// may only enter a terminal if it is the requested output" rule. The
// verdict is therefore exact: bit l survives at request l's output iff
// Router.Connect / ShardedEngine.probe would find a path on the same
// snapshot — which is what makes the prefilter decision-neutral and lets
// ServeBatch skip probing (and reject) infeasible requests outright.

import (
	"ftcsn/internal/bitset"
	"ftcsn/internal/graph"
)

// laneWidth is the number of requests one sweep handles: one bit lane per
// request in a 64-bit word.
const laneWidth = 64

// lanePass is the reusable scratch of one feasibility sweep: the per-vertex
// lane words (a bitset.Set of capacity 64·V, vertex v's word is Words()[v])
// and the per-vertex output lane masks with their touched list.
type lanePass struct {
	rows    *bitset.Set
	outMask []uint64
	touched []int32
}

func newLanePass(g *graph.Graph) *lanePass {
	//ftlint:ignore hotpath constructor: built lazily once per shard lifetime (see ShardedEngine.speculate), then reused every batch
	return &lanePass{
		rows: bitset.New(64 * g.NumVertices()),
		//ftlint:ignore hotpath same one-time lane-pass construction: outMask lives for the shard's lifetime
		outMask: make([]uint64, g.NumVertices()),
	}
}

// sweep runs one lane pass for the requests at positions lanes (≤64 of
// them) of reqs, whose endpoints have already been screened idle and
// usable, and returns the feasible-lane bitmask. The claim snapshot must
// not change during the sweep (ServeBatch phase A guarantees this).
func (lp *lanePass) sweep(se *ShardedEngine, reqs []Request, lanes []int32) uint64 {
	lp.rows.Reset()
	words := lp.rows.Words()
	for l, ri := range lanes {
		rq := reqs[ri]
		lp.rows.Set(int(rq.In)<<6 | l)
		if lp.outMask[rq.Out] == 0 {
			lp.touched = append(lp.touched, rq.Out)
		}
		lp.outMask[rq.Out] |= 1 << uint(l)
	}
	start, _, heads := se.g.CSROut()
	allowed := se.cr.allowed
	claims := se.cr.claims
	order := se.lv.Order()
	// Level order (graph.Levels), so one pass visits every slot after its
	// tail's word is final — plain ID order when the graph is level-sorted
	// (order == nil). Claimed vertices are never expanded: their word may
	// hold bits, but no frontier continues through them — the sweep
	// analogue of the hunts' busy check. Output terminals are reached only
	// through AdjTerminal slots gated by outMask, and were screened idle,
	// so their surviving bits are exactly the feasible requests.
	for p := int32(0); p < int32(len(words)); p++ {
		v := p
		if order != nil {
			v = order[p]
		}
		w := words[v]
		if w == 0 || claims[v].Load() != 0 {
			continue
		}
		for idx := start[v]; idx < start[v+1]; idx++ {
			if c := allowed[idx]; c == 0 {
				words[heads[idx]] |= w
			} else if c == graph.AdjTerminal {
				if m := lp.outMask[heads[idx]]; m != 0 {
					words[heads[idx]] |= w & m
				}
			}
		}
	}
	var feas uint64
	for l, ri := range lanes {
		if words[reqs[ri].Out]&(1<<uint(l)) != 0 {
			feas |= 1 << uint(l)
		}
	}
	for _, v := range lp.touched {
		lp.outMask[v] = 0
	}
	lp.touched = lp.touched[:0]
	return feas
}
