// Package route implements circuit-switching session routing: establishing
// and releasing vertex-disjoint paths between idle terminals of a network.
//
// Pippenger & Lin's §4 observes that because their fault-tolerant network
// contains a *strictly* nonblocking network, "routing can be performed by a
// 'greedy' application of a standard path-finding algorithm, so no
// difficult computations are involved". Router is that greedy algorithm: a
// depth-first path hunt over idle usable vertices (visited-stamped, so the
// worst case stays linear while the common lightly-loaded case costs only
// about depth·degree). On a strictly nonblocking (sub)network it can never
// fail; on weaker networks (Beneš without rearrangement, butterflies) its
// failures are themselves measurements, which experiment E9 exploits.
//
// Two engines are provided: the sequential Router, and ConcurrentRouter,
// which processes many connection requests in parallel with one goroutine
// per request, claiming vertices with atomic compare-and-swap and retrying
// on conflict — a software analogue of the distributed path-selection
// setting of Arora, Leighton & Maggs [ALM].
package route

import (
	"errors"
	"fmt"

	"ftcsn/internal/arena"
	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
)

// ErrNoPath is returned when no idle path joins the requested terminals.
var ErrNoPath = errors.New("route: no idle path between requested terminals")

// ErrBusyTerminal is returned when an endpoint is already in a circuit.
var ErrBusyTerminal = errors.New("route: terminal already busy")

// ErrDiscardedTerminal is returned when an endpoint has been discarded by
// repair (its vertex mask bit is off).
var ErrDiscardedTerminal = errors.New("route: terminal discarded by repair")

// ErrDuplicateCircuit is returned when the requested circuit already exists.
var ErrDuplicateCircuit = errors.New("route: circuit already exists")

// Router maintains a set of vertex-disjoint circuits on a (possibly
// repaired) network and serves connect/disconnect requests greedily.
type Router struct {
	g        *graph.Graph
	vertexOK []bool // usable vertices after repair (nil = all usable)
	edgeOK   []bool // usable switches after repair (nil = all usable)
	busy     []bool // vertices held by established circuits
	circuits map[int64][]int32

	// allowed is the CSR-slot-aligned traversal byte array the BFS hot
	// loop reads instead of the edgeOK/vertexOK/IsTerminal triple (see
	// graph.AdjBlocked/AdjTerminal). It is either owned (rebuilt by
	// SetMasks into allowedOwned) or shared (adopted from a caller that
	// maintains it incrementally, via SetMasksShared).
	allowed      []uint8
	allowedOwned []uint8

	// BFS scratch, epoch-stamped to avoid clearing per request.
	seenEpoch []uint32
	epoch     uint32
	prevEdge  []int32
	queue     []int32
	rev       []int32 // path-reconstruction scratch

	// Path pooling (EnablePathReuse): retired circuit paths are kept on a
	// free list and reused by later Connects, making steady-state churn
	// allocation-free. Pooled paths are only valid until Disconnect.
	pooled   bool
	pathPool [][]int32

	// levels is the graph's per-vertex topological level (graph.Levels;
	// nil on cyclic graphs): the exact pruning cut of the DFS hunt — a
	// non-output vertex at level(out) or above can never reach out.
	levels []int32

	stats EngineStats // cumulative ConnectBatch counters (engine seam)
}

// NewRouter returns a router over the fault-free network g.
func NewRouter(g *graph.Graph) *Router {
	return newRouterIn(g, nil, nil, nil)
}

// NewRouterIn is NewRouter drawing the O(V)/O(E) buffers from a (nil a
// allocates normally) — the pooled form core.EvaluatorPool uses.
func NewRouterIn(g *graph.Graph, a *arena.Arena) *Router {
	return newRouterIn(g, nil, nil, a)
}

// NewRepairedRouter returns a router over the repaired network defined by a
// fault instance: the paper's discard rule removes both endpoints of every
// failed switch (terminals excepted), and only normal switches conduct.
func NewRepairedRouter(inst *fault.Instance) *Router {
	usable := inst.Repair()
	edgeOK := make([]bool, inst.G.NumEdges())
	for e := range edgeOK {
		edgeOK[e] = inst.RepairedEdgeUsable(usable, int32(e))
	}
	return newRouter(inst.G, usable, edgeOK)
}

func newRouter(g *graph.Graph, vertexOK, edgeOK []bool) *Router {
	return newRouterIn(g, vertexOK, edgeOK, nil)
}

func newRouterIn(g *graph.Graph, vertexOK, edgeOK []bool, a *arena.Arena) *Router {
	n := g.NumVertices()
	rt := &Router{
		g:         g,
		vertexOK:  vertexOK,
		edgeOK:    edgeOK,
		busy:      a.Bools(n),
		circuits:  make(map[int64][]int32),
		seenEpoch: a.U32(n),
		prevEdge:  a.I32(n),
		queue:     a.I32(256)[:0],
	}
	rt.allowedOwned = g.BuildOutAllowed(edgeOK, vertexOK, a.Bytes(g.NumEdges()))
	rt.allowed = rt.allowedOwned
	if lv, err := g.Levels(); err == nil {
		rt.levels = lv.PerVertex()
	}
	return rt
}

// EnablePathReuse switches the router to pooled path slices: the slice
// returned by Connect is recycled once its circuit is Disconnected (or the
// router is Reset), so callers must not retain it past the circuit's
// lifetime. Together with SetMasks and Reset this makes a long-lived router
// allocation-free in steady state; core.Evaluator relies on it.
func (rt *Router) EnablePathReuse() { rt.pooled = true }

// SetMasks replaces the usable-vertex and usable-switch masks (as produced
// by fault.Instance.Repair / RepairedEdgeUsable) and releases every
// established circuit, since a mask change invalidates existing paths. It
// lets one router serve many fault instances without reallocating its BFS
// and circuit state.
func (rt *Router) SetMasks(vertexOK, edgeOK []bool) {
	rt.vertexOK, rt.edgeOK = vertexOK, edgeOK
	rt.allowedOwned = rt.g.BuildOutAllowed(edgeOK, vertexOK, rt.allowedOwned)
	rt.allowed = rt.allowedOwned
	rt.Reset()
}

// SetMasksShared is SetMasks taking, in addition, the caller-maintained
// CSR-slot-aligned traversal byte array for the same masks (as built by
// graph.BuildOutAllowed and kept current by core's incremental mask
// updater). The router adopts all three slices without copying: as the
// caller updates them in place between trials, only Reset is needed per
// trial, so mask changes cost O(#changes) instead of O(E).
func (rt *Router) SetMasksShared(vertexOK, edgeOK []bool, outAllowed []uint8) {
	rt.vertexOK, rt.edgeOK = vertexOK, edgeOK
	rt.allowed = outAllowed
	rt.Reset()
}

func circuitKey(in, out int32) int64 { return int64(in)<<32 | int64(uint32(out)) }

func (rt *Router) usableVertex(v int32) bool {
	//ftlint:ignore seamcontract audited endpoint-admission accessor: vertexOK gates terminals only; per-edge admission stays in the traversal bytes
	return rt.vertexOK == nil || rt.vertexOK[v]
}

func (rt *Router) usableEdge(e int32) bool {
	//ftlint:ignore seamcontract audited: called only from VerifyInvariants, which cross-checks established paths against the raw masks
	return rt.edgeOK == nil || rt.edgeOK[e]
}

// Connect establishes a circuit from input in to output out along a path
// of idle usable vertices, returning the path (in … out). It fails with
// ErrBusyTerminal if either endpoint is busy, ErrDiscardedTerminal if
// repair discarded an endpoint, ErrDuplicateCircuit on a duplicate
// request, and ErrNoPath if the greedy search finds no idle route.
//
//ftcsn:hotpath sequential reference router; 0 allocs/op pinned by BenchmarkGreedyConnect
func (rt *Router) Connect(in, out int32) ([]int32, error) {
	if rt.busy[in] || rt.busy[out] {
		return nil, ErrBusyTerminal
	}
	if !rt.usableVertex(in) || !rt.usableVertex(out) {
		return nil, ErrDiscardedTerminal
	}
	if _, dup := rt.circuits[circuitKey(in, out)]; dup {
		return nil, ErrDuplicateCircuit
	}
	rt.epoch++
	if rt.epoch == 0 { // wrapped: clear stamps and restart epochs
		for i := range rt.seenEpoch {
			rt.seenEpoch[i] = 0
		}
		rt.epoch = 1
	}
	rt.seenEpoch[in] = rt.epoch
	rt.queue = rt.queue[:0]
	rt.queue = append(rt.queue, in)
	found := false
	// Greedy depth-first path hunting (the queue doubles as the stack):
	// on a lightly loaded network the search dives straight to the output
	// in O(depth·degree) steps instead of sweeping the whole usable graph
	// the way a breadth-first search does, and the visited stamps keep the
	// worst case at one scan per edge, so completeness is unchanged — a
	// connect succeeds exactly when an idle usable path exists. On this
	// repository's stage-layered networks every input→output path has the
	// same length, so path-length statistics are search-order independent.
	// The hot loop reads one byte per CSR slot (graph.AdjBlocked /
	// AdjTerminal) in place of the usable-switch, usable-head and
	// terminal-head lookups, with heads read sequentially.
	start, edges, heads := rt.g.CSROut()
	allowed := rt.allowed
	seen, busy, epoch := rt.seenEpoch, rt.busy, rt.epoch
	// Levels-aware pruning: every edge steps to a strictly higher level
	// (graph.Levels), so a non-output vertex at level(out) or above can
	// reach only vertices above level(out) — never out. Skipping such a
	// vertex is exact: neither it nor anything in its (entirely prunable)
	// descent cone can discover out, so the pop order and prevEdge chain
	// of every surviving vertex — hence decisions AND paths — are
	// bit-identical to the unpruned hunt. On networks whose outputs all
	// sit on the last level the cut is vacuous; it pays on families with
	// output levels below the maximum (superconcentrator recursions,
	// Kahn-leveled wrapped graphs), where an unpruned hunt wanders past
	// the target's level.
	lvl := rt.levels
	var outLvl int32
	if lvl != nil {
		outLvl = lvl[out]
	}
	for len(rt.queue) > 0 && !found {
		v := rt.queue[len(rt.queue)-1]
		rt.queue = rt.queue[:len(rt.queue)-1]
		for idx := start[v]; idx < start[v+1]; idx++ {
			w := heads[idx]
			if !graph.SlotAdmits(allowed[idx], w, out) {
				continue
			}
			if lvl != nil && w != out && lvl[w] >= outLvl {
				continue
			}
			if seen[w] == epoch || busy[w] {
				continue
			}
			seen[w] = epoch
			rt.prevEdge[w] = edges[idx]
			if w == out {
				found = true
				break
			}
			rt.queue = append(rt.queue, w)
		}
	}
	if !found {
		return nil, ErrNoPath
	}
	// Reconstruct and claim the path.
	rt.rev = rt.rev[:0]
	for v := out; ; {
		rt.rev = append(rt.rev, v)
		if v == in {
			break
		}
		v = rt.g.EdgeFrom(rt.prevEdge[v])
	}
	path := rt.newPath(len(rt.rev))
	for i, v := range rt.rev {
		path[len(rt.rev)-1-i] = v
	}
	for _, v := range path {
		rt.busy[v] = true
	}
	rt.circuits[circuitKey(in, out)] = path
	return path, nil
}

// newPath returns an n-element path slice, recycled from the pool when path
// reuse is enabled and a retired slice is large enough.
func (rt *Router) newPath(n int) []int32 {
	if rt.pooled {
		for len(rt.pathPool) > 0 {
			last := len(rt.pathPool) - 1
			p := rt.pathPool[last]
			rt.pathPool = rt.pathPool[:last]
			if cap(p) >= n {
				return p[:n]
			}
			// Too small to reuse: drop it and try the next.
		}
	}
	//ftlint:ignore hotpath pool-miss fallback: steady-state churn recycles retired paths, so this is first-use only
	return make([]int32, n)
}

// retirePath hands a no-longer-live circuit path back to the pool.
func (rt *Router) retirePath(p []int32) {
	if rt.pooled {
		rt.pathPool = append(rt.pathPool, p)
	}
}

// Disconnect releases the circuit between in and out.
func (rt *Router) Disconnect(in, out int32) error {
	key := circuitKey(in, out)
	path, ok := rt.circuits[key]
	if !ok {
		return fmt.Errorf("route: no circuit (%d,%d)", in, out)
	}
	for _, v := range path {
		rt.busy[v] = false
	}
	delete(rt.circuits, key)
	rt.retirePath(path)
	return nil
}

// ActiveCircuits returns the number of established circuits.
func (rt *Router) ActiveCircuits() int { return len(rt.circuits) }

// Busy reports whether vertex v is held by a circuit.
func (rt *Router) Busy(v int32) bool { return rt.busy[v] }

// BusyMask returns the busy-vertex mask (shared; do not mutate).
func (rt *Router) BusyMask() []bool { return rt.busy }

// PathOf returns the established path for (in, out), or nil.
func (rt *Router) PathOf(in, out int32) []int32 { return rt.circuits[circuitKey(in, out)] }

// Reset releases all circuits, keeping every buffer for reuse. It clears
// busy flags only along the live circuit paths (every busy vertex lies on
// one — see VerifyInvariants), so a reset costs O(total live path length)
// rather than O(V).
func (rt *Router) Reset() {
	//ftlint:ignore determinism order-insensitive fold: clearing busy bits and retiring paths commutes across circuits
	for _, path := range rt.circuits {
		for _, v := range path {
			rt.busy[v] = false
		}
		rt.retirePath(path)
	}
	clear(rt.circuits)
}

// VerifyInvariants checks that established circuits are vertex-disjoint
// directed paths over usable idle-claimed vertices; it is used by tests and
// the churn harness.
func (rt *Router) VerifyInvariants() error {
	claimed := make(map[int32]bool)
	//ftlint:ignore determinism verification helper: which violation is reported first may vary, but any violation fails the caller
	for key, path := range rt.circuits {
		in := int32(key >> 32)
		out := int32(uint32(key))
		if len(path) < 2 || path[0] != in || path[len(path)-1] != out {
			return fmt.Errorf("route: malformed path for (%d,%d)", in, out)
		}
		for i, v := range path {
			if claimed[v] {
				return fmt.Errorf("route: vertex %d on two circuits", v)
			}
			claimed[v] = true
			if !rt.busy[v] {
				return fmt.Errorf("route: path vertex %d not marked busy", v)
			}
			if !rt.usableVertex(v) {
				return fmt.Errorf("route: path vertex %d not usable", v)
			}
			if i == 0 {
				continue
			}
			// There must be a usable switch path[i-1] -> path[i].
			ok := false
			for _, e := range rt.g.OutEdges(path[i-1]) {
				if rt.g.EdgeTo(e) == v && rt.usableEdge(e) {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("route: no usable switch %d->%d", path[i-1], v)
			}
		}
	}
	for v, isBusy := range rt.busy {
		if isBusy && !claimed[int32(v)] {
			return fmt.Errorf("route: vertex %d busy but on no circuit", v)
		}
	}
	return nil
}
