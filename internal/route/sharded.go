package route

// ShardedEngine scales circuit routing past what one sequential Router can
// serve by splitting each batch of connection requests across S shards while
// keeping the accept/reject decision — and the established path — of every
// request bit-identical to a sequential Router processing the same batch in
// order. The mechanism is speculate-then-commit:
//
//   - Phase A (parallel, lock-free): input terminals are partitioned across
//     shards; each shard speculatively routes its requests against the
//     committed claim state at batch start (a read-only snapshot: claims
//     only change in phase B), using the same depth-first path hunt as
//     Router.Connect. Shards share the read-mostly CSR-slot traversal bytes
//     (SetMasksShared) and the per-epoch output-reachability guide; each
//     owns its probe scratch — the per-worker state pattern of
//     montecarlo.BlockStarter scratches. Batches big enough to pay for the
//     handoff run on persistent worker goroutines parked on the engine's
//     task channel (one per shard beyond the caller's), so fanning a batch
//     out costs a channel wake, not a goroutine spawn. A word-parallel
//     prefilter (feasibility.go) can answer "which of these ≤64 pending
//     requests have any idle path right now" in one lane sweep before any
//     probing runs.
//
//   - Phase B (commit): requests commit in input order through the
//     ConcurrentRouter's CAS claim protocol. A speculative path whose probe
//     never touched a vertex claimed earlier in the batch is provably the
//     exact path the sequential Router would have found (the probe's step
//     sequence is unchanged by the missing claims), so it commits as-is. A
//     probe that did touch one — a cross-shard (or cross-request) conflict
//     — falls back to a fresh probe against the live claim state, which is
//     exactly the sequential Router's view at that request's turn. The
//     shard partition is therefore a performance heuristic only;
//     correctness never depends on it.
//
//     On batches that ran phase A in parallel, the commit phase itself is
//     parallelized by claim-disjointness detection (see commitDisjoint):
//     one pass stamps every speculative path with its owning request, a
//     parallel sweep then proves, per request, that its probe trace is
//     untouched by any earlier request's speculative path — such traces
//     are exactly the requests the ordered walk would fast-path — and the
//     maximal conflict-free prefix commits on the workers with no ordering
//     at all (the accepted paths are pairwise disjoint, so the claim
//     stores commute). Only the residue from the first conflicted request
//     onward takes the ordered CAS walk. Decisions and paths are
//     bit-identical to the ordered walk — and hence to the sequential
//     Router — by construction; see the proof at commitDisjoint.
//
// Within a batch only connects happen, so the claimed-vertex set grows
// monotonically: a request with no idle path at the batch-start snapshot
// (prefilter or probe says so) has none at its turn either, and rejecting
// it early is decision-identical to the sequential Router. This monotone
// argument plus the untouched-probe argument make the whole engine
// deterministic: results depend only on (committed state, request batch),
// never on the shard count, the scheduler, or whether the prefilter ran.
// The differential and invariance tests in sharded_test.go lock all of
// this down.

import (
	"fmt"
	"runtime"
	"sync"

	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
)

// PrefilterMode selects when ServeBatch runs the word-parallel feasibility
// sweep ahead of per-request probing. The sweep is decision-neutral — it
// rejects exactly the requests whose probe would fail on the same snapshot
// — so the mode is a pure performance knob.
type PrefilterMode uint8

const (
	// PrefilterAuto engages the sweep per shard while that shard's rejects
	// are common (≥1/16 of its share of the previous batch): sweeping 64
	// doomed requests costs one pass over the CSR, where 64 failing probes
	// would each scan their whole reachable cone. The policy is per shard
	// because rejects are often local — a fault cluster that dooms one
	// input range's requests says nothing about the other shards — so a
	// global rate either over-sweeps healthy shards or starves the sick
	// one. A shard that served no requests keeps its previous state. Under
	// light load the sweep stays out of the way everywhere. Engagement is
	// a pure function of the served stream (the partition is by input
	// terminal), so decisions remain deterministic — and the sweep itself
	// is decision-neutral regardless.
	PrefilterAuto PrefilterMode = iota
	// PrefilterOff never sweeps; every request is probed.
	PrefilterOff
	// PrefilterOn sweeps every batch.
	PrefilterOn
)

// ShardedStats counts, cumulatively, how batches were served; it is the
// observability hook the stress tests use to prove the fast path dominates
// and the fallback is actually exercised.
type ShardedStats struct {
	Batches, Requests, Accepted int64

	// FastPath: speculative paths committed untouched (bit-identical to the
	// sequential router's by the probe-trace argument). Fallbacks: requests
	// re-probed at commit time after a conflict. Conflicts counts fallbacks
	// that had a speculative path invalidated (the rest had none).
	FastPath, Fallbacks, Conflicts int64

	// Reject breakdown: endpoints busy/unusable at snapshot, prefilter
	// lane-sweep verdicts, failed snapshot probes, and commit-time rejects
	// (endpoint taken this batch, or fallback probe found nothing).
	EndpointRejects, PrefilterRejects, ProbeRejects, CommitRejects int64

	// PrefilterSweeps counts lane sweeps run (≤64 lanes each).
	PrefilterSweeps int64

	// ParallelBatches counts batches whose phases ran on the persistent
	// worker goroutines (batch large enough for the handoff to pay);
	// DisjointCommits counts fast-path circuits committed by the
	// conflict-free parallel commit rather than the ordered walk. Both are
	// scheduling observability only — decisions and paths never depend on
	// which path served a batch.
	ParallelBatches, DisjointCommits int64

	// Adaptive-policy transitions: a shard's observed reject share crossed
	// the engage threshold (Engages) or fell back under it (Disengages).
	// The state machine tracks in every mode — so a later switch to
	// PrefilterAuto acts on fresh evidence — but only PrefilterAuto turns
	// an engaged shard into actual sweeps. Engages-Disengages is the
	// number of shards currently engaged.
	PrefilterEngages, PrefilterDisengages int64
}

// request flags written in phase A (per batch slot). Both reject flags
// mark decisions final at the batch-start snapshot — by claim monotonicity
// the sequential router rejects these requests too.
const (
	flagNone uint8 = iota
	// flagRejected: no idle path at the snapshot (prefilter or probe).
	flagRejected
	// flagRejectedEndpoint: an endpoint was busy or unusable, so the
	// request was never probed (Result.Attempts stays 0).
	flagRejectedEndpoint
)

// probeScratch is one worker's depth-first search state: epoch-stamped
// visited marks, a reconstruction buffer, and an arena that speculative
// paths and probe traces are appended into so a whole batch of probes
// allocates nothing in steady state.
type probeScratch struct {
	seenEpoch []uint32
	epoch     uint32
	prevEdge  []int32
	stack     []int32
	rev       []int32
	arena     []int32 // paths + visit traces; views stay valid across growth
}

// shard is one partition worker: the requests routed here are those whose
// input terminal maps to this shard, and idx/scratch/feas are reused
// across batches (the montecarlo.BlockStarter per-worker pattern).
type shard struct {
	idx  []int32 // request indices of this batch owned by this shard
	surv []int32 // endpoint/prefilter survivors scratch
	sc   probeScratch
	fp   *lanePass // lazily built word-parallel feasibility scratch

	// engaged is this shard's adaptive-prefilter state (PrefilterAuto):
	// sweep while the shard's own reject share of its previous batch was
	// ≥ 1/16. Updated after each commit phase from the final decisions.
	engaged bool

	// per-batch counters, folded into ShardedStats after the join so phase
	// A needs no atomics.
	endpointRejects, prefilterRejects, probeRejects, sweeps int64
}

// specEntry is a request's phase-A outcome: the speculative path and the
// probe's visit trace (every vertex the search stamped), both views into
// the owning shard's arena.
type specEntry struct {
	path  []int32
	trace []int32
}

// ShardedEngine routes batches of connection requests over S shards with
// sequential-router semantics. See the package comment at the top of this
// file for the algorithm. The zero value is not usable; construct with
// NewShardedEngine or NewRepairedShardedEngine. An engine is not safe for
// concurrent use: ServeBatch/Disconnect/Reset calls must be serialized by
// the caller (ServeBatch parallelizes internally).
type ShardedEngine struct {
	g  *graph.Graph
	cr *ConcurrentRouter // claim protocol + shared traversal bytes

	// Prefilter selects the feasibility-sweep policy (default
	// PrefilterAuto). It may be changed between batches.
	Prefilter PrefilterMode

	shards []*shard

	// per-request batch state, indexed by request position.
	spec  []specEntry
	flags []uint8

	// commit-phase state: batchMark stamps vertices claimed during the
	// current batch (so fast-path validation is one load per traced
	// vertex), commitSc reprobes conflicts against live claims.
	batchMark  []uint32
	batchEpoch uint32
	commitSc   probeScratch

	// disjoint-commit state (commitDisjoint): specStamp/specOwner record,
	// per vertex, the smallest request index whose speculative path covers
	// it this batch (epoch-stamped with batchEpoch); valid holds the
	// parallel sweep's per-request verdicts; commitDst the pooled
	// destination slices handed to the parallel copy pass.
	specStamp []uint32
	specOwner []uint32
	valid     []uint8
	commitDst [][]int32

	// Persistent phase workers: len(shards)-1 goroutines parked on workCh
	// (started lazily by the first batch big enough to fan out, stopped by
	// Close or, as a backstop, by a finalizer once the engine is
	// unreachable — workers hold only the channel, never the engine, so an
	// abandoned engine stays collectable).
	workCh chan workerTask

	// committed circuits: the engines' shared per-input registry (one live
	// circuit per input terminal — an input is claimed while connected, so
	// a second circuit cannot coexist).
	circ circuits

	pathPool [][]int32

	wg sync.WaitGroup // phase-A join, hoisted to keep ServeBatch allocation-free

	// Word-parallel routing guide, rebuilt per mask epoch: reachOut holds
	// guideGroups lane words per vertex, bit (outIdx&63) of word
	// (outIdx>>6) set iff an allowed-slot path leads from the vertex to
	// that output, ignoring busy state. Probes prune descents the guide
	// proves hopeless; pruning is exact, so decisions are unchanged. nil
	// when the graph has no leveling or too many outputs.
	reachOut    []uint64
	guideGroups int
	outIdx      []int32 // per-vertex output index, -1 = not an output

	// Incremental guide maintenance (MasksChangedDiff): a reverse-cone
	// worklist over the leveling, a groups-wide row scratch, and the
	// opt-in width budget (lane words per vertex) that gates whether the
	// guide exists at all. guideLimit defaults to maxGuideGroups; big-n
	// callers raise it with SetGuideLimit.
	guideWl    *graph.LevelWorklist
	rowScratch []uint64
	guideLimit int

	// lv is the graph's topological leveling (graph.Levels), the iteration
	// contract behind the feasibility sweep and the guide rebuild. nil only
	// for cyclic graphs — the cycle-safe fallback: probes still run (DFS
	// needs no leveling), but the prefilter and guide stay off.
	lv *graph.Levels

	stats ShardedStats
}

// maxGuideGroups bounds the guide's memory at 8 lane words (512 outputs)
// per vertex by default; larger networks route unguided unless the caller
// raises the budget with SetGuideLimit.
const maxGuideGroups = 8

// guideRebuildDivisor is the incremental-maintenance cutover: a diff
// touching at least 1/guideRebuildDivisor of all edges falls back to the
// full rebuild, whose straight-line sweep beats worklist bookkeeping once
// most rows are dirty anyway. Purely a cost choice — both paths produce
// bit-identical guide words.
const guideRebuildDivisor = 8

// parallelMinPerShard is the phase-A batch size (per shard) below which
// spawning goroutines costs more than it saves; smaller batches speculate
// inline. Purely a scheduling choice — results are identical either way.
const parallelMinPerShard = 8

// NewShardedEngine returns an engine over the fault-free network g with the
// given shard count. It panics if shards <= 0: a non-positive count is
// always a caller bug (an uninitialized or negated config value), and
// silently clamping it to 1 would masquerade as "run sequentially".
func NewShardedEngine(g *graph.Graph, shards int) *ShardedEngine {
	return newShardedEngine(g, NewConcurrentRouter(g), shards)
}

// NewRepairedShardedEngine returns an engine over the network repaired from
// inst by the paper's discard rule. Panics if shards <= 0 (see
// NewShardedEngine).
func NewRepairedShardedEngine(inst *fault.Instance, shards int) *ShardedEngine {
	return newShardedEngine(inst.G, NewConcurrentRepairedRouter(inst), shards)
}

func newShardedEngine(g *graph.Graph, cr *ConcurrentRouter, shards int) *ShardedEngine {
	if shards <= 0 {
		panic(fmt.Sprintf("route: shard count must be >= 1, got %d", shards))
	}
	n := g.NumVertices()
	se := &ShardedEngine{
		g:         g,
		cr:        cr,
		shards:    make([]*shard, shards),
		batchMark: make([]uint32, n),
		specStamp: make([]uint32, n),
		specOwner: make([]uint32, n),
		outIdx:    make([]int32, n),
	}
	se.circ.init(n)
	for i := range se.shards {
		se.shards[i] = &shard{sc: se.newProbeScratch()}
	}
	se.commitSc = se.newProbeScratch()
	for v := range se.outIdx {
		se.outIdx[v] = -1
	}
	for i, v := range g.Outputs() {
		se.outIdx[v] = int32(i)
	}
	se.lv, _ = g.Levels()
	se.guideLimit = maxGuideGroups
	if se.lv != nil {
		se.guideWl = graph.NewLevelWorklist(se.lv, n)
	}
	se.rebuildGuide()
	return se
}

func (se *ShardedEngine) newProbeScratch() probeScratch {
	n := se.g.NumVertices()
	return probeScratch{
		seenEpoch: make([]uint32, n),
		prevEdge:  make([]int32, n),
		stack:     make([]int32, 0, 256),
	}
}

// workerTask is one unit of handed-off work: a phase-A speculation pass
// (sh != nil) or a range of a commit sub-phase (kind + [lo,hi)). Tasks are
// sent by value on a buffered channel, so fanning a batch out performs no
// allocation — the struct is copied into the channel's ring buffer.
type workerTask struct {
	se   *ShardedEngine
	sh   *shard // non-nil: phase-A speculation for this shard
	kind uint8  // taskValidate or taskCommit when sh == nil
	lo   int
	hi   int
	reqs []Request
	res  []Result
	wg   *sync.WaitGroup
}

// commit sub-phase kinds dispatched through runRange.
const (
	taskValidate uint8 = iota
	taskCommit
)

// shardedWorker is the persistent worker loop: park on the task channel,
// run whatever arrives, signal the batch's WaitGroup, park again. The loop
// references ONLY the channel — never the engine — so an abandoned engine
// stays garbage-collectable and its finalizer can shut the workers down.
// (The task-local engine pointer is dead once the iteration's last use
// passes; Go's precise stack maps keep a parked worker from pinning it.)
//
//ftcsn:hotpath runs every phase of every batch on every core; any alloc here multiplies by worker count
func shardedWorker(ch <-chan workerTask) {
	for t := range ch {
		if t.sh != nil {
			t.sh.speculate(t.se, t.reqs)
		} else {
			t.se.runRange(t.kind, t.reqs, t.res, t.lo, t.hi)
		}
		t.wg.Done()
	}
}

// ensureWorkers lazily starts the persistent phase workers (S-1 of them:
// the caller's goroutine always runs a share itself). Buffered to S so the
// fan-out loop never blocks on a send. The finalizer is a leak backstop
// only — an engine dropped without Close still stops its workers once the
// GC proves it unreachable (possible precisely because workers do not hold
// the engine); callers that care about prompt shutdown call Close.
func (se *ShardedEngine) ensureWorkers() {
	if se.workCh != nil {
		return
	}
	//ftlint:ignore hotpath lazy one-time worker startup: the channel and goroutines persist for the engine's lifetime
	se.workCh = make(chan workerTask, len(se.shards))
	for i := 1; i < len(se.shards); i++ {
		//ftlint:ignore hotpath lazy one-time worker startup: spawned once, then parked on the task channel across batches
		go shardedWorker(se.workCh)
	}
	runtime.SetFinalizer(se, (*ShardedEngine).Close)
}

// Close stops the persistent phase workers, if any are running. It is
// idempotent, safe on engines that never started workers, and does NOT
// retire the engine: the next sufficiently large batch restarts them. Must
// not be called concurrently with ServeBatch (the usual single-caller
// contract).
func (se *ShardedEngine) Close() {
	if se.workCh != nil {
		close(se.workCh)
		se.workCh = nil
	}
	runtime.SetFinalizer(se, nil)
}

// runRange dispatches one commit sub-phase over requests [lo,hi). A plain
// method call behind a constant switch — method-value closures would
// allocate per fan-out.
func (se *ShardedEngine) runRange(kind uint8, reqs []Request, res []Result, lo, hi int) {
	switch kind {
	case taskValidate:
		se.validateRange(lo, hi)
	case taskCommit:
		se.commitRange(reqs, res, lo, hi)
	}
}

// fanOut runs kind over [0,n) split into contiguous per-shard chunks:
// chunk 0 on the caller, the rest on the persistent workers. Below the
// parallel threshold it degrades to one inline call — results are
// identical either way (the ranges are data-disjoint by construction; see
// commitDisjoint).
func (se *ShardedEngine) fanOut(kind uint8, reqs []Request, res []Result, n int) {
	if n == 0 {
		return
	}
	S := len(se.shards)
	if S == 1 || n < parallelMinPerShard*S || se.workCh == nil {
		se.runRange(kind, reqs, res, 0, n)
		return
	}
	chunk := (n + S - 1) / S
	for s := 1; s < S; s++ {
		lo := s * chunk
		if lo >= n {
			break
		}
		se.wg.Add(1)
		se.workCh <- workerTask{
			se: se, kind: kind, lo: lo, hi: min(lo+chunk, n),
			reqs: reqs, res: res, wg: &se.wg,
		}
	}
	se.runRange(kind, reqs, res, 0, min(chunk, n))
	se.wg.Wait()
}

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// ShardedStats returns the cumulative engine-specific serving counters
// (fast-path/fallback split, reject breakdown, prefilter activity).
func (se *ShardedEngine) ShardedStats() ShardedStats { return se.stats }

// Stats returns the engine-neutral serving counters (the Engine seam);
// ShardedStats has the detailed breakdown.
func (se *ShardedEngine) Stats() EngineStats {
	return EngineStats{
		Batches:  se.stats.Batches,
		Requests: se.stats.Requests,
		Accepted: se.stats.Accepted,
		Rejected: se.stats.Requests - se.stats.Accepted,
	}
}

// ConnectBatch is ServeBatch under its Engine-seam name.
//
//ftcsn:hotpath the Engine-seam batch entry point; steady-state allocs are pinned by BenchmarkShardedChurn
func (se *ShardedEngine) ConnectBatch(reqs []Request, res []Result) []Result {
	return se.ServeBatch(reqs, res)
}

// MasksChanged rebuilds the output-reachability guide from the adopted
// traversal bytes (the Engine-seam name for RefreshGuide — see there).
// The full-sweep fallback of MasksChangedDiff: callers that know the
// exact change lists should prefer the diff form, which costs O(#changes)
// instead of O(E·groups).
func (se *ShardedEngine) MasksChanged() { se.rebuildGuide() }

// MasksChangedDiff brings the guide up to date after an in-place edit of
// the shared traversal bytes, given the exact change lists a mask
// maintainer already has (core.MaskUpdater.Apply returns the recomputed
// edge IDs; ChangedVertices the usability flips): instead of the O(E·
// groups) full sweep, it recomputes only the reverse cone of the diff.
// The worklist is seeded with the tails of the changed edges (a changed
// slot byte affects exactly its tail's row) plus the changed vertices,
// and drained in descending level order — every pending successor is
// final before a row is recomputed — re-deriving each dirty row from the
// forward CSR and waking a row's predecessors (reverse CSR) only when its
// words actually changed. Rows outside the cone are untouched, so the
// result is bit-identical to a full rebuild (locked by
// TestIncrementalGuideMatchesRebuild and FuzzIncrementalGuide; soundness
// argument in DESIGN.md §2.13).
//
// The lists may safely over-approximate (extra entries recompute to
// unchanged rows and early-out) but must cover every edge whose byte
// changed since the guide was last current. Like MasksChanged, it must be
// called between batches, never concurrently with ServeBatch.
//
//ftcsn:hotpath per-epoch guide maintenance — the O(#changes) replacement for the full rebuild
func (se *ShardedEngine) MasksChangedDiff(vertices, edges []int32) {
	if se.reachOut == nil {
		// No guide is derived from the bytes (unleveled graph, too many
		// outputs, or detached masks); the routers read the bytes live.
		return
	}
	if (len(vertices)+len(edges))*guideRebuildDivisor >= se.g.NumEdges() {
		se.rebuildGuide()
		return
	}
	wl := se.guideWl
	wl.Begin()
	for _, e := range edges {
		wl.Push(se.g.EdgeFrom(e))
	}
	for _, v := range vertices {
		wl.Push(v)
	}
	groups := se.guideGroups
	start, _, heads := se.g.CSROut()
	rstart, redges, tails := se.g.CSRIn()
	outSlotOf := se.g.OutSlot
	allowed := se.cr.allowed
	scratch := se.rowScratch[:groups]
	for v, ok := wl.Next(); ok; v, ok = wl.Next() {
		// Re-derive v's row from the forward CSR — the same per-vertex
		// body as rebuildGuide, into scratch so the old row survives for
		// the change test.
		clear(scratch)
		if oi := se.outIdx[v]; oi >= 0 {
			scratch[int(oi)>>6] |= 1 << (uint(oi) & 63)
		}
		for idx := start[v]; idx < start[v+1]; idx++ {
			c := allowed[idx]
			w := heads[idx]
			if c == 0 {
				wrow := se.reachOut[int(w)*groups : int(w)*groups+groups]
				for g := range scratch {
					scratch[g] |= wrow[g]
				}
			} else if c == graph.AdjTerminal {
				if oi := se.outIdx[w]; oi >= 0 {
					scratch[int(oi)>>6] |= 1 << (uint(oi) & 63)
				}
			}
		}
		row := se.reachOut[int(v)*groups : int(v)*groups+groups]
		changed := false
		for g := range scratch {
			if row[g] != scratch[g] {
				changed = true
				break
			}
		}
		if !changed {
			// Early-out: predecessors read exactly these words, so the
			// cone is pruned here.
			continue
		}
		copy(row, scratch)
		// Wake the predecessors that read v's row: tails of currently
		// open (c == 0) slots into v. Blocked slots contribute nothing,
		// and terminal slots read only v's static output bit — and any
		// tail whose slot byte itself changed is already seeded.
		for idx := rstart[v]; idx < rstart[v+1]; idx++ {
			if allowed[outSlotOf(redges[idx])] == 0 {
				wl.Push(tails[idx])
			}
		}
	}
}

// SetGuideLimit sets the guide's width budget in 64-output lane words and
// rebuilds the guide under it. The default budget (8 words = 512 outputs)
// keeps the guide's memory negligible at paper scale; big-n networks —
// where incremental maintenance makes a wide guide affordable — opt in to
// a larger budget. groups <= 0 disables the guide; pruning is exact, so
// the budget never changes decisions, only probe cost.
func (se *ShardedEngine) SetGuideLimit(groups int) {
	se.guideLimit = groups
	se.rebuildGuide()
}

// GuideWords exposes the output-reachability guide for tests and
// diagnostics: the packed rows (guideGroups words per vertex; nil when the
// guide is off) and the per-vertex word count. Read-only; contents are
// valid only until the next mask epoch.
func (se *ShardedEngine) GuideWords() ([]uint64, int) {
	return se.reachOut, se.guideGroups
}

// ActiveCircuits returns the number of committed circuits.
func (se *ShardedEngine) ActiveCircuits() int { return len(se.circ.ins) }

// PathOf returns the committed path for (in, out), or nil. The slice is
// pooled: valid only until the circuit is disconnected.
func (se *ShardedEngine) PathOf(in, out int32) []int32 {
	return se.circ.lookup(in, out)
}

// SetMasksShared adopts the usable-vertex mask and the caller-maintained
// CSR-slot traversal byte array — the same contract as
// Router.SetMasksShared / ConcurrentRouter.SetMasksShared — releases every
// committed circuit, and rebuilds the routing guide for the new mask
// epoch. Callers that mutate the shared bytes in place (core.MaskUpdater)
// MUST call this again before the next ServeBatch: unlike the routers,
// which read the bytes live, the engine also derives the per-epoch guide
// from them, and a stale guide would prune wrongly.
func (se *ShardedEngine) SetMasksShared(vertexOK, edgeOK []bool, outAllowed []uint8) {
	se.dropCircuits()
	se.cr.SetMasksShared(vertexOK, edgeOK, outAllowed)
	se.rebuildGuide()
}

// RefreshGuide rebuilds the output-reachability guide from the already
// adopted traversal bytes without touching claims or circuits — the call
// an incremental mask maintainer (core.MaskUpdater's in-place updates)
// must make after mutating the shared bytes between batches, when the
// repair change is known not to invalidate live circuits. Skipping it
// after a byte change breaks the sequential-parity contract: the routers
// read the bytes live, but a stale guide prunes wrongly.
func (se *ShardedEngine) RefreshGuide() { se.rebuildGuide() }

// Reset releases every committed circuit, keeping buffers and masks.
func (se *ShardedEngine) Reset() {
	se.circ.drain(func(_ int32, path []int32) {
		se.cr.Release(path)
		se.retirePath(path)
	})
}

// dropCircuits forgets circuit bookkeeping without touching claims (used
// when SetMasksShared is about to clear the whole claim array anyway).
func (se *ShardedEngine) dropCircuits() {
	se.circ.drain(func(_ int32, path []int32) { se.retirePath(path) })
}

// Disconnect releases the committed circuit between in and out.
func (se *ShardedEngine) Disconnect(in, out int32) error {
	path, ok := se.circ.remove(in, out)
	if !ok {
		return fmt.Errorf("route: no circuit (%d,%d)", in, out)
	}
	se.cr.Release(path)
	se.retirePath(path)
	return nil
}

// ServeBatch routes reqs with sequential-router semantics, reusing res
// (grown as needed) and returning per-request results in input order.
// Result.Path is pooled: valid until that circuit is disconnected.
// Attempts is 0 for endpoint rejects, 1 for snapshot decisions (fast-path
// commits and snapshot rejects), 2 for commit-time fallbacks.
//
//ftcsn:hotpath speculate-then-commit batch loop; steady phases are allocation-free (pool-miss and growth fallbacks carry in-place suppressions)
func (se *ShardedEngine) ServeBatch(reqs []Request, res []Result) []Result {
	if cap(res) < len(reqs) {
		//ftlint:ignore hotpath result-slice growth fallback: steady-state callers pass a recycled res of full capacity
		res = make([]Result, len(reqs))
	}
	res = res[:len(reqs)]
	if len(reqs) == 0 {
		return res
	}
	se.stats.Batches++
	se.stats.Requests += int64(len(reqs))

	// Partition by input terminal; reset per-batch state.
	S := len(se.shards)
	for _, sh := range se.shards {
		sh.idx = sh.idx[:0]
		sh.sc.arena = sh.sc.arena[:0]
	}
	for i := range reqs {
		in := int(reqs[i].In)
		sh := se.shards[(in%S+S)%S]
		sh.idx = append(sh.idx, int32(i))
	}
	se.spec = growSpec(se.spec, len(reqs))
	se.flags = growFlags(se.flags, len(reqs))

	// Phase A: lock-free speculation against the batch-start snapshot.
	// Batches big enough to pay for the handoff wake the persistent
	// workers (one task per shard beyond the caller's own); everything a
	// worker needs travels in the task struct, so the fan-out performs no
	// allocation. Each shard decides its own sweep from its adaptive state
	// (see PrefilterAuto).
	parallel := S > 1 && len(reqs) >= parallelMinPerShard*S
	if parallel {
		se.ensureWorkers()
		se.stats.ParallelBatches++
		se.wg.Add(S - 1)
		for s := 1; s < S; s++ {
			se.workCh <- workerTask{se: se, sh: se.shards[s], reqs: reqs, wg: &se.wg}
		}
		se.shards[0].speculate(se, reqs)
		se.wg.Wait()
	} else {
		for _, sh := range se.shards {
			sh.speculate(se, reqs)
		}
	}
	for _, sh := range se.shards {
		se.stats.EndpointRejects += sh.endpointRejects
		se.stats.PrefilterRejects += sh.prefilterRejects
		se.stats.ProbeRejects += sh.probeRejects
		se.stats.PrefilterSweeps += sh.sweeps
		sh.endpointRejects, sh.prefilterRejects, sh.probeRejects, sh.sweeps = 0, 0, 0, 0
	}

	// Phase B: commit with sequential-walk semantics. On parallel batches
	// the maximal conflict-free prefix commits on the workers without
	// ordering (commitDisjoint proves which requests the ordered walk
	// would fast-path anyway); the residue — and every serial batch —
	// takes the ordered CAS walk.
	se.bumpBatchEpoch()
	se.commitSc.arena = se.commitSc.arena[:0]
	first := 0
	if parallel {
		first = se.commitDisjoint(reqs, res)
	}
	se.commitOrdered(reqs, res, first)

	// Adaptive prefilter: each shard re-decides from its own final reject
	// share (engage at ≥1/16); shards that served nothing keep their state.
	for _, sh := range se.shards {
		if len(sh.idx) == 0 {
			continue
		}
		rej := 0
		for _, ri := range sh.idx {
			if res[ri].Path == nil {
				rej++
			}
		}
		engage := rej*16 >= len(sh.idx)
		if engage != sh.engaged {
			if engage {
				se.stats.PrefilterEngages++
			} else {
				se.stats.PrefilterDisengages++
			}
			sh.engaged = engage
		}
	}
	return res
}

// commitOrdered is the ordered commit walk over requests [from, len(reqs)):
// the authoritative serial path every batch ends in. It validates each
// surviving speculative path against batchMark (which, on parallel
// batches, already includes the disjoint-committed prefix), claims through
// the ordered protocol, and falls back to a live re-probe on conflict —
// exactly the sequential Router's view at that request's turn.
func (se *ShardedEngine) commitOrdered(reqs []Request, res []Result, from int) {
	for i := from; i < len(reqs); i++ {
		rq := reqs[i]
		res[i] = Result{Request: rq}
		if f := se.flags[i]; f != flagNone {
			if f == flagRejected {
				res[i].Attempts = 1
			}
			continue
		}
		sp := se.spec[i]
		p := sp.path
		ok := p != nil
		if ok {
			// Fast-path validation: if the probe's trace is disjoint from
			// everything claimed this batch, the speculative search is
			// step-for-step what a live probe would do now, so the path is
			// exactly the sequential router's.
			for _, v := range sp.trace {
				if se.batchMark[v] == se.batchEpoch {
					ok = false
					break
				}
			}
		}
		if ok {
			se.claimOrdered(p)
			se.commit(rq, p, &res[i], 1)
			se.stats.FastPath++
			continue
		}
		// Conflict (or no speculative path survived): re-probe against the
		// live claim state — the sequential router's exact view at this
		// request's turn — and claim through the same protocol.
		if p != nil {
			se.stats.Conflicts++
		}
		q := se.probe(&se.commitSc, rq.In, rq.Out)
		if q == nil {
			res[i].Attempts = 2
			se.stats.CommitRejects++
			continue
		}
		se.claimOrdered(q)
		se.commit(rq, q, &res[i], 2)
		se.stats.Fallbacks++
	}
}

// commitDisjoint is the parallel commit fast path for batches that ran
// phase A on the workers. It finds the maximal prefix of requests the
// ordered walk would commit untouched and commits them with no ordering at
// all, returning the index the ordered walk must resume from.
//
// Correctness (why the prefix is EXACTLY what the sequential walk does,
// not a conservative guess):
//
//  1. A serial first-writer pass stamps every vertex of every surviving
//     speculative path with the smallest request index whose path covers
//     it (specOwner, epoch-scoped by specStamp).
//
//  2. A parallel sweep then marks request k valid iff it has a speculative
//     path and no vertex of its probe TRACE is owned by an earlier
//     request. Let k0 be the first flagNone request that is not valid; the
//     clean prefix is [0, k0).
//
//     Within the prefix the verdicts coincide with the ordered walk's
//     batchMark test: by induction, every flagNone request j < k < k0
//     fast-path commits its speculative path p_j, so the marks the ordered
//     walk would have accumulated at k's turn are exactly ∪_{j<k} p_j. If
//     trace_k meets some p_j (j < k), any vertex in the intersection has
//     specOwner ≤ j < k — first-writer-wins can only LOWER the owner — so
//     the sweep flags k invalid; conversely an owner j < k on a trace_k
//     vertex means that vertex lies on p_j, which the ordered walk would
//     have marked. Identical verdicts, so k0 is precisely the first
//     request the ordered walk would NOT fast-path, and the walk resumes
//     there against a batchMark state identical to the sequential one.
//
//  3. Prefix paths are pairwise vertex-disjoint (p_k ⊆ trace_k, so an
//     overlap with an earlier p_j would have invalidated k), hence their
//     claim stores commute and the commit needs no ordering: path copy,
//     batchMark stamps, claim stores, and result fills all touch disjoint
//     state per request. Everything order-sensitive — pooled path
//     allocation, circuit-registry install order, stats — runs in a short
//     serial prologue first.
//
// Rejected requests inside the prefix (flagRejected/flagRejectedEndpoint)
// commit nothing and only fill their own result slot, so they ride along
// in the parallel pass.
func (se *ShardedEngine) commitDisjoint(reqs []Request, res []Result) int {
	n := len(reqs)
	se.valid = growFlags(se.valid, n)
	se.commitDst = growDst(se.commitDst, n)
	epoch := se.batchEpoch

	// 1) First-writer ownership marking (serial, O(total path length)).
	for i := 0; i < n; i++ {
		if se.flags[i] != flagNone {
			continue
		}
		for _, v := range se.spec[i].path {
			if se.specStamp[v] != epoch {
				se.specStamp[v] = epoch
				se.specOwner[v] = uint32(i)
			}
		}
	}

	// 2) Parallel validation sweep (O(total trace length) across workers).
	se.fanOut(taskValidate, reqs, res, n)

	// 3) Maximal clean prefix.
	first := n
	for i := 0; i < n; i++ {
		if se.flags[i] == flagNone && se.valid[i] == 0 {
			first = i
			break
		}
	}

	// 4) Serial prologue: pooled destination slices, registry installs in
	// input order (the registry's iteration order is part of the
	// deterministic contract), stats.
	for i := 0; i < first; i++ {
		if se.flags[i] != flagNone {
			continue
		}
		p := se.newPath(len(se.spec[i].path))
		se.commitDst[i] = p
		se.circ.install(reqs[i].In, reqs[i].Out, p)
		se.stats.Accepted++
		se.stats.FastPath++
		se.stats.DisjointCommits++
	}

	// 5) Parallel commit of the prefix: copy, mark, claim, fill results.
	se.fanOut(taskCommit, reqs, res, first)
	return first
}

// validateRange is the parallel validation sweep over requests [lo,hi):
// valid[i] = 1 iff request i has a speculative path whose trace no earlier
// request's speculative path touches. Reads only state written before the
// fan-out (flags, spec, the ownership marks); writes only valid[lo:hi].
func (se *ShardedEngine) validateRange(lo, hi int) {
	epoch := se.batchEpoch
	for i := lo; i < hi; i++ {
		if se.flags[i] != flagNone {
			se.valid[i] = 0
			continue
		}
		sp := se.spec[i]
		ok := sp.path != nil
		if ok {
			for _, v := range sp.trace {
				if se.specStamp[v] == epoch && se.specOwner[v] < uint32(i) {
					ok = false
					break
				}
			}
		}
		if ok {
			se.valid[i] = 1
		} else {
			se.valid[i] = 0
		}
	}
}

// commitRange commits clean-prefix requests [lo,hi) with no ordering:
// every store targets state owned by exactly one request in the prefix
// (paths are pairwise disjoint, result slots are per-request), so ranges
// may run concurrently. The claim store asserts the vertex was idle — a
// violation means the validation proof is broken, and panicking beats
// corrupting the claim array.
//
//ftcsn:claimowner the disjoint-commit claim writer; disjointness is proven by validateRange before any store
func (se *ShardedEngine) commitRange(reqs []Request, res []Result, lo, hi int) {
	epoch := se.batchEpoch
	claims := se.cr.claims
	for i := lo; i < hi; i++ {
		rq := reqs[i]
		res[i] = Result{Request: rq}
		switch se.flags[i] {
		case flagRejected:
			res[i].Attempts = 1
			continue
		case flagRejectedEndpoint:
			continue
		}
		dst := se.commitDst[i]
		copy(dst, se.spec[i].path)
		for _, v := range dst {
			se.batchMark[v] = epoch
			if claims[v].Load() != 0 {
				panic("route: disjoint commit claim conflicted; validation broken")
			}
			claims[v].Store(1)
		}
		res[i].Path = dst
		res[i].Attempts = 1
	}
}

// claimOrdered claims every vertex of a path that is known conflict-free
// (validated trace, or a path just probed against the live claim state).
// It is ConcurrentRouter.tryClaim specialized to the ordered commit phase:
// commit is the only mutator of the claim array, so a plain atomic store
// replaces the compare-and-swap, and failure is impossible — still fully
// visible to the lock-free phase-A readers of the next batch. The claims
// it writes are released through the same cr.Release as everything else.
//
//ftcsn:claimowner the ordered-commit claim writer; commit is the only claim mutator during a batch
func (se *ShardedEngine) claimOrdered(path []int32) {
	for _, v := range path {
		if se.cr.claims[v].Load() != 0 {
			panic("route: ordered commit claim conflicted; trace validation broken")
		}
		se.cr.claims[v].Store(1)
	}
}

// commit installs a freshly claimed path as a live circuit and fills the
// request's result.
func (se *ShardedEngine) commit(rq Request, p []int32, r *Result, attempts int) {
	path := se.newPath(len(p))
	copy(path, p)
	for _, v := range path {
		se.batchMark[v] = se.batchEpoch
	}
	se.circ.install(rq.In, rq.Out, path)
	r.Path = path
	r.Attempts = attempts
	se.stats.Accepted++
}

func (se *ShardedEngine) bumpBatchEpoch() {
	se.batchEpoch++
	if se.batchEpoch == 0 {
		clear(se.batchMark)
		clear(se.specStamp)
		se.batchEpoch = 1
	}
}

// speculate is phase A for one shard: screen endpoints, optionally run the
// word-parallel feasibility sweep (per the shard's own policy state), then
// probe the survivors against the snapshot, recording each probe's visit
// trace for commit validation.
func (sh *shard) speculate(se *ShardedEngine, reqs []Request) {
	sweep := se.Prefilter == PrefilterOn ||
		(se.Prefilter == PrefilterAuto && sh.engaged)
	live := sh.surv[:0]
	claims := se.cr.claims
	for _, ri := range sh.idx {
		rq := reqs[ri]
		se.spec[ri] = specEntry{}
		if !se.cr.usableVertex(rq.In) || !se.cr.usableVertex(rq.Out) ||
			claims[rq.In].Load() != 0 || claims[rq.Out].Load() != 0 {
			se.flags[ri] = flagRejectedEndpoint
			sh.endpointRejects++
			continue
		}
		se.flags[ri] = flagNone
		live = append(live, ri)
	}
	if sweep && se.lv != nil && len(live) > 0 {
		if sh.fp == nil {
			sh.fp = newLanePass(se.g)
		}
		kept := live[:0]
		for base := 0; base < len(live); base += laneWidth {
			group := live[base:min(base+laneWidth, len(live))]
			feas := sh.fp.sweep(se, reqs, group)
			sh.sweeps++
			for l, ri := range group {
				if feas>>uint(l)&1 == 0 {
					se.flags[ri] = flagRejected
					sh.prefilterRejects++
					continue
				}
				kept = append(kept, ri)
			}
		}
		live = kept
	}
	for _, ri := range live {
		rq := reqs[ri]
		path, trace := se.probeRecorded(&sh.sc, rq.In, rq.Out)
		if path == nil {
			se.flags[ri] = flagRejected
			sh.probeRejects++
			continue
		}
		se.spec[ri] = specEntry{path: path, trace: trace}
	}
	sh.surv = live[:0]
}

// probe runs the same greedy depth-first idle-path hunt as Router.Connect,
// reading the CAS claim array as the busy set and pruning descents the
// output-reachability guide proves hopeless (exact, so completeness is
// unchanged). The found path is appended to sc.arena; the returned view
// stays valid across arena growth. Returns nil when no idle path exists
// under the claim state read during the search.
func (se *ShardedEngine) probe(sc *probeScratch, in, out int32) []int32 {
	path, _ := se.probeInto(sc, in, out, false)
	return path
}

// probeRecorded is probe, additionally returning the trace of every vertex
// the search stamped (the path's vertices are among them). The commit phase
// uses the trace to prove a speculative search is untouched by later
// claims.
func (se *ShardedEngine) probeRecorded(sc *probeScratch, in, out int32) (path, trace []int32) {
	return se.probeInto(sc, in, out, true)
}

func (se *ShardedEngine) probeInto(sc *probeScratch, in, out int32, record bool) (path, trace []int32) {
	claims := se.cr.claims
	if !se.cr.usableVertex(in) || !se.cr.usableVertex(out) ||
		claims[in].Load() != 0 || claims[out].Load() != 0 {
		return nil, nil
	}
	sc.epoch++
	if sc.epoch == 0 {
		clear(sc.seenEpoch)
		sc.epoch = 1
	}
	start, edges, heads := se.g.CSROut()
	allowed := se.cr.allowed
	guide := se.reachOut
	groups := se.guideGroups
	var gslot int
	var gbit uint64
	if guide != nil {
		oi := se.outIdx[out]
		if oi < 0 {
			guide = nil
		} else {
			gslot = int(oi) >> 6
			gbit = 1 << (uint(oi) & 63)
		}
	}
	// Unguided probes keep the leveling's exact reachability cut (the same
	// prune as Router.Connect): a non-output vertex at level(out) or above
	// can never reach out. Guided probes skip it — the guide subsumes the
	// cut exactly (such a vertex's row cannot hold out's bit).
	var lvl []int32
	var outLvl int32
	if guide == nil && se.lv != nil {
		lvl = se.lv.PerVertex()
		outLvl = lvl[out]
	}
	seen, epoch := sc.seenEpoch, sc.epoch
	seen[in] = epoch
	sc.stack = append(sc.stack[:0], in)
	// The recorded trace holds every vertex the search EXPANDED (popped and
	// slot-scanned), plus the endpoints. That set suffices for the commit
	// phase's step-identity argument: a vertex that was merely discovered
	// and stamped, but never popped before the path completed, influences
	// neither which vertices get expanded nor the prevEdge chain of the
	// found path — a later claim on it leaves a live re-run of this search
	// identical. (A claim on a discovered-only vertex makes the live search
	// skip it at discovery; since it never reached the stack top, the pop
	// sequence and the found path are unchanged.)
	sc.rev = sc.rev[:0]
	found := false
	for len(sc.stack) > 0 && !found {
		v := sc.stack[len(sc.stack)-1]
		sc.stack = sc.stack[:len(sc.stack)-1]
		if record {
			sc.rev = append(sc.rev, v)
		}
		for idx := start[v]; idx < start[v+1]; idx++ {
			w := heads[idx]
			c := allowed[idx]
			if !graph.SlotAdmits(c, w, out) {
				continue
			}
			if c == 0 && guide != nil && guide[int(w)*groups+gslot]&gbit == 0 {
				continue
			}
			if lvl != nil && w != out && lvl[w] >= outLvl {
				continue
			}
			if seen[w] == epoch || claims[w].Load() != 0 {
				continue
			}
			seen[w] = epoch
			sc.prevEdge[w] = edges[idx]
			if w == out {
				found = true
				break
			}
			sc.stack = append(sc.stack, w)
		}
	}
	if !found {
		return nil, nil
	}
	if record {
		sc.rev = append(sc.rev, out)
	}
	// Lay out [path][trace] contiguously in the arena; both views stay
	// valid because later appends only write past them (or reallocate).
	// The stack is free after the search, so it holds the reversed path.
	sc.stack = sc.stack[:0]
	for v := out; ; {
		sc.stack = append(sc.stack, v)
		if v == in {
			break
		}
		v = se.g.EdgeFrom(sc.prevEdge[v])
	}
	base := len(sc.arena)
	for i := len(sc.stack) - 1; i >= 0; i-- {
		sc.arena = append(sc.arena, sc.stack[i])
	}
	path = sc.arena[base:len(sc.arena):len(sc.arena)]
	if record {
		tbase := len(sc.arena)
		sc.arena = append(sc.arena, sc.rev...)
		trace = sc.arena[tbase:len(sc.arena):len(sc.arena)]
	}
	return path, trace
}

// newPath returns an n-element pooled path slice.
func (se *ShardedEngine) newPath(n int) []int32 {
	for len(se.pathPool) > 0 {
		last := len(se.pathPool) - 1
		p := se.pathPool[last]
		se.pathPool = se.pathPool[:last]
		if cap(p) >= n {
			return p[:n]
		}
	}
	//ftlint:ignore hotpath pool-miss fallback: steady-state churn recycles retired paths, so this is first-use only
	return make([]int32, n)
}

func (se *ShardedEngine) retirePath(p []int32) {
	se.pathPool = append(se.pathPool, p)
}

// rebuildGuide recomputes the per-epoch output-reachability words from the
// current traversal bytes: one pass over vertices in reverse level order
// (graph.Levels; plain descending IDs on level-sorted graphs), OR-ing
// successor words through allowed slots, with AdjTerminal slots
// contributing the head's output bit. O(E·groups) word operations.
func (se *ShardedEngine) rebuildGuide() {
	nOut := len(se.g.Outputs())
	groups := (nOut + 63) >> 6
	// se.cr.allowed == nil means the masks were detached (an owner released
	// its arena-backed slices); there is nothing to derive a guide from.
	if se.lv == nil || nOut == 0 || groups > se.guideLimit || se.cr.allowed == nil {
		se.reachOut = nil
		se.guideGroups = 0
		return
	}
	n := se.g.NumVertices()
	if cap(se.reachOut) < n*groups {
		//ftlint:ignore hotpath first-build fallback: steady-state epochs reuse the guide's capacity
		se.reachOut = make([]uint64, n*groups)
	} else {
		se.reachOut = se.reachOut[:n*groups]
		clear(se.reachOut)
	}
	se.guideGroups = groups
	if cap(se.rowScratch) < groups {
		//ftlint:ignore hotpath first-build fallback: steady-state epochs reuse the row scratch's capacity
		se.rowScratch = make([]uint64, groups)
	}
	start, _, heads := se.g.CSROut()
	allowed := se.cr.allowed
	order := se.lv.Order()
	// Reverse level order: every successor (strictly higher level, hence a
	// later position) is finalized before v's row reads it.
	for p := int32(n) - 1; p >= 0; p-- {
		v := p
		if order != nil {
			v = order[p]
		}
		row := se.reachOut[int(v)*groups : int(v)*groups+groups]
		if oi := se.outIdx[v]; oi >= 0 {
			row[int(oi)>>6] |= 1 << (uint(oi) & 63)
		}
		for idx := start[v]; idx < start[v+1]; idx++ {
			c := allowed[idx]
			w := heads[idx]
			if c == 0 {
				wrow := se.reachOut[int(w)*groups : int(w)*groups+groups]
				for g := range row {
					row[g] |= wrow[g]
				}
			} else if c == graph.AdjTerminal {
				if oi := se.outIdx[w]; oi >= 0 {
					row[int(oi)>>6] |= 1 << (uint(oi) & 63)
				}
			}
		}
	}
}

// VerifyState checks that the CAS claim array is exactly the union of the
// committed circuits' vertices and that those circuits are vertex-disjoint
// valid paths — the engine's analogue of Router.VerifyInvariants. Used by
// tests and the stress harness.
func (se *ShardedEngine) VerifyState() error {
	owner := make(map[int32]int32, len(se.circ.ins)*8)
	for _, in := range se.circ.ins {
		path := se.circ.path[in]
		out := se.circ.out[in]
		if len(path) < 2 || path[0] != in || path[len(path)-1] != out {
			return fmt.Errorf("route: malformed committed path for (%d,%d)", in, out)
		}
		for i, v := range path {
			if prev, dup := owner[v]; dup {
				return fmt.Errorf("route: vertex %d on circuits of inputs %d and %d", v, prev, in)
			}
			owner[v] = in
			if !se.cr.Claimed(v) {
				return fmt.Errorf("route: committed path vertex %d not claimed", v)
			}
			if i > 0 {
				ok := false
				for _, e := range se.g.OutEdges(path[i-1]) {
					if se.g.EdgeTo(e) == v {
						ok = true
						break
					}
				}
				if !ok {
					return fmt.Errorf("route: no switch %d->%d on committed path", path[i-1], v)
				}
			}
		}
	}
	for v := 0; v < se.g.NumVertices(); v++ {
		if se.cr.Claimed(int32(v)) {
			if _, ok := owner[int32(v)]; !ok {
				return fmt.Errorf("route: vertex %d claimed but on no circuit", v)
			}
		}
	}
	return nil
}

// growSpec resizes without clearing: phase A overwrites every slot (the
// shard partition covers all request indices) before phase B reads any.
func growSpec(s []specEntry, n int) []specEntry {
	if cap(s) < n {
		//ftlint:ignore hotpath growth fallback on the first batch of a new high-water size; steady state reuses capacity
		return make([]specEntry, n)
	}
	return s[:n]
}

func growFlags(s []uint8, n int) []uint8 {
	if cap(s) < n {
		//ftlint:ignore hotpath growth fallback on the first batch of a new high-water size; steady state reuses capacity
		return make([]uint8, n)
	}
	return s[:n]
}

// growDst resizes the per-request destination-slice scratch without
// clearing: the commit prologue overwrites every slot the parallel pass
// reads.
func growDst(s [][]int32, n int) [][]int32 {
	if cap(s) < n {
		//ftlint:ignore hotpath growth fallback on the first batch of a new high-water size; steady state reuses capacity
		return make([][]int32, n)
	}
	return s[:n]
}
