package route_test

// Direct coverage for ShardedStats: the counter identities, the fast-path/
// fallback split, and the adaptive per-shard prefilter's engage/disengage
// transitions — previously exercised only incidentally by the differential
// harnesses.

import (
	"testing"

	"ftcsn/internal/netsim"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

// statsIdentities checks the bookkeeping invariants every serving history
// must satisfy.
func statsIdentities(t *testing.T, st route.ShardedStats) {
	t.Helper()
	if st.Accepted != st.FastPath+st.Fallbacks {
		t.Errorf("accepted %d != fastpath %d + fallbacks %d", st.Accepted, st.FastPath, st.Fallbacks)
	}
	rejects := st.EndpointRejects + st.PrefilterRejects + st.ProbeRejects + st.CommitRejects
	if st.Requests != st.Accepted+rejects {
		t.Errorf("requests %d != accepted %d + rejects %d", st.Requests, st.Accepted, rejects)
	}
	// A conflicted speculation re-probes and then either commits (fallback)
	// or rejects at commit time.
	if st.Conflicts > st.Fallbacks+st.CommitRejects {
		t.Errorf("conflicts %d > fallbacks %d + commit rejects %d", st.Conflicts, st.Fallbacks, st.CommitRejects)
	}
	if st.PrefilterDisengages > st.PrefilterEngages {
		t.Errorf("disengages %d > engages %d", st.PrefilterDisengages, st.PrefilterEngages)
	}
}

// engineStatsMatch checks the Engine-seam view agrees with the detailed
// counters.
func engineStatsMatch(t *testing.T, se *route.ShardedEngine) {
	t.Helper()
	es, st := se.Stats(), se.ShardedStats()
	if es.Batches != st.Batches || es.Requests != st.Requests || es.Accepted != st.Accepted {
		t.Errorf("EngineStats %+v disagrees with ShardedStats %+v", es, st)
	}
	if es.Rejected != st.Requests-st.Accepted {
		t.Errorf("EngineStats.Rejected %d != requests-accepted %d", es.Rejected, st.Requests-st.Accepted)
	}
}

// TestShardedStatsIdentitiesUnderChurn drives faulted churn (endpoint,
// prefilter, probe, and commit rejects all possible) and checks every
// counter identity plus the seam view.
func TestShardedStatsIdentitiesUnderChurn(t *testing.T) {
	nw := buildNet(t, 2)
	m := repairedMasks(t, nw, 0.04, 0x151)
	for _, pf := range []route.PrefilterMode{route.PrefilterAuto, route.PrefilterOn, route.PrefilterOff} {
		se := route.NewShardedEngine(nw.G, 3)
		se.Prefilter = pf
		se.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
		wl := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 0x57A7)
		var res []route.Result
		n := len(nw.Inputs())
		for round := 0; round < 40; round++ {
			reqs := wl.NextConnects(n)
			res = se.ServeBatch(reqs, res)
			wl.Commit(res[:len(reqs)])
			for _, rel := range wl.NextReleases(n / 3) {
				if err := se.Disconnect(rel.In, rel.Out); err != nil {
					t.Fatal(err)
				}
			}
		}
		st := se.ShardedStats()
		statsIdentities(t, st)
		engineStatsMatch(t, se)
		if st.Accepted == 0 || st.Requests == 0 {
			t.Fatalf("pf=%d: degenerate stream (requests=%d accepted=%d)", pf, st.Requests, st.Accepted)
		}
		if pf == route.PrefilterOn && st.PrefilterSweeps == 0 {
			t.Error("PrefilterOn never swept")
		}
		// Engage/disengage state keeps tracking in every mode (so a later
		// switch to Auto acts on fresh evidence), but Off must never sweep.
		if pf == route.PrefilterOff && (st.PrefilterSweeps != 0 || st.PrefilterRejects != 0) {
			t.Errorf("PrefilterOff swept: %+v", st)
		}
	}
}

// TestShardedFallbackCounters forces cross-shard conflicts (saturating
// permutation from an empty network, many shards) and checks the fallback
// path is counted coherently.
func TestShardedFallbackCounters(t *testing.T) {
	nw := buildNet(t, 3)
	n := len(nw.Inputs())
	perm := rng.New(7).Perm(n)
	reqs := make([]route.Request, n)
	for i := range reqs {
		reqs[i] = route.Request{In: nw.Inputs()[i], Out: nw.Outputs()[perm[i]]}
	}
	se := route.NewShardedEngine(nw.G, 8)
	var res []route.Result
	for epoch := 0; epoch < 3; epoch++ {
		res = se.ServeBatch(reqs, res)
		se.Reset()
	}
	st := se.ShardedStats()
	statsIdentities(t, st)
	if st.Fallbacks == 0 {
		t.Error("saturating batches produced no fallbacks; conflict path uncounted")
	}
	if st.Conflicts == 0 {
		t.Error("saturating batches produced no invalidated speculative paths")
	}
}

// TestAdaptivePrefilterEngageDisengage: a shard must engage after a batch
// whose reject share is ≥ 1/16, sweep from the following batch on, and
// disengage again after the stream turns healthy.
func TestAdaptivePrefilterEngageDisengage(t *testing.T) {
	nw := buildNet(t, 2)
	bad := repairedMasks(t, nw, 0.04, 0x151) // known to produce path rejects
	good := repairedMasks(t, nw, 0, 1)       // fault-free
	se := route.NewShardedEngine(nw.G, 1)
	se.Prefilter = route.PrefilterAuto
	se.SetMasksShared(bad.VertexOK, bad.EdgeOK, bad.OutAllowed)

	wl := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 0xBAD)
	var res []route.Result
	n := len(nw.Inputs())
	for round := 0; round < 25; round++ {
		reqs := wl.NextConnects(n)
		res = se.ServeBatch(reqs, res)
		wl.Commit(res[:len(reqs)])
		for _, rel := range wl.NextReleases(n / 2) {
			if err := se.Disconnect(rel.In, rel.Out); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := se.ShardedStats()
	if st.PrefilterEngages == 0 {
		t.Fatal("faulted stream never engaged the adaptive prefilter")
	}
	if st.PrefilterSweeps == 0 {
		t.Fatal("engaged shard never swept")
	}

	// Healthy masks: everything connects, the shard must disengage.
	se.SetMasksShared(good.VertexOK, good.EdgeOK, good.OutAllowed)
	wl2 := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 0x600D)
	for round := 0; round < 6; round++ {
		reqs := wl2.NextConnects(4)
		res = se.ServeBatch(reqs, res)
		wl2.Commit(res[:len(reqs)])
		for _, rel := range wl2.NextReleases(4) {
			if err := se.Disconnect(rel.In, rel.Out); err != nil {
				t.Fatal(err)
			}
		}
	}
	st = se.ShardedStats()
	if st.PrefilterDisengages == 0 {
		t.Fatal("healthy stream never disengaged the adaptive prefilter")
	}
	statsIdentities(t, st)
}

// TestAdaptivePrefilterIsPerShard: rejects concentrated on one shard's
// inputs must engage that shard alone — the locality the per-shard policy
// exists for.
func TestAdaptivePrefilterIsPerShard(t *testing.T) {
	nw := buildNet(t, 2)
	const S = 2
	se := route.NewShardedEngine(nw.G, S)
	se.Prefilter = route.PrefilterAuto

	// Partition inputs by the engine's own shard function (in % S) and
	// make every shard-0 input busy with a live circuit.
	var shard0, shard1 []int32
	for _, in := range nw.Inputs() {
		if int(in)%S == 0 {
			shard0 = append(shard0, in)
		} else {
			shard1 = append(shard1, in)
		}
	}
	if len(shard0) == 0 || len(shard1) == 0 {
		t.Skip("input IDs all map to one shard; locality not testable here")
	}
	outs := nw.Outputs()
	var reqs []route.Request
	var res []route.Result
	for i, in := range shard0 {
		reqs = append(reqs, route.Request{In: in, Out: outs[i]})
	}
	res = se.ServeBatch(reqs, res)
	for i := range res {
		if res[i].Path == nil {
			t.Fatalf("fault-free setup connect %d rejected", i)
		}
	}

	// Mixed batch: shard-0 requests hit busy inputs (all rejected), shard-1
	// requests connect to untouched outputs (all accepted).
	reqs = reqs[:0]
	for i, in := range shard0 {
		reqs = append(reqs, route.Request{In: in, Out: outs[(i+len(shard0))%len(outs)]})
	}
	free := outs[len(shard0):]
	for i, in := range shard1 {
		if i >= len(free) {
			break
		}
		reqs = append(reqs, route.Request{In: in, Out: free[i]})
	}
	res = se.ServeBatch(reqs, res)
	st := se.ShardedStats()
	if st.PrefilterEngages != 1 {
		t.Fatalf("want exactly the overloaded shard engaged, got %d engage transitions", st.PrefilterEngages)
	}
	statsIdentities(t, st)
}
