package route

import (
	"testing"
)

// TestPooledConnectAllocFree: with path reuse enabled, a warmed router's
// connect/disconnect cycle allocates nothing.
func TestPooledConnectAllocFree(t *testing.T) {
	g := crossbar()
	rt := NewRouter(g)
	rt.EnablePathReuse()
	in, out := g.Inputs()[0], g.Outputs()[0]
	cycle := func() {
		if _, err := rt.Connect(in, out); err != nil {
			t.Fatal(err)
		}
		if err := rt.Disconnect(in, out); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg > 0 {
		t.Fatalf("pooled connect/disconnect allocates %.2f allocs/op, want 0", avg)
	}
}

// TestPooledPathRecycled: the slice retired by Disconnect backs the next
// Connect of equal-or-shorter length.
func TestPooledPathRecycled(t *testing.T) {
	g := crossbar()
	rt := NewRouter(g)
	rt.EnablePathReuse()
	in, out := g.Inputs()[1], g.Outputs()[1]
	p1, err := rt.Connect(in, out)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Disconnect(in, out); err != nil {
		t.Fatal(err)
	}
	p2, err := rt.Connect(in, out)
	if err != nil {
		t.Fatal(err)
	}
	if &p1[0] != &p2[0] {
		t.Fatal("retired path slice was not recycled by the next Connect")
	}
	if err := rt.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestUnpooledPathsUntouched: without EnablePathReuse, Connect results
// remain valid after Disconnect (the documented legacy contract).
func TestUnpooledPathsUntouched(t *testing.T) {
	g := crossbar()
	rt := NewRouter(g)
	in, out := g.Inputs()[0], g.Outputs()[1]
	p1, err := rt.Connect(in, out)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int32(nil), p1...)
	if err := rt.Disconnect(in, out); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Connect(in, out); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if p1[i] != want[i] {
			t.Fatal("legacy path mutated after Disconnect without path reuse")
		}
	}
}

// TestSetMasksSwapsRepairState: one router serves successive mask sets, and
// mask changes drop established circuits.
func TestSetMasksSwapsRepairState(t *testing.T) {
	g := crossbar()
	rt := NewRouter(g)
	rt.EnablePathReuse()
	in, out := g.Inputs()[0], g.Outputs()[0]

	// Block every switch: connect must fail.
	edgeOK := make([]bool, g.NumEdges())
	rt.SetMasks(nil, edgeOK)
	if _, err := rt.Connect(in, out); err == nil {
		t.Fatal("connect succeeded with all switches masked off")
	}

	// Restore all switches: connect succeeds, then a mask swap drops it.
	for e := range edgeOK {
		edgeOK[e] = true
	}
	rt.SetMasks(nil, edgeOK)
	if _, err := rt.Connect(in, out); err != nil {
		t.Fatal(err)
	}
	if rt.ActiveCircuits() != 1 {
		t.Fatalf("ActiveCircuits = %d, want 1", rt.ActiveCircuits())
	}
	rt.SetMasks(nil, edgeOK)
	if rt.ActiveCircuits() != 0 {
		t.Fatal("SetMasks must release established circuits")
	}
	if rt.Busy(in) || rt.Busy(out) {
		t.Fatal("SetMasks left terminals busy")
	}
}
