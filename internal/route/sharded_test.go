package route_test

// Differential, invariance, and stress harnesses for route.ShardedEngine.
// The engine's contract is strong: accept/reject decisions AND established
// paths are bit-identical to a sequential Router processing the same
// request stream in order, for every shard count, batch size, and
// prefilter mode. These tests drive identical netsim.Workload churn
// streams through both engines and compare step by step.

import (
	"fmt"
	"testing"

	"ftcsn/internal/core"
	"ftcsn/internal/fault"
	"ftcsn/internal/netsim"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

func buildNet(t testing.TB, nu int) *core.Network {
	t.Helper()
	nw, err := core.Build(core.Params{Nu: nu, Gamma: 0, M: 8, DQ: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// repairedMasks draws a fault instance at rate eps and returns the
// repaired masks with traversal bytes, as core's pipeline maintains them.
func repairedMasks(t testing.TB, nw *core.Network, eps float64, seed uint64) core.Masks {
	t.Helper()
	inst := fault.NewInstance(nw.G)
	r := rng.New(seed)
	fault.InjectInto(inst, fault.Symmetric(eps), r)
	mu := core.NewMaskUpdater(nw.G)
	var m core.Masks
	mu.Init(inst, &m)
	return m
}

// churnStep is one round of the lockstep differential: serve a connect
// batch on both engines, compare decisions and paths, then release the
// same circuits on both.
type churnDiff struct {
	t       *testing.T
	rt      *route.Router
	se      *route.ShardedEngine
	wl      *netsim.Workload
	res     []route.Result
	rounds  int
	accepts int
	rejects int
}

func (d *churnDiff) round(batch, releases int) {
	d.t.Helper()
	d.rounds++
	reqs := d.wl.NextConnects(batch)
	d.res = d.se.ServeBatch(reqs, d.res)
	for i, rq := range reqs {
		path, err := d.rt.Connect(rq.In, rq.Out)
		got := d.res[i].Path
		if (err == nil) != (got != nil) {
			d.t.Fatalf("round %d req %d (%d->%d): sequential err=%v, sharded accepted=%v",
				d.rounds, i, rq.In, rq.Out, err, got != nil)
		}
		if err != nil {
			d.rejects++
			continue
		}
		d.accepts++
		if len(path) != len(got) {
			d.t.Fatalf("round %d req %d: path lengths differ: seq %v vs sharded %v",
				d.rounds, i, path, got)
		}
		for j := range path {
			if path[j] != got[j] {
				d.t.Fatalf("round %d req %d: paths diverge at %d: seq %v vs sharded %v",
					d.rounds, i, j, path, got)
			}
		}
	}
	d.wl.Commit(d.res[:len(reqs)])
	for _, rel := range d.wl.NextReleases(releases) {
		if err := d.rt.Disconnect(rel.In, rel.Out); err != nil {
			d.t.Fatalf("round %d: sequential disconnect (%d,%d): %v", d.rounds, rel.In, rel.Out, err)
		}
		if err := d.se.Disconnect(rel.In, rel.Out); err != nil {
			d.t.Fatalf("round %d: sharded disconnect (%d,%d): %v", d.rounds, rel.In, rel.Out, err)
		}
	}
}

// TestShardedMatchesSequentialChurn locks the headline contract under
// continuous churn (no resets): decisions and paths bit-identical to the
// sequential router across fault rates, shard counts, and prefilter modes.
func TestShardedMatchesSequentialChurn(t *testing.T) {
	modes := []struct {
		name string
		pf   route.PrefilterMode
	}{{"auto", route.PrefilterAuto}, {"on", route.PrefilterOn}, {"off", route.PrefilterOff}}
	for _, nu := range []int{1, 2} {
		nw := buildNet(t, nu)
		for _, eps := range []float64{0, 0.01, 0.05} {
			m := repairedMasks(t, nw, eps, uint64(0x5A0+nu))
			for _, shards := range []int{1, 2, 4, 8} {
				for _, md := range modes {
					if md.pf != route.PrefilterAuto && shards != 4 {
						continue // modes × one shard count keeps runtime sane
					}
					name := fmt.Sprintf("nu=%d/eps=%g/shards=%d/%s", nu, eps, shards, md.name)
					t.Run(name, func(t *testing.T) {
						rt := route.NewRouter(nw.G)
						rt.EnablePathReuse()
						se := route.NewShardedEngine(nw.G, shards)
						se.Prefilter = md.pf
						if eps > 0 {
							rt.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
							se.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
						}
						d := &churnDiff{t: t, rt: rt, se: se,
							wl: netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 0xC0FFEE+uint64(shards))}
						n := len(nw.Inputs())
						for round := 0; round < 40; round++ {
							d.round(n/2+1, n/4+1)
						}
						if err := se.VerifyState(); err != nil {
							t.Fatal(err)
						}
						if d.accepts == 0 {
							t.Fatal("workload never accepted a circuit; differential is vacuous")
						}
					})
				}
			}
		}
	}
}

// runInvariance drives one engine through a fixed saturation-churn stream
// and returns the flattened decision+path trace.
func runInvariance(t *testing.T, nw *core.Network, m core.Masks, shards int, pf route.PrefilterMode) (string, route.ShardedStats) {
	t.Helper()
	se := route.NewShardedEngine(nw.G, shards)
	se.Prefilter = pf
	se.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
	wl := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 0xABCD)
	var res []route.Result
	trace := ""
	n := len(nw.Inputs())
	for round := 0; round < 50; round++ {
		reqs := wl.NextConnects(n)
		res = se.ServeBatch(reqs, res)
		for i := range reqs {
			if res[i].Path != nil {
				trace += fmt.Sprintf("+%v", res[i].Path)
			} else {
				trace += "-"
			}
		}
		wl.Commit(res[:len(reqs)])
		for _, rel := range wl.NextReleases(n / 3) {
			if err := se.Disconnect(rel.In, rel.Out); err != nil {
				t.Fatalf("shards=%d round %d: disconnect: %v", shards, round, err)
			}
		}
	}
	if err := se.VerifyState(); err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return trace, se.ShardedStats()
}

func TestShardedInvarianceAcrossShardsAndPrefilter(t *testing.T) {
	nw := buildNet(t, 2)
	m := repairedMasks(t, nw, 0.04, 0x151)
	ref, refStats := runInvariance(t, nw, m, 1, route.PrefilterOff)
	if refStats.Accepted == 0 {
		t.Fatal("reference stream accepted nothing")
	}
	sawPrefilterRejects := false
	sawFallbacks := refStats.Fallbacks > 0
	for _, shards := range []int{1, 2, 3, 4, 8} {
		for _, pf := range []route.PrefilterMode{route.PrefilterAuto, route.PrefilterOff, route.PrefilterOn} {
			got, stats := runInvariance(t, nw, m, shards, pf)
			if got != ref {
				t.Fatalf("shards=%d pf=%d: decision+path stream diverged from reference", shards, pf)
			}
			if stats.PrefilterRejects > 0 {
				sawPrefilterRejects = true
			}
			if stats.Fallbacks > 0 {
				sawFallbacks = true
			}
		}
	}
	if !sawPrefilterRejects {
		t.Error("prefilter never rejected anything; its exactness was not exercised")
	}
	if !sawFallbacks {
		t.Error("CAS fallback never ran; conflict path was not exercised")
	}
}

// TestShardedRaceStress exercises concurrent phase-A speculation under the
// race detector: shard counts × batch splits over a saturating permutation
// on the n=64 network, with state verification and decision comparison
// against the sequential router per epoch.
func TestShardedRaceStress(t *testing.T) {
	pinProcs(t, 4)
	nw := buildNet(t, 3)
	n := len(nw.Inputs())
	perm := rng.New(7).Perm(n)
	reqs := make([]route.Request, n)
	for i := range reqs {
		reqs[i] = route.Request{In: nw.Inputs()[i], Out: nw.Outputs()[perm[i]]}
	}
	rt := route.NewRouter(nw.G)
	rt.EnablePathReuse()
	want := make([]bool, n)
	for _, shards := range []int{2, 4, 8} {
		for _, batch := range []int{n, n / 2, 9} {
			se := route.NewShardedEngine(nw.G, shards)
			var res []route.Result
			for epoch := 0; epoch < 3; epoch++ {
				rt.Reset()
				for i, rq := range reqs {
					_, err := rt.Connect(rq.In, rq.Out)
					want[i] = err == nil
				}
				se.Reset()
				for lo := 0; lo < n; lo += batch {
					hi := min(lo+batch, n)
					res = se.ServeBatch(reqs[lo:hi], res)
					for i := range res[:hi-lo] {
						if (res[i].Path != nil) != want[lo+i] {
							t.Fatalf("shards=%d batch=%d epoch=%d req %d: decision mismatch",
								shards, batch, epoch, lo+i)
						}
					}
				}
				if err := se.VerifyState(); err != nil {
					t.Fatalf("shards=%d batch=%d epoch=%d: %v", shards, batch, epoch, err)
				}
			}
		}
	}
}

// TestShardedFastPathDominatesLightChurn: under light operational churn the
// speculative fast path should serve nearly everything; under saturating
// batches from an empty network, conflicts must push requests through the
// CAS fallback instead. Both regimes must leave consistent claim state.
func TestShardedFastPathDominatesLightChurn(t *testing.T) {
	nw := buildNet(t, 3)
	se := route.NewShardedEngine(nw.G, 4)
	wl := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 0xFEED)
	var res []route.Result
	for round := 0; round < 50; round++ {
		reqs := wl.NextConnects(4)
		res = se.ServeBatch(reqs, res)
		wl.Commit(res[:len(reqs)])
		for _, rel := range wl.NextReleases(4) {
			if err := se.Disconnect(rel.In, rel.Out); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := se.ShardedStats()
	if st.FastPath < st.Fallbacks {
		t.Errorf("light churn should be fast-path dominated: fast=%d fallback=%d", st.FastPath, st.Fallbacks)
	}
	if err := se.VerifyState(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedServeBatchAllocFree: steady-state batches allocate nothing
// once scratch is warm — the same discipline as the Evaluator trial loop.
func TestShardedServeBatchAllocFree(t *testing.T) {
	nw := buildNet(t, 2)
	se := route.NewShardedEngine(nw.G, 4)
	se.Prefilter = route.PrefilterOn // warm the lane-pass scratch too
	n := len(nw.Inputs())
	perm := rng.New(3).Perm(n)
	reqs := make([]route.Request, n)
	for i := range reqs {
		reqs[i] = route.Request{In: nw.Inputs()[i], Out: nw.Outputs()[perm[i]]}
	}
	res := make([]route.Result, 0, n)
	work := func() {
		res = se.ServeBatch(reqs, res)
		for _, r := range res {
			if r.Path != nil {
				if err := se.Disconnect(r.In, r.Out); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for i := 0; i < 8; i++ {
		work() // warm pools and arenas
	}
	if avg := testing.AllocsPerRun(50, work); avg != 0 {
		t.Errorf("steady-state ServeBatch allocated %.1f times per batch", avg)
	}
}

// TestShardedDisconnectErrors covers the bookkeeping edges.
func TestShardedDisconnectErrors(t *testing.T) {
	nw := buildNet(t, 1)
	se := route.NewShardedEngine(nw.G, 2)
	in, out := nw.Inputs()[0], nw.Outputs()[0]
	if err := se.Disconnect(in, out); err == nil {
		t.Fatal("disconnect of a nonexistent circuit succeeded")
	}
	res := se.ServeBatch([]route.Request{{In: in, Out: out}}, nil)
	if res[0].Path == nil {
		t.Fatal("fault-free connect failed")
	}
	if got := se.PathOf(in, out); len(got) == 0 {
		t.Fatal("PathOf lost the committed circuit")
	}
	if se.ActiveCircuits() != 1 {
		t.Fatalf("ActiveCircuits = %d, want 1", se.ActiveCircuits())
	}
	if err := se.Disconnect(in, nw.Outputs()[1]); err == nil {
		t.Fatal("disconnect with wrong output succeeded")
	}
	// Busy endpoint: rejected without probing (Attempts stays 0), like the
	// concurrent router's unusable-endpoint convention.
	res = se.ServeBatch([]route.Request{{In: in, Out: nw.Outputs()[1]}}, res)
	if res[0].Path != nil || res[0].Attempts != 0 {
		t.Fatalf("busy-endpoint request: got path=%v attempts=%d, want reject with 0 attempts",
			res[0].Path, res[0].Attempts)
	}
	if se.PathOf(-1, out) != nil {
		t.Fatal("PathOf(-1) should be nil")
	}
	if err := se.Disconnect(-1, out); err == nil {
		t.Fatal("Disconnect(-1) should error")
	}
	if err := se.Disconnect(in, out); err != nil {
		t.Fatal(err)
	}
	if se.ActiveCircuits() != 0 {
		t.Fatal("circuit survived disconnect")
	}
	if err := se.VerifyState(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedSetMasksSharedReleases: adopting new masks drops circuits and
// rebuilds the guide so stale pruning cannot linger.
func TestShardedSetMasksSharedReleases(t *testing.T) {
	nw := buildNet(t, 1)
	se := route.NewShardedEngine(nw.G, 2)
	in, out := nw.Inputs()[0], nw.Outputs()[0]
	if res := se.ServeBatch([]route.Request{{In: in, Out: out}}, nil); res[0].Path == nil {
		t.Fatal("fault-free connect failed")
	}
	m := repairedMasks(t, nw, 0.02, 99)
	se.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
	if se.ActiveCircuits() != 0 {
		t.Fatal("SetMasksShared kept circuits")
	}
	// The engine must agree with a sequential router on the new masks.
	rt := route.NewRouter(nw.G)
	rt.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
	res := se.ServeBatch([]route.Request{{In: in, Out: out}}, nil)
	_, err := rt.Connect(in, out)
	if (err == nil) != (res[0].Path != nil) {
		t.Fatalf("post-mask decision mismatch: seq err=%v sharded=%v", err, res[0].Path != nil)
	}
}

// FuzzShardedVsSequential fuzzes fault patterns and batch splits on the
// n=16 network, asserting decision AND path equality between the
// sequential router and a 2-shard engine with the prefilter forced on.
// GOMAXPROCS is pinned >1 and full-width batches clear the 2-shard
// fan-out threshold, so the fuzzer also drives the persistent workers and
// the disjoint parallel commit, not just the serial walk.
func FuzzShardedVsSequential(f *testing.F) {
	pinProcs(f, 4)
	f.Add(uint64(1), uint8(3))
	f.Add(uint64(42), uint8(16))
	f.Add(uint64(0xDEAD), uint8(1))
	nw, err := core.Build(core.Params{Nu: 2, Gamma: 0, M: 8, DQ: 3, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, seed uint64, batchRaw uint8) {
		m := repairedMasks(t, nw, 0.04, seed)
		rt := route.NewRouter(nw.G)
		rt.EnablePathReuse()
		rt.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
		se := route.NewShardedEngine(nw.G, 2)
		se.Prefilter = route.PrefilterOn
		se.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
		wl := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), seed^0x9E3779B97F4A7C15)
		batch := int(batchRaw%16) + 1
		var res []route.Result
		for round := 0; round < 6; round++ {
			reqs := wl.NextConnects(batch)
			res = se.ServeBatch(reqs, res)
			for i, rq := range reqs {
				path, err := rt.Connect(rq.In, rq.Out)
				if (err == nil) != (res[i].Path != nil) {
					t.Fatalf("round %d req %d: decision mismatch", round, i)
				}
				if err != nil {
					continue
				}
				if len(path) != len(res[i].Path) {
					t.Fatalf("round %d req %d: path lengths differ", round, i)
				}
				for j := range path {
					if path[j] != res[i].Path[j] {
						t.Fatalf("round %d req %d: paths diverge at %d", round, i, j)
					}
				}
			}
			wl.Commit(res[:len(reqs)])
			for _, rel := range wl.NextReleases(batch / 2) {
				rt.Disconnect(rel.In, rel.Out)
				se.Disconnect(rel.In, rel.Out)
			}
		}
		if err := se.VerifyState(); err != nil {
			t.Fatal(err)
		}
	})
}
