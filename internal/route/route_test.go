package route

import (
	"errors"
	"testing"

	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
	"ftcsn/internal/rng"
)

// crossbar builds a 2-input 2-output network with a full middle stage:
// in_i -> m_{i,j} -> out_j for all i,j (4 middle vertices), which is
// strictly nonblocking.
func crossbar() *graph.Graph {
	b := graph.NewBuilder(8, 8)
	in0 := b.AddVertex(0)
	in1 := b.AddVertex(0)
	var mids [2][2]int32
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			mids[i][j] = b.AddVertex(1)
		}
	}
	out0 := b.AddVertex(2)
	out1 := b.AddVertex(2)
	ins := []int32{in0, in1}
	outs := []int32{out0, out1}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			b.AddEdge(ins[i], mids[i][j])
			b.AddEdge(mids[i][j], outs[j])
		}
	}
	b.MarkInput(in0)
	b.MarkInput(in1)
	b.MarkOutput(out0)
	b.MarkOutput(out1)
	return b.Freeze()
}

// crossbar2 is like crossbar but with TWO parallel middle vertices per
// (input, output) pair, so any single internal vertex loss leaves an
// alternate route.
func crossbar2() *graph.Graph {
	b := graph.NewBuilder(12, 16)
	ins := []int32{b.AddVertex(0), b.AddVertex(0)}
	outs := make([]int32, 0, 2)
	var mids [2][2][2]int32
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				mids[i][j][k] = b.AddVertex(1)
			}
		}
	}
	outs = append(outs, b.AddVertex(2), b.AddVertex(2))
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				b.AddEdge(ins[i], mids[i][j][k])
				b.AddEdge(mids[i][j][k], outs[j])
			}
		}
	}
	b.MarkInput(ins[0])
	b.MarkInput(ins[1])
	b.MarkOutput(outs[0])
	b.MarkOutput(outs[1])
	return b.Freeze()
}

func TestConnectDisconnect(t *testing.T) {
	g := crossbar()
	rt := NewRouter(g)
	path, err := rt.Connect(g.Inputs()[0], g.Outputs()[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[0] != g.Inputs()[0] || path[2] != g.Outputs()[1] {
		t.Fatalf("path = %v", path)
	}
	if rt.ActiveCircuits() != 1 {
		t.Fatal("circuit not registered")
	}
	if err := rt.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Disconnect(g.Inputs()[0], g.Outputs()[1]); err != nil {
		t.Fatal(err)
	}
	if rt.ActiveCircuits() != 0 || rt.Busy(path[1]) {
		t.Fatal("disconnect did not release")
	}
}

func TestConnectBusyTerminal(t *testing.T) {
	g := crossbar()
	rt := NewRouter(g)
	if _, err := rt.Connect(g.Inputs()[0], g.Outputs()[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Connect(g.Inputs()[0], g.Outputs()[1]); !errors.Is(err, ErrBusyTerminal) {
		t.Fatalf("err = %v, want ErrBusyTerminal", err)
	}
}

func TestCrossbarNonblocking(t *testing.T) {
	g := crossbar()
	rt := NewRouter(g)
	if _, err := rt.Connect(g.Inputs()[0], g.Outputs()[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Connect(g.Inputs()[1], g.Outputs()[1]); err != nil {
		t.Fatalf("second circuit blocked on crossbar: %v", err)
	}
	if err := rt.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNoPathThroughForeignTerminal(t *testing.T) {
	// in0 -> out0 -> ... is illegal: circuits may not pass through another
	// terminal. Build in0 -> out0 and in0 -> x -> out1; connecting
	// in0->out1 must go via x even if out0 offers a "shortcut".
	b := graph.NewBuilder(5, 4)
	in0 := b.AddVertex(0)
	out0 := b.AddVertex(2)
	x := b.AddVertex(1)
	out1 := b.AddVertex(2)
	b.AddEdge(in0, out0)
	b.AddEdge(in0, x)
	b.AddEdge(x, out1)
	b.AddEdge(out0, out1) // pathological switch out of an "output"
	b.MarkInput(in0)
	b.MarkOutput(out1)
	// NOTE: out0 is deliberately NOT marked as a terminal here... but to
	// exercise the terminal-avoidance rule we mark it:
	b.MarkOutput(out0)
	g := b.Freeze()
	rt := NewRouter(g)
	path, err := rt.Connect(in0, out1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range path[1 : len(path)-1] {
		if g.IsTerminal(v) {
			t.Fatalf("path %v passes through terminal %d", path, v)
		}
	}
}

func TestNoPathError(t *testing.T) {
	g := crossbar()
	inst := fault.NewInstance(g)
	// Open all of input 0's switches.
	for _, e := range g.OutEdges(g.Inputs()[0]) {
		inst.SetState(e, fault.Open)
	}
	rt := NewRepairedRouter(inst)
	if _, err := rt.Connect(g.Inputs()[0], g.Outputs()[0]); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
	// Input 1 is unaffected.
	if _, err := rt.Connect(g.Inputs()[1], g.Outputs()[0]); err != nil {
		t.Fatal(err)
	}
}

func TestRepairedRouterAvoidsFaultyVertices(t *testing.T) {
	g := crossbar2()
	inst := fault.NewInstance(g)
	// Fail one switch into out0; its internal endpoint is discarded but a
	// parallel middle vertex still serves the (in0, out0) pair.
	target := g.InEdges(g.Outputs()[0])[0]
	discarded := g.EdgeFrom(target)
	inst.SetState(target, fault.Closed)
	rt := NewRepairedRouter(inst)
	path, err := rt.Connect(g.Inputs()[0], g.Outputs()[0])
	if err != nil {
		t.Fatalf("no alternate route: %v", err)
	}
	for _, v := range path {
		if v == discarded {
			t.Fatal("path used discarded vertex")
		}
	}
}

func TestDisconnectUnknown(t *testing.T) {
	g := crossbar()
	rt := NewRouter(g)
	if err := rt.Disconnect(g.Inputs()[0], g.Outputs()[0]); err == nil {
		t.Fatal("disconnect of unknown circuit succeeded")
	}
}

func TestDuplicateCircuitRejected(t *testing.T) {
	g := crossbar()
	rt := NewRouter(g)
	if _, err := rt.Connect(g.Inputs()[0], g.Outputs()[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Connect(g.Inputs()[0], g.Outputs()[0]); err == nil {
		t.Fatal("duplicate circuit accepted")
	}
}

func TestReset(t *testing.T) {
	g := crossbar()
	rt := NewRouter(g)
	_, _ = rt.Connect(g.Inputs()[0], g.Outputs()[0])
	rt.Reset()
	if rt.ActiveCircuits() != 0 {
		t.Fatal("Reset left circuits")
	}
	if _, err := rt.Connect(g.Inputs()[0], g.Outputs()[0]); err != nil {
		t.Fatalf("connect after reset: %v", err)
	}
}

func TestPathOf(t *testing.T) {
	g := crossbar()
	rt := NewRouter(g)
	want, _ := rt.Connect(g.Inputs()[1], g.Outputs()[0])
	got := rt.PathOf(g.Inputs()[1], g.Outputs()[0])
	if len(got) != len(want) {
		t.Fatal("PathOf mismatch")
	}
	if rt.PathOf(g.Inputs()[0], g.Outputs()[1]) != nil {
		t.Fatal("PathOf invented a circuit")
	}
}

// --- concurrent router ---

func TestConcurrentBatchDisjoint(t *testing.T) {
	g := crossbar()
	cr := NewConcurrentRouter(g)
	reqs := []Request{
		{g.Inputs()[0], g.Outputs()[0]},
		{g.Inputs()[1], g.Outputs()[1]},
	}
	results := cr.ServeBatch(reqs, 2, 11)
	for i, res := range results {
		if res.Path == nil {
			t.Fatalf("request %d failed", i)
		}
	}
	if !VerifyDisjoint(results) {
		t.Fatal("paths share vertices")
	}
}

func TestConcurrentRelease(t *testing.T) {
	g := crossbar()
	cr := NewConcurrentRouter(g)
	res := cr.ServeBatch([]Request{{g.Inputs()[0], g.Outputs()[0]}}, 1, 3)
	if res[0].Path == nil {
		t.Fatal("connect failed")
	}
	mid := res[0].Path[1]
	if !cr.Claimed(mid) {
		t.Fatal("middle vertex not claimed")
	}
	cr.Release(res[0].Path)
	if cr.Claimed(mid) {
		t.Fatal("release did not free vertex")
	}
}

func TestConcurrentHighContention(t *testing.T) {
	// Many goroutines compete for 2 inputs' worth of disjoint paths; safety
	// (disjointness) must hold regardless of which requests win.
	g := crossbar()
	cr := NewConcurrentRouter(g)
	var reqs []Request
	for i := 0; i < 16; i++ {
		reqs = append(reqs, Request{g.Inputs()[i%2], g.Outputs()[(i/2)%2]})
	}
	results := cr.ServeBatch(reqs, 8, 17)
	if !VerifyDisjoint(results) {
		t.Fatal("contention broke disjointness")
	}
	ok := 0
	for _, res := range results {
		if res.Path != nil {
			ok++
		}
	}
	// The two inputs can host at most 2 simultaneous circuits.
	if ok > 2 {
		t.Fatalf("%d circuits on 2 inputs", ok)
	}
	if ok == 0 {
		t.Fatal("no circuit established at all")
	}
}

func TestConcurrentRepairedRouter(t *testing.T) {
	g := crossbar2()
	inst := fault.NewInstance(g)
	inst.SetState(g.OutEdges(g.Inputs()[0])[0], fault.Open)
	cr := NewConcurrentRepairedRouter(inst)
	res := cr.ServeBatch([]Request{{g.Inputs()[0], g.Outputs()[0]}}, 1, 5)
	if res[0].Path == nil {
		t.Fatal("repaired concurrent router found no alternate path")
	}
	for _, v := range res[0].Path {
		if faulty := inst.FaultyVertices(); faulty[v] && !g.IsTerminal(v) {
			t.Fatal("path used discarded vertex")
		}
	}
}

func TestVerifyInvariantsCatchesCorruption(t *testing.T) {
	g := crossbar()
	rt := NewRouter(g)
	path, _ := rt.Connect(g.Inputs()[0], g.Outputs()[0])
	// Corrupt: free a path vertex behind the router's back.
	rt.busy[path[1]] = false
	if err := rt.VerifyInvariants(); err == nil {
		t.Fatal("invariant corruption not detected")
	}
}

func TestEpochWraparound(t *testing.T) {
	g := crossbar()
	rt := NewRouter(g)
	rt.epoch = ^uint32(0) - 1
	for i := 0; i < 4; i++ {
		if _, err := rt.Connect(g.Inputs()[0], g.Outputs()[0]); err != nil {
			t.Fatalf("connect around epoch wrap: %v", err)
		}
		if err := rt.Disconnect(g.Inputs()[0], g.Outputs()[0]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestServeBatchZeroWorkers(t *testing.T) {
	g := crossbar()
	cr := NewConcurrentRouter(g)
	res := cr.ServeBatch([]Request{{g.Inputs()[0], g.Outputs()[0]}}, 0, 1)
	if res[0].Path == nil {
		t.Fatal("workers<1 should clamp to 1 and still work")
	}
}

func BenchmarkSequentialConnect(b *testing.B) {
	g := crossbar()
	rt := NewRouter(g)
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in := g.Inputs()[r.Intn(2)]
		out := g.Outputs()[r.Intn(2)]
		if path, err := rt.Connect(in, out); err == nil {
			_ = path
			_ = rt.Disconnect(in, out)
		}
	}
}
