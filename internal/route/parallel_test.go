package route_test

// Tests for the multi-core serving path of route.ShardedEngine: the
// persistent phase workers, the conflict-free parallel commit, and the
// constructor's shard-count validation. Everything here pins GOMAXPROCS>1
// so the parallel phases genuinely interleave instead of degenerating to
// cooperative scheduling on a 1-P runner (the CI race job additionally
// runs this package with GOMAXPROCS=4).

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"ftcsn/internal/netsim"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

// pinProcs forces GOMAXPROCS=n for the duration of the test, restoring
// the previous value on cleanup.
func pinProcs(tb testing.TB, n int) {
	old := runtime.GOMAXPROCS(n)
	tb.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// TestShardedParallelCommitMatchesSequential is the path-level
// differential for batches large enough to engage the persistent workers
// and the disjoint parallel commit: n=64 saturation churn, shard counts
// whose fan-out threshold the first full batch clears, decisions AND
// paths compared against the sequential Router request by request. The
// ParallelBatches/DisjointCommits assertions keep the test honest — if a
// future threshold change stops the parallel phases from engaging, the
// differential must fail loudly instead of silently testing the serial
// walk again.
func TestShardedParallelCommitMatchesSequential(t *testing.T) {
	pinProcs(t, 4)
	nw := buildNet(t, 3)
	n := len(nw.Inputs())
	for _, eps := range []float64{0, 0.03} {
		m := repairedMasks(t, nw, eps, 0x9A7+uint64(eps*1000))
		for _, shards := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("eps=%g/shards=%d", eps, shards), func(t *testing.T) {
				rt := route.NewRouter(nw.G)
				rt.EnablePathReuse()
				se := route.NewShardedEngine(nw.G, shards)
				defer se.Close()
				if eps > 0 {
					rt.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
					se.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
				}
				d := &churnDiff{t: t, rt: rt, se: se,
					wl: netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 0xBA7C4+uint64(shards))}
				for round := 0; round < 25; round++ {
					d.round(n, n/3+1)
				}
				if err := se.VerifyState(); err != nil {
					t.Fatal(err)
				}
				if d.accepts == 0 {
					t.Fatal("workload never accepted a circuit; differential is vacuous")
				}
				st := se.ShardedStats()
				if st.ParallelBatches == 0 {
					t.Fatal("no batch engaged the persistent workers; parallel phases untested")
				}
				if st.DisjointCommits == 0 {
					t.Fatal("no circuit took the conflict-free parallel commit; disjoint path untested")
				}
			})
		}
	}
}

// TestShardedWorkersPersistAcrossBatches checks the handoff economics the
// tentpole promises: the first parallel batch parks S-1 worker goroutines
// on the engine's channel, subsequent batches reuse them (no per-batch
// spawn), Close stops them idempotently, and the next parallel batch
// lazily restarts them.
func TestShardedWorkersPersistAcrossBatches(t *testing.T) {
	pinProcs(t, 4)
	nw := buildNet(t, 3)
	n := len(nw.Inputs())
	perm := rng.New(11).Perm(n)
	reqs := make([]route.Request, n)
	for i := range reqs {
		reqs[i] = route.Request{In: nw.Inputs()[i], Out: nw.Outputs()[perm[i]]}
	}
	const shards = 4
	se := route.NewShardedEngine(nw.G, shards)
	var res []route.Result
	serve := func() {
		res = se.ServeBatch(reqs, res)
		for _, r := range res {
			if r.Path != nil {
				if err := se.Disconnect(r.In, r.Out); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	base := runtime.NumGoroutine()
	serve()
	afterFirst := runtime.NumGoroutine()
	if afterFirst < base+shards-1 {
		t.Fatalf("first parallel batch should leave %d workers parked: %d -> %d goroutines",
			shards-1, base, afterFirst)
	}
	for i := 0; i < 10; i++ {
		serve()
	}
	if g := runtime.NumGoroutine(); g > afterFirst {
		t.Errorf("goroutine count grew across batches (%d -> %d); workers are being respawned",
			afterFirst, g)
	}

	se.Close()
	se.Close() // idempotent
	waitGoroutines(t, base)

	// Close retires the workers, not the engine: the next large batch
	// restarts them and serving continues.
	serve()
	if g := runtime.NumGoroutine(); g < base+shards-1 {
		t.Errorf("post-Close batch should restart the workers: %d goroutines, want >= %d",
			g, base+shards-1)
	}
	if err := se.VerifyState(); err != nil {
		t.Fatal(err)
	}
	se.Close()
	waitGoroutines(t, base)
}

// waitGoroutines polls until the goroutine count drops back to at most
// want (worker exit after channel close is asynchronous).
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > want {
		if time.Now().After(deadline) {
			t.Fatalf("workers did not exit: %d goroutines, want <= %d", runtime.NumGoroutine(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardedParallelServeBatchAllocFree extends the zero-allocation gate
// to batches that run the persistent-worker fan-out and the disjoint
// parallel commit: once the workers are up and scratch is warm, a full
// parallel batch must allocate nothing anywhere in the process (the
// harness counts mallocs globally, so worker-side allocations are seen).
func TestShardedParallelServeBatchAllocFree(t *testing.T) {
	pinProcs(t, 4)
	nw := buildNet(t, 3)
	se := route.NewShardedEngine(nw.G, 4)
	se.Prefilter = route.PrefilterOn // warm the lane-pass scratch too
	defer se.Close()
	n := len(nw.Inputs())
	perm := rng.New(5).Perm(n)
	reqs := make([]route.Request, n)
	for i := range reqs {
		reqs[i] = route.Request{In: nw.Inputs()[i], Out: nw.Outputs()[perm[i]]}
	}
	res := make([]route.Result, 0, n)
	work := func() {
		res = se.ServeBatch(reqs, res)
		for _, r := range res {
			if r.Path != nil {
				if err := se.Disconnect(r.In, r.Out); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for i := 0; i < 8; i++ {
		work() // warm pools, arenas, and the worker channel
	}
	if st := se.ShardedStats(); st.ParallelBatches == 0 {
		t.Fatal("warm-up batches never engaged the workers; gate is vacuous")
	}
	if avg := testing.AllocsPerRun(50, work); avg != 0 {
		t.Errorf("steady-state parallel ServeBatch allocated %.1f times per batch", avg)
	}
}

// TestNewShardedEnginePanicsOnNonPositiveShards locks the constructor
// contract: a non-positive shard count is a caller bug and must not be
// silently clamped to sequential serving.
func TestNewShardedEnginePanicsOnNonPositiveShards(t *testing.T) {
	nw := buildNet(t, 1)
	for _, shards := range []int{0, -1, -8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewShardedEngine(g, %d) did not panic", shards)
				}
			}()
			route.NewShardedEngine(nw.G, shards)
		}()
	}
}
