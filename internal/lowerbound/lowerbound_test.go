package lowerbound

import (
	"testing"

	"ftcsn/internal/benes"
	"ftcsn/internal/butterfly"
	"ftcsn/internal/core"
	"ftcsn/internal/graph"
)

func TestGoodInputsTwoStars(t *testing.T) {
	// Two inputs joined to a shared hub: distance 2 < 3 → not good at
	// minDist 3; good at minDist 2.
	b := graph.NewBuilder(3, 2)
	i0 := b.AddVertex(0)
	i1 := b.AddVertex(0)
	hub := b.AddVertex(1)
	b.AddEdge(i0, hub)
	b.AddEdge(i1, hub)
	b.MarkInput(i0)
	b.MarkInput(i1)
	b.MarkOutput(hub) // hub as a dummy output to satisfy Validate-ish use
	g := b.Freeze()
	if got := GoodInputs(g, 3); len(got) != 0 {
		t.Fatalf("good at minDist 3: %v", got)
	}
	if got := GoodInputs(g, 2); len(got) != 2 {
		t.Fatalf("good at minDist 2: %v", got)
	}
	if d := MinPairwiseInputDistance(g); d != 2 {
		t.Fatalf("min input distance = %d", d)
	}
}

func TestZoneProfileLine(t *testing.T) {
	// in -> a -> b -> out: from in, B_1 = {in-a}, B_2 = {a-b}, B_3 = {b-out}.
	b := graph.NewBuilder(4, 3)
	in := b.AddVertex(0)
	va := b.AddVertex(1)
	vb := b.AddVertex(2)
	out := b.AddVertex(3)
	b.AddEdge(in, va)
	b.AddEdge(va, vb)
	b.AddEdge(vb, out)
	b.MarkInput(in)
	b.MarkOutput(out)
	g := b.Freeze()
	zones := ZoneProfile(g, in, 3)
	want := []int{0, 1, 1, 1}
	for h, w := range want {
		if zones[h] != w {
			t.Fatalf("zones = %v, want %v", zones, want)
		}
	}
	if m := MinZoneSize(g, in, 3); m != 1 {
		t.Fatalf("min zone = %d", m)
	}
}

func TestZoneCountsEdgesOnce(t *testing.T) {
	// Parallel switches both count in the same zone.
	b := graph.NewBuilder(2, 2)
	u := b.AddVertex(0)
	v := b.AddVertex(1)
	b.AddEdge(u, v)
	b.AddEdge(u, v)
	b.MarkInput(u)
	b.MarkOutput(v)
	g := b.Freeze()
	zones := ZoneProfile(g, u, 1)
	if zones[1] != 2 {
		t.Fatalf("zone 1 = %d, want 2 (parallel switches)", zones[1])
	}
}

func TestBenesZonesAreConstant(t *testing.T) {
	// Beneš: every input's first zone has exactly 2 switches, independent
	// of n — the structural witness that Theorem 1 excludes it.
	for _, k := range []int{3, 5, 7} {
		nw, err := benes.New(k)
		if err != nil {
			t.Fatal(err)
		}
		z := ZoneProfile(nw.G, nw.G.Inputs()[0], 1)
		if z[1] != 2 {
			t.Fatalf("k=%d: first zone = %d", k, z[1])
		}
	}
}

func TestCoreZonesGrowWithL(t *testing.T) {
	// Network 𝒩: the first zone of every input has L = M·4^γ switches,
	// which the paper sets to Θ(log n).
	for _, m := range []int{4, 8} {
		p := core.Params{Nu: 2, Gamma: 0, M: m, DQ: 2, Seed: 1}
		nw, err := core.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		z := ZoneProfile(nw.G, nw.Inputs()[0], 1)
		if z[1] != p.L() {
			t.Fatalf("M=%d: first zone = %d, want %d", m, z[1], p.L())
		}
	}
}

func TestAnalyzeComparesNetworks(t *testing.T) {
	bn, _ := benes.New(4)     // n=16
	bf, _ := butterfly.New(4) // n=16
	nwp := core.Params{Nu: 2, Gamma: 0, M: 8, DQ: 2, Seed: 1}
	nw, err := core.Build(nwp) // n=16
	if err != nil {
		t.Fatal(err)
	}
	cb := Analyze(bn.G)
	cf := Analyze(bf.G)
	cn := Analyze(nw.G)
	if cb.N != 16 || cf.N != 16 || cn.N != 16 {
		t.Fatal("terminal counts wrong")
	}
	// All three exceed the (tiny) Theorem-1 size bound at n=16 — the bound
	// separates asymptotically, not at toy sizes.
	for _, c := range []Certificate{cb, cf, cn} {
		if float64(c.Size) < c.SizeLowerBnd {
			t.Fatalf("size %d below Theorem-1 bound %v", c.Size, c.SizeLowerBnd)
		}
		if c.Depth > 0 && float64(c.Depth) < c.DepthLowerBnd {
			t.Fatalf("depth %d below Theorem-1 depth bound %v", c.Depth, c.DepthLowerBnd)
		}
	}
	// The structural separation: 𝒩's worst zone is L = 8; the baselines'
	// worst zones are 2.
	if cn.MinOfMinZones() <= cb.MinOfMinZones() {
		t.Fatalf("𝒩 zone %d not larger than Beneš zone %d", cn.MinOfMinZones(), cb.MinOfMinZones())
	}
	if cb.MinOfMinZones() != 2 || cf.MinOfMinZones() != 2 {
		t.Fatalf("baseline zones: benes=%d butterfly=%d, want 2", cb.MinOfMinZones(), cf.MinOfMinZones())
	}
}

func TestGoodInputsAllGoodWhenIsolated(t *testing.T) {
	// Disjoint input/output pairs: inputs mutually unreachable → all good.
	b := graph.NewBuilder(4, 2)
	i0 := b.AddVertex(0)
	o0 := b.AddVertex(1)
	i1 := b.AddVertex(0)
	o1 := b.AddVertex(1)
	b.AddEdge(i0, o0)
	b.AddEdge(i1, o1)
	b.MarkInput(i0)
	b.MarkInput(i1)
	b.MarkOutput(o0)
	b.MarkOutput(o1)
	g := b.Freeze()
	if got := GoodInputs(g, 100); len(got) != 2 {
		t.Fatalf("good inputs = %v", got)
	}
	if d := MinPairwiseInputDistance(g); d != -1 {
		t.Fatalf("distance = %d, want -1", d)
	}
}
