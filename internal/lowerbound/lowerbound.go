// Package lowerbound implements the Section 5 machinery behind Theorem 1
// of Pippenger & Lin: every (1/4, 1/2)-n-superconcentrator has size at
// least (1/2688)·n·(log₂n)² and depth at least (1/6)·log₂n.
//
// The proof associates with each input a neighborhood of logarithmic
// radius. Lemma 2 shows that for at least n/2 "good" inputs these
// neighborhoods are pairwise far apart (otherwise many short input-input
// paths exist, and closed failures short two inputs together with
// probability > 1/2 — built from Lemma 1's edge-disjoint path extraction).
// Partitioning each good input's neighborhood into distance zones
// B_h(v), every zone must hold Ω(log n) switches, else open failures cut
// the input off from some output with probability > 1/2. Summing zones
// and good inputs gives the Ω(n log²n) bound.
//
// This package computes those witnesses on concrete networks: good-input
// sets, zone profiles, and the per-network empirical size certificate.
// It is the analysis side of experiment E8: the paper's Network 𝒩 has
// Θ(log n) zone sizes at every good input, while Beneš/butterfly zones
// have O(1) switches — the structural reason they cannot be fault-tolerant.
package lowerbound

import (
	"math"

	"ftcsn/internal/graph"
)

// GoodInputs returns the inputs whose undirected distance to every other
// input is at least minDist (Lemma 2's "good" inputs; the lemma uses
// minDist = (1/6)·log₂n).
func GoodInputs(g *graph.Graph, minDist int) []int32 {
	var good []int32
	isInput := make([]bool, g.NumVertices())
	for _, in := range g.Inputs() {
		isInput[in] = true
	}
	for _, in := range g.Inputs() {
		dist := g.UndirectedDistances(in)
		ok := true
		for _, other := range g.Inputs() {
			if other == in {
				continue
			}
			if dist[other] >= 0 && int(dist[other]) < minDist {
				ok = false
				break
			}
		}
		if ok {
			good = append(good, in)
		}
	}
	return good
}

// MinPairwiseInputDistance returns the smallest undirected distance
// between two distinct inputs (or -1 if inputs are mutually unreachable).
func MinPairwiseInputDistance(g *graph.Graph) int {
	best := -1
	for i, in := range g.Inputs() {
		dist := g.UndirectedDistances(in)
		for _, other := range g.Inputs()[i+1:] {
			if d := dist[other]; d >= 0 {
				if best < 0 || int(d) < best {
					best = int(d)
				}
			}
		}
	}
	return best
}

// ZoneProfile returns |B_h(v)| for h = 1..radius: the number of switches
// at distance exactly h from v, where the distance from a vertex to a
// switch (u,w) is min(dist(v,u), dist(v,w)) + 1 as in the paper.
func ZoneProfile(g *graph.Graph, v int32, radius int) []int {
	dist := g.UndirectedDistances(v)
	zones := make([]int, radius+1) // zones[h], zone 0 unused
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		du := dist[g.EdgeFrom(e)]
		dw := dist[g.EdgeTo(e)]
		d := du
		if dw >= 0 && (d < 0 || dw < d) {
			d = dw
		}
		if d < 0 {
			continue
		}
		h := int(d) + 1
		if h <= radius {
			zones[h]++
		}
	}
	return zones
}

// MinZoneSize returns the smallest non-empty-radius zone size
// min_{1≤h≤radius} |B_h(v)| — the paper's b, which must be Ω(log n) in a
// fault-tolerant network.
func MinZoneSize(g *graph.Graph, v int32, radius int) int {
	zones := ZoneProfile(g, v, radius)
	min := -1
	for h := 1; h <= radius; h++ {
		if min < 0 || zones[h] < min {
			min = zones[h]
		}
	}
	return min
}

// Certificate is the Theorem-1 analysis of one network.
type Certificate struct {
	N            int
	Size         int
	Depth        int
	GoodInputs   int // #inputs pairwise ≥ (1/6)log₂n apart
	MinInputDist int
	// ZoneRadius is ⌊(1/36)·log₂n⌋ (the paper uses (1/6)·(1/6)·log₂n for
	// the zones inside each good input's neighborhood); at experiment
	// scales this is tiny, so we also report profiles at radius
	// ProfileRadius = max(2, that).
	ZoneRadius    int
	MinZoneSizes  []int // min zone size per good input (ProfileRadius)
	SizeLowerBnd  float64
	DepthLowerBnd float64
}

// Analyze computes the certificate for a network.
func Analyze(g *graph.Graph) Certificate {
	n := len(g.Inputs())
	lg := math.Log2(float64(n))
	minDist := int(math.Ceil(lg / 6))
	if minDist < 1 {
		minDist = 1
	}
	zr := int(lg / 36)
	if zr < 2 {
		zr = 2
	}
	depth, err := g.Depth()
	if err != nil {
		depth = -1
	}
	good := GoodInputs(g, minDist)
	cert := Certificate{
		N:             n,
		Size:          g.NumEdges(),
		Depth:         depth,
		GoodInputs:    len(good),
		MinInputDist:  MinPairwiseInputDistance(g),
		ZoneRadius:    zr,
		SizeLowerBnd:  float64(n) * lg * lg / 2688,
		DepthLowerBnd: lg / 6,
	}
	for _, v := range good {
		cert.MinZoneSizes = append(cert.MinZoneSizes, MinZoneSize(g, v, zr))
	}
	return cert
}

// MinOfMinZones returns the worst min-zone size over good inputs, or -1.
func (c Certificate) MinOfMinZones() int {
	min := -1
	for _, z := range c.MinZoneSizes {
		if min < 0 || z < min {
			min = z
		}
	}
	return min
}
