package experiments

import (
	"fmt"

	"ftcsn/internal/benes"
	"ftcsn/internal/butterfly"
	"ftcsn/internal/circulant"
	"ftcsn/internal/core"
	"ftcsn/internal/fault"
	"ftcsn/internal/hammock"
	"ftcsn/internal/hyperx"
	"ftcsn/internal/montecarlo"
	"ftcsn/internal/multibutterfly"
	"ftcsn/internal/rng"
	"ftcsn/internal/stats"
	"ftcsn/internal/superconc"
	"ftcsn/internal/trees"
)

// E14FamilyZoo compares topology families under the identical fault and
// traffic model through the graph.Levels contract: the paper's network 𝒩
// next to its Mirror() image, a hammock-substituted Beneš (§3's
// reduction), an expander-based superconcentrator, and the DAG-unrolled
// hyperx and circulant interconnects, and the classic connector baselines
// (the doubled-tree, the butterfly, and the Leighton–Maggs multibutterfly)
// — each wrapped by core.WrapGraph so the word-parallel majority-access
// certifier and the sharded churn engine run on all of them, identity
// sweep or permuted sweep alike.
func E14FamilyZoo(mode Mode) Result {
	res := Result{
		ID:    "E14",
		Title: "Topology zoo under one fault and traffic model (graph.Levels contract)",
		Paper: "the certification and routing machinery is stated for 𝒩's stages, but Lemma 6's majority-access argument and §4's greedy routing need only a topological leveling — so every DAG family admits the same measurements",
	}

	type family struct {
		name string
		nw   *core.Network
	}
	var fams []family
	add := func(name string, nw *core.Network, err error) {
		if err == nil && nw != nil {
			fams = append(fams, family{name, nw})
		}
	}

	if nw, err := core.Build(scaledParams(1)); err == nil {
		add("network-𝒩 (ν=1)", nw, nil)
		mnw, merr := core.WrapGraph(nw.G.Mirror())
		add("mirror(𝒩)", mnw, merr)
	}
	if bn, err := benes.New(3); err == nil {
		sub := hammock.SubstituteEdges(bn.G, 2, 2, false)
		nw, werr := core.WrapGraph(sub)
		add("benes⊗hammock(2,2)", nw, werr)
	}
	if sc, err := superconc.New(24, 3, 0xE14); err == nil {
		nw, werr := core.WrapGraph(sc.G)
		add("superconcentrator(24)", nw, werr)
	}
	if hx, err := hyperx.New([]int{3, 2}, 3); err == nil {
		nw, werr := core.WrapGraph(hx.G)
		add("hyperx(3×2, depth 3)", nw, werr)
	}
	if cc, err := circulant.New(8, []int{1, 3}, 4); err == nil {
		nw, werr := core.WrapGraph(cc.G)
		add("circulant(8;1,3, depth 4)", nw, werr)
	}
	// New families append at the END: the certificate and churn seeds are
	// keyed by family index, so reordering would silently reroll the
	// committed tables for everything after the insertion point.
	if tn, err := trees.Doubled(4); err == nil {
		nw, werr := core.WrapGraph(tn.G)
		add("doubled-tree(k=4)", nw, werr)
	}
	if bf, err := butterfly.New(3); err == nil {
		nw, werr := core.WrapGraph(bf.G)
		add("butterfly(k=3)", nw, werr)
	}
	if mb, err := multibutterfly.New(3, 2, 0xE14C); err == nil {
		nw, werr := core.WrapGraph(mb.G)
		add("multibutterfly(k=3,d=2)", nw, werr)
	}

	// Structure: which fast path each family takes. "identity" means vertex
	// IDs are level-sorted and the sweeps are the historical plain-ID loops;
	// "permuted" means they walk the cached level order — previously these
	// families fell back to per-terminal BFS and per-op routing.
	structure := stats.NewTable("family", "in×out", "vertices", "switches", "levels", "sweep", "word certifier")
	for _, f := range fams {
		g := f.nw.G
		lv, err := g.Levels()
		if err != nil {
			continue
		}
		sweep := "permuted"
		if lv.Sorted() {
			sweep = "identity"
		}
		cert := "—"
		if core.NewBatchAccessChecker(f.nw).Supported() {
			cert = "yes"
		}
		structure.AddRow(f.name,
			fmt.Sprintf("%d×%d", len(g.Inputs()), len(g.Outputs())),
			g.NumVertices(), g.NumEdges(), lv.NumLevels(), sweep, cert)
	}
	res.Tables = append(res.Tables, structure)

	// Majority access to the middle level under symmetric faults — Lemma
	// 6's certificate, word-parallel on every family.
	trialsN := mode.trials(60, 400)
	pool := core.NewEvaluatorPool()
	cert := stats.NewTable("family", "ε", "trials", "P[majority access]")
	for i, f := range fams {
		for j, eps := range []float64{0.002, 0.01} {
			pr := montecarloMajority(pool, f.nw, eps, trialsN, uint64(0xE14A00+i*16+j))
			cert.AddRow(f.name, eps, trialsN, pr)
		}
	}
	res.Tables = append(res.Tables, cert)

	// Sharded churn under the identical random traffic model: random
	// connect/disconnect ops per trial on the repaired network, decisions
	// bit-identical to the sequential router on every family.
	churnOps := 120
	churn := stats.NewTable("family", "ε", "trials", "connects", "blocked", "mean path len")
	for i, f := range fams {
		for j, eps := range []float64{0, 0.005} {
			scs := montecarlo.RunWith(montecarlo.Config{Trials: trialsN, Seed: uint64(0xE14B00 + i*16 + j)},
				batchEvalScratchFor(pool, f.nw, fault.Symmetric(eps), false),
				func(_ *rng.RNG, s *batchEvalScratch, _ uint64) {
					s.ev.EvaluateNextInto(&s.out, churnOps)
					s.churnConn += s.out.ChurnConnects
					s.churnFail += s.out.ChurnFailures
					s.churnPathTotal += s.out.ChurnPathTotal
				})
			t := mergeBatchEval(scs)
			releaseBatchEval(scs)
			churn.AddRow(f.name, eps, trialsN, t.churnConn, t.churnFail,
				ratio(t.churnPathTotal, t.churnConn-t.churnFail))
		}
	}
	res.Tables = append(res.Tables, churn)

	res.Notes = append(res.Notes,
		"only 𝒩 carries Theorem 2's guarantee; the zoo rows measure how far Lemma 6's certificate and greedy churn degrade on families that were never engineered for it — blocked > 0 outside 𝒩 is expected, not a bug",
		"mirror(𝒩), the superconcentrator, hyperx and circulant all take the permuted sweep (IDs not level-sorted) — before the Levels contract these families had no word-parallel certifier and no sharded fast path at all",
		"families are compared under the same symmetric-ε fault model and the same batch-shaped churn stream; sizes differ, so compare trends (ε response, blocking onset), not absolute rates",
		"the three baselines span the connector spectrum: the doubled-tree (Θ(n) switches, every path through one root, at most one live circuit), the butterfly (unique path per pair, fastest ε decay), and the multibutterfly (constant terminal degree 2d — tolerant of worst-case bounded fault sets but not the paper's random model, per E8)")
	return res
}
