package experiments

import (
	"ftcsn/internal/benes"
	"ftcsn/internal/butterfly"
	"ftcsn/internal/core"
	"ftcsn/internal/graph"
	"ftcsn/internal/maxflow"
	"ftcsn/internal/netsim"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
	"ftcsn/internal/stats"
	"ftcsn/internal/superconc"
)

// E12Hierarchy verifies the paper's §2 containment chain empirically:
// a nonblocking n-network is a rearrangeable n-network, and a
// rearrangeable n-network is an n-superconcentrator — and the
// containments are strict, witnessed by:
//
//   - Network 𝒩 passes all three tests;
//   - Beneš is rearrangeable (every permutation routes as disjoint paths)
//     but NOT strictly nonblocking: an on-line greedy request sequence can
//     drive it into a state where an idle pair cannot connect;
//   - the butterfly is a connector but NOT rearrangeable: explicit
//     permutations have no disjoint routing (flow < n);
//   - the linear-size superconcentrator is NOT rearrangeable either: it
//     concentrates any r-set to any r-set but cannot realize all
//     point-to-point pairings.
func E12Hierarchy(mode Mode) Result {
	res := Result{
		ID:    "E12",
		Title: "The three network classes and their strict containment (§2)",
		Paper: "nonblocking ⊂ rearrangeable ⊂ superconcentrator, all containments strict",
	}
	tab := stats.NewTable("network", "n", "size",
		"superconcentrator?", "rearrangeable?", "strictly nonblocking (greedy churn)?")

	permTrials := mode.trials(30, 200)
	// Long churn: Beneš's greedy blocking states are reliably reached
	// within a few thousand operations (probe: 30/30 seeds at 5000 ops).
	churnTrials := mode.trials(5000, 20000)
	r := rng.New(0xE12)

	// --- Network 𝒩 (ν=1, n=4): expected to pass everything.
	nn, err := core.Build(core.Params{Nu: 1, Gamma: 0, M: 8, DQ: 3, Seed: 1})
	if err == nil {
		sc := isSuperconcentratorSampled(nn.G, permTrials, r.Split(1))
		ra := isRearrangeableSampled(nn.G, permTrials, r.Split(2))
		nb := neverBlocksUnderChurn(nn.G, churnTrials, r.Split(3))
		tab.AddRow("network-N", 4, nn.G.NumEdges(), yes(sc), yes(ra), yes(nb))
	}

	// --- Beneš (n=8): superconcentrator + rearrangeable, NOT strictly
	// nonblocking.
	bn, err := benes.New(3)
	if err == nil {
		sc := isSuperconcentratorSampled(bn.G, permTrials, r.Split(4))
		// Rearrangeability via the looping algorithm itself, the stronger
		// constructive witness.
		ra := true
		for i := 0; i < permTrials; i++ {
			perm := r.Perm(bn.N)
			paths, err := bn.RoutePermutation(perm)
			if err != nil || bn.VerifyRouting(perm, paths) != nil {
				ra = false
				break
			}
		}
		nb := neverBlocksUnderChurn(bn.G, churnTrials, r.Split(5))
		tab.AddRow("benes", 8, bn.G.NumEdges(), yes(sc), yes(ra), yes(nb))
	}

	// --- Butterfly (n=8): connector only.
	bf, err := butterfly.New(3)
	if err == nil {
		sc := isSuperconcentratorSampled(bf.G, permTrials, r.Split(6))
		ra := isRearrangeableSampled(bf.G, permTrials, r.Split(7))
		nb := neverBlocksUnderChurn(bf.G, churnTrials, r.Split(8))
		tab.AddRow("butterfly", 8, bf.G.NumEdges(), yes(sc), yes(ra), yes(nb))
	}

	// --- Superconcentrator (n=16, above the crossbar cutoff): the weakest
	// class. Rearrangeability is refuted exactly on the cyclic derangement:
	// a derangement cannot use any direct matching switch (it would land on
	// the wrong terminal), and the remaining edges funnel all n circuits
	// through only 3n/4 hubs.
	sc16, err := superconc.New(16, 4, 7)
	if err == nil {
		scOK := sc16.VerifyExhaustive(2) == nil && sc16.VerifySampled(permTrials, r.Split(9)) == 0
		ra := derangementRoutable(sc16)
		nb := neverBlocksUnderChurn(sc16.G, churnTrials, r.Split(10))
		tab.AddRow("superconcentrator", 16, sc16.G.NumEdges(), yes(scOK), yes(ra), yes(nb))
	}

	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"superconcentrator column: every sampled (r inputs, r outputs) pair admits r vertex-disjoint paths",
		"rearrangeable column: exact pairing-respecting disjoint-path search on sampled permutations (looping algorithm for Beneš; derangement hub-counting for the superconcentrator)",
		"strictly-nonblocking column: greedy churn over thousands of operations never blocks; NO means an explicit on-line blocking state was reached",
		"expected pattern: 𝒩 = yes/yes/yes, Beneš = yes/yes/NO, butterfly = NO/NO/NO (a mere connector — with enough samples even its superconcentration fails), superconcentrator = yes/NO/NO — the containments nonblocking ⊂ rearrangeable ⊂ superconcentrator are strict")
	return res
}

// derangementRoutable decides whether the cyclic derangement i → i+1 mod n
// routes on the superconcentrator: since no pair may use its direct
// matching switch (it terminates at the wrong output), all n circuits must
// run through the hub stage, so vertex-disjoint flow with the matching
// switches removed decides the question exactly.
func derangementRoutable(sc *superconc.Network) bool {
	g := sc.G
	n := sc.N
	isMatching := make([]bool, g.NumEdges())
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		u, v := g.EdgeFrom(e), g.EdgeTo(e)
		if g.IsTerminal(u) && g.IsTerminal(v) {
			isMatching[e] = true
		}
	}
	flow := maxflow.VertexDisjointPathsAvoiding(g, g.Inputs(), g.Outputs(), nil,
		func(e int32) bool { return !isMatching[e] })
	return flow >= n
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

// isSuperconcentratorSampled checks r-set to r-set disjoint connectivity
// on random subsets (r=1..n), via max-flow.
func isSuperconcentratorSampled(g *graph.Graph, samples int, r *rng.RNG) bool {
	n := len(g.Inputs())
	for s := 0; s < samples; s++ {
		k := 1 + r.Intn(n)
		inIdx := r.Sample(n, k)
		outIdx := r.Sample(n, k)
		ins := make([]int32, k)
		outs := make([]int32, k)
		for i := range inIdx {
			ins[i] = g.Inputs()[inIdx[i]]
			outs[i] = g.Outputs()[outIdx[i]]
		}
		if maxflow.VertexDisjointPaths(g, ins, outs) < k {
			return false
		}
	}
	return true
}

// isRearrangeableSampled checks full-permutation routability on random
// permutations with the exact pairing-respecting backtracking solver
// (plain max-flow does not enforce the pairing — deciding it exactly is
// the disjoint-paths problem, feasible at these sizes).
func isRearrangeableSampled(g *graph.Graph, samples int, r *rng.RNG) bool {
	n := len(g.Inputs())
	for s := 0; s < samples; s++ {
		perm := r.Perm(n)
		verdict := maxflow.PermutationRoutable(g, g.Inputs(), g.Outputs(), perm, 1<<20)
		if verdict == maxflow.PairingImpossible {
			return false
		}
		// Undecided (budget exhausted) is treated as routable-unknown and
		// does not falsify; at n ≤ 8 the search always decides.
	}
	return true
}

// neverBlocksUnderChurn drives randomized greedy churn and reports whether
// any connect between idle terminals ever failed.
func neverBlocksUnderChurn(g *graph.Graph, ops int, r *rng.RNG) bool {
	rt := route.NewRouter(g)
	var cd netsim.ChurnDriver
	_, failures, _ := cd.Run(rt, g.Inputs(), g.Outputs(), ops, r)
	return failures == 0
}
