package experiments

import (
	"fmt"
	"math"

	"ftcsn/internal/benes"
	"ftcsn/internal/butterfly"
	"ftcsn/internal/core"
	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
	"ftcsn/internal/montecarlo"
	"ftcsn/internal/multibutterfly"
	"ftcsn/internal/rng"
	"ftcsn/internal/stats"
)

// scaledParams are the standard materialized-𝒩 parameters per ν used
// across E5–E10: FIXED terminal degree L = 8, which deliberately does NOT
// follow the paper's L = Θ(log n) scaling (used to expose the role of L in
// the ablations).
func scaledParams(nu int) core.Params {
	return core.Params{Nu: nu, Gamma: 0, M: 8, DQ: 3, Seed: 1}
}

// paperScaledParams follow the paper's scaling law with laptop-size
// constants: terminal degree L = M·4^γ = 8ν grows linearly in log₄n, the
// scaled analogue of the paper's 64·4^γ ≈ 64·34ν. This is the family for
// which Theorem 2's (ε,δ) property holds as n grows.
func paperScaledParams(nu int) core.Params {
	return core.Params{Nu: nu, Gamma: 0, M: 8 * nu, DQ: 3, Seed: 1}
}

// E5MajorityAccess reproduces Lemma 6 / Corollary 2: after injecting
// faults and applying the discard repair, every idle terminal of 𝒩 keeps
// access to a strict majority of the middle stage, with probability → 1.
func E5MajorityAccess(mode Mode) Result {
	res := Result{
		ID:    "E5",
		Title: "Majority access of Network 𝒩 after repair (Lemma 6, Corollary 2)",
		Paper: "𝒩 is a majority-access network (and so is its mirror) except with probability ≤ c₁ν(144ε)^(64·4^γ) + ν(2/e)^(2ν)",
	}
	tab := stats.NewTable("ν", "n", "L", "ε", "P[majority access]", "min access frac seen")
	trialsN := mode.trials(60, 400)
	pool := core.NewEvaluatorPool()
	nus := []int{1, 2}
	if mode == Full {
		nus = append(nus, 3)
	}
	for _, nu := range nus {
		p := scaledParams(nu)
		nw, err := core.Build(p)
		if err != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("ν=%d: %v", nu, err))
			continue
		}
		mid := float64(nw.StageSize[nw.MiddleStage])
		for _, eps := range []float64{0.001, 0.005, 0.02} {
			// Per-worker batched evaluators and per-worker minima: blocks
			// of fault draws are filled at once (StartBlock) and consumed
			// by diffs, and the extremum is folded in the worker's scratch
			// and merged afterwards, so no trial races on shared state.
			scs := montecarlo.RunWith(montecarlo.Config{Trials: trialsN, Seed: uint64(0xE50000 + nu*100)},
				batchEvalScratchFor(pool, nw, fault.Symmetric(eps), false),
				func(_ *rng.RNG, s *batchEvalScratch, _ uint64) {
					s.ev.EvaluateNextCertInto(&s.out)
					s.trials++
					if s.out.MajorityAccess {
						s.maj++
					}
					if f := worstOutcomeFrac(s.out, mid); f < s.minFrac {
						s.minFrac = f
					}
				})
			t := mergeBatchEval(scs)
			releaseBatchEval(scs)
			tab.AddRow(nu, p.N(), p.L(), eps, ratio(t.maj, t.trials), t.minFrac)
		}
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"fault-free access is 100% of the middle stage; small ε erodes it only marginally — the induction of Lemma 6 has wide margins",
		"minFrac is the worst idle-terminal access fraction observed across all trials (−1 rows mean a busy terminal, excluded)")
	return res
}

// worstOutcomeFrac is the worst idle-terminal access fraction recorded in a
// trial outcome (busy terminals are exempt, reported as -1).
func worstOutcomeFrac(out core.TrialOutcome, middleSize float64) float64 {
	worst := math.Inf(1)
	if out.MinInputAccess >= 0 {
		worst = float64(out.MinInputAccess)
	}
	if out.MinOutputAccess >= 0 && float64(out.MinOutputAccess) < worst {
		worst = float64(out.MinOutputAccess)
	}
	return worst / middleSize
}

// E6TerminalShorting reproduces Lemma 7: the probability that closed
// failures contract two terminals into one node decays like (cε)^(2ν) —
// doubling ν squares the failure probability.
func E6TerminalShorting(mode Mode) Result {
	res := Result{
		ID:    "E6",
		Title: "Terminal shorting through closed switches (Lemma 7)",
		Paper: "P[two terminals contract] ≤ c₂ν²(160ε)^(2ν): exponentially small in the terminal separation 2ν",
	}
	tab := stats.NewTable("ν", "n", "ε", "P[shorted]", "shortest terminal-terminal distance")
	trialsN := mode.trials(300, 3000)
	pool := core.NewEvaluatorPool()
	for _, nu := range []int{1, 2} {
		p := scaledParams(nu)
		nw, err := core.Build(p)
		if err != nil {
			continue
		}
		// Terminal separation: any input-input path runs down one grid and
		// up another: ≥ 2ν switches... measured exactly:
		minDist := terminalMinDistance(nw.G)
		for _, eps := range []float64{0.1, 0.2, 0.3} {
			pr, wscs := montecarlo.RunBoolWithScratches(montecarlo.Config{Trials: trialsN, Seed: uint64(0xE60000 + nu*10)},
				batchWitnessScratchFor(pool, nw.G, eps),
				func(_ *rng.RNG, s *batchWitnessScratch) bool {
					s.next()
					return s.shorted()
				})
			releaseWitnessScratches(wscs)
			tab.AddRow(nu, p.N(), eps, pr.Estimate(), minDist)
		}
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"shorting needs a chain of ≥ distance-many closed switches, so at fixed ε the rate falls sharply with ν (compare rows across ν)",
		"measurable rates require ε far above the paper's 10⁻⁶; the decay-in-ν shape is what Lemma 7 asserts")
	return res
}

// terminalMinDistance returns the smallest undirected distance between two
// distinct terminals.
func terminalMinDistance(g *graph.Graph) int {
	terms := append(append([]int32(nil), g.Inputs()...), g.Outputs()...)
	best := -1
	for i, t := range terms {
		dist := g.UndirectedDistances(t)
		for _, u := range terms[i+1:] {
			if d := dist[u]; d >= 0 && (best < 0 || int(d) < best) {
				best = int(d)
			}
		}
	}
	return best
}

// E7Theorem2 reproduces Theorem 2 in both of its aspects: (a) the
// closed-form size/depth accounting of the paper-constant construction
// against the claimed 49n(log₄n)² and 5log₄n, and (b) the end-to-end
// fault-tolerance pipeline on materialized scaled instances: inject →
// discard repair → majority-access certificate → greedy churn.
func E7Theorem2(mode Mode) Result {
	res := Result{
		ID:    "E7",
		Title: "Theorem 2: Θ(n log²n)-size, Θ(log n)-depth fault-tolerant nonblocking networks",
		Paper: "an explicit (10⁻⁶,δ)-nonblocking n-network with ≤ 49n(log₄n)² edges and 5log₄n depth, for arbitrarily small δ",
	}
	acct := stats.NewTable("ν", "n", "γ", "edges (faithful)", "edges (paper claim 1408ν4^(ν+γ))",
		"49n(log₄n)²", "edges/(n·ν²)", "depth 4ν", "5log₄n")
	for nu := 1; nu <= 8; nu++ {
		pa := core.PaperAccounting(nu)
		acct.AddRow(nu, pa.N, pa.Gamma, pa.EdgesFaithful, pa.EdgesClaimed, pa.Theorem2Bound,
			float64(pa.EdgesFaithful)/(float64(pa.N)*float64(nu*nu)),
			pa.DepthFaithful, pa.Theorem2DepthBound)
	}
	res.Tables = append(res.Tables, acct)

	pipe := stats.NewTable("ν", "n", "L", "edges", "depth", "ε", "P[success]", "P[majority]", "churn fail rate")
	trialsN := mode.trials(40, 300)
	pool := core.NewEvaluatorPool()
	nus := []int{1, 2}
	if mode == Full {
		nus = append(nus, 3)
	}
	for _, nu := range nus {
		p := paperScaledParams(nu)
		nw, err := core.Build(p)
		if err != nil {
			continue
		}
		a := core.Accounting(p)
		for _, eps := range []float64{0.0005, 0.002, 0.01} {
			// Per-worker batched evaluators; StartBlockSeq keeps the
			// historical per-trial seed 0xE70000+nu*1000+i, so outcomes
			// match the sequential per-trial harness bit-for-bit, only
			// computed by block diffs on the fast path.
			seedBase := uint64(0xE70000 + nu*1000)
			scs := montecarlo.RunWith(montecarlo.Config{Trials: trialsN, Seed: seedBase},
				batchEvalScratchFor(pool, nw, fault.Symmetric(eps), true),
				func(_ *rng.RNG, s *batchEvalScratch, _ uint64) {
					s.ev.EvaluateNextInto(&s.out, 120)
					s.trials++
					if s.out.Success {
						s.succ++
					}
					if s.out.MajorityAccess {
						s.maj++
					}
					s.churnConn += s.out.ChurnConnects
					s.churnFail += s.out.ChurnFailures
				})
			t := mergeBatchEval(scs)
			releaseBatchEval(scs)
			pipe.AddRow(nu, p.N(), p.L(), a.Edges, a.Depth, eps,
				ratio(t.succ, t.trials), ratio(t.maj, t.trials), ratio(t.churnFail, t.churnConn))
		}
	}
	res.Tables = append(res.Tables, pipe)
	res.Notes = append(res.Notes,
		"ACCOUNTING DISCREPANCY: the faithful construction has (1536ν−128)·4^(ν+γ) switches vs the paper's stated 1408ν·4^(ν+γ) (a factor-2 slip in the paper's grid term), and NEITHER is ≤ 49n(log₄n)²: with 4^γ ≤ 136ν the construction gives ≤ ~209000·n·ν², so Theorem 2's constant 49 cannot follow from this construction as printed; the Θ(n log²n) SHAPE (edges/(n·ν²) bounded) is what we verify",
		"depth 4ν of the materialized network is within the theorem's 5log₄n bound",
		"pipeline success → 1 as ε → 0 at every ν, and failures at fixed small ε do not grow with ν over the measured range — the (ε,δ) property")
	return res
}

// E8LowerBoundCrossover reproduces Theorem 1 as an empirical crossover:
// all Θ(n log n) baselines (Beneš, butterfly, multibutterfly) have
// survival probability → 0 as n grows at fixed ε, while the Θ(n log²n)
// Network 𝒩 holds near 1; alongside, the Theorem-1 size/depth bounds and
// zone analysis.
func E8LowerBoundCrossover(mode Mode) Result {
	res := Result{
		ID:    "E8",
		Title: "Lower bound and the Θ(n log n) vs Θ(n log²n) crossover (Theorem 1, Lemma 2)",
		Paper: "a (1/4,1/2)-n-superconcentrator needs ≥ n(log₂n)²/2688 switches and ≥ (1/6)log₂n depth; constant-terminal-degree networks cannot be fault-tolerant",
	}
	eps := 0.01
	trialsN := mode.trials(150, 1000)
	// One scratch pool serves every network of the sweep: worker arenas are
	// recycled row to row and converge to the largest graph's sizes.
	pool := core.NewEvaluatorPool()
	tab := stats.NewTable("network", "n", "size", "depth", "term degree",
		"P[survive] @ε=0.01", "Thm1 size bound", "size/bound")
	type row struct {
		name string
		g    *graph.Graph
	}
	var rows []row
	ks := []int{2, 4, 6}
	if mode == Full {
		ks = append(ks, 8)
	}
	for _, k := range ks {
		bn, _ := benes.New(k)
		rows = append(rows, row{fmt.Sprintf("benes(n=%d)", bn.N), bn.G})
		bf, _ := butterfly.New(k)
		rows = append(rows, row{fmt.Sprintf("butterfly(n=%d)", bf.N), bf.G})
		mb, _ := multibutterfly.New(k, 2, 5)
		rows = append(rows, row{fmt.Sprintf("multibutterfly(n=%d,d=2)", mb.N), mb.G})
	}
	nus := []int{1, 2}
	if mode == Full {
		nus = append(nus, 3)
	}
	for _, nu := range nus {
		p := paperScaledParams(nu)
		nw, err := core.Build(p)
		if err == nil {
			rows = append(rows, row{fmt.Sprintf("network-N(n=%d,L=%d)", p.N(), p.L()), nw.G})
		}
	}
	for _, rw := range rows {
		n := len(rw.g.Inputs())
		depth, _ := rw.g.Depth()
		termDeg := rw.g.OutDegree(rw.g.Inputs()[0])
		surv, wscs := montecarlo.RunBoolWithScratches(montecarlo.Config{Trials: trialsN, Seed: 0xE80000},
			batchWitnessScratchFor(pool, rw.g, eps),
			func(_ *rng.RNG, s *batchWitnessScratch) bool {
				s.next()
				return s.survives()
			})
		releaseWitnessScratches(wscs)
		bound := core.LowerBoundSize(n)
		tab.AddRow(rw.name, n, rw.g.NumEdges(), depth, termDeg,
			surv.Estimate(), bound, float64(rw.g.NumEdges())/bound)
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"survival here is the necessary r=1 superconcentrator condition (no isolated pair, no shorted terminals) — an upper bound on containing any of the three network classes",
		"Beneš/butterfly/multibutterfly survival falls toward 0 as n grows (terminal degree constant); Network 𝒩's terminal degree L grows, holding survival near 1: the crossover Theorem 1 mandates",
		"see internal/lowerbound for the good-input and zone-size certificates behind the (1/2688)n(log₂n)² bound")
	return res
}
