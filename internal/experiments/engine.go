package experiments

import (
	"math"

	"ftcsn/internal/arena"
	"ftcsn/internal/core"
	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

// churnShards is the shard count of the experiment pipeline's churn
// engine. Sharded decisions are shard-count-independent, so the value
// trades only speed, never output.
const churnShards = 4

// witnessScratch is the worker-local state for experiments that only need
// fault injection plus the paper's failure witnesses: one reusable fault
// instance and one witness-check scratch per Monte-Carlo worker.
type witnessScratch struct {
	inst *fault.Instance
	sc   *fault.Scratch
}

// witnessScratchFor returns a constructor suitable for
// montecarlo.RunBoolWith over graph g.
func witnessScratchFor(g *graph.Graph) func() *witnessScratch {
	return func() *witnessScratch {
		return &witnessScratch{inst: fault.NewInstance(g), sc: fault.NewScratch(g)}
	}
}

// reinject redraws the worker's instance under the symmetric model.
func (s *witnessScratch) reinject(eps float64, r *rng.RNG) *fault.Instance {
	fault.InjectInto(s.inst, fault.Symmetric(eps), r)
	return s.inst
}

// batchWitnessScratch is witnessScratch on the batched injection engine:
// its StartBlock hook (montecarlo.BlockStarter) draws a whole scheduling
// block's failure positions in one sweep, and next advances the instance
// trial-to-trial by diffs — bit-identical states to reinject with the
// same per-trial streams, without the O(E) per-trial Reset.
type batchWitnessScratch struct {
	witnessScratch
	bi    *fault.BatchInjector
	model fault.Model

	// pooled backing (nil when unpooled): released by release() after the
	// run, recycling the O(V)/O(E) buffers for the sweep's next network.
	pool *core.EvaluatorPool
	a    *arena.Arena
}

func (s *batchWitnessScratch) StartBlock(seed, first uint64, n int) {
	s.bi.FillStream(s.model, seed, first, n)
}

// release returns the scratch's arena to the pool (no-op when unpooled or
// nil). The scratch must not be used afterwards.
func (s *batchWitnessScratch) release() {
	if s == nil || s.pool == nil {
		return
	}
	pool, a := s.pool, s.a
	s.pool, s.a = nil, nil
	s.sc, s.bi = nil, nil
	pool.Put(a)
}

// batchWitnessScratchFor returns a constructor suitable for
// montecarlo.RunBoolWith over graph g under the symmetric model eps,
// drawing buffers from pool when non-nil (release with release()).
func batchWitnessScratchFor(pool *core.EvaluatorPool, g *graph.Graph, eps float64) func() *batchWitnessScratch {
	return func() *batchWitnessScratch {
		var a *arena.Arena
		if pool != nil {
			a = pool.Get()
		}
		return &batchWitnessScratch{
			witnessScratch: witnessScratch{inst: fault.NewInstanceIn(g, a), sc: fault.NewScratchIn(g, a)},
			bi:             fault.NewBatchInjectorIn(g, a),
			model:          fault.Symmetric(eps),
			pool:           pool,
			a:              a,
		}
	}
}

// releaseWitnessScratches returns every pooled witness scratch's arena.
func releaseWitnessScratches(scs []*batchWitnessScratch) {
	for _, s := range scs {
		s.release()
	}
}

// next applies the next trial of the block to the instance.
func (s *batchWitnessScratch) next() *fault.Instance {
	s.bi.ApplyNext(s.inst)
	return s.inst
}

// shorted runs the Lemma-7 witness on the applied trial from its failure
// list — O(#closed + #terminals) instead of an O(E) edge-state scan.
func (s *batchWitnessScratch) shorted() bool {
	pos, st := s.bi.AppliedFailures()
	a, _ := s.inst.ShortedTerminalsFromList(pos, st, s.sc)
	return a >= 0
}

// survives is SurvivesBasicChecksWith with the shorting half running off
// the failure list; results are identical.
func (s *batchWitnessScratch) survives() bool {
	if s.shorted() {
		return false
	}
	a, _ := s.inst.IsolatedPairWith(s.sc)
	return a < 0
}

// evalScratch is the worker-local state for experiments that run the full
// Theorem-2 pipeline: a core.Evaluator (owning instance, masks, checker,
// router, churn buffers) plus the per-worker accumulators the experiments
// fold into. Accumulators merge by summation / extremum, so reductions are
// order-insensitive regardless of how trials land on workers.
type evalScratch struct {
	ev  *core.Evaluator
	out core.TrialOutcome

	// accumulators
	succ, maj            int
	trials               int
	churnConn, churnFail int
	churnPathTotal       int
	minFrac              float64
}

func evalScratchFor(nw *core.Network) func() *evalScratch {
	return func() *evalScratch {
		return &evalScratch{ev: core.NewEvaluator(nw), minFrac: math.Inf(1)}
	}
}

// injectScratch is the minimal batched worker scratch for experiments
// whose trials need only fault injection plus the faulty-vertex mask
// (E3's grids, E4's expanders): blocks fill via the montecarlo
// BlockStarter hook and nextFaulty advances by diffs.
type injectScratch struct {
	bi     *fault.BatchInjector
	model  fault.Model
	inst   *fault.Instance
	faulty []bool
}

func newInjectScratch(g *graph.Graph, eps float64) *injectScratch {
	return &injectScratch{
		bi:     fault.NewBatchInjector(g),
		model:  fault.Symmetric(eps),
		inst:   fault.NewInstance(g),
		faulty: make([]bool, g.NumVertices()),
	}
}

func (s *injectScratch) StartBlock(seed, first uint64, n int) {
	s.bi.FillStream(s.model, seed, first, n)
}

// nextFaulty applies the next trial of the block and refreshes the
// faulty-vertex mask.
func (s *injectScratch) nextFaulty() []bool {
	s.bi.ApplyNext(s.inst)
	s.faulty = s.inst.FaultyVerticesInto(s.faulty)
	return s.faulty
}

// batchEvalScratch is evalScratch on the batched block engine: StartBlock
// fills the evaluator's injector for each scheduling block, and trial
// bodies consume it with EvaluateNextInto / EvaluateNextCertInto. seq
// selects the sequential rng.New(seed+i) convention (E7/E9's historical
// seeding) instead of the harness streams.
type batchEvalScratch struct {
	evalScratch
	model fault.Model
	seq   bool
}

func (s *batchEvalScratch) StartBlock(seed, first uint64, n int) {
	if s.seq {
		s.ev.StartBlockSeq(s.model, seed, first, n)
	} else {
		s.ev.StartBlock(s.model, seed, first, n)
	}
}

// batchEvalScratchFor returns a constructor for batched evaluator scratch;
// when pool is non-nil the evaluator's buffers come from a pooled arena
// (fold results with mergeBatchEval, then hand the arenas back with
// releaseBatchEval).
//
// Every scratch churns through a ShardedEngine: decisions and paths are
// contractually bit-identical to the default sequential router (locked by
// the churn differential harness and the E9 parity rows), and the guided
// probes make churn-heavy experiments markedly faster. Per-op ChurnWith
// remains on the sequential router — that seam belongs to the differential
// harness, not the experiment pipeline.
func batchEvalScratchFor(pool *core.EvaluatorPool, nw *core.Network, m fault.Model, seq bool) func() *batchEvalScratch {
	return func() *batchEvalScratch {
		ev := core.NewEvaluator(nw)
		if pool != nil {
			ev = pool.NewEvaluator(nw)
		}
		ev.SetChurnEngine(route.NewShardedEngine(nw.G, churnShards))
		return &batchEvalScratch{
			evalScratch: evalScratch{ev: ev, minFrac: math.Inf(1)},
			model:       m,
			seq:         seq,
		}
	}
}

// mergeBatchEval is mergeEval over batched scratches.
func mergeBatchEval(scs []*batchEvalScratch) evalScratch {
	flat := make([]*evalScratch, 0, len(scs))
	for _, s := range scs {
		if s != nil {
			flat = append(flat, &s.evalScratch)
		}
	}
	return mergeEval(flat)
}

// releaseBatchEval returns every pooled evaluator's arena (no-op entries
// for unpooled evaluators and never-started workers). Call only after
// mergeBatchEval has folded the results out.
func releaseBatchEval(scs []*batchEvalScratch) {
	for _, s := range scs {
		if s != nil {
			s.ev.Release()
		}
	}
}

// mergeEval folds per-worker accumulators into one; nil entries (workers
// that never started, e.g. when Trials is 0) are skipped.
func mergeEval(scs []*evalScratch) evalScratch {
	total := evalScratch{minFrac: math.Inf(1)}
	for _, s := range scs {
		if s == nil {
			continue
		}
		total.trials += s.trials
		total.succ += s.succ
		total.maj += s.maj
		total.churnConn += s.churnConn
		total.churnFail += s.churnFail
		total.churnPathTotal += s.churnPathTotal
		if s.minFrac < total.minFrac {
			total.minFrac = s.minFrac
		}
	}
	return total
}

// ratio returns num/den, or 0 for an empty denominator.
func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
