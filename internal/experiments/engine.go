package experiments

import (
	"math"

	"ftcsn/internal/core"
	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
	"ftcsn/internal/rng"
)

// witnessScratch is the worker-local state for experiments that only need
// fault injection plus the paper's failure witnesses: one reusable fault
// instance and one witness-check scratch per Monte-Carlo worker.
type witnessScratch struct {
	inst *fault.Instance
	sc   *fault.Scratch
}

// witnessScratchFor returns a constructor suitable for
// montecarlo.RunBoolWith over graph g.
func witnessScratchFor(g *graph.Graph) func() *witnessScratch {
	return func() *witnessScratch {
		return &witnessScratch{inst: fault.NewInstance(g), sc: fault.NewScratch(g)}
	}
}

// reinject redraws the worker's instance under the symmetric model.
func (s *witnessScratch) reinject(eps float64, r *rng.RNG) *fault.Instance {
	fault.InjectInto(s.inst, fault.Symmetric(eps), r)
	return s.inst
}

// evalScratch is the worker-local state for experiments that run the full
// Theorem-2 pipeline: a core.Evaluator (owning instance, masks, checker,
// router, churn buffers) plus the per-worker accumulators the experiments
// fold into. Accumulators merge by summation / extremum, so reductions are
// order-insensitive regardless of how trials land on workers.
type evalScratch struct {
	ev  *core.Evaluator
	out core.TrialOutcome

	// accumulators
	succ, maj            int
	trials               int
	churnConn, churnFail int
	churnPathTotal       int
	minFrac              float64
}

func evalScratchFor(nw *core.Network) func() *evalScratch {
	return func() *evalScratch {
		return &evalScratch{ev: core.NewEvaluator(nw), minFrac: math.Inf(1)}
	}
}

// mergeEval folds per-worker accumulators into one; nil entries (workers
// that never started, e.g. when Trials is 0) are skipped.
func mergeEval(scs []*evalScratch) evalScratch {
	total := evalScratch{minFrac: math.Inf(1)}
	for _, s := range scs {
		if s == nil {
			continue
		}
		total.trials += s.trials
		total.succ += s.succ
		total.maj += s.maj
		total.churnConn += s.churnConn
		total.churnFail += s.churnFail
		total.churnPathTotal += s.churnPathTotal
		if s.minFrac < total.minFrac {
			total.minFrac = s.minFrac
		}
	}
	return total
}

// ratio returns num/den, or 0 for an empty denominator.
func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
