package experiments

import (
	"fmt"
	"math"

	"ftcsn/internal/expander"
	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
	"ftcsn/internal/hammock"
	"ftcsn/internal/montecarlo"
	"ftcsn/internal/rng"
	"ftcsn/internal/stats"
	"ftcsn/internal/trees"
)

// E1MooreShannon reproduces Proposition 1: explicit (ε,ε′)-1-networks of
// size Θ((log 1/ε′)²) and depth Θ(log 1/ε′), with both failure modes
// below ε′. For each target we report the hammock dimension chosen from
// the analytic bounds, the exact (transfer-matrix) failure probabilities
// where feasible, and a Monte-Carlo cross-check of one configuration.
func E1MooreShannon(mode Mode) Result {
	res := Result{
		ID:    "E1",
		Title: "Moore–Shannon (ε,ε′)-1-network amplifiers (Proposition 1, Fig. 4 hammocks)",
		Paper: "size C·(log₂ 1/ε′)² and depth d·log₂(1/ε′) suffice for both failure probabilities < ε′",
	}
	tab := stats.NewTable("ε", "ε′", "dim l=w", "size", "depth",
		"size/(lg 1/ε′)²", "depth/lg(1/ε′)", "bound P[open]", "bound P[short]", "DP P[open]", "DP P[short]")
	maxExp := 10
	if mode == Quick {
		maxExp = 6
	}
	for _, eps := range []float64{0.05, 0.01} {
		for e := 2; e <= maxExp; e += 2 {
			target := math.Pow(2, -float64(e))
			a, err := hammock.NewAmplifier(eps, target)
			if err != nil {
				res.Notes = append(res.Notes, fmt.Sprintf("ε=%v ε′=%v: %v", eps, target, err))
				continue
			}
			lg := float64(e)
			dpOpen, dpShort := math.NaN(), math.NaN()
			if a.Net.Grid.L <= 12 {
				dpOpen, dpShort, _ = a.ExactFailureProbs()
			}
			tab.AddRow(eps, target, a.Net.Grid.L, a.Size(), a.Depth(),
				float64(a.Size())/(lg*lg), float64(a.Depth())/lg,
				a.POpenBound, a.PShortBound, dpOpen, dpShort)
		}
	}
	res.Tables = append(res.Tables, tab)

	// Monte-Carlo cross-check of one mid-size amplifier under the true
	// contraction semantics.
	eps := 0.05
	a, err := hammock.NewAmplifier(eps, 1.0/64)
	if err == nil {
		trialsN := mode.trials(2000, 20000)
		inst := fault.NewInstance(a.Net.G)
		fsc := fault.NewScratch(a.Net.G)
		var r rng.RNG
		var opens, shorts stats.Proportion
		for i := 0; i < trialsN; i++ {
			r.ReseedStream(0xE1, uint64(i))
			inst.Reinject(fault.Symmetric(eps), &r)
			in, _ := inst.IsolatedPairWith(fsc)
			opens.Add(in >= 0)
			x, _ := inst.ShortedTerminalsWith(fsc)
			shorts.Add(x >= 0)
		}
		mc := stats.NewTable("quantity", "measured (95% Wilson)", "target ε′")
		mc.AddRow("P[open]", opens.String(), 1.0/64)
		mc.AddRow("P[short]", shorts.String(), 1.0/64)
		res.Tables = append(res.Tables, mc)
	}
	res.Notes = append(res.Notes,
		"size/(lg 1/ε′)² and depth/lg(1/ε′) stay bounded as ε′ → 0: the Θ((log 1/ε′)²) size and Θ(log 1/ε′) depth shape of Proposition 1",
		"the series-parallel amplifier calculus (reliability.SeriesParallelAmplifier) reproduces the same shape with explicit composition; see its tests")
	return res
}

// E2TreePaths reproduces Lemma 1 / Corollary 1 (Figs. 1–3): random trees
// with internal degree ≥ 3 yield ≥ l/42 edge-disjoint leaf-leaf paths of
// length ≤ 3; the measured ratio is compared with the improved l/4 remark,
// and the bad-leaf count with the 6l/7 bound from the payment argument.
func E2TreePaths(mode Mode) Result {
	res := Result{
		ID:    "E2",
		Title: "Edge-disjoint short leaf paths in trees (Lemma 1, Figs. 1–3)",
		Paper: "every tree with l leaves and internal degree ≥3 has ≥ l/42 edge-disjoint leaf-leaf paths of length ≤3 (remark: l/4 with finer analysis)",
	}
	tab := stats.NewTable("target l", "trees", "mean leaves", "mean paths",
		"min paths/l", "mean paths/l", "l/42 ok", "l/4 ok", "max bad/l", "6/7 bound ok")
	sizes := []int{16, 64, 256, 1024}
	if mode == Full {
		sizes = append(sizes, 4096)
	}
	perSize := mode.trials(10, 40)
	for _, l := range sizes {
		var leavesS, pathsS stats.Sample
		minRatio := math.Inf(1)
		var ratioS stats.Sample
		okLemma, okRemark, okBad := true, true, true
		maxBadRatio := 0.0
		for i := 0; i < perSize; i++ {
			tr := trees.RandomLeafy(l, rng.Stream(0xE2, uint64(l*1000+i)))
			leaves := len(tr.Leaves())
			paths := trees.ExtractShortPaths(tr)
			if err := trees.VerifyPaths(tr, paths); err != nil {
				res.Notes = append(res.Notes, fmt.Sprintf("INVALID extraction at l=%d: %v", l, err))
				continue
			}
			ratio := float64(len(paths)) / float64(leaves)
			leavesS.Add(float64(leaves))
			pathsS.Add(float64(len(paths)))
			ratioS.Add(ratio)
			if ratio < minRatio {
				minRatio = ratio
			}
			if len(paths) < trees.Lemma1Bound(leaves) {
				okLemma = false
			}
			if len(paths) < trees.RemarkBound(leaves) {
				okRemark = false
			}
			bad := float64(len(trees.BadLeaves(tr))) / float64(leaves)
			if bad > maxBadRatio {
				maxBadRatio = bad
			}
			if bad > 6.0/7.0 {
				okBad = false
			}
		}
		tab.AddRow(l, perSize, leavesS.Mean(), pathsS.Mean(), minRatio, ratioS.Mean(),
			fmt.Sprintf("%v", okLemma), fmt.Sprintf("%v", okRemark), maxBadRatio, fmt.Sprintf("%v", okBad))
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"measured ratios sit far above 1/42 and generally above the remark's 1/4, consistent with Lin [L]",
		"bad-leaf fractions stay below the payment argument's 6/7")
	return res
}

// gridScratch is E3's worker-local state: the shared batched injection
// scratch plus the alive predicate LastStageAccess consumes (a closure
// over the scratch, created once per worker, not per trial).
type gridScratch struct {
	*injectScratch
	alive func(v int32) bool
}

// E3GridAccess reproduces Lemma 3 / Fig. 4: in an (l,w)-directed grid, an
// idle input keeps access to a strict majority of the last stage except
// with probability exponentially small in the row count l.
func E3GridAccess(mode Mode) Result {
	res := Result{
		ID:    "E3",
		Title: "Directed-grid access probability (Lemma 3, Fig. 4)",
		Paper: "P[input reaches > half of the grid's last stage] ≥ 1 − c₁·ν·(144ε)^l — failure decays exponentially in the row count l",
	}
	tab := stats.NewTable("l rows", "w stages", "ε", "P[majority access]", "P[fail]", "mean access frac")
	trialsN := mode.trials(400, 4000)
	ls := []int{4, 8, 16, 32}
	if mode == Quick {
		ls = []int{4, 8, 16}
	}
	for _, l := range ls {
		for _, eps := range []float64{0.02, 0.05} {
			an := hammock.NewAccessNetwork(l, 8, true)
			need := l/2 + 1
			newScratch := func() *gridScratch {
				s := &gridScratch{injectScratch: newInjectScratch(an.G, eps)}
				s.alive = func(v int32) bool { return !s.faulty[v] }
				return s
			}
			access := func(s *gridScratch) int {
				s.nextFaulty()
				return an.LastStageAccess(s.alive)
			}
			p := montecarlo.RunBoolWith(montecarlo.Config{Trials: trialsN, Seed: uint64(0xE30000 + l*100)},
				newScratch,
				func(_ *rng.RNG, s *gridScratch) bool { return access(s) >= need })
			frac := montecarlo.RunSampleWith(montecarlo.Config{Trials: trialsN / 4, Seed: uint64(0xE31000 + l*100)},
				newScratch,
				func(_ *rng.RNG, s *gridScratch) float64 { return float64(access(s)) / float64(l) })
			tab.AddRow(l, 8, eps, p.Estimate(), 1-p.Estimate(), frac.Mean())
		}
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"failure probability drops steeply as l grows at fixed ε — the exponential-in-l shape of Lemma 3",
		"the paper's constants (144ε with ε=10⁻⁶) make the bound astronomically small; at our ε the measured decay carries the same shape")
	return res
}

// E4ExpanderFaultTails reproduces Lemmas 4–5: the number of faulty outlets
// of an expanding graph concentrates far below the 7% threshold used in
// the majority-access induction, with an exponentially small tail.
func E4ExpanderFaultTails(mode Mode) Result {
	res := Result{
		ID:    "E4",
		Title: "Faulty outlets of expanding graphs (Lemmas 4–5)",
		Paper: "P[> 0.07·t outlets faulty] ≤ e^(−0.06·t) per expanding graph (at the paper's ε=10⁻⁶, degree 10)",
	}
	tab := stats.NewTable("t", "d", "ε", "E[frac faulty]", "2dε (analytic)", "P[> 7% faulty]", "e^(−0.06t)")
	trialsN := mode.trials(500, 5000)
	for _, t := range []int{64, 256, 1024} {
		for _, eps := range []float64{0.001, 0.005} {
			d := 3
			// Build a standalone bipartite expander as a graph.
			bip := expander.RandomMatchings(t, d, rng.New(uint64(t)))
			gb := newBipartiteGraph(bip)
			threshold := int(0.07 * float64(t))
			newScratch := func() *injectScratch { return newInjectScratch(gb, eps) }
			count := func(s *injectScratch) int { return faultyOutlets(s.nextFaulty(), t) }
			meanS := montecarlo.RunSampleWith(montecarlo.Config{Trials: trialsN, Seed: uint64(0xE40000 + t)},
				newScratch,
				func(_ *rng.RNG, s *injectScratch) float64 { return float64(count(s)) / float64(t) })
			tail := montecarlo.RunBoolWith(montecarlo.Config{Trials: trialsN, Seed: uint64(0xE41000 + t)},
				newScratch,
				func(_ *rng.RNG, s *injectScratch) bool { return count(s) > threshold })
			tab.AddRow(t, d, eps, meanS.Mean(), 2*float64(d)*eps, tail.Estimate(), math.Exp(-0.06*float64(t)))
		}
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"an outlet is faulty when any of its d incident switches fails, so E[fraction] ≈ 1−(1−2ε)^d ≈ 2dε",
		"at these ε the 7% threshold is many standard deviations out: measured tails are zero, matching the e^(−0.06t) regime")
	return res
}

// newBipartiteGraph materializes a Bipartite as a 2t-vertex graph.Graph
// with inlets marked as inputs and outlets as outputs.
func newBipartiteGraph(b *expander.Bipartite) *graph.Graph {
	gb := graph.NewBuilder(2*b.T, b.NumEdges())
	for i := 0; i < b.T; i++ {
		gb.MarkInput(gb.AddVertex(0))
	}
	for o := 0; o < b.T; o++ {
		gb.MarkOutput(gb.AddVertex(1))
	}
	b.AddToBuilder(gb, 0, int32(b.T))
	return gb.Freeze()
}

// faultyOutlets counts outlets (vertices t..2t-1) marked in the faulty
// mask.
func faultyOutlets(faulty []bool, t int) int {
	c := 0
	for v := t; v < 2*t; v++ {
		if faulty[v] {
			c++
		}
	}
	return c
}
