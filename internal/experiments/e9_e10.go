package experiments

import (
	"time"

	"ftcsn/internal/core"
	"ftcsn/internal/expander"
	"ftcsn/internal/fault"
	"ftcsn/internal/montecarlo"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
	"ftcsn/internal/stats"
)

// E9Routing reproduces the §4 routing claim: on the repaired network,
// greedy path-finding suffices (zero blocked requests while the
// majority-access certificate holds), and measures the throughput of the
// sequential router against the concurrent CAS-claiming router.
func E9Routing(mode Mode) Result {
	res := Result{
		ID:    "E9",
		Title: "Greedy circuit routing on the repaired network (§4 observations)",
		Paper: "routing needs only a greedy standard path-finding algorithm; no difficult computations are hidden",
	}
	tab := stats.NewTable("ν", "n", "ε", "trials", "churn connects", "blocked", "mean path len")
	trialsN := mode.trials(20, 100)
	pool := core.NewEvaluatorPool()
	nus := []int{1, 2}
	if mode == Full {
		nus = append(nus, 3)
	}
	for _, nu := range nus {
		p := scaledParams(nu)
		nw, err := core.Build(p)
		if err != nil {
			continue
		}
		for _, eps := range []float64{0, 0.002} {
			// StartBlockSeq keeps the historical per-trial seed seedBase+i
			// while the block engine advances trials by diffs.
			seedBase := uint64(0xE90000 + nu*1000)
			scs := montecarlo.RunWith(montecarlo.Config{Trials: trialsN, Seed: seedBase},
				batchEvalScratchFor(pool, nw, fault.Symmetric(eps), true),
				func(_ *rng.RNG, s *batchEvalScratch, _ uint64) {
					s.ev.EvaluateNextInto(&s.out, 200)
					if !s.out.MajorityAccess {
						return // §4's guarantee is conditional on the certificate
					}
					s.churnConn += s.out.ChurnConnects
					s.churnFail += s.out.ChurnFailures
					s.churnPathTotal += s.out.ChurnPathTotal
				})
			t := mergeBatchEval(scs)
			releaseBatchEval(scs)
			mean := ratio(t.churnPathTotal, t.churnConn-t.churnFail)
			tab.AddRow(nu, p.N(), eps, trialsN, t.churnConn, t.churnFail, mean)
		}
	}
	res.Tables = append(res.Tables, tab)

	// Throughput shape: sequential router vs concurrent CAS router vs the
	// sharded speculate-then-commit engine, saturating the network with a
	// full permutation repeatedly. Quick mode — committed to EXPERIMENTS.md
	// and regenerated bit-identically by the CI determinism gate — reports
	// only the deterministic columns (established counts); wall-clock rates
	// belong to the benchmark baseline (BENCH.json, BenchmarkShardedChurn)
	// and appear here in Full mode only.
	p := scaledParams(2)
	nw, err := core.Build(p)
	if err == nil {
		full := mode == Full
		var thr *stats.Table
		if full {
			thr = stats.NewTable("engine", "workers", "requests", "established", "req/s")
		} else {
			thr = stats.NewTable("engine", "workers", "requests", "established")
		}
		addRow := func(engine string, workers, requests, established int, rate float64) {
			if full {
				thr.AddRow(engine, workers, requests, established, rate)
			} else {
				thr.AddRow(engine, workers, requests, established)
			}
		}
		n := p.N()
		reqs := make([]route.Request, n)
		perm := rng.New(0xE9).Perm(n)
		for i := 0; i < n; i++ {
			reqs[i] = route.Request{In: nw.Inputs()[i], Out: nw.Outputs()[perm[i]]}
		}
		rounds := mode.trials(30, 200)
		// Every engine runs the identical workload through the one Engine
		// seam: rounds of the saturating permutation via ConnectBatch, torn
		// down by Reset. ConcurrentRouter batch k derives its search RNGs
		// from seed k, reproducing the historical per-round seeding.
		runEngine := func(eng route.Engine) (done int, elapsed float64) {
			var resBuf []route.Result
			//ftlint:ignore determinism wall clock feeds only the req/s column, which prints in full mode only — never in the committed quick-mode tables
			start := time.Now()
			for rep := 0; rep < rounds; rep++ {
				resBuf = eng.ConnectBatch(reqs, resBuf)
				for i := range resBuf {
					if resBuf[i].Path != nil {
						done++
					}
				}
				eng.Reset()
			}
			//ftlint:ignore determinism wall clock feeds only the req/s column, which prints in full mode only — never in the committed quick-mode tables
			return done, time.Since(start).Seconds()
		}
		type engineRow struct {
			name    string
			workers int
			eng     route.Engine
			// parity: decisions are contractually bit-identical to the
			// sequential router's, so "established" must reproduce the
			// sequential count exactly.
			parity bool
		}
		rt := route.NewRouter(nw.G)
		rt.EnablePathReuse()
		engines := []engineRow{{"sequential", 1, rt, false}}
		// The CAS router's accepted count is scheduler-dependent once
		// workers > 1 (a request can exhaust its retries against transient
		// claims), so the committed quick-mode table keeps only the
		// deterministic workers=1 row; the multi-worker rows appear in the
		// full-mode artifact. The sharded engine needs no such carve-out:
		// its decisions are deterministic at every shard count.
		casWorkers := []int{1}
		if full {
			casWorkers = []int{1, 2, 4, 8}
		}
		for _, workers := range casWorkers {
			cr := route.NewConcurrentRouter(nw.G)
			cr.Workers = workers
			engines = append(engines, engineRow{"concurrent (CAS)", workers, cr, false})
		}
		for _, shards := range []int{1, 2, 4, 8} {
			engines = append(engines,
				engineRow{"sharded (speculate+commit)", shards, route.NewShardedEngine(nw.G, shards), true})
		}
		seqDone := 0
		for i, row := range engines {
			done, el := runEngine(row.eng)
			if i == 0 {
				seqDone = done
			}
			if row.parity && done != seqDone {
				// Decision parity is load-bearing: a mismatch means the
				// engine broke its contract, and the committed table would
				// hide it. Make it visible in the artifact instead.
				addRow(row.name+" BROKEN PARITY", row.workers, rounds*n, done, 0)
				continue
			}
			addRow(row.name, row.workers, rounds*n, done, float64(rounds*n)/el)
		}
		res.Tables = append(res.Tables, thr)
	}
	res.Notes = append(res.Notes,
		"whenever the Lemma-6 certificate holds, greedy churn never blocks (blocked = 0): strict nonblockingness is operational, not just structural",
		"the concurrent router's CAS claims preserve vertex-disjointness under contention (see route tests); speedup is workload-bound at these sizes",
		"the sharded engine establishes exactly the sequential router's circuit set at every shard count — speculation and the word-parallel prefilter are decision-neutral; throughput is tracked in BENCH.json (BenchmarkShardedChurn), not here")
	return res
}

// E10Ablations measures the design choices DESIGN.md calls out: expander
// degree DQ, grid scale-up γ vs row multiplier M, random vs explicit
// expanders, and the paper's discard-repair rule vs a naive edges-only
// rule (which is unsound under closed failures).
func E10Ablations(mode Mode) Result {
	res := Result{
		ID:    "E10",
		Title: "Design ablations (expander degree, scale-up, construction, repair rule)",
		Paper: "design choices implicit in §6's constants: degree 10, 64·4^γ rows, probabilistic expanders, discard-faulty-and-neighbors repair",
	}
	trialsN := mode.trials(60, 400)
	eps := 0.005
	// E10 builds a dozen networks; one pool recycles every worker's trial
	// scratch across them (the arenas converge to the largest build).
	pool := core.NewEvaluatorPool()

	// (a) Expander degree DQ.
	dq := stats.NewTable("DQ (degree 4·DQ)", "edges", "P[majority access] @ε=0.005")
	for _, d := range []int{1, 2, 3, 4} {
		p := core.Params{Nu: 2, Gamma: 0, M: 8, DQ: d, Seed: 1}
		nw, err := core.Build(p)
		if err != nil {
			continue
		}
		pr := montecarloMajority(pool, nw, eps, trialsN, uint64(0xEA0000+d))
		dq.AddRow(d, core.Accounting(p).Edges, pr)
	}
	res.Tables = append(res.Tables, dq)

	// (b) Terminal-degree scaling: L = M·4^γ via M at fixed ν.
	lm := stats.NewTable("M (rows L)", "edges", "P[survive basic] @ε=0.02", "P[majority access] @ε=0.02")
	for _, m := range []int{2, 4, 8, 16} {
		p := core.Params{Nu: 2, Gamma: 0, M: m, DQ: 3, Seed: 1}
		nw, err := core.Build(p)
		if err != nil {
			continue
		}
		surv := montecarloSurvive(pool, nw, 0.02, trialsN, uint64(0xEB0000+m))
		maj := montecarloMajority(pool, nw, 0.02, trialsN, uint64(0xEC0000+m))
		lm.AddRow(m, core.Accounting(p).Edges, surv, maj)
	}
	res.Tables = append(res.Tables, lm)

	// (c) Random matchings vs explicit Gabber–Galil, both as raw expanders
	// and as complete Network-𝒩 builds.
	exp := stats.NewTable("construction", "t", "degree", "adversarial half-set expansion", "spectral σ₂")
	r := rng.New(0xED)
	gg := expander.GabberGalil(8) // t = 64, degree 5
	rm := expander.RandomMatchings(64, 5, r)
	exp.AddRow("GabberGalil(8)", 64, 5, gg.AdversarialMinNeighbors(32), gg.SpectralGap(5, 60, r.Split(1)))
	exp.AddRow("RandomMatchings", 64, 5, rm.AdversarialMinNeighbors(32), rm.SpectralGap(5, 60, r.Split(2)))
	res.Tables = append(res.Tables, exp)

	expNet := stats.NewTable("Network 𝒩 expanders", "edges", "P[majority access] @ε=0.005")
	for _, explicit := range []bool{false, true} {
		pe := core.Params{Nu: 2, Gamma: 0, M: 4, DQ: core.GabberGalilDegree, Explicit: explicit, Seed: 1}
		nwE, err := core.Build(pe)
		if err != nil {
			continue
		}
		name := "random matchings (d=5/quarter)"
		seedTag := uint64(0)
		if explicit {
			name = "Gabber–Galil (explicit, d=5/quarter)"
			seedTag = 1
		}
		expNet.AddRow(name, core.Accounting(pe).Edges, montecarloMajority(pool, nwE, eps, trialsN, 0xED50+seedTag))
	}
	res.Tables = append(res.Tables, expNet)

	// (d) Repair rule: paper's discard-neighbors vs naive edges-only.
	rep := stats.NewTable("repair rule", "ε", "P[majority access]", "P[unsound merge]")
	p := scaledParams(2)
	nw, err := core.Build(p)
	if err == nil {
		// All per-trial buffers are hoisted and reused across the loop.
		inst := fault.NewInstance(nw.G)
		ac := core.NewAccessChecker(nw)
		var paperMasks, edgeOnly core.Masks
		var repOut core.MajorityReport
		var r rng.RNG
		for _, e := range []float64{0.005, 0.02} {
			var majPaper, majEdges, unsound stats.Proportion
			for i := 0; i < trialsN; i++ {
				r.ReseedStream(0xEE, uint64(i)+uint64(e*1e6))
				fault.InjectInto(inst, fault.Symmetric(e), &r)
				core.RepairMasksInto(inst, &paperMasks)
				nw.MajorityAccessInto(ac, paperMasks, &repOut)
				majPaper.Add(repOut.OK)
				edgesOnlyMasksInto(inst, &edgeOnly)
				nw.MajorityAccessInto(ac, edgeOnly, &repOut)
				majEdges.Add(repOut.OK)
				unsound.Add(hasUsableClosedMerge(inst))
			}
			rep.AddRow("discard neighbors (paper)", e, majPaper.Estimate(), 0.0)
			rep.AddRow("edges-only (naive)", e, majEdges.Estimate(), unsound.Estimate())
		}
		res.Tables = append(res.Tables, rep)
	}
	res.Notes = append(res.Notes,
		"DQ=1 (degree 4) per-quarter matchings are non-expanding (a matching maps c inlets to exactly c outlets) and visibly degrade majority access; DQ≥3 matches the paper's expansion ratio",
		"increasing terminal degree L is what buys survival — the Θ(log n) terminal degree is the essence of the Θ(n log²n) size",
		"Gabber–Galil and random matchings expand comparably at matched degree; the paper cites both ([GG],[BP]) as interchangeable",
		"the edges-only repair 'succeeds' slightly more often but leaves closed-contracted vertex pairs both usable (unsound merge): routed circuits could be electrically joined — exactly why the paper discards neighbors")
	return res
}

func montecarloMajority(pool *core.EvaluatorPool, nw *core.Network, eps float64, trials int, seed uint64) float64 {
	pr, scs := montecarlo.RunBoolWithScratches(montecarlo.Config{Trials: trials, Seed: seed},
		batchEvalScratchFor(pool, nw, fault.Symmetric(eps), false),
		func(_ *rng.RNG, s *batchEvalScratch) bool {
			s.ev.EvaluateNextCertInto(&s.out)
			return s.out.MajorityAccess
		})
	releaseBatchEval(scs)
	return pr.Estimate()
}

func montecarloSurvive(pool *core.EvaluatorPool, nw *core.Network, eps float64, trials int, seed uint64) float64 {
	pr, scs := montecarlo.RunBoolWithScratches(montecarlo.Config{Trials: trials, Seed: seed},
		batchWitnessScratchFor(pool, nw.G, eps),
		func(_ *rng.RNG, s *batchWitnessScratch) bool {
			s.next()
			return s.survives()
		})
	releaseWitnessScratches(scs)
	return pr.Estimate()
}

// edgesOnlyMasksInto is the naive repair: drop failed switches but keep
// their endpoint vertices usable. It reuses m's edge mask.
func edgesOnlyMasksInto(inst *fault.Instance, m *core.Masks) {
	nE := inst.G.NumEdges()
	if cap(m.EdgeOK) < nE {
		m.EdgeOK = make([]bool, nE)
	} else {
		m.EdgeOK = m.EdgeOK[:nE]
	}
	for e := range m.EdgeOK {
		m.EdgeOK[e] = inst.Edge[e] == fault.Normal
	}
	m.VertexOK = nil
}

// hasUsableClosedMerge reports whether some closed switch has both
// endpoints non-terminal and (under edges-only repair) usable — i.e. two
// electrically merged links that the naive rule would happily route
// through separately.
func hasUsableClosedMerge(inst *fault.Instance) bool {
	for e, s := range inst.Edge {
		if s != fault.Closed {
			continue
		}
		u := inst.G.EdgeFrom(int32(e))
		v := inst.G.EdgeTo(int32(e))
		if !inst.G.IsTerminal(u) && !inst.G.IsTerminal(v) {
			return true
		}
	}
	return false
}
