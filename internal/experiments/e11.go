package experiments

import (
	"ftcsn/internal/benes"
	"ftcsn/internal/core"
	"ftcsn/internal/graph"
	"ftcsn/internal/hammock"
	"ftcsn/internal/montecarlo"
	"ftcsn/internal/rng"
	"ftcsn/internal/stats"
)

// E11Substitution reproduces the §3 reduction: substituting every switch
// of a network Φ by an (ε,ε′)-1-network turns an (ε′,δ)-network into an
// (ε,δ)-network at constant-factor cost. Empirically: a Beneš network
// whose switches are replaced by small hammocks survives a harsh ε about
// as well as the plain Beneš survives a gentle ε′ — the reduction trades
// failure rate for a constant size/depth factor.
func E11Substitution(mode Mode) Result {
	res := Result{
		ID:    "E11",
		Title: "Edge substitution by Moore–Shannon amplifiers (§3 reduction)",
		Paper: "replacing each switch of an (ε′,δ)-network by an (ε,ε′)-1-network yields an (ε,δ)-network with size ×a and depth ×b, a and b constants depending only on ε",
	}
	trialsN := mode.trials(150, 800)

	k := 3 // n = 8 Beneš
	bn, err := benes.New(k)
	if err != nil {
		res.Notes = append(res.Notes, err.Error())
		return res
	}
	// A 4×4 hammock per switch: at per-switch ε = 0.05 the module's open
	// and short rates drop well below 0.01.
	const l, w = 4, 4
	sub := hammock.SubstituteEdges(bn.G, l, w, false)
	depthPlain, _ := bn.G.Depth()
	depthSub, _ := sub.Depth()

	// Plain and substituted networks alternate below; one pool serves both.
	pool := core.NewEvaluatorPool()
	measure := func(g *graph.Graph, eps float64, seed uint64) float64 {
		p, scs := montecarlo.RunBoolWithScratches(montecarlo.Config{Trials: trialsN, Seed: seed},
			batchWitnessScratchFor(pool, g, eps),
			func(_ *rng.RNG, s *batchWitnessScratch) bool {
				s.next()
				return s.survives()
			})
		releaseWitnessScratches(scs)
		return p.Estimate()
	}

	epsBig := 0.05   // harsh world the amplified network must live in
	epsSmall := 0.01 // gentle world the plain network needs
	tab := stats.NewTable("network", "switches", "depth", "ε applied", "P[survive]")
	tab.AddRow("benes(n=8) plain", bn.G.NumEdges(), depthPlain, epsSmall, measure(bn.G, epsSmall, 0xE111))
	tab.AddRow("benes(n=8) plain", bn.G.NumEdges(), depthPlain, epsBig, measure(bn.G, epsBig, 0xE112))
	tab.AddRow("benes(n=8) ⊗ hammock(4,4)", sub.NumEdges(), depthSub, epsBig, measure(sub, epsBig, 0xE113))
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"the substituted network at harsh ε survives comparably to (or better than) the plain network at gentle ε′, while the plain network at harsh ε collapses — the §3 reduction in action",
		"size multiplied by the constant hammock size and depth by its width + 1: asymptotics unchanged")
	return res
}
