package experiments

import (
	"math"

	"ftcsn/internal/benes"
	"ftcsn/internal/clos"
	"ftcsn/internal/core"
	"ftcsn/internal/rng"
	"ftcsn/internal/stats"
)

// E13DepthSizeFrontier charts the depth-vs-size landscape the paper's §2
// surveys — from the depth-1 crossbar through Clos and recursive Clos to
// Beneš at Θ(n log n) [S],[B] and the fault-tolerant Θ(n log²n) of
// Theorem 2 — and measures the wide-sense-vs-strict nonblocking gap
// ([FFP], §2's remark) via middle-switch strategies on thin Clos fabrics.
func E13DepthSizeFrontier(mode Mode) Result {
	res := Result{
		ID:    "E13",
		Title: "Depth-vs-size frontier and wide-sense routing strategies (§2 survey)",
		Paper: "nonblocking size falls from n² (crossbar) through O(n^{1+1/k}) (depth-k recursive Clos) to O(n log n) rearrangeable [B] — and fault tolerance raises it again to Θ(n log²n) (Theorems 1–2)",
	}
	frontier := stats.NewTable("network", "n", "depth", "size", "size/n", "nonblocking grade")
	n := 64

	// Crossbar = recursive Clos with one level over n₀=n... build directly.
	cb, err := clos.NewRecursive(n, 1)
	if err == nil {
		frontier.AddRow("crossbar", n, cb.Depth(), cb.Size(), float64(cb.Size())/float64(n), "strict")
	}
	// 3-stage strict Clos, n₀ = r = 8.
	c3, err := clos.NewStrict(8, 8)
	if err == nil {
		d, _ := c3.G.Depth()
		frontier.AddRow("clos 3-stage (m=2n₀−1)", c3.N, d, c3.Size(), float64(c3.Size())/float64(c3.N), "strict")
	}
	// Recursive Clos, branching 4, 3 levels (depth 5).
	rc, err := clos.NewRecursive(4, 3)
	if err == nil {
		frontier.AddRow("recursive clos (n₀=4)", rc.N, rc.Depth(), rc.Size(), float64(rc.Size())/float64(rc.N), "strict")
	}
	// Beneš.
	bn, err := benes.New(6)
	if err == nil {
		d, _ := bn.G.Depth()
		frontier.AddRow("benes", bn.N, d, bn.G.NumEdges(), float64(bn.G.NumEdges())/float64(bn.N), "rearrangeable")
	}
	// Network 𝒩 (scaled), the only fault-tolerant row.
	p := core.Params{Nu: 3, Gamma: 0, M: 8, DQ: 3, Seed: 1}
	if acct := core.Accounting(p); acct.Edges > 0 {
		frontier.AddRow("network-𝒩 (fault-tolerant)", p.N(), acct.Depth, acct.Edges,
			float64(acct.Edges)/float64(p.N()), "strict + (ε,δ)")
	}
	frontier.AddRow("Theorem-1 bound (any FT net)", n, stats.FormatFloat(math.Ceil(core.LowerBoundDepth(n))),
		stats.FormatFloat(core.LowerBoundSize(n)), stats.FormatFloat(core.LowerBoundSize(n)/float64(n)), "—")
	res.Tables = append(res.Tables, frontier)

	// Wide-sense strategies on a thin Clos (n₀ ≤ m < 2n₀−1): blocking
	// rates under identical random churn.
	ops := mode.trials(20000, 100000)
	strat := stats.NewTable("strategy", "m", "2n₀−1", "connect attempts", "blocked", "block rate")
	for _, s := range []clos.Strategy{clos.Packing, clos.FirstFit, clos.Scatter} {
		nw, err := clos.New(4, 4, 4) // m=4 = n₀: the rearrangeable threshold, far below strict
		if err != nil {
			continue
		}
		attempts, blocked := strategyChurn(nw, s, ops)
		strat.AddRow(s.String(), nw.M, 2*nw.N0-1, attempts, blocked, float64(blocked)/float64(attempts))
	}
	res.Tables = append(res.Tables, strat)
	res.Notes = append(res.Notes,
		"the frontier: size/n falls as depth grows — the crossbar's n, Clos's Θ(√n), recursive Clos's Θ(n^{1/k}·k-ish), Beneš's Θ(log n) — and the Theorem-2 fault-tolerant network pays the extra log factor Theorem 1 proves necessary",
		"below the strict threshold (m < 2n₀−1), packing blocks least and scatter most: routing STRATEGY matters, the wide-sense nonblocking phenomenon of [FFP] that the paper's §2 contrasts with its strictly nonblocking constructions")
	return res
}

// strategyChurn runs random churn with the given strategy and counts
// blocked connects (attempts exclude busy-terminal no-ops).
func strategyChurn(nw *clos.Network, s clos.Strategy, ops int) (attempts, blocked int) {
	rt := clos.NewStrategyRouter(nw, s)
	r := rng.New(0xE13)
	type cir struct{ in, out int }
	var live []cir
	inBusy := make([]bool, nw.N)
	outBusy := make([]bool, nw.N)
	for op := 0; op < ops; op++ {
		if len(live) == 0 || r.Bernoulli(0.55) {
			in := r.Intn(nw.N)
			out := r.Intn(nw.N)
			if inBusy[in] || outBusy[out] {
				continue
			}
			attempts++
			if _, err := rt.Connect(in, out); err != nil {
				blocked++
				continue
			}
			inBusy[in] = true
			outBusy[out] = true
			live = append(live, cir{in, out})
		} else {
			ci := r.Intn(len(live))
			c := live[ci]
			_ = rt.Disconnect(c.in, c.out)
			inBusy[c.in] = false
			outBusy[c.out] = false
			live[ci] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return attempts, blocked
}
