// Package experiments defines the reproduction experiments E1–E14 that
// regenerate every quantitative artifact of Pippenger & Lin: Proposition 1
// (Moore–Shannon amplifiers), Lemma 1/Figs 1–3 (tree path extraction),
// Lemma 3/Fig 4 (directed-grid access), Lemmas 4–5 (expander fault tails),
// Lemma 6 (majority access), Lemma 7 (terminal shorting), Theorem 2 (the
// upper-bound pipeline and size/depth accounting), Theorem 1 (the lower
// bound and the baseline crossover), the §4 greedy-routing claim, and the
// design ablations called out in DESIGN.md.
//
// Each experiment returns Markdown tables; cmd/ftbench renders them (the
// source of EXPERIMENTS.md) and bench_test.go wraps them as benchmarks.
package experiments

import (
	"fmt"
	"io"

	"ftcsn/internal/stats"
)

// Mode selects experiment scale.
type Mode int

// Experiment scales: Quick for CI-sized runs, Full for report-quality
// statistics.
const (
	Quick Mode = iota
	Full
)

// trials returns q in Quick mode, f in Full mode.
func (m Mode) trials(q, f int) int {
	if m == Full {
		return f
	}
	return q
}

// Result is the output of one experiment.
type Result struct {
	ID     string
	Title  string
	Paper  string // what the paper reports (the claim under test)
	Notes  []string
	Tables []*stats.Table
}

// Render writes the result as Markdown.
func (r Result) Render(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n\n", r.ID, r.Title)
	fmt.Fprintf(w, "**Paper claim:** %s\n\n", r.Paper)
	for _, t := range r.Tables {
		fmt.Fprintln(w, t.String())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "- %s\n", n)
	}
	fmt.Fprintln(w)
}

// Registry lists every experiment in report order.
func Registry() []struct {
	ID  string
	Run func(Mode) Result
} {
	return []struct {
		ID  string
		Run func(Mode) Result
	}{
		{"E1", E1MooreShannon},
		{"E2", E2TreePaths},
		{"E3", E3GridAccess},
		{"E4", E4ExpanderFaultTails},
		{"E5", E5MajorityAccess},
		{"E6", E6TerminalShorting},
		{"E7", E7Theorem2},
		{"E8", E8LowerBoundCrossover},
		{"E9", E9Routing},
		{"E10", E10Ablations},
		{"E11", E11Substitution},
		{"E12", E12Hierarchy},
		{"E13", E13DepthSizeFrontier},
		{"E14", E14FamilyZoo},
	}
}
