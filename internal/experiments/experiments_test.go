package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every registered experiment in Quick
// mode and sanity-checks the rendered output. This is the integration test
// of the whole reproduction pipeline.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res := e.Run(Quick)
			if res.ID != e.ID {
				t.Fatalf("result ID %q, want %q", res.ID, e.ID)
			}
			if res.Title == "" || res.Paper == "" {
				t.Fatal("missing title or paper claim")
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables produced")
			}
			var b strings.Builder
			res.Render(&b)
			out := b.String()
			if !strings.Contains(out, res.ID) || !strings.Contains(out, "|") {
				t.Fatalf("render malformed:\n%s", out)
			}
			for _, note := range res.Notes {
				if strings.Contains(note, "INVALID") {
					t.Fatalf("experiment reported invalid data: %s", note)
				}
			}
		})
	}
}

func TestRegistryOrder(t *testing.T) {
	reg := Registry()
	if len(reg) != 14 {
		t.Fatalf("registry has %d experiments", len(reg))
	}
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14"}
	for i, e := range reg {
		if e.ID != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
	}
}

func TestModeTrials(t *testing.T) {
	if Quick.trials(5, 50) != 5 || Full.trials(5, 50) != 50 {
		t.Fatal("mode trial selection wrong")
	}
}

// Targeted shape assertions on the headline experiments.

func TestE7AccountingShape(t *testing.T) {
	res := E7Theorem2(Quick)
	// First table must have 8 rows (ν = 1..8).
	out := res.Tables[0].String()
	rows := strings.Count(out, "\n") - 2 // header + separator
	if rows != 8 {
		t.Fatalf("accounting rows = %d", rows)
	}
}

func TestE8CrossoverDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := E8LowerBoundCrossover(Quick)
	out := res.Tables[0].String()
	// The table must contain both baseline and network-N rows.
	if !strings.Contains(out, "benes") || !strings.Contains(out, "network-N") {
		t.Fatalf("missing rows:\n%s", out)
	}
}
