package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split(0)
	c2 := root.Split(1)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children coincide on first draw")
	}
}

func TestSplitReproducible(t *testing.T) {
	mk := func() uint64 {
		r := New(99)
		return r.Split(5).Uint64()
	}
	if mk() != mk() {
		t.Fatal("Split is not deterministic")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(6)
	sum := 0.0
	const trials = 200000
	for i := 0; i < trials; i++ {
		sum += r.Float64()
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	f := func(n uint8) bool {
		m := int(n%64) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(9)
	f := func(a, b uint8) bool {
		n := int(a%200) + 1
		k := int(b) % (n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(10)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(12)
	const p, trials = 0.3, 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate = %v", p, got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(13)
	const p, trials = 0.05, 50000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / trials
	want := (1 - p) / p
	if math.Abs(mean-want) > want*0.05 {
		t.Fatalf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
	}
}

func TestGeometricOne(t *testing.T) {
	r := New(14)
	for i := 0; i < 100; i++ {
		if r.Geometric(1) != 0 {
			t.Fatal("Geometric(1) != 0")
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(15)
	const trials = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < trials; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / trials
	variance := sum2/trials - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(16)
	s := []int{1, 2, 2, 3, 5, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(s)
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", s)
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := New(77)
	for i := 0; i < 10; i++ {
		r.Uint64()
	}
	snap := r.State()
	want := make([]uint64, 8)
	for i := range want {
		want[i] = r.Uint64()
	}
	// Restoring the snapshot must replay the exact sequence, repeatedly.
	for round := 0; round < 3; round++ {
		r.SetState(snap)
		for i, w := range want {
			if got := r.Uint64(); got != w {
				t.Fatalf("round %d draw %d: %x != %x", round, i, got, w)
			}
		}
	}
}

func TestReseedSplitMatchesSplit(t *testing.T) {
	for _, seed := range []uint64{0, 1, 0xDEADBEEF} {
		p1, p2 := New(seed), New(seed)
		var child RNG
		for w := uint64(0); w < 5; w++ {
			want := p1.Split(w)
			child.ReseedSplit(p2, w)
			for i := 0; i < 8; i++ {
				if a, b := want.Uint64(), child.Uint64(); a != b {
					t.Fatalf("seed %d worker %d draw %d: %x != %x", seed, w, i, a, b)
				}
			}
		}
		// The parents must have advanced identically too.
		if p1.Uint64() != p2.Uint64() {
			t.Fatal("parents diverged")
		}
	}
}
