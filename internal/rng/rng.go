// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the repository.
//
// Reproducibility is a first-class requirement for the Monte-Carlo
// experiments: every trial derives its own stream from a root seed, so
// experiments are bit-for-bit repeatable regardless of how many worker
// goroutines participate or in which order trials complete.
//
// The generator is xoshiro256** (Blackman & Vigna) seeded through
// splitmix64, the standard remedy for correlated low-entropy seeds. Both
// algorithms are public domain. Only stdlib is used.
package rng

import "math"

// splitMix64 advances x by the splitmix64 step and returns the next output.
// It is used to expand a 64-bit seed into the 256-bit xoshiro state.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a xoshiro256** generator. The zero value is invalid; use New or
// NewFrom. RNG is not safe for concurrent use: give each goroutine its own
// stream via Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// New returns a generator seeded from the given 64-bit seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed re-initializes the generator state from seed.
func (r *RNG) Reseed(seed uint64) {
	x := seed
	r.s0 = splitMix64(&x)
	r.s1 = splitMix64(&x)
	r.s2 = splitMix64(&x)
	r.s3 = splitMix64(&x)
	// xoshiro requires a not-all-zero state; splitmix64 of any seed cannot
	// produce four zero outputs, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split derives an independent child stream. The child is seeded from the
// parent's next output mixed with the stream index, so distinct indices give
// statistically independent streams and the parent remains usable.
func (r *RNG) Split(index uint64) *RNG {
	c := &RNG{}
	c.ReseedSplit(r, index)
	return c
}

// ReseedSplit re-initializes r in place to the exact state parent.Split
// (index) would return, advancing parent identically — the allocation-free
// form for callers that keep worker RNG values alive across batches but
// must re-derive them per batch (route.ConcurrentRouter's cached worker
// scratches).
func (r *RNG) ReseedSplit(parent *RNG, index uint64) {
	x := parent.Uint64() ^ (index * 0xd1342543de82ef95)
	r.Reseed(splitMix64(&x))
}

// Stream returns the index-th derived stream of a root seed without any
// shared state: Stream(seed, i) is a pure function, so parallel Monte-Carlo
// trials get reproducible randomness regardless of scheduling order.
func Stream(seed, index uint64) *RNG {
	r := &RNG{}
	r.ReseedStream(seed, index)
	return r
}

// ReseedStream re-initializes r in place to the exact state Stream(seed,
// index) returns, without allocating. Monte-Carlo workers reuse one RNG
// value across all their trials this way.
func (r *RNG) ReseedStream(seed, index uint64) {
	x := seed ^ (index+1)*0x9e3779b97f4a7c15
	r.Reseed(splitMix64(&x))
}

// State is a snapshot of the full 256-bit generator state. It exists so
// batched pipelines can capture "the stream of trial i after its injection
// draws" once and resume it later (e.g. for churn randomness) without
// replaying the draws — see fault.BatchInjector.
type State [4]uint64

// State returns a snapshot of the generator state.
func (r *RNG) State() State { return State{r.s0, r.s1, r.s2, r.s3} }

// SetState restores a snapshot taken with State. The generator then produces
// exactly the sequence it would have produced from the snapshot point.
func (r *RNG) SetState(s State) { r.s0, r.s1, r.s2, r.s3 = s[0], s[1], s[2], s[3] }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hiPart := t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + hiPart + t>>32
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes s in place.
func (r *RNG) Shuffle(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Sample returns k distinct values drawn uniformly from [0, n) in arbitrary
// order. It panics if k > n or k < 0. For small k relative to n it uses
// Floyd's algorithm; otherwise it shuffles a full permutation prefix.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample k out of range")
	}
	if k == 0 {
		return nil
	}
	if k*4 >= n {
		p := r.Perm(n)
		return p[:k]
	}
	// Floyd's subset sampling.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Geometric returns the number of Bernoulli(p) failures before the first
// success, i.e. a Geometric(p) variate on {0,1,2,...}. Used by fault
// injection to skip runs of healthy switches in O(#failures) time.
// It panics unless 0 < p <= 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric p out of range")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Log(u) / math.Log(1-p))
}
