// Package maxflow implements Dinic's algorithm on unit-capacity networks
// and the vertex-disjoint path computations built on it.
//
// Superconcentrators, rearrangeable networks and nonblocking networks are
// all defined through the existence of vertex-disjoint path families; by
// Menger's theorem these are max-flow questions after the standard vertex
// split (v → v_in→v_out with capacity 1). Dinic on unit-capacity graphs
// runs in O(E√V), fast enough to verify every network in this repository
// exactly at experiment scale.
package maxflow

import "fmt"

// Graph is a flow network under construction. Vertices are added
// implicitly by AddEdge; capacities are integers.
type Graph struct {
	n    int
	head []int32 // head[v] = first arc index of v, -1 terminates
	next []int32 // next[a] = next arc of the same tail
	to   []int32
	cap  []int32
}

// NewGraph returns an empty flow network over n vertices.
func NewGraph(n int) *Graph {
	head := make([]int32, n)
	for i := range head {
		head[i] = -1
	}
	return &Graph{n: n, head: head}
}

// AddEdge adds a directed arc u→v with the given capacity and its residual
// reverse arc, returning the arc index.
func (g *Graph) AddEdge(u, v int32, capacity int32) int32 {
	if u < 0 || int(u) >= g.n || v < 0 || int(v) >= g.n {
		panic(fmt.Sprintf("maxflow: arc (%d,%d) out of range n=%d", u, v, g.n))
	}
	a := int32(len(g.to))
	g.to = append(g.to, v)
	g.cap = append(g.cap, capacity)
	g.next = append(g.next, g.head[u])
	g.head[u] = a
	// residual
	g.to = append(g.to, u)
	g.cap = append(g.cap, 0)
	g.next = append(g.next, g.head[v])
	g.head[v] = a + 1
	return a
}

// MaxFlow computes the maximum s→t flow (Dinic).
func (g *Graph) MaxFlow(s, t int32) int {
	if s == t {
		return 0
	}
	level := make([]int32, g.n)
	iter := make([]int32, g.n)
	queue := make([]int32, 0, g.n)
	total := 0
	for {
		// BFS level graph.
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for a := g.head[v]; a >= 0; a = g.next[a] {
				if g.cap[a] > 0 && level[g.to[a]] < 0 {
					level[g.to[a]] = level[v] + 1
					queue = append(queue, g.to[a])
				}
			}
		}
		if level[t] < 0 {
			return total
		}
		copy(iter, g.head)
		// DFS blocking flow.
		var dfs func(v int32, f int32) int32
		dfs = func(v int32, f int32) int32 {
			if v == t {
				return f
			}
			for ; iter[v] >= 0; iter[v] = g.next[iter[v]] {
				a := iter[v]
				w := g.to[a]
				if g.cap[a] <= 0 || level[w] != level[v]+1 {
					continue
				}
				d := dfs(w, min32(f, g.cap[a]))
				if d > 0 {
					g.cap[a] -= d
					g.cap[a^1] += d
					return d
				}
			}
			return 0
		}
		for {
			f := dfs(s, 1<<30)
			if f == 0 {
				break
			}
			total += int(f)
		}
	}
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// Digraph is the minimal read-only view of a directed graph that the
// vertex-disjoint helpers need; ftcsn's graph.Graph satisfies it.
type Digraph interface {
	NumVertices() int
	NumEdges() int
	EdgeFrom(e int32) int32
	EdgeTo(e int32) int32
}

// VertexDisjointPaths returns the maximum number of vertex-disjoint
// directed paths from the source set to the sink set in dg (sources and
// sinks count as vertices that may each carry one path). Standard vertex
// split: vertex v becomes v_in=2v, v_out=2v+1 with a unit arc between.
func VertexDisjointPaths(dg Digraph, sources, sinks []int32) int {
	n := dg.NumVertices()
	g := NewGraph(2*n + 2)
	s := int32(2 * n)
	t := int32(2*n + 1)
	for v := int32(0); v < int32(n); v++ {
		g.AddEdge(2*v, 2*v+1, 1)
	}
	for e := int32(0); e < int32(dg.NumEdges()); e++ {
		g.AddEdge(2*dg.EdgeFrom(e)+1, 2*dg.EdgeTo(e), 1)
	}
	for _, v := range sources {
		g.AddEdge(s, 2*v, 1)
	}
	for _, v := range sinks {
		g.AddEdge(2*v+1, t, 1)
	}
	return g.MaxFlow(s, t)
}

// VertexDisjointPathsAvoiding is VertexDisjointPaths restricted to vertices
// allowed by ok (sources/sinks must be allowed too) and edges allowed by
// edgeOK; nil masks allow everything.
func VertexDisjointPathsAvoiding(dg Digraph, sources, sinks []int32, ok func(int32) bool, edgeOK func(int32) bool) int {
	n := dg.NumVertices()
	g := NewGraph(2*n + 2)
	s := int32(2 * n)
	t := int32(2*n + 1)
	for v := int32(0); v < int32(n); v++ {
		if ok == nil || ok(v) {
			g.AddEdge(2*v, 2*v+1, 1)
		}
	}
	for e := int32(0); e < int32(dg.NumEdges()); e++ {
		if edgeOK != nil && !edgeOK(e) {
			continue
		}
		g.AddEdge(2*dg.EdgeFrom(e)+1, 2*dg.EdgeTo(e), 1)
	}
	for _, v := range sources {
		if ok == nil || ok(v) {
			g.AddEdge(s, 2*v, 1)
		}
	}
	for _, v := range sinks {
		if ok == nil || ok(v) {
			g.AddEdge(2*v+1, t, 1)
		}
	}
	return g.MaxFlow(s, t)
}
