package maxflow

// Exact pairing-respecting vertex-disjoint path search. Plain max-flow
// decides whether r disjoint paths exist between terminal SETS, but
// rearrangeability demands the stronger pairing version — input i must
// reach output π(i) — which is the classic NP-hard disjoint-paths problem.
// At the sizes of the §2 hierarchy experiment (n ≤ 16, graphs of a few
// hundred switches) a backtracking search with max-flow pruning decides it
// exactly in microseconds.

// PairingResult reports the outcome of PairsRoutable.
type PairingResult int

// Outcomes of the backtracking search.
const (
	PairingRoutable   PairingResult = iota // disjoint paths realized
	PairingImpossible                      // search space exhausted: no routing exists
	PairingUndecided                       // budget exhausted before a decision
)

// PairsRoutable decides whether all (sources[i] → sinks[i]) pairs can be
// realized simultaneously by vertex-disjoint directed paths. budget bounds
// the number of backtracking nodes explored (e.g. 1e6); when it runs out
// the result is PairingUndecided.
func PairsRoutable(dg Digraph, sources, sinks []int32, budget int) PairingResult {
	if len(sources) != len(sinks) {
		panic("maxflow: PairsRoutable length mismatch")
	}
	n := dg.NumVertices()
	// Adjacency once.
	adj := make([][]int32, n)
	for e := int32(0); e < int32(dg.NumEdges()); e++ {
		u := dg.EdgeFrom(e)
		adj[u] = append(adj[u], dg.EdgeTo(e))
	}
	used := make([]bool, n)
	isTerm := make([]bool, n)
	for _, t := range sources {
		isTerm[t] = true
	}
	for _, t := range sinks {
		isTerm[t] = true
	}
	s := &pairSearch{dg: dg, adj: adj, used: used, isTerm: isTerm, sources: sources, sinks: sinks, budget: budget}
	ok := s.solve(0)
	if s.budget <= 0 && !ok {
		return PairingUndecided
	}
	if ok {
		return PairingRoutable
	}
	return PairingImpossible
}

type pairSearch struct {
	dg      Digraph
	adj     [][]int32
	used    []bool
	isTerm  []bool
	sources []int32
	sinks   []int32
	budget  int
}

// solve routes pairs from index i on; used marks vertices of committed
// paths.
func (s *pairSearch) solve(i int) bool {
	if i == len(s.sources) {
		return true
	}
	if s.budget <= 0 {
		return false
	}
	s.budget--
	// Flow pruning: the remaining pairs' terminal sets must still admit
	// enough disjoint paths ignoring pairings (a relaxation).
	remaining := len(s.sources) - i
	flow := VertexDisjointPathsAvoiding(s.dg, s.sources[i:], s.sinks[i:],
		func(v int32) bool { return !s.used[v] }, nil)
	if flow < remaining {
		return false
	}
	src, dst := s.sources[i], s.sinks[i]
	// Enumerate simple paths src → dst over unused vertices, DFS.
	var path []int32
	var dfs func(v int32) bool
	dfs = func(v int32) bool {
		if s.budget <= 0 {
			return false
		}
		s.used[v] = true
		path = append(path, v)
		if v == dst {
			if s.solve(i + 1) {
				return true
			}
		} else {
			for _, w := range s.adj[v] {
				if s.used[w] {
					continue
				}
				// Paths may not pass through other pairs' terminals.
				if w != dst && s.isTerm[w] {
					continue
				}
				s.budget--
				if dfs(w) {
					return true
				}
			}
		}
		s.used[v] = false
		path = path[:len(path)-1]
		return false
	}
	return dfs(src)
}

// PermutationRoutable decides whether the permutation perm (inputs[i] →
// outputs[perm[i]]) routes as vertex-disjoint paths.
func PermutationRoutable(dg Digraph, inputs, outputs []int32, perm []int, budget int) PairingResult {
	sinks := make([]int32, len(perm))
	for i, p := range perm {
		sinks[i] = outputs[p]
	}
	return PairsRoutable(dg, inputs, sinks, budget)
}
