package maxflow

import (
	"testing"

	"ftcsn/internal/graph"
	"ftcsn/internal/rng"
)

func TestMaxFlowDiamond(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	if f := g.MaxFlow(0, 3); f != 2 {
		t.Fatalf("flow = %d, want 2", f)
	}
}

func TestMaxFlowBottleneck(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 5)
	if f := g.MaxFlow(0, 3); f != 2 {
		t.Fatalf("flow = %d, want 2", f)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(2, 3, 3)
	if f := g.MaxFlow(0, 3); f != 0 {
		t.Fatalf("flow = %d, want 0", f)
	}
}

func TestMaxFlowSelf(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 1)
	if f := g.MaxFlow(0, 0); f != 0 {
		t.Fatalf("flow s==t = %d", f)
	}
}

func TestMaxFlowParallelEdges(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 1)
	if f := g.MaxFlow(0, 1); f != 3 {
		t.Fatalf("flow = %d, want 3", f)
	}
}

// completeBipartite builds a crossbar a×b as a graph.Graph.
func completeBipartite(a, b int) *graph.Graph {
	bld := graph.NewBuilder(a+b, a*b)
	for i := 0; i < a; i++ {
		v := bld.AddVertex(0)
		bld.MarkInput(v)
	}
	for j := 0; j < b; j++ {
		v := bld.AddVertex(1)
		bld.MarkOutput(v)
	}
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			bld.AddEdge(int32(i), int32(a+j))
		}
	}
	return bld.Freeze()
}

func TestVertexDisjointCrossbar(t *testing.T) {
	g := completeBipartite(4, 4)
	got := VertexDisjointPaths(g, g.Inputs(), g.Outputs())
	if got != 4 {
		t.Fatalf("disjoint paths = %d, want 4", got)
	}
	// Any r-subset to r-subset also saturates.
	got = VertexDisjointPaths(g, g.Inputs()[:2], g.Outputs()[2:])
	if got != 2 {
		t.Fatalf("r=2 disjoint paths = %d", got)
	}
}

func TestVertexDisjointSharedMiddle(t *testing.T) {
	// Two inputs forced through ONE middle vertex: only 1 disjoint path.
	b := graph.NewBuilder(5, 4)
	i0 := b.AddVertex(0)
	i1 := b.AddVertex(0)
	m := b.AddVertex(1)
	o0 := b.AddVertex(2)
	o1 := b.AddVertex(2)
	b.AddEdge(i0, m)
	b.AddEdge(i1, m)
	b.AddEdge(m, o0)
	b.AddEdge(m, o1)
	b.MarkInput(i0)
	b.MarkInput(i1)
	b.MarkOutput(o0)
	b.MarkOutput(o1)
	g := b.Freeze()
	if got := VertexDisjointPaths(g, g.Inputs(), g.Outputs()); got != 1 {
		t.Fatalf("disjoint paths = %d, want 1 (middle bottleneck)", got)
	}
}

func TestVertexDisjointAvoiding(t *testing.T) {
	g := completeBipartite(3, 3)
	// Block input 0: only 2 paths remain.
	got := VertexDisjointPathsAvoiding(g, g.Inputs(), g.Outputs(),
		func(v int32) bool { return v != g.Inputs()[0] }, nil)
	if got != 2 {
		t.Fatalf("paths avoiding an input = %d, want 2", got)
	}
	// Block all switches out of input 1 via edge mask: 1 path remains
	// (inputs 0 blocked above is NOT in effect here).
	got = VertexDisjointPathsAvoiding(g, g.Inputs(), g.Outputs(), nil,
		func(e int32) bool { return g.EdgeFrom(e) != g.Inputs()[1] })
	if got != 2 {
		t.Fatalf("paths with input-1 switches cut = %d, want 2", got)
	}
}

func TestPairsRoutableCrossbar(t *testing.T) {
	g := completeBipartite(3, 3)
	// Any permutation routes on a crossbar (direct switches).
	for _, perm := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}} {
		v := PermutationRoutable(g, g.Inputs(), g.Outputs(), perm, 1<<16)
		if v != PairingRoutable {
			t.Fatalf("perm %v verdict %v", perm, v)
		}
	}
}

func TestPairsRoutableSharedMiddleImpossible(t *testing.T) {
	// Two pairs forced through one middle vertex: flow=1, pairing version
	// must report impossible.
	b := graph.NewBuilder(5, 4)
	i0 := b.AddVertex(0)
	i1 := b.AddVertex(0)
	m := b.AddVertex(1)
	o0 := b.AddVertex(2)
	o1 := b.AddVertex(2)
	b.AddEdge(i0, m)
	b.AddEdge(i1, m)
	b.AddEdge(m, o0)
	b.AddEdge(m, o1)
	b.MarkInput(i0)
	b.MarkInput(i1)
	b.MarkOutput(o0)
	b.MarkOutput(o1)
	g := b.Freeze()
	v := PairsRoutable(g, []int32{i0, i1}, []int32{o0, o1}, 1<<16)
	if v != PairingImpossible {
		t.Fatalf("verdict %v, want impossible", v)
	}
}

func TestPairsRoutableRequiresPairing(t *testing.T) {
	// Set-flow says 2 paths exist; the PAIRING i0→o1, i1→o0 is the only
	// feasible one; i0→o0, i1→o1 is impossible. Construct: i0 reaches only
	// o1's side, i1 only o0's side.
	b := graph.NewBuilder(6, 4)
	i0 := b.AddVertex(0)
	i1 := b.AddVertex(0)
	a := b.AddVertex(1)
	c := b.AddVertex(1)
	o0 := b.AddVertex(2)
	o1 := b.AddVertex(2)
	b.AddEdge(i0, a)
	b.AddEdge(a, o1)
	b.AddEdge(i1, c)
	b.AddEdge(c, o0)
	b.MarkInput(i0)
	b.MarkInput(i1)
	b.MarkOutput(o0)
	b.MarkOutput(o1)
	g := b.Freeze()
	if got := VertexDisjointPaths(g, g.Inputs(), g.Outputs()); got != 2 {
		t.Fatalf("set flow = %d", got)
	}
	if v := PairsRoutable(g, []int32{i0, i1}, []int32{o1, o0}, 1<<16); v != PairingRoutable {
		t.Fatalf("feasible pairing verdict %v", v)
	}
	if v := PairsRoutable(g, []int32{i0, i1}, []int32{o0, o1}, 1<<16); v != PairingImpossible {
		t.Fatalf("infeasible pairing verdict %v", v)
	}
}

func TestPairsRoutableAgreesWithBenesLooping(t *testing.T) {
	// Cross-validation: every permutation the looping algorithm routes
	// must be judged routable by the exact solver.
	bn, err := benesNetwork()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(61)
	for trial := 0; trial < 10; trial++ {
		perm := r.Perm(8)
		v := PermutationRoutable(bn, bn.Inputs(), bn.Outputs(), perm, 1<<22)
		if v != PairingRoutable {
			t.Fatalf("perm %v verdict %v on Beneš", perm, v)
		}
	}
}

// benesNetwork builds an n=8 Beneš topology locally (avoiding an import
// cycle with package benes, which does not import maxflow but keeps the
// dependency graph shallow).
func benesNetwork() (*graph.Graph, error) {
	k, n := 3, 8
	cols := 2 * k
	b := graph.NewBuilder(cols*n, (cols-1)*2*n)
	for c := 0; c < cols; c++ {
		b.AddVertices(int32(c), n)
	}
	at := func(c, w int) int32 { return int32(c*n + w) }
	bit := func(t int) int {
		if t < k {
			return k - 1 - t
		}
		return t - k + 1
	}
	for t := 0; t < cols-1; t++ {
		for w := 0; w < n; w++ {
			b.AddEdge(at(t, w), at(t+1, w))
			b.AddEdge(at(t, w), at(t+1, w^(1<<uint(bit(t)))))
		}
	}
	for w := 0; w < n; w++ {
		b.MarkInput(at(0, w))
		b.MarkOutput(at(cols-1, w))
	}
	return b.Freeze(), nil
}

func TestFlowRandomizedAgainstEdgeCount(t *testing.T) {
	// Sanity: on layered random DAGs the disjoint-path count never exceeds
	// min(sources, sinks) and is monotone under edge addition.
	r := rng.New(41)
	for trial := 0; trial < 20; trial++ {
		a := 2 + r.Intn(4)
		bCount := 2 + r.Intn(4)
		b := graph.NewBuilder(a+bCount, a*bCount)
		for i := 0; i < a; i++ {
			b.MarkInput(b.AddVertex(0))
		}
		for j := 0; j < bCount; j++ {
			b.MarkOutput(b.AddVertex(1))
		}
		prev := -1
		edges := 0
		for e := 0; e < a*bCount; e++ {
			b.AddEdge(int32(r.Intn(a)), int32(a+r.Intn(bCount)))
			edges++
			if edges%3 == 0 {
				g := b.Freeze()
				flow := VertexDisjointPaths(g, g.Inputs(), g.Outputs())
				if flow > a || flow > bCount {
					t.Fatalf("flow %d exceeds terminal count", flow)
				}
				if flow < prev {
					t.Fatalf("flow decreased after adding an edge: %d -> %d", prev, flow)
				}
				prev = flow
				// Rebuild: Freeze consumed the builder.
				nb := graph.NewBuilder(a+bCount, a*bCount)
				for i := 0; i < a; i++ {
					nb.MarkInput(nb.AddVertex(0))
				}
				for j := 0; j < bCount; j++ {
					nb.MarkOutput(nb.AddVertex(1))
				}
				for e2 := int32(0); e2 < int32(g.NumEdges()); e2++ {
					nb.AddEdge(g.EdgeFrom(e2), g.EdgeTo(e2))
				}
				b = nb
			}
		}
	}
}
