package clos

import (
	"testing"

	"ftcsn/internal/maxflow"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

func TestStructure(t *testing.T) {
	nw, err := New(2, 3, 4) // N = 8
	if err != nil {
		t.Fatal(err)
	}
	if nw.N != 8 {
		t.Fatalf("N = %d", nw.N)
	}
	// Edges: N·m + m·r² + m·N = 24 + 48 + 24 = 96.
	if nw.Size() != 96 {
		t.Fatalf("size = %d, want 96", nw.Size())
	}
	if err := nw.G.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := nw.G.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 {
		t.Fatalf("depth = %d, want 3", d)
	}
}

func TestNewRejects(t *testing.T) {
	if _, err := New(0, 1, 1); err == nil {
		t.Fatal("accepted n0=0")
	}
}

func TestStrictThreshold(t *testing.T) {
	s, _ := NewStrict(3, 2)
	if s.M != 5 || !s.IsStrictSenseNonblocking() {
		t.Fatalf("NewStrict m = %d", s.M)
	}
	r, _ := NewRearrangeable(3, 2)
	if r.M != 3 || r.IsStrictSenseNonblocking() {
		t.Fatalf("NewRearrangeable m = %d", r.M)
	}
}

func TestStrictNeverBlocksUnderChurn(t *testing.T) {
	nw, err := NewStrict(3, 3) // N=9, m=5
	if err != nil {
		t.Fatal(err)
	}
	rt := route.NewRouter(nw.G)
	r := rng.New(11)
	ins := nw.G.Inputs()
	outs := nw.G.Outputs()
	type cir struct{ in, out int32 }
	var live []cir
	idleIn := append([]int32(nil), ins...)
	idleOut := append([]int32(nil), outs...)
	for op := 0; op < 3000; op++ {
		if len(live) == 0 || (len(idleIn) > 0 && r.Bernoulli(0.5)) {
			if len(idleIn) == 0 {
				continue
			}
			i := r.Intn(len(idleIn))
			o := r.Intn(len(idleOut))
			if _, err := rt.Connect(idleIn[i], idleOut[o]); err != nil {
				t.Fatalf("op %d: strict Clos blocked: %v", op, err)
			}
			live = append(live, cir{idleIn[i], idleOut[o]})
			idleIn[i] = idleIn[len(idleIn)-1]
			idleIn = idleIn[:len(idleIn)-1]
			idleOut[o] = idleOut[len(idleOut)-1]
			idleOut = idleOut[:len(idleOut)-1]
		} else {
			ci := r.Intn(len(live))
			c := live[ci]
			if err := rt.Disconnect(c.in, c.out); err != nil {
				t.Fatal(err)
			}
			idleIn = append(idleIn, c.in)
			idleOut = append(idleOut, c.out)
			live[ci] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if err := rt.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRearrangeableRoutesFullPermutations(t *testing.T) {
	// m = n₀ suffices for any *static* permutation (Slepian–Duguid):
	// verified by max-flow saturation, which is routing-order independent.
	nw, err := NewRearrangeable(3, 3) // N=9
	if err != nil {
		t.Fatal(err)
	}
	flow := maxflow.VertexDisjointPaths(nw.G, nw.G.Inputs(), nw.G.Outputs())
	if flow != nw.N {
		t.Fatalf("full saturation flow = %d, want %d", flow, nw.N)
	}
	// Random permutations, pair by pair via flow on restricted terminal
	// sets: the network must support each as disjoint paths.
	r := rng.New(3)
	for trial := 0; trial < 5; trial++ {
		perm := r.Perm(nw.N)
		// Saturating all inputs to all outputs with a permutation is the
		// same flow question as above (the crossbar stages are symmetric),
		// so instead check every prefix subset of the permutation pairs.
		k := 1 + r.Intn(nw.N)
		ins := make([]int32, k)
		outs := make([]int32, k)
		for i := 0; i < k; i++ {
			ins[i] = nw.G.Inputs()[i]
			outs[i] = nw.G.Outputs()[perm[i]]
		}
		if got := maxflow.VertexDisjointPaths(nw.G, ins, outs); got != k {
			t.Fatalf("perm prefix k=%d: flow %d", k, got)
		}
	}
}

func TestBlockingWitnessExistsOnlyBelowThreshold(t *testing.T) {
	below, _ := New(3, 4, 3) // m=4 < 2·3−1
	if _, ok := below.BlockingWitness(); !ok {
		t.Fatal("no witness below threshold")
	}
	at, _ := New(3, 5, 3)
	if _, ok := at.BlockingWitness(); ok {
		t.Fatal("witness at threshold")
	}
}

func TestBlockingWitnessRequestsAreWellFormed(t *testing.T) {
	nw, _ := New(3, 3, 3)
	reqs, ok := nw.BlockingWitness()
	if !ok {
		t.Fatal("no witness")
	}
	if len(reqs) != 2*(nw.N0-1)+1 {
		t.Fatalf("witness has %d requests", len(reqs))
	}
	for _, rq := range reqs {
		if rq[0] < 0 || rq[0] >= nw.N || rq[1] < 0 || rq[1] >= nw.N {
			t.Fatalf("request %v out of range", rq)
		}
	}
}

func TestClosSizeComparison(t *testing.T) {
	// Strict Clos with r = n₀ = √N has Θ(N^1.5) switches — asymptotically
	// larger than Beneš/𝒩; this is why the recursive construction exists.
	small, _ := NewStrict(4, 4) // N=16
	large, _ := NewStrict(8, 8) // N=64
	ratio := float64(large.Size()) / float64(small.Size())
	nRatio := float64(large.N) / float64(small.N) // 4
	if ratio < nRatio {                           // must grow superlinearly
		t.Fatalf("Clos grew sublinearly: size ratio %v vs N ratio %v", ratio, nRatio)
	}
}
