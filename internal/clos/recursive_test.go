package clos

import (
	"testing"

	"ftcsn/internal/maxflow"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

func TestRecursiveBaseIsCrossbar(t *testing.T) {
	nw, err := NewRecursive(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nw.N != 4 || nw.Size() != 16 || nw.Depth() != 1 {
		t.Fatalf("base case: N=%d size=%d depth=%d", nw.N, nw.Size(), nw.Depth())
	}
	if err := nw.G.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecursiveTwoLevels(t *testing.T) {
	nw, err := NewRecursive(3, 2) // n=9, m=5 middles of recursive 3-terminal crossbars
	if err != nil {
		t.Fatal(err)
	}
	if nw.N != 9 {
		t.Fatalf("N = %d", nw.N)
	}
	if err := nw.G.Validate(); err != nil {
		t.Fatal(err)
	}
	// Depth: stage 1 switch + middle crossbar (1) + stage 3 switch = 3.
	if nw.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", nw.Depth())
	}
	// Full saturation: strictly nonblocking ⇒ rearrangeable ⇒ flow = n.
	flow := maxflow.VertexDisjointPaths(nw.G, nw.G.Inputs(), nw.G.Outputs())
	if flow != nw.N {
		t.Fatalf("saturation flow = %d", flow)
	}
}

func TestRecursiveThreeLevelsNeverBlocks(t *testing.T) {
	nw, err := NewRecursive(2, 3) // n=8, depth 5
	if err != nil {
		t.Fatal(err)
	}
	if nw.Depth() != 5 {
		t.Fatalf("depth = %d, want 5", nw.Depth())
	}
	// Strictly nonblocking: greedy churn must never block.
	rt := route.NewRouter(nw.G)
	r := rng.New(7)
	type cir struct{ in, out int32 }
	var live []cir
	idleIn := append([]int32(nil), nw.G.Inputs()...)
	idleOut := append([]int32(nil), nw.G.Outputs()...)
	for op := 0; op < 4000; op++ {
		if len(live) == 0 || (len(idleIn) > 0 && r.Bernoulli(0.55)) {
			if len(idleIn) == 0 {
				continue
			}
			i := r.Intn(len(idleIn))
			o := r.Intn(len(idleOut))
			if _, err := rt.Connect(idleIn[i], idleOut[o]); err != nil {
				t.Fatalf("op %d: recursive Clos blocked: %v", op, err)
			}
			live = append(live, cir{idleIn[i], idleOut[o]})
			idleIn[i] = idleIn[len(idleIn)-1]
			idleIn = idleIn[:len(idleIn)-1]
			idleOut[o] = idleOut[len(idleOut)-1]
			idleOut = idleOut[:len(idleOut)-1]
		} else {
			ci := r.Intn(len(live))
			c := live[ci]
			_ = rt.Disconnect(c.in, c.out)
			idleIn = append(idleIn, c.in)
			idleOut = append(idleOut, c.out)
			live[ci] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
}

func TestRecursiveSizeGrowth(t *testing.T) {
	// Size per terminal grows slowly with levels (the (2−1/n₀)^k factor),
	// far below the n² crossbar at equal n.
	nw, err := NewRecursive(4, 3) // n=64
	if err != nil {
		t.Fatal(err)
	}
	crossbarSize := 64 * 64
	if nw.Size() >= crossbarSize*2 {
		t.Fatalf("recursive size %d not competitive with crossbar %d", nw.Size(), crossbarSize)
	}
}

func TestRecursiveRejects(t *testing.T) {
	if _, err := NewRecursive(1, 2); err == nil {
		t.Fatal("accepted n0=1")
	}
	if _, err := NewRecursive(2, 30); err == nil {
		t.Fatal("accepted huge levels")
	}
}

// --- strategy router ---

func TestStrategyRouterBasics(t *testing.T) {
	nw, _ := NewStrict(3, 3)
	for _, s := range []Strategy{FirstFit, Packing, Scatter} {
		rt := NewStrategyRouter(nw, s)
		mid, err := rt.Connect(0, 0)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if mid < 0 || mid >= nw.M {
			t.Fatalf("%v: middle %d out of range", s, mid)
		}
		if err := rt.VerifyOccupancy(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if err := rt.Disconnect(0, 0); err != nil {
			t.Fatal(err)
		}
		if rt.Active() != 0 {
			t.Fatal("circuit not released")
		}
	}
}

func TestStrategyRouterBusyTerminal(t *testing.T) {
	nw, _ := NewStrict(2, 2)
	rt := NewStrategyRouter(nw, FirstFit)
	if _, err := rt.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Connect(0, 2); err == nil {
		t.Fatal("busy input accepted")
	}
}

func TestStrictNeverBlocksAnyStrategy(t *testing.T) {
	// At m = 2n₀−1 NO strategy can block (strict-sense nonblocking).
	for _, s := range []Strategy{FirstFit, Packing, Scatter} {
		nw, _ := NewStrict(3, 4) // N=12, m=5
		rt := NewStrategyRouter(nw, s)
		r := rng.New(uint64(11 + s))
		type cir struct{ in, out int }
		var live []cir
		for op := 0; op < 5000; op++ {
			if len(live) == 0 || r.Bernoulli(0.55) {
				in := r.Intn(nw.N)
				out := r.Intn(nw.N)
				if _, err := rt.Connect(in, out); err != nil {
					// Busy terminals are fine; blocking is not.
					if rt.Active() < nw.N && !terminalBusy(rt, in, out) {
						t.Fatalf("%v blocked at op %d: %v", s, op, err)
					}
					continue
				}
				live = append(live, cir{in, out})
			} else {
				ci := r.Intn(len(live))
				_ = rt.Disconnect(live[ci].in, live[ci].out)
				live[ci] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		if err := rt.VerifyOccupancy(); err != nil {
			t.Fatal(err)
		}
	}
}

func terminalBusy(rt *StrategyRouter, in, out int) bool {
	return rt.inBusy[in] || rt.outBusy[out]
}

func TestPackingBeatsScatterBelowThreshold(t *testing.T) {
	// With n₀ ≤ m < 2n₀−1, strategies differ: packing should block no
	// more often than scatter under identical random workloads.
	block := func(s Strategy) int {
		nw, _ := New(4, 5, 4) // m=5 < 7 = 2n₀−1, N=16
		rt := NewStrategyRouter(nw, s)
		r := rng.New(99)
		type cir struct{ in, out int }
		var live []cir
		blocked := 0
		for op := 0; op < 20000; op++ {
			if len(live) == 0 || r.Bernoulli(0.55) {
				in := r.Intn(nw.N)
				out := r.Intn(nw.N)
				if terminalBusy(rt, in, out) {
					continue
				}
				if _, err := rt.Connect(in, out); err != nil {
					blocked++
					continue
				}
				live = append(live, cir{in, out})
			} else {
				ci := r.Intn(len(live))
				_ = rt.Disconnect(live[ci].in, live[ci].out)
				live[ci] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		return blocked
	}
	p, sc := block(Packing), block(Scatter)
	if p > sc {
		t.Fatalf("packing blocked %d > scatter %d", p, sc)
	}
}

func TestStrategyString(t *testing.T) {
	if FirstFit.String() != "first-fit" || Packing.String() != "packing" || Scatter.String() != "scatter" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Fatal("unknown strategy name empty")
	}
}
