package clos

import (
	"fmt"
	"math"

	"ftcsn/internal/graph"
)

// Recursive builds a multi-stage strictly nonblocking network by recursing
// Clos's construction: a 3-stage C(n₀, 2n₀−1, r) whose middle crossbars
// are themselves recursive Clos networks, until they are small enough to
// realize directly. With branching factor n₀ fixed, depth grows by 2 per
// level and size by a ≈(2−1/n₀) factor per level — the classic
// depth-vs-size frontier between the crossbar (depth 1, n² switches) and
// Beneš-style logarithmic networks, and the skeleton that Pippenger's
// recursive nonblocking construction (the paper's §6 base) refines with
// expanders.
//
// Returns a network with n = n₀^levels terminals per side.
type RecursiveNetwork struct {
	N0     int // branching (input crossbar width)
	Levels int
	N      int
	G      *graph.Graph
}

// NewRecursive builds the recursive strictly nonblocking Clos network with
// the given branching and recursion depth. levels = 1 yields the n₀×n₀
// crossbar.
func NewRecursive(n0, levels int) (*RecursiveNetwork, error) {
	if n0 < 2 {
		return nil, fmt.Errorf("clos: recursive branching n0=%d too small", n0)
	}
	if levels < 1 || math.Pow(float64(n0), float64(levels)) > 1<<16 {
		return nil, fmt.Errorf("clos: levels=%d out of range for n0=%d", levels, n0)
	}
	n := 1
	for i := 0; i < levels; i++ {
		n *= n0
	}
	b := graph.NewBuilder(4*n*levels, 8*n*levels*n0)
	ins := make([]int32, n)
	outs := make([]int32, n)
	for i := 0; i < n; i++ {
		ins[i] = b.AddVertex(graph.NoStage)
	}
	for i := 0; i < n; i++ {
		outs[i] = b.AddVertex(graph.NoStage)
	}
	for i := 0; i < n; i++ {
		b.MarkInput(ins[i])
		b.MarkOutput(outs[i])
	}
	buildRecursive(b, ins, outs, n0)
	g := b.Freeze()
	return &RecursiveNetwork{N0: n0, Levels: levels, N: n, G: g}, nil
}

// buildRecursive wires a strictly nonblocking network between ins and outs
// (equal length) using the Clos recursion with m = 2n₀−1 middles.
func buildRecursive(b *graph.Builder, ins, outs []int32, n0 int) {
	n := len(ins)
	if n <= n0 {
		// Crossbar base case.
		for _, u := range ins {
			for _, v := range outs {
				b.AddEdge(u, v)
			}
		}
		return
	}
	r := n / n0
	m := 2*n0 - 1
	// First-stage links: crossbar g exposes m outgoing links; third-stage
	// links mirror them.
	l1 := make([][]int32, r) // l1[g][j]
	l3 := make([][]int32, r)
	for g := 0; g < r; g++ {
		l1[g] = make([]int32, m)
		l3[g] = make([]int32, m)
		for j := 0; j < m; j++ {
			l1[g][j] = b.AddVertex(graph.NoStage)
			l3[g][j] = b.AddVertex(graph.NoStage)
		}
		for i := 0; i < n0; i++ {
			for j := 0; j < m; j++ {
				b.AddEdge(ins[g*n0+i], l1[g][j])
				b.AddEdge(l3[g][j], outs[g*n0+i])
			}
		}
	}
	// Middle "crossbars" j are recursive networks on r terminals.
	for j := 0; j < m; j++ {
		midIns := make([]int32, r)
		midOuts := make([]int32, r)
		for g := 0; g < r; g++ {
			midIns[g] = l1[g][j]
			midOuts[g] = l3[g][j]
		}
		buildRecursive(b, midIns, midOuts, n0)
	}
}

// Depth returns the switch depth (2·levels − 1 crossbar stages... computed
// from the graph for truth).
func (nw *RecursiveNetwork) Depth() int {
	d, err := nw.G.Depth()
	if err != nil {
		return -1
	}
	return d
}

// Size returns the number of switches.
func (nw *RecursiveNetwork) Size() int { return nw.G.NumEdges() }
