// Package clos implements three-stage Clos networks [Cl], the original
// strictly nonblocking switching fabric that the paper's Network 𝒩
// generalizes recursively.
//
// A Clos network C(n₀, m, r) has N = r·n₀ terminals on each side: r input
// crossbars of size n₀×m, m middle crossbars of size r×r, and r output
// crossbars of size m×n₀. Clos's 1953 theorem: the network is strictly
// nonblocking iff m ≥ 2n₀−1, and rearrangeable iff m ≥ n₀ (Slepian–
// Duguid). In the paper's graph model a crossbar is a complete bipartite
// switch block between link vertices.
package clos

import (
	"fmt"

	"ftcsn/internal/graph"
)

// Network is a materialized three-stage Clos network.
type Network struct {
	N0, M, R int
	N        int // terminals per side: R·N0
	G        *graph.Graph
}

// New builds C(n₀, m, r).
func New(n0, m, r int) (*Network, error) {
	if n0 < 1 || m < 1 || r < 1 {
		return nil, fmt.Errorf("clos: invalid parameters n0=%d m=%d r=%d", n0, m, r)
	}
	n := n0 * r
	// Vertices: n inputs, r·m first-stage links, m·r second-stage links,
	// n outputs.
	b := graph.NewBuilder(2*n+2*r*m, n*m+m*r*r+m*n)
	inputs := b.AddVertices(0, n)
	l1 := b.AddVertices(1, r*m) // link (g,j): input crossbar g → middle j
	l2 := b.AddVertices(2, m*r) // link (j,h): middle j → output crossbar h
	outputs := b.AddVertices(3, n)
	for i := 0; i < n; i++ {
		b.MarkInput(inputs + int32(i))
		b.MarkOutput(outputs + int32(i))
	}
	// Input crossbar g joins its n₀ inputs to its m outgoing links.
	for i := 0; i < n; i++ {
		g := i / n0
		for j := 0; j < m; j++ {
			b.AddEdge(inputs+int32(i), l1+int32(g*m+j))
		}
	}
	// Middle crossbar j joins link (g,j) to link (j,h) for all g,h.
	for g := 0; g < r; g++ {
		for j := 0; j < m; j++ {
			for h := 0; h < r; h++ {
				b.AddEdge(l1+int32(g*m+j), l2+int32(j*r+h))
			}
		}
	}
	// Output crossbar h joins its m incoming links to its n₀ outputs.
	for o := 0; o < n; o++ {
		h := o / n0
		for j := 0; j < m; j++ {
			b.AddEdge(l2+int32(j*r+h), outputs+int32(o))
		}
	}
	return &Network{N0: n0, M: m, R: r, N: n, G: b.Freeze()}, nil
}

// NewStrict builds the minimal strictly nonblocking Clos network for
// N = r·n₀ terminals: m = 2n₀−1.
func NewStrict(n0, r int) (*Network, error) { return New(n0, 2*n0-1, r) }

// NewRearrangeable builds the minimal rearrangeable Clos network:
// m = n₀ (Slepian–Duguid).
func NewRearrangeable(n0, r int) (*Network, error) { return New(n0, n0, r) }

// IsStrictSenseNonblocking reports Clos's criterion m ≥ 2n₀−1.
func (nw *Network) IsStrictSenseNonblocking() bool { return nw.M >= 2*nw.N0-1 }

// BlockingWitness constructs, for m < 2n₀−1 (and r ≥ 2, n₀ ≥ 2), a
// classic adversarial configuration that blocks a greedy router: it
// returns a sequence of (input, output) requests such that after
// establishing all of them, the final request (last element) cannot be
// routed even though its terminals are idle — IF the router chose the
// middle switches the adversary dictates. Used by tests to show the m
// threshold is tight in the worst case over routing choices.
//
// The witness pairs requests so that input crossbar 0 has n₀−1 circuits
// pinned to distinct middles and output crossbar 0 has n₀−1 circuits
// pinned to n₀−2... — for the graph-model experiments we need only the
// greedy-router fact that at m = 2n₀−1 no sequence can block, which
// TestStrictNeverBlocks exercises by randomized adversarial churn.
func (nw *Network) BlockingWitness() ([][2]int, bool) {
	if nw.IsStrictSenseNonblocking() || nw.R < 2 || nw.N0 < 2 {
		return nil, false
	}
	// Saturate input crossbar 0's first n₀−1 inputs toward output
	// crossbars ≥ 1, and output crossbar 0's first n₀−1 outputs from input
	// crossbars ≥ 1; the final request (last input of crossbar 0 → last
	// output of crossbar 0) then competes for middles with all of them.
	var reqs [][2]int
	for i := 0; i < nw.N0-1; i++ {
		reqs = append(reqs, [2]int{i, nw.N0 + i%((nw.R-1)*nw.N0)})
	}
	for i := 0; i < nw.N0-1; i++ {
		reqs = append(reqs, [2]int{nw.N0 + i%((nw.R-1)*nw.N0), i})
	}
	reqs = append(reqs, [2]int{nw.N0 - 1, nw.N0 - 1})
	return reqs, true
}

// Size returns the switch count: N·m + m·r² + m·N.
func (nw *Network) Size() int { return nw.G.NumEdges() }
