package clos

import (
	"fmt"
)

// Wide-sense nonblocking routing strategies on three-stage Clos networks.
//
// The paper (§2) distinguishes its "strictly nonblocking" networks from
// the weaker "wide-sense nonblocking" notion of Feldman, Friedman &
// Pippenger [FFP]: a wide-sense nonblocking network never blocks provided
// the ROUTER follows a prescribed strategy, whereas a strictly nonblocking
// network tolerates arbitrary (even adversarial) routing choices. The
// classic illustration is middle-switch selection on Clos networks with
// n₀ ≤ m < 2n₀−1: an arbitrary-choice router can be driven into blocking
// configurations that the PACKING strategy — always reuse the busiest
// usable middle switch — avoids for longer. StrategyRouter measures that
// gap empirically (experiment E13).

// Strategy selects a middle switch for a new circuit.
type Strategy int

// Middle-switch selection strategies.
const (
	// FirstFit takes the lowest-numbered usable middle (the adversary's
	// friend).
	FirstFit Strategy = iota
	// Packing takes the most-loaded usable middle, keeping spare middles
	// empty for future conflicts (the wide-sense strategy).
	Packing
	// Scatter takes the least-loaded usable middle (worst known strategy).
	Scatter
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case FirstFit:
		return "first-fit"
	case Packing:
		return "packing"
	case Scatter:
		return "scatter"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// StrategyRouter routes circuits on a three-stage Clos network with an
// explicit middle-selection strategy, tracking crossbar port occupancy
// exactly (a circuit claims one input port, one middle switch path, one
// output port).
type StrategyRouter struct {
	nw       *Network
	strategy Strategy
	// busyIn[g][j]: link from input crossbar g to middle j is held.
	busyIn  [][]bool
	busyOut [][]bool
	load    []int // circuits currently on middle j
	inBusy  []bool
	outBusy []bool
	circuit map[[2]int]int // (in,out) → middle
}

// NewStrategyRouter returns a router over nw with the given strategy.
func NewStrategyRouter(nw *Network, s Strategy) *StrategyRouter {
	r := &StrategyRouter{
		nw:       nw,
		strategy: s,
		busyIn:   make([][]bool, nw.R),
		busyOut:  make([][]bool, nw.R),
		load:     make([]int, nw.M),
		inBusy:   make([]bool, nw.N),
		outBusy:  make([]bool, nw.N),
		circuit:  make(map[[2]int]int),
	}
	for g := 0; g < nw.R; g++ {
		r.busyIn[g] = make([]bool, nw.M)
		r.busyOut[g] = make([]bool, nw.M)
	}
	return r
}

// Connect routes input in to output out, returning the chosen middle
// switch or an error when blocked.
func (r *StrategyRouter) Connect(in, out int) (int, error) {
	if in < 0 || in >= r.nw.N || out < 0 || out >= r.nw.N {
		return 0, fmt.Errorf("clos: terminal out of range")
	}
	if r.inBusy[in] || r.outBusy[out] {
		return 0, fmt.Errorf("clos: terminal busy")
	}
	g := in / r.nw.N0
	h := out / r.nw.N0
	best := -1
	for j := 0; j < r.nw.M; j++ {
		if r.busyIn[g][j] || r.busyOut[h][j] {
			continue
		}
		if best < 0 {
			best = j
			if r.strategy == FirstFit {
				break
			}
			continue
		}
		switch r.strategy {
		case Packing:
			if r.load[j] > r.load[best] {
				best = j
			}
		case Scatter:
			if r.load[j] < r.load[best] {
				best = j
			}
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("clos: blocked: no middle free for crossbars (%d,%d)", g, h)
	}
	r.busyIn[g][best] = true
	r.busyOut[h][best] = true
	r.load[best]++
	r.inBusy[in] = true
	r.outBusy[out] = true
	r.circuit[[2]int{in, out}] = best
	return best, nil
}

// Disconnect releases the circuit (in, out).
func (r *StrategyRouter) Disconnect(in, out int) error {
	j, ok := r.circuit[[2]int{in, out}]
	if !ok {
		return fmt.Errorf("clos: no circuit (%d,%d)", in, out)
	}
	delete(r.circuit, [2]int{in, out})
	g := in / r.nw.N0
	h := out / r.nw.N0
	r.busyIn[g][j] = false
	r.busyOut[h][j] = false
	r.load[j]--
	r.inBusy[in] = false
	r.outBusy[out] = false
	return nil
}

// Active returns the number of live circuits.
func (r *StrategyRouter) Active() int { return len(r.circuit) }

// VerifyOccupancy checks the internal port bookkeeping against the
// circuit table.
func (r *StrategyRouter) VerifyOccupancy() error {
	load := make([]int, r.nw.M)
	for key, j := range r.circuit {
		load[j]++
		g := key[0] / r.nw.N0
		h := key[1] / r.nw.N0
		if !r.busyIn[g][j] || !r.busyOut[h][j] {
			return fmt.Errorf("clos: circuit %v on middle %d has free ports", key, j)
		}
	}
	for j := range load {
		if load[j] != r.load[j] {
			return fmt.Errorf("clos: middle %d load %d, counted %d", j, r.load[j], load[j])
		}
	}
	return nil
}
