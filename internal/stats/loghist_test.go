package stats

import (
	"testing"

	"ftcsn/internal/rng"
)

func TestLogBucketSmallValuesExact(t *testing.T) {
	for v := uint64(0); v < logHistSubCount; v++ {
		if b := logBucketOf(v); b != int(v) {
			t.Fatalf("logBucketOf(%d) = %d, want exact", v, b)
		}
		if low := logBucketLow(int(v)); low != v {
			t.Fatalf("logBucketLow(%d) = %d, want %d", v, low, v)
		}
	}
}

// Every value must land in a bucket whose lower bound is at most the
// value, with relative width bounded by 2^-logHistSubBits.
func TestLogBucketRelativeError(t *testing.T) {
	var r rng.RNG
	r.Reseed(0xB0C4E7)
	check := func(v uint64) {
		b := logBucketOf(v)
		low := logBucketLow(b)
		if low > v {
			t.Fatalf("bucket lower bound %d above value %d (bucket %d)", low, v, b)
		}
		// Next bucket's lower bound must exceed v, and the bucket width
		// must be <= low / 32 for values >= 32.
		var high uint64
		if b+1 < logHistBuckets {
			high = logBucketLow(b + 1)
			if high <= v {
				t.Fatalf("value %d at or past next bucket bound %d (bucket %d)", v, high, b)
			}
		}
		if v >= logHistSubCount && high != 0 {
			if width := high - low; width > low/logHistSubCount+1 {
				t.Fatalf("bucket %d width %d exceeds relative bound (low %d)", b, width, low)
			}
		}
	}
	for v := uint64(0); v < 4096; v++ {
		check(v)
	}
	for i := 0; i < 10000; i++ {
		// Random magnitudes across the full 64-bit range.
		shift := r.Intn(63)
		check(r.Uint64() >> uint(shift))
	}
	check(^uint64(0)) // max value must not overflow the array
}

func TestLogBucketMonotone(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1 << 20, 1<<20 + 1, 1 << 40, ^uint64(0)} {
		b := logBucketOf(v)
		if b < prev {
			t.Fatalf("bucket order violated at value %d: bucket %d < previous %d", v, b, prev)
		}
		prev = b
	}
}

func TestLogHistQuantiles(t *testing.T) {
	var h LogHist
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %d, want 0", got)
	}
	// 1..100 observed once each: quantiles are exact below 32, within
	// 1/32 relative error above.
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	if h.Max() != 100 {
		t.Fatalf("Max = %d, want 100", h.Max())
	}
	if got := h.Quantile(0.25); got != 25 {
		t.Fatalf("p25 = %d, want exact 25", got)
	}
	p99 := h.Quantile(0.99)
	if p99 < 96 || p99 > 99 {
		t.Fatalf("p99 = %d, want within a bucket of 99", p99)
	}
	if got, want := h.Mean(), 50.5; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
}

func TestLogHistMergeReset(t *testing.T) {
	var a, b LogHist
	for v := uint64(0); v < 50; v++ {
		a.Observe(v)
	}
	for v := uint64(50); v < 100; v++ {
		b.Observe(v)
	}
	a.Merge(&b)
	if a.Count() != 100 || a.Max() != 99 {
		t.Fatalf("after merge: count %d max %d", a.Count(), a.Max())
	}
	if got := a.Quantile(0.5); got < 48 || got > 50 {
		t.Fatalf("merged p50 = %d", got)
	}
	a.Reset()
	if a.Count() != 0 || a.Max() != 0 || a.Quantile(0.9) != 0 {
		t.Fatal("Reset did not empty the histogram")
	}
}

func TestLogHistObserveAllocFree(t *testing.T) {
	var h LogHist
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per call, want 0", allocs)
	}
}
