package stats

import (
	"math"
	"math/bits"
)

// Log-linear histogram bucketing (HDR-histogram style): values below
// 2^logHistSubBits are recorded exactly, and every power-of-two range
// above is split into 2^logHistSubBits equal sub-buckets, so the relative
// quantization error is bounded by 2^-logHistSubBits (~3.1%) at every
// magnitude. The bucket count is a compile-time constant, which is what
// makes LogHist a fixed-footprint, allocation-free streaming structure:
// the serve loop's per-event Observe is two array increments.
const (
	logHistSubBits  = 5
	logHistSubCount = 1 << logHistSubBits // 32
	// Highest index: exponent 63 contributes buckets
	// (63-logHistSubBits)*32 + [32,64).
	logHistBuckets = (63-logHistSubBits)*logHistSubCount + 2*logHistSubCount
)

// logBucketOf maps a value to its bucket index. Values < 32 map to
// themselves; larger values map to (e-5)*32 + top-6-bits, where e is the
// index of the leading bit.
func logBucketOf(v uint64) int {
	if v < logHistSubCount {
		return int(v)
	}
	e := uint(bits.Len64(v) - 1) // >= logHistSubBits
	shift := e - logHistSubBits
	return int((e-logHistSubBits)<<logHistSubBits) + int(v>>shift)
}

// logBucketLow returns the smallest value mapping to bucket b — the
// representative Quantile reports.
func logBucketLow(b int) uint64 {
	if b < logHistSubCount {
		return uint64(b)
	}
	q := uint(b >> logHistSubBits) // >= 1
	m := uint64(b) - uint64(q-1)<<logHistSubBits
	return m << (q - 1)
}

// LogHist is a fixed-footprint log-scale histogram of non-negative
// integer observations, built for SLO latency tails: Observe is
// allocation-free (two array increments), and Quantile answers p50/p99/
// p999 with relative error at most 1/32 at any magnitude. The zero value
// is an empty histogram ready for use; copying a LogHist copies its
// counts (it contains no pointers).
type LogHist struct {
	counts [logHistBuckets]uint64
	n      uint64
	max    uint64
	sum    float64
}

// Observe records v.
//
//ftcsn:hotpath per-event latency recording on the open-loop serve path
func (h *LogHist) Observe(v uint64) {
	h.counts[logBucketOf(v)]++
	h.n++
	if v > h.max {
		h.max = v
	}
	h.sum += float64(v)
}

// Count returns the number of observations.
func (h *LogHist) Count() uint64 { return h.n }

// Max returns the largest observation (exact, not quantized).
func (h *LogHist) Max() uint64 { return h.max }

// Mean returns the mean observation (0 when empty).
func (h *LogHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns the q-quantile (0 <= q <= 1) as the lower bound of the
// bucket holding the rank-⌈q·n⌉ observation. Exact for values < 32;
// within 1/32 relative error above. An empty histogram yields 0.
func (h *LogHist) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	if target > h.n {
		target = h.n
	}
	var cum uint64
	for b := range h.counts {
		cum += h.counts[b]
		if cum >= target {
			return logBucketLow(b)
		}
	}
	return h.max
}

// Merge folds o into h (parallel reduction of per-worker histograms).
func (h *LogHist) Merge(o *LogHist) {
	for b := range h.counts {
		h.counts[b] += o.counts[b]
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset empties the histogram.
func (h *LogHist) Reset() { *h = LogHist{} }
