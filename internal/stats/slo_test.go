package stats

import "testing"

func TestSLOCountersAndWindows(t *testing.T) {
	var s SLO

	// Two arrivals in the first window: one accepted (hold 2.0), one
	// rejected.
	s.ObserveConnect(1.0, 2.0, 0, true)
	s.ObserveConnect(2.0, 3.0, 1, false)
	if s.Live() != 1 {
		t.Fatalf("Live = %d, want 1", s.Live())
	}

	w1 := s.Window()
	if w1.Offered != 2 || w1.Accepted != 1 || w1.Rejected != 1 {
		t.Fatalf("window 1 counters: %+v", w1)
	}
	if w1.Start != 0 || w1.End != 2.0 {
		t.Fatalf("window 1 span [%v, %v], want [0, 2]", w1.Start, w1.End)
	}
	if w1.RejectRate != 0.5 {
		t.Fatalf("window 1 reject rate %v, want 0.5", w1.RejectRate)
	}
	// Offered load: 5.0 hold-time over 2.0 time units.
	if w1.OfferedLoad != 2.5 {
		t.Fatalf("window 1 offered load %v, want 2.5", w1.OfferedLoad)
	}
	if w1.PeakLive != 1 || w1.Live != 1 {
		t.Fatalf("window 1 live/peak: %+v", w1)
	}
	if w1.P50 != 0 || w1.MaxBehind != 1 {
		t.Fatalf("window 1 latency: p50=%d max=%d", w1.P50, w1.MaxBehind)
	}

	// Second window: the circuit departs, one more accepted arrival.
	s.ObserveRelease(3.0)
	s.ObserveConnect(4.0, 1.0, 2, true)

	w2 := s.Window()
	if w2.Start != 2.0 || w2.End != 4.0 {
		t.Fatalf("window 2 span [%v, %v], want [2, 4]", w2.Start, w2.End)
	}
	if w2.Offered != 1 || w2.Accepted != 1 || w2.Departed != 1 {
		t.Fatalf("window 2 counters: %+v", w2)
	}
	// Window peak re-arms to the live count at the window boundary (1),
	// dips to 0 on departure, back to 1 on accept.
	if w2.PeakLive != 1 || w2.Live != 1 {
		t.Fatalf("window 2 live/peak: %+v", w2)
	}

	// Cumulative snapshot spans everything.
	c := s.Snapshot()
	if c.Start != 0 || c.End != 4.0 {
		t.Fatalf("cumulative span [%v, %v], want [0, 4]", c.Start, c.End)
	}
	if c.Offered != 3 || c.Accepted != 2 || c.Rejected != 1 || c.Departed != 1 {
		t.Fatalf("cumulative counters: %+v", c)
	}
	if c.MaxBehind != 2 {
		t.Fatalf("cumulative max behind %d, want 2", c.MaxBehind)
	}
	if c.OfferedLoad != 6.0/4.0 {
		t.Fatalf("cumulative offered load %v, want 1.5", c.OfferedLoad)
	}

	s.Reset()
	if s.Live() != 0 || s.Snapshot().Offered != 0 {
		t.Fatal("Reset did not clear the SLO")
	}
}

func TestSLOObserveAllocFree(t *testing.T) {
	var s SLO
	allocs := testing.AllocsPerRun(1000, func() {
		s.ObserveConnect(1.0, 2.0, 3, true)
		s.ObserveRelease(2.0)
	})
	if allocs != 0 {
		t.Fatalf("SLO observe path allocates %v per call, want 0", allocs)
	}
}
