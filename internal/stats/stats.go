// Package stats provides the small statistical toolkit used by the
// Monte-Carlo experiments: streaming moments, binomial proportion
// confidence intervals, histograms, and fixed-width table rendering for the
// benchmark harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates streaming first and second moments (Welford's
// algorithm) plus extrema. The zero value is an empty sample.
type Sample struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates x into the sample.
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Sample) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 { return s.max }

// SE returns the standard error of the mean.
func (s *Sample) SE() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// Merge folds t into s (parallel reduction of per-worker samples).
func (s *Sample) Merge(t *Sample) {
	if t.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *t
		return
	}
	n1, n2 := float64(s.n), float64(t.n)
	d := t.mean - s.mean
	tot := n1 + n2
	s.m2 += t.m2 + d*d*n1*n2/tot
	s.mean += d * n2 / tot
	s.n += t.n
	if t.min < s.min {
		s.min = t.min
	}
	if t.max > s.max {
		s.max = t.max
	}
}

// Proportion is a success counter for Bernoulli trials.
type Proportion struct {
	Successes, Trials int
}

// Add records one trial.
func (p *Proportion) Add(success bool) {
	p.Trials++
	if success {
		p.Successes++
	}
}

// Merge folds q into p.
func (p *Proportion) Merge(q Proportion) {
	p.Successes += q.Successes
	p.Trials += q.Trials
}

// Estimate returns the point estimate of the success probability.
func (p Proportion) Estimate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// Wilson returns the Wilson score interval at confidence level given by z
// (z=1.96 for 95%). Wilson behaves sensibly at the extremes p̂∈{0,1}, which
// matter here: many failure probabilities in the paper are designed to be
// astronomically small and we frequently observe zero failures.
func (p Proportion) Wilson(z float64) (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 1
	}
	n := float64(p.Trials)
	ph := p.Estimate()
	z2 := z * z
	den := 1 + z2/n
	center := (ph + z2/(2*n)) / den
	half := z / den * math.Sqrt(ph*(1-ph)/n+z2/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// String renders the proportion with its 95% Wilson interval.
func (p Proportion) String() string {
	lo, hi := p.Wilson(1.96)
	return fmt.Sprintf("%.4f [%.4f,%.4f] (n=%d)", p.Estimate(), lo, hi, p.Trials)
}

// Quantile returns the q-quantile (0<=q<=1) of xs by linear interpolation.
// xs is copied and sorted; an empty slice yields 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Bins     []int
	Under    int
	Over     int
	binWidth float64
}

// NewHistogram returns a histogram with nbins equal bins spanning [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if hi <= lo || nbins <= 0 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, nbins), binWidth: (hi - lo) / float64(nbins)}
}

// Add records x.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		h.Bins[int((x-h.Lo)/h.binWidth)]++
	}
}

// Total returns the number of recorded observations including out-of-range.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, b := range h.Bins {
		t += b
	}
	return t
}

// Table renders aligned experiment tables. Columns are sized to their
// widest cell; the output is Markdown-compatible.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float compactly: integers exactly, small numbers in
// scientific notation, everything else with four significant decimals.
func FormatFloat(v float64) string {
	a := math.Abs(v)
	if a != 0 && (a < 1e-3 || a >= 1e7) {
		return fmt.Sprintf("%.3e", v)
	}
	if v == math.Trunc(v) {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4f", v)
}

// String renders the table in Markdown.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := range width {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", width[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	b.WriteString("|")
	for _, w := range width {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
