package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleMoments(t *testing.T) {
	var s Sample
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	// Unbiased variance of the classic dataset: population var 4, sample 32/7.
	if math.Abs(s.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %v", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("extrema = %v %v", s.Min(), s.Max())
	}
}

func TestSampleMergeMatchesSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		var whole, left, right Sample
		for _, x := range a {
			clip := math.Mod(x, 1000)
			if math.IsNaN(clip) {
				clip = 0
			}
			whole.Add(clip)
			left.Add(clip)
		}
		for _, x := range b {
			clip := math.Mod(x, 1000)
			if math.IsNaN(clip) {
				clip = 0
			}
			whole.Add(clip)
			right.Add(clip)
		}
		left.Merge(&right)
		if left.N() != whole.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		return math.Abs(left.Mean()-whole.Mean()) < 1e-6 &&
			math.Abs(left.Var()-whole.Var()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestProportionWilson(t *testing.T) {
	p := Proportion{Successes: 50, Trials: 100}
	lo, hi := p.Wilson(1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("interval [%v,%v] excludes point estimate", lo, hi)
	}
	if lo < 0.39 || hi > 0.61 {
		t.Fatalf("interval [%v,%v] implausibly wide for n=100", lo, hi)
	}
}

func TestWilsonZeroSuccesses(t *testing.T) {
	p := Proportion{Successes: 0, Trials: 1000}
	lo, hi := p.Wilson(1.96)
	if lo != 0 {
		t.Fatalf("lo = %v, want 0", lo)
	}
	if hi <= 0 || hi > 0.01 {
		t.Fatalf("hi = %v, want small positive", hi)
	}
}

func TestWilsonBoundsInUnitInterval(t *testing.T) {
	f := func(s, n uint16) bool {
		trials := int(n%1000) + 1
		succ := int(s) % (trials + 1)
		p := Proportion{Successes: succ, Trials: trials}
		lo, hi := p.Wilson(1.96)
		return lo >= 0 && hi <= 1 && lo <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProportionMerge(t *testing.T) {
	a := Proportion{Successes: 3, Trials: 10}
	a.Merge(Proportion{Successes: 2, Trials: 5})
	if a.Successes != 5 || a.Trials != 15 {
		t.Fatalf("merge = %+v", a)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	for i, b := range h.Bins {
		if b != 1 {
			t.Fatalf("bin %d = %d", i, b)
		}
	}
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Total() != 12 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("n", "size", "p")
	tab.AddRow(16, 1408, 0.25)
	tab.AddRow(64, 123456, 1e-9)
	out := tab.String()
	if !strings.Contains(out, "| n ") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "1408") || !strings.Contains(out, "1.000e-09") {
		t.Fatalf("missing cells: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d: %q", len(lines), out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		0.5:     "0.5000",
		1e-9:    "1.000e-09",
		2.5e8:   "2.500e+08",
		-4:      "-4",
		-0.0001: "-1.000e-04",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
