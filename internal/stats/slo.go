package stats

// SLO accumulates serving-quality statistics for an open-loop run:
// offered/accepted/rejected/departed counters, the live-circuit gauge
// with peaks, offered load in Erlangs, and the events-behind connect
// latency histogram. Everything is kept twice — cumulatively and for the
// current reporting window — so a long-running harness can print
// periodic windowed snapshots plus one final cumulative report. All
// times are virtual (the serve loop's clock); SLO never reads the wall
// clock, which is what keeps a (seed, config) run byte-reproducible.
//
// The zero value is ready for use. Not safe for concurrent use: one SLO
// per serve loop.
type SLO struct {
	cum  sloAccum
	win  sloAccum
	live int64
	now  float64
}

// sloAccum is one accumulation scope (cumulative or window).
type sloAccum struct {
	start       float64
	offered     int64
	accepted    int64
	rejected    int64
	departed    int64
	peakLive    int64
	holdOffered float64 // sum of offered holding times: load in Erlangs once divided by elapsed time
	lat         LogHist // events-behind connect latency, accepted and rejected alike
}

// ObserveConnect records one arrival decided at virtual time t: its
// requested holding time, its connect latency in events-behind terms
// (how many later arrivals were already due when this one was served —
// 0 means served at the head of its batch), and whether the engine
// admitted it.
//
//ftcsn:hotpath per-arrival accounting on the open-loop serve path
func (s *SLO) ObserveConnect(t, hold float64, behind uint64, accepted bool) {
	s.now = t
	s.cum.offered++
	s.win.offered++
	s.cum.holdOffered += hold
	s.win.holdOffered += hold
	s.cum.lat.Observe(behind)
	s.win.lat.Observe(behind)
	if !accepted {
		s.cum.rejected++
		s.win.rejected++
		return
	}
	s.cum.accepted++
	s.win.accepted++
	s.live++
	if s.live > s.cum.peakLive {
		s.cum.peakLive = s.live
	}
	if s.live > s.win.peakLive {
		s.win.peakLive = s.live
	}
}

// ObserveRelease records one departure at virtual time t.
//
//ftcsn:hotpath per-departure accounting on the open-loop serve path
func (s *SLO) ObserveRelease(t float64) {
	s.now = t
	s.live--
	s.cum.departed++
	s.win.departed++
}

// Live returns the current live-circuit gauge.
func (s *SLO) Live() int64 { return s.live }

// Now returns the virtual time of the last observed event.
func (s *SLO) Now() float64 { return s.now }

// SLOSnapshot is a point-in-time summary of one accumulation scope.
// Latency quantiles are in events-behind terms (see LogHist for the
// quantization contract); OfferedLoad is in Erlangs — offered holding
// time per unit virtual time over [Start, End].
type SLOSnapshot struct {
	Start, End float64

	Offered, Accepted, Rejected, Departed int64
	Live, PeakLive                        int64

	RejectRate  float64 // Rejected / Offered (0 when nothing offered)
	OfferedLoad float64 // Erlangs over [Start, End] (0 when End <= Start)

	P50, P99, P999, MaxBehind uint64
	MeanBehind                float64
}

func (a *sloAccum) snapshot(live int64, now float64) SLOSnapshot {
	sn := SLOSnapshot{
		Start:     a.start,
		End:       now,
		Offered:   a.offered,
		Accepted:  a.accepted,
		Rejected:  a.rejected,
		Departed:  a.departed,
		Live:      live,
		PeakLive:  a.peakLive,
		P50:       a.lat.Quantile(0.50),
		P99:       a.lat.Quantile(0.99),
		P999:      a.lat.Quantile(0.999),
		MaxBehind: a.lat.Max(),
	}
	sn.MeanBehind = a.lat.Mean()
	if a.offered > 0 {
		sn.RejectRate = float64(a.rejected) / float64(a.offered)
	}
	if now > a.start {
		sn.OfferedLoad = a.holdOffered / (now - a.start)
	}
	return sn
}

// Snapshot summarizes everything observed since the last Reset.
func (s *SLO) Snapshot() SLOSnapshot { return s.cum.snapshot(s.live, s.now) }

// Window summarizes everything observed since the previous Window call
// (or Reset), then starts a fresh window at the current virtual time
// with the peak gauge re-armed to the current live count.
func (s *SLO) Window() SLOSnapshot {
	sn := s.win.snapshot(s.live, s.now)
	s.win = sloAccum{start: s.now, peakLive: s.live}
	return sn
}

// Reset returns the SLO to its zero state.
func (s *SLO) Reset() { *s = SLO{} }
