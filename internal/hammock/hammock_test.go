package hammock

import (
	"math"
	"testing"

	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
	"ftcsn/internal/rng"
)

func TestGridStructure(t *testing.T) {
	b := graph.NewBuilder(0, 0)
	g := BuildInto(b, 4, 8, false) // the Fig. 4 grid
	gr := b.Freeze()
	g.Bind(gr)
	if gr.NumVertices() != 32 {
		t.Fatalf("vertices = %d", gr.NumVertices())
	}
	if gr.NumEdges() != g.EdgeCount() {
		t.Fatalf("edges = %d, EdgeCount = %d", gr.NumEdges(), g.EdgeCount())
	}
	// Non-cyclic: (2l-1)(w-1) = 7*7 = 49.
	if g.EdgeCount() != 49 {
		t.Fatalf("EdgeCount = %d, want 49", g.EdgeCount())
	}
	// Interior vertex degree 2 out, 2 in.
	v := g.VertexAt(1, 3)
	if gr.OutDegree(v) != 2 || gr.InDegree(v) != 2 {
		t.Fatalf("interior degrees: out=%d in=%d", gr.OutDegree(v), gr.InDegree(v))
	}
	// Last row (non-cyclic) has only the straight out-edge.
	v = g.VertexAt(3, 3)
	if gr.OutDegree(v) != 1 {
		t.Fatalf("bottom row out-degree = %d", gr.OutDegree(v))
	}
	// Last stage has no out-edges.
	v = g.VertexAt(0, 7)
	if gr.OutDegree(v) != 0 {
		t.Fatalf("last stage out-degree = %d", gr.OutDegree(v))
	}
}

func TestGridCyclicStructure(t *testing.T) {
	b := graph.NewBuilder(0, 0)
	g := BuildInto(b, 4, 3, true)
	gr := b.Freeze()
	g.Bind(gr)
	// Cyclic: 2l(w-1) = 8*2 = 16 edges; every non-final vertex out-degree 2.
	if gr.NumEdges() != 16 || g.EdgeCount() != 16 {
		t.Fatalf("edges = %d / %d", gr.NumEdges(), g.EdgeCount())
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 2; j++ {
			if gr.OutDegree(g.VertexAt(i, j)) != 2 {
				t.Fatalf("vertex (%d,%d) out-degree != 2", i, j)
			}
		}
	}
	// Every stage-1+ vertex has in-degree 2 (wraparound covers row 0).
	for i := 0; i < 4; i++ {
		if gr.InDegree(g.VertexAt(i, 1)) != 2 {
			t.Fatalf("vertex (%d,1) in-degree != 2", i)
		}
	}
}

func TestVertexAtPanics(t *testing.T) {
	b := graph.NewBuilder(0, 0)
	g := BuildInto(b, 2, 2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("VertexAt out of range did not panic")
		}
	}()
	g.VertexAt(2, 0)
}

func TestNetworkValidates(t *testing.T) {
	n := NewNetwork(4, 6, false)
	if err := n.G.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := n.G.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 7 { // source edge + 5 grid transitions + sink edge
		t.Fatalf("depth = %d, want 7", d)
	}
	// Healthy network conducts.
	inst := fault.NewInstance(n.G)
	if in, _ := inst.IsolatedPair(); in >= 0 {
		t.Fatal("healthy hammock disconnected")
	}
}

func TestNetworkEdgeCount(t *testing.T) {
	l, w := 5, 4
	n := NewNetwork(l, w, true)
	want := 2*l*(w-1) + 2*l
	if n.G.NumEdges() != want {
		t.Fatalf("edges = %d, want %d", n.G.NumEdges(), want)
	}
}

func TestBoundsDecreaseWithDimension(t *testing.T) {
	eps := 0.05
	for d := 3; d < 10; d++ {
		if ShortUpperBound(d+1, d+1, eps) > ShortUpperBound(d, d, eps) {
			t.Fatalf("short bound not decreasing at d=%d", d)
		}
		if OpenUpperBound(d+1, d+1, eps) > OpenUpperBound(d, d, eps) {
			t.Fatalf("open bound not decreasing at d=%d", d)
		}
	}
}

func TestBoundsAreProbabilities(t *testing.T) {
	for _, eps := range []float64{0.01, 0.1, 0.3} {
		for d := 1; d < 20; d++ {
			s := ShortUpperBound(d, d, eps)
			o := OpenUpperBound(d, d, eps)
			if s < 0 || s > 1 || o < 0 || o > 1 {
				t.Fatalf("bounds out of range at d=%d eps=%v: %v %v", d, eps, s, o)
			}
		}
	}
}

func TestDimensionGrowsLogarithmically(t *testing.T) {
	eps := 0.05
	d3, err := Dimension(eps, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	d6, err := Dimension(eps, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	d12, err := Dimension(eps, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !(d3 <= d6 && d6 <= d12) {
		t.Fatalf("dimension not monotone: %d %d %d", d3, d6, d12)
	}
	// log(1/ε′) doubles from 1e-6 to 1e-12: dimension should roughly double,
	// certainly not square.
	if d12 > 4*d6 {
		t.Fatalf("dimension growth superlinear in log(1/ε′): %d -> %d", d6, d12)
	}
}

func TestDimensionRejects(t *testing.T) {
	if _, err := Dimension(0.2, 1e-3); err == nil {
		t.Fatal("accepted eps >= 1/6")
	}
	if _, err := Dimension(0.05, 0); err == nil {
		t.Fatal("accepted epsPrime = 0")
	}
}

func TestAmplifierProposition1(t *testing.T) {
	eps, epsPrime := 0.05, 1e-4
	a, err := NewAmplifier(eps, epsPrime)
	if err != nil {
		t.Fatal(err)
	}
	if a.POpenBound >= epsPrime || a.PShortBound >= epsPrime {
		t.Fatalf("bounds not met: open=%v short=%v", a.POpenBound, a.PShortBound)
	}
	d := a.Net.Grid.L
	if a.Size() != (2*d-1)*(d-1)+2*d {
		t.Fatalf("size accounting wrong: %d", a.Size())
	}
	if a.Depth() != d+1 {
		t.Fatalf("depth = %d, want %d", a.Depth(), d+1)
	}
}

func TestAmplifierEmpirical(t *testing.T) {
	// Monte-Carlo check that a small amplifier really beats its target.
	eps, epsPrime := 0.05, 0.02
	a, err := NewAmplifier(eps, epsPrime)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(55)
	inst := fault.NewInstance(a.Net.G)
	const trials = 5000
	opens, shorts := 0, 0
	for i := 0; i < trials; i++ {
		inst.Reinject(fault.Symmetric(eps), r)
		if in, _ := inst.IsolatedPair(); in >= 0 {
			opens++
		}
		if x, _ := inst.ShortedTerminals(); x >= 0 {
			shorts++
		}
	}
	// Allow generous slack: the bound itself plus MC noise.
	if float64(opens)/trials > epsPrime+5*math.Sqrt(epsPrime/trials) {
		t.Errorf("open rate %v above target %v", float64(opens)/trials, epsPrime)
	}
	if float64(shorts)/trials > epsPrime+5*math.Sqrt(epsPrime/trials) {
		t.Errorf("short rate %v above target %v", float64(shorts)/trials, epsPrime)
	}
}

func TestExactFailureProbsWithinBounds(t *testing.T) {
	a, err := NewAmplifier(0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if a.Net.Grid.L > 12 {
		t.Skip("amplifier too large for exact DP")
	}
	pOpen, pShort, err := a.ExactFailureProbs()
	if err != nil {
		t.Fatal(err)
	}
	// DP open is an upper bound on true open, so it must sit below the
	// analytic cut bound; DP short is a lower bound on true short, so it
	// must sit below the analytic path bound.
	if pOpen > a.POpenBound {
		t.Errorf("DP open %v above analytic bound %v", pOpen, a.POpenBound)
	}
	if pShort > a.PShortBound {
		t.Errorf("DP short %v above analytic bound %v", pShort, a.PShortBound)
	}
}

func TestAccessNetworkHealthy(t *testing.T) {
	an := NewAccessNetwork(6, 5, true)
	if err := an.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := an.LastStageAccess(nil); got != 6 {
		t.Fatalf("healthy access = %d, want 6", got)
	}
}

func TestAccessNetworkBlocked(t *testing.T) {
	an := NewAccessNetwork(4, 3, true)
	// Block the entire first stage: nothing reachable.
	first := map[int32]bool{}
	for i := 0; i < 4; i++ {
		first[an.Grid.VertexAt(i, 0)] = true
	}
	if got := an.LastStageAccess(func(v int32) bool { return !first[v] }); got != 0 {
		t.Fatalf("access through blocked stage = %d", got)
	}
	// Block one first-stage row: cyclic diagonals still reach every
	// last-stage row within 2 transitions.
	one := an.Grid.VertexAt(0, 0)
	if got := an.LastStageAccess(func(v int32) bool { return v != one }); got != 4 {
		t.Fatalf("access with one blocked row = %d, want 4", got)
	}
}

func TestSubstituteEdgesStructure(t *testing.T) {
	// A single switch in -> out substituted by an (l,w) hammock.
	b := graph.NewBuilder(2, 1)
	in := b.AddVertex(graph.NoStage)
	out := b.AddVertex(graph.NoStage)
	b.AddEdge(in, out)
	b.MarkInput(in)
	b.MarkOutput(out)
	g := b.Freeze()

	l, w := 3, 4
	sub := SubstituteEdges(g, l, w, false)
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	wantV := 2 + l*w
	if sub.NumVertices() != wantV {
		t.Fatalf("vertices = %d, want %d", sub.NumVertices(), wantV)
	}
	wantE := 2*l + (2*l-1)*(w-1)
	if sub.NumEdges() != wantE {
		t.Fatalf("edges = %d, want %d", sub.NumEdges(), wantE)
	}
	d, err := sub.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != w+1 {
		t.Fatalf("depth = %d, want %d", d, w+1)
	}
	// Terminals preserved with original IDs.
	if sub.Inputs()[0] != in || sub.Outputs()[0] != out {
		t.Fatal("terminal IDs changed")
	}
	// Still conducts when healthy.
	inst := fault.NewInstance(sub)
	if a, _ := inst.IsolatedPair(); a >= 0 {
		t.Fatal("healthy substituted network disconnected")
	}
}

func TestSubstituteEdgesAmplifies(t *testing.T) {
	// Substituted 3-switch line survives single-hammock-internal faults.
	b := graph.NewBuilder(4, 3)
	v0 := b.AddVertex(graph.NoStage)
	v1 := b.AddVertex(graph.NoStage)
	v2 := b.AddVertex(graph.NoStage)
	v3 := b.AddVertex(graph.NoStage)
	b.AddEdge(v0, v1)
	b.AddEdge(v1, v2)
	b.AddEdge(v2, v3)
	b.MarkInput(v0)
	b.MarkOutput(v3)
	g := b.Freeze()
	sub := SubstituteEdges(g, 4, 4, false)

	// Plain line dies to ANY single open switch; the substituted one must
	// survive any single open switch (min cut is 4 per hammock).
	for e := int32(0); e < int32(sub.NumEdges()); e++ {
		inst := fault.NewInstance(sub)
		inst.SetState(e, fault.Open)
		if a, _ := inst.IsolatedPair(); a >= 0 {
			t.Fatalf("single open switch %d disconnected the substituted line", e)
		}
	}
}

func TestSubstituteEdgesMonteCarlo(t *testing.T) {
	// Empirical §3 check on the 3-switch line: at ε=0.05 the substituted
	// network must beat the plain one by a wide margin.
	b := graph.NewBuilder(4, 3)
	vs := make([]int32, 4)
	for i := range vs {
		vs[i] = b.AddVertex(graph.NoStage)
	}
	for i := 0; i < 3; i++ {
		b.AddEdge(vs[i], vs[i+1])
	}
	b.MarkInput(vs[0])
	b.MarkOutput(vs[3])
	g := b.Freeze()
	sub := SubstituteEdges(g, 4, 4, false)

	rate := func(gr *graph.Graph) float64 {
		inst := fault.NewInstance(gr)
		fails := 0
		const trials = 500
		for i := 0; i < trials; i++ {
			inst.Reinject(fault.Symmetric(0.05), rng.Stream(88, uint64(i)))
			if !inst.SurvivesBasicChecks() {
				fails++
			}
		}
		return float64(fails) / trials
	}
	plain, amplified := rate(g), rate(sub)
	if amplified >= plain/2 {
		t.Fatalf("substitution did not amplify: plain fail %v, substituted fail %v", plain, amplified)
	}
}

func TestBuildIntoPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BuildInto(0,5) did not panic")
		}
	}()
	BuildInto(graph.NewBuilder(0, 0), 0, 5, false)
}
