// Package hammock builds the (l,w)-directed grids of Pippenger & Lin
// (Fig. 4) — the "hammocks" of Moore & Shannon — and the (ε,ε′)-1-network
// reliability amplifiers of Proposition 1.
//
// An (l,w)-directed grid has w stages of l vertices each; vertex (i,j) is
// joined by switches to (i,j+1) and (i+1,j+1). Two variants appear in the
// paper: the plain grid of Fig. 4 (rows do not wrap) and the cyclic variant
// used to interface Network 𝒩's terminals, which has exactly 2l switches
// per stage transition (128(ν−1)·4^γ per grid in the paper's accounting).
//
// Grids make two-terminal networks whose open- and closed-failure
// probabilities BOTH decay exponentially in the grid dimensions: shorting
// input to output needs a closed path crossing all w stages, while
// disconnecting them needs an open cut of at least l switches. Choosing
// l = w = Θ(log 1/ε′) yields Proposition 1's (ε,ε′)-1-network with
// Θ((log 1/ε′)²) switches and Θ(log 1/ε′) depth.
package hammock

import (
	"fmt"
	"math"

	"ftcsn/internal/graph"
	"ftcsn/internal/reliability"
)

// Grid is an (l,w)-directed grid. Vertices are laid out stage-major:
// VertexAt(i, j) = base + j*l + i.
type Grid struct {
	L, W   int  // rows, stages
	Cyclic bool // whether row i+1 wraps modulo L
	G      *graph.Graph
	base   int32 // ID of vertex (0,0)
}

// BuildInto adds an (l,w)-directed grid to b and returns its handle. The
// grid has no terminals of its own; callers wire its first and last stages.
func BuildInto(b *graph.Builder, l, w int, cyclic bool) *Grid {
	if l < 1 || w < 1 {
		panic(fmt.Sprintf("hammock: invalid grid %dx%d", l, w))
	}
	base := b.AddVertices(graph.NoStage, l*w)
	g := &Grid{L: l, W: w, Cyclic: cyclic, base: base}
	for j := 0; j < w-1; j++ {
		for i := 0; i < l; i++ {
			from := g.at(i, j)
			b.AddEdge(from, g.at(i, j+1))
			if cyclic {
				b.AddEdge(from, g.at((i+1)%l, j+1))
			} else if i+1 < l {
				b.AddEdge(from, g.at(i+1, j+1))
			}
		}
	}
	return g
}

func (g *Grid) at(i, j int) int32 { return g.base + int32(j*g.L+i) }

// VertexAt returns the graph vertex at row i, stage j. It panics on
// out-of-range coordinates.
func (g *Grid) VertexAt(i, j int) int32 {
	if i < 0 || i >= g.L || j < 0 || j >= g.W {
		panic(fmt.Sprintf("hammock: VertexAt(%d,%d) outside %dx%d", i, j, g.L, g.W))
	}
	return g.at(i, j)
}

// Bind must be called after the enclosing Builder freezes; it records the
// final Graph so the Grid's vertex IDs can be interpreted.
func (g *Grid) Bind(gr *graph.Graph) { g.G = gr }

// EdgeCount returns the number of switches the grid contributes.
func (g *Grid) EdgeCount() int {
	per := 2*g.L - 1
	if g.Cyclic {
		per = 2 * g.L
	}
	return per * (g.W - 1)
}

// Network is a standalone two-terminal hammock network: a source joined by
// a switch to every row of the first stage and a sink joined from every row
// of the last stage. It realizes the (ε,ε′)-1-network of Proposition 1.
type Network struct {
	Grid   *Grid
	G      *graph.Graph
	Source int32
	Sink   int32
}

// NewNetwork builds the two-terminal (l,w) hammock.
func NewNetwork(l, w int, cyclic bool) *Network {
	b := graph.NewBuilder(l*w+2, (2*l)*(w+1))
	src := b.AddVertex(graph.NoStage)
	grid := BuildInto(b, l, w, cyclic)
	sink := b.AddVertex(graph.NoStage)
	for i := 0; i < l; i++ {
		b.AddEdge(src, grid.VertexAt(i, 0))
		b.AddEdge(grid.VertexAt(i, w-1), sink)
	}
	b.MarkInput(src)
	b.MarkOutput(sink)
	g := b.Freeze()
	grid.Bind(g)
	return &Network{Grid: grid, G: g, Source: src, Sink: sink}
}

// AccessNetwork is the one-sided grid of Lemma 3: a source joined to every
// row of the first stage, with NO sink — experiment E3 measures how many
// last-stage rows the source can still reach through non-faulty vertices.
type AccessNetwork struct {
	Grid   *Grid
	G      *graph.Graph
	Source int32
}

// NewAccessNetwork builds the one-sided (l,w) grid.
func NewAccessNetwork(l, w int, cyclic bool) *AccessNetwork {
	b := graph.NewBuilder(l*w+1, 2*l*w)
	src := b.AddVertex(graph.NoStage)
	grid := BuildInto(b, l, w, cyclic)
	for i := 0; i < l; i++ {
		b.AddEdge(src, grid.VertexAt(i, 0))
	}
	b.MarkInput(src)
	// The last-stage rows act as outputs for Validate purposes.
	for i := 0; i < l; i++ {
		b.MarkOutput(grid.VertexAt(i, w-1))
	}
	g := b.Freeze()
	grid.Bind(g)
	return &AccessNetwork{Grid: grid, G: g, Source: src}
}

// LastStageAccess counts the last-stage rows reachable from the source
// through vertices allowed by ok (the source itself is always allowed).
func (a *AccessNetwork) LastStageAccess(ok func(int32) bool) int {
	seen := a.G.ReachableFrom(a.Source, ok)
	count := 0
	for i := 0; i < a.Grid.L; i++ {
		if seen[a.Grid.VertexAt(i, a.Grid.W-1)] {
			count++
		}
	}
	return count
}

// ShortUpperBound bounds the probability that the two-terminal hammock
// shorts (input and output contract through closed switches): a shorting
// path uses w+1 closed switches and there are at most l·2^(w-1) directed
// source→sink paths.
func ShortUpperBound(l, w int, eps float64) float64 {
	paths := float64(l) * math.Pow(2, float64(w-1))
	return clampProb(paths * math.Pow(eps, float64(w+1)))
}

// OpenUpperBound bounds the probability that no conducting path survives.
// Any open cut must contain at least l switches (the grid's source/sink min
// cut is l); the number of minimal "connected" cut sets of size k is at
// most (w+1)·3^k by the walk-counting argument of the paper's Lemma 3, so
// P[open] ≤ Σ_{k≥l} (w+1)·(3ε)^k = (w+1)·(3ε)^l / (1−3ε) for 3ε < 1.
func OpenUpperBound(l, w int, eps float64) float64 {
	x := 3 * eps
	if x >= 1 {
		return 1
	}
	return clampProb(float64(w+1) * math.Pow(x, float64(l)) / (1 - x))
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// SubstituteEdges implements the reduction of the paper's §3: given a
// network Φ and an (ε,ε′)-1-network Ψ (here an (l,w) hammock), replace
// every switch of Φ by a copy of Ψ. If Φ is an (ε′,δ)-X network, the
// result is an (ε,δ)-X network whose size and depth grew only by the
// constant factors |Ψ| and depth(Ψ) — this is how the paper shows the
// exact values of ε and δ do not affect the asymptotics.
//
// Each edge (u,v) of g becomes: u → [source row switches] → grid → [sink
// row switches] → v, with fresh grid vertices per edge. Terminals and
// vertex IDs of g are preserved (g's vertices come first).
func SubstituteEdges(g *graph.Graph, l, w int, cyclic bool) *graph.Graph {
	perEdgeVerts := l * w
	perEdgeEdges := 2*l + (2*l)*(w-1) // bounds capacity; exact for cyclic
	b := graph.NewBuilder(g.NumVertices()+g.NumEdges()*perEdgeVerts,
		g.NumEdges()*perEdgeEdges)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		b.AddVertex(g.Stage(v))
	}
	for _, v := range g.Inputs() {
		b.MarkInput(v)
	}
	for _, v := range g.Outputs() {
		b.MarkOutput(v)
	}
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		u, v := g.EdgeFrom(e), g.EdgeTo(e)
		grid := BuildInto(b, l, w, cyclic)
		for i := 0; i < l; i++ {
			b.AddEdge(u, grid.VertexAt(i, 0))
			b.AddEdge(grid.VertexAt(i, w-1), v)
		}
	}
	return b.Freeze()
}

// Amplifier is the explicitly constructed (ε,ε′)-1-network of
// Proposition 1, realized as a square hammock.
type Amplifier struct {
	Eps, EpsPrime float64
	Net           *Network
	// POpenBound and PShortBound are the analytic guarantees; both < ε′.
	POpenBound, PShortBound float64
}

// Dimension returns the minimal square dimension l=w such that both
// analytic failure bounds fall below epsPrime at switch failure rate eps.
// The result grows as Θ(log 1/ε′) for fixed eps < 1/6 (where the path and
// cut counting arguments converge), matching Proposition 1.
func Dimension(eps, epsPrime float64) (int, error) {
	if eps <= 0 || eps >= 1.0/6.0 {
		return 0, fmt.Errorf("hammock: eps %v out of (0, 1/6) for the explicit bounds", eps)
	}
	if epsPrime <= 0 || epsPrime >= 1 {
		return 0, fmt.Errorf("hammock: epsPrime %v out of (0,1)", epsPrime)
	}
	for d := 2; d <= 1<<20; d++ {
		if ShortUpperBound(d, d, eps) < epsPrime && OpenUpperBound(d, d, eps) < epsPrime {
			return d, nil
		}
	}
	return 0, fmt.Errorf("hammock: no dimension found for eps=%v epsPrime=%v", eps, epsPrime)
}

// NewAmplifier constructs the Proposition-1 network for the given
// parameters. Its size is Θ((log 1/ε′)²) switches and its depth
// Θ(log 1/ε′).
func NewAmplifier(eps, epsPrime float64) (*Amplifier, error) {
	d, err := Dimension(eps, epsPrime)
	if err != nil {
		return nil, err
	}
	net := NewNetwork(d, d, false)
	return &Amplifier{
		Eps:         eps,
		EpsPrime:    epsPrime,
		Net:         net,
		POpenBound:  OpenUpperBound(d, d, eps),
		PShortBound: ShortUpperBound(d, d, eps),
	}, nil
}

// Size returns the number of switches in the amplifier.
func (a *Amplifier) Size() int { return a.Net.G.NumEdges() }

// Depth returns the switch depth of the amplifier.
func (a *Amplifier) Depth() int { return a.Net.Grid.W + 1 }

// ExactFailureProbs returns the exact open/short probabilities of the
// amplifier via the transfer-matrix DP, when the grid is small enough.
func (a *Amplifier) ExactFailureProbs() (pOpen, pShort float64, err error) {
	g := a.Net.Grid
	return reliability.GridFailureProbs(g.L, g.W, g.Cyclic, a.Eps)
}
