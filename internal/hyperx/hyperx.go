// Package hyperx builds DAG-unrolled HyperX networks for circuit
// switching.
//
// A HyperX [Ahn et al.; Camarero et al., "Achieving High-Performance
// Fault-Tolerant Routing in HyperX Interconnection Networks"] places
// switches on an L-dimensional lattice S₁×…×S_L and, in every dimension,
// connects each switch to ALL switches that differ from it in that one
// coordinate — a per-dimension crossbar, giving diameter L with massive
// path diversity, which is what makes the topology attractive for
// fault-tolerant routing.
//
// HyperX is an interconnection (packet) topology; to study it under the
// paper's circuit-switching fault model it is unrolled into an acyclic
// layered form, the standard time-expansion for circuit switching: columns
// 0..Depth each hold one copy of the lattice, and every switch (x, t) is
// joined to its hold successor (x, t+1) and to every one-coordinate
// neighbor (y, t+1). Each lattice point gets one input terminal feeding
// its column-0 copy and one output terminal fed by its column-Depth copy.
// A circuit is then a lattice walk taking at most one hop per time step —
// with Depth ≥ L every input can reach every output.
//
// Terminals are allocated before the columns, so vertex IDs are NOT
// level-sorted (outputs carry the highest level but low IDs): the family
// deliberately exercises the permutation path of the graph.Levels
// contract, where the stage-layered MINs exercise the identity path.
package hyperx

import (
	"fmt"

	"ftcsn/internal/graph"
)

// MaxEdges caps accidental huge instances.
const MaxEdges = 1 << 24

// Network is a materialized DAG-unrolled HyperX.
type Network struct {
	Dims  []int // lattice shape S₁×…×S_L
	Depth int   // number of column transitions (columns 0..Depth)
	N     int   // lattice points per column = terminals per side
	G     *graph.Graph

	colBase []int32 // colBase[t] is the first vertex ID of column t
}

// New builds the unrolled HyperX over the given lattice shape with the
// given number of time steps. Every dimension must be ≥ 2 and depth ≥ 1.
func New(dims []int, depth int) (*Network, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("hyperx: empty lattice shape")
	}
	points := 1
	perHop := 1 // out-degree of one switch: hold + Σ (S_k - 1)
	for _, d := range dims {
		if d < 2 {
			return nil, fmt.Errorf("hyperx: dimension size %d < 2", d)
		}
		points *= d
		perHop += d - 1
	}
	if depth < 1 {
		return nil, fmt.Errorf("hyperx: depth %d < 1", depth)
	}
	edges := 2*points + depth*points*perHop
	if edges > MaxEdges {
		return nil, fmt.Errorf("hyperx: %d switches exceeds MaxEdges=%d", edges, MaxEdges)
	}

	b := graph.NewBuilder(2*points+(depth+1)*points, edges)
	ins := b.AddVertices(graph.NoStage, points)
	outs := b.AddVertices(graph.NoStage, points)
	nw := &Network{
		Dims:    append([]int(nil), dims...),
		Depth:   depth,
		N:       points,
		colBase: make([]int32, depth+1),
	}
	for t := 0; t <= depth; t++ {
		nw.colBase[t] = b.AddVertices(graph.NoStage, points)
	}
	for i := 0; i < points; i++ {
		b.MarkInput(ins + int32(i))
		b.MarkOutput(outs + int32(i))
		b.AddEdge(ins+int32(i), nw.colBase[0]+int32(i))
		b.AddEdge(nw.colBase[depth]+int32(i), outs+int32(i))
	}
	// stride[k] is the rank step of +1 in coordinate k (mixed radix).
	stride := make([]int, len(dims))
	s := 1
	for k := len(dims) - 1; k >= 0; k-- {
		stride[k] = s
		s *= dims[k]
	}
	coord := make([]int, len(dims))
	for t := 0; t < depth; t++ {
		from, to := nw.colBase[t], nw.colBase[t+1]
		for i := range coord {
			coord[i] = 0
		}
		for r := 0; r < points; r++ {
			b.AddEdge(from+int32(r), to+int32(r)) // hold
			for k, ck := range coord {
				base := r - ck*stride[k]
				for v := 0; v < dims[k]; v++ {
					if v != ck {
						b.AddEdge(from+int32(r), to+int32(base+v*stride[k]))
					}
				}
			}
			// Advance the mixed-radix counter alongside the rank.
			for k := len(coord) - 1; k >= 0; k-- {
				coord[k]++
				if coord[k] < dims[k] {
					break
				}
				coord[k] = 0
			}
		}
	}
	nw.G = b.Freeze()
	return nw, nil
}

// Switch returns the vertex ID of lattice rank r in column t.
func (nw *Network) Switch(t, r int) int32 {
	if t < 0 || t > nw.Depth || r < 0 || r >= nw.N {
		panic(fmt.Sprintf("hyperx: Switch(%d,%d) out of range", t, r))
	}
	return nw.colBase[t] + int32(r)
}

// Size returns the switch (edge) count — the paper's size measure.
func (nw *Network) Size() int { return nw.G.NumEdges() }
