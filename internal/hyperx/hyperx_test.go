package hyperx

import "testing"

func TestNewValidates(t *testing.T) {
	for _, bad := range []struct {
		dims  []int
		depth int
	}{
		{nil, 2}, {[]int{1, 3}, 2}, {[]int{2, 2}, 0},
	} {
		if _, err := New(bad.dims, bad.depth); err == nil {
			t.Errorf("New(%v, %d) accepted invalid parameters", bad.dims, bad.depth)
		}
	}
}

func TestShape(t *testing.T) {
	nw, err := New([]int{3, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if nw.N != 6 {
		t.Fatalf("N = %d, want 6", nw.N)
	}
	// hold + (3-1) + (2-1) = 4 out-slots per switch per hop.
	wantEdges := 2*6 + 3*6*4
	if nw.G.NumEdges() != wantEdges {
		t.Fatalf("NumEdges = %d, want %d", nw.G.NumEdges(), wantEdges)
	}
	if len(nw.G.Inputs()) != 6 || len(nw.G.Outputs()) != 6 {
		t.Fatalf("terminals = %d/%d, want 6/6", len(nw.G.Inputs()), len(nw.G.Outputs()))
	}
}

// TestLevels pins the family's role in the Levels contract: unstaged,
// levelable, and — because terminals are allocated before the columns —
// NOT level-sorted, so it exercises the permutation sweep path.
func TestLevels(t *testing.T) {
	nw, err := New([]int{2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := nw.G.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if lv.Sorted() {
		t.Fatal("hyperx IDs unexpectedly level-sorted; permutation path not exercised")
	}
	if got, want := lv.NumLevels(), nw.Depth+3; got != want {
		t.Fatalf("NumLevels = %d, want %d", got, want)
	}
	for _, in := range nw.G.Inputs() {
		if lv.Of(in) != 0 {
			t.Fatalf("input %d at level %d, want 0", in, lv.Of(in))
		}
	}
	for _, out := range nw.G.Outputs() {
		if got := lv.Of(out); got != int32(nw.Depth+2) {
			t.Fatalf("output %d at level %d, want %d", out, got, nw.Depth+2)
		}
	}
	for tcol := 0; tcol <= nw.Depth; tcol++ {
		for r := 0; r < nw.N; r++ {
			if got := lv.Of(nw.Switch(tcol, r)); got != int32(tcol+1) {
				t.Fatalf("switch (%d,%d) at level %d, want %d", tcol, r, got, tcol+1)
			}
		}
	}
}

// TestFullAccess checks that with depth ≥ number of dimensions every input
// reaches every output through the fault-free network — the unrolling is
// deep enough for one hop per dimension.
func TestFullAccess(t *testing.T) {
	nw, err := New([]int{3, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	all := func(int32) bool { return true }
	for _, in := range nw.G.Inputs() {
		seen := nw.G.ReachableFrom(in, all)
		for _, out := range nw.G.Outputs() {
			if !seen[out] {
				t.Fatalf("input %d cannot reach output %d in fault-free network", in, out)
			}
		}
	}
}

// FuzzBuild drives New over small lattice shapes and checks the structural
// invariants: a valid graph with a leveling whose columns land on
// consecutive levels.
func FuzzBuild(f *testing.F) {
	f.Add(uint8(2), uint8(2), uint8(2))
	f.Add(uint8(3), uint8(4), uint8(1))
	f.Add(uint8(2), uint8(0), uint8(3))
	f.Fuzz(func(t *testing.T, d1, d2, depth uint8) {
		dims := []int{2 + int(d1%4)}
		if d2%4 != 0 {
			dims = append(dims, 2+int(d2%4))
		}
		nw, err := New(dims, 1+int(depth%4))
		if err != nil {
			t.Fatalf("New(%v): %v", dims, err)
		}
		if err := nw.G.Validate(); err != nil {
			t.Fatal(err)
		}
		lv, err := nw.G.Levels()
		if err != nil {
			t.Fatal(err)
		}
		if lv.NumLevels() != nw.Depth+3 {
			t.Fatalf("NumLevels = %d, want %d", lv.NumLevels(), nw.Depth+3)
		}
		for e := int32(0); e < int32(nw.G.NumEdges()); e++ {
			u, v := nw.G.EdgeFrom(e), nw.G.EdgeTo(e)
			if lv.Of(v) != lv.Of(u)+1 {
				t.Fatalf("edge %d→%d spans levels %d→%d", u, v, lv.Of(u), lv.Of(v))
			}
		}
	})
}
