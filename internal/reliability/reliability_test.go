package reliability

import (
	"math"
	"testing"

	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
	"ftcsn/internal/rng"
)

func TestGridPathProbExtremes(t *testing.T) {
	for _, cyclic := range []bool{false, true} {
		p, err := GridPathProb(3, 4, cyclic, 1)
		if err != nil || math.Abs(p-1) > 1e-12 {
			t.Fatalf("p=1: got %v err=%v", p, err)
		}
		p, err = GridPathProb(3, 4, cyclic, 0)
		if err != nil || p != 0 {
			t.Fatalf("p=0: got %v err=%v", p, err)
		}
	}
}

func TestGridPathProbSingleRow(t *testing.T) {
	// l=1: source edge + (w-1) straight edges + sink edge in series.
	for _, w := range []int{1, 2, 5} {
		p := 0.8
		got, err := GridPathProb(1, w, false, p)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Pow(p, float64(w+1))
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("w=%d: got %v want %v", w, got, want)
		}
	}
}

func TestGridPathProbSingleStage(t *testing.T) {
	// w=1: l parallel branches of 2 switches each (source edge + sink edge).
	l, p := 3, 0.6
	got, err := GridPathProb(l, 1, false, p)
	if err != nil {
		t.Fatal(err)
	}
	branch := p * p
	want := 1 - math.Pow(1-branch, float64(l))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestGridPathProbMonotoneInP(t *testing.T) {
	prev := -1.0
	for _, p := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1} {
		v, err := GridPathProb(4, 5, true, p)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-12 {
			t.Fatalf("not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestGridPathProbMonotoneInDimensions(t *testing.T) {
	// More rows help (more parallel paths); more stages hurt (longer series).
	p := 0.7
	v3, _ := GridPathProb(3, 4, false, p)
	v5, _ := GridPathProb(5, 4, false, p)
	if v5 < v3 {
		t.Fatalf("adding rows decreased reliability: %v -> %v", v3, v5)
	}
	w4, _ := GridPathProb(3, 4, false, p)
	w8, _ := GridPathProb(3, 8, false, p)
	if w8 > w4 {
		t.Fatalf("adding stages increased reliability: %v -> %v", w4, w8)
	}
}

func TestGridPathProbRejectsBadInput(t *testing.T) {
	if _, err := GridPathProb(0, 3, false, 0.5); err == nil {
		t.Fatal("accepted l=0")
	}
	if _, err := GridPathProb(MaxExactRows+1, 3, false, 0.5); err == nil {
		t.Fatal("accepted oversized l")
	}
	if _, err := GridPathProb(2, 2, false, 1.5); err == nil {
		t.Fatal("accepted p>1")
	}
}

// buildHammock replicates hammock.NewNetwork's topology locally to avoid an
// import cycle (hammock imports reliability).
func buildHammock(l, w int, cyclic bool) *graph.Graph {
	b := graph.NewBuilder(l*w+2, 2*l*(w+1))
	src := b.AddVertex(graph.NoStage)
	base := b.AddVertices(graph.NoStage, l*w)
	at := func(i, j int) int32 { return base + int32(j*l+i) }
	for j := 0; j < w-1; j++ {
		for i := 0; i < l; i++ {
			b.AddEdge(at(i, j), at(i, j+1))
			if cyclic {
				b.AddEdge(at(i, j), at((i+1)%l, j+1))
			} else if i+1 < l {
				b.AddEdge(at(i, j), at(i+1, j+1))
			}
		}
	}
	sink := b.AddVertex(graph.NoStage)
	for i := 0; i < l; i++ {
		b.AddEdge(src, at(i, 0))
		b.AddEdge(at(i, w-1), sink)
	}
	b.MarkInput(src)
	b.MarkOutput(sink)
	return b.Freeze()
}

func TestDPBracketsExactSemantics(t *testing.T) {
	// On a tiny grid, the forward DP must bracket the exact contraction
	// semantics: DP short ≤ exact short, DP open ≥ exact open.
	g := buildHammock(2, 2, true)
	for _, eps := range []float64{0.05, 0.15, 0.25} {
		exOpen, exShort, err := ExactSmallNetwork(g, eps)
		if err != nil {
			t.Fatal(err)
		}
		dpOpen, dpShort, err := GridFailureProbs(2, 2, true, eps)
		if err != nil {
			t.Fatal(err)
		}
		if dpShort > exShort+1e-12 {
			t.Errorf("eps=%v: DP short %v exceeds exact %v", eps, dpShort, exShort)
		}
		if dpOpen < exOpen-1e-12 {
			t.Errorf("eps=%v: DP open %v below exact %v", eps, dpOpen, exOpen)
		}
		// The bracket should be reasonably tight at small eps.
		if eps <= 0.05 && math.Abs(dpOpen-exOpen) > 0.01 {
			t.Errorf("eps=%v: open bracket too loose: DP=%v exact=%v", eps, dpOpen, exOpen)
		}
	}
}

func TestExactMatchesMonteCarlo(t *testing.T) {
	g := buildHammock(2, 2, false)
	eps := 0.2
	exOpen, exShort, err := ExactSmallNetwork(g, eps)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2024)
	inst := fault.NewInstance(g)
	const trials = 20000
	opens, shorts := 0, 0
	for i := 0; i < trials; i++ {
		inst.Reinject(fault.Symmetric(eps), r)
		if in, _ := inst.IsolatedPair(); in >= 0 {
			opens++
		}
		if a, _ := inst.ShortedTerminals(); a >= 0 {
			shorts++
		}
	}
	mcOpen := float64(opens) / trials
	mcShort := float64(shorts) / trials
	tolO := 5 * math.Sqrt(exOpen*(1-exOpen)/trials)
	tolS := 5 * math.Sqrt(exShort*(1-exShort)/trials)
	if math.Abs(mcOpen-exOpen) > tolO+1e-9 {
		t.Errorf("open: MC %v vs exact %v", mcOpen, exOpen)
	}
	if math.Abs(mcShort-exShort) > tolS+1e-9 {
		t.Errorf("short: MC %v vs exact %v", mcShort, exShort)
	}
}

func TestExactSmallNetworkRejects(t *testing.T) {
	g := buildHammock(3, 3, false) // 16 edges > MaxExactEdges
	if _, _, err := ExactSmallNetwork(g, 0.1); err == nil {
		t.Fatal("accepted oversized network")
	}
}

func TestFailurePolynomialVanishingConstant(t *testing.T) {
	// The §3 argument: a working network fails only if some switch fails,
	// so the constant term of the failure polynomial is zero.
	g := buildHammock(2, 2, false)
	counts, err := FailurePolynomial(g, 14)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 0 {
		t.Fatalf("constant term = %d, want 0", counts[0])
	}
	// And at least one failure pattern must break it (e.g. all open).
	totalPatterns := int64(0)
	for _, c := range counts {
		totalPatterns += c
	}
	if totalPatterns == 0 {
		t.Fatal("no failure pattern breaks the network?")
	}
}

func TestFailurePolynomialMatchesExact(t *testing.T) {
	// Evaluating the polynomial must agree with ExactSmallNetwork up to
	// the double-counted open∧shorted overlap... the polynomial counts the
	// union event directly, so it must match P[open ∪ shorted].
	g := buildHammock(2, 2, true)
	counts, err := FailurePolynomial(g, 14)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.05, 0.15} {
		pPoly := EvalFailurePolynomial(counts, eps)
		// Monte-Carlo the union event.
		r := rng.New(7)
		inst := fault.NewInstance(g)
		fails := 0
		const trials = 20000
		for i := 0; i < trials; i++ {
			inst.Reinject(fault.Symmetric(eps), r)
			if !inst.SurvivesBasicChecks() {
				fails++
			}
		}
		mc := float64(fails) / trials
		tol := 5*math.Sqrt(pPoly*(1-pPoly)/trials) + 1e-9
		if math.Abs(mc-pPoly) > tol {
			t.Errorf("eps=%v: poly %v vs MC %v", eps, pPoly, mc)
		}
	}
}

func TestFailurePolynomialRescaling(t *testing.T) {
	// The δ-invariance argument: scaling ε by a factor s < 1 scales every
	// term by at least s (no constant term), so P[fail](sε) ≤ s·P[fail](ε)
	// for s ≤ ... each term scales by s^k ≤ s for k ≥ 1 — but the
	// (1−2ε)^(m−k) factor also changes. Verify the direction numerically.
	g := buildHammock(2, 2, false)
	counts, err := FailurePolynomial(g, 14)
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.1
	for _, s := range []float64{0.5, 0.25, 0.1} {
		scaled := EvalFailurePolynomial(counts, s*eps)
		full := EvalFailurePolynomial(counts, eps)
		if scaled > s*full*1.35 { // slack for the (1−2ε)^(m−k) factor shift
			t.Errorf("s=%v: P(sε)=%v not ≲ s·P(ε)=%v", s, scaled, s*full)
		}
	}
}

func TestFailurePolynomialRejects(t *testing.T) {
	g := buildHammock(3, 3, false)
	if _, err := FailurePolynomial(g, 5); err == nil {
		t.Fatal("accepted network above limit")
	}
}

func TestSeriesParallelAlgebra(t *testing.T) {
	sw := TwoTerminal{POpen: 0.1, PShort: 0.2}
	s := sw.Series(2)
	if math.Abs(s.POpen-(1-0.9*0.9)) > 1e-12 || math.Abs(s.PShort-0.04) > 1e-12 {
		t.Fatalf("series = %+v", s)
	}
	p := sw.Parallel(3)
	if math.Abs(p.POpen-0.001) > 1e-12 || math.Abs(p.PShort-(1-math.Pow(0.8, 3))) > 1e-12 {
		t.Fatalf("parallel = %+v", p)
	}
}

func TestSeriesParallelIdentity(t *testing.T) {
	sw := TwoTerminal{POpen: 0.3, PShort: 0.1}
	s, p := sw.Series(1), sw.Parallel(1)
	for _, got := range []TwoTerminal{s, p} {
		if math.Abs(got.POpen-sw.POpen) > 1e-12 || math.Abs(got.PShort-sw.PShort) > 1e-12 {
			t.Fatalf("k=1 composition changed module: %+v", got)
		}
	}
}

func TestAmplifierConverges(t *testing.T) {
	for _, eps := range []float64{0.01, 0.1, 0.2} {
		mod, size, depth, err := SeriesParallelAmplifier(eps, 1e-9, 2)
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		if mod.POpen >= 1e-9 || mod.PShort >= 1e-9 {
			t.Fatalf("eps=%v: did not reach target: %+v", eps, mod)
		}
		if size < 2 || depth < 1 {
			t.Fatalf("eps=%v: degenerate size/depth %d/%d", eps, size, depth)
		}
	}
}

func TestAmplifierSizePolylog(t *testing.T) {
	// Proposition 1: size should grow polylogarithmically in 1/ε′. Check
	// that halving ε′ multiplies size by a bounded factor.
	eps := 0.1
	_, s1, _, err := SeriesParallelAmplifier(eps, 1e-3, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, s2, _, err := SeriesParallelAmplifier(eps, 1e-6, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, s3, _, err := SeriesParallelAmplifier(eps, 1e-12, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Going from 1e-6 to 1e-12 doubles log(1/ε′); size should grow by at
	// most ~(ratio of squares)·slack, far below e.g. the 1e6 a linear-in-1/ε′
	// growth would give.
	if s3 > 100*s2 || s2 > 100*s1 {
		t.Fatalf("amplifier size growth not polylog: %d, %d, %d", s1, s2, s3)
	}
}

func TestAmplifierRejectsBadEps(t *testing.T) {
	if _, _, _, err := SeriesParallelAmplifier(0.6, 1e-3, 2); err == nil {
		t.Fatal("accepted eps >= 1/2")
	}
	if _, _, _, err := SeriesParallelAmplifier(0.1, 2, 2); err == nil {
		t.Fatal("accepted target >= 1")
	}
	if _, _, _, err := SeriesParallelAmplifier(0.1, 1e-3, 1); err == nil {
		t.Fatal("accepted s=1")
	}
}

func TestWorse(t *testing.T) {
	a := TwoTerminal{POpen: 0.1, PShort: 0.1}
	b := TwoTerminal{POpen: 0.2, PShort: 0.05}
	if !b.Worse(a) {
		t.Fatal("b should be worse on POpen")
	}
	if !a.Worse(b) {
		t.Fatal("a should be worse on PShort")
	}
	if a.Worse(a) {
		t.Fatal("module worse than itself")
	}
}
