// Package reliability computes exact failure probabilities of two-terminal
// switch networks under the Moore–Shannon / Pippenger–Lin random switch
// failure model, plus the series/parallel composition calculus used in the
// proof of Proposition 1.
//
// A two-terminal network (an "(ε,ε′)-1-network") fails in one of two ways:
//
//   - it is OPEN if no conducting path joins input to output (a switch
//     conducts when it is normal or closed-failed, i.e. with probability
//     1−ε₁);
//   - it is SHORTED if the input and output contract into one node, which
//     requires a path consisting solely of closed-failed switches (each
//     closed with probability ε₂).
//
// Both events are "does a path of p-present edges exist" questions with
// different per-edge probabilities p, so a single algorithm serves both.
// For the (l,w)-directed grids of the paper (Fig. 4) the forward staged
// structure admits an O(w·4^l·l) subset-distribution dynamic program:
// conditioned on the reachable row set of stage j, the events "row i of
// stage j+1 is reached" are independent across i, because each row has its
// own pair of incoming switches.
//
// A subtlety: contraction through closed switches is undirected (a closed
// switch merges its endpoints, which conducts both ways), so a
// source→sink connection may zig-zag backwards through a contracted
// cluster. The forward DP is exact for forward-path events and therefore
// brackets the contraction semantics:
//
//	GridPathProb(ε₂)      ≤ P[shorted]            (forward closed paths only)
//	1−GridPathProb(1−ε₁)  ≥ P[open]               (forward conduction only)
//
// ExactSmallNetwork enumerates all 3^m switch states of an arbitrary small
// network with the true contraction semantics and is used in tests to
// calibrate how tight the bracket is (for grids it is tight to a few
// percent at ε ≤ 0.25 and asymptotically negligible).
package reliability

import (
	"fmt"
	"math"
	"math/bits"

	"ftcsn/internal/graph"
)

// MaxExactRows bounds the grid height for the exact subset DP; 4^l subset
// pairs per stage keeps l ≤ 12 practical.
const MaxExactRows = 12

// GridPathProb returns the exact probability that, in an (l,w) directed
// grid with a source joined to every row of the first stage and a sink
// joined from every row of the last stage, the sink is reachable from the
// source when every switch is independently present with probability p.
//
// Edges follow the paper's definition: (i,j)→(i,j+1) and (i,j)→(i+1,j+1);
// with cyclic=true row arithmetic wraps modulo l (the variant used inside
// Network 𝒩, which has 2l switches per stage transition).
//
// Setting p = 1−ε₁ gives the probability the network is NOT open;
// setting p = ε₂ gives the probability the network IS shorted.
func GridPathProb(l, w int, cyclic bool, p float64) (float64, error) {
	if l < 1 || w < 1 {
		return 0, fmt.Errorf("reliability: invalid grid %dx%d", l, w)
	}
	if l > MaxExactRows {
		return 0, fmt.Errorf("reliability: l=%d exceeds exact limit %d", l, MaxExactRows)
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("reliability: probability %v out of range", p)
	}
	size := 1 << uint(l)
	cur := make([]float64, size)
	next := make([]float64, size)

	// Initial distribution: row i of stage 0 is reached iff its source
	// switch is present — independent across rows.
	for s := 0; s < size; s++ {
		k := bits.OnesCount(uint(s))
		cur[s] = math.Pow(p, float64(k)) * math.Pow(1-p, float64(l-k))
	}

	// probReach[i] given predecessor set S: row i is reached if the straight
	// switch from row i or the diagonal switch from row i-1 conducts.
	q := 1 - p
	for stage := 1; stage < w; stage++ {
		for i := range next {
			next[i] = 0
		}
		for s := 0; s < size; s++ {
			ms := cur[s]
			if ms == 0 {
				continue
			}
			// pr[i] = P[row i reached | S=s]
			var pr [MaxExactRows]float64
			for i := 0; i < l; i++ {
				straight := s&(1<<uint(i)) != 0
				var diagFrom bool
				if i > 0 {
					diagFrom = s&(1<<uint(i-1)) != 0
				} else if cyclic {
					diagFrom = s&(1<<uint(l-1)) != 0
				}
				pi := 0.0
				switch {
				case straight && diagFrom:
					pi = 1 - q*q
				case straight || diagFrom:
					pi = p
				}
				pr[i] = pi
			}
			// Fold the independent rows into the next-stage distribution:
			// next[t] += ms * Π_i (pr[i] if bit i of t set, else 1-pr[i]).
			for t := 0; t < size; t++ {
				prob := ms
				for i := 0; i < l && prob != 0; i++ {
					if t&(1<<uint(i)) != 0 {
						prob *= pr[i]
					} else {
						prob *= 1 - pr[i]
					}
				}
				if prob != 0 {
					next[t] += prob
				}
			}
		}
		cur, next = next, cur
	}

	// Sink: reached if any present sink switch leaves a reached row.
	total := 0.0
	for s := 0; s < size; s++ {
		if cur[s] == 0 {
			continue
		}
		k := bits.OnesCount(uint(s))
		total += cur[s] * (1 - math.Pow(q, float64(k)))
	}
	return total, nil
}

// GridFailureProbs returns the forward-path probabilities that the
// two-terminal (l,w) hammock network is open (no forward conducting path)
// and shorted (a forward closed-only path) under the symmetric model
// ε₁ = ε₂ = eps. Per the package comment these bracket the exact
// contraction-semantics failure probabilities: pOpen is an upper bound on
// the true open probability and pShort a lower bound on the true short
// probability.
func GridFailureProbs(l, w int, cyclic bool, eps float64) (pOpen, pShort float64, err error) {
	conduct, err := GridPathProb(l, w, cyclic, 1-eps)
	if err != nil {
		return 0, 0, err
	}
	short, err := GridPathProb(l, w, cyclic, eps)
	if err != nil {
		return 0, 0, err
	}
	return 1 - conduct, short, nil
}

// TwoTerminal describes a two-terminal module as a super-switch with its
// own open and short failure probabilities — the algebra of Moore &
// Shannon's "reliable circuits using less reliable relays".
type TwoTerminal struct {
	POpen  float64 // probability the module fails to conduct
	PShort float64 // probability the module is permanently shorted
}

// Series returns the composition of k copies of t in series: the chain is
// shorted only if every module shorts, and fails to conduct if any module
// is open.
func (t TwoTerminal) Series(k int) TwoTerminal {
	if k < 1 {
		panic("reliability: Series needs k >= 1")
	}
	return TwoTerminal{
		POpen:  1 - math.Pow(1-t.POpen, float64(k)),
		PShort: math.Pow(t.PShort, float64(k)),
	}
}

// Parallel returns the composition of k copies of t in parallel: the bundle
// is open only if every module is open, and shorted if any module shorts.
func (t TwoTerminal) Parallel(k int) TwoTerminal {
	if k < 1 {
		panic("reliability: Parallel needs k >= 1")
	}
	return TwoTerminal{
		POpen:  math.Pow(t.POpen, float64(k)),
		PShort: 1 - math.Pow(1-t.PShort, float64(k)),
	}
}

// Worse reports whether either failure probability of t exceeds that of u.
func (t TwoTerminal) Worse(u TwoTerminal) bool {
	return t.POpen > u.POpen || t.PShort > u.PShort
}

// MaxExactEdges bounds the network size for ExactSmallNetwork's 3^m
// enumeration.
const MaxExactEdges = 14

// ExactSmallNetwork computes the exact open and short probabilities of an
// arbitrary two-terminal network (one input, one output) with the true
// contraction semantics, by enumerating all 3^m switch-state vectors:
//
//	shorted: input and output lie in one component of the closed subgraph
//	         (undirected);
//	open:    the output is not reachable from the input when normal
//	         switches conduct forward and closed switches conduct both ways.
//
// m = g.NumEdges() must be at most MaxExactEdges.
func ExactSmallNetwork(g *graph.Graph, eps float64) (pOpen, pShort float64, err error) {
	m := g.NumEdges()
	if m > MaxExactEdges {
		return 0, 0, fmt.Errorf("reliability: %d edges exceeds exact limit %d", m, MaxExactEdges)
	}
	if len(g.Inputs()) != 1 || len(g.Outputs()) != 1 {
		return 0, 0, fmt.Errorf("reliability: ExactSmallNetwork needs exactly one input and one output")
	}
	src, dst := g.Inputs()[0], g.Outputs()[0]
	state := make([]uint8, m) // 0 normal, 1 open, 2 closed
	probOf := [3]float64{1 - 2*eps, eps, eps}
	n := g.NumVertices()
	seen := make([]bool, n)
	queue := make([]int32, 0, n)

	reach := func(closedOnly bool) bool {
		for i := range seen {
			seen[i] = false
		}
		queue = queue[:0]
		seen[src] = true
		queue = append(queue, src)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, e := range g.OutEdges(v) {
				s := state[e]
				ok := s == 2 || (!closedOnly && s == 0)
				if ok && !seen[g.EdgeTo(e)] {
					seen[g.EdgeTo(e)] = true
					queue = append(queue, g.EdgeTo(e))
				}
			}
			for _, e := range g.InEdges(v) {
				if state[e] == 2 && !seen[g.EdgeFrom(e)] {
					seen[g.EdgeFrom(e)] = true
					queue = append(queue, g.EdgeFrom(e))
				}
			}
		}
		return seen[dst]
	}

	total := int64(1)
	for i := 0; i < m; i++ {
		total *= 3
	}
	for code := int64(0); code < total; code++ {
		c := code
		prob := 1.0
		for i := 0; i < m; i++ {
			state[i] = uint8(c % 3)
			prob *= probOf[state[i]]
			c /= 3
		}
		if prob == 0 {
			continue
		}
		if !reach(false) {
			pOpen += prob
		}
		if reach(true) {
			pShort += prob
		}
	}
	return pOpen, pShort, nil
}

// FailurePolynomial computes the coefficients c_k of the failure
// probability of a small two-terminal network as a polynomial in ε under
// the symmetric model:
//
//	P[open or shorted] = Σ_k c_k · ε^k (1−2ε)^(m−k) · 2^k-normalized...
//
// Concretely it returns counts[k] = the number of (open/closed) failure
// patterns with exactly k failed switches under which the network is open
// or shorted, so that
//
//	P[fail](ε) = Σ_k counts[k] · ε^k · (1−2ε)^(m−k)
//
// (each failed switch contributes ε for its specific mode, and counts
// already distinguishes open from closed). The §3 argument that "the
// failure probability is a polynomial in ε whose constant term vanishes"
// is visible directly: counts[0] = 0 for every working network, which is
// what makes the δ-rescaling trick (replace ε by εδ₁/δ₂) sound.
func FailurePolynomial(g *graph.Graph, maxEdges int) ([]int64, error) {
	m := g.NumEdges()
	if m > maxEdges || m > MaxExactEdges {
		return nil, fmt.Errorf("reliability: %d edges exceeds limit", m)
	}
	if len(g.Inputs()) != 1 || len(g.Outputs()) != 1 {
		return nil, fmt.Errorf("reliability: FailurePolynomial needs one input and one output")
	}
	src, dst := g.Inputs()[0], g.Outputs()[0]
	counts := make([]int64, m+1)
	state := make([]uint8, m)
	n := g.NumVertices()
	seen := make([]bool, n)
	queue := make([]int32, 0, n)
	reach := func(closedOnly bool) bool {
		for i := range seen {
			seen[i] = false
		}
		queue = queue[:0]
		seen[src] = true
		queue = append(queue, src)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, e := range g.OutEdges(v) {
				s := state[e]
				if (s == 2 || (!closedOnly && s == 0)) && !seen[g.EdgeTo(e)] {
					seen[g.EdgeTo(e)] = true
					queue = append(queue, g.EdgeTo(e))
				}
			}
			for _, e := range g.InEdges(v) {
				if state[e] == 2 && !seen[g.EdgeFrom(e)] {
					seen[g.EdgeFrom(e)] = true
					queue = append(queue, g.EdgeFrom(e))
				}
			}
		}
		return seen[dst]
	}
	total := int64(1)
	for i := 0; i < m; i++ {
		total *= 3
	}
	for code := int64(0); code < total; code++ {
		c := code
		k := 0
		for i := 0; i < m; i++ {
			state[i] = uint8(c % 3)
			if state[i] != 0 {
				k++
			}
			c /= 3
		}
		if !reach(false) || reach(true) {
			counts[k]++
		}
	}
	return counts, nil
}

// EvalFailurePolynomial evaluates P[fail](ε) from FailurePolynomial's
// counts for a network with m switches.
func EvalFailurePolynomial(counts []int64, eps float64) float64 {
	m := len(counts) - 1
	p := 0.0
	for k, c := range counts {
		if c == 0 {
			continue
		}
		p += float64(c) * math.Pow(eps, float64(k)) * math.Pow(1-2*eps, float64(m-k))
	}
	return p
}

// SeriesParallelAmplifier composes a raw switch with failure probabilities
// (eps, eps) into a module whose two failure probabilities are both below
// target, by alternating series-of-s then parallel-of-s rounds. It returns
// the resulting module, the number of raw switches used, and the depth (the
// longest chain of raw switches), mirroring the recursive proof of
// Proposition 1. s=2 or 3 suffices for any eps < 1/2.
func SeriesParallelAmplifier(eps, target float64, s int) (mod TwoTerminal, size, depth int, err error) {
	if eps <= 0 || eps >= 0.5 {
		return mod, 0, 0, fmt.Errorf("reliability: eps %v out of (0, 1/2)", eps)
	}
	if target <= 0 || target >= 1 {
		return mod, 0, 0, fmt.Errorf("reliability: target %v out of (0,1)", target)
	}
	if s < 2 {
		return mod, 0, 0, fmt.Errorf("reliability: branching s=%d too small", s)
	}
	mod = TwoTerminal{POpen: eps, PShort: eps}
	size, depth = 1, 1
	const maxRounds = 200
	for round := 0; round < maxRounds; round++ {
		if mod.POpen < target && mod.PShort < target {
			return mod, size, depth, nil
		}
		// Attack the currently larger failure mode; series reduces shorts,
		// parallel reduces opens.
		if mod.PShort >= mod.POpen {
			mod = mod.Series(s)
			size *= s
			depth *= s
		} else {
			mod = mod.Parallel(s)
			size *= s
			// depth unchanged: parallel branches share the same endpoints
		}
		if mod.POpen >= 0.5 && mod.PShort >= 0.5 {
			return mod, size, depth, fmt.Errorf("reliability: amplifier diverged (eps=%v too large for s=%d)", eps, s)
		}
	}
	return mod, size, depth, fmt.Errorf("reliability: amplifier did not converge to %v", target)
}
