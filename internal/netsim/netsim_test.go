package netsim_test

import (
	"sync"
	"testing"
	"time"

	"ftcsn/internal/core"
	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
	"ftcsn/internal/netsim"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

const tmo = 5 * time.Second

// crossbar2 builds a 2×2 network with two parallel middle links per pair.
func crossbar2() *graph.Graph {
	b := graph.NewBuilder(12, 16)
	ins := []int32{b.AddVertex(0), b.AddVertex(0)}
	var mids [2][2][2]int32
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				mids[i][j][k] = b.AddVertex(1)
			}
		}
	}
	outs := []int32{b.AddVertex(2), b.AddVertex(2)}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				b.AddEdge(ins[i], mids[i][j][k])
				b.AddEdge(mids[i][j][k], outs[j])
			}
		}
	}
	b.MarkInput(ins[0])
	b.MarkInput(ins[1])
	b.MarkOutput(outs[0])
	b.MarkOutput(outs[1])
	return b.Freeze()
}

func TestSingleCircuit(t *testing.T) {
	g := crossbar2()
	s := netsim.New(g)
	defer s.Close()
	cid, err := s.Request(g.Inputs()[0], g.Outputs()[1], tmo)
	if err != nil {
		t.Fatal(err)
	}
	if cid == 0 {
		t.Fatal("zero circuit ID")
	}
}

func TestBusyOutputRefuses(t *testing.T) {
	g := crossbar2()
	s := netsim.New(g)
	defer s.Close()
	if _, err := s.Request(g.Inputs()[0], g.Outputs()[0], tmo); err != nil {
		t.Fatal(err)
	}
	// Output 0 is now owned; a second circuit to it must fail.
	if _, err := s.Request(g.Inputs()[1], g.Outputs()[0], tmo); err == nil {
		t.Fatal("second circuit to a busy output succeeded")
	}
}

func TestReleaseFreesPath(t *testing.T) {
	g := crossbar2()
	s := netsim.New(g)
	defer s.Close()
	in, out := g.Inputs()[0], g.Outputs()[0]
	cid, err := s.Request(in, out, tmo)
	if err != nil {
		t.Fatal(err)
	}
	s.Release(in, cid)
	// After release the same circuit must be routable again. Releases are
	// asynchronous; retry briefly.
	deadline := time.Now().Add(tmo)
	for {
		if _, err := s.Request(in, out, tmo); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("circuit not routable after release")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBothCircuitsConcurrently(t *testing.T) {
	g := crossbar2()
	s := netsim.New(g)
	defer s.Close()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Request(g.Inputs()[i], g.Outputs()[i], tmo)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("circuit %d: %v", i, err)
		}
	}
}

func TestDistributedBacktracking(t *testing.T) {
	// A two-hop ladder where the first greedy choice dead-ends: probe must
	// backtrack and find the live branch.
	b := graph.NewBuilder(6, 6)
	in := b.AddVertex(0)
	deadEnd := b.AddVertex(1) // no outgoing switches
	mid := b.AddVertex(1)
	out := b.AddVertex(2)
	b.AddEdge(in, deadEnd) // tried first (lower edge ID)
	b.AddEdge(in, mid)
	b.AddEdge(mid, out)
	b.MarkInput(in)
	b.MarkOutput(out)
	g := b.Freeze()
	s := netsim.New(g)
	defer s.Close()
	if _, err := s.Request(in, out, tmo); err != nil {
		t.Fatalf("backtracking failed: %v", err)
	}
}

func TestRepairedAvoidsFaults(t *testing.T) {
	g := crossbar2()
	inst := fault.NewInstance(g)
	// Fail one switch into output 0: its middle link is discarded, the
	// parallel one still serves.
	inst.SetState(g.InEdges(g.Outputs()[0])[0], fault.Open)
	s := netsim.NewRepaired(inst)
	defer s.Close()
	if _, err := s.Request(g.Inputs()[0], g.Outputs()[0], tmo); err != nil {
		t.Fatalf("no route around fault: %v", err)
	}
}

func TestRejectsDiscardedTerminalQuery(t *testing.T) {
	g := crossbar2()
	inst := fault.NewInstance(g)
	s := netsim.NewRepaired(inst)
	defer s.Close()
	// Sanity only: terminals are never discarded by the paper's rule, so
	// requests against usable terminals work.
	if _, err := s.Request(g.Inputs()[0], g.Outputs()[1], tmo); err != nil {
		t.Fatal(err)
	}
}

func TestOnNetworkN(t *testing.T) {
	// The distributed protocol on the real thing: a faulted, repaired
	// Network 𝒩 routes a full permutation, concurrently.
	p := core.Params{Nu: 2, Gamma: 0, M: 8, DQ: 3, Seed: 1}
	nw, err := core.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	inst := fault.Inject(nw.G, fault.Symmetric(0.001), rng.New(9))
	s := netsim.NewRepaired(inst)
	defer s.Close()

	n := p.N()
	perm := rng.New(10).Perm(n)
	var wg sync.WaitGroup
	okCount := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Request(nw.Inputs()[i], nw.Outputs()[perm[i]], tmo)
			okCount[i] = err == nil
		}(i)
	}
	wg.Wait()
	ok := 0
	for _, b := range okCount {
		if b {
			ok++
		}
	}
	if ok < n-1 { // allow at most one victim of an unlucky fault draw
		t.Fatalf("only %d/%d circuits established", ok, n)
	}
}

func TestManySequentialCircuits(t *testing.T) {
	// Stress the protocol state machine: connect/release cycles.
	g := crossbar2()
	s := netsim.New(g)
	defer s.Close()
	in, out := g.Inputs()[1], g.Outputs()[0]
	for i := 0; i < 50; i++ {
		cid, err := s.Request(in, out, tmo)
		if err != nil {
			// Releases are async; brief retry.
			time.Sleep(2 * time.Millisecond)
			cid, err = s.Request(in, out, tmo)
			if err != nil {
				t.Fatalf("cycle %d: %v", i, err)
			}
		}
		s.Release(in, cid)
	}
}

func TestAgreesWithSequentialRouter(t *testing.T) {
	// Cross-validation: on the same repaired instance and an EMPTY
	// network, a single request is routable by the sequential router iff
	// the distributed protocol routes it — both are exhaustive searches
	// over idle usable paths. A fresh simulator per pair removes any
	// dependence on asynchronous release timing.
	p := core.Params{Nu: 1, Gamma: 0, M: 4, DQ: 2, Seed: 2}
	nw, err := core.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 6; trial++ {
		inst := fault.Inject(nw.G, fault.Symmetric(0.03), rng.New(uint64(100+trial)))
		for i, in := range nw.Inputs() {
			out := nw.Outputs()[(i+1)%len(nw.Outputs())]
			rt := route.NewRepairedRouter(inst)
			_, seqErr := rt.Connect(in, out)
			s := netsim.NewRepaired(inst)
			_, simErr := s.Request(in, out, tmo)
			s.Close()
			if (seqErr == nil) != (simErr == nil) {
				t.Fatalf("trial %d pair %d: sequential err=%v, netsim err=%v", trial, i, seqErr, simErr)
			}
		}
	}
}

func TestCloseTerminates(t *testing.T) {
	g := crossbar2()
	s := netsim.New(g)
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(tmo):
		t.Fatal("Close did not terminate")
	}
}
