package netsim_test

import (
	"math"
	"testing"

	"ftcsn/internal/netsim"
)

func smallTerminals(t *testing.T) (ins, outs []int32) {
	nw := buildSmall(t)
	return nw.Inputs(), nw.Outputs()
}

// sourceVariants covers every combinator: each arrival process, holding
// distribution, and destination pattern appears in at least one source.
func sourceVariants(t *testing.T) map[string]func() *netsim.TrafficSource {
	ins, outs := smallTerminals(t)
	return map[string]func() *netsim.TrafficSource{
		"poisson-exp-uniform": func() *netsim.TrafficSource {
			return netsim.NewTrafficSource(0xA11CE,
				netsim.NewPoisson(2.0),
				netsim.NewExpHolding(3.0),
				netsim.NewUniformPattern(ins, outs))
		},
		"mmpp-lognormal-hotspot": func() *netsim.TrafficSource {
			return netsim.NewTrafficSource(0xB0B,
				netsim.NewMMPP(0.5, 8.0, 20.0, 2.5),
				netsim.NewLognormalHolding(1.0, 0.8),
				netsim.NewHotspotPattern(ins, outs, 2, 0.7))
		},
		"diurnal-pareto-permutation": func() *netsim.TrafficSource {
			return netsim.NewTrafficSource(0xC4B1D,
				netsim.NewDiurnal(4.0, 0.9, 50.0),
				netsim.NewParetoHolding(1.5, 1.0),
				netsim.NewPermutationPattern(ins, outs))
		},
	}
}

// TestSourceDeterminism: same (seed, config) ⇒ byte-identical event
// stream, for every combinator.
func TestSourceDeterminism(t *testing.T) {
	for name, mk := range sourceVariants(t) {
		t.Run(name, func(t *testing.T) {
			a, b := mk(), mk()
			var ea, eb netsim.Arrival
			prev := 0.0
			for i := 0; i < 2000; i++ {
				if !a.Next(&ea) || !b.Next(&eb) {
					t.Fatalf("event %d: stream ended", i)
				}
				if ea != eb {
					t.Fatalf("event %d: %+v vs %+v", i, ea, eb)
				}
				if ea.At < prev {
					t.Fatalf("event %d: time went backwards: %v after %v", i, ea.At, prev)
				}
				prev = ea.At
				if !(ea.Hold > 0) || math.IsInf(ea.Hold, 0) || math.IsNaN(ea.Hold) {
					t.Fatalf("event %d: bad holding time %v", i, ea.Hold)
				}
			}
		})
	}
}

// TestSourceReset: Reset with the construction seed replays the stream
// bit for bit, including stateful components (MMPP phase, lazily drawn
// permutations).
func TestSourceReset(t *testing.T) {
	seeds := map[string]uint64{
		"poisson-exp-uniform":        0xA11CE,
		"mmpp-lognormal-hotspot":     0xB0B,
		"diurnal-pareto-permutation": 0xC4B1D,
	}
	for name, mk := range sourceVariants(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			first := make([]netsim.Arrival, 500)
			for i := range first {
				s.Next(&first[i])
			}
			s.Reset(seeds[name])
			var e netsim.Arrival
			for i := range first {
				s.Next(&e)
				if e != first[i] {
					t.Fatalf("event %d after Reset: %+v vs %+v", i, e, first[i])
				}
			}
		})
	}
}

// TestSourceStatistics: coarse sanity on the generated distributions —
// mean arrival rate and mean hold near their configured values, hotspot
// traffic concentrated as configured, permutations consistent.
func TestSourceStatistics(t *testing.T) {
	ins, outs := smallTerminals(t)
	const n = 50000

	t.Run("poisson-rate", func(t *testing.T) {
		s := netsim.NewTrafficSource(1, netsim.NewPoisson(2.0), netsim.NewExpHolding(3.0), netsim.NewUniformPattern(ins, outs))
		var e netsim.Arrival
		var holdSum float64
		for i := 0; i < n; i++ {
			s.Next(&e)
			holdSum += e.Hold
		}
		rate := float64(n) / e.At
		if rate < 1.9 || rate > 2.1 {
			t.Fatalf("empirical rate %v, want ~2.0", rate)
		}
		if mean := holdSum / n; mean < 2.85 || mean > 3.15 {
			t.Fatalf("empirical mean hold %v, want ~3.0", mean)
		}
	})

	t.Run("hotspot-fraction", func(t *testing.T) {
		hot := map[int32]bool{outs[0]: true, outs[1]: true}
		s := netsim.NewTrafficSource(2, netsim.NewPoisson(1.0), netsim.NewExpHolding(1.0),
			netsim.NewHotspotPattern(ins, outs, 2, 0.7))
		var e netsim.Arrival
		hits := 0
		for i := 0; i < n; i++ {
			s.Next(&e)
			if hot[e.Out] {
				hits++
			}
		}
		// 70% directed + uniform spillover (2 of len(outs)) from the rest.
		want := 0.7 + 0.3*2.0/float64(len(outs))
		got := float64(hits) / n
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("hot fraction %v, want ~%v", got, want)
		}
	})

	t.Run("permutation-consistent", func(t *testing.T) {
		s := netsim.NewTrafficSource(3, netsim.NewPoisson(1.0), netsim.NewExpHolding(1.0),
			netsim.NewPermutationPattern(ins, outs))
		var e netsim.Arrival
		assigned := map[int32]int32{}
		seen := map[int32]bool{}
		for i := 0; i < 5000; i++ {
			s.Next(&e)
			if out, ok := assigned[e.In]; ok {
				if out != e.Out {
					t.Fatalf("input %d mapped to both %d and %d", e.In, out, e.Out)
				}
				continue
			}
			if seen[e.Out] {
				t.Fatalf("output %d assigned to two inputs", e.Out)
			}
			assigned[e.In] = e.Out
			seen[e.Out] = true
		}
		if len(assigned) != len(ins) {
			t.Fatalf("saw %d of %d inputs", len(assigned), len(ins))
		}
	})

	t.Run("mmpp-bursty", func(t *testing.T) {
		// Burst state 16× the base rate: the gap distribution must be
		// overdispersed relative to Poisson (squared-CV well above 1).
		s := netsim.NewTrafficSource(4, netsim.NewMMPP(0.5, 8.0, 20.0, 2.5),
			netsim.NewExpHolding(1.0), netsim.NewUniformPattern(ins, outs))
		var e netsim.Arrival
		prev := 0.0
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			s.Next(&e)
			g := e.At - prev
			prev = e.At
			sum += g
			sum2 += g * g
		}
		mean := sum / n
		cv2 := (sum2/n - mean*mean) / (mean * mean)
		if cv2 < 1.5 {
			t.Fatalf("MMPP gap CV² = %v, want clearly overdispersed (> 1.5)", cv2)
		}
	})
}

// TestSourceConstructorValidation: each constructor rejects nonsense.
func TestSourceConstructorValidation(t *testing.T) {
	ins, outs := smallTerminals(t)
	cases := map[string]func(){
		"nil-component":      func() { netsim.NewTrafficSource(1, nil, netsim.NewExpHolding(1), netsim.NewUniformPattern(ins, outs)) },
		"poisson-rate":       func() { netsim.NewPoisson(0) },
		"mmpp-rates":         func() { netsim.NewMMPP(0, 0, 1, 1) },
		"mmpp-sojourn":       func() { netsim.NewMMPP(1, 2, 0, 1) },
		"diurnal-depth":      func() { netsim.NewDiurnal(1, 1.5, 10) },
		"exp-mean":           func() { netsim.NewExpHolding(-1) },
		"lognormal-sigma":    func() { netsim.NewLognormalHolding(0, -0.5) },
		"pareto-shape":       func() { netsim.NewParetoHolding(0, 1) },
		"uniform-empty":      func() { netsim.NewUniformPattern(nil, outs) },
		"hotspot-count":      func() { netsim.NewHotspotPattern(ins, outs, len(outs)+1, 0.5) },
		"hotspot-frac":       func() { netsim.NewHotspotPattern(ins, outs, 1, 1.5) },
		"permutation-excess": func() { netsim.NewPermutationPattern(outs, ins[:1]) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("constructor accepted invalid arguments")
				}
			}()
			fn()
		})
	}
}
