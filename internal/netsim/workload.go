package netsim

// Workload is the closed-loop churn generator — the feedback-coupled
// counterpart of the open-loop Source seam (source.go): instead of
// timestamped arrivals drawn independently of the network, it emits
// connect batches and release picks whose composition depends on the
// engine's own accept/reject decisions, the Theorem-2 churn protocol.
// It is engine-agnostic — the same stream drives the link-level Sim, the
// sequential route.Router, and route.ShardedEngine — which is what the
// differential harnesses lean on: identical decisions imply identical
// subsequent workload, so decision streams of two engines can be compared
// step by step under arbitrary churn.
//
// The generator owns the idle/live bookkeeping: NextConnects draws
// endpoint-distinct requests from the idle pools, Commit feeds decisions
// back (accepted circuits go live, rejected endpoints return to idle), and
// NextReleases picks live circuits to tear down. All randomness comes from
// one rng stream seeded at construction, so a workload is reproducible
// bit-for-bit given the same decision feedback.

import (
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

type liveCircuit struct{ in, out int32 }

// Workload generates operational connect/release churn. Not safe for
// concurrent use.
type Workload struct {
	r       rng.RNG
	idleIn  []int32
	idleOut []int32
	live    []liveCircuit

	reqs []route.Request // last NextConnects batch (Commit consumes it)
	rels []route.Request // NextReleases scratch
}

// NewWorkload returns a workload over the given terminal sets, seeded
// deterministically.
func NewWorkload(inputs, outputs []int32, seed uint64) *Workload {
	w := &Workload{
		idleIn:  append([]int32(nil), inputs...),
		idleOut: append([]int32(nil), outputs...),
	}
	w.r.Reseed(seed)
	return w
}

// Live returns the number of live circuits.
func (w *Workload) Live() int { return len(w.live) }

// Idle returns the number of idle input terminals.
func (w *Workload) Idle() int { return len(w.idleIn) }

// NextConnects draws up to k connect requests with distinct idle
// endpoints, removing them from the idle pools. The batch stays pending
// until Commit reports the decisions. The returned slice is reused by the
// next call.
func (w *Workload) NextConnects(k int) []route.Request {
	if len(w.reqs) != 0 {
		panic("netsim: NextConnects before Commit of the previous batch")
	}
	w.reqs = w.reqs[:0]
	for len(w.reqs) < k && len(w.idleIn) > 0 && len(w.idleOut) > 0 {
		ii := w.r.Intn(len(w.idleIn))
		oo := w.r.Intn(len(w.idleOut))
		in, out := w.idleIn[ii], w.idleOut[oo]
		w.idleIn[ii] = w.idleIn[len(w.idleIn)-1]
		w.idleIn = w.idleIn[:len(w.idleIn)-1]
		w.idleOut[oo] = w.idleOut[len(w.idleOut)-1]
		w.idleOut = w.idleOut[:len(w.idleOut)-1]
		w.reqs = append(w.reqs, route.Request{In: in, Out: out})
	}
	return w.reqs
}

// Commit feeds the engine's decisions for the pending batch back:
// request i was accepted iff res[i].Path != nil — the route.Result
// convention every engine produces, so the engine's ConnectBatch output
// (or a prefix covering the batch) is passed straight through. Accepted
// circuits go live; rejected endpoints return to the idle pools.
func (w *Workload) Commit(res []route.Result) {
	if len(res) < len(w.reqs) {
		panic("netsim: Commit with fewer results than pending requests")
	}
	for i, rq := range w.reqs {
		if res[i].Path != nil {
			w.live = append(w.live, liveCircuit{rq.In, rq.Out})
		} else {
			w.idleIn = append(w.idleIn, rq.In)
			w.idleOut = append(w.idleOut, rq.Out)
		}
	}
	w.reqs = w.reqs[:0]
}

// NextReleases removes up to k uniformly chosen live circuits and returns
// them as (In, Out) pairs for the caller to tear down. The returned slice
// is reused by the next call.
func (w *Workload) NextReleases(k int) []route.Request {
	w.rels = w.rels[:0]
	for len(w.rels) < k && len(w.live) > 0 {
		ci := w.r.Intn(len(w.live))
		c := w.live[ci]
		w.live[ci] = w.live[len(w.live)-1]
		w.live = w.live[:len(w.live)-1]
		w.idleIn = append(w.idleIn, c.in)
		w.idleOut = append(w.idleOut, c.out)
		w.rels = append(w.rels, route.Request{In: c.in, Out: c.out})
	}
	return w.rels
}
