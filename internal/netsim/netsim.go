// This file is the concurrent, message-passing simulator of circuit
// switching at the link level: every link (vertex) of the network runs as
// its own goroutine and owns its state exclusively, in CSP style — no
// locks, no shared mutable memory. (Package doc: doc.go.)
//
// Circuit establishment follows the classic distributed probe/ack/release
// protocol with backtracking, the on-line path-selection setting of
// Arora–Leighton–Maggs [ALM] that the paper's §4 alludes to:
//
//   - a PROBE for circuit c travels forward from the requesting input,
//     tentatively reserving each link it visits;
//   - a link that is busy, discarded by repair, or out of untried forward
//     switches answers NACK, and the probe backtracks and tries the next
//     switch (distributed DFS);
//   - when the probe reaches the requested output, an ACK travels back
//     along the reserved chain confirming the circuit;
//   - RELEASE tears the chain down forward from the input.
//
// Because each link is a single goroutine, reservation conflicts are
// resolved by message order alone: two circuits can never both hold one
// link, and the safety property (established circuits are vertex-disjoint)
// holds by construction. The simulator exercises exactly the paper's
// greedy-routing claim in a distributed setting: on the repaired Network
// 𝒩 with the majority-access certificate, probes always succeed.
package netsim

import (
	"fmt"
	"sync"
	"time"

	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
)

// kind discriminates protocol messages.
type kind uint8

const (
	probe kind = iota
	ack
	nack
	release
)

// message is one protocol datagram between link goroutines.
type message struct {
	kind kind
	cid  int64 // circuit ID
	from int32 // sending vertex (-1 = the request driver)
	dst  int32 // requested output terminal (probe only)
}

// result reports a request outcome to the caller.
type result struct {
	cid int64
	ok  bool
}

// probeState is a link's bookkeeping for one in-flight circuit.
type probeState struct {
	parent  int32 // upstream vertex (-1 for the input terminal)
	nextOut int   // next out-switch index to try
	child   int32 // downstream vertex once known (-1 until then)
	dstOf   int32 // the circuit's requested output terminal
}

// Sim runs one goroutine per link over a (possibly repaired) network.
type Sim struct {
	g        *graph.Graph
	vertexOK []bool // nil = all usable
	edgeOK   []bool
	inbox    []chan message
	results  chan result
	quit     chan struct{}
	wg       sync.WaitGroup

	mu      sync.Mutex
	pending map[int64]chan bool // circuit ID → caller's completion channel
	nextCid int64
}

// inboxCap bounds per-link mailbox size; each circuit has at most one
// outstanding message per link, so capacity proportional to degree plus
// slack prevents send-blocking in practice.
const inboxCap = 64

// New starts a simulator over the fault-free network g.
func New(g *graph.Graph) *Sim { return start(g, nil, nil) }

// NewRepaired starts a simulator over the network repaired from inst by
// the paper's discard rule.
func NewRepaired(inst *fault.Instance) *Sim {
	usable := inst.Repair()
	edgeOK := make([]bool, inst.G.NumEdges())
	for e := range edgeOK {
		edgeOK[e] = inst.RepairedEdgeUsable(usable, int32(e))
	}
	return start(inst.G, usable, edgeOK)
}

func start(g *graph.Graph, vertexOK, edgeOK []bool) *Sim {
	n := g.NumVertices()
	s := &Sim{
		g:        g,
		vertexOK: vertexOK,
		edgeOK:   edgeOK,
		inbox:    make([]chan message, n),
		results:  make(chan result, 256),
		quit:     make(chan struct{}),
		pending:  make(map[int64]chan bool),
	}
	for v := range s.inbox {
		s.inbox[v] = make(chan message, inboxCap)
	}
	s.wg.Add(n + 1)
	for v := 0; v < n; v++ {
		go s.linkLoop(int32(v))
	}
	go s.dispatchLoop()
	return s
}

// Close shuts down all link goroutines. Pending requests are abandoned.
func (s *Sim) Close() {
	close(s.quit)
	s.wg.Wait()
}

// usableVertex reports whether v survived repair.
func (s *Sim) usableVertex(v int32) bool { return s.vertexOK == nil || s.vertexOK[v] }

func (s *Sim) usableEdge(e int32) bool { return s.edgeOK == nil || s.edgeOK[e] }

// send delivers m to v's mailbox (dropping only on shutdown).
func (s *Sim) send(v int32, m message) {
	//ftlint:ignore determinism delivery-vs-shutdown race is inherent to the CSP link protocol; message outcomes feed no committed table
	select {
	case s.inbox[v] <- m:
	case <-s.quit:
	}
}

// dispatchLoop routes results back to the blocked callers.
func (s *Sim) dispatchLoop() {
	defer s.wg.Done()
	for {
		//ftlint:ignore determinism result-vs-shutdown race is inherent to the CSP link protocol; dispatch order never reaches committed output
		select {
		case r := <-s.results:
			s.mu.Lock()
			ch := s.pending[r.cid]
			delete(s.pending, r.cid)
			s.mu.Unlock()
			if ch != nil {
				ch <- r.ok
			}
		case <-s.quit:
			return
		}
	}
}

// linkLoop is the per-link goroutine: it exclusively owns the link's
// reservation state and its per-circuit probe bookkeeping.
func (s *Sim) linkLoop(v int32) {
	defer s.wg.Done()
	var owner int64 = -1 // circuit holding this link (-1 = idle)
	states := make(map[int64]*probeState)
	for {
		//ftlint:ignore determinism per-link message arrival order is the protocol's concurrency model; the simulator measures protocol behavior, not committed tables
		select {
		case <-s.quit:
			return
		case m := <-s.inbox[v]:
			switch m.kind {
			case probe:
				if v == m.dst {
					// Output terminal: accept if idle.
					if owner < 0 {
						owner = m.cid
						s.send(m.from, message{kind: ack, cid: m.cid, from: v})
					} else {
						s.send(m.from, message{kind: nack, cid: m.cid, from: v})
					}
					continue
				}
				if owner >= 0 || !s.usableVertex(v) || (s.g.IsTerminal(v) && m.from >= 0) {
					// Busy, discarded, or a foreign terminal: refuse.
					s.send(m.from, message{kind: nack, cid: m.cid, from: v})
					continue
				}
				owner = m.cid // tentative reservation
				st := &probeState{parent: m.from, child: -1, dstOf: m.dst}
				states[m.cid] = st
				if !s.advance(v, st, m.cid) {
					owner = -1
					delete(states, m.cid)
					s.replyUp(st.parent, message{kind: nack, cid: m.cid, from: v})
				}
			case nack:
				st := states[m.cid]
				if st == nil || owner != m.cid {
					continue // stale
				}
				if !s.advance(v, st, m.cid) {
					owner = -1
					delete(states, m.cid)
					s.replyUp(st.parent, message{kind: nack, cid: m.cid, from: v})
				}
			case ack:
				st := states[m.cid]
				if st == nil || owner != m.cid {
					continue
				}
				s.replyUp(st.parent, message{kind: ack, cid: m.cid, from: v})
			case release:
				st := states[m.cid]
				if owner == m.cid {
					owner = -1
				}
				if st != nil {
					if st.child >= 0 {
						s.send(st.child, message{kind: release, cid: m.cid})
					}
					delete(states, m.cid)
				}
			}
		}
	}
}

// advance sends the probe for cid out of v's next untried usable switch;
// it returns false when all switches are exhausted.
func (s *Sim) advance(v int32, st *probeState, cid int64) bool {
	outs := s.g.OutEdges(v)
	for st.nextOut < len(outs) {
		e := outs[st.nextOut]
		st.nextOut++
		if !s.usableEdge(e) {
			continue
		}
		w := s.g.EdgeTo(e)
		if !s.usableVertex(w) {
			continue
		}
		if s.g.IsTerminal(w) && w != st.dstOf {
			continue
		}
		st.child = w
		s.send(w, message{kind: probe, cid: cid, from: v, dst: st.dstOf})
		return true
	}
	st.child = -1
	return false
}

// replyUp sends m to the parent vertex, or completes the request when the
// parent is the driver (-1).
func (s *Sim) replyUp(parent int32, m message) {
	if parent >= 0 {
		s.send(parent, m)
		return
	}
	//ftlint:ignore determinism completion-vs-shutdown race is inherent to the CSP link protocol; message outcomes feed no committed table
	select {
	case s.results <- result{cid: m.cid, ok: m.kind == ack}:
	case <-s.quit:
	}
}

// Request establishes a circuit from input in to output out, blocking
// until the distributed protocol resolves (or timeout). It returns the
// circuit ID for Release.
func (s *Sim) Request(in, out int32, timeout time.Duration) (int64, error) {
	if !s.usableVertex(in) || !s.usableVertex(out) {
		return 0, fmt.Errorf("netsim: terminal discarded by repair")
	}
	done := make(chan bool, 1)
	s.mu.Lock()
	s.nextCid++
	cid := s.nextCid
	s.pending[cid] = done
	s.mu.Unlock()

	// The input terminal participates as the first link of the chain.
	s.send(in, message{kind: probe, cid: cid, from: -1, dst: out})

	//ftlint:ignore determinism completion-vs-timeout is the caller-visible contract of a blocking distributed request
	select {
	case ok := <-done:
		if !ok {
			return 0, fmt.Errorf("netsim: no idle path for circuit %d", cid)
		}
		return cid, nil
	//ftlint:ignore determinism the timeout bounds a blocking wait; expiry affects liveness of this request only, never committed output
	case <-time.After(timeout):
		s.mu.Lock()
		delete(s.pending, cid)
		s.mu.Unlock()
		return 0, fmt.Errorf("netsim: circuit %d timed out", cid)
	}
}

// Release tears down an established circuit, starting at its input.
func (s *Sim) Release(in int32, cid int64) {
	s.send(in, message{kind: release, cid: cid})
}
