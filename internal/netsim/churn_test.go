package netsim_test

import (
	"fmt"
	"testing"

	"ftcsn/internal/core"
	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
	"ftcsn/internal/netsim"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

// repairedEngines builds a (sequential router, masks) reference pair and a
// constructor for engines adopting the same repaired masks, for a fault
// instance drawn at eps.
func repairedMasks(t *testing.T, nw *core.Network, eps float64, seed uint64) core.Masks {
	t.Helper()
	inst := fault.Inject(nw.G, fault.Symmetric(eps), rng.New(seed))
	var m core.Masks
	core.RepairMasksInto(inst, &m)
	m.OutAllowed = nw.G.BuildOutAllowed(m.EdgeOK, m.VertexOK, nil)
	m.InAllowed = nw.G.BuildInAllowed(m.EdgeOK, m.VertexOK, nil)
	return m
}

// TestChurnDriverMatchesPerOp is the lockstep differential for the
// batch-shaped churn generator: on fault-free and heavily faulted repaired
// networks (the latter forcing endpoint and no-path rejections, i.e. the
// rollback path), ChurnDriver.Run over every sequential-semantics engine
// must reproduce core.ChurnWith bit for bit — aggregates, per-circuit
// paths, and the generator's final RNG state.
func TestChurnDriverMatchesPerOp(t *testing.T) {
	nw := buildSmall(t)
	for _, eps := range []float64{0, 0.08, 0.25} {
		m := repairedMasks(t, nw, eps, 0xC0FFEE+uint64(eps*1000))

		// Per-op reference.
		ref := route.NewRouter(nw.G)
		ref.EnablePathReuse()
		ref.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
		const ops = 400
		refR := rng.New(42)
		wantC, wantF, wantP := core.ChurnWith(ref, nw.G.Inputs(), nw.G.Outputs(), ops, refR, &core.ChurnScratch{})
		wantState := refR.State()
		wantPaths := pathSnapshot(ref, nw.G)

		engines := map[string]route.Engine{
			"router": func() route.Engine {
				rt := route.NewRouter(nw.G)
				rt.EnablePathReuse()
				return rt
			}(),
		}
		for _, shards := range []int{1, 2, 3, 8} {
			engines[fmt.Sprintf("sharded-%d", shards)] = route.NewShardedEngine(nw.G, shards)
		}
		for name, eng := range engines {
			eng.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
			eng.MasksChanged()
			var cd netsim.ChurnDriver
			r := rng.New(42)
			gotC, gotF, gotP := cd.Run(eng, nw.G.Inputs(), nw.G.Outputs(), ops, r)
			if gotC != wantC || gotF != wantF || gotP != wantP {
				t.Fatalf("eps=%v %s: (connects,failures,pathTotal)=(%d,%d,%d), want (%d,%d,%d)",
					eps, name, gotC, gotF, gotP, wantC, wantF, wantP)
			}
			if r.State() != wantState {
				t.Fatalf("eps=%v %s: final RNG state diverged", eps, name)
			}
			if got := pathSnapshot(eng, nw.G); got != wantPaths {
				t.Fatalf("eps=%v %s: live circuit paths diverged:\n%s\nwant:\n%s", eps, name, got, wantPaths)
			}
		}
		if wantF == 0 && eps >= 0.25 {
			t.Logf("eps=%v produced no failures; rollback path unexercised here", eps)
		}
	}
}

// pathSnapshot renders every live circuit's path via the Engine seam, in
// input order, so two engines' states can be compared exactly.
func pathSnapshot(eng route.Engine, g *graph.Graph) string {
	s := ""
	for _, in := range g.Inputs() {
		for _, out := range g.Outputs() {
			if p := eng.PathOf(in, out); p != nil {
				s += fmt.Sprintf("(%d,%d)=%v;", in, out, p)
			}
		}
	}
	return s
}

// engineChurnPerOp replays the coin-flip churn protocol one op at a time
// through the Engine seam (size-1 ConnectBatch calls) — the per-op
// reference for engines that have no route.Router counterpart, such as
// the sequential-mode concurrent router.
func engineChurnPerOp(eng route.Engine, inputs, outputs []int32, ops int, r *rng.RNG) (connects, failures, pathTotal int) {
	type circuit struct{ in, out int32 }
	var live []circuit
	idleIn := append([]int32(nil), inputs...)
	idleOut := append([]int32(nil), outputs...)
	var res []route.Result
	for op := 0; op < ops; op++ {
		doConnect := len(live) == 0 || (len(idleIn) > 0 && r.Bernoulli(0.5))
		if doConnect && len(idleIn) > 0 && len(idleOut) > 0 {
			ii := r.Intn(len(idleIn))
			oo := r.Intn(len(idleOut))
			in, out := idleIn[ii], idleOut[oo]
			connects++
			res = eng.ConnectBatch([]route.Request{{In: in, Out: out}}, res)
			if res[0].Path == nil {
				failures++
				continue
			}
			pathTotal += len(res[0].Path) - 1
			idleIn[ii] = idleIn[len(idleIn)-1]
			idleIn = idleIn[:len(idleIn)-1]
			idleOut[oo] = idleOut[len(idleOut)-1]
			idleOut = idleOut[:len(idleOut)-1]
			live = append(live, circuit{in, out})
		} else if len(live) > 0 {
			ci := r.Intn(len(live))
			c := live[ci]
			if err := eng.Disconnect(c.in, c.out); err == nil {
				idleIn = append(idleIn, c.in)
				idleOut = append(idleOut, c.out)
			}
			live[ci] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return connects, failures, pathTotal
}

// TestChurnDriverConcurrentSequential: the concurrent router's Sequential
// mode has the sequential-batch semantics ChurnDriver speculation
// requires — batch-shaped churn on it must match the per-op protocol on a
// second identically-configured router bit for bit (aggregates, final RNG
// state, and every live circuit's path), including under heavy faults
// where rejections force the rollback path.
func TestChurnDriverConcurrentSequential(t *testing.T) {
	nw := buildSmall(t)
	for _, eps := range []float64{0, 0.08, 0.25} {
		m := repairedMasks(t, nw, eps, 0xC0FFEE+uint64(eps*1000))

		ref := route.NewConcurrentRouter(nw.G)
		ref.Sequential = true
		ref.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
		const ops = 400
		refR := rng.New(42)
		wantC, wantF, wantP := engineChurnPerOp(ref, nw.G.Inputs(), nw.G.Outputs(), ops, refR)

		cr := route.NewConcurrentRouter(nw.G)
		cr.Sequential = true
		cr.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
		var cd netsim.ChurnDriver
		r := rng.New(42)
		gotC, gotF, gotP := cd.Run(cr, nw.G.Inputs(), nw.G.Outputs(), ops, r)
		if gotC != wantC || gotF != wantF || gotP != wantP {
			t.Fatalf("eps=%v: (connects,failures,pathTotal)=(%d,%d,%d), want (%d,%d,%d)",
				eps, gotC, gotF, gotP, wantC, wantF, wantP)
		}
		if r.State() != refR.State() {
			t.Fatalf("eps=%v: final RNG state diverged", eps)
		}
		if got, want := pathSnapshot(cr, nw.G), pathSnapshot(ref, nw.G); got != want {
			t.Fatalf("eps=%v: live circuit paths diverged:\n%s\nwant:\n%s", eps, got, want)
		}
	}
}

// TestChurnDriverRollbackExercised pins down that the heavy-fault case
// actually takes the rollback path (otherwise the differential above
// proves less than it claims).
func TestChurnDriverRollbackExercised(t *testing.T) {
	nw := buildSmall(t)
	m := repairedMasks(t, nw, 0.25, 0xC0FFEE+250)
	ref := route.NewRouter(nw.G)
	ref.EnablePathReuse()
	ref.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
	r := rng.New(42)
	_, failures, _ := core.ChurnWith(ref, nw.G.Inputs(), nw.G.Outputs(), 400, r, &core.ChurnScratch{})
	if failures == 0 {
		t.Fatal("heavy-fault stream produced no failed connects; pick a harsher seed/eps")
	}
}

// TestChurnDriverAllocFree: the driver's steady state allocates nothing on
// a warmed-up engine (the Evaluator's 0 allocs/trial gate extends through
// the churn seam).
func TestChurnDriverAllocFree(t *testing.T) {
	nw := buildSmall(t)
	se := route.NewShardedEngine(nw.G, 2)
	var cd netsim.ChurnDriver
	r := rng.New(7)
	run := func() {
		se.Reset()
		cd.Run(se, nw.G.Inputs(), nw.G.Outputs(), 200, r)
	}
	run() // warm up scratch
	if allocs := testing.AllocsPerRun(20, run); allocs > 0 {
		t.Fatalf("churn driver allocated %.1f/run in steady state", allocs)
	}
}

// TestChurnDriverIncrementalMasks runs the full per-epoch lifecycle the
// trial pipeline performs — fault diff, incremental mask update, engine
// notification, batch-shaped churn — with the sharded engine kept current
// through MasksChangedDiff only, never a full MasksChanged. Against a
// sequential router over the same evolving shared masks, every round's
// aggregates, live-circuit paths, and final RNG state must stay
// bit-identical: the incremental guide seam cannot move a single churn
// decision.
func TestChurnDriverIncrementalMasks(t *testing.T) {
	nw := buildSmall(t)
	g := nw.G
	inst := fault.NewInstance(g)
	mu := core.NewMaskUpdater(g)
	var m core.Masks
	mu.Init(inst, &m)

	ref := route.NewRouter(g)
	ref.EnablePathReuse()
	ref.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)
	se := route.NewShardedEngine(g, 3)
	se.SetMasksShared(m.VertexOK, m.EdgeOK, m.OutAllowed)

	bi := fault.NewBatchInjector(g)
	const rounds = 10
	bi.FillStream(fault.Symmetric(0.05), 0x10C5, 0, rounds)
	var cdRef, cdSe netsim.ChurnDriver
	for round := 0; round < rounds; round++ {
		diff := bi.ApplyNext(inst)
		edges := mu.Apply(inst, &m, diff)
		ref.MasksChanged()
		se.MasksChangedDiff(mu.ChangedVertices(), edges)

		refR := rng.New(uint64(round) + 9)
		r := rng.New(uint64(round) + 9)
		wantC, wantF, wantP := cdRef.Run(ref, g.Inputs(), g.Outputs(), 200, refR)
		gotC, gotF, gotP := cdSe.Run(se, g.Inputs(), g.Outputs(), 200, r)
		if gotC != wantC || gotF != wantF || gotP != wantP {
			t.Fatalf("round %d: (connects,failures,pathTotal)=(%d,%d,%d), want (%d,%d,%d)",
				round, gotC, gotF, gotP, wantC, wantF, wantP)
		}
		if r.State() != refR.State() {
			t.Fatalf("round %d: final RNG state diverged", round)
		}
		if got, want := pathSnapshot(se, g), pathSnapshot(ref, g); got != want {
			t.Fatalf("round %d: live circuit paths diverged:\n%s\nwant:\n%s", round, got, want)
		}
		ref.Reset()
		se.Reset()
	}
}

// TestChurnDriverUnequalTerminalSets: with fewer outputs than inputs the
// output pool can drain while inputs remain idle; the run must end cleanly
// (matching the per-op generator's release branch) instead of drawing
// Intn(0).
func TestChurnDriverUnequalTerminalSets(t *testing.T) {
	nw := buildSmall(t)
	ins := nw.G.Inputs()
	outs := nw.G.Outputs()[:2]
	ref := route.NewRouter(nw.G)
	ref.EnablePathReuse()
	refR := rng.New(5)
	wantC, wantF, wantP := core.ChurnWith(ref, ins, outs, 300, refR, &core.ChurnScratch{})

	eng := route.NewRouter(nw.G)
	eng.EnablePathReuse()
	var cd netsim.ChurnDriver
	r := rng.New(5)
	gotC, gotF, gotP := cd.Run(eng, ins, outs, 300, r)
	if gotC != wantC || gotF != wantF || gotP != wantP || r.State() != refR.State() {
		t.Fatalf("unequal sets diverged: got (%d,%d,%d) want (%d,%d,%d)", gotC, gotF, gotP, wantC, wantF, wantP)
	}
}
