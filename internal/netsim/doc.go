// Package netsim models session traffic against the routing layer, at
// two levels.
//
// The traffic subsystem (source.go, serve.go) is the open-loop,
// virtual-time layer: a Source emits a deterministic stream of
// timestamped Arrivals — composed from an ArrivalProcess (Poisson, MMPP
// bursts, Diurnal modulation), a HoldingDist (exponential, lognormal,
// Pareto), and a destination Pattern (uniform, hotspot, permutation),
// all drawing from one seeded rng stream — and Loop.Serve replays that
// stream against any route.Engine under a virtual clock: due arrivals
// are batched into ConnectBatch calls, admissions schedule their
// departures, and SLO-grade statistics (stats.SLO) stream out. No wall
// clock anywhere: a (seed, config) pair reproduces the run bit for bit,
// which the ftlint determinism analyzer enforces statically.
//
// The closed-loop layer (workload.go, churn.go) is the Theorem-2 churn
// protocol: Workload generates connect/release batches by coin flip with
// engine feedback, and ChurnDriver drives the whole protocol against an
// engine, bit-identical to the per-op reference core.ChurnWith.
//
// netsim.go is a third, concurrent layer: a CSP-style message-passing
// simulator of the distributed probe/ack/release circuit protocol (its
// file comment has the details). It validates the paper's greedy-routing
// claim in a distributed setting and is deliberately outside the
// deterministic serving path.
package netsim
