package netsim_test

import (
	"testing"

	"ftcsn/internal/core"
	"ftcsn/internal/fault"
	"ftcsn/internal/netsim"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
	"ftcsn/internal/stats"
)

func openLoopSource(nw *core.Network, seed uint64, rate float64) *netsim.TrafficSource {
	return netsim.NewTrafficSource(seed,
		netsim.NewPoisson(rate),
		netsim.NewExpHolding(4.0),
		netsim.NewUniformPattern(nw.Inputs(), nw.Outputs()))
}

// TestServeDeterministic: two runs with the same (seed, config) produce
// identical cumulative snapshots and identical windowed report
// sequences, on both the sequential router and the sharded engine.
func TestServeDeterministic(t *testing.T) {
	nw, err := core.Build(core.DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	engines := map[string]func() route.Engine{
		"router":  func() route.Engine { rt := route.NewRouter(nw.G); rt.EnablePathReuse(); return rt },
		"sharded": func() route.Engine { return route.NewShardedEngine(nw.G, 4) },
	}
	for name, mk := range engines {
		t.Run(name, func(t *testing.T) {
			run := func() (stats.SLOSnapshot, []stats.SLOSnapshot) {
				var windows []stats.SLOSnapshot
				var slo stats.SLO
				cfg := netsim.ServeConfig{
					MaxArrivals: 3000,
					ReportEvery: 25.0,
					OnReport:    func(tm float64, s *stats.SLO) { windows = append(windows, s.Window()) },
				}
				if err := netsim.Serve(mk(), openLoopSource(nw, 0x5EED, 6.0), cfg, &slo); err != nil {
					t.Fatal(err)
				}
				return slo.Snapshot(), windows
			}
			s1, w1 := run()
			s2, w2 := run()
			if s1 != s2 {
				t.Fatalf("cumulative snapshots differ:\n%+v\n%+v", s1, s2)
			}
			if len(w1) == 0 || len(w1) != len(w2) {
				t.Fatalf("window counts: %d vs %d (want equal, > 0)", len(w1), len(w2))
			}
			for i := range w1 {
				if w1[i] != w2[i] {
					t.Fatalf("window %d differs:\n%+v\n%+v", i, w1[i], w2[i])
				}
			}
		})
	}
}

// TestServeAccounting: conservation invariants between the SLO view and
// the engine's own counters.
func TestServeAccounting(t *testing.T) {
	nw, err := core.Build(core.DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	rt := route.NewRouter(nw.G)
	rt.EnablePathReuse()
	var slo stats.SLO
	err = netsim.Serve(rt, openLoopSource(nw, 42, 8.0), netsim.ServeConfig{MaxArrivals: 2000}, &slo)
	if err != nil {
		t.Fatal(err)
	}
	sn := slo.Snapshot()
	if sn.Offered != 2000 {
		t.Fatalf("offered %d, want 2000", sn.Offered)
	}
	if sn.Accepted+sn.Rejected != sn.Offered {
		t.Fatalf("accepted %d + rejected %d != offered %d", sn.Accepted, sn.Rejected, sn.Offered)
	}
	// Unbounded horizon: every admitted circuit departs by the end.
	if sn.Departed != sn.Accepted || sn.Live != 0 || slo.Live() != 0 {
		t.Fatalf("departed %d / live %d, want all %d accepted gone", sn.Departed, sn.Live, sn.Accepted)
	}
	if int64(rt.ActiveCircuits()) != sn.Live {
		t.Fatalf("engine still holds %d circuits", rt.ActiveCircuits())
	}
	es := rt.Stats()
	if es.Accepted != sn.Accepted || es.Rejected != sn.Rejected {
		t.Fatalf("engine stats %+v disagree with SLO %+v", es, sn)
	}
	if sn.PeakLive <= 0 || sn.OfferedLoad <= 0 {
		t.Fatalf("degenerate gauges: %+v", sn)
	}
}

// TestServeBatchingDecisionNeutral: batching is a latency/throughput
// knob, not a semantics knob — for sequential-batch engines the decision
// stream is independent of MaxBatch, so everything but the events-behind
// histogram matches between MaxBatch=1 and MaxBatch=64, across engines.
func TestServeBatchingDecisionNeutral(t *testing.T) {
	nw, err := core.Build(core.DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	run := func(eng route.Engine, maxBatch int) stats.SLOSnapshot {
		var slo stats.SLO
		cfg := netsim.ServeConfig{MaxArrivals: 3000, MaxBatch: maxBatch}
		if err := netsim.Serve(eng, openLoopSource(nw, 0xD1FF, 10.0), cfg, &slo); err != nil {
			t.Fatal(err)
		}
		return slo.Snapshot()
	}
	rt := route.NewRouter(nw.G)
	rt.EnablePathReuse()
	one := run(rt, 1)
	se := route.NewShardedEngine(nw.G, 4)
	big := run(se, 64)
	if one.Offered != big.Offered || one.Accepted != big.Accepted ||
		one.Rejected != big.Rejected || one.Departed != big.Departed {
		t.Fatalf("decisions depend on batching/engine:\nMaxBatch=1 router: %+v\nMaxBatch=64 sharded: %+v", one, big)
	}
	if one.MaxBehind != 0 {
		t.Fatalf("MaxBatch=1 run reports nonzero events-behind latency: %d", one.MaxBehind)
	}
	if big.End != one.End {
		t.Fatalf("virtual end times differ: %v vs %v", one.End, big.End)
	}
}

// TestServeHorizon: arrivals after the horizon are discarded and only
// departures due by it drain.
func TestServeHorizon(t *testing.T) {
	nw, err := core.Build(core.DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	rt := route.NewRouter(nw.G)
	rt.EnablePathReuse()
	var slo stats.SLO
	if err := netsim.Serve(rt, openLoopSource(nw, 7, 5.0), netsim.ServeConfig{Horizon: 40.0}, &slo); err != nil {
		t.Fatal(err)
	}
	sn := slo.Snapshot()
	if sn.End > 40.0 {
		t.Fatalf("events past the horizon: end %v", sn.End)
	}
	if sn.Offered < 150 {
		t.Fatalf("suspiciously few arrivals before horizon: %d", sn.Offered)
	}
	// Long-held circuits straddle the horizon and stay live.
	if sn.Live != sn.Accepted-sn.Departed {
		t.Fatalf("live %d != accepted %d - departed %d", sn.Live, sn.Accepted, sn.Departed)
	}
	if int64(rt.ActiveCircuits()) != sn.Live {
		t.Fatalf("engine live count %d != SLO live %d", rt.ActiveCircuits(), sn.Live)
	}
}

// TestServeOverloadMonotonic: on a fixed faulty (repaired) network, the
// rejection rate rises monotonically with offered load and is clearly
// positive in deep overload.
func TestServeOverloadMonotonic(t *testing.T) {
	nw, err := core.Build(core.DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	var fr rng.RNG
	fr.Reseed(99)
	inst := fault.Inject(nw.G, fault.Symmetric(0.04), &fr)
	prev := -1.0
	var rates []float64
	for _, rate := range []float64{1.0, 4.0, 16.0, 64.0} {
		rt := route.NewRepairedRouter(inst)
		rt.EnablePathReuse()
		src := netsim.NewTrafficSource(0x10AD,
			netsim.NewPoisson(rate),
			netsim.NewExpHolding(4.0),
			netsim.NewUniformPattern(nw.Inputs(), nw.Outputs()))
		var slo stats.SLO
		if err := netsim.Serve(rt, src, netsim.ServeConfig{MaxArrivals: 4000}, &slo); err != nil {
			t.Fatal(err)
		}
		rr := slo.Snapshot().RejectRate
		if rr < prev {
			t.Fatalf("rejection rate fell from %v to %v as offered load rose (rates so far %v)", prev, rr, rates)
		}
		prev = rr
		rates = append(rates, rr)
	}
	if prev < 0.2 {
		t.Fatalf("deep overload rejects only %v of arrivals; rates %v", prev, rates)
	}
	if rates[len(rates)-1] <= rates[0] {
		t.Fatalf("rejection rate never rose across a 64× load sweep: %v", rates)
	}
}

// TestServeConfigValidation: nil seams and unbounded configs are refused.
func TestServeConfigValidation(t *testing.T) {
	nw, err := core.Build(core.Params{Nu: 1, Gamma: 0, M: 4, DQ: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rt := route.NewRouter(nw.G)
	src := openLoopSource(nw, 1, 1.0)
	var slo stats.SLO
	if err := netsim.Serve(nil, src, netsim.ServeConfig{Horizon: 1}, &slo); err == nil {
		t.Fatal("nil engine accepted")
	}
	if err := netsim.Serve(rt, src, netsim.ServeConfig{}, &slo); err == nil {
		t.Fatal("unbounded config accepted")
	}
	if err := netsim.Serve(rt, src, netsim.ServeConfig{Horizon: -1, MaxArrivals: 5}, &slo); err == nil {
		t.Fatal("negative horizon accepted")
	}
}

// TestOpenLoopServeAllocFree: a warm Loop serves with zero steady-state
// allocations per event — the acceptance gate for the open-loop path.
func TestOpenLoopServeAllocFree(t *testing.T) {
	nw, err := core.Build(core.DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	se := route.NewShardedEngine(nw.G, 4)
	src := openLoopSource(nw, 0xA110C, 8.0)
	var l netsim.Loop
	var slo stats.SLO
	cfg := netsim.ServeConfig{MaxArrivals: 800}
	run := func() {
		src.Reset(0xA110C)
		se.Reset()
		slo.Reset()
		if err := l.Serve(se, src, cfg, &slo); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the loop scratch (heap, batch slices)
	allocs := testing.AllocsPerRun(3, run)
	if allocs != 0 {
		t.Fatalf("warm open-loop serve allocates %v per run (800 events), want 0", allocs)
	}
}
