package netsim

import (
	"fmt"
	"math"

	"ftcsn/internal/rng"
)

// Arrival is one session-arrival event in virtual time: a connect
// request for (In, Out) arriving at time At that, if admitted, holds its
// circuit for Hold time units. The arrival carries its own departure —
// the serve loop schedules the matching release at At+Hold on admission
// — so one Arrival value describes the session's full (arrival,
// departure) event pair.
type Arrival struct {
	At   float64 // virtual arrival time, non-decreasing across a stream
	Hold float64 // holding time; departure is at At + Hold
	In   int32   // requested input terminal
	Out  int32   // requested output terminal
}

// Source is the traffic seam: a deterministic stream of timestamped
// arrivals. Next fills *a and reports whether an event was produced;
// once it returns false the stream is over. Implementations must emit
// non-decreasing At values and must be deterministic — same constructed
// state, same stream, bit for bit. Sources are pull-driven and
// single-consumer; they are not safe for concurrent use.
type Source interface {
	Next(a *Arrival) bool
}

// ArrivalProcess generates inter-arrival gaps. NextGap draws from r and
// returns the strictly positive virtual-time gap to the next arrival;
// now is the current virtual time, so time-varying processes (diurnal
// modulation) can condition on it. Implementations may keep state (MMPP
// phase) but must draw only from r.
type ArrivalProcess interface {
	NextGap(r *rng.RNG, now float64) float64
}

// HoldingDist generates session holding times, drawing only from r.
type HoldingDist interface {
	NextHold(r *rng.RNG) float64
}

// Pattern generates destination pairs — which input calls which output —
// drawing only from r.
type Pattern interface {
	NextPair(r *rng.RNG) (in, out int32)
}

// Resetter is implemented by stateful traffic components (MMPP phase,
// lazily drawn permutations). TrafficSource.Reset calls it so a reseeded
// source replays its stream from the post-construction state.
type Resetter interface {
	ResetState()
}

// TrafficSource composes an arrival process, a holding-time
// distribution, and a destination pattern into a Source. All three draw
// from the single owned rng stream in a fixed per-event order — gap,
// hold, pair — so a (seed, config) pair reproduces the event stream bit
// for bit regardless of how the pieces are mixed.
type TrafficSource struct {
	r    rng.RNG
	arr  ArrivalProcess
	hold HoldingDist
	pat  Pattern
	now  float64
}

// NewTrafficSource builds a source emitting an unbounded arrival stream
// (bound it with ServeConfig.Horizon or MaxArrivals). Panics if any
// component is nil.
func NewTrafficSource(seed uint64, arr ArrivalProcess, hold HoldingDist, pat Pattern) *TrafficSource {
	if arr == nil || hold == nil || pat == nil {
		panic("netsim: NewTrafficSource with nil component")
	}
	s := &TrafficSource{arr: arr, hold: hold, pat: pat}
	s.r.Reseed(seed)
	return s
}

// Next emits the next arrival. A TrafficSource stream never ends.
//
//ftcsn:hotpath per-event generation on the open-loop serve path
func (s *TrafficSource) Next(a *Arrival) bool {
	s.now += s.arr.NextGap(&s.r, s.now)
	a.At = s.now
	a.Hold = s.hold.NextHold(&s.r)
	a.In, a.Out = s.pat.NextPair(&s.r)
	return true
}

// Reset rewinds the source to its post-construction state under the
// given seed: the virtual clock returns to zero and every stateful
// component (see Resetter) is re-armed, so the next stream replays bit
// for bit.
func (s *TrafficSource) Reset(seed uint64) {
	s.r.Reseed(seed)
	s.now = 0
	if rs, ok := s.arr.(Resetter); ok {
		rs.ResetState()
	}
	if rs, ok := s.hold.(Resetter); ok {
		rs.ResetState()
	}
	if rs, ok := s.pat.(Resetter); ok {
		rs.ResetState()
	}
}

// expDraw draws an Exp(rate) variate. 1-Float64 keeps the argument of
// Log strictly positive (Float64 is in [0, 1)).
func expDraw(r *rng.RNG, rate float64) float64 {
	return -math.Log(1-r.Float64()) / rate
}

// --- arrival processes ------------------------------------------------------

// Poisson is a homogeneous Poisson arrival process: i.i.d. exponential
// gaps at the given rate. One draw per event.
type Poisson struct {
	rate float64
}

// NewPoisson builds a Poisson process with the given arrival rate
// (events per unit virtual time). Panics unless rate > 0.
func NewPoisson(rate float64) Poisson {
	if !(rate > 0) {
		panic(fmt.Sprintf("netsim: NewPoisson rate %v, want > 0", rate))
	}
	return Poisson{rate: rate}
}

// NextGap draws one exponential gap.
//
//ftcsn:hotpath per-event gap draw on the open-loop serve path
func (p Poisson) NextGap(r *rng.RNG, now float64) float64 {
	return expDraw(r, p.rate)
}

// MMPP is a two-state Markov-modulated Poisson process — the standard
// bursty-traffic model: arrivals are Poisson at baseRate in the quiet
// state and burstRate in the burst state, with exponentially distributed
// state sojourns. Gaps are drawn by competing exponentials: within the
// remaining sojourn the current rate wins, otherwise the leftover sojourn
// elapses, the state flips, and the draw repeats.
type MMPP struct {
	baseRate, burstRate float64
	meanBase, meanBurst float64
	inBurst             bool
	sojourn             float64 // remaining time in the current state; 0 = draw lazily
}

// NewMMPP builds a bursty arrival process starting in the quiet (base)
// state. Rates are arrivals per unit time in each state (at least one
// must be positive); means are the expected state sojourns (both must be
// positive).
func NewMMPP(baseRate, burstRate, meanBase, meanBurst float64) *MMPP {
	if baseRate < 0 || burstRate < 0 || baseRate+burstRate <= 0 {
		panic(fmt.Sprintf("netsim: NewMMPP rates (%v, %v), want non-negative with a positive sum", baseRate, burstRate))
	}
	if !(meanBase > 0) || !(meanBurst > 0) {
		panic(fmt.Sprintf("netsim: NewMMPP sojourn means (%v, %v), want > 0", meanBase, meanBurst))
	}
	return &MMPP{baseRate: baseRate, burstRate: burstRate, meanBase: meanBase, meanBurst: meanBurst}
}

// NextGap draws the gap to the next arrival, crossing state boundaries
// as needed.
//
//ftcsn:hotpath per-event gap draw on the open-loop serve path
func (m *MMPP) NextGap(r *rng.RNG, now float64) float64 {
	total := 0.0
	for {
		rate, mean := m.baseRate, m.meanBase
		if m.inBurst {
			rate, mean = m.burstRate, m.meanBurst
		}
		if m.sojourn <= 0 {
			m.sojourn = expDraw(r, 1/mean)
		}
		if rate > 0 {
			g := expDraw(r, rate)
			if g < m.sojourn {
				m.sojourn -= g
				return total + g
			}
		}
		total += m.sojourn
		m.sojourn = 0
		m.inBurst = !m.inBurst
	}
}

// ResetState returns the process to the quiet state with no sojourn
// drawn (the post-construction state).
func (m *MMPP) ResetState() {
	m.inBurst = false
	m.sojourn = 0
}

// Diurnal is a sinusoidally modulated (inhomogeneous) Poisson process:
// rate(t) = base · (1 + depth·sin(2πt/period)). Gaps are drawn by
// Lewis–Shedler thinning against the peak rate base·(1+depth), so the
// process is exact, not a discretization.
type Diurnal struct {
	base, depth, period float64
}

// NewDiurnal builds a diurnally modulated arrival process. base is the
// mean rate (> 0), depth the modulation amplitude in [0, 1], period the
// virtual-time length of one cycle (> 0).
func NewDiurnal(base, depth, period float64) Diurnal {
	if !(base > 0) {
		panic(fmt.Sprintf("netsim: NewDiurnal base rate %v, want > 0", base))
	}
	if depth < 0 || depth > 1 {
		panic(fmt.Sprintf("netsim: NewDiurnal depth %v, want in [0, 1]", depth))
	}
	if !(period > 0) {
		panic(fmt.Sprintf("netsim: NewDiurnal period %v, want > 0", period))
	}
	return Diurnal{base: base, depth: depth, period: period}
}

// NextGap draws the gap to the next accepted (thinned) arrival.
//
//ftcsn:hotpath per-event gap draw on the open-loop serve path
func (d Diurnal) NextGap(r *rng.RNG, now float64) float64 {
	peak := d.base * (1 + d.depth)
	t := now
	for {
		t += expDraw(r, peak)
		rate := d.base * (1 + d.depth*math.Sin(2*math.Pi*t/d.period))
		if r.Float64()*peak < rate {
			return t - now
		}
	}
}

// --- holding-time distributions ---------------------------------------------

// ExpHolding draws exponential holding times — the memoryless M/M/·
// baseline.
type ExpHolding struct {
	mean float64
}

// NewExpHolding builds an exponential holding-time distribution with the
// given mean (> 0).
func NewExpHolding(mean float64) ExpHolding {
	if !(mean > 0) {
		panic(fmt.Sprintf("netsim: NewExpHolding mean %v, want > 0", mean))
	}
	return ExpHolding{mean: mean}
}

// NextHold draws one holding time.
//
//ftcsn:hotpath per-event hold draw on the open-loop serve path
func (e ExpHolding) NextHold(r *rng.RNG) float64 {
	return expDraw(r, 1/e.mean)
}

// LognormalHolding draws lognormal holding times — right-skewed session
// lengths with all moments finite. The mean is exp(mu + sigma²/2).
type LognormalHolding struct {
	mu, sigma float64
}

// NewLognormalHolding builds a lognormal holding-time distribution from
// the log-space location mu and scale sigma (>= 0).
func NewLognormalHolding(mu, sigma float64) LognormalHolding {
	if sigma < 0 {
		panic(fmt.Sprintf("netsim: NewLognormalHolding sigma %v, want >= 0", sigma))
	}
	return LognormalHolding{mu: mu, sigma: sigma}
}

// NextHold draws one holding time.
//
//ftcsn:hotpath per-event hold draw on the open-loop serve path
func (l LognormalHolding) NextHold(r *rng.RNG) float64 {
	return math.Exp(l.mu + l.sigma*r.NormFloat64())
}

// ParetoHolding draws Pareto (heavy-tail) holding times: a few sessions
// hold circuits far longer than the mean, the regime where live-circuit
// peaks diverge from offered load. Mean is scale·shape/(shape-1) for
// shape > 1, infinite otherwise.
type ParetoHolding struct {
	shape, scale float64
}

// NewParetoHolding builds a Pareto holding-time distribution with the
// given tail index shape (> 0) and minimum value scale (> 0).
func NewParetoHolding(shape, scale float64) ParetoHolding {
	if !(shape > 0) || !(scale > 0) {
		panic(fmt.Sprintf("netsim: NewParetoHolding (shape %v, scale %v), want both > 0", shape, scale))
	}
	return ParetoHolding{shape: shape, scale: scale}
}

// NextHold draws one holding time.
//
//ftcsn:hotpath per-event hold draw on the open-loop serve path
func (p ParetoHolding) NextHold(r *rng.RNG) float64 {
	return p.scale * math.Pow(1-r.Float64(), -1/p.shape)
}

// --- destination patterns ---------------------------------------------------

// UniformPattern draws (input, output) pairs uniformly and independently
// — BookSim's "uniform random" traffic.
type UniformPattern struct {
	ins, outs []int32
}

// NewUniformPattern builds a uniform destination pattern over the given
// terminal sets (both non-empty; slices are copied).
func NewUniformPattern(inputs, outputs []int32) *UniformPattern {
	if len(inputs) == 0 || len(outputs) == 0 {
		panic("netsim: NewUniformPattern with empty terminal set")
	}
	p := &UniformPattern{ins: make([]int32, len(inputs)), outs: make([]int32, len(outputs))}
	copy(p.ins, inputs)
	copy(p.outs, outputs)
	return p
}

// NextPair draws one pair (two draws: input, then output).
//
//ftcsn:hotpath per-event pair draw on the open-loop serve path
func (p *UniformPattern) NextPair(r *rng.RNG) (int32, int32) {
	return p.ins[r.Intn(len(p.ins))], p.outs[r.Intn(len(p.outs))]
}

// HotspotPattern draws inputs uniformly but routes a fixed fraction of
// traffic to a small hot set of outputs (the first hotCount outputs) —
// BookSim's hotspot traffic, the classic contention stressor.
type HotspotPattern struct {
	ins, outs []int32
	hotCount  int
	hotFrac   float64
}

// NewHotspotPattern builds a hotspot pattern: with probability hotFrac
// the output is drawn uniformly from outputs[:hotCount], otherwise from
// all outputs. Slices are copied.
func NewHotspotPattern(inputs, outputs []int32, hotCount int, hotFrac float64) *HotspotPattern {
	if len(inputs) == 0 || len(outputs) == 0 {
		panic("netsim: NewHotspotPattern with empty terminal set")
	}
	if hotCount <= 0 || hotCount > len(outputs) {
		panic(fmt.Sprintf("netsim: NewHotspotPattern hotCount %d, want in [1, %d]", hotCount, len(outputs)))
	}
	if hotFrac < 0 || hotFrac > 1 {
		panic(fmt.Sprintf("netsim: NewHotspotPattern hotFrac %v, want in [0, 1]", hotFrac))
	}
	p := &HotspotPattern{ins: make([]int32, len(inputs)), outs: make([]int32, len(outputs)), hotCount: hotCount, hotFrac: hotFrac}
	copy(p.ins, inputs)
	copy(p.outs, outputs)
	return p
}

// NextPair draws one pair (three draws: input, hot coin, output).
//
//ftcsn:hotpath per-event pair draw on the open-loop serve path
func (p *HotspotPattern) NextPair(r *rng.RNG) (int32, int32) {
	in := p.ins[r.Intn(len(p.ins))]
	n := len(p.outs)
	if r.Bernoulli(p.hotFrac) {
		n = p.hotCount
	}
	return in, p.outs[r.Intn(n)]
}

// PermutationPattern fixes a random one-to-one mapping from inputs to
// outputs and draws inputs uniformly — BookSim's permutation traffic,
// the regime the paper's §4 routing theorem is actually about. The
// permutation itself is drawn (Fisher–Yates) from the shared stream on
// first use, so it is part of the seeded, reproducible state.
type PermutationPattern struct {
	ins, outs []int32
	perm      []int32 // perm[i] = index into outs assigned to ins[i]
	idx       []int32 // scratch for the Fisher–Yates prefix draw
	drawn     bool
}

// NewPermutationPattern builds a permutation pattern. Requires
// 0 < len(inputs) <= len(outputs); when outputs is strictly larger the
// mapping is a random injection. Slices are copied.
func NewPermutationPattern(inputs, outputs []int32) *PermutationPattern {
	if len(inputs) == 0 {
		panic("netsim: NewPermutationPattern with empty input set")
	}
	if len(inputs) > len(outputs) {
		panic(fmt.Sprintf("netsim: NewPermutationPattern with %d inputs > %d outputs", len(inputs), len(outputs)))
	}
	p := &PermutationPattern{
		ins:  make([]int32, len(inputs)),
		outs: make([]int32, len(outputs)),
		perm: make([]int32, len(inputs)),
		idx:  make([]int32, len(outputs)),
	}
	copy(p.ins, inputs)
	copy(p.outs, outputs)
	return p
}

// NextPair draws one pair (one draw per event, plus the one-time
// permutation draw on first use).
//
//ftcsn:hotpath per-event pair draw on the open-loop serve path
func (p *PermutationPattern) NextPair(r *rng.RNG) (int32, int32) {
	if !p.drawn {
		p.draw(r)
	}
	i := r.Intn(len(p.ins))
	return p.ins[i], p.outs[p.perm[i]]
}

// draw samples a uniform injection inputs→outputs as a Fisher–Yates
// prefix over the output indices.
func (p *PermutationPattern) draw(r *rng.RNG) {
	for j := range p.idx {
		p.idx[j] = int32(j)
	}
	for i := range p.perm {
		j := i + r.Intn(len(p.idx)-i)
		p.idx[i], p.idx[j] = p.idx[j], p.idx[i]
		p.perm[i] = p.idx[i]
	}
	p.drawn = true
}

// ResetState discards the drawn permutation so the next NextPair redraws
// it from the (reseeded) stream.
func (p *PermutationPattern) ResetState() { p.drawn = false }
