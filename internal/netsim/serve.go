package netsim

import (
	"errors"
	"fmt"
	"math"

	"ftcsn/internal/route"
	"ftcsn/internal/stats"
)

// DefaultMaxBatch bounds how many due arrivals one ConnectBatch call may
// carry when ServeConfig.MaxBatch is zero. Matches the churn driver's
// batch cap: large enough to amortize per-batch overhead, small enough
// that events-behind latency stays meaningful.
const DefaultMaxBatch = 64

// ServeConfig bounds and instruments an open-loop serving run. At least
// one of Horizon and MaxArrivals must be positive.
type ServeConfig struct {
	// Horizon stops the run at this virtual time: arrivals after it are
	// discarded and only departures due by it are drained. Zero means
	// unbounded (MaxArrivals must then be set).
	Horizon float64
	// MaxArrivals stops the run after ingesting this many arrivals.
	// Zero means unbounded (Horizon must then be set). When the stream
	// ends this way, all scheduled departures within Horizon drain.
	MaxArrivals int64
	// MaxBatch caps arrivals per ConnectBatch call (0 → DefaultMaxBatch).
	MaxBatch int
	// ReportEvery, when positive with OnReport set, invokes OnReport at
	// every multiple of this virtual-time interval (between batches, so
	// a report boundary never splits a batch).
	ReportEvery float64
	// OnReport receives the boundary's virtual time and the live SLO;
	// callers typically take slo.Window() and print it.
	OnReport func(t float64, slo *stats.SLO)
}

// departure is a scheduled circuit release. seq breaks virtual-time ties
// deterministically in admission order.
type departure struct {
	at      float64
	seq     uint64
	in, out int32
}

func depLess(a, b departure) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Loop is a reusable open-loop serving loop: it owns the departure heap
// and batch scratch, so a warm Loop serves an entire run with zero
// steady-state allocations per event. The zero value is ready for use;
// Serve may be called repeatedly (state is reset each call). Not safe
// for concurrent use.
type Loop struct {
	deps   []departure // min-heap on (at, seq)
	reqs   []route.Request
	res    []route.Result
	ats    []float64
	holds  []float64
	next   Arrival
	have   bool
	done   bool
	depSeq uint64
	pulled int64
}

// Serve runs one open-loop session against eng: arrivals pulled from src
// are batched into ConnectBatch calls under a virtual clock, admissions
// schedule their departures at At+Hold, and every event is recorded in
// slo. Batches are cut so that no scheduled departure falls strictly
// inside one — engine state at each decision is exactly what a one-
// event-at-a-time replay would produce, so for engines with sequential
// batch semantics the decision stream is independent of MaxBatch. At
// equal virtual times departures commit before arrivals (a freed circuit
// is reusable by a simultaneous request). Virtual time only: Serve never
// reads the wall clock, so a (seed, config) pair reproduces the run bit
// for bit.
//
// The engine should start with no live circuits (call Reset first if
// reusing one); circuits still live at the end of the run are left in
// place.
func (l *Loop) Serve(eng route.Engine, src Source, cfg ServeConfig, slo *stats.SLO) error {
	if eng == nil || src == nil || slo == nil {
		return errors.New("netsim: Serve with nil engine, source, or slo")
	}
	if cfg.Horizon < 0 || cfg.MaxArrivals < 0 || cfg.MaxBatch < 0 || cfg.ReportEvery < 0 {
		return errors.New("netsim: ServeConfig with negative field")
	}
	if cfg.Horizon == 0 && cfg.MaxArrivals == 0 {
		return errors.New("netsim: ServeConfig needs Horizon or MaxArrivals")
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = math.Inf(1)
	}
	maxArr := cfg.MaxArrivals
	if maxArr == 0 {
		maxArr = math.MaxInt64
	}
	maxBatch := cfg.MaxBatch
	if maxBatch == 0 {
		maxBatch = DefaultMaxBatch
	}
	l.deps = l.deps[:0]
	l.have = false
	l.done = false
	l.depSeq = 0
	l.pulled = 0
	l.run(eng, src, horizon, maxArr, maxBatch, cfg.ReportEvery, cfg.OnReport, slo)
	return nil
}

// Serve runs one open-loop session with a fresh Loop; see Loop.Serve.
func Serve(eng route.Engine, src Source, cfg ServeConfig, slo *stats.SLO) error {
	var l Loop
	return l.Serve(eng, src, cfg, slo)
}

// run is the event loop proper. Split from Serve so the cold
// validation/reset prologue stays off the annotated hot path.
//
//ftcsn:hotpath the open-loop event loop: every arrival and departure of a serving run passes through here
func (l *Loop) run(eng route.Engine, src Source, horizon float64, maxArr int64, maxBatch int, reportEvery float64, onReport func(float64, *stats.SLO), slo *stats.SLO) {
	nextReport := math.Inf(1)
	if reportEvery > 0 && onReport != nil {
		nextReport = reportEvery
	}
	for {
		l.pull(src, horizon, maxArr)
		if !l.have {
			break
		}
		// Departures due by the next arrival commit first (ties go to
		// the departure: its circuit is free for the simultaneous
		// arrival).
		for len(l.deps) > 0 && l.deps[0].at <= l.next.At {
			d := l.popDep()
			l.disconnect(eng, d)
			slo.ObserveRelease(d.at)
		}
		// Collect a batch: consecutive arrivals with no departure —
		// pending or newly scheduled — due strictly before the last of
		// them, so batching never reorders events.
		l.reqs = l.reqs[:0]
		l.ats = l.ats[:0]
		l.holds = l.holds[:0]
		minDep := math.Inf(1)
		if len(l.deps) > 0 {
			minDep = l.deps[0].at
		}
		for {
			a := l.next
			l.have = false
			l.reqs = append(l.reqs, route.Request{In: a.In, Out: a.Out})
			l.ats = append(l.ats, a.At)
			l.holds = append(l.holds, a.Hold)
			if dep := a.At + a.Hold; dep < minDep {
				minDep = dep
			}
			if len(l.reqs) >= maxBatch {
				break
			}
			l.pull(src, horizon, maxArr)
			if !l.have || l.next.At >= minDep {
				break
			}
		}
		// Serve the batch; position from the batch tail is the
		// events-behind connect latency.
		l.res = eng.ConnectBatch(l.reqs, l.res)
		k := len(l.reqs)
		for i := 0; i < k; i++ {
			accepted := l.res[i].Path != nil
			slo.ObserveConnect(l.ats[i], l.holds[i], uint64(k-1-i), accepted)
			if accepted {
				l.pushDep(departure{at: l.ats[i] + l.holds[i], seq: l.depSeq, in: l.reqs[i].In, out: l.reqs[i].Out})
				l.depSeq++
			}
		}
		for t := l.ats[k-1]; nextReport <= t; nextReport += reportEvery {
			onReport(nextReport, slo)
		}
	}
	// Stream over: drain departures due by the horizon.
	for len(l.deps) > 0 && l.deps[0].at <= horizon {
		d := l.popDep()
		l.disconnect(eng, d)
		slo.ObserveRelease(d.at)
	}
}

// pull loads the next arrival into l.next unless one is already staged
// or the stream is exhausted (source end, arrival cap, or horizon — an
// arrival past the horizon ends the stream without being counted).
func (l *Loop) pull(src Source, horizon float64, maxArr int64) {
	if l.have || l.done {
		return
	}
	if l.pulled >= maxArr || !src.Next(&l.next) || l.next.At > horizon {
		l.done = true
		return
	}
	l.pulled++
	l.have = true
}

func (l *Loop) disconnect(eng route.Engine, d departure) {
	if err := eng.Disconnect(d.in, d.out); err != nil {
		//ftlint:ignore hotpath panic path: a scheduled departure exists only for a circuit this loop admitted
		panic(fmt.Sprintf("netsim: open-loop departure (%d, %d): %v", d.in, d.out, err))
	}
}

// pushDep inserts into the departure min-heap. Hand-rolled (vs
// container/heap) to keep the hot path free of interface boxing.
func (l *Loop) pushDep(d departure) {
	l.deps = append(l.deps, d)
	i := len(l.deps) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !depLess(l.deps[i], l.deps[p]) {
			break
		}
		l.deps[i], l.deps[p] = l.deps[p], l.deps[i]
		i = p
	}
}

// popDep removes and returns the earliest departure.
func (l *Loop) popDep() departure {
	top := l.deps[0]
	last := len(l.deps) - 1
	l.deps[0] = l.deps[last]
	l.deps = l.deps[:last]
	i := 0
	for {
		c := 2*i + 1
		if c >= last {
			break
		}
		if c+1 < last && depLess(l.deps[c+1], l.deps[c]) {
			c++
		}
		if !depLess(l.deps[c], l.deps[i]) {
			break
		}
		l.deps[i], l.deps[c] = l.deps[c], l.deps[i]
		i = c
	}
	return top
}
