package netsim_test

import (
	"testing"
	"time"

	"ftcsn/internal/core"
	"ftcsn/internal/netsim"
	"ftcsn/internal/route"
)

func buildSmall(t testing.TB) *core.Network {
	t.Helper()
	nw, err := core.Build(core.Params{Nu: 1, Gamma: 0, M: 4, DQ: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestWorkloadDeterminism: two workloads with the same seed and the same
// decision feedback produce identical request streams.
func TestWorkloadDeterminism(t *testing.T) {
	nw := buildSmall(t)
	a := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 7)
	b := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 7)
	for round := 0; round < 20; round++ {
		ra := a.NextConnects(3)
		rb := b.NextConnects(3)
		if len(ra) != len(rb) {
			t.Fatalf("round %d: batch sizes differ: %d vs %d", round, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("round %d req %d: %v vs %v", round, i, ra[i], rb[i])
			}
		}
		// Identical (arbitrary) decision feedback keeps them in lockstep.
		a.Commit(func(i int) bool { return i%2 == 0 })
		b.Commit(func(i int) bool { return i%2 == 0 })
		la := a.NextReleases(1)
		lb := b.NextReleases(1)
		if len(la) != len(lb) || (len(la) > 0 && la[0] != lb[0]) {
			t.Fatalf("round %d: releases differ: %v vs %v", round, la, lb)
		}
	}
}

// TestWorkloadPoolsConsistent: endpoints move idle→pending→live/idle→idle
// without loss or duplication.
func TestWorkloadPoolsConsistent(t *testing.T) {
	nw := buildSmall(t)
	n := len(nw.Inputs())
	w := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 3)
	for round := 0; round < 50; round++ {
		reqs := w.NextConnects(3)
		w.Commit(func(i int) bool { return (round+i)%3 != 0 })
		if w.Live()+w.Idle() != n {
			t.Fatalf("round %d: live %d + idle %d != %d", round, w.Live(), w.Idle(), n)
		}
		w.NextReleases(2)
		if w.Live()+w.Idle() != n {
			t.Fatalf("round %d post-release: live %d + idle %d != %d", round, w.Live(), w.Idle(), n)
		}
		_ = reqs
	}
}

// TestWorkloadDrivesSim wires the operational workload through the
// link-level distributed simulator: connects are issued as protocol
// requests, accepts become live circuits, releases tear them down. On the
// fault-free network the protocol must keep up with sustained churn.
func TestWorkloadDrivesSim(t *testing.T) {
	nw := buildSmall(t)
	s := netsim.New(nw.G)
	defer s.Close()
	w := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 11)
	cids := map[[2]int32]int64{}
	accepted := 0
	for round := 0; round < 30; round++ {
		reqs := w.NextConnects(2)
		ok := make([]bool, len(reqs))
		for i, rq := range reqs {
			cid, err := s.Request(rq.In, rq.Out, 5*time.Second)
			if err == nil {
				ok[i] = true
				accepted++
				cids[[2]int32{rq.In, rq.Out}] = cid
			}
		}
		w.Commit(func(i int) bool { return ok[i] })
		for _, rel := range w.NextReleases(2) {
			key := [2]int32{rel.In, rel.Out}
			s.Release(rel.In, cids[key])
			delete(cids, key)
			// Releases are asynchronous; the workload only needs the
			// endpoints back, which it already took care of.
		}
	}
	if accepted == 0 {
		t.Fatal("distributed protocol accepted nothing under the operational workload")
	}
}

// TestWorkloadAgreesAcrossEngines: the same workload stream fed to the
// sequential router and the sharded engine yields identical live sets —
// the wiring that lets E9 put both engines on one operational column.
func TestWorkloadAgreesAcrossEngines(t *testing.T) {
	nw := buildSmall(t)
	rt := route.NewRouter(nw.G)
	se := route.NewShardedEngine(nw.G, 2)
	wa := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 5)
	wb := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 5)
	var res []route.Result
	for round := 0; round < 40; round++ {
		ra := wa.NextConnects(3)
		rb := wb.NextConnects(3)
		res = se.ServeBatch(rb, res)
		for i, rq := range ra {
			_, err := rt.Connect(rq.In, rq.Out)
			if (err == nil) != (res[i].Path != nil) {
				t.Fatalf("round %d req %d: engines disagree", round, i)
			}
		}
		wa.Commit(func(i int) bool { return res[i].Path != nil })
		wb.CommitResults(res[:len(rb)])
		for _, rel := range wa.NextReleases(2) {
			rt.Disconnect(rel.In, rel.Out)
		}
		for _, rel := range wb.NextReleases(2) {
			se.Disconnect(rel.In, rel.Out)
		}
	}
	if wa.Live() != wb.Live() {
		t.Fatalf("live sets diverged: %d vs %d", wa.Live(), wb.Live())
	}
}
