package netsim_test

import (
	"testing"
	"time"

	"ftcsn/internal/core"
	"ftcsn/internal/netsim"
	"ftcsn/internal/route"
)

func buildSmall(t testing.TB) *core.Network {
	t.Helper()
	nw, err := core.Build(core.Params{Nu: 1, Gamma: 0, M: 4, DQ: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// acceptedPath marks a request accepted in a hand-built decision slice.
var acceptedPath = []int32{}

// decisions builds the []route.Result feedback slice for a batch from an
// arbitrary accept predicate — test-side scaffolding for driving Commit
// without a real engine.
func decisions(reqs []route.Request, ok func(i int) bool) []route.Result {
	res := make([]route.Result, len(reqs))
	for i := range res {
		res[i].Request = reqs[i]
		if ok(i) {
			res[i].Path = acceptedPath
		}
	}
	return res
}

// TestWorkloadDeterminism: two workloads with the same seed and the same
// decision feedback produce identical request streams.
func TestWorkloadDeterminism(t *testing.T) {
	nw := buildSmall(t)
	a := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 7)
	b := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 7)
	for round := 0; round < 20; round++ {
		ra := a.NextConnects(3)
		rb := b.NextConnects(3)
		if len(ra) != len(rb) {
			t.Fatalf("round %d: batch sizes differ: %d vs %d", round, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("round %d req %d: %v vs %v", round, i, ra[i], rb[i])
			}
		}
		// Identical (arbitrary) decision feedback keeps them in lockstep.
		a.Commit(decisions(ra, func(i int) bool { return i%2 == 0 }))
		b.Commit(decisions(rb, func(i int) bool { return i%2 == 0 }))
		la := a.NextReleases(1)
		lb := b.NextReleases(1)
		if len(la) != len(lb) || (len(la) > 0 && la[0] != lb[0]) {
			t.Fatalf("round %d: releases differ: %v vs %v", round, la, lb)
		}
	}
}

// TestWorkloadPoolsConsistent: endpoints move idle→pending→live/idle→idle
// without loss or duplication.
func TestWorkloadPoolsConsistent(t *testing.T) {
	nw := buildSmall(t)
	n := len(nw.Inputs())
	w := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 3)
	for round := 0; round < 50; round++ {
		reqs := w.NextConnects(3)
		w.Commit(decisions(reqs, func(i int) bool { return (round+i)%3 != 0 }))
		if w.Live()+w.Idle() != n {
			t.Fatalf("round %d: live %d + idle %d != %d", round, w.Live(), w.Idle(), n)
		}
		w.NextReleases(2)
		if w.Live()+w.Idle() != n {
			t.Fatalf("round %d post-release: live %d + idle %d != %d", round, w.Live(), w.Idle(), n)
		}
	}
}

// TestWorkloadCommitShortResults: Commit must refuse a result slice that
// does not cover the pending batch.
func TestWorkloadCommitShortResults(t *testing.T) {
	nw := buildSmall(t)
	w := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 9)
	reqs := w.NextConnects(3)
	if len(reqs) < 2 {
		t.Fatalf("batch too small to test: %d", len(reqs))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Commit accepted a short result slice")
		}
	}()
	w.Commit(decisions(reqs[:len(reqs)-1], func(int) bool { return true }))
}

// TestWorkloadDrivesSim wires the operational workload through the
// link-level distributed simulator: connects are issued as protocol
// requests, accepts become live circuits, releases tear them down. On the
// fault-free network the protocol must keep up with sustained churn.
func TestWorkloadDrivesSim(t *testing.T) {
	nw := buildSmall(t)
	s := netsim.New(nw.G)
	defer s.Close()
	w := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 11)
	cids := map[[2]int32]int64{}
	accepted := 0
	for round := 0; round < 30; round++ {
		reqs := w.NextConnects(2)
		ok := make([]bool, len(reqs))
		for i, rq := range reqs {
			cid, err := s.Request(rq.In, rq.Out, 5*time.Second)
			if err == nil {
				ok[i] = true
				accepted++
				cids[[2]int32{rq.In, rq.Out}] = cid
			}
		}
		w.Commit(decisions(reqs, func(i int) bool { return ok[i] }))
		for _, rel := range w.NextReleases(2) {
			key := [2]int32{rel.In, rel.Out}
			s.Release(rel.In, cids[key])
			delete(cids, key)
			// Releases are asynchronous; the workload only needs the
			// endpoints back, which it already took care of.
		}
	}
	if accepted == 0 {
		t.Fatal("distributed protocol accepted nothing under the operational workload")
	}
}

// TestWorkloadAgreesAcrossEngines: the same workload stream fed to the
// sequential router and the sharded engine yields identical live sets —
// the wiring that lets E9 put both engines on one operational column.
func TestWorkloadAgreesAcrossEngines(t *testing.T) {
	nw := buildSmall(t)
	rt := route.NewRouter(nw.G)
	se := route.NewShardedEngine(nw.G, 2)
	wa := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 5)
	wb := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 5)
	var res []route.Result
	for round := 0; round < 40; round++ {
		ra := wa.NextConnects(3)
		rb := wb.NextConnects(3)
		res = se.ServeBatch(rb, res)
		for i, rq := range ra {
			_, err := rt.Connect(rq.In, rq.Out)
			if (err == nil) != (res[i].Path != nil) {
				t.Fatalf("round %d req %d: engines disagree", round, i)
			}
		}
		wa.Commit(res[:len(ra)])
		wb.Commit(res[:len(rb)])
		for _, rel := range wa.NextReleases(2) {
			rt.Disconnect(rel.In, rel.Out)
		}
		for _, rel := range wb.NextReleases(2) {
			se.Disconnect(rel.In, rel.Out)
		}
	}
	if wa.Live() != wb.Live() {
		t.Fatalf("live sets diverged: %d vs %d", wa.Live(), wb.Live())
	}
}

// TestWorkloadDecisionStreamGolden pins the closed-loop decision stream
// across the Commit API redesign: the FNV-1a fold of every request,
// decision bit, release, and live count over 200 rounds against the
// sequential router was captured with the pre-redesign callback API and
// must never drift. This is the bit-identity proof the differential
// harnesses rely on.
func TestWorkloadDecisionStreamGolden(t *testing.T) {
	nw, err := core.Build(core.DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	wl := netsim.NewWorkload(nw.Inputs(), nw.Outputs(), 0xF00D)
	rt := route.NewRouter(nw.G)
	rt.EnablePathReuse()
	var res []route.Result
	var h uint64 = 1469598103934665603 // FNV-1a offset basis
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211 // FNV-1a prime
	}
	for round := 0; round < 200; round++ {
		reqs := wl.NextConnects(4)
		res = rt.ConnectBatch(reqs, res)
		for i, rq := range reqs {
			mix(uint64(uint32(rq.In)))
			mix(uint64(uint32(rq.Out)))
			if res[i].Path != nil {
				mix(1)
			} else {
				mix(0)
			}
		}
		wl.Commit(res[:len(reqs)])
		for _, rel := range wl.NextReleases(2) {
			mix(uint64(uint32(rel.In)))
			mix(uint64(uint32(rel.Out)))
			if err := rt.Disconnect(rel.In, rel.Out); err != nil {
				t.Fatal(err)
			}
		}
		mix(uint64(wl.Live()))
	}
	const want = uint64(0xE399321CDF6A71C4)
	if h != want {
		t.Fatalf("decision stream hash 0x%016X, want 0x%016X", h, want)
	}
}
