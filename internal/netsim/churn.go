package netsim

// ChurnDriver is the batch-shaped form of the Theorem-2 trial pipeline's
// operational churn (core.ChurnWith): the same coin-flip op protocol —
// with probability 1/2 connect a uniformly chosen idle input to a
// uniformly chosen idle output, otherwise release a uniformly chosen live
// circuit — but with runs of consecutive connect decisions served as ONE
// route.Engine batch instead of one router call per op. That is the seam
// that puts the sharded speculate-then-commit engine (and its word-parallel
// routing guide) under the Monte-Carlo trial pipeline.
//
// The driver is bit-compatible with the per-op generator: for any engine
// whose ConnectBatch has sequential-router semantics (route.Router,
// route.ShardedEngine at every shard count), Run returns exactly the
// (connects, failures, pathTotal) of core.ChurnWith on the same RNG, every
// established circuit takes the identical path, and the generator's final
// RNG state matches — so Theorem-2 probability tables cannot move. Like
// Workload above, the generator owns the idle/live bookkeeping; unlike
// Workload's free-form operational stream, this one replays a fixed
// protocol, which forces the batching to be speculative:
//
// Per-op, the RNG draws for op t+1 depend on op t's outcome (pool sizes
// and the live count feed the coin short-circuit and the Intn bounds), so
// a batch cannot simply be drawn ahead. Instead the driver draws a run of
// consecutive connect ops ASSUMING each is accepted — applying the
// accept's pool mutations speculatively and snapshotting the RNG after
// each op's draws — and hands the run to Engine.ConnectBatch. On a
// strictly nonblocking repaired network (the common case the pipeline
// certifies) every connect succeeds, the speculation is exact, and the
// whole run cost one engine batch. On the first rejected request j the
// speculation beyond j is wrong, and the driver rolls back precisely:
//
//   - engine circuits committed after j are disconnected (prefix
//     decisions 0..j are unaffected: sequential batch semantics make any
//     result prefix a function of the request prefix alone);
//   - the speculative pool mutations for requests j.. are inverted in
//     LIFO order (the exact inverse of the swap-removes, so pool ORDER is
//     restored, not just membership — Intn indexes depend on it);
//   - the RNG is restored to its snapshot right after op j's draws — the
//     per-op generator's exact resume point after a failed connect, which
//     mutates no pools.
//
// Generation then continues from op j+1 with the true state. Failures are
// rare under certified instances, so rollbacks amortize to noise; a wholly
// failing stream degenerates to per-op batches of one, never to wrong
// results.
//
// Between trials the caller advances the fault epoch before calling Run:
// apply the trial's diff through core.MaskUpdater and notify the engine —
// Engine.MasksChangedDiff with the updater's changed vertex/edge lists on
// the incremental path, or Engine.MasksChanged as the full-sweep fallback.
// Either notification yields bit-identical guides and hence bit-identical
// churn decisions (route's incremental-guide differentials); the driver
// itself never touches masks.

import (
	"fmt"

	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

// churnBatchCap bounds one speculative connect run. 64 matches the lane
// width of the engines' word-parallel passes; the cap only splits batches,
// it cannot change any op's outcome (after a full-accept capped batch the
// next decision is drawn from exactly the state the uncapped run would
// have seen).
const churnBatchCap = 64

// ChurnDriver holds the generator state and scratch; the zero value is
// ready to use and Run re-initializes the pools per call, so one driver
// serves many trials (and many networks) without allocating in steady
// state. Not safe for concurrent use.
type ChurnDriver struct {
	idleIn  []int32
	idleOut []int32
	live    []liveCircuit

	reqs   []route.Request
	res    []route.Result
	undoII []int32 // per speculative request: the Intn index drawn for its input
	undoOO []int32
	states []rng.State // per speculative request: RNG right after its draws
}

// Run drives eng with ops operations of the coin-flip churn protocol over
// the given terminal sets, batching connect runs, and returns the number
// of attempted connects, failed connects, and the summed path length of
// the successes — bit-identical to core.ChurnWith on the same RNG for any
// sequential-semantics engine. The engine must start with no live circuit
// on these terminals; circuits left live at the end belong to the caller
// (typically released by the next trial's engine Reset).
//
//ftcsn:hotpath the per-trial churn serve loop; runs once per trial inside the 0-alloc pipeline
func (cd *ChurnDriver) Run(eng route.Engine, inputs, outputs []int32, ops int, r *rng.RNG) (connects, failures, pathTotal int) {
	cd.live = cd.live[:0]
	cd.idleIn = append(cd.idleIn[:0], inputs...)
	cd.idleOut = append(cd.idleOut[:0], outputs...)
	op := 0
	for op < ops {
		// The per-op decision, from true (committed) state. Short-circuit
		// order matters: it decides whether a coin is consumed.
		doConnect := len(cd.live) == 0 || (len(cd.idleIn) > 0 && r.Bernoulli(0.5))
		if !doConnect || len(cd.idleIn) == 0 || len(cd.idleOut) == 0 {
			if len(cd.live) > 0 {
				cd.releaseOne(eng, r)
			}
			op++
			continue
		}

		// Speculative connect run: op and the ops drawn below, assuming
		// acceptance of each.
		cd.reqs = cd.reqs[:0]
		cd.undoII = cd.undoII[:0]
		cd.undoOO = cd.undoOO[:0]
		cd.states = cd.states[:0]
		pendingRelease := false
		for {
			ii := r.Intn(len(cd.idleIn))
			oo := r.Intn(len(cd.idleOut))
			in, out := cd.idleIn[ii], cd.idleOut[oo]
			// Apply exactly the pool/live mutations of a successful per-op
			// connect (swap-remove both endpoints, push the circuit).
			cd.idleIn[ii] = cd.idleIn[len(cd.idleIn)-1]
			cd.idleIn = cd.idleIn[:len(cd.idleIn)-1]
			cd.idleOut[oo] = cd.idleOut[len(cd.idleOut)-1]
			cd.idleOut = cd.idleOut[:len(cd.idleOut)-1]
			cd.live = append(cd.live, liveCircuit{in, out})
			cd.reqs = append(cd.reqs, route.Request{In: in, Out: out})
			cd.undoII = append(cd.undoII, int32(ii))
			cd.undoOO = append(cd.undoOO, int32(oo))
			cd.states = append(cd.states, r.State())
			if op+len(cd.reqs) >= ops || len(cd.reqs) >= churnBatchCap ||
				len(cd.idleIn) == 0 || len(cd.idleOut) == 0 {
				// Ending the run before the speculative coin is consistent
				// with the per-op generator in every one of these states:
				// the outer loop re-draws the decision from true state, and
				// an empty pool there consumes either no coin (idleIn) or
				// the same one coin before releasing (idleOut).
				break
			}
			// Next op's coin, drawn speculatively. live > 0 and idleIn > 0
			// hold here, so the per-op generator consumes exactly this coin;
			// heads means the run continues, tails means a release follows
			// the batch. A rollback below re-draws it from the true state.
			if !r.Bernoulli(0.5) {
				pendingRelease = true
				break
			}
		}

		cd.res = eng.ConnectBatch(cd.reqs, cd.res)
		rejected := -1
		for i := range cd.reqs {
			if cd.res[i].Path == nil {
				rejected = i
				break
			}
		}
		if rejected < 0 {
			// Speculation exact: the whole run committed.
			connects += len(cd.reqs)
			for i := range cd.reqs {
				pathTotal += len(cd.res[i].Path) - 1
			}
			op += len(cd.reqs)
			if pendingRelease {
				cd.releaseOne(eng, r)
				op++
			}
			continue
		}

		// Request `rejected` failed: ops up to it stand (accepts committed,
		// the failed op mutates nothing), everything after was misdrawn.
		j := rejected
		connects += j + 1
		failures++
		for i := 0; i < j; i++ {
			pathTotal += len(cd.res[i].Path) - 1
		}
		// Undo engine commits past the failure point.
		for i := j + 1; i < len(cd.reqs); i++ {
			if cd.res[i].Path == nil {
				continue
			}
			if err := eng.Disconnect(cd.reqs[i].In, cd.reqs[i].Out); err != nil {
				//ftlint:ignore hotpath panic path: a rollback disconnect can only fail if the engine broke its own registry invariant
				panic(fmt.Sprintf("netsim: churn rollback disconnect: %v", err))
			}
		}
		// Invert the speculative pool mutations for requests j.. in LIFO
		// order: each step is the exact inverse of a swap-remove pair, so
		// pool contents AND order match the per-op generator's state right
		// after its failed connect (which leaves pools untouched).
		for i := len(cd.reqs) - 1; i >= j; i-- {
			cd.live = cd.live[:len(cd.live)-1]
			ii, oo := cd.undoII[i], cd.undoOO[i]
			cd.idleIn = cd.idleIn[:len(cd.idleIn)+1]
			cd.idleIn[len(cd.idleIn)-1] = cd.idleIn[ii]
			cd.idleIn[ii] = cd.reqs[i].In
			cd.idleOut = cd.idleOut[:len(cd.idleOut)+1]
			cd.idleOut[len(cd.idleOut)-1] = cd.idleOut[oo]
			cd.idleOut[oo] = cd.reqs[i].Out
		}
		op += j + 1
		r.SetState(cd.states[j])
	}
	return connects, failures, pathTotal
}

// releaseOne is the protocol's release op: tear down a uniformly chosen
// live circuit and return its endpoints to the idle pools.
func (cd *ChurnDriver) releaseOne(eng route.Engine, r *rng.RNG) {
	ci := r.Intn(len(cd.live))
	c := cd.live[ci]
	if err := eng.Disconnect(c.in, c.out); err == nil {
		cd.idleIn = append(cd.idleIn, c.in)
		cd.idleOut = append(cd.idleOut, c.out)
	}
	cd.live[ci] = cd.live[len(cd.live)-1]
	cd.live = cd.live[:len(cd.live)-1]
}
