// Package montecarlo runs embarrassingly parallel randomized trials over a
// pool of worker goroutines.
//
// Every failure probability in Pippenger & Lin (Lemmas 3–7, Theorem 2) is
// estimated here by repeated independent trials. Trials receive pure
// per-index RNG streams (rng.Stream), so results are bit-for-bit
// reproducible no matter how many workers run or how the scheduler
// interleaves them. Workers claim trials in contiguous blocks (Config.
// Block), which lets scratch values that implement BlockStarter precompute
// a whole block at once — the hook behind the batched fault-injection
// engine — without affecting any trial's randomness or outcome.
package montecarlo

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ftcsn/internal/rng"
	"ftcsn/internal/stats"
)

// Config controls a Monte-Carlo run. Workers and Block are defaulted only
// on exactly 0; negative values panic at run start — a negative count is
// always a caller bug (a subtraction gone wrong, an unvalidated flag), and
// silently mapping it to "all cores" would mask it.
type Config struct {
	Trials  int
	Workers int    // 0 = GOMAXPROCS; < 0 panics
	Seed    uint64 // root seed; trial i uses rng.Stream(Seed, i)
	Block   int    // trials per scheduling block; 0 = DefaultBlock; < 0 panics
}

// DefaultBlock is the default scheduling block size. Blocks only set the
// granularity at which workers claim contiguous trial ranges (and at which
// BlockStarter scratches precompute); no trial's randomness or outcome
// depends on the block size.
const DefaultBlock = 32

func (c Config) workers() int {
	if c.Workers < 0 {
		//ftlint:ignore hotpath panic path for a caller bug (negative worker count); never taken on a valid Config
		panic(fmt.Sprintf("montecarlo: Config.Workers must be >= 0, got %d", c.Workers))
	}
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) block() int {
	if c.Block < 0 {
		//ftlint:ignore hotpath panic path for a caller bug (negative block size); never taken on a valid Config
		panic(fmt.Sprintf("montecarlo: Config.Block must be >= 0, got %d", c.Block))
	}
	if c.Block > 0 {
		return c.Block
	}
	return DefaultBlock
}

// BlockStarter is implemented by worker scratch values that precompute
// state for a whole contiguous block of trials — e.g. evaluators backed by
// fault.BatchInjector, which draw a block's failure positions in one sweep
// and then advance trial-to-trial by diffs. StartBlock(seed, first, n) is
// called on the claiming worker's scratch before that worker runs trials
// first..first+n-1; the harness still reseeds the trial RNG to
// rng.Stream(seed, first+j) for trial first+j, so per-trial determinism is
// independent of block size and worker count.
type BlockStarter interface {
	StartBlock(seed, first uint64, n int)
}

// RunBool estimates P[trial] over cfg.Trials independent trials and
// returns the success proportion.
func RunBool(cfg Config, trial func(r *rng.RNG) bool) stats.Proportion {
	return RunBoolWith(cfg, func() struct{} { return struct{}{} },
		func(r *rng.RNG, _ struct{}) bool { return trial(r) })
}

// RunSample accumulates a numeric statistic over cfg.Trials trials.
func RunSample(cfg Config, trial func(r *rng.RNG) float64) stats.Sample {
	return RunSampleWith(cfg, func() struct{} { return struct{}{} },
		func(r *rng.RNG, _ struct{}) float64 { return trial(r) })
}

// RunBoolWith is RunBool with worker-local scratch: each worker calls
// newScratch once and passes the same value to every one of its trials, so
// trial bodies can reuse buffers (fault instances, masks, routers) and run
// allocation-free in steady state. Results are identical to RunBool for a
// pure trial function: trial i still sees the stream rng.Stream(cfg.Seed, i)
// and proportions merge commutatively.
//
//ftcsn:hotpath harness entry for the 0-allocs/trial pipelines; per-run setup in callees carries in-place suppressions
func RunBoolWith[S any](cfg Config, newScratch func() S, trial func(r *rng.RNG, s S) bool) stats.Proportion {
	pr, _ := RunBoolWithScratches(cfg, newScratch, trial)
	return pr
}

// RunBoolWithScratches is RunBoolWith additionally returning the
// per-worker scratches, so scratch backed by recycled storage (the
// core.EvaluatorPool arenas of multi-network experiments) can be released
// once the run is over. Entries are zero values for workers that never
// started (Trials == 0).
func RunBoolWithScratches[S any](cfg Config, newScratch func() S, trial func(r *rng.RNG, s S) bool) (stats.Proportion, []S) {
	//ftlint:ignore hotpath per-run setup: one counter slice, amortized over cfg.Trials trials
	perWorker := make([]stats.Proportion, cfg.workers())
	//ftlint:ignore hotpath per-run setup: one trial adapter closure shared by every trial
	scs := parallelFor(cfg, newScratch, func(w int, r *rng.RNG, s S, i uint64) {
		perWorker[w].Add(trial(r, s))
	})
	var total stats.Proportion
	for _, p := range perWorker {
		total.Merge(p)
	}
	return total, scs
}

// RunSampleWith is RunSample with worker-local scratch; see RunBoolWith.
func RunSampleWith[S any](cfg Config, newScratch func() S, trial func(r *rng.RNG, s S) float64) stats.Sample {
	perWorker := make([]stats.Sample, cfg.workers())
	parallelFor(cfg, newScratch, func(w int, r *rng.RNG, s S, i uint64) {
		perWorker[w].Add(trial(r, s))
	})
	var total stats.Sample
	for w := range perWorker {
		total.Merge(&perWorker[w])
	}
	return total
}

// RunWith runs cfg.Trials trials with worker-local scratch and no built-in
// statistic: trials fold whatever they measure into their scratch value, and
// the per-worker scratches are returned for caller-side reduction. The
// trial index is passed so bodies that derive per-trial seeds beyond the
// harness stream can do so reproducibly. This is the engine behind
// multi-statistic experiments (e.g. the Theorem-2 pipeline, which
// accumulates success, certificate, and churn counters in one pass).
// Reductions must be order-insensitive (counts, sums, extrema) because
// trials are distributed dynamically across workers.
func RunWith[S any](cfg Config, newScratch func() S, trial func(r *rng.RNG, s S, i uint64)) []S {
	return parallelFor(cfg, newScratch, func(w int, r *rng.RNG, s S, i uint64) {
		trial(r, s, i)
	})
}

// parallelFor executes body(worker, r, scratch, trialIndex) for every trial
// index on a worker pool with dynamic (atomic counter) load balancing over
// contiguous blocks of cfg.Block trials. Each worker owns one scratch value
// and one RNG, reseeded in place per trial to the pure per-index stream, so
// no per-trial allocation occurs in the harness itself and results are
// independent of worker count and block size. Scratches implementing
// BlockStarter are notified before each claimed block.
func parallelFor[S any](cfg Config, newScratch func() S, body func(worker int, r *rng.RNG, s S, trial uint64)) []S {
	workers := cfg.workers()
	block := cfg.block()
	if cfg.Block == 0 && cfg.Trials > 0 {
		// A defaulted block size shrinks so every worker has a block to
		// claim — block size never affects any trial's outcome, only the
		// scheduling granularity.
		if perWorker := (cfg.Trials + workers - 1) / workers; perWorker < block {
			block = perWorker
		}
	}
	numBlocks := (cfg.Trials + block - 1) / block
	if cfg.Trials > 0 && workers > numBlocks {
		// Never spin up more workers (each paying for a full scratch —
		// possibly a materialized evaluator) than there are blocks to claim.
		workers = numBlocks
	}
	//ftlint:ignore hotpath per-run setup: one scratch slot per worker, amortized over cfg.Trials trials
	scratches := make([]S, workers)
	if cfg.Trials <= 0 {
		return scratches
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		//ftlint:ignore hotpath per-run setup: one goroutine and one spawn closure per worker, amortized over the run
		go func(w int) {
			defer wg.Done()
			s := newScratch()
			scratches[w] = s
			//ftlint:ignore hotpath once per worker per run: the BlockStarter probe boxes the scratch a single time
			starter, _ := any(s).(BlockStarter)
			workerLoop(cfg, w, int64(numBlocks), block, &next, s, starter, body)
		}(w)
	}
	wg.Wait()
	return scratches
}

// workerLoop is one worker's trial-claiming loop: grab the next block off
// the shared counter, notify the BlockStarter, reseed the worker RNG to
// each trial's pure stream, run the body. This is the code every single
// Monte-Carlo trial in the repository passes through, split out of
// parallelFor's per-run scaffolding so the static hotpath gate covers it:
// an allocation here multiplies by cfg.Trials, not by runs.
//
//ftcsn:hotpath the per-trial claim loop; must stay allocation-free in steady state
func workerLoop[S any](cfg Config, w int, numBlocks int64, block int, next *atomic.Int64, s S, starter BlockStarter, body func(worker int, r *rng.RNG, s S, trial uint64)) {
	var r rng.RNG
	for {
		b := next.Add(1) - 1
		if b >= numBlocks {
			return
		}
		first := int(b) * block
		end := first + block
		if end > cfg.Trials {
			end = cfg.Trials
		}
		if starter != nil {
			starter.StartBlock(cfg.Seed, uint64(first), end-first)
		}
		for i := first; i < end; i++ {
			r.ReseedStream(cfg.Seed, uint64(i))
			body(w, &r, s, uint64(i))
		}
	}
}
