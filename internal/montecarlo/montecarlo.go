// Package montecarlo runs embarrassingly parallel randomized trials over a
// pool of worker goroutines.
//
// Every failure probability in Pippenger & Lin (Lemmas 3–7, Theorem 2) is
// estimated here by repeated independent trials. Trials receive pure
// per-index RNG streams (rng.Stream), so results are bit-for-bit
// reproducible no matter how many workers run or how the scheduler
// interleaves them.
package montecarlo

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ftcsn/internal/rng"
	"ftcsn/internal/stats"
)

// Config controls a Monte-Carlo run.
type Config struct {
	Trials  int
	Workers int    // 0 = GOMAXPROCS
	Seed    uint64 // root seed; trial i uses rng.Stream(Seed, i)
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunBool estimates P[trial] over cfg.Trials independent trials and
// returns the success proportion.
func RunBool(cfg Config, trial func(r *rng.RNG) bool) stats.Proportion {
	return RunBoolWith(cfg, func() struct{} { return struct{}{} },
		func(r *rng.RNG, _ struct{}) bool { return trial(r) })
}

// RunSample accumulates a numeric statistic over cfg.Trials trials.
func RunSample(cfg Config, trial func(r *rng.RNG) float64) stats.Sample {
	return RunSampleWith(cfg, func() struct{} { return struct{}{} },
		func(r *rng.RNG, _ struct{}) float64 { return trial(r) })
}

// RunBoolWith is RunBool with worker-local scratch: each worker calls
// newScratch once and passes the same value to every one of its trials, so
// trial bodies can reuse buffers (fault instances, masks, routers) and run
// allocation-free in steady state. Results are identical to RunBool for a
// pure trial function: trial i still sees the stream rng.Stream(cfg.Seed, i)
// and proportions merge commutatively.
func RunBoolWith[S any](cfg Config, newScratch func() S, trial func(r *rng.RNG, s S) bool) stats.Proportion {
	perWorker := make([]stats.Proportion, cfg.workers())
	parallelFor(cfg, newScratch, func(w int, r *rng.RNG, s S, i uint64) {
		perWorker[w].Add(trial(r, s))
	})
	var total stats.Proportion
	for _, p := range perWorker {
		total.Merge(p)
	}
	return total
}

// RunSampleWith is RunSample with worker-local scratch; see RunBoolWith.
func RunSampleWith[S any](cfg Config, newScratch func() S, trial func(r *rng.RNG, s S) float64) stats.Sample {
	perWorker := make([]stats.Sample, cfg.workers())
	parallelFor(cfg, newScratch, func(w int, r *rng.RNG, s S, i uint64) {
		perWorker[w].Add(trial(r, s))
	})
	var total stats.Sample
	for w := range perWorker {
		total.Merge(&perWorker[w])
	}
	return total
}

// RunWith runs cfg.Trials trials with worker-local scratch and no built-in
// statistic: trials fold whatever they measure into their scratch value, and
// the per-worker scratches are returned for caller-side reduction. The
// trial index is passed so bodies that derive per-trial seeds beyond the
// harness stream can do so reproducibly. This is the engine behind
// multi-statistic experiments (e.g. the Theorem-2 pipeline, which
// accumulates success, certificate, and churn counters in one pass).
// Reductions must be order-insensitive (counts, sums, extrema) because
// trials are distributed dynamically across workers.
func RunWith[S any](cfg Config, newScratch func() S, trial func(r *rng.RNG, s S, i uint64)) []S {
	return parallelFor(cfg, newScratch, func(w int, r *rng.RNG, s S, i uint64) {
		trial(r, s, i)
	})
}

// parallelFor executes body(worker, r, scratch, trialIndex) for every trial
// index on a worker pool with dynamic (atomic counter) load balancing. Each
// worker owns one scratch value and one RNG, reseeded in place per trial to
// the pure per-index stream, so no per-trial allocation occurs in the
// harness itself.
func parallelFor[S any](cfg Config, newScratch func() S, body func(worker int, r *rng.RNG, s S, trial uint64)) []S {
	workers := cfg.workers()
	if cfg.Trials > 0 && workers > cfg.Trials {
		// Never spin up more workers (each paying for a full scratch —
		// possibly a materialized evaluator) than there are trials.
		workers = cfg.Trials
	}
	scratches := make([]S, workers)
	if cfg.Trials <= 0 {
		return scratches
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			s := newScratch()
			scratches[w] = s
			var r rng.RNG
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.Trials) {
					return
				}
				r.ReseedStream(cfg.Seed, uint64(i))
				body(w, &r, s, uint64(i))
			}
		}(w)
	}
	wg.Wait()
	return scratches
}
