// Package montecarlo runs embarrassingly parallel randomized trials over a
// pool of worker goroutines.
//
// Every failure probability in Pippenger & Lin (Lemmas 3–7, Theorem 2) is
// estimated here by repeated independent trials. Trials receive pure
// per-index RNG streams (rng.Stream), so results are bit-for-bit
// reproducible no matter how many workers run or how the scheduler
// interleaves them.
package montecarlo

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ftcsn/internal/rng"
	"ftcsn/internal/stats"
)

// Config controls a Monte-Carlo run.
type Config struct {
	Trials  int
	Workers int    // 0 = GOMAXPROCS
	Seed    uint64 // root seed; trial i uses rng.Stream(Seed, i)
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunBool estimates P[trial] over cfg.Trials independent trials and
// returns the success proportion.
func RunBool(cfg Config, trial func(r *rng.RNG) bool) stats.Proportion {
	perWorker := make([]stats.Proportion, cfg.workers())
	parallelFor(cfg, func(w int, i uint64) {
		perWorker[w].Add(trial(rng.Stream(cfg.Seed, i)))
	})
	var total stats.Proportion
	for _, p := range perWorker {
		total.Merge(p)
	}
	return total
}

// RunSample accumulates a numeric statistic over cfg.Trials trials.
func RunSample(cfg Config, trial func(r *rng.RNG) float64) stats.Sample {
	perWorker := make([]stats.Sample, cfg.workers())
	parallelFor(cfg, func(w int, i uint64) {
		perWorker[w].Add(trial(rng.Stream(cfg.Seed, i)))
	})
	var total stats.Sample
	for w := range perWorker {
		total.Merge(&perWorker[w])
	}
	return total
}

// parallelFor executes body(worker, trialIndex) for every trial index on a
// worker pool with dynamic (atomic counter) load balancing.
func parallelFor(cfg Config, body func(worker int, trial uint64)) {
	workers := cfg.workers()
	if cfg.Trials <= 0 {
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.Trials) {
					return
				}
				body(w, uint64(i))
			}
		}(w)
	}
	wg.Wait()
}
