package montecarlo

import (
	"sync/atomic"
	"testing"

	"ftcsn/internal/rng"
)

// TestRunBoolWithMatchesRunBool: for a pure trial function the scratch
// variant must produce the identical estimate, at any worker count.
func TestRunBoolWithMatchesRunBool(t *testing.T) {
	trial := func(r *rng.RNG) bool { return r.Float64() < 0.3 }
	want := RunBool(Config{Trials: 5000, Workers: 1, Seed: 99}, trial)
	for _, workers := range []int{1, 2, 7} {
		got := RunBoolWith(Config{Trials: 5000, Workers: workers, Seed: 99},
			func() struct{} { return struct{}{} },
			func(r *rng.RNG, _ struct{}) bool { return trial(r) })
		if got.Estimate() != want.Estimate() {
			t.Fatalf("workers=%d: estimate %v != sequential %v", workers, got.Estimate(), want.Estimate())
		}
	}
}

// TestRunWithWorkerLocalScratch exercises the worker-local scratch path
// under contention (meaningful with -race): every worker mutates only its
// own scratch, and the merged counters account for every trial exactly
// once.
func TestRunWithWorkerLocalScratch(t *testing.T) {
	type scratch struct {
		trials int
		sum    uint64
		seen   map[uint64]bool
	}
	const trials = 4000
	scs := RunWith(Config{Trials: trials, Workers: 8, Seed: 5},
		func() *scratch { return &scratch{seen: make(map[uint64]bool)} },
		func(r *rng.RNG, s *scratch, i uint64) {
			if s.seen[i] {
				t.Errorf("trial %d delivered twice to one worker", i)
			}
			s.seen[i] = true
			s.trials++
			s.sum += i
		})
	total, sum := 0, uint64(0)
	global := make(map[uint64]bool)
	for _, s := range scs {
		if s == nil {
			continue
		}
		total += s.trials
		sum += s.sum
		for i := range s.seen {
			if global[i] {
				t.Fatalf("trial %d ran on two workers", i)
			}
			global[i] = true
		}
	}
	if total != trials {
		t.Fatalf("merged trial count %d, want %d", total, trials)
	}
	if want := uint64(trials) * (trials - 1) / 2; sum != want {
		t.Fatalf("merged index sum %d, want %d", sum, want)
	}
}

// TestRunWithZeroTrials must not invoke trials or panic on merge.
func TestRunWithZeroTrials(t *testing.T) {
	var calls atomic.Int64
	scs := RunWith(Config{Trials: 0, Workers: 4, Seed: 1},
		func() int { return 0 },
		func(r *rng.RNG, s int, i uint64) { calls.Add(1) })
	if calls.Load() != 0 {
		t.Fatalf("trial ran %d times with Trials=0", calls.Load())
	}
	if len(scs) == 0 {
		t.Fatal("expected per-worker scratch slots even with no trials")
	}
}

// TestStreamReseedEquivalence: the in-place reseed must reproduce
// rng.Stream exactly — this is what makes worker-local RNG reuse
// bit-for-bit compatible with the allocating harness.
func TestStreamReseedEquivalence(t *testing.T) {
	var r rng.RNG
	for i := uint64(0); i < 100; i++ {
		r.ReseedStream(1234, i)
		fresh := rng.Stream(1234, i)
		for k := 0; k < 8; k++ {
			if a, b := r.Uint64(), fresh.Uint64(); a != b {
				t.Fatalf("stream %d draw %d: reseeded %x != fresh %x", i, k, a, b)
			}
		}
	}
}
