package montecarlo

import (
	"math"
	"sync/atomic"
	"testing"

	"ftcsn/internal/rng"
)

func TestRunBoolEstimates(t *testing.T) {
	p := RunBool(Config{Trials: 20000, Workers: 4, Seed: 1}, func(r *rng.RNG) bool {
		return r.Bernoulli(0.3)
	})
	if p.Trials != 20000 {
		t.Fatalf("trials = %d", p.Trials)
	}
	if math.Abs(p.Estimate()-0.3) > 0.02 {
		t.Fatalf("estimate = %v", p.Estimate())
	}
}

func TestRunBoolReproducibleAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) int {
		p := RunBool(Config{Trials: 5000, Workers: workers, Seed: 99}, func(r *rng.RNG) bool {
			return r.Bernoulli(0.5)
		})
		return p.Successes
	}
	if run(1) != run(8) {
		t.Fatal("results depend on worker count")
	}
}

func TestRunSample(t *testing.T) {
	s := RunSample(Config{Trials: 10000, Workers: 3, Seed: 5}, func(r *rng.RNG) float64 {
		return r.Float64()
	})
	if s.N() != 10000 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-0.5) > 0.02 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() < 0 || s.Max() >= 1 {
		t.Fatalf("range [%v,%v]", s.Min(), s.Max())
	}
}

func TestEveryTrialRunsExactlyOnce(t *testing.T) {
	var count atomic.Int64
	RunBool(Config{Trials: 1234, Workers: 7, Seed: 2}, func(r *rng.RNG) bool {
		count.Add(1)
		return true
	})
	if count.Load() != 1234 {
		t.Fatalf("ran %d trials", count.Load())
	}
}

func TestZeroTrials(t *testing.T) {
	p := RunBool(Config{Trials: 0, Seed: 3}, func(r *rng.RNG) bool { return true })
	if p.Trials != 0 {
		t.Fatal("phantom trials")
	}
	s := RunSample(Config{Trials: 0, Seed: 3}, func(r *rng.RNG) float64 { return 1 })
	if s.N() != 0 {
		t.Fatal("phantom samples")
	}
}

func TestDefaultWorkers(t *testing.T) {
	p := RunBool(Config{Trials: 100, Seed: 4}, func(r *rng.RNG) bool { return true })
	if p.Successes != 100 {
		t.Fatalf("successes = %d", p.Successes)
	}
}

// TestNegativeConfigPanics locks the validation contract: negative
// Workers or Block is a caller bug and must panic instead of silently
// defaulting to "all cores" / the default block size.
func TestNegativeConfigPanics(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"workers", Config{Trials: 4, Workers: -1}},
		{"block", Config{Trials: 4, Block: -2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("Config %+v did not panic", tc.cfg)
				}
			}()
			RunBool(tc.cfg, func(*rng.RNG) bool { return true })
		})
	}
}
