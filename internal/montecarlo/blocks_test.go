package montecarlo

import (
	"sync"
	"testing"

	"ftcsn/internal/core"
	"ftcsn/internal/fault"
	"ftcsn/internal/rng"
)

// blockRecorder records every StartBlock range and every trial delivered
// to its worker scratch.
type blockRecorder struct {
	mu     *sync.Mutex
	ranges *[][2]uint64 // shared across workers, mutex-guarded
	blocks [][2]uint64  // this worker's claimed ranges
	trials []uint64     // this worker's delivered trials, in order
}

func (s *blockRecorder) StartBlock(seed, first uint64, n int) {
	s.mu.Lock()
	*s.ranges = append(*s.ranges, [2]uint64{first, first + uint64(n)})
	s.mu.Unlock()
	s.blocks = append(s.blocks, [2]uint64{first, first + uint64(n)})
}

// TestBlockSchedulingCoverage: StartBlock ranges partition [0, Trials)
// exactly, and every trial of a block is delivered, in order, to the
// worker scratch whose StartBlock claimed it.
func TestBlockSchedulingCoverage(t *testing.T) {
	const trials = 103
	var mu sync.Mutex
	var ranges [][2]uint64
	scs := RunWith(Config{Trials: trials, Workers: 4, Seed: 9, Block: 8},
		func() *blockRecorder { return &blockRecorder{mu: &mu, ranges: &ranges} },
		func(r *rng.RNG, s *blockRecorder, i uint64) {
			s.trials = append(s.trials, i)
		})

	covered := make([]int, trials)
	for _, rg := range ranges {
		for i := rg[0]; i < rg[1]; i++ {
			covered[i]++
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("trial %d covered by %d blocks, want 1", i, c)
		}
	}
	for w, s := range scs {
		if s == nil {
			continue
		}
		want := make([]uint64, 0, len(s.trials))
		for _, rg := range s.blocks {
			for i := rg[0]; i < rg[1]; i++ {
				want = append(want, i)
			}
		}
		if len(want) != len(s.trials) {
			t.Fatalf("worker %d: %d trials delivered, blocks hold %d", w, len(s.trials), len(want))
		}
		for k := range want {
			if want[k] != s.trials[k] {
				t.Fatalf("worker %d: trial order %v != block order %v", w, s.trials, want)
			}
		}
	}
}

// TestBlockSizeInvariance: estimates are bit-identical at any block size
// and worker count — the determinism contract of block scheduling.
func TestBlockSizeInvariance(t *testing.T) {
	trial := func(r *rng.RNG, _ struct{}) bool { return r.Float64() < 0.25 }
	want := RunBoolWith(Config{Trials: 2000, Workers: 1, Block: 1, Seed: 31},
		func() struct{} { return struct{}{} }, trial)
	for _, workers := range []int{1, 4} {
		for _, block := range []int{1, 3, 17, 1000} {
			got := RunBoolWith(Config{Trials: 2000, Workers: workers, Block: block, Seed: 31},
				func() struct{} { return struct{}{} }, trial)
			if got.Estimate() != want.Estimate() || got.Trials != want.Trials {
				t.Fatalf("workers=%d block=%d: estimate %v (n=%d) != reference %v (n=%d)",
					workers, block, got.Estimate(), got.Trials, want.Estimate(), want.Trials)
			}
		}
	}
}

// batchedEvalScratch mirrors the experiments' batched worker scratch: one
// evaluator (owning instance, masks, router, injector) per worker over a
// shared read-only network.
type batchedEvalScratch struct {
	ev  *core.Evaluator
	m   fault.Model
	out core.TrialOutcome
}

func (s *batchedEvalScratch) StartBlock(seed, first uint64, n int) {
	s.ev.StartBlock(s.m, seed, first, n)
}

// TestBatchedBlockSchedulingRace exercises block-per-worker scheduling on
// the full batched Theorem-2 pipeline with a shared read-only network and
// per-worker batch scratch — meaningful under -race — and checks the
// parallel per-trial outcomes against a sequential run.
func TestBatchedBlockSchedulingRace(t *testing.T) {
	nw, err := core.Build(core.DefaultParams(1))
	if err != nil {
		t.Fatal(err)
	}
	m := fault.Symmetric(0.01)
	const trials, churn, seed = 64, 40, uint64(0xACE)

	runGrid := func(workers, block int) []core.TrialOutcome {
		outs := make([]core.TrialOutcome, trials)
		RunWith(Config{Trials: trials, Workers: workers, Seed: seed, Block: block},
			func() *batchedEvalScratch { return &batchedEvalScratch{ev: core.NewEvaluator(nw), m: m} },
			func(_ *rng.RNG, s *batchedEvalScratch, i uint64) {
				s.ev.EvaluateNextInto(&s.out, churn)
				outs[i] = s.out
			})
		return outs
	}
	want := runGrid(1, 16)
	for _, workers := range []int{2, 8} {
		for _, block := range []int{4, 16} {
			got := runGrid(workers, block)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("workers=%d block=%d: trial %d outcome %+v != sequential %+v",
						workers, block, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBatchedTrialPathAllocFree pins the whole batched per-trial path —
// block fill, diff apply, incremental masks, certificate, churn — at zero
// steady-state allocations per trial (the regression gate behind the
// "0 allocs/trial" claim of the batched engine).
func TestBatchedTrialPathAllocFree(t *testing.T) {
	nw, err := core.Build(core.DefaultParams(1))
	if err != nil {
		t.Fatal(err)
	}
	m := fault.Symmetric(0.01)
	ev := core.NewEvaluator(nw)
	var out core.TrialOutcome
	const block = 16
	trial := uint64(0)
	runBlock := func() {
		ev.StartBlock(m, 0xA110C, trial, block)
		for j := 0; j < block; j++ {
			ev.EvaluateNextInto(&out, 40)
		}
		trial += block
	}
	// Warm-up: grow every pooled buffer (paths, queues, failure lists).
	for i := 0; i < 4; i++ {
		runBlock()
	}
	avg := testing.AllocsPerRun(30, runBlock)
	if avg > 0 {
		t.Fatalf("batched trial path allocates %.3f allocs per %d-trial block in steady state, want 0", avg, block)
	}
}
