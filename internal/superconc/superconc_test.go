package superconc

import (
	"testing"

	"ftcsn/internal/maxflow"
	"ftcsn/internal/rng"
)

func TestBaseCaseCrossbar(t *testing.T) {
	nw, err := New(4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// n ≤ BaseSize: complete bipartite 4×4 = 16 switches.
	if nw.Size() != 16 {
		t.Fatalf("size = %d", nw.Size())
	}
	if err := nw.VerifyExhaustive(4); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejects(t *testing.T) {
	if _, err := New(8, 1, 1); err == nil {
		t.Fatal("accepted d=1")
	}
	if _, err := New(0, 3, 1); err == nil {
		t.Fatal("accepted n=0")
	}
}

func TestNonPowerOfTwoSizes(t *testing.T) {
	// The 3n/4 recursion naturally visits non-powers of two; they must
	// build and verify.
	for _, n := range []int{5, 6, 12} {
		nw, err := New(n, 4, 3)
		if err != nil {
			t.Fatal(err)
		}
		maxR := n
		if n > 8 {
			maxR = 2
		}
		if err := nw.VerifyExhaustive(maxR); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestSuperconcentrator8Exhaustive(t *testing.T) {
	nw, err := New(8, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.VerifyExhaustive(8); err != nil {
		t.Fatal(err)
	}
	if err := nw.G.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSuperconcentrator16Exhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	nw, err := New(16, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive up to r=3 (C(16,3)² = 313600 flow calls is too many; cap
	// at r=2), then sampled across all r.
	if err := nw.VerifyExhaustive(2); err != nil {
		t.Fatal(err)
	}
	if v := nw.VerifySampled(300, rng.New(5)); v != 0 {
		t.Fatalf("%d sampled violations", v)
	}
}

func TestSuperconcentrator64Sampled(t *testing.T) {
	nw, err := New(64, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if v := nw.VerifySampled(120, rng.New(9)); v != 0 {
		t.Fatalf("%d sampled violations at n=64", v)
	}
}

func TestLinearSize(t *testing.T) {
	// Size must be O(n): the recursion T(n) = (2d+1)n + T(3n/4) solves to
	// ≤ 4(2d+1)n + base-crossbar slack, so size/n must stay below that
	// constant at every n.
	d := 4
	bound := float64(4*(2*d+1)) + 8 // geometric series + base cutoff slack
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		nw, err := New(n, d, 3)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(nw.Size()) / float64(n)
		if ratio > bound {
			t.Fatalf("n=%d: size/n = %v above linear bound %v", n, ratio, bound)
		}
	}
}

func TestFullSaturation(t *testing.T) {
	nw, _ := New(32, 4, 11)
	flow := maxflow.VertexDisjointPaths(nw.G, nw.G.Inputs(), nw.G.Outputs())
	if flow != 32 {
		t.Fatalf("r=n flow = %d", flow)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a, _ := New(16, 3, 42)
	b, _ := New(16, 3, 42)
	if a.Size() != b.Size() {
		t.Fatal("same seed, different networks")
	}
	c, _ := New(16, 3, 43)
	_ = c // different seed may or may not change the size; just ensure it builds
}
