// Package superconc implements n-superconcentrators: networks in which,
// for every r ≤ n, every set of r inputs can be joined to every set of r
// outputs by r vertex-disjoint paths [AHU].
//
// Valiant [V] showed O(n)-size superconcentrators exist; the explicit
// recursive construction here follows the Pippenger/Gabber–Galil scheme:
//
//	S(n) = n inputs ∥ n outputs
//	     + a perfect matching input_i → output_i              (n switches)
//	     + a concentrator C from the n inputs into ⌈3n/4⌉ hubs (d·n switches)
//	     + a recursive S(⌈3n/4⌉) on the hubs
//	     + the reverse concentrator from S(⌈3n/4⌉) to outputs (d·n switches)
//
// where C is a bipartite graph in which every set of k ≤ ⌈n/2⌉ inputs has
// at least k distinct hub neighbors (a Hall condition). The hub side being
// 3n/4 — strictly more than the n/2 that must concentrate — is what lets
// constant-degree random bipartite graphs satisfy Hall with the slack
// needed at small sizes; with a hub side of exactly n/2 the condition at
// k = n/2 would demand full coverage, which constant degree cannot give.
// Any r inputs route as follows: those whose matching partner output is
// chosen go direct, and the rest (at most min(r, n−r) ≤ n/2 of them)
// Hall-match into distinct hubs and recurse.
//
// Superconcentrators are the weakest class in the paper's hierarchy
// (nonblocking ⊂ rearrangeable ⊂ superconcentrator), and Theorem 1's lower
// bound is proved against them, which makes it bind for all three.
package superconc

import (
	"fmt"
	"math/bits"

	"ftcsn/internal/graph"
	"ftcsn/internal/maxflow"
	"ftcsn/internal/rng"
)

// BaseSize is the recursion cutoff: at or below this size a complete
// bipartite crossbar (trivially a superconcentrator) is used.
const BaseSize = 8

// Network is a materialized superconcentrator.
type Network struct {
	N int
	D int // concentrator degree
	G *graph.Graph
}

// New builds an n-superconcentrator for any n ≥ 1, with concentrator
// degree d (d ≥ 3 recommended) and randomness from seed.
func New(n, d int, seed uint64) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("superconc: n=%d must be positive", n)
	}
	if d < 2 {
		return nil, fmt.Errorf("superconc: degree d=%d too small", d)
	}
	r := rng.New(seed)
	b := graph.NewBuilder(4*n, (2*d+2)*n)
	ins := b.AddVertices(graph.NoStage, n)
	outs := b.AddVertices(graph.NoStage, n)
	inList := make([]int32, n)
	outList := make([]int32, n)
	for i := 0; i < n; i++ {
		inList[i] = ins + int32(i)
		outList[i] = outs + int32(i)
		b.MarkInput(inList[i])
		b.MarkOutput(outList[i])
	}
	build(b, inList, outList, d, r)
	return &Network{N: n, D: d, G: b.Freeze()}, nil
}

// build wires a superconcentrator between the given input and output
// vertex lists (recursive).
func build(b *graph.Builder, ins, outs []int32, d int, r *rng.RNG) {
	n := len(ins)
	if n <= BaseSize {
		for _, u := range ins {
			for _, v := range outs {
				b.AddEdge(u, v)
			}
		}
		return
	}
	// Perfect matching ins[i] → outs[i].
	for i := range ins {
		b.AddEdge(ins[i], outs[i])
	}
	hubs := (3*n + 3) / 4
	hubIn := b.AddVertices(graph.NoStage, hubs)
	hubOut := b.AddVertices(graph.NoStage, hubs)
	subIns := make([]int32, hubs)
	subOuts := make([]int32, hubs)
	for i := 0; i < hubs; i++ {
		subIns[i] = hubIn + int32(i)
		subOuts[i] = hubOut + int32(i)
	}
	// Forward concentrator: every input gets d switches into the hubs.
	fw := concentrator(n, hubs, d, r)
	for i, targets := range fw {
		for _, h := range targets {
			b.AddEdge(ins[i], subIns[h])
		}
	}
	build(b, subIns, subOuts, d, r)
	// Reverse concentrator: hubs back to the n outputs (mirror image).
	bw := concentrator(n, hubs, d, r)
	for o, sources := range bw {
		for _, h := range sources {
			b.AddEdge(subOuts[h], outs[o])
		}
	}
}

// hallRetries bounds the Las-Vegas resampling of a concentrator candidate.
const hallRetries = 200

// hallExactLimit is the largest n for which the Hall condition is checked
// exactly by subset enumeration (2^n subsets).
const hallExactLimit = 20

// concentrator returns, for each of n left vertices, d hub indices in
// [0,hubs), built from d random balanced assignments. The recursion needs
// the Hall condition — every set of k ≤ ⌈n/2⌉ left vertices must see at
// least k distinct hubs — which a random candidate can violate at small n,
// so candidates are verified (exactly for n ≤ hallExactLimit,
// adversarially+sampled above) and resampled until one passes: a Las Vegas
// construction in the spirit of Bassalygo–Pinsker.
func concentrator(n, hubs, d int, r *rng.RNG) [][]int32 {
	need := (n + 1) / 2
	for attempt := 0; attempt < hallRetries; attempt++ {
		cand := make([][]int32, n)
		for k := 0; k < d; k++ {
			perm := r.Perm(n)
			for pos, left := range perm {
				cand[left] = append(cand[left], int32(pos%hubs))
			}
		}
		if hallOK(cand, n, hubs, need, r) {
			return cand
		}
	}
	panic(fmt.Sprintf("superconc: no Hall concentrator found for n=%d hubs=%d d=%d after %d attempts; increase d", n, hubs, d, hallRetries))
}

// hallOK verifies the Hall condition for subsets of size ≤ maxK.
func hallOK(cand [][]int32, n, hubs, maxK int, r *rng.RNG) bool {
	if hubs > 64 {
		// Large instances: bitmask words don't fit; use the sampled path.
		return hallSampled(cand, n, hubs, maxK, r)
	}
	neighborMask := make([]uint64, n)
	for i, hs := range cand {
		for _, h := range hs {
			neighborMask[i] |= 1 << uint(h)
		}
	}
	if n <= hallExactLimit {
		// Exact: enumerate every subset of size ≤ maxK.
		for s := uint(1); s < 1<<uint(n); s++ {
			size := popcount(uint64(s))
			if size > maxK {
				continue
			}
			var union uint64
			rest := s
			for rest != 0 {
				i := trailingZeros(rest)
				rest &^= 1 << uint(i)
				union |= neighborMask[i]
			}
			if popcount(union) < size {
				return false
			}
		}
		return true
	}
	return hallSampledMask(neighborMask, n, maxK, r)
}

// hallSampledMask probes the Hall condition with greedy adversarial seeds
// and random subsets using precomputed neighbor masks.
func hallSampledMask(mask []uint64, n, maxK int, r *rng.RNG) bool {
	// Greedy adversary: grow a set adding the vertex contributing the
	// fewest new hubs, from several random seeds.
	for seed := 0; seed < 8; seed++ {
		inSet := make([]bool, n)
		var union uint64
		v0 := r.Intn(n)
		inSet[v0] = true
		union |= mask[v0]
		size := 1
		for size < maxK {
			best, bestNew := -1, 65
			for i := 0; i < n; i++ {
				if inSet[i] {
					continue
				}
				nw := popcount(mask[i] &^ union)
				if nw < bestNew {
					best, bestNew = i, nw
				}
			}
			inSet[best] = true
			union |= mask[best]
			size++
			if popcount(union) < size {
				return false
			}
		}
	}
	// Random subsets near the critical size k = maxK.
	for probe := 0; probe < 200; probe++ {
		k := maxK - r.Intn(3)
		if k < 1 {
			k = 1
		}
		var union uint64
		for _, i := range r.Sample(n, k) {
			union |= mask[i]
		}
		if popcount(union) < k {
			return false
		}
	}
	return true
}

// hallSampled is hallSampledMask for hubs > 64, using bool slices.
func hallSampled(cand [][]int32, n, hubs, maxK int, r *rng.RNG) bool {
	cover := make([]bool, hubs)
	count := func(set []int) int {
		for i := range cover {
			cover[i] = false
		}
		c := 0
		for _, i := range set {
			for _, h := range cand[i] {
				if !cover[h] {
					cover[h] = true
					c++
				}
			}
		}
		return c
	}
	for probe := 0; probe < 300; probe++ {
		k := 1 + r.Intn(maxK)
		if probe < 100 {
			k = maxK - r.Intn(3)
			if k < 1 {
				k = 1
			}
		}
		set := r.Sample(n, k)
		if count(set) < k {
			return false
		}
	}
	return true
}

func popcount(x uint64) int { return bits.OnesCount64(x) }

func trailingZeros(x uint) int { return bits.TrailingZeros(x) }

// VerifyExhaustive checks the superconcentrator property exactly for all
// r-subset pairs with r ≤ maxR via max-flow. Exponential in n; callers
// should keep n ≤ 8 or so.
func (nw *Network) VerifyExhaustive(maxR int) error {
	n := nw.N
	ins := nw.G.Inputs()
	outs := nw.G.Outputs()
	var inSet, outSet []int32
	var rec func(pool []int32, start, need int, chosen []int32, fill func([]int32) error) error
	rec = func(pool []int32, start, need int, chosen []int32, fill func([]int32) error) error {
		if need == 0 {
			return fill(chosen)
		}
		for i := start; i <= len(pool)-need; i++ {
			if err := rec(pool, i+1, need-1, append(chosen, pool[i]), fill); err != nil {
				return err
			}
		}
		return nil
	}
	for r := 1; r <= maxR && r <= n; r++ {
		err := rec(ins, 0, r, nil, func(chosenIn []int32) error {
			inSet = append(inSet[:0], chosenIn...)
			return rec(outs, 0, r, nil, func(chosenOut []int32) error {
				outSet = append(outSet[:0], chosenOut...)
				flow := maxflow.VertexDisjointPaths(nw.G, inSet, outSet)
				if flow < r {
					return fmt.Errorf("superconc: r=%d: inputs %v outputs %v get only %d disjoint paths", r, inSet, outSet, flow)
				}
				return nil
			})
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// VerifySampled checks the property on `samples` uniformly random
// (r, input-set, output-set) triples and returns the number of violations.
func (nw *Network) VerifySampled(samples int, r *rng.RNG) (violations int) {
	ins := nw.G.Inputs()
	outs := nw.G.Outputs()
	for s := 0; s < samples; s++ {
		k := 1 + r.Intn(nw.N)
		inIdx := r.Sample(nw.N, k)
		outIdx := r.Sample(nw.N, k)
		inSet := make([]int32, k)
		outSet := make([]int32, k)
		for i, v := range inIdx {
			inSet[i] = ins[v]
		}
		for i, v := range outIdx {
			outSet[i] = outs[v]
		}
		if maxflow.VertexDisjointPaths(nw.G, inSet, outSet) < k {
			violations++
		}
	}
	return violations
}

// Size returns the switch count; the construction is O(n): at most
// (2d+2)·2n switches over the whole recursion.
func (nw *Network) Size() int { return nw.G.NumEdges() }
