package superconc

// Property tests of the superconcentrator construction and its role as
// the weakest class of the paper's hierarchy.

import (
	"testing"
	"testing/quick"

	"ftcsn/internal/fault"
	"ftcsn/internal/maxflow"
	"ftcsn/internal/rng"
)

func TestQuickConstructionSound(t *testing.T) {
	root := rng.New(0x5C)
	f := func(tick uint16) bool {
		r := root.Split(uint64(tick))
		n := 4 + r.Intn(28)
		d := 3 + r.Intn(3)
		nw, err := New(n, d, r.Uint64())
		if err != nil {
			return false
		}
		if nw.G.Validate() != nil {
			return false
		}
		// r=1: every input reaches every output.
		in := nw.G.Inputs()[r.Intn(n)]
		out := nw.G.Outputs()[r.Intn(n)]
		if maxflow.VertexDisjointPaths(nw.G, []int32{in}, []int32{out}) != 1 {
			return false
		}
		// r=n: full saturation.
		return maxflow.VertexDisjointPaths(nw.G, nw.G.Inputs(), nw.G.Outputs()) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSampledPropertyAcrossSeeds(t *testing.T) {
	// The Las-Vegas construction must verify across many seeds, not just
	// the lucky ones used elsewhere.
	for seed := uint64(0); seed < 8; seed++ {
		nw, err := New(16, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		if v := nw.VerifySampled(60, rng.New(seed+100)); v != 0 {
			t.Fatalf("seed %d: %d sampled violations", seed, v)
		}
	}
}

func TestSuperconcentratorUnderFaults(t *testing.T) {
	// Like every constant-degree network, the superconcentrator dies under
	// random faults as n grows — it is subject to Theorem 1 too (the
	// weakest class is exactly what the lower bound is proved against).
	// NOTE: the construction's direct matching switches join terminals, so
	// a SINGLE closed switch already shorts an input to its partner output
	// — failure scales like 1−(1−ε)^Θ(n) and saturates fast. Keep ε small
	// enough that the small instance usually survives.
	rate := func(n int) float64 {
		nw, err := New(n, 4, 3)
		if err != nil {
			t.Fatal(err)
		}
		inst := fault.NewInstance(nw.G)
		fails := 0
		const trials = 200
		for i := 0; i < trials; i++ {
			inst.Reinject(fault.Symmetric(0.001), rng.Stream(9, uint64(i)))
			if !inst.SurvivesBasicChecks() {
				fails++
			}
		}
		return float64(fails) / trials
	}
	small, large := rate(8), rate(256)
	if large <= small {
		t.Fatalf("failure rate did not grow with n: %v -> %v", small, large)
	}
}

func TestMatchingEdgesPresent(t *testing.T) {
	// The recursion's direct matching input_i → output_i must exist at the
	// top level (it is what serves fixed points cheaply).
	nw, err := New(16, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range nw.G.Inputs() {
		found := false
		for _, e := range nw.G.OutEdges(in) {
			if nw.G.EdgeTo(e) == nw.G.Outputs()[i] {
				found = true
			}
		}
		if !found {
			t.Fatalf("matching switch %d missing", i)
		}
	}
}

func TestHubCountIsThreeQuarters(t *testing.T) {
	// Structural: top-level hubs = ⌈3n/4⌉, visible as the out-neighbors of
	// inputs other than the matching partner.
	nw, err := New(16, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	hubSet := map[int32]bool{}
	for i, in := range nw.G.Inputs() {
		for _, e := range nw.G.OutEdges(in) {
			to := nw.G.EdgeTo(e)
			if to != nw.G.Outputs()[i] {
				hubSet[to] = true
			}
		}
	}
	if len(hubSet) != 12 { // 3·16/4
		t.Fatalf("hub count = %d, want 12", len(hubSet))
	}
}
