// Command benchdiff turns `go test -bench` output into a machine-readable
// baseline and gates benchmark regressions against it — the benchstat-style
// comparison behind the CI bench job.
//
// Emit a baseline (reads bench output on stdin):
//
//	go test -run=NONE -bench '...' -count=6 -benchmem -cpu=1 . > bench.out
//	go test -run=NONE -bench '...' -count=6 -benchmem -cpu=4,8 . >> bench.out
//	benchdiff -emit -commit "$(git rev-parse --short HEAD)" < bench.out > BENCH.json
//
// Gate against a committed baseline (reads current bench output on stdin,
// exits 1 on regression):
//
//	benchdiff -baseline BENCH.json -threshold 0.15 < bench.out
//
// Benchmarks are keyed per cpu count: Go suffixes benchmark names with
// `-N` when run at GOMAXPROCS=N≠1 (`-cpu=4` turns BenchmarkFoo into
// BenchmarkFoo-4), and benchdiff folds each (name, cpu) pair separately,
// so one baseline carries single-core and multi-core numbers side by
// side. Every (name, cpu) recorded in the baseline is gated: a missing
// measurement or an ns/op regression beyond the threshold fails the run
// at every cpu count; the allocs/op can't-increase gate applies at cpu=1
// only (parallel runs schedule-jitter their steady-state allocation
// counts, single-core runs don't). Repeated -count runs are folded by
// minimum (ns/op, allocs/op — the least-noise estimator for regression
// gating) and maximum for throughput metrics.
//
// The baseline records the Go version and commit it was measured at; both
// fields are mandatory (a baseline without provenance is unverifiable and
// the gate refuses it), and a baseline in the pre-per-cpu flat schema is
// rejected loudly — refresh with `make bench-baseline`. When the baseline
// commit is not an ancestor of HEAD the gate warns: the numbers were
// measured on a tree this branch does not contain.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Entry is one (benchmark, cpu count)'s folded measurements.
type Entry struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
	// Extra holds informational custom metrics (e.g. req/s), folded by max
	// since custom metrics here are throughputs. Not gated.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Bench is one benchmark's measurements across cpu counts, keyed by the
// decimal GOMAXPROCS the run used ("1", "4", ...).
type Bench struct {
	Cpus map[string]Entry `json:"cpus"`
}

// Baseline is the committed BENCH.json schema.
type Baseline struct {
	Go         string           `json:"go"`
	Commit     string           `json:"commit"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

// benchLine splits a result line into name, optional cpu suffix, and the
// measurement fields. Go appends `-N` to the name only when the benchmark
// ran at GOMAXPROCS=N≠1, so a bare name means cpu=1.
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-(\d+))?\s+\d+\s+(.*)$`)

// parse folds bench output into per-(benchmark, cpu) entries: min ns/op
// and allocs/op, max custom metrics across repeated counts.
func parse(r io.Reader) (map[string]Bench, error) {
	out := map[string]Bench{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name, cpu := m[1], m[2]
		if cpu == "" {
			cpu = "1"
		}
		fields := strings.Fields(m[3])
		e := Entry{NsOp: -1, AllocsOp: -1}
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad value %q for %s", fields[i], name)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsOp = v
			case "allocs/op":
				e.AllocsOp = v
			case "B/op", "MB/s":
				// byte metrics ride along with allocs; not folded
			default:
				if e.Extra == nil {
					e.Extra = map[string]float64{}
				}
				e.Extra[unit] = v
			}
		}
		if e.NsOp < 0 {
			continue
		}
		b, ok := out[name]
		if !ok {
			b = Bench{Cpus: map[string]Entry{}}
			out[name] = b
		}
		prev, ok := b.Cpus[cpu]
		if !ok {
			b.Cpus[cpu] = e
			continue
		}
		if e.NsOp < prev.NsOp {
			prev.NsOp = e.NsOp
		}
		if e.AllocsOp >= 0 && (prev.AllocsOp < 0 || e.AllocsOp < prev.AllocsOp) {
			prev.AllocsOp = e.AllocsOp
		}
		for k, v := range e.Extra {
			if prev.Extra == nil {
				prev.Extra = map[string]float64{}
			}
			if v > prev.Extra[k] {
				prev.Extra[k] = v
			}
		}
		b.Cpus[cpu] = prev
	}
	return out, sc.Err()
}

// validate rejects baselines the gate cannot vouch for: missing
// provenance fields, and the pre-per-cpu flat schema (whose entries
// decode to a nil Cpus map — failing loudly here is the compatibility
// contract, a flat baseline must never gate silently as "no benchmarks").
// validCommit accepts a commit identifier as provenance: non-blank and
// not the "unknown" placeholder old emit invocations defaulted to.
func validCommit(c string) bool {
	c = strings.TrimSpace(c)
	return c != "" && c != "unknown"
}

func validate(base Baseline, path string) error {
	if base.Go == "" {
		return fmt.Errorf("benchdiff: %s: missing \"go\" field; regenerate with `make bench-baseline`", path)
	}
	if !validCommit(base.Commit) {
		return fmt.Errorf("benchdiff: %s: missing \"commit\" field (empty or %q); regenerate with `make bench-baseline`", path, base.Commit)
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("benchdiff: %s: no benchmarks in baseline", path)
	}
	for name, b := range base.Benchmarks {
		if len(b.Cpus) == 0 {
			return fmt.Errorf("benchdiff: %s: %s has no \"cpus\" map — pre-per-cpu baseline schema; regenerate with `make bench-baseline`", path, name)
		}
	}
	return nil
}

// sortedCpus returns the cpu keys in numeric order ("1" before "10").
func sortedCpus(m map[string]Entry) []string {
	cpus := make([]string, 0, len(m))
	for c := range m {
		cpus = append(cpus, c)
	}
	sort.Slice(cpus, func(i, j int) bool {
		a, _ := strconv.Atoi(cpus[i])
		b, _ := strconv.Atoi(cpus[j])
		return a != b && a < b || a == b && cpus[i] < cpus[j]
	})
	return cpus
}

// gate compares the current measurements against the baseline, printing a
// line per gated (benchmark, cpu) and returning false on any regression:
// missing measurement, ns/op beyond threshold (every cpu), or an
// allocs/op increase (cpu=1 only).
func gate(base Baseline, cur map[string]Bench, threshold float64, w io.Writer) bool {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	ok := true
	fail := func(format string, args ...any) {
		ok = false
		fmt.Fprintf(w, "FAIL  "+format+"\n", args...)
	}
	for _, name := range names {
		for _, cpu := range sortedCpus(base.Benchmarks[name].Cpus) {
			b := base.Benchmarks[name].Cpus[cpu]
			tag := fmt.Sprintf("%s (cpu=%s)", name, cpu)
			c, found := cur[name].Cpus[cpu]
			if !found {
				fail("%s: gated benchmark missing from current run", tag)
				continue
			}
			ratio := c.NsOp / b.NsOp
			switch {
			case ratio > 1+threshold:
				fail("%s: ns/op %.0f -> %.0f (%+.1f%%, threshold %.0f%%)",
					tag, b.NsOp, c.NsOp, (ratio-1)*100, threshold*100)
			case cpu == "1" && c.AllocsOp > b.AllocsOp && b.AllocsOp >= 0:
				fail("%s: allocs/op %.0f -> %.0f", tag, b.AllocsOp, c.AllocsOp)
			default:
				fmt.Fprintf(w, "ok    %s: ns/op %.0f -> %.0f (%+.1f%%), allocs/op %.0f\n",
					tag, b.NsOp, c.NsOp, (ratio-1)*100, c.AllocsOp)
			}
		}
	}
	// Surface baseline drift: measurements taken now but absent from the
	// committed baseline are NOT gated until `make bench-baseline` records
	// them.
	var ungated []string
	for name, b := range cur {
		for _, cpu := range sortedCpus(b.Cpus) {
			if _, found := base.Benchmarks[name].Cpus[cpu]; !found {
				ungated = append(ungated, fmt.Sprintf("%s (cpu=%s)", name, cpu))
			}
		}
	}
	sort.Strings(ungated)
	for _, tag := range ungated {
		fmt.Fprintf(w, "warn  %s: not in baseline — ungated until the baseline is refreshed\n", tag)
	}
	return ok
}

// checkAncestry warns when the baseline commit is not an ancestor of HEAD
// — the recorded numbers were measured on a tree this branch does not
// contain, so the comparison's provenance is broken (stale or foreign
// baseline). A definitive "not an ancestor" answer from git (exit 1) is a
// loud warning; any other git failure (shallow CI clone, unknown ref,
// no git at all) is a quiet note, since it proves nothing either way.
func checkAncestry(commit string, w io.Writer) {
	cmd := exec.Command("git", "merge-base", "--is-ancestor", commit, "HEAD")
	err := cmd.Run()
	if err == nil {
		return
	}
	if ee, ok := err.(*exec.ExitError); ok && ee.ExitCode() == 1 {
		fmt.Fprintf(w, "warn  baseline commit %s is not an ancestor of HEAD — baseline measured on a foreign or rewritten tree; refresh with `make bench-baseline`\n", commit)
		return
	}
	fmt.Fprintf(w, "note  could not verify baseline commit %s against HEAD (%v)\n", commit, err)
}

func main() {
	emit := flag.Bool("emit", false, "emit a BENCH.json baseline from bench output on stdin")
	commit := flag.String("commit", "", "commit identifier recorded in the baseline (required with -emit)")
	baselinePath := flag.String("baseline", "", "committed baseline to gate bench output (stdin) against")
	threshold := flag.Float64("threshold", 0.15, "allowed fractional ns/op regression before failing")
	flag.Parse()

	cur, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines on stdin")
		os.Exit(2)
	}

	switch {
	case *emit:
		// Refuse to mint a baseline without provenance: an empty or
		// placeholder commit is exactly the silent-drift class the gate's
		// ancestry check exists to catch, and it must fail at write time,
		// not when the broken baseline later gates a PR.
		if !validCommit(*commit) {
			fmt.Fprintf(os.Stderr, "benchdiff: -emit requires -commit (got %q); use -commit \"$(git rev-parse --short HEAD)\"\n", *commit)
			os.Exit(2)
		}
		b := Baseline{Go: runtime.Version(), Commit: *commit, Benchmarks: cur}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(b); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	case *baselinePath != "":
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		var base Baseline
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *baselinePath, err)
			os.Exit(2)
		}
		if err := validate(base, *baselinePath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if base.Go != runtime.Version() {
			fmt.Fprintf(os.Stderr, "benchdiff: note: baseline measured on %s (commit %s), running %s\n",
				base.Go, base.Commit, runtime.Version())
		}
		checkAncestry(base.Commit, os.Stdout)
		if !gate(base, cur, *threshold, os.Stdout) {
			fmt.Println("benchdiff: benchmark regression gate FAILED")
			os.Exit(1)
		}
		fmt.Println("benchdiff: all gated benchmarks within threshold")
	default:
		fmt.Fprintln(os.Stderr, "benchdiff: need -emit or -baseline; see package doc")
		os.Exit(2)
	}
}
