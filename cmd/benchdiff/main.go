// Command benchdiff turns `go test -bench` output into a machine-readable
// baseline and gates benchmark regressions against it — the benchstat-style
// comparison behind the CI bench job.
//
// Emit a baseline (reads bench output on stdin):
//
//	go test -run=NONE -bench '...' -count=6 -benchmem . > bench.out
//	benchdiff -emit -commit "$(git rev-parse --short HEAD)" < bench.out > BENCH.json
//
// Gate against a committed baseline (reads current bench output on stdin,
// exits 1 on regression):
//
//	benchdiff -baseline BENCH.json -threshold 0.15 < bench.out
//
// Every benchmark recorded in the baseline is gated: a missing benchmark,
// an ns/op regression beyond the threshold, or any allocs/op increase
// fails the run. Repeated -count runs are folded by minimum (ns/op,
// allocs/op — the least-noise estimator for regression gating) and maximum
// for throughput metrics. The baseline records the Go version and commit
// it was measured at; refresh it with `make bench-baseline` when the
// benchmark set or the reference hardware changes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's folded measurements.
type Entry struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
	// Extra holds informational custom metrics (e.g. req/s), folded by max
	// since custom metrics here are throughputs. Not gated.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Baseline is the committed BENCH.json schema.
type Baseline struct {
	Go         string           `json:"go"`
	Commit     string           `json:"commit"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parse folds bench output into per-benchmark entries (min ns/op and
// allocs/op, max custom metrics across repeated counts).
func parse(r *os.File) (map[string]Entry, error) {
	out := map[string]Entry{}
	seen := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		fields := strings.Fields(m[2])
		e := Entry{NsOp: -1, AllocsOp: -1}
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad value %q for %s", fields[i], name)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsOp = v
			case "allocs/op":
				e.AllocsOp = v
			case "B/op", "MB/s":
				// byte metrics ride along with allocs; not folded
			default:
				if e.Extra == nil {
					e.Extra = map[string]float64{}
				}
				e.Extra[unit] = v
			}
		}
		if e.NsOp < 0 {
			continue
		}
		if !seen[name] {
			seen[name] = true
			out[name] = e
			continue
		}
		prev := out[name]
		if e.NsOp < prev.NsOp {
			prev.NsOp = e.NsOp
		}
		if e.AllocsOp >= 0 && (prev.AllocsOp < 0 || e.AllocsOp < prev.AllocsOp) {
			prev.AllocsOp = e.AllocsOp
		}
		for k, v := range e.Extra {
			if prev.Extra == nil {
				prev.Extra = map[string]float64{}
			}
			if v > prev.Extra[k] {
				prev.Extra[k] = v
			}
		}
		out[name] = prev
	}
	return out, sc.Err()
}

func main() {
	emit := flag.Bool("emit", false, "emit a BENCH.json baseline from bench output on stdin")
	commit := flag.String("commit", "unknown", "commit identifier recorded in the baseline")
	baselinePath := flag.String("baseline", "", "committed baseline to gate bench output (stdin) against")
	threshold := flag.Float64("threshold", 0.15, "allowed fractional ns/op regression before failing")
	flag.Parse()

	cur, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines on stdin")
		os.Exit(2)
	}

	switch {
	case *emit:
		b := Baseline{Go: runtime.Version(), Commit: *commit, Benchmarks: cur}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(b); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	case *baselinePath != "":
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		var base Baseline
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *baselinePath, err)
			os.Exit(2)
		}
		if base.Go != runtime.Version() {
			fmt.Fprintf(os.Stderr, "benchdiff: note: baseline measured on %s (commit %s), running %s\n",
				base.Go, base.Commit, runtime.Version())
		}
		names := make([]string, 0, len(base.Benchmarks))
		for name := range base.Benchmarks {
			names = append(names, name)
		}
		sort.Strings(names)
		failed := false
		fail := func(format string, args ...any) {
			failed = true
			fmt.Printf("FAIL  "+format+"\n", args...)
		}
		for _, name := range names {
			b := base.Benchmarks[name]
			c, ok := cur[name]
			if !ok {
				fail("%s: gated benchmark missing from current run", name)
				continue
			}
			ratio := c.NsOp / b.NsOp
			switch {
			case ratio > 1+*threshold:
				fail("%s: ns/op %.0f -> %.0f (%+.1f%%, threshold %.0f%%)",
					name, b.NsOp, c.NsOp, (ratio-1)*100, *threshold*100)
			case c.AllocsOp > b.AllocsOp && b.AllocsOp >= 0:
				fail("%s: allocs/op %.0f -> %.0f", name, b.AllocsOp, c.AllocsOp)
			default:
				fmt.Printf("ok    %s: ns/op %.0f -> %.0f (%+.1f%%), allocs/op %.0f\n",
					name, b.NsOp, c.NsOp, (ratio-1)*100, c.AllocsOp)
			}
		}
		// Surface baseline drift: benchmarks measured now but absent from
		// the committed baseline are NOT gated until `make bench-baseline`
		// records them.
		var ungated []string
		for name := range cur {
			if _, ok := base.Benchmarks[name]; !ok {
				ungated = append(ungated, name)
			}
		}
		sort.Strings(ungated)
		for _, name := range ungated {
			fmt.Printf("warn  %s: not in baseline — ungated until the baseline is refreshed\n", name)
		}
		if failed {
			fmt.Println("benchdiff: benchmark regression gate FAILED")
			os.Exit(1)
		}
		fmt.Println("benchdiff: all gated benchmarks within threshold")
	default:
		fmt.Fprintln(os.Stderr, "benchdiff: need -emit or -baseline; see package doc")
		os.Exit(2)
	}
}
