package main

import (
	"strings"
	"testing"
)

const sampleOut = `goos: linux
goarch: amd64
BenchmarkGreedyConnect 	   79482	     15238 ns/op	       0 B/op	       0 allocs/op
BenchmarkGreedyConnect 	   80000	     15100 ns/op	       0 B/op	       0 allocs/op
BenchmarkShardedChurn/shards=8 	  165000	      7186 ns/op	   2226552 req/s	       0 allocs/op
BenchmarkShardedChurn/shards=8-4 	  300000	      3900 ns/op	   4100000 req/s	       0 allocs/op
BenchmarkShardedChurn/shards=8-4 	  310000	      3800 ns/op	   4000000 req/s	       0 allocs/op
PASS
`

func TestParsePerCpu(t *testing.T) {
	got, err := parse(strings.NewReader(sampleOut))
	if err != nil {
		t.Fatal(err)
	}
	gc, ok := got["BenchmarkGreedyConnect"]
	if !ok || len(gc.Cpus) != 1 {
		t.Fatalf("GreedyConnect: want 1 cpu entry, got %+v", gc)
	}
	if e := gc.Cpus["1"]; e.NsOp != 15100 || e.AllocsOp != 0 {
		t.Errorf("GreedyConnect cpu=1: want min-folded ns_op=15100 allocs=0, got %+v", e)
	}
	sc, ok := got["BenchmarkShardedChurn/shards=8"]
	if !ok || len(sc.Cpus) != 2 {
		t.Fatalf("ShardedChurn: want cpu entries {1,4}, got %+v", sc)
	}
	if e := sc.Cpus["1"]; e.NsOp != 7186 || e.Extra["req/s"] != 2226552 {
		t.Errorf("ShardedChurn cpu=1: got %+v", e)
	}
	if e := sc.Cpus["4"]; e.NsOp != 3800 || e.Extra["req/s"] != 4100000 {
		t.Errorf("ShardedChurn cpu=4: want min ns_op=3800, max req/s=4100000, got %+v", e)
	}
}

func bench(cpus map[string]Entry) Bench { return Bench{Cpus: cpus} }

func TestValidateRejectsFlatAndMissingProvenance(t *testing.T) {
	good := Baseline{Go: "go1.24.0", Commit: "abc1234",
		Benchmarks: map[string]Bench{"BenchmarkX": bench(map[string]Entry{"1": {NsOp: 10}})}}
	if err := validate(good, "BENCH.json"); err != nil {
		t.Errorf("valid baseline rejected: %v", err)
	}
	cases := []struct {
		name string
		b    Baseline
		want string
	}{
		{"missing go", Baseline{Commit: "abc", Benchmarks: good.Benchmarks}, `"go"`},
		{"missing commit", Baseline{Go: "go1.24.0", Benchmarks: good.Benchmarks}, `"commit"`},
		{"blank commit", Baseline{Go: "go1.24.0", Commit: "   ", Benchmarks: good.Benchmarks}, `"commit"`},
		// "unknown" was the historical -commit flag default: a baseline
		// carrying it has no provenance and must be refused like an empty one.
		{"placeholder commit", Baseline{Go: "go1.24.0", Commit: "unknown", Benchmarks: good.Benchmarks}, `"commit"`},
		{"empty", Baseline{Go: "go1.24.0", Commit: "abc"}, "no benchmarks"},
		// The pre-per-cpu flat schema decodes to entries with a nil Cpus
		// map; it must be refused loudly, never gated as an empty set.
		{"flat schema", Baseline{Go: "go1.24.0", Commit: "abc",
			Benchmarks: map[string]Bench{"BenchmarkX": {}}}, "pre-per-cpu"},
	}
	for _, tc := range cases {
		err := validate(tc.b, "BENCH.json")
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}

func TestGatePerCpu(t *testing.T) {
	base := Baseline{Go: "go1.24.0", Commit: "abc1234", Benchmarks: map[string]Bench{
		"BenchmarkX": bench(map[string]Entry{
			"1": {NsOp: 1000, AllocsOp: 0},
			"4": {NsOp: 400, AllocsOp: 0},
		}),
	}}

	run := func(cur map[string]Bench) (bool, string) {
		var sb strings.Builder
		ok := gate(base, cur, 0.15, &sb)
		return ok, sb.String()
	}

	if ok, out := run(map[string]Bench{"BenchmarkX": bench(map[string]Entry{
		"1": {NsOp: 1050, AllocsOp: 0}, "4": {NsOp: 420, AllocsOp: 0},
	})}); !ok {
		t.Errorf("within threshold at both cpus should pass:\n%s", out)
	}

	// ns/op gates apply at every cpu count.
	if ok, out := run(map[string]Bench{"BenchmarkX": bench(map[string]Entry{
		"1": {NsOp: 1050, AllocsOp: 0}, "4": {NsOp: 600, AllocsOp: 0},
	})}); ok || !strings.Contains(out, "cpu=4") {
		t.Errorf("cpu=4 regression should fail naming the cpu:\n%s", out)
	}

	// The allocs/op gate is pinned to cpu=1: parallel schedules jitter
	// allocation counts, single-core runs must stay exact.
	if ok, out := run(map[string]Bench{"BenchmarkX": bench(map[string]Entry{
		"1": {NsOp: 1000, AllocsOp: 0}, "4": {NsOp: 400, AllocsOp: 2},
	})}); !ok {
		t.Errorf("alloc increase at cpu=4 must not gate:\n%s", out)
	}
	if ok, out := run(map[string]Bench{"BenchmarkX": bench(map[string]Entry{
		"1": {NsOp: 1000, AllocsOp: 1}, "4": {NsOp: 400, AllocsOp: 0},
	})}); ok || !strings.Contains(out, "allocs/op") {
		t.Errorf("alloc increase at cpu=1 must fail:\n%s", out)
	}

	// A cpu count recorded in the baseline but absent from the run fails.
	if ok, out := run(map[string]Bench{"BenchmarkX": bench(map[string]Entry{
		"1": {NsOp: 1000, AllocsOp: 0},
	})}); ok || !strings.Contains(out, "missing") {
		t.Errorf("missing cpu=4 measurement must fail:\n%s", out)
	}

	// Extra measurements only warn until the baseline records them.
	if ok, out := run(map[string]Bench{
		"BenchmarkX": bench(map[string]Entry{"1": {NsOp: 1000, AllocsOp: 0}, "4": {NsOp: 400, AllocsOp: 0}}),
		"BenchmarkY": bench(map[string]Entry{"8": {NsOp: 50, AllocsOp: 0}}),
	}); !ok || !strings.Contains(out, "warn  BenchmarkY (cpu=8)") {
		t.Errorf("unknown benchmark should warn, not gate:\n%s", out)
	}
}

func TestValidCommit(t *testing.T) {
	for c, want := range map[string]bool{
		"abc1234": true,
		"":        false,
		"  ":      false,
		"unknown": false,
	} {
		if got := validCommit(c); got != want {
			t.Errorf("validCommit(%q) = %v, want %v", c, got, want)
		}
	}
}
