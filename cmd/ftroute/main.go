// Command ftroute demonstrates circuit routing on a faulted, repaired
// Network 𝒩: it injects switch failures, applies the paper's discard
// repair, prints the majority-access certificate, then drives a random
// connect/disconnect session workload and reports per-request outcomes.
//
// Usage:
//
//	ftroute -nu 2 -eps 0.002 -ops 40 [-concurrent -workers 4]
package main

import (
	"flag"
	"fmt"
	"os"

	"ftcsn/internal/core"
	"ftcsn/internal/fault"
	"ftcsn/internal/netsim"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
)

func main() {
	nu := flag.Int("nu", 2, "ν (n = 4^ν terminals)")
	m := flag.Int("m", 8, "row multiplier M")
	dq := flag.Int("dq", 3, "expander matchings per quarter")
	eps := flag.Float64("eps", 0.002, "switch failure rate ε (open = closed = ε)")
	ops := flag.Int("ops", 40, "churn operations")
	seed := flag.Uint64("seed", 7, "seed")
	concurrent := flag.Bool("concurrent", false, "use the CAS-claiming concurrent router for a batch permutation")
	workers := flag.Int("workers", 4, "concurrent workers")
	flag.Parse()

	p := core.Params{Nu: *nu, Gamma: 0, M: *m, DQ: *dq, Seed: 1}
	nw, err := core.Build(p)
	die(err)
	fmt.Printf("network-N: n=%d, %d switches, depth %d\n", p.N(), nw.G.NumEdges(), core.Accounting(p).Depth)

	r := rng.New(*seed)
	inst := fault.Inject(nw.G, fault.Symmetric(*eps), r)
	fmt.Printf("faults: %d open, %d closed of %d switches (ε=%v)\n",
		inst.NumOpen(), inst.NumClosed(), nw.G.NumEdges(), *eps)
	if a, b := inst.ShortedTerminals(); a >= 0 {
		fmt.Printf("FATAL FAULT PATTERN: terminals %d and %d are shorted together\n", a, b)
	}

	masks := core.RepairMasks(inst)
	discarded := 0
	for _, ok := range masks.VertexOK {
		if !ok {
			discarded++
		}
	}
	fmt.Printf("repair: discarded %d faulty vertices\n", discarded)

	ac := core.NewAccessChecker(nw)
	rep := nw.MajorityAccess(ac, masks)
	fmt.Printf("majority-access certificate (Lemma 6): OK=%v (middle stage %d, strict majority needed %d)\n",
		rep.OK, rep.MiddleSize, rep.MiddleSize/2+1)

	if *concurrent {
		n := p.N()
		perm := r.Perm(n)
		reqs := make([]route.Request, n)
		for i := range reqs {
			reqs[i] = route.Request{In: nw.Inputs()[i], Out: nw.Outputs()[perm[i]]}
		}
		cr := route.NewConcurrentRepairedRouter(inst)
		results := cr.ServeBatch(reqs, *workers, *seed)
		okCount := 0
		for _, res := range results {
			if res.Path != nil {
				okCount++
			}
		}
		fmt.Printf("concurrent batch: %d/%d circuits established with %d workers (disjoint=%v)\n",
			okCount, n, *workers, route.VerifyDisjoint(results))
		return
	}

	rt := route.NewRepairedRouter(inst)
	var cd netsim.ChurnDriver
	connects, failures, pathTotal := cd.Run(rt, nw.Inputs(), nw.Outputs(), *ops, r)
	fmt.Printf("churn: %d connects, %d blocked, mean path length %.1f switches, %d circuits live at end\n",
		connects, failures, avg(pathTotal, connects-failures), rt.ActiveCircuits())
	if err := rt.VerifyInvariants(); err != nil {
		fmt.Printf("INVARIANT VIOLATION: %v\n", err)
		os.Exit(1)
	}
	if rep.OK && failures > 0 {
		fmt.Println("WARNING: requests blocked despite the majority-access certificate — please file a bug")
	}
}

func avg(total, n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(total) / float64(n)
}

func die(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftroute: %v\n", err)
		os.Exit(1)
	}
}
