// Command ftsim runs Monte-Carlo fault simulations on Network 𝒩 and the
// baselines: for a sweep of switch-failure rates ε it reports the
// probability that the network survives (and, for 𝒩, the full Theorem-2
// pipeline outcome).
//
// Usage:
//
//	ftsim -nu 2 -trials 200 -eps 0.0005,0.002,0.01 [-churn 100]
//	ftsim -kind benes -k 6 -trials 500 -eps 0.01,0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ftcsn/internal/benes"
	"ftcsn/internal/butterfly"
	"ftcsn/internal/core"
	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
	"ftcsn/internal/montecarlo"
	"ftcsn/internal/rng"
	"ftcsn/internal/stats"
)

func main() {
	kind := flag.String("kind", "network-n", "network-n | benes | butterfly")
	nu := flag.Int("nu", 2, "ν for network-n")
	gamma := flag.Int("gamma", 0, "γ for network-n")
	m := flag.Int("m", 8, "M for network-n")
	dq := flag.Int("dq", 3, "DQ for network-n")
	k := flag.Int("k", 4, "k for benes/butterfly")
	epsList := flag.String("eps", "0.0005,0.002,0.01", "comma-separated ε values")
	trials := flag.Int("trials", 200, "Monte-Carlo trials per ε")
	churn := flag.Int("churn", 100, "churn operations per trial (network-n only)")
	seed := flag.Uint64("seed", 1, "root seed")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	flag.Parse()
	if *workers < 0 {
		die(fmt.Errorf("-workers must be >= 0, got %d", *workers))
	}

	var epss []float64
	for _, s := range strings.Split(*epsList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		die(err)
		epss = append(epss, v)
	}

	switch *kind {
	case "network-n":
		p := core.Params{Nu: *nu, Gamma: *gamma, M: *m, DQ: *dq, Seed: 1}
		nw, err := core.Build(p)
		die(err)
		fmt.Printf("network-N: n=%d L=%d edges=%d\n", p.N(), p.L(), nw.G.NumEdges())
		tab := stats.NewTable("ε", "P[success] (95% CI)", "P[majority]", "P[shorted]", "mean failed switches")
		for _, eps := range epss {
			var succ, maj, shorted stats.Proportion
			var failed stats.Sample
			for i := 0; i < *trials; i++ {
				out := nw.Evaluate(fault.Symmetric(eps), *seed+uint64(i), *churn)
				succ.Add(out.Success)
				maj.Add(out.MajorityAccess)
				shorted.Add(out.Shorted)
				failed.Add(float64(out.FailedSwitches))
			}
			tab.AddRow(eps, succ.String(), maj.Estimate(), shorted.Estimate(), failed.Mean())
		}
		fmt.Print(tab.String())
	case "benes", "butterfly":
		var g *graph.Graph
		if *kind == "benes" {
			nw, err := benes.New(*k)
			die(err)
			g = nw.G
		} else {
			nw, err := butterfly.New(*k)
			die(err)
			g = nw.G
		}
		fmt.Printf("%s: n=%d edges=%d\n", *kind, len(g.Inputs()), g.NumEdges())
		tab := stats.NewTable("ε", "P[survive basic checks] (95% CI)")
		for _, eps := range epss {
			p := montecarlo.RunBool(montecarlo.Config{Trials: *trials, Workers: *workers, Seed: *seed},
				func(r *rng.RNG) bool {
					inst := fault.Inject(g, fault.Symmetric(eps), r)
					return inst.SurvivesBasicChecks()
				})
			tab.AddRow(eps, p.String())
		}
		fmt.Print(tab.String())
	default:
		die(fmt.Errorf("unknown kind %q", *kind))
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftsim: %v\n", err)
		os.Exit(1)
	}
}
