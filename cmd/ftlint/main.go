// Command ftlint runs the repository's contract analyzers — determinism,
// hotpath, seamcontract (see internal/analysis) — over the module and
// exits nonzero on any finding. It is the static half of the invariants
// the test suite pins at runtime, and `make lint` wires it next to go vet
// so CI and local runs are identical.
//
// Usage:
//
//	ftlint [packages]
//
// With no arguments (or "./...") every buildable package in the module is
// linted; otherwise arguments are import paths (ftcsn/internal/route).
// Analyzer scoping is policy, not per-invocation choice: each analyzer
// runs only on the packages its contract covers (internal/analysis
// scopes).
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"ftcsn/internal/analysis"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	wd, err := os.Getwd()
	if err != nil {
		return err
	}
	ld, err := analysis.NewLoader(wd)
	if err != nil {
		return err
	}

	var paths []string
	if len(args) == 0 || (len(args) == 1 && (args[0] == "./..." || args[0] == "...")) {
		paths, err = ld.ListPackages()
		if err != nil {
			return err
		}
	} else {
		paths = args
	}

	total := 0
	for _, path := range paths {
		analyzers := analysis.AnalyzersFor(path)
		pkg, err := ld.Load(path)
		if err != nil {
			return err
		}
		findings, err := analysis.RunPackage(pkg, analyzers)
		if err != nil {
			return err
		}
		for _, f := range findings {
			pos := f.Pos
			if rel, err := filepath.Rel(wd, pos.Filename); err == nil {
				pos.Filename = rel
			}
			fmt.Printf("%s: [%s] %s\n", pos, f.Analyzer, f.Message)
		}
		total += len(findings)
	}
	if total > 0 {
		fmt.Printf("ftlint: %d finding(s)\n", total)
		os.Exit(1)
	}
	return nil
}
