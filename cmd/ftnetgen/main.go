// Command ftnetgen builds circuit-switching networks and reports their
// complexity measures (size = switches, depth = longest path), the
// Theorem-1 lower bounds, and optionally a Graphviz rendering.
//
// Usage:
//
//	ftnetgen -kind network-n -nu 2 [-gamma 0 -m 8 -dq 3 -seed 1] [-dot out.dot]
//	ftnetgen -kind benes -k 4
//	ftnetgen -kind butterfly -k 4
//	ftnetgen -kind multibutterfly -k 4 -d 2
//	ftnetgen -kind clos -n0 4 -r 4 [-mm 7]
//	ftnetgen -kind superconcentrator -n 64 -d 4
//	ftnetgen -kind paper-accounting          # closed-form Theorem-2 table
package main

import (
	"flag"
	"fmt"
	"os"

	"ftcsn/internal/benes"
	"ftcsn/internal/butterfly"
	"ftcsn/internal/clos"
	"ftcsn/internal/core"
	"ftcsn/internal/graph"
	"ftcsn/internal/lowerbound"
	"ftcsn/internal/multibutterfly"
	"ftcsn/internal/stats"
	"ftcsn/internal/superconc"
)

func main() {
	kind := flag.String("kind", "network-n", "network-n | benes | butterfly | multibutterfly | clos | superconcentrator | paper-accounting")
	nu := flag.Int("nu", 2, "ν for network-n (n = 4^ν)")
	gamma := flag.Int("gamma", 0, "γ scale-up for network-n")
	m := flag.Int("m", 8, "row multiplier M for network-n")
	dq := flag.Int("dq", 3, "matchings per quarter DQ for network-n")
	seed := flag.Uint64("seed", 1, "construction seed")
	k := flag.Int("k", 4, "k for benes/butterfly/multibutterfly (n = 2^k)")
	d := flag.Int("d", 2, "multiplicity/degree for multibutterfly/superconcentrator")
	n0 := flag.Int("n0", 4, "Clos input-crossbar width")
	r := flag.Int("r", 4, "Clos crossbar count")
	mm := flag.Int("mm", 0, "Clos middle count (0 = strict 2n0-1)")
	n := flag.Int("n", 64, "superconcentrator terminal count")
	dot := flag.String("dot", "", "write Graphviz DOT to file")
	analyze := flag.Bool("analyze", false, "run the Theorem-1 zone analysis (slow on big graphs)")
	flag.Parse()

	if *kind == "paper-accounting" {
		tab := stats.NewTable("ν", "n", "γ", "L", "edges (faithful)", "edges (claimed)", "depth")
		for v := 1; v <= 10; v++ {
			pa := core.PaperAccounting(v)
			tab.AddRow(v, pa.N, pa.Gamma, pa.L, pa.EdgesFaithful, pa.EdgesClaimed, pa.DepthFaithful)
		}
		fmt.Print(tab.String())
		return
	}

	var g *graph.Graph
	var name string
	switch *kind {
	case "network-n":
		p := core.Params{Nu: *nu, Gamma: *gamma, M: *m, DQ: *dq, Seed: *seed}
		nw, err := core.Build(p)
		die(err)
		g = nw.G
		name = fmt.Sprintf("network-N(nu=%d,gamma=%d,M=%d,DQ=%d)", *nu, *gamma, *m, *dq)
		a := core.Accounting(p)
		fmt.Printf("accounting: terminals=%d grids=%d core=%d total=%d\n",
			a.TerminalEdges, a.GridEdges, a.CoreEdges, a.Edges)
	case "benes":
		nw, err := benes.New(*k)
		die(err)
		g, name = nw.G, fmt.Sprintf("benes(k=%d)", *k)
	case "butterfly":
		nw, err := butterfly.New(*k)
		die(err)
		g, name = nw.G, fmt.Sprintf("butterfly(k=%d)", *k)
	case "multibutterfly":
		nw, err := multibutterfly.New(*k, *d, *seed)
		die(err)
		g, name = nw.G, fmt.Sprintf("multibutterfly(k=%d,d=%d)", *k, *d)
	case "clos":
		mid := *mm
		if mid == 0 {
			mid = 2**n0 - 1
		}
		nw, err := clos.New(*n0, mid, *r)
		die(err)
		g, name = nw.G, fmt.Sprintf("clos(n0=%d,m=%d,r=%d) strict=%v", *n0, mid, *r, nw.IsStrictSenseNonblocking())
	case "superconcentrator":
		nw, err := superconc.New(*n, *d, *seed)
		die(err)
		g, name = nw.G, fmt.Sprintf("superconcentrator(n=%d,d=%d)", *n, *d)
	default:
		die(fmt.Errorf("unknown kind %q", *kind))
	}

	st := graph.ComputeStats(g)
	fmt.Printf("%s: %s\n", name, st)
	nTerm := len(g.Inputs())
	fmt.Printf("theorem-1 bounds for n=%d: size ≥ %.2f, depth ≥ %.2f\n",
		nTerm, core.LowerBoundSize(nTerm), core.LowerBoundDepth(nTerm))

	if *analyze {
		cert := lowerbound.Analyze(g)
		fmt.Printf("good inputs: %d/%d (min pairwise distance %d)\n",
			cert.GoodInputs, nTerm, cert.MinInputDist)
		fmt.Printf("worst zone size at radius %d: %d\n", cert.ZoneRadius, cert.MinOfMinZones())
	}
	if *dot != "" {
		die(os.WriteFile(*dot, []byte(g.DOT("ftcsn")), 0o644))
		fmt.Printf("wrote %s\n", *dot)
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftnetgen: %v\n", err)
		os.Exit(1)
	}
}
