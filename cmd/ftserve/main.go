// Command ftserve is the long-running open-loop serving harness: it
// drives any route.Engine with sustained session traffic — composable
// arrival processes (Poisson, MMPP bursts, diurnal modulation), holding
// time distributions (exponential, lognormal, Pareto), and destination
// patterns (uniform, hotspot, permutation) — under a virtual clock, and
// prints periodic windowed plus final cumulative SLO reports: rejection
// rate, live-circuit gauge, offered load in Erlangs, and p50/p99/p999
// connect latency in events-behind terms.
//
// The report is a pure function of the flags: two runs with the same
// flags are byte-identical (the CI smoke gate diffs them). The only
// wall-clock read lives behind -wall and goes to stderr, keeping stdout
// deterministic.
//
// Usage:
//
//	ftserve -engine=sharded -shards=4 -nu=2 -eps=0.002 -seed=7 \
//	        -rate=8 -hold=4 -duration=200 -pattern=hotspot -report=50
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"

	"ftcsn/internal/core"
	"ftcsn/internal/fault"
	"ftcsn/internal/netsim"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
	"ftcsn/internal/stats"
)

type config struct {
	engine  string
	shards  int
	workers int

	nu        int
	eps       float64
	faultSeed uint64

	seed        uint64
	rate        float64
	arrival     string
	hold        float64
	holdDist    string
	pattern     string
	hotFrac     float64
	hotCount    int
	duration    float64
	maxArrivals int64
	batch       int
	report      float64
}

func parseFlags(args []string) (config, error) {
	var c config
	fs := flag.NewFlagSet("ftserve", flag.ContinueOnError)
	fs.StringVar(&c.engine, "engine", "sharded", "engine: router|sharded|cas")
	fs.IntVar(&c.shards, "shards", 4, "shard count (engine=sharded)")
	fs.IntVar(&c.workers, "workers", 0, "worker goroutines (engine=cas); 0 = deterministic sequential mode, >1 forfeits report byte-stability")
	fs.IntVar(&c.nu, "nu", 2, "ν (n = 4^ν terminals)")
	fs.Float64Var(&c.eps, "eps", 0, "switch failure rate ε; > 0 serves on the repaired faulty network")
	fs.Uint64Var(&c.faultSeed, "faultseed", 1, "fault-draw seed (eps > 0)")
	fs.Uint64Var(&c.seed, "seed", 7, "traffic seed")
	fs.Float64Var(&c.rate, "rate", 8, "mean arrival rate (arrivals per unit virtual time)")
	fs.StringVar(&c.arrival, "arrival", "poisson", "arrival process: poisson|mmpp|diurnal (mmpp bursts at 4×rate from a rate/4 base; diurnal swings ±80% over duration/2)")
	fs.Float64Var(&c.hold, "hold", 4, "mean holding time (virtual)")
	fs.StringVar(&c.holdDist, "holddist", "exp", "holding distribution: exp|lognormal|pareto (lognormal σ=1; pareto shape=1.5)")
	fs.StringVar(&c.pattern, "pattern", "uniform", "destination pattern: uniform|hotspot|permutation")
	fs.Float64Var(&c.hotFrac, "hotfrac", 0.7, "fraction of traffic aimed at the hot set (pattern=hotspot)")
	fs.IntVar(&c.hotCount, "hotcount", 2, "hot output count (pattern=hotspot)")
	fs.Float64Var(&c.duration, "duration", 200, "virtual-time horizon (0 = unbounded, needs -maxarrivals)")
	fs.Int64Var(&c.maxArrivals, "maxarrivals", 0, "stop after this many arrivals (0 = unbounded, needs -duration)")
	fs.IntVar(&c.batch, "batch", 0, "max arrivals per ConnectBatch (0 = default)")
	fs.Float64Var(&c.report, "report", 50, "windowed report interval in virtual time (0 = final report only)")
	wall := fs.Bool("wall", false, "report wall-clock event throughput to stderr")
	if err := fs.Parse(args); err != nil {
		return c, err
	}
	if *wall {
		wallClock = true
	}
	return c, nil
}

// wallClock gates the only wall-clock read in the binary; the sample is
// taken in main and printed to stderr so stdout stays deterministic.
var wallClock bool

func buildEngine(c config, nw *core.Network) (route.Engine, error) {
	var inst *fault.Instance
	if c.eps > 0 {
		inst = fault.Inject(nw.G, fault.Symmetric(c.eps), rng.New(c.faultSeed))
	}
	switch c.engine {
	case "router":
		var rt *route.Router
		if inst != nil {
			rt = route.NewRepairedRouter(inst)
		} else {
			rt = route.NewRouter(nw.G)
		}
		rt.EnablePathReuse()
		return rt, nil
	case "sharded":
		if inst != nil {
			return route.NewRepairedShardedEngine(inst, c.shards), nil
		}
		return route.NewShardedEngine(nw.G, c.shards), nil
	case "cas":
		var cr *route.ConcurrentRouter
		if inst != nil {
			cr = route.NewConcurrentRepairedRouter(inst)
		} else {
			cr = route.NewConcurrentRouter(nw.G)
		}
		if c.workers <= 0 {
			cr.Sequential = true
		} else {
			cr.Workers = c.workers
		}
		return cr, nil
	default:
		return nil, fmt.Errorf("unknown engine %q (want router|sharded|cas)", c.engine)
	}
}

func buildSource(c config, nw *core.Network) (*netsim.TrafficSource, error) {
	var arr netsim.ArrivalProcess
	switch c.arrival {
	case "poisson":
		arr = netsim.NewPoisson(c.rate)
	case "mmpp":
		// Bursts at 4× the nominal rate from a quiet rate/4 base, with
		// sojourns long enough for tens of arrivals per phase.
		arr = netsim.NewMMPP(c.rate/4, 4*c.rate, 32/c.rate, 16/c.rate)
	case "diurnal":
		period := c.duration / 2
		if period <= 0 {
			period = 100
		}
		arr = netsim.NewDiurnal(c.rate, 0.8, period)
	default:
		return nil, fmt.Errorf("unknown arrival process %q (want poisson|mmpp|diurnal)", c.arrival)
	}
	var hold netsim.HoldingDist
	switch c.holdDist {
	case "exp":
		hold = netsim.NewExpHolding(c.hold)
	case "lognormal":
		// σ = 1; μ chosen so the mean is c.hold.
		hold = netsim.NewLognormalHolding(math.Log(c.hold)-0.5, 1)
	case "pareto":
		// shape = 1.5; scale chosen so the mean is c.hold.
		hold = netsim.NewParetoHolding(1.5, c.hold/3)
	default:
		return nil, fmt.Errorf("unknown holding distribution %q (want exp|lognormal|pareto)", c.holdDist)
	}
	var pat netsim.Pattern
	switch c.pattern {
	case "uniform":
		pat = netsim.NewUniformPattern(nw.Inputs(), nw.Outputs())
	case "hotspot":
		pat = netsim.NewHotspotPattern(nw.Inputs(), nw.Outputs(), c.hotCount, c.hotFrac)
	case "permutation":
		pat = netsim.NewPermutationPattern(nw.Inputs(), nw.Outputs())
	default:
		return nil, fmt.Errorf("unknown pattern %q (want uniform|hotspot|permutation)", c.pattern)
	}
	return netsim.NewTrafficSource(c.seed, arr, hold, pat), nil
}

func writeWindow(w io.Writer, t float64, s *stats.SLO) {
	sn := s.Window()
	fmt.Fprintf(w, "t=%10.2f  offered=%7d acc=%7d rej=%6d (%6.2f%%)  live=%5d peak=%5d  load=%8.2fE  behind p50/p99/p999/max=%d/%d/%d/%d\n",
		t, sn.Offered, sn.Accepted, sn.Rejected, 100*sn.RejectRate,
		sn.Live, sn.PeakLive, sn.OfferedLoad,
		sn.P50, sn.P99, sn.P999, sn.MaxBehind)
}

// run executes one serving session and returns the deterministic report
// plus the total event count (for the stderr wall-clock summary).
func run(c config) (string, int64, error) {
	if c.hold <= 0 || c.rate <= 0 {
		return "", 0, fmt.Errorf("rate %g and hold %g must be positive", c.rate, c.hold)
	}
	nw, err := core.Build(core.DefaultParams(c.nu))
	if err != nil {
		return "", 0, err
	}
	eng, err := buildEngine(c, nw)
	if err != nil {
		return "", 0, err
	}
	src, err := buildSource(c, nw)
	if err != nil {
		return "", 0, err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "ftserve: engine=%s n=%d switches=%d eps=%g\n",
		c.engine, len(nw.Inputs()), nw.G.NumVertices(), c.eps)
	fmt.Fprintf(&b, "traffic: arrival=%s rate=%g hold=%s mean=%g pattern=%s seed=%#x\n",
		c.arrival, c.rate, c.holdDist, c.hold, c.pattern, c.seed)
	fmt.Fprintf(&b, "config: horizon=%g max-arrivals=%d batch=%d report=%g\n",
		c.duration, c.maxArrivals, c.batch, c.report)

	var slo stats.SLO
	cfg := netsim.ServeConfig{
		Horizon:     c.duration,
		MaxArrivals: c.maxArrivals,
		MaxBatch:    c.batch,
		ReportEvery: c.report,
	}
	if c.report > 0 {
		cfg.OnReport = func(t float64, s *stats.SLO) { writeWindow(&b, t, s) }
	}
	if err := netsim.Serve(eng, src, cfg, &slo); err != nil {
		return "", 0, err
	}

	sn := slo.Snapshot()
	fmt.Fprintf(&b, "final: t=%.2f offered=%d accepted=%d rejected=%d (%.4f%%) departed=%d live=%d peak=%d\n",
		sn.End, sn.Offered, sn.Accepted, sn.Rejected, 100*sn.RejectRate, sn.Departed, sn.Live, sn.PeakLive)
	fmt.Fprintf(&b, "load: offered=%.3f erlang\n", sn.OfferedLoad)
	fmt.Fprintf(&b, "behind: p50=%d p99=%d p999=%d max=%d mean=%.3f\n",
		sn.P50, sn.P99, sn.P999, sn.MaxBehind, sn.MeanBehind)
	es := eng.Stats()
	fmt.Fprintf(&b, "engine: batches=%d requests=%d accepted=%d rejected=%d\n",
		es.Batches, es.Requests, es.Accepted, es.Rejected)
	return b.String(), sn.Offered + sn.Departed, nil
}

func main() {
	c, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	start := time.Now()
	report, events, err := run(c)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftserve:", err)
		os.Exit(1)
	}
	fmt.Print(report)
	if wallClock {
		elapsed := time.Since(start).Seconds()
		fmt.Fprintf(os.Stderr, "wall: %.3fs, %.0f events/s\n", elapsed, float64(events)/elapsed)
	}
}
