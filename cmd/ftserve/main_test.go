package main

import (
	"strings"
	"testing"
)

func baseConfig() config {
	c, err := parseFlags(nil)
	if err != nil {
		panic(err)
	}
	return c
}

// TestRunDeterministic: the report is a pure function of the flags —
// byte-identical across runs — for every engine, on both healthy and
// faulty networks.
func TestRunDeterministic(t *testing.T) {
	cases := map[string]func(*config){
		"router":       func(c *config) { c.engine = "router" },
		"sharded":      func(c *config) { c.engine = "sharded"; c.shards = 4 },
		"cas-seq":      func(c *config) { c.engine = "cas"; c.workers = 0 },
		"faulty":       func(c *config) { c.eps = 0.002 },
		"mmpp-hotspot": func(c *config) { c.arrival = "mmpp"; c.pattern = "hotspot" },
		"diurnal-pareto": func(c *config) {
			c.arrival = "diurnal"
			c.holdDist = "pareto"
			c.pattern = "permutation"
		},
	}
	for name, tweak := range cases {
		t.Run(name, func(t *testing.T) {
			c := baseConfig()
			c.duration = 60
			c.report = 20
			tweak(&c)
			r1, ev1, err := run(c)
			if err != nil {
				t.Fatal(err)
			}
			r2, ev2, err := run(c)
			if err != nil {
				t.Fatal(err)
			}
			if r1 != r2 {
				t.Fatalf("reports differ across identical runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", r1, r2)
			}
			if ev1 != ev2 || ev1 == 0 {
				t.Fatalf("event counts: %d vs %d", ev1, ev2)
			}
			if !strings.Contains(r1, "final:") || !strings.Contains(r1, "behind:") {
				t.Fatalf("report missing final summary:\n%s", r1)
			}
			if !strings.Contains(r1, "t=") {
				t.Fatalf("report missing windowed lines:\n%s", r1)
			}
		})
	}
}

// TestRunRejectsBadFlags: unknown enum values and degenerate traffic
// parameters error out instead of serving nonsense.
func TestRunRejectsBadFlags(t *testing.T) {
	bad := []func(*config){
		func(c *config) { c.engine = "quantum" },
		func(c *config) { c.arrival = "steady" },
		func(c *config) { c.holdDist = "uniform" },
		func(c *config) { c.pattern = "tornado" },
		func(c *config) { c.rate = 0 },
	}
	for i, tweak := range bad {
		c := baseConfig()
		c.duration = 10
		tweak(&c)
		if _, _, err := run(c); err == nil {
			t.Fatalf("case %d: bad config accepted", i)
		}
	}
}
